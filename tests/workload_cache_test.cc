// Copyright (c) SkyBench-NG contributors.
// Regression test for the WorkloadCache data race: concurrent Get calls
// used to mutate the shared std::map with no lock (UB under any parallel
// harness). Run under TSan by the scheduled CI job — without the mutex in
// WorkloadCache::Get this test reports races and can crash outright.
#include "bench_support/workload.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sky::test {
namespace {

TEST(WorkloadCacheTest, SequentialGetReturnsStableReference) {
  WorkloadCache& cache = WorkloadCache::Instance();
  cache.Clear();
  const WorkloadSpec spec{Distribution::kIndependent, 500, 4, 123};
  const Dataset& first = cache.Get(spec);
  EXPECT_EQ(first.count(), 500u);
  EXPECT_EQ(first.dims(), 4);
  // Same spec twice: same cached object, not a regeneration.
  EXPECT_EQ(&cache.Get(spec), &first);
  // Different seed: different entry.
  const WorkloadSpec other{Distribution::kIndependent, 500, 4, 124};
  EXPECT_NE(&cache.Get(other), &first);
  cache.Clear();
}

TEST(WorkloadCacheTest, ConcurrentGetIsRaceFreeAndConsistent) {
  WorkloadCache& cache = WorkloadCache::Instance();
  cache.Clear();

  // 8 threads × 12 lookups over 6 distinct specs: every spec is requested
  // by several threads at once (first-touch generation races) and
  // repeatedly (map-mutation vs. lookup races).
  const Distribution dists[] = {Distribution::kCorrelated,
                                Distribution::kIndependent,
                                Distribution::kAnticorrelated};
  std::vector<WorkloadSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(WorkloadSpec{dists[i % 3],
                                 static_cast<size_t>(200 + 50 * (i / 3)), 3,
                                 static_cast<uint64_t>(i)});
  }

  constexpr int kThreads = 8;
  std::vector<std::vector<const Dataset*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 12; ++i) {
        const WorkloadSpec& spec = specs[(t + i) % specs.size()];
        const Dataset& data = cache.Get(spec);
        ASSERT_EQ(data.count(), spec.count);
        ASSERT_EQ(data.dims(), spec.dims);
        seen[t].push_back(&data);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every thread must have observed the same object per spec: exactly one
  // generation happened, and references stayed stable across insertions.
  for (size_t s = 0; s < specs.size(); ++s) {
    const Dataset* canonical = nullptr;
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < 12; ++i) {
        if ((static_cast<size_t>(t) + static_cast<size_t>(i)) %
                specs.size() !=
            s) {
          continue;
        }
        if (canonical == nullptr) canonical = seen[t][i];
        EXPECT_EQ(seen[t][i], canonical) << "spec " << s << " thread " << t;
      }
    }
    EXPECT_NE(canonical, nullptr);
  }
  cache.Clear();
}

}  // namespace
}  // namespace sky::test
