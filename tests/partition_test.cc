// Copyright (c) SkyBench-NG contributors.
#include "data/partition.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

WorkingSet MakeWs(const Dataset& data, ThreadPool& pool) {
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  ws.ComputeL1(pool);
  return ws;
}

class PivotPolicies : public ::testing::TestWithParam<PivotPolicy> {};

TEST_P(PivotPolicies, ProducesFiniteInRangePivot) {
  ThreadPool pool(2);
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 6, 21);
  WorkingSet ws = MakeWs(data, pool);
  const auto pivot = SelectPivot(ws, GetParam(), pool, 42);
  ASSERT_EQ(pivot.size(), static_cast<size_t>(ws.stride));
  for (int j = 0; j < ws.dims; ++j) {
    EXPECT_GE(pivot[static_cast<size_t>(j)], 0.0f);
    EXPECT_LE(pivot[static_cast<size_t>(j)], 1.0f);
  }
  for (int j = ws.dims; j < ws.stride; ++j) {
    EXPECT_EQ(pivot[static_cast<size_t>(j)], 0.0f) << "padding";
  }
}

INSTANTIATE_TEST_SUITE_P(All, PivotPolicies,
                         ::testing::Values(PivotPolicy::kMedian,
                                           PivotPolicy::kBalanced,
                                           PivotPolicy::kManhattan,
                                           PivotPolicy::kVolume,
                                           PivotPolicy::kRandom));

TEST(Pivot, ManhattanPicksMinL1SkylinePoint) {
  ThreadPool pool(1);
  Dataset data = test::MakeDataset({{5, 5}, {1, 2}, {4, 1}});
  WorkingSet ws = MakeWs(data, pool);
  const auto pivot = SelectPivot(ws, PivotPolicy::kManhattan, pool, 0);
  EXPECT_EQ(pivot[0], 1.0f);
  EXPECT_EQ(pivot[1], 2.0f);
}

TEST(Pivot, RandomPivotIsSkylinePoint) {
  ThreadPool pool(1);
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 800, 4, 9);
  const auto skyline = test::ReferenceSkyline(data);
  WorkingSet ws = MakeWs(data, pool);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const auto pivot = SelectPivot(ws, PivotPolicy::kRandom, pool, seed);
    bool found = false;
    for (const PointId id : skyline) {
      bool same = true;
      for (int j = 0; j < ws.dims; ++j) {
        same &= data.Row(id)[j] == pivot[static_cast<size_t>(j)];
      }
      found |= same;
    }
    EXPECT_TRUE(found) << "seed " << seed << ": pivot not a skyline point";
  }
}

TEST(Pivot, BalancedPivotIsSkylinePoint) {
  ThreadPool pool(1);
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 800, 4, 10);
  const auto skyline = test::ReferenceSkyline(data);
  WorkingSet ws = MakeWs(data, pool);
  const auto pivot = SelectPivot(ws, PivotPolicy::kBalanced, pool, 0);
  bool found = false;
  for (const PointId id : skyline) {
    bool same = true;
    for (int j = 0; j < ws.dims; ++j) {
      same &= data.Row(id)[j] == pivot[static_cast<size_t>(j)];
    }
    found |= same;
  }
  EXPECT_TRUE(found);
}

TEST(Pivot, MedianSplitsRoughlyInHalfPerDim) {
  ThreadPool pool(2);
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 4000, 3, 13);
  WorkingSet ws = MakeWs(data, pool);
  const auto pivot = SelectPivot(ws, PivotPolicy::kMedian, pool, 0);
  for (int j = 0; j < ws.dims; ++j) {
    size_t below = 0;
    for (size_t i = 0; i < ws.count; ++i) {
      below += ws.Row(i)[j] < pivot[static_cast<size_t>(j)];
    }
    EXPECT_NEAR(static_cast<double>(below) / ws.count, 0.5, 0.05);
  }
}

TEST(AssignMasks, MatchesScalarDefinition) {
  ThreadPool pool(3);
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 1000, 7, 15);
  WorkingSet ws = MakeWs(data, pool);
  const auto pivot = SelectPivot(ws, PivotPolicy::kMedian, pool, 0);
  DomCtx dom(ws.dims, ws.stride, true);
  AssignMasks(ws, pivot.data(), dom, pool);
  ASSERT_EQ(ws.masks.size(), ws.count);
  for (size_t i = 0; i < ws.count; ++i) {
    Mask expect = 0;
    for (int j = 0; j < ws.dims; ++j) {
      expect |= static_cast<Mask>(ws.Row(i)[j] >= pivot[static_cast<size_t>(j)])
                << j;
    }
    ASSERT_EQ(ws.masks[i], expect) << "point " << i;
  }
}

TEST(Pivot, ParsePolicyNames) {
  EXPECT_EQ(ParsePivotPolicy("median"), PivotPolicy::kMedian);
  EXPECT_EQ(ParsePivotPolicy("balanced"), PivotPolicy::kBalanced);
  EXPECT_THROW(ParsePivotPolicy("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace sky
