// Copyright (c) SkyBench-NG contributors.
#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_util.h"

namespace sky {
namespace {

TEST(Dataset, StridePadsToSimdWidth) {
  EXPECT_EQ(Dataset::StrideFor(1), 8);
  EXPECT_EQ(Dataset::StrideFor(8), 8);
  EXPECT_EQ(Dataset::StrideFor(9), 16);
  EXPECT_EQ(Dataset::StrideFor(16), 16);
}

TEST(Dataset, FromRowMajorPreservesValuesAndZeroPads) {
  Dataset d = test::MakeDataset({{1, 2, 3}, {4, 5, 6}});
  ASSERT_EQ(d.count(), 2u);
  ASSERT_EQ(d.dims(), 3);
  ASSERT_EQ(d.stride(), 8);
  EXPECT_EQ(d.Row(0)[0], 1);
  EXPECT_EQ(d.Row(1)[2], 6);
  for (int j = 3; j < d.stride(); ++j) {
    EXPECT_EQ(d.Row(0)[j], 0.0f) << "padding lane " << j;
    EXPECT_EQ(d.Row(1)[j], 0.0f) << "padding lane " << j;
  }
}

TEST(Dataset, RowsAre32ByteAligned) {
  Dataset d(5, 17);
  for (size_t i = 0; i < d.count(); ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d.Row(i)) % 32, 0u);
  }
}

TEST(Dataset, CloneIsDeepAndExact) {
  const Dataset a = test::MakeDataset({{1, 2, 3}, {4, 5, 6}});
  Dataset b = a.Clone();
  ASSERT_EQ(b.dims(), a.dims());
  ASSERT_EQ(b.count(), a.count());
  for (size_t i = 0; i < a.count(); ++i) {
    for (int j = 0; j < a.dims(); ++j) {
      EXPECT_EQ(b.Row(i)[j], a.Row(i)[j]);
    }
  }
  b.MutableRow(0)[0] = 99.0f;  // deep: mutating the clone leaves the
  EXPECT_EQ(a.Row(0)[0], 1.0f);  // original untouched
  EXPECT_TRUE(Dataset{}.Clone().empty());
}

TEST(Dataset, MinMaxPerDim) {
  Dataset d = test::MakeDataset({{1, 9}, {5, 2}, {3, 7}});
  const auto mins = d.MinPerDim();
  const auto maxs = d.MaxPerDim();
  EXPECT_EQ(mins, (std::vector<Value>{1, 2}));
  EXPECT_EQ(maxs, (std::vector<Value>{5, 9}));
}

TEST(Dataset, EmptyDataset) {
  Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.MinPerDim().empty());
}

TEST(Dataset, CsvRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sky_test.csv").string();
  Dataset d = test::MakeDataset({{1.5, 2}, {3, 4.25}});
  d.SaveCsv(path);
  Dataset loaded = Dataset::LoadCsv(path);
  ASSERT_EQ(loaded.count(), d.count());
  ASSERT_EQ(loaded.dims(), d.dims());
  for (size_t i = 0; i < d.count(); ++i) {
    for (int j = 0; j < d.dims(); ++j) {
      EXPECT_EQ(loaded.Row(i)[j], d.Row(i)[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Dataset, CsvSkipsComments) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sky_test2.csv").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs("# header comment\n1,2\n3,4\n", f);
  fclose(f);
  Dataset loaded = Dataset::LoadCsv(path);
  EXPECT_EQ(loaded.count(), 2u);
  EXPECT_EQ(loaded.dims(), 2);
  std::remove(path.c_str());
}

TEST(Dataset, CsvRejectsRaggedRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sky_test3.csv").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs("1,2\n3,4,5\n", f);
  fclose(f);
  EXPECT_THROW(Dataset::LoadCsv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Dataset, BinaryRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sky_test.bin").string();
  Dataset d = test::MakeDataset({{1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}});
  d.SaveBinary(path);
  Dataset loaded = Dataset::LoadBinary(path);
  ASSERT_EQ(loaded.count(), 2u);
  ASSERT_EQ(loaded.dims(), 5);
  for (size_t i = 0; i < 2; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(loaded.Row(i)[j], d.Row(i)[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Dataset, BinaryRejectsBadMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sky_bad.bin").string();
  FILE* f = fopen(path.c_str(), "w");
  fputs("not a dataset at all, sorry......", f);
  fclose(f);
  EXPECT_THROW(Dataset::LoadBinary(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sky
