// Copyright (c) SkyBench-NG contributors.
#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

TEST(Streaming, BasicInsertAndEvict) {
  StreamingSkyline s(2);
  EXPECT_TRUE(s.Insert(std::vector<Value>{4, 4}, 0));
  EXPECT_EQ(s.size(), 1u);
  // (2,2) dominates (4,4): evicts it.
  EXPECT_TRUE(s.Insert(std::vector<Value>{2, 2}, 1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{1}));
  // Dominated arrival is rejected.
  EXPECT_FALSE(s.Insert(std::vector<Value>{3, 3}, 2));
  EXPECT_EQ(s.size(), 1u);
  // Incomparable arrival joins.
  EXPECT_TRUE(s.Insert(std::vector<Value>{1, 5}, 3));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Streaming, DuplicatesAreRetained) {
  StreamingSkyline s(2);
  EXPECT_TRUE(s.Insert(std::vector<Value>{1, 1}, 0));
  EXPECT_TRUE(s.Insert(std::vector<Value>{1, 1}, 1));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Streaming, OneDominatorEvictsMany) {
  StreamingSkyline s(2);
  // A diagonal of incomparable points...
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(s.Insert(
        std::vector<Value>{static_cast<float>(i + 1),
                           static_cast<float>(10 - i)},
        static_cast<PointId>(i)));
  }
  EXPECT_EQ(s.size(), 10u);
  // ...all evicted by the origin.
  EXPECT_TRUE(s.Insert(std::vector<Value>{0, 0}, 99));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{99}));
}

class StreamingAgainstBatch
    : public ::testing::TestWithParam<std::tuple<Distribution, int>> {};

TEST_P(StreamingAgainstBatch, MatchesBatchSkyline) {
  const auto [dist, d] = GetParam();
  Dataset data = GenerateSynthetic(dist, 3000, d, 555);
  StreamingSkyline s(d);
  for (size_t i = 0; i < data.count(); ++i) {
    s.Insert(std::span<const Value>(data.Row(i), static_cast<size_t>(d)),
             static_cast<PointId>(i));
  }
  EXPECT_EQ(s.inserted(), data.count());
  EXPECT_EQ(test::Sorted(s.Ids()),
            test::Sorted(test::ReferenceSkyline(data)));
  // Rows() must be consistent with Ids().
  const auto ids = s.Ids();
  const auto rows = s.Rows();
  ASSERT_EQ(rows.size(), ids.size() * static_cast<size_t>(d));
  for (size_t k = 0; k < ids.size(); ++k) {
    for (int j = 0; j < d; ++j) {
      ASSERT_EQ(rows[k * static_cast<size_t>(d) + static_cast<size_t>(j)],
                data.Row(ids[k])[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingAgainstBatch,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 6, 12)));

TEST(Streaming, CompactionUnderChurn) {
  // Monotonically improving stream: every arrival evicts the previous
  // point, stressing tombstone compaction.
  StreamingSkyline s(3);
  for (int i = 1000; i > 0; --i) {
    const float v = static_cast<float>(i);
    EXPECT_TRUE(s.Insert(std::vector<Value>{v, v, v},
                         static_cast<PointId>(i)));
    EXPECT_EQ(s.size(), 1u);
  }
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{1}));
  EXPECT_GT(s.dominance_tests(), 0u);
}

TEST(Streaming, ScalarAndSimdAgree) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 1500, 7, 6);
  StreamingSkyline simd(7, true), scalar(7, false);
  for (size_t i = 0; i < data.count(); ++i) {
    const std::span<const Value> p(data.Row(i), 7);
    ASSERT_EQ(simd.Insert(p, static_cast<PointId>(i)),
              scalar.Insert(p, static_cast<PointId>(i)))
        << "point " << i;
  }
  EXPECT_EQ(test::Sorted(simd.Ids()), test::Sorted(scalar.Ids()));
}

}  // namespace
}  // namespace sky
