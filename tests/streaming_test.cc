// Copyright (c) SkyBench-NG contributors.
#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

TEST(Streaming, BasicInsertAndEvict) {
  StreamingSkyline s(2);
  EXPECT_TRUE(s.Insert(std::vector<Value>{4, 4}, 0));
  EXPECT_EQ(s.size(), 1u);
  // (2,2) dominates (4,4): evicts it.
  EXPECT_TRUE(s.Insert(std::vector<Value>{2, 2}, 1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{1}));
  // Dominated arrival is rejected.
  EXPECT_FALSE(s.Insert(std::vector<Value>{3, 3}, 2));
  EXPECT_EQ(s.size(), 1u);
  // Incomparable arrival joins.
  EXPECT_TRUE(s.Insert(std::vector<Value>{1, 5}, 3));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Streaming, DuplicatesAreRetained) {
  StreamingSkyline s(2);
  EXPECT_TRUE(s.Insert(std::vector<Value>{1, 1}, 0));
  EXPECT_TRUE(s.Insert(std::vector<Value>{1, 1}, 1));
  EXPECT_EQ(s.size(), 2u);
}

TEST(Streaming, OneDominatorEvictsMany) {
  StreamingSkyline s(2);
  // A diagonal of incomparable points...
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(s.Insert(
        std::vector<Value>{static_cast<float>(i + 1),
                           static_cast<float>(10 - i)},
        static_cast<PointId>(i)));
  }
  EXPECT_EQ(s.size(), 10u);
  // ...all evicted by the origin.
  EXPECT_TRUE(s.Insert(std::vector<Value>{0, 0}, 99));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{99}));
}

class StreamingAgainstBatch
    : public ::testing::TestWithParam<std::tuple<Distribution, int>> {};

TEST_P(StreamingAgainstBatch, MatchesBatchSkyline) {
  const auto [dist, d] = GetParam();
  Dataset data = GenerateSynthetic(dist, 3000, d, 555);
  StreamingSkyline s(d);
  for (size_t i = 0; i < data.count(); ++i) {
    s.Insert(std::span<const Value>(data.Row(i), static_cast<size_t>(d)),
             static_cast<PointId>(i));
  }
  EXPECT_EQ(s.inserted(), data.count());
  EXPECT_EQ(test::Sorted(s.Ids()),
            test::Sorted(test::ReferenceSkyline(data)));
  // Rows() must be consistent with Ids().
  const auto ids = s.Ids();
  const auto rows = s.Rows();
  ASSERT_EQ(rows.size(), ids.size() * static_cast<size_t>(d));
  for (size_t k = 0; k < ids.size(); ++k) {
    for (int j = 0; j < d; ++j) {
      ASSERT_EQ(rows[k * static_cast<size_t>(d) + static_cast<size_t>(j)],
                data.Row(ids[k])[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StreamingAgainstBatch,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 6, 12)));

TEST(Streaming, CompactionUnderChurn) {
  // Monotonically improving stream: every arrival evicts the previous
  // point, stressing tombstone compaction.
  StreamingSkyline s(3);
  for (int i = 1000; i > 0; --i) {
    const float v = static_cast<float>(i);
    EXPECT_TRUE(s.Insert(std::vector<Value>{v, v, v},
                         static_cast<PointId>(i)));
    EXPECT_EQ(s.size(), 1u);
  }
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{1}));
  EXPECT_GT(s.dominance_tests(), 0u);
}

TEST(Streaming, SeedBulkLoadsAnAntichainWithNoDominanceWork) {
  const Dataset data =
      GenerateSynthetic(Distribution::kAnticorrelated, 500, 4, 9);
  const std::vector<PointId> sky = test::ReferenceSkyline(data);
  StreamingSkyline s(4);
  s.Seed(data, sky);
  EXPECT_EQ(s.size(), sky.size());
  EXPECT_EQ(test::Sorted(s.Ids()), test::Sorted(sky));
  EXPECT_EQ(s.dominance_tests(), 0u);
}

TEST(Streaming, SeedThenStreamEqualsFromScratchSkyline) {
  // The shard-insert repair in one test: seed with A's skyline, stream
  // B's rows — the window must land on SKY(A ++ B) exactly (non-skyline
  // rows of A can never re-enter; seeded members can still be evicted).
  const Dataset a =
      GenerateSynthetic(Distribution::kAnticorrelated, 400, 3, 21);
  const Dataset b = GenerateSynthetic(Distribution::kIndependent, 300, 3, 22);
  std::vector<float> flat;
  for (size_t i = 0; i < a.count(); ++i) {
    flat.insert(flat.end(), a.Row(i), a.Row(i) + 3);
  }
  for (size_t i = 0; i < b.count(); ++i) {
    flat.insert(flat.end(), b.Row(i), b.Row(i) + 3);
  }
  const Dataset concat = Dataset::FromRowMajor(3, flat);

  StreamingSkyline s(3);
  s.Seed(a, test::ReferenceSkyline(a));
  for (size_t i = 0; i < b.count(); ++i) {
    s.Insert(std::span<const Value>(b.Row(i), 3),
             static_cast<PointId>(a.count() + i));
  }
  EXPECT_EQ(test::Sorted(s.Ids()),
            test::Sorted(test::ReferenceSkyline(concat)));
}

TEST(Streaming, RemoveTombstonesTheCarrierOnly) {
  StreamingSkyline s(2);
  EXPECT_TRUE(s.Insert(std::vector<Value>{1, 5}, 0));
  EXPECT_TRUE(s.Insert(std::vector<Value>{5, 1}, 1));
  EXPECT_TRUE(s.Insert(std::vector<Value>{3, 3}, 2));
  EXPECT_TRUE(s.Remove(1));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(test::Sorted(s.Ids()), (std::vector<PointId>{0, 2}));
  EXPECT_FALSE(s.Remove(1));   // already tombstoned
  EXPECT_FALSE(s.Remove(42));  // never present
  // A point only the removed member had dominated is insertable again —
  // Remove carries no dominance semantics, the caller re-promotes.
  EXPECT_TRUE(s.Insert(std::vector<Value>{6, 2}, 3));
  EXPECT_EQ(s.size(), 3u);
}

TEST(Streaming, RemoveUnderBatchedWindowLeavesNoGhostLanes) {
  // More than 64 live members forces inserts through the SoA tile path;
  // a removal must pad its lane inert or later batched scans would test
  // against a ghost. Members: id i -> (i+1, 100-i), pairwise
  // incomparable.
  StreamingSkyline s(2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.Insert(std::vector<Value>{static_cast<float>(i + 1),
                                            static_cast<float>(100 - i)},
                         static_cast<PointId>(i)));
  }
  // Remove less than half so tombstones stay resident (no compaction).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(s.Remove(static_cast<PointId>(i)));
  }
  EXPECT_EQ(s.size(), 70u);
  // (11.5, 90.5) is dominated by removed member 10 — (11, 90) — and by
  // nothing live, so it must be accepted.
  EXPECT_TRUE(s.Insert(std::vector<Value>{11.5f, 90.5f}, 1000));
  // (51.5, 50.5) is dominated by live member 50 — (51, 50): rejected.
  EXPECT_FALSE(s.Insert(std::vector<Value>{51.5f, 50.5f}, 1001));
  // Batched eviction sweep across a window holding tombstones: the
  // origin evicts every live member.
  EXPECT_TRUE(s.Insert(std::vector<Value>{0, 0}, 1002));
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{1002}));
}

TEST(Streaming, CoincidentDuplicatesInTheBatchedWindow) {
  // Ties through the tile path: a coincident duplicate of a member is
  // neither dominated nor dominating, so it joins and evicts nothing.
  StreamingSkyline s(2);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(s.Insert(std::vector<Value>{static_cast<float>(i + 1),
                                            static_cast<float>(80 - i)},
                         static_cast<PointId>(i)));
  }
  EXPECT_TRUE(s.Insert(std::vector<Value>{40.0f, 41.0f}, 500));  // == id 39
  EXPECT_EQ(s.size(), 81u);
  const std::vector<PointId> ids = test::Sorted(s.Ids());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 39u) != ids.end());
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), 500u) != ids.end());
}

TEST(Streaming, CompactionAfterHeavyRemoval) {
  // Tombstoning more than half of a large window triggers compaction,
  // which renumbers slots and rebuilds the tile mirror; the survivors
  // and later inserts must be unaffected.
  StreamingSkyline s(2);
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(s.Insert(std::vector<Value>{static_cast<float>(i + 1),
                                            static_cast<float>(128 - i)},
                         static_cast<PointId>(i)));
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s.Remove(static_cast<PointId>(i)));
  }
  EXPECT_EQ(s.size(), 28u);
  std::vector<PointId> want;
  for (int i = 100; i < 128; ++i) want.push_back(static_cast<PointId>(i));
  EXPECT_EQ(test::Sorted(s.Ids()), want);
  // The compacted window still rejects and accepts correctly.
  EXPECT_FALSE(s.Insert(std::vector<Value>{111.5f, 18.5f}, 900));
  EXPECT_TRUE(s.Insert(std::vector<Value>{0.5f, 200.0f}, 901));
  EXPECT_EQ(s.size(), 29u);
}

TEST(Streaming, ScalarAndSimdAgree) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 1500, 7, 6);
  StreamingSkyline simd(7, true), scalar(7, false);
  for (size_t i = 0; i < data.count(); ++i) {
    const std::span<const Value> p(data.Row(i), 7);
    ASSERT_EQ(simd.Insert(p, static_cast<PointId>(i)),
              scalar.Insert(p, static_cast<PointId>(i)))
        << "point " << i;
  }
  EXPECT_EQ(test::Sorted(simd.Ids()), test::Sorted(scalar.Ids()));
}

}  // namespace
}  // namespace sky
