// Copyright (c) SkyBench-NG contributors.
// Differential property suite for the query rewriter: for random
// (preference, projection, constraint, band, top-k) combinations, the
// engine's answer through the materialized view must equal the
// brute-force oracle applied directly to the transformed semantics —
// for every tested algorithm.
#include <algorithm>
#include <limits>
#include <random>
#include <vector>

#include "data/generator.h"
#include "data/realistic.h"
#include "gtest/gtest.h"
#include "query/engine.h"
#include "query_test_util.h"
#include "test_util.h"

namespace sky::test {
namespace {

const Algorithm kAlgos[] = {Algorithm::kBnl, Algorithm::kHybrid,
                            Algorithm::kQFlow, Algorithm::kBSkyTree};

QuerySpec RandomSpec(std::mt19937_64& rng, int dims) {
  QuerySpec spec;
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);

  // Preferences: each dimension min/max/ignore, re-rolled until at least
  // one dimension is ranked.
  for (;;) {
    spec.preferences.clear();
    for (int j = 0; j < dims; ++j) {
      const uint64_t roll = rng() % 5;
      spec.preferences.push_back(roll < 2   ? Preference::kMin
                                 : roll < 4 ? Preference::kMax
                                            : Preference::kIgnore);
    }
    if (std::any_of(spec.preferences.begin(), spec.preferences.end(),
                    [](Preference p) { return p != Preference::kIgnore; })) {
      break;
    }
  }

  // 0-2 box constraints over [0, 1) data, wide enough to usually keep
  // some rows but narrow enough to actually filter.
  const int n_constraints = static_cast<int>(rng() % 3);
  for (int c = 0; c < n_constraints; ++c) {
    const int dim = static_cast<int>(rng() % static_cast<uint64_t>(dims));
    float lo = unit(rng) * 0.6f;
    float hi = lo + 0.2f + unit(rng) * 0.4f;
    if (rng() % 4 == 0) lo = -std::numeric_limits<float>::infinity();
    if (rng() % 4 == 0) hi = std::numeric_limits<float>::infinity();
    spec.Constrain(dim, lo, hi);
  }

  if (rng() % 2) spec.band_k = 1 + static_cast<uint32_t>(rng() % 4);
  const uint64_t cap = rng() % 4;
  if (cap == 1) spec.top_k = 1;
  if (cap == 2) spec.top_k = 5 + rng() % 20;
  return spec;
}

testing::AssertionResult Matches(const QueryResult& got,
                                 const std::vector<OracleEntry>& want,
                                 bool ranked) {
  std::vector<OracleEntry> entries(got.ids.size());
  for (size_t i = 0; i < got.ids.size(); ++i) {
    entries[i] = OracleEntry{got.ids[i], got.dominator_counts[i]};
  }
  if (!ranked) {
    std::sort(entries.begin(), entries.end(),
              [](const OracleEntry& a, const OracleEntry& b) {
                return a.id < b.id;
              });
  }
  if (entries == want) return testing::AssertionSuccess();
  auto render = [](const std::vector<OracleEntry>& v) {
    std::string s;
    for (const OracleEntry& e : v) {
      s += "(" + std::to_string(e.id) + "," + std::to_string(e.dominators) +
           ") ";
    }
    return s;
  };
  return testing::AssertionFailure()
         << "engine: " << render(entries) << "\noracle: " << render(want);
}

TEST(QueryPropertyTest, EngineAgreesWithOracleAcrossAlgorithms) {
  std::mt19937_64 rng(20260728);
  const Distribution dists[] = {Distribution::kCorrelated,
                                Distribution::kIndependent,
                                Distribution::kAnticorrelated};
  for (int trial = 0; trial < 30; ++trial) {
    const int dims = 2 + static_cast<int>(rng() % 5);
    const size_t n = 60 + rng() % 140;
    const Dataset data =
        GenerateSynthetic(dists[trial % 3], n, dims, /*seed=*/rng());
    const QuerySpec spec = RandomSpec(rng, dims);
    const auto oracle = ReferenceQuery(data, spec);

    for (const Algorithm algo : kAlgos) {
      Options opts;
      opts.algorithm = algo;
      opts.threads = IsParallelAlgorithm(algo) ? 2 : 1;
      const QueryResult got = RunQuery(data, spec, opts);
      EXPECT_TRUE(Matches(got, oracle, spec.top_k > 0))
          << "trial " << trial << " algo " << AlgorithmName(algo) << " n "
          << n << " d " << dims << "\nspec "
          << spec.Canonicalize(dims).CanonicalKey();
      EXPECT_EQ(got.matched_rows >= got.ids.size(), true);
    }
  }
}

TEST(QueryPropertyTest, EngineExecutePathAgreesWithOracle) {
  // Same differential, but through the registered-dataset + cache path.
  std::mt19937_64 rng(7);
  SkylineEngine engine;
  const int dims = 4;
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 250, dims, 99));
  const std::shared_ptr<const Dataset> data = engine.Find("ds");
  for (int trial = 0; trial < 10; ++trial) {
    const QuerySpec spec = RandomSpec(rng, dims);
    const auto oracle = ReferenceQuery(*data, spec);
    // Twice: a cold miss and a cache hit must both match the oracle.
    for (int round = 0; round < 2; ++round) {
      const QueryResult got = engine.Execute("ds", spec);
      EXPECT_TRUE(Matches(got, oracle, spec.top_k > 0))
          << "trial " << trial << " round " << round;
      if (round == 1) {
        EXPECT_TRUE(got.cache_hit);
      }
    }
  }
}

TEST(QueryPropertyTest, RealisticDataWithHeavyTies) {
  // Quantised house-like data: many coincident values stress the
  // duplicate-handling of the rewrite (projection creates new ties).
  std::mt19937_64 rng(31);
  const Dataset data = GenerateHouseLike(220, /*seed=*/5);
  for (int trial = 0; trial < 8; ++trial) {
    const QuerySpec spec = RandomSpec(rng, data.dims());
    const auto oracle = ReferenceQuery(data, spec);
    for (const Algorithm algo : kAlgos) {
      Options opts;
      opts.algorithm = algo;
      const QueryResult got = RunQuery(data, spec, opts);
      EXPECT_TRUE(Matches(got, oracle, spec.top_k > 0))
          << "trial " << trial << " algo " << AlgorithmName(algo);
    }
  }
}

}  // namespace
}  // namespace sky::test
