// Copyright (c) SkyBench-NG contributors.
// Differential and unit coverage for cost-model auto-selection:
// Algorithm::kAuto must be row-for-row identical to every fixed
// algorithm across distributions, shard counts/policies, constraints and
// band depths, and the selection boundaries themselves must be
// deterministic (tiny n => sequential pick, anticorrelated large n with
// a thread budget => Hybrid).
#include <algorithm>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/skyline.h"
#include "data/generator.h"
#include "data/realistic.h"
#include "gtest/gtest.h"
#include "query/cost_model.h"
#include "query/engine.h"

namespace sky::test {
namespace {

std::vector<std::pair<PointId, uint32_t>> SortedEntries(
    const QueryResult& r) {
  std::vector<std::pair<PointId, uint32_t>> out;
  out.reserve(r.ids.size());
  for (size_t i = 0; i < r.ids.size(); ++i) {
    out.emplace_back(r.ids[i], r.dominator_counts[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Dataset MakeData(const std::string& dist, size_t n, int d) {
  if (dist == "house") return GenerateHouseLike(n, /*seed=*/5);
  return GenerateSynthetic(ParseDistribution(dist), n, d, /*seed=*/5);
}

TEST(QueryAutoselectTest, AutoMatchesEveryFixedAlgorithmEverywhere) {
  // The full differential grid of the acceptance criteria: dist x K x
  // policy x {unconstrained, constrained} x {skyline, 3-skyband}. Auto
  // must agree with all 14 fixed algorithms on ids and counts.
  const int d = 4;
  for (const std::string dist : {"indep", "anti", "corr", "house"}) {
    const Dataset data = MakeData(dist, 420, d);
    const int dims = data.dims();
    std::vector<QuerySpec> specs;
    QuerySpec plain;
    specs.push_back(plain);
    QuerySpec boxed;
    boxed.Constrain(dims - 1, 0.0f, 0.45f);
    specs.push_back(boxed);
    QuerySpec banded;
    banded.band_k = 3;
    specs.push_back(banded);
    QuerySpec banded_boxed = boxed;
    banded_boxed.band_k = 3;
    specs.push_back(banded_boxed);

    for (const size_t shards : {size_t{1}, size_t{4}}) {
      for (const ShardPolicy policy :
           {ShardPolicy::kRoundRobin, ShardPolicy::kMedianPivot}) {
        if (shards == 1 && policy != ShardPolicy::kRoundRobin) continue;
        SkylineEngine::Config config;
        config.shards = shards;
        config.shard_policy = policy;
        SkylineEngine engine(config);
        engine.RegisterDataset("ds", data.Clone());
        for (const QuerySpec& spec : specs) {
          Options auto_opts;
          auto_opts.algorithm = Algorithm::kAuto;
          auto_opts.threads = 2;
          engine.ClearCache();
          const QueryResult auto_r = engine.Execute("ds", spec, auto_opts);
          const auto auto_entries = SortedEntries(auto_r);
          EXPECT_FALSE(auto_r.shard_algorithms.empty());
          for (const Algorithm chosen : auto_r.shard_algorithms) {
            EXPECT_NE(chosen, Algorithm::kAuto);  // plan resolved it
          }
          for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
            Options fixed = auto_opts;
            fixed.algorithm = desc.algorithm;
            engine.ClearCache();
            const QueryResult fixed_r = engine.Execute("ds", spec, fixed);
            EXPECT_EQ(auto_entries, SortedEntries(fixed_r))
                << dist << " K=" << shards << " policy="
                << ShardPolicyName(policy) << " band_k=" << spec.band_k
                << " constrained=" << !spec.constraints.empty()
                << " algo=" << desc.name;
          }
        }
      }
    }
  }
}

TEST(QueryAutoselectTest, TinyDatasetPicksSequential) {
  // Pool spin-up dwarfs the work on a few hundred rows: the model must
  // choose the sequential candidate even with threads to burn.
  const StatsSketch sk = ComputeSketch(
      GenerateSynthetic(Distribution::kIndependent, 500, 4, 3));
  SelectionContext ctx;
  ctx.threads = 8;
  const AlgorithmChoice choice = ChooseAlgorithm(sk, ctx);
  EXPECT_EQ(choice.algorithm, Algorithm::kBSkyTree);
  EXPECT_FALSE(GetAlgorithmDescriptor(choice.algorithm).parallel);
}

TEST(QueryAutoselectTest, AnticorrelatedLargePicksHybrid) {
  // The paper's Fig. 5/6 scale regime: huge skyline, many threads.
  StatsSketch sk;
  sk.n = 2'000'000;
  sk.d = 8;
  sk.est_skyline = 60'000.0;
  sk.growth_exponent = 0.6;
  sk.mean_spearman = -0.8;
  SelectionContext ctx;
  ctx.threads = 16;
  EXPECT_EQ(ChooseAlgorithm(sk, ctx).algorithm, Algorithm::kHybrid);
}

TEST(QueryAutoselectTest, ThreadBudgetScalesParallelCostsOnly) {
  // The model's thread semantics: a bigger budget strictly cheapens a
  // parallel algorithm's estimate (work divides, per-thread startup
  // grows slower), while a sequential algorithm's estimate ignores the
  // budget entirely.
  StatsSketch sk;
  sk.n = 200'000;
  sk.d = 8;
  sk.est_skyline = 5'000.0;
  sk.growth_exponent = 0.5;
  SelectionContext one;
  one.threads = 1;
  SelectionContext many = one;
  many.threads = 16;
  EXPECT_LT(EstimateAlgorithmCost(Algorithm::kHybrid, sk, many),
            EstimateAlgorithmCost(Algorithm::kHybrid, sk, one));
  EXPECT_LT(EstimateAlgorithmCost(Algorithm::kQFlow, sk, many),
            EstimateAlgorithmCost(Algorithm::kQFlow, sk, one));
  EXPECT_DOUBLE_EQ(EstimateAlgorithmCost(Algorithm::kBSkyTree, sk, one),
                   EstimateAlgorithmCost(Algorithm::kBSkyTree, sk, many));
}

TEST(QueryAutoselectTest, SelectivityShrinksTheEffectiveInstance) {
  // A selective box turns a parallel-scale instance into a sequential
  // one: same sketch, selectivity 1 vs 1e-4 (~100 surviving rows).
  StatsSketch sk;
  sk.n = 1'000'000;
  sk.d = 8;
  sk.est_skyline = 30'000.0;
  sk.growth_exponent = 0.6;
  SelectionContext wide;
  wide.threads = 16;
  SelectionContext narrow = wide;
  narrow.selectivity = 1e-4;
  EXPECT_TRUE(
      GetAlgorithmDescriptor(ChooseAlgorithm(sk, wide).algorithm).parallel);
  EXPECT_FALSE(
      GetAlgorithmDescriptor(ChooseAlgorithm(sk, narrow).algorithm).parallel);
}

TEST(QueryAutoselectTest, SkybandRequestsPickTheBlockFlowSubstrate) {
  // band_k > 1 executes ComputeSkyband's Q-Flow block flow whatever the
  // options say; the reported choice must match that reality.
  const StatsSketch sk = ComputeSketch(
      GenerateSynthetic(Distribution::kIndependent, 2'000, 4, 3));
  SelectionContext ctx;
  ctx.band_k = 3;
  ctx.threads = 4;
  const AlgorithmChoice choice = ChooseAlgorithm(sk, ctx);
  EXPECT_TRUE(GetAlgorithmDescriptor(choice.algorithm).skyband);
}

TEST(QueryAutoselectTest, PlanResolvesPerShardAlgorithms) {
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 2'000, 4, 9);
  const ShardMap map =
      ShardMap::Build(data, 4, ShardPolicy::kMedianPivot);
  QuerySpec spec;
  spec.Constrain(0, 0.0f, 0.6f);
  const QuerySpec canon = spec.Canonicalize(data.dims());
  Options opts;
  opts.algorithm = Algorithm::kAuto;
  opts.threads = 2;
  const ExecutionPlan plan = PlanQuery(map, canon, opts);
  ASSERT_EQ(plan.algorithms.size(), plan.shards.size());
  for (const Algorithm a : plan.algorithms) {
    EXPECT_NE(a, Algorithm::kAuto);
  }
  EXPECT_NE(plan.merge_algorithm, Algorithm::kAuto);
  EXPECT_GE(plan.shard_threads, 1);

  // Thread budget is all-or-nothing: few enough survivors (S^2 <= T)
  // run in turn with the FULL budget; otherwise one thread each with
  // across-shard parallelism. A fractional slice would be the worst of
  // both modes.
  Options wide = opts;
  wide.threads = 16;
  const ExecutionPlan wide_plan = PlanQuery(map, canon, wide);
  EXPECT_EQ(wide_plan.shard_threads,
            wide_plan.shards.size() * wide_plan.shards.size() <= 16 ? 16 : 1);
  QuerySpec uncon;  // all 4 shards survive; 4^2 > 2 threads
  Options narrow;
  narrow.algorithm = Algorithm::kAuto;
  narrow.threads = 2;
  const ExecutionPlan uncon_plan =
      PlanQuery(map, uncon.Canonicalize(data.dims()), narrow);
  EXPECT_EQ(uncon_plan.shards.size(), 4u);
  EXPECT_EQ(uncon_plan.shard_threads, 1);

  // The explicit-algorithm path must stay byte-for-byte pre-selection:
  // no per-shard algorithms, shard budget 1.
  Options fixed;
  fixed.algorithm = Algorithm::kHybrid;
  const ExecutionPlan fixed_plan = PlanQuery(map, canon, fixed);
  EXPECT_TRUE(fixed_plan.algorithms.empty());
  EXPECT_EQ(fixed_plan.shard_threads, 1);
}

TEST(QueryAutoselectTest, EngineConfigForcesAutoSelection) {
  // Config::auto_algorithm overrides per-request algorithms fleet-wide;
  // results still match a plain fixed run.
  const Dataset data =
      GenerateSynthetic(Distribution::kAnticorrelated, 600, 4, 17);
  SkylineEngine::Config config;
  config.auto_algorithm = true;
  SkylineEngine engine(config);
  engine.RegisterDataset("ds", data.Clone());
  Options opts;
  opts.algorithm = Algorithm::kBnl;  // overridden by the config
  const QueryResult r = engine.Execute("ds", QuerySpec{}, opts);
  ASSERT_EQ(r.shard_algorithms.size(), 1u);
  EXPECT_NE(r.shard_algorithms[0], Algorithm::kAuto);
  EXPECT_EQ(SortedEntries(r), SortedEntries(RunQuery(data, QuerySpec{})));
}

TEST(QueryAutoselectTest, ProgressiveRequestsPickStreamingAlgorithms) {
  // 500 rows would normally pick BSkyTree, which never streams; with a
  // progressive callback installed the model must restrict itself to
  // streaming-capable candidates and the batches must actually arrive.
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 500, 4, 3);
  SkylineEngine engine;
  engine.RegisterDataset("ds", data.Clone());
  std::vector<PointId> streamed;
  Options opts;
  opts.algorithm = Algorithm::kAuto;
  opts.threads = 2;
  opts.progressive = [&](std::span<const PointId> ids) {
    streamed.insert(streamed.end(), ids.begin(), ids.end());
  };
  const QueryResult r = engine.Execute("ds", QuerySpec{}, opts);
  ASSERT_EQ(r.shard_algorithms.size(), 1u);
  EXPECT_TRUE(GetAlgorithmDescriptor(r.shard_algorithms[0]).progressive);
  std::vector<PointId> got = streamed;
  std::vector<PointId> want = r.ids;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);

  // Direct selection agrees: same sketch, progressive on vs off.
  const StatsSketch sk = ComputeSketch(data);
  SelectionContext ctx;
  ctx.threads = 2;
  EXPECT_FALSE(GetAlgorithmDescriptor(ChooseAlgorithm(sk, ctx).algorithm)
                   .progressive);
  ctx.progressive = true;
  EXPECT_TRUE(GetAlgorithmDescriptor(ChooseAlgorithm(sk, ctx).algorithm)
                  .progressive);
}

TEST(QueryAutoselectTest, OneShotRunQueryResolvesAuto) {
  // RunQuery / ComputeSkyline with kAuto sketch the input on the fly and
  // must agree with the BNL oracle.
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 800, 5, 23);
  Options opts;
  opts.algorithm = Algorithm::kAuto;
  const QueryResult r = RunQuery(data, QuerySpec{}, opts);
  ASSERT_EQ(r.shard_algorithms.size(), 1u);
  EXPECT_NE(r.shard_algorithms[0], Algorithm::kAuto);
  EXPECT_TRUE(VerifyQuery(data, QuerySpec{}, r));
  const Result direct = ComputeSkyline(data, opts);
  EXPECT_TRUE(VerifySkyline(data, direct.skyline));
}

}  // namespace
}  // namespace sky::test
