// Copyright (c) SkyBench-NG contributors.
// Targeted coverage for smaller surfaces: stats accounting, dataset I/O
// failure modes, workload cache keying, streaming with negative
// coordinates, and DtCounter toggling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "bench_support/workload.h"
#include "common/stats.h"
#include "core/streaming.h"
#include "data/dataset.h"
#include "test_util.h"

namespace sky {
namespace {

TEST(RunStatsCoverage, AccountedSumsNamedPhases) {
  RunStats st;
  st.init_seconds = 1;
  st.prefilter_seconds = 2;
  st.pivot_seconds = 3;
  st.phase1_seconds = 4;
  st.phase2_seconds = 5;
  st.compress_seconds = 6;
  st.other_seconds = 7;
  EXPECT_DOUBLE_EQ(st.Accounted(), 28.0);
}

TEST(DtCounterCoverage, DisabledCounterIsNoop) {
  DtCounter off(false);
  off.AddTests(100);
  off.AddMaskSkips(50);
  EXPECT_EQ(off.tests(), 0u);
  EXPECT_EQ(off.mask_skips(), 0u);
  DtCounter on(true);
  on.AddTests(100);
  on.AddTests(11);
  on.AddMaskSkips(50);
  EXPECT_EQ(on.tests(), 111u);
  EXPECT_EQ(on.mask_skips(), 50u);
  on.Reset();
  EXPECT_EQ(on.tests(), 0u);
}

TEST(DatasetCoverage, TruncatedBinaryRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sky_trunc.bin").string();
  Dataset d = test::MakeDataset({{1, 2, 3}, {4, 5, 6}});
  d.SaveBinary(path);
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(Dataset::LoadBinary(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DatasetCoverage, MissingFilesThrow) {
  EXPECT_THROW(Dataset::LoadCsv("/nonexistent/x.csv"), std::runtime_error);
  EXPECT_THROW(Dataset::LoadBinary("/nonexistent/x.bin"),
               std::runtime_error);
}

TEST(WorkloadCoverage, DifferentSeedsAreDifferentEntries) {
  WorkloadSpec a{Distribution::kIndependent, 50, 3, 1};
  WorkloadSpec b{Distribution::kIndependent, 50, 3, 2};
  const Dataset& da = WorkloadCache::Instance().Get(a);
  const Dataset& db = WorkloadCache::Instance().Get(b);
  EXPECT_NE(&da, &db);
  WorkloadCache::Instance().Clear();
}

TEST(StreamingCoverage, NegativeCoordinates) {
  StreamingSkyline s(2);
  EXPECT_TRUE(s.Insert(std::vector<Value>{-1.0f, 5.0f}, 0));
  EXPECT_TRUE(s.Insert(std::vector<Value>{-2.0f, 6.0f}, 1));  // incomparable
  EXPECT_TRUE(s.Insert(std::vector<Value>{-3.0f, 4.0f}, 2));  // evicts both
  EXPECT_EQ(s.Ids(), (std::vector<PointId>{2}));
}

TEST(StreamingCoverage, MaxDims) {
  StreamingSkyline s(kMaxDims);
  std::vector<Value> p(kMaxDims, 1.0f);
  EXPECT_TRUE(s.Insert(p, 0));
  p[kMaxDims - 1] = 0.5f;
  EXPECT_TRUE(s.Insert(p, 1));
  EXPECT_EQ(s.size(), 1u);  // second dominates first
}

}  // namespace
}  // namespace sky
