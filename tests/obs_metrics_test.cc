// Copyright (c) SkyBench-NG contributors.
// Unit tests for the metrics core (obs/metrics.h): counter/gauge cell
// merging, histogram `le` bucketing and quantile estimation against a
// sorted-vector oracle, registry interning semantics (stable pointers,
// label-order insensitivity, kind-mismatch rejection), snapshot ordering
// and collector contribution.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/random.h"

namespace sky::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(10.0);
  g.Add(-2.5);
  EXPECT_EQ(g.Value(), 7.5);
  g.Set(1.0);  // Set overwrites, independent of prior Adds
  EXPECT_EQ(g.Value(), 1.0);
}

TEST(HistogramTest, LeBucketSemantics) {
  // Bucket i holds observations <= bounds[i] (Prometheus `le`), the last
  // bucket is the +inf overflow.
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);
  h.Observe(1.0);  // boundary value belongs to its own bucket
  h.Observe(1.5);
  h.Observe(4.0);
  h.Observe(5.0);  // overflow
  const HistogramData d = h.Snapshot();
  ASSERT_EQ(d.buckets.size(), 4u);
  EXPECT_EQ(d.buckets[0], 2u);
  EXPECT_EQ(d.buckets[1], 1u);
  EXPECT_EQ(d.buckets[2], 1u);
  EXPECT_EQ(d.buckets[3], 1u);
  EXPECT_EQ(d.count, 5u);
  EXPECT_DOUBLE_EQ(d.sum, 12.0);
}

TEST(HistogramTest, NanObservationsAreDropped) {
  Histogram h({1.0});
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(0.5);
  const HistogramData d = h.Snapshot();
  EXPECT_EQ(d.count, 1u);
  EXPECT_DOUBLE_EQ(d.sum, 0.5);
}

TEST(HistogramTest, RejectsDegenerateBounds) {
  EXPECT_THROW(Histogram({}), std::runtime_error);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::runtime_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::runtime_error);
  EXPECT_THROW(Histogram({1.0, std::numeric_limits<double>::infinity()}),
               std::runtime_error);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.Snapshot().Quantile(0.5), 0.0);
}

/// Sorted-vector quantile oracle matching the histogram's rank rule: the
/// value at cumulative rank ceil(q * n).
double OracleQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double target = q * static_cast<double>(values.size());
  size_t rank = static_cast<size_t>(std::ceil(target));
  rank = std::min(std::max<size_t>(rank, 1), values.size());
  return values[rank - 1];
}

TEST(HistogramTest, QuantileMatchesSortedOracleOnLinearBounds) {
  // Unit-width buckets over (0, 100): the estimate must land in the same
  // bucket as the oracle rank, i.e. within one bucket width of the true
  // order statistic.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  Histogram h(bounds);
  Rng rng(1234);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(rng.NextDouble() * 100.0);
    h.Observe(values.back());
  }
  const HistogramData d = h.Snapshot();
  ASSERT_EQ(d.count, values.size());
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(d.Quantile(q), OracleQuantile(values, q), 1.0 + 1e-9)
        << "q=" << q;
  }
}

TEST(HistogramTest, QuantileMatchesSortedOracleOnLatencyBounds) {
  // The default log bounds guarantee at most one bucket ratio (10^0.1)
  // of relative error anywhere in the serving range.
  Histogram h(DefaultLatencyBounds());
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 3000; ++i) {
    // Log-uniform latencies in [1e-6 s, 1e-1 s].
    values.push_back(std::pow(10.0, -6.0 + 5.0 * rng.NextDouble()));
    h.Observe(values.back());
  }
  const HistogramData d = h.Snapshot();
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double oracle = OracleQuantile(values, q);
    const double est = d.Quantile(q);
    EXPECT_GT(est, oracle / 1.26) << "q=" << q;
    EXPECT_LT(est, oracle * 1.26) << "q=" << q;
  }
}

TEST(RegistryTest, InternsStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("sky_test_total");
  Counter* b = reg.GetCounter("sky_test_total");
  EXPECT_EQ(a, b);
  // Labels are sorted at registration: declaration order is irrelevant.
  Counter* l1 = reg.GetCounter("sky_rpc_total", {{"m", "x"}, {"s", "ok"}});
  Counter* l2 = reg.GetCounter("sky_rpc_total", {{"s", "ok"}, {"m", "x"}});
  EXPECT_EQ(l1, l2);
  EXPECT_NE(a, l1);
  Counter* l3 = reg.GetCounter("sky_rpc_total", {{"m", "y"}, {"s", "ok"}});
  EXPECT_NE(l1, l3);
}

TEST(RegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.GetCounter("sky_thing");
  EXPECT_THROW(reg.GetGauge("sky_thing"), std::runtime_error);
  EXPECT_THROW(reg.GetHistogram("sky_thing"), std::runtime_error);
  // Same name under different labels is a different metric: allowed.
  EXPECT_NE(reg.GetCounter("sky_thing", {{"k", "v"}}), nullptr);
}

TEST(RegistryTest, HistogramDefaultsToLatencyBounds) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("sky_latency_seconds");
  EXPECT_EQ(h->bounds().size(), DefaultLatencyBounds().size());
  Histogram* custom =
      reg.GetHistogram("sky_sizes", {}, "", {1.0, 10.0, 100.0});
  EXPECT_EQ(custom->bounds().size(), 3u);
}

TEST(RegistryTest, SnapshotIsSortedAndQueryable) {
  MetricsRegistry reg;
  reg.GetCounter("sky_zzz_total")->Add(7);
  reg.GetCounter("sky_aaa_total")->Add(3);
  reg.GetGauge("sky_mid_gauge")->Set(1.5);
  reg.GetCounter("sky_rpc_total", {{"m", "b"}})->Add(2);
  reg.GetCounter("sky_rpc_total", {{"m", "a"}})->Add(1);
  reg.GetHistogram("sky_lat_seconds", {}, "", {1.0})->Observe(0.5);

  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 6u);
  for (size_t i = 1; i < snap.metrics.size(); ++i) {
    const MetricValue& prev = snap.metrics[i - 1];
    const MetricValue& cur = snap.metrics[i];
    EXPECT_TRUE(prev.name < cur.name ||
                (prev.name == cur.name && prev.labels < cur.labels));
  }
  EXPECT_EQ(snap.Value("sky_zzz_total"), 7.0);
  EXPECT_EQ(snap.Value("sky_rpc_total", {{"m", "a"}}), 1.0);
  EXPECT_EQ(snap.Value("sky_rpc_total", {{"m", "b"}}), 2.0);
  EXPECT_EQ(snap.Value("sky_no_such_metric"), 0.0);
  const MetricValue* hist = snap.Find("sky_lat_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_EQ(hist->histogram.count, 1u);
}

TEST(RegistryTest, CollectorsContributeAtSnapshotTime) {
  MetricsRegistry reg;
  reg.GetCounter("sky_native_total")->Add(1);
  int calls = 0;
  reg.AddCollector([&calls](std::vector<MetricValue>& out) {
    ++calls;
    MetricValue v;
    v.name = "sky_collected_entries";
    v.kind = MetricKind::kGauge;
    v.value = 12.0;
    out.push_back(std::move(v));
  });
  const MetricsSnapshot s1 = reg.Snapshot();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(s1.Value("sky_collected_entries"), 12.0);
  // Collected values sort into the same ordered view as native metrics.
  const MetricsSnapshot s2 = reg.Snapshot();
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(s2.metrics.size(), 2u);
  EXPECT_EQ(s2.metrics[0].name, "sky_collected_entries");
  EXPECT_EQ(s2.metrics[1].name, "sky_native_total");
}

}  // namespace
}  // namespace sky::obs
