// Copyright (c) SkyBench-NG contributors.
#include "core/qflow.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

Options QFlowOpts(int threads, size_t alpha = 0) {
  Options o;
  o.algorithm = Algorithm::kQFlow;
  o.threads = threads;
  o.alpha = alpha;
  return o;
}

TEST(QFlow, TinyHandPickedCase) {
  // Figure 1a of the paper: p(2,2), q(4,4), r(1,5), s(5,1), t(3,1.5)-ish.
  Dataset data = test::MakeDataset(
      {{2, 2}, {4, 4}, {1, 5}, {5, 1}, {3, 1.5}});
  Result r = QFlowCompute(data, QFlowOpts(2));
  // q=(4,4) is dominated by p=(2,2); everything else is skyline.
  EXPECT_EQ(test::Sorted(r.skyline), (std::vector<PointId>{0, 2, 3, 4}));
}

class QFlowAgainstOracle
    : public ::testing::TestWithParam<std::tuple<Distribution, int, int>> {};

TEST_P(QFlowAgainstOracle, MatchesReference) {
  const auto [dist, d, threads] = GetParam();
  Dataset data = GenerateSynthetic(dist, 4000, d, 19);
  Result r = QFlowCompute(data, QFlowOpts(threads));
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QFlowAgainstOracle,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 6, 12),
                       ::testing::Values(1, 4)));

class QFlowAlphaEdge : public ::testing::TestWithParam<size_t> {};

TEST_P(QFlowAlphaEdge, AnyBlockSizeIsCorrect) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 777, 4, 5);
  Result r = QFlowCompute(data, QFlowOpts(3, GetParam()));
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

// α = 1 degenerates into a fully sequential-ish scan, α larger than n
// makes a single block; both must stay correct.
INSTANTIATE_TEST_SUITE_P(Alphas, QFlowAlphaEdge,
                         ::testing::Values(1, 2, 63, 256, 100000));

TEST(QFlow, DuplicateSkylinePointsAllReported) {
  Dataset data = test::MakeDataset(
      {{1, 2}, {1, 2}, {2, 1}, {3, 3}, {1, 2}});
  Result r = QFlowCompute(data, QFlowOpts(2, 2));
  // (3,3) is dominated; all three copies of (1,2) and (2,1) remain.
  EXPECT_EQ(test::Sorted(r.skyline), (std::vector<PointId>{0, 1, 2, 4}));
}

TEST(QFlow, EmptyInput) {
  Dataset data;
  Result r = QFlowCompute(data, QFlowOpts(4));
  EXPECT_TRUE(r.skyline.empty());
}

TEST(QFlow, ProgressiveCallbackCoversExactlyTheSkyline) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 3000, 5, 23);
  Options o = QFlowOpts(4, 128);
  std::vector<PointId> streamed;
  o.progressive = [&](std::span<const PointId> chunk) {
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  };
  Result r = QFlowCompute(data, o);
  EXPECT_EQ(test::Sorted(streamed), test::Sorted(r.skyline));
}

TEST(QFlow, StatsAccounting) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 5000, 6, 29);
  Options o = QFlowOpts(2);
  o.count_dts = true;
  Result r = QFlowCompute(data, o);
  EXPECT_EQ(r.stats.skyline_size, r.skyline.size());
  EXPECT_GT(r.stats.dominance_tests, 0u);
  EXPECT_GT(r.stats.total_seconds, 0.0);
  EXPECT_LE(r.stats.init_seconds + r.stats.phase1_seconds +
                r.stats.phase2_seconds + r.stats.compress_seconds,
            r.stats.total_seconds + 1e-6);
}

TEST(QFlow, DeterministicResultAcrossThreadCounts) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 2500, 6, 31);
  const auto one = test::Sorted(QFlowCompute(data, QFlowOpts(1)).skyline);
  for (int t : {2, 3, 8}) {
    EXPECT_EQ(test::Sorted(QFlowCompute(data, QFlowOpts(t)).skyline), one);
  }
}

}  // namespace
}  // namespace sky
