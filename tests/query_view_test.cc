// Copyright (c) SkyBench-NG contributors.
// Rewriter unit tests: the materialized view must reflect negation,
// projection and constraint filtering exactly, with correct row/dim maps.
#include "query/view.h"

#include <cmath>

#include "gtest/gtest.h"
#include "test_util.h"

namespace sky::test {
namespace {

Dataset SmallData() {
  return MakeDataset({
      {0.1f, 0.9f, 5.0f},
      {0.4f, 0.5f, 6.0f},
      {0.8f, 0.2f, 7.0f},
      {0.6f, 0.6f, 8.0f},
  });
}

TEST(QueryViewTest, IdentitySpecCopiesEverything) {
  const Dataset data = SmallData();
  const QueryView view = MaterializeView(data, QuerySpec{}.Canonicalize(3));
  ASSERT_EQ(view.data.count(), 4u);
  ASSERT_EQ(view.data.dims(), 3);
  EXPECT_EQ(view.kept_dims, (std::vector<int>{0, 1, 2}));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(view.row_ids[i], static_cast<PointId>(i));
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(view.data.Row(i)[j], data.Row(i)[j]) << i << "," << j;
    }
  }
}

TEST(QueryViewTest, MaxDimensionsAreNegated) {
  const Dataset data = SmallData();
  QuerySpec spec;
  spec.SetPreference(1, Preference::kMax);
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  ASSERT_EQ(view.data.count(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(view.data.Row(i)[0], data.Row(i)[0]);
    EXPECT_EQ(view.data.Row(i)[1], -data.Row(i)[1]);
    EXPECT_EQ(view.data.Row(i)[2], data.Row(i)[2]);
  }
}

TEST(QueryViewTest, IgnoredDimensionsAreDroppedAndMapped) {
  const Dataset data = SmallData();
  QuerySpec spec;
  spec.SetPreference(1, Preference::kIgnore);
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  ASSERT_EQ(view.data.dims(), 2);
  EXPECT_EQ(view.kept_dims, (std::vector<int>{0, 2}));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(view.data.Row(i)[0], data.Row(i)[0]);
    EXPECT_EQ(view.data.Row(i)[1], data.Row(i)[2]);
  }
}

TEST(QueryViewTest, ConstraintsFilterRowsAndKeepOriginalIds) {
  const Dataset data = SmallData();
  QuerySpec spec;
  spec.Constrain(0, 0.3f, 0.7f);  // keeps rows 1 (0.4) and 3 (0.6)
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  ASSERT_EQ(view.data.count(), 2u);
  EXPECT_EQ(view.row_ids, (std::vector<PointId>{1, 3}));
  EXPECT_EQ(view.data.Row(0)[0], 0.4f);
  EXPECT_EQ(view.data.Row(1)[0], 0.6f);
}

TEST(QueryViewTest, ConstraintBoundsAreInclusive) {
  const Dataset data = SmallData();
  QuerySpec spec;
  spec.Constrain(0, 0.4f, 0.6f);  // boundary values stay in
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  EXPECT_EQ(view.row_ids, (std::vector<PointId>{1, 3}));
}

TEST(QueryViewTest, ConstraintOnIgnoredDimensionStillFilters) {
  const Dataset data = SmallData();
  QuerySpec spec;
  spec.SetPreference(0, Preference::kIgnore);
  spec.Constrain(0, 0.0f, 0.45f);  // filter by a dim we do not rank on
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  ASSERT_EQ(view.data.dims(), 2);
  EXPECT_EQ(view.row_ids, (std::vector<PointId>{0, 1}));
}

TEST(QueryViewTest, NanCoordinatesFailConstraints) {
  // Loaded CSVs can contain NaN cells; a NaN can never sit inside a
  // closed interval, so the row must be filtered (matching the oracle).
  const Dataset data = MakeDataset({
      {0.5f, std::nanf("")},
      {0.2f, 0.3f},
  });
  QuerySpec spec;
  spec.Constrain(1, 0.0f, 1.0f);
  const QueryView view = MaterializeView(data, spec.Canonicalize(2));
  EXPECT_EQ(view.row_ids, (std::vector<PointId>{1}));
}

TEST(QueryViewTest, EmptySurvivorSetYieldsEmptyView) {
  const Dataset data = SmallData();
  QuerySpec spec;
  spec.Constrain(2, 100.0f, 200.0f);
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  EXPECT_EQ(view.data.count(), 0u);
  EXPECT_TRUE(view.row_ids.empty());
  EXPECT_EQ(view.data.dims(), 3);
}

TEST(QueryViewTest, ViewRowScoreSumsTransformedCoordinates) {
  const Dataset data = SmallData();
  QuerySpec spec;
  spec.SetPreference(1, Preference::kMax);
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  // Row 0: 0.1 + (-0.9) + 5.0, accumulated left to right.
  const Value expect = (0.1f + -0.9f) + 5.0f;
  EXPECT_EQ(ViewRowScore(view.data, 0), expect);
}

TEST(QueryViewTest, PaddingStaysZeroAfterNegation) {
  // Dominance kernels read the full padded stride; negation must not
  // touch the padding lanes.
  const Dataset data = SmallData();
  QuerySpec spec;
  for (int j = 0; j < 3; ++j) spec.SetPreference(j, Preference::kMax);
  const QueryView view = MaterializeView(data, spec.Canonicalize(3));
  for (size_t i = 0; i < view.data.count(); ++i) {
    for (int j = view.data.dims(); j < view.data.stride(); ++j) {
      EXPECT_EQ(view.data.Row(i)[j], 0.0f) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace sky::test
