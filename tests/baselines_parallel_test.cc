// Copyright (c) SkyBench-NG contributors.
// Correctness of the parallel baselines: PSkyline, PSFS, PBSkyTree.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/apskyline.h"
#include "baselines/pbskytree.h"
#include "baselines/psfs.h"
#include "baselines/pskyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

using Compute = Result (*)(const Dataset&, const Options&);

struct AlgoCase {
  const char* name;
  Compute fn;
};

const AlgoCase kParallel[] = {
    {"APSkyline", APSkylineCompute},
    {"PSkyline", PSkylineCompute},
    {"PSFS", PsfsCompute},
    {"PBSkyTree", PBSkyTreeCompute},
};

class ParallelAlgos
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {
 protected:
  const AlgoCase& algo() const { return kParallel[std::get<0>(GetParam())]; }
  Options opts() const {
    Options o;
    o.threads = std::get<1>(GetParam());
    return o;
  }
};

TEST_P(ParallelAlgos, PaperFigureOneExample) {
  Dataset data =
      test::MakeDataset({{2, 2}, {4, 4}, {1, 5}, {5, 1}, {3, 1.5}});
  Result r = algo().fn(data, opts());
  EXPECT_EQ(test::Sorted(r.skyline), (std::vector<PointId>{0, 2, 3, 4}))
      << algo().name;
}

TEST_P(ParallelAlgos, EmptyAndSingleton) {
  Dataset empty;
  EXPECT_TRUE(algo().fn(empty, opts()).skyline.empty()) << algo().name;
  Dataset one = test::MakeDataset({{1, 2}});
  EXPECT_EQ(algo().fn(one, opts()).skyline, (std::vector<PointId>{0}))
      << algo().name;
}

TEST_P(ParallelAlgos, MoreThreadsThanPoints) {
  Dataset data = test::MakeDataset({{1, 2}, {2, 1}, {3, 3}});
  Result r = algo().fn(data, opts());
  EXPECT_EQ(test::Sorted(r.skyline), (std::vector<PointId>{0, 1}))
      << algo().name;
}

TEST_P(ParallelAlgos, RandomAgainstOracleAllDistributions) {
  for (const auto dist :
       {Distribution::kCorrelated, Distribution::kIndependent,
        Distribution::kAnticorrelated}) {
    for (const int d : {2, 6, 10}) {
      Dataset data = GenerateSynthetic(dist, 2500, d, 211);
      Result r = algo().fn(data, opts());
      ASSERT_EQ(test::Sorted(r.skyline),
                test::Sorted(test::ReferenceSkyline(data)))
          << algo().name << " " << DistributionName(dist) << " d=" << d;
    }
  }
}

TEST_P(ParallelAlgos, DuplicateHeavyData) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 4, 7);
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < 4; ++j) {
      data.MutableRow(i)[j] = std::floor(data.Row(i)[j] * 4.0f);
    }
  }
  Result r = algo().fn(data, opts());
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)))
      << algo().name;
}

TEST_P(ParallelAlgos, ResultIndependentOfThreadCount) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 3000, 6, 8);
  Options one;
  one.threads = 1;
  const auto expect = test::Sorted(algo().fn(data, one).skyline);
  Result r = algo().fn(data, opts());
  EXPECT_EQ(test::Sorted(r.skyline), expect) << algo().name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelAlgos,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(kParallel)),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      return std::string(kParallel[std::get<0>(info.param)].name) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PBSkyTree, BatchBoundaryStress) {
  // Dimensionality high enough that most mask groups fall under the
  // 64-point recursion halt: exercises batch flush paths heavily.
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 4000, 12, 9);
  Options o;
  o.threads = 4;
  Result r = PBSkyTreeCompute(data, o);
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

TEST(PSkyline, ManyMoreBlocksWhenOversubscribed) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 1000, 5, 10);
  Options o;
  o.threads = 32;  // 32 local skylines over 1000 points
  Result r = PSkylineCompute(data, o);
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

}  // namespace
}  // namespace sky
