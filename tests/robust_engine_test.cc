// Copyright (c) SkyBench-NG contributors.
// Robust-serving tests: deadlines and cooperative cancellation through
// the engine and the library dispatch, admission control / load
// shedding, serve-stale fallbacks, truncated progressive partials, and
// the failpoint differential suite — no injected fault may ever produce
// a wrong answer, only a clean error Status, a flagged degraded answer,
// or the exact one.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "core/skyline.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/engine.h"
#include "query_test_util.h"
#include "test_util.h"

namespace sky::test {
namespace {

std::vector<PointId> OracleIds(const Dataset& data, const QuerySpec& spec) {
  std::vector<PointId> ids;
  for (const OracleEntry& e : ReferenceQuery(data, spec)) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

class RobustEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

TEST_F(RobustEngineTest, LibraryDeadlineBoundAcrossCheckpointGranularities) {
  // The overrun bound: a deadlined run must return within deadline + one
  // checkpoint granule. The granule is the block size, so the bound has
  // to hold at every alpha, not just the default — a generous absolute
  // slack keeps the assertion CI-safe while still catching a path that
  // ignores its token (this workload runs far longer than the bound).
  const Dataset data =
      GenerateSynthetic(Distribution::kAnticorrelated, 150'000, 8, 7);
  for (const size_t alpha : {size_t{512}, size_t{4096}, size_t{32768}}) {
    Options opts;
    opts.algorithm = Algorithm::kQFlow;
    opts.threads = 4;
    opts.alpha = alpha;
    opts.deadline_ms = 10;
    const auto start = std::chrono::steady_clock::now();
    try {
      const Result r = ComputeSkyline(data, opts);
      // Finishing under the deadline is legal (fast machine); the result
      // must then be complete and correct-sized, not silently truncated.
      EXPECT_GT(r.skyline.size(), 0u) << "alpha=" << alpha;
    } catch (const CancelledError& err) {
      EXPECT_EQ(err.reason(), Status::kDeadlineExceeded) << "alpha=" << alpha;
    }
    EXPECT_LT(ElapsedMs(start), 1000.0) << "alpha=" << alpha;
  }
}

TEST_F(RobustEngineTest, EngineDeadlineReturnsCleanStatusNotRows) {
  SkylineEngine engine;
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kAnticorrelated, 60'000, 8, 7));
  Options opts;
  opts.algorithm = Algorithm::kQFlow;
  opts.threads = 2;
  opts.alpha = 512;
  opts.deadline_ms = 1e-3;  // expires at the first checkpoint
  const auto start = std::chrono::steady_clock::now();
  const QueryResult r = engine.Execute("ds", QuerySpec{}, opts);
  EXPECT_LT(ElapsedMs(start), 1000.0);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_FALSE(r.truncated);
  EXPECT_TRUE(r.ids.empty());
  // Nothing partial or failed is ever cached: the same query without a
  // deadline recomputes and serves the full answer.
  Options full;
  full.algorithm = Algorithm::kQFlow;
  full.threads = 2;
  const QueryResult ok = engine.Execute("ds", QuerySpec{}, full);
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_FALSE(ok.cache_hit);
  EXPECT_GT(ok.ids.size(), 0u);
  EXPECT_GE(engine.Metrics().Snapshot().Value(
                "sky_query_deadline_exceeded_total"),
            1.0);
}

TEST_F(RobustEngineTest, ZonemapPathHonorsDeadline) {
  // The zonemap-direct route (box-only constrained spec, kZonemap) has
  // its own traversal loop; it must poll the same per-query token.
  SkylineEngine engine;
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kAnticorrelated, 60'000, 6, 11));
  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.9f);
  Options opts;
  opts.algorithm = Algorithm::kZonemap;
  opts.deadline_ms = 1e-3;
  const QueryResult r = engine.Execute("ds", boxed, opts);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_TRUE(r.ids.empty());
}

TEST_F(RobustEngineTest, ExternalCancelTokenStopsTheQuery) {
  SkylineEngine engine;
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 2'000, 4, 3);
  engine.RegisterDataset("ds", data.Clone());

  CancelToken token;
  token.Cancel();  // pre-cancelled: the query must not do the work
  Options opts;
  opts.cancel = &token;
  const QueryResult r = engine.Execute("ds", QuerySpec{}, opts);
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_TRUE(r.ids.empty());

  // The caller's token is chained, not consumed: a fresh run without it
  // still serves exactly.
  const QueryResult ok = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_EQ(Sorted(ok.ids), OracleIds(data, QuerySpec{}));
}

TEST_F(RobustEngineTest, ProgressiveDeadlineServesTruncatedPrefix) {
  // A progressive consumer that trips the budget mid-stream must get a
  // well-formed partial: status kDeadlineExceeded, truncated flag, and
  // every returned id a true skyline member (a confirmed prefix, never a
  // torn superset).
  SkylineEngine engine;
  const Dataset data =
      GenerateSynthetic(Distribution::kAnticorrelated, 20'000, 6, 19);
  engine.RegisterDataset("ds", data.Clone());
  const std::vector<PointId> full = OracleIds(data, QuerySpec{});

  CancelToken token;
  std::atomic<size_t> streamed{0};
  Options opts;
  opts.algorithm = Algorithm::kQFlow;
  opts.alpha = 512;
  opts.cancel = &token;
  opts.progressive = [&](std::span<const PointId> ids) {
    if (streamed.fetch_add(ids.size()) + ids.size() > 0) {
      token.Cancel(Status::kDeadlineExceeded);
    }
  };
  const QueryResult r = engine.Execute("ds", QuerySpec{}, opts);
  ASSERT_EQ(r.status, Status::kDeadlineExceeded);
  ASSERT_TRUE(r.truncated);
  ASSERT_FALSE(r.ids.empty());
  EXPECT_LT(r.ids.size(), full.size());
  EXPECT_EQ(r.dominator_counts.size(), r.ids.size());
  for (const PointId id : r.ids) {
    EXPECT_TRUE(std::binary_search(full.begin(), full.end(), id))
        << "truncated prefix leaked non-member id " << id;
  }
  // Partial answers are never cached.
  const QueryResult ok = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(ok.status, Status::kOk);
  EXPECT_FALSE(ok.cache_hit);
  EXPECT_EQ(Sorted(ok.ids), full);
}

TEST_F(RobustEngineTest, AdmissionControlShedsOverCapQueries) {
  SkylineEngine::Config config;
  config.max_inflight = 1;
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 3'000, 4, 5);
  engine.RegisterDataset("ds", data.Clone());

  // The blocker holds the only admission slot inside a 400 ms injected
  // view-build delay; probes during that window must shed immediately.
  FailPoints::Instance().Arm("view_build", FailPoints::Mode::kDelay,
                             /*probability=*/1.0, /*delay_ms=*/400);
  QuerySpec blocked;
  blocked.Constrain(0, 0.0f, 0.8f);
  std::thread blocker([&] { engine.Execute("ds", blocked, Options{}); });

  bool shed = false;
  for (int attempt = 0; attempt < 15 && !shed; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    QuerySpec probe;  // distinct constraint per attempt: no cache hits
    probe.Constrain(0, 0.0f, 0.5f + 0.01f * static_cast<float>(attempt));
    const QueryResult r = engine.Execute("ds", probe, Options{});
    if (r.status == Status::kOverloaded) {
      EXPECT_TRUE(r.ids.empty());
      shed = true;
    }
  }
  blocker.join();
  EXPECT_TRUE(shed) << "no probe was shed while the slot was held";
  EXPECT_GE(engine.Metrics().Snapshot().Value("sky_query_shed_total"), 1.0);

  // Capacity released: the engine serves exactly again.
  FailPoints::Instance().DisarmAll();
  const QueryResult after = engine.Execute("ds", blocked, Options{});
  EXPECT_EQ(after.status, Status::kOk);
  EXPECT_EQ(Sorted(after.ids), OracleIds(data, blocked));
}

TEST_F(RobustEngineTest, ServeStaleAnswersTimedOutQueryFromExpiredEntry) {
  SkylineEngine::Config config;
  config.result_cache_ttl = 0.05;  // 50 ms: entries expire quickly
  config.serve_stale = true;
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kAnticorrelated, 20'000, 6, 23);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.9f);
  Options opts;
  opts.algorithm = Algorithm::kQFlow;
  opts.alpha = 512;
  const QueryResult fresh = engine.Execute("ds", boxed, opts);
  ASSERT_EQ(fresh.status, Status::kOk);
  ASSERT_FALSE(fresh.stale);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // Recompute now times out; the expired entry answers, flagged stale.
  Options doomed = opts;
  doomed.deadline_ms = 1e-3;
  const QueryResult stale = engine.Execute("ds", boxed, doomed);
  EXPECT_EQ(stale.status, Status::kOk);
  EXPECT_TRUE(stale.stale);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(Sorted(stale.ids), Sorted(fresh.ids));
  EXPECT_GE(engine.Metrics().Snapshot().Value("sky_query_degraded_total"),
            1.0);

  // A successful recompute refreshes the entry in place.
  const QueryResult recomputed = engine.Execute("ds", boxed, opts);
  EXPECT_EQ(recomputed.status, Status::kOk);
  EXPECT_FALSE(recomputed.stale);
  EXPECT_EQ(Sorted(recomputed.ids), OracleIds(data, boxed));
}

TEST_F(RobustEngineTest, WithoutServeStaleDeadlineCarriesNoFallback) {
  SkylineEngine::Config config;
  config.result_cache_ttl = 0.05;
  config.serve_stale = false;  // policy off: expired entries are erased
  SkylineEngine engine(config);
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kAnticorrelated, 20'000, 6, 23));
  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.9f);
  Options opts;
  opts.algorithm = Algorithm::kQFlow;
  opts.alpha = 512;
  ASSERT_EQ(engine.Execute("ds", boxed, opts).status, Status::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Options doomed = opts;
  doomed.deadline_ms = 1e-3;
  const QueryResult r = engine.Execute("ds", boxed, doomed);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_FALSE(r.stale);
  EXPECT_TRUE(r.ids.empty());
}

TEST_F(RobustEngineTest, FailpointDifferentialNoFaultProducesWrongAnswer) {
  // Every serving-path site × every mode: the answer is either exactly
  // right (possibly slower, possibly uncached) or a clean error Status —
  // never a wrong non-empty result. After disarming, the same engine
  // must serve exactly (registry and caches stayed consistent).
  SkylineEngine::Config config;
  config.shards = 4;
  config.shard_policy = ShardPolicy::kMedianPivot;
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 2'000, 4, 29);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec boxed;  // exercises view build, shard fan-out and the merge
  boxed.Constrain(0, 0.1f, 0.9f);
  const std::vector<PointId> oracle = OracleIds(data, boxed);
  Options opts;
  opts.threads = 2;

  using Mode = FailPoints::Mode;
  const char* sites[] = {"view_build", "shard_execute", "merge_union",
                         "executor_task", "result_cache_put"};
  const Mode modes[] = {Mode::kThrow, Mode::kBadAlloc, Mode::kError,
                        Mode::kDelay};
  for (const char* site : sites) {
    for (const Mode mode : modes) {
      SCOPED_TRACE(std::string(site) + ":" + FailPoints::ModeName(mode));
      FailPoints::Instance().DisarmAll();
      FailPoints::Instance().Arm(site, mode, /*probability=*/1.0,
                                 /*delay_ms=*/5);
      engine.ClearCache();
      const QueryResult r = engine.Execute("ds", boxed, opts);
      if (mode == Mode::kDelay) {
        EXPECT_EQ(r.status, Status::kOk);
        EXPECT_EQ(Sorted(r.ids), oracle);
      } else if (r.status == Status::kOk) {
        // A cache-put failure (or a site off this query's path) still
        // serves the exact answer.
        EXPECT_EQ(Sorted(r.ids), oracle);
      } else {
        EXPECT_EQ(r.status, Status::kInternalError);
        EXPECT_TRUE(r.ids.empty());
      }
      // Containment check: the engine recovers without a rebuild.
      FailPoints::Instance().DisarmAll();
      engine.ClearCache();
      const QueryResult after = engine.Execute("ds", boxed, opts);
      EXPECT_EQ(after.status, Status::kOk);
      EXPECT_EQ(Sorted(after.ids), oracle);
    }
  }
}

TEST_F(RobustEngineTest, ResultCachePutFailureServesUncached) {
  SkylineEngine engine;
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 1'500, 4, 31);
  engine.RegisterDataset("ds", data.Clone());
  FailPoints::Instance().Arm("result_cache_put", FailPoints::Mode::kThrow);
  const QueryResult first = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(Sorted(first.ids), OracleIds(data, QuerySpec{}));
  // The put was injected away, so the identical query recomputes.
  const QueryResult second = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(second.status, Status::kOk);
  EXPECT_FALSE(second.cache_hit);
  FailPoints::Instance().DisarmAll();
  const QueryResult third = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(third.status, Status::kOk);
  const QueryResult cached = engine.Execute("ds", QuerySpec{});
  EXPECT_TRUE(cached.cache_hit);
}

TEST_F(RobustEngineTest, ShardRepairFailureAbortsMutationPrePublish) {
  SkylineEngine::Config config;
  config.shards = 4;
  SkylineEngine engine(config);
  const Dataset base =
      GenerateSynthetic(Distribution::kIndependent, 1'200, 4, 37);
  engine.RegisterDataset("ds", base.Clone());
  const std::vector<PointId> before = OracleIds(base, QuerySpec{});
  const Dataset batch =
      GenerateSynthetic(Distribution::kIndependent, 60, 4, 38);

  FailPoints::Instance().Arm("shard_repair", FailPoints::Mode::kThrow);
  EXPECT_THROW(engine.InsertPoints("ds", batch), std::exception);
  // Pre-publish abort: the registry still holds the untouched
  // generation, no version bump, queries serve the old answer exactly.
  EXPECT_EQ(engine.MinorVersion("ds"), 0u);
  const QueryResult old = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(old.status, Status::kOk);
  EXPECT_EQ(Sorted(old.ids), before);

  FailPoints::Instance().DisarmAll();
  engine.InsertPoints("ds", batch);
  EXPECT_EQ(engine.MinorVersion("ds"), 1u);
  // Post-repair oracle: base rows then batch rows, ids appended in order.
  std::vector<float> flat;
  for (size_t i = 0; i < base.count(); ++i) {
    flat.insert(flat.end(), base.Row(i), base.Row(i) + 4);
  }
  for (size_t i = 0; i < batch.count(); ++i) {
    flat.insert(flat.end(), batch.Row(i), batch.Row(i) + 4);
  }
  const Dataset combined = Dataset::FromRowMajor(4, flat);
  const QueryResult now = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(now.status, Status::kOk);
  EXPECT_EQ(Sorted(now.ids), OracleIds(combined, QuerySpec{}));
}

TEST_F(RobustEngineTest, WorkerBadAllocIsContainedAsInternalError) {
  // The nastiest containment case: a worker task dies with bad_alloc
  // inside the sharded fan-out. The group must capture it, cancel the
  // siblings, and the engine must map it to a status — not terminate.
  SkylineEngine::Config config;
  config.shards = 4;
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 2'000, 4, 41);
  engine.RegisterDataset("ds", data.Clone());
  FailPoints::Instance().Arm("shard_execute", FailPoints::Mode::kBadAlloc);
  Options opts;
  opts.threads = 4;
  const QueryResult r = engine.Execute("ds", QuerySpec{}, opts);
  EXPECT_EQ(r.status, Status::kInternalError);
  EXPECT_TRUE(r.ids.empty());
  FailPoints::Instance().DisarmAll();
  const QueryResult after = engine.Execute("ds", QuerySpec{}, opts);
  EXPECT_EQ(after.status, Status::kOk);
  EXPECT_EQ(Sorted(after.ids), OracleIds(data, QuerySpec{}));
}

}  // namespace
}  // namespace sky::test
