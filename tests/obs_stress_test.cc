// Copyright (c) SkyBench-NG contributors.
// Concurrency stress for the sharded metric cells (obs/metrics.h), built
// to run under TSan: writer threads hammer one counter, gauge and
// histogram through the registry while a reader snapshots continuously.
// After the join every striped cell must merge to the exact totals (the
// observed values are integer-valued doubles, so the CAS-added sums are
// order-independent), and the reader must have seen only monotone
// counter values.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sky::obs {
namespace {

constexpr int kWriters = 8;
constexpr uint64_t kIters = 20'000;

TEST(ObsStressTest, ShardedCellsMergeExactlyUnderContention) {
  MetricsRegistry reg;
  // Interned up front the way the engine wires instruments; the writer
  // threads also re-intern to stress the registry mutex itself.
  Counter* counter = reg.GetCounter("sky_stress_total");
  Gauge* gauge = reg.GetGauge("sky_stress_gauge");
  Histogram* hist =
      reg.GetHistogram("sky_stress_seconds", {}, "", {0.5, 1.5, 2.5});

  std::atomic<bool> done{false};
  std::atomic<uint64_t> max_seen{0};
  std::atomic<bool> monotone{true};

  // The reader snapshots concurrently with the writers: every snapshot
  // must be internally coherent and the counter non-decreasing across
  // successive snapshots.
  std::thread reader([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = reg.Snapshot();
      const auto seen = static_cast<uint64_t>(snap.Value("sky_stress_total"));
      if (seen < last) monotone.store(false, std::memory_order_relaxed);
      last = seen;
      const MetricValue* h = snap.Find("sky_stress_seconds");
      if (h != nullptr) {
        uint64_t total = 0;
        for (const uint64_t b : h->histogram.buckets) total += b;
        if (total != h->histogram.count) {
          monotone.store(false, std::memory_order_relaxed);
        }
      }
    }
    max_seen.store(last, std::memory_order_relaxed);
  });

  std::atomic<bool> interning_stable{true};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Counter* same = reg.GetCounter("sky_stress_total");
      if (same != counter) {
        interning_stable.store(false, std::memory_order_relaxed);
      }
      for (uint64_t i = 0; i < kIters; ++i) {
        same->Add();
        same->Add(3);
        gauge->Add(1.0);
        // Alternate buckets (and the overflow) across iterations; the
        // observed value is a small integer so the double sum is exact.
        hist->Observe(static_cast<double>((w + i) % 4));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(interning_stable.load());
  EXPECT_TRUE(monotone.load());
  EXPECT_LE(max_seen.load(), kWriters * kIters * 4);

  // Exact totals once the writers have joined: no lost updates across
  // the striped cells.
  EXPECT_EQ(counter->Value(), kWriters * kIters * 4);
  EXPECT_EQ(gauge->Value(), static_cast<double>(kWriters * kIters));
  const HistogramData h = hist->Snapshot();
  EXPECT_EQ(h.count, kWriters * kIters);
  // Observations cycle 0,1,2,3 so each of the four buckets (three finite
  // bounds plus overflow) gets exactly a quarter of the stream, and the
  // sum telescopes to count * mean(0..3).
  ASSERT_EQ(h.buckets.size(), 4u);
  for (const uint64_t b : h.buckets) {
    EXPECT_EQ(b, kWriters * kIters / 4);
  }
  EXPECT_DOUBLE_EQ(h.sum, static_cast<double>(kWriters * kIters) * 1.5);
}

TEST(ObsStressTest, ConcurrentInterningYieldsOnePointerPerMetric) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Distinct label values interleaved with one shared metric: the
      // shared pointer must be identical across threads.
      reg.GetCounter("sky_mine_total", {{"t", std::to_string(t)}})->Add();
      seen[static_cast<size_t>(t)] = reg.GetCounter("sky_shared_total");
      seen[static_cast<size_t>(t)]->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("sky_shared_total"), static_cast<double>(kThreads));
  // kThreads labeled series plus the shared counter.
  EXPECT_EQ(snap.metrics.size(), static_cast<size_t>(kThreads) + 1);
}

}  // namespace
}  // namespace sky::obs
