// Copyright (c) SkyBench-NG contributors.
// Unit tests for the scalar and vector dominance kernels.
#include "dominance/dominance.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "data/dataset.h"

namespace sky {
namespace {

// Builds two padded rows and a DomCtx for a given dimensionality.
struct RowPair {
  explicit RowPair(int d)
      : stride(Dataset::StrideFor(d)),
        p(static_cast<size_t>(stride), 0.0f),
        q(static_cast<size_t>(stride), 0.0f) {}
  int stride;
  // Vectors are not guaranteed 32-byte aligned: scalar kernels only.
  std::vector<Value> p, q;
};

TEST(DominanceScalar, StrictDominance) {
  const float p[] = {1, 2, 3};
  const float q[] = {1, 2, 4};
  EXPECT_TRUE(DominatesScalar(p, q, 3));
  EXPECT_FALSE(DominatesScalar(q, p, 3));
}

TEST(DominanceScalar, CoincidentPointsDoNotDominate) {
  const float p[] = {1, 2, 3};
  const float q[] = {1, 2, 3};
  EXPECT_FALSE(DominatesScalar(p, q, 3));
  EXPECT_FALSE(DominatesScalar(q, p, 3));
  EXPECT_TRUE(EqualScalar(p, q, 3));
}

TEST(DominanceScalar, IncomparablePoints) {
  const float p[] = {1, 5};
  const float q[] = {2, 3};
  EXPECT_FALSE(DominatesScalar(p, q, 2));
  EXPECT_FALSE(DominatesScalar(q, p, 2));
  EXPECT_EQ(CompareScalar(p, q, 2), Relation::kIncomparable);
}

TEST(DominanceScalar, CompareAllOutcomes) {
  const float a[] = {1, 1};
  const float b[] = {2, 2};
  const float c[] = {1, 1};
  const float d[] = {0, 3};
  EXPECT_EQ(CompareScalar(a, b, 2), Relation::kLeftDominates);
  EXPECT_EQ(CompareScalar(b, a, 2), Relation::kRightDominates);
  EXPECT_EQ(CompareScalar(a, c, 2), Relation::kEqual);
  EXPECT_EQ(CompareScalar(a, d, 2), Relation::kIncomparable);
}

TEST(DominanceScalar, PotentialDominanceAllowsEquality) {
  const float p[] = {1, 2};
  const float q[] = {1, 2};
  EXPECT_TRUE(PotentiallyDominatesScalar(p, q, 2));
  EXPECT_FALSE(DominatesScalar(p, q, 2));
}

TEST(DominanceScalar, SingleDimension) {
  const float p[] = {1.0f};
  const float q[] = {2.0f};
  EXPECT_TRUE(DominatesScalar(p, q, 1));
  EXPECT_FALSE(DominatesScalar(q, p, 1));
  EXPECT_FALSE(DominatesScalar(p, p, 1));
}

TEST(PartitionMaskScalar, Basics) {
  const float v[] = {5, 5, 5, 5};
  const float p[] = {1, 9, 5, 2};
  // bit i = (p[i] >= v[i]): dims 1 (9>=5) and 2 (5>=5).
  EXPECT_EQ(PartitionMaskScalar(p, v, 4), 0b0110u);
  EXPECT_EQ(PartitionMaskScalar(v, v, 4), 0b1111u);
}

// DomCtx integration: an aligned Dataset drives the (possibly SIMD)
// kernels; results must match the scalar reference on random data.
class DomCtxEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DomCtxEquivalence, RandomPairsMatchScalar) {
  const int d = GetParam();
  Dataset data(d, 512);
  Rng rng(1234 + static_cast<uint64_t>(d));
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < d; ++j) {
      // Coarse grid: forces frequent ties to exercise equality paths.
      data.MutableRow(i)[j] = static_cast<float>(rng.NextBounded(8)) / 8.0f;
    }
  }
  DomCtx simd(d, data.stride(), /*use_simd=*/true);
  DomCtx scalar(d, data.stride(), /*use_simd=*/false);
  for (size_t i = 0; i + 1 < data.count(); i += 2) {
    const Value* p = data.Row(i);
    const Value* q = data.Row(i + 1);
    EXPECT_EQ(simd.Dominates(p, q), scalar.Dominates(p, q));
    EXPECT_EQ(simd.Dominates(q, p), scalar.Dominates(q, p));
    EXPECT_EQ(simd.Compare(p, q), scalar.Compare(p, q));
    EXPECT_EQ(simd.PotentiallyDominates(p, q),
              scalar.PotentiallyDominates(p, q));
    EXPECT_EQ(simd.PartitionMask(p, q), scalar.PartitionMask(p, q));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, DomCtxEquivalence,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 12, 15, 16));

TEST(DomCtx, PaddingLanesAreInert) {
  // d=3 rows padded to 8: garbage-free zero padding must not create
  // spurious strictness or dominance in the SIMD path.
  Dataset data(3, 2);
  float* a = data.MutableRow(0);
  float* b = data.MutableRow(1);
  a[0] = a[1] = a[2] = 1.0f;
  b[0] = b[1] = b[2] = 1.0f;
  DomCtx dom(3, data.stride(), /*use_simd=*/true);
  EXPECT_FALSE(dom.Dominates(a, b));
  EXPECT_EQ(dom.Compare(a, b), Relation::kEqual);
  b[2] = 2.0f;
  EXPECT_TRUE(dom.Dominates(a, b));
}

TEST(DomCtx, FallsBackWithoutSimdRequest) {
  DomCtx dom(4, 8, /*use_simd=*/false);
  EXPECT_FALSE(dom.simd());
}

// Randomized differential check of the raw AVX2 kernels against the
// scalar reference, on rows that are deliberately NOT 32-byte aligned
// (the kernels promise loadu tolerance) and carry the full padded
// stride. Deterministically seeded so failures reproduce.
class SimdScalarDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SimdScalarDifferential, UnalignedPaddedRowsAgree) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  const int d = GetParam();
  const int stride = Dataset::StrideFor(d);
  constexpr int kPairs = 2000;
  Rng rng(0x5EEDu + static_cast<uint64_t>(d));

  // One float of offset off a 64-byte base misaligns every row for
  // 256-bit loads while keeping rows stride-contiguous, exactly like a
  // row interior to a padded matrix viewed from a shifted origin.
  AlignedBuffer<Value, 64> storage(static_cast<size_t>(2 * stride) + 1);
  Value* p = storage.data() + 1;
  Value* q = p + stride;
  ASSERT_NE(reinterpret_cast<uintptr_t>(p) % 32, 0u);

  for (int iter = 0; iter < kPairs; ++iter) {
    // Mixed granularity: coarse grids force ties/equality, fine values
    // exercise strict comparisons; padding lanes stay zero.
    const int grid = 2 + static_cast<int>(rng.NextBounded(14));
    for (int j = 0; j < d; ++j) {
      p[j] = static_cast<float>(rng.NextBounded(grid));
      q[j] = rng.NextBounded(4) == 0
                 ? p[j]  // frequent per-coordinate ties
                 : static_cast<float>(rng.NextBounded(grid));
    }
    if (rng.NextBounded(16) == 0) {  // occasional fully coincident pair
      for (int j = 0; j < d; ++j) q[j] = p[j];
    }
    ASSERT_EQ(DominatesAvx2(p, q, stride), DominatesScalar(p, q, d))
        << "d=" << d << " iter=" << iter;
    ASSERT_EQ(DominatesAvx2(q, p, stride), DominatesScalar(q, p, d))
        << "d=" << d << " iter=" << iter;
    ASSERT_EQ(PotentiallyDominatesAvx2(p, q, stride),
              PotentiallyDominatesScalar(p, q, d))
        << "d=" << d << " iter=" << iter;
    ASSERT_EQ(CompareAvx2(p, q, stride), CompareScalar(p, q, d))
        << "d=" << d << " iter=" << iter;
    ASSERT_EQ(PartitionMaskAvx2(p, q, d, stride),
              PartitionMaskScalar(p, q, d))
        << "d=" << d << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, SimdScalarDifferential,
                         ::testing::Range(1, kMaxDims + 1));

TEST(DomCtx, TransitivityOnRandomTriples) {
  const int d = 6;
  Dataset data(d, 300);
  Rng rng(99);
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < d; ++j) {
      data.MutableRow(i)[j] = static_cast<float>(rng.NextBounded(4));
    }
  }
  DomCtx dom(d, data.stride(), true);
  for (size_t i = 0; i + 2 < data.count(); i += 3) {
    const Value* a = data.Row(i);
    const Value* b = data.Row(i + 1);
    const Value* c = data.Row(i + 2);
    if (dom.Dominates(a, b) && dom.Dominates(b, c)) {
      EXPECT_TRUE(dom.Dominates(a, c));
    }
  }
}

}  // namespace
}  // namespace sky
