// Copyright (c) SkyBench-NG contributors.
// Differential suite for SkylineEngine::InsertPoints / DeletePoints: a
// mutated engine must be row-identical — ids, dominator counts, ranking
// — to a fresh engine that registered the surviving rows from scratch,
// across both shard policies, K in {1, 4}, band_k in {1, 3}, constrained
// and unconstrained specs, under cost-model auto-selection. Also covers
// the compact-index id semantics, lazy Find() reconcatenation, minor
// versioning, and the selective cache invalidation matrix.
#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/delta.h"
#include "query/engine.h"
#include "query_test_util.h"
#include "test_util.h"

namespace sky::test {
namespace {

/// Model of the registered rows as a plain row-major vector — the
/// compact-index semantics made executable: insert appends, delete
/// erases by current index (compacting).
struct RowModel {
  int dims = 0;
  std::vector<std::vector<Value>> rows;

  static RowModel Of(const Dataset& data) {
    RowModel m;
    m.dims = data.dims();
    m.rows.resize(data.count());
    for (size_t i = 0; i < data.count(); ++i) {
      m.rows[i].assign(data.Row(i), data.Row(i) + data.dims());
    }
    return m;
  }

  void Insert(const Dataset& batch) {
    for (size_t i = 0; i < batch.count(); ++i) {
      rows.emplace_back(batch.Row(i), batch.Row(i) + dims);
    }
  }

  void Delete(const std::vector<PointId>& ids) {
    std::vector<PointId> drop = ids;
    std::sort(drop.begin(), drop.end());
    drop.erase(std::unique(drop.begin(), drop.end()), drop.end());
    for (auto it = drop.rbegin(); it != drop.rend(); ++it) {
      rows.erase(rows.begin() + *it);
    }
  }

  Dataset Build() const {
    std::vector<float> flat;
    flat.reserve(rows.size() * static_cast<size_t>(dims));
    for (const auto& row : rows) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    return rows.empty() ? Dataset(dims, 0) : Dataset::FromRowMajor(dims, flat);
  }
};

std::vector<OracleEntry> SortedEntries(const QueryResult& r) {
  std::vector<OracleEntry> out(r.ids.size());
  for (size_t i = 0; i < r.ids.size(); ++i) {
    out[i] = OracleEntry{r.ids[i], r.dominator_counts[i]};
  }
  std::sort(out.begin(), out.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              return a.id < b.id;
            });
  return out;
}

/// The spec matrix the differential check runs: unconstrained and
/// constrained, band_k 1 and 3, one MAX preference, one ranked spec.
std::vector<QuerySpec> SpecMatrix() {
  std::vector<QuerySpec> specs;
  specs.push_back(QuerySpec{});  // plain skyline
  QuerySpec band;
  band.band_k = 3;
  specs.push_back(band);
  QuerySpec boxed;
  boxed.Constrain(0, 0.2f, 0.9f);
  specs.push_back(boxed);
  QuerySpec boxed_band = boxed;
  boxed_band.band_k = 3;
  specs.push_back(boxed_band);
  QuerySpec mixed;
  mixed.SetPreference(1, Preference::kMax).Constrain(2, 0.1f, 0.8f);
  specs.push_back(mixed);
  QuerySpec ranked;
  ranked.band_k = 2;
  ranked.top_k = 7;
  specs.push_back(ranked);
  return specs;
}

SkylineEngine::Config ConfigFor(size_t shards, ShardPolicy policy) {
  SkylineEngine::Config config;
  config.shards = shards;
  config.shard_policy = policy;
  config.auto_algorithm = true;  // cost model picks per query / per shard
  return config;
}

/// Mutated engine vs from-scratch register of the model rows: every spec
/// in the matrix must agree entry-for-entry (and order-for-order on
/// ranked specs).
void ExpectMatchesScratch(SkylineEngine& engine, const RowModel& model,
                          size_t shards, ShardPolicy policy,
                          const char* where) {
  SkylineEngine scratch(ConfigFor(shards, policy));
  scratch.RegisterDataset("ds", model.Build());
  for (const QuerySpec& spec : SpecMatrix()) {
    const QueryResult got = engine.Execute("ds", spec);
    const QueryResult want = scratch.Execute("ds", spec);
    if (spec.top_k > 0) {
      EXPECT_EQ(got.ids, want.ids) << where;
      EXPECT_EQ(got.dominator_counts, want.dominator_counts) << where;
    } else {
      EXPECT_EQ(SortedEntries(got), SortedEntries(want)) << where;
    }
    EXPECT_EQ(got.matched_rows, want.matched_rows) << where;
    // Belt and braces: both must equal the independent oracle.
    const auto oracle = ReferenceQuery(model.Build(), spec);
    if (spec.top_k > 0) {
      std::vector<OracleEntry> flat(got.ids.size());
      for (size_t i = 0; i < got.ids.size(); ++i) {
        flat[i] = OracleEntry{got.ids[i], got.dominator_counts[i]};
      }
      EXPECT_EQ(flat, oracle) << where;
    } else {
      EXPECT_EQ(SortedEntries(got), oracle) << where;
    }
  }
  // Find() must hand back the surviving rows at their compacted ids,
  // bit-exactly — for sharded mutated datasets this exercises the lazy
  // reconcatenation path.
  const std::shared_ptr<const Dataset> found = engine.Find("ds");
  ASSERT_NE(found, nullptr) << where;
  ASSERT_EQ(found->count(), model.rows.size()) << where;
  for (size_t i = 0; i < model.rows.size(); ++i) {
    for (int j = 0; j < model.dims; ++j) {
      ASSERT_EQ(found->Row(i)[j], model.rows[i][static_cast<size_t>(j)])
          << where << " row " << i << " dim " << j;
    }
  }
}

/// Deterministic id picks biased toward the front (skyline members of
/// anti-correlated data often live at low coordinates, so this reliably
/// deletes skyline members and forces re-promotion).
std::vector<PointId> PickIds(size_t count, size_t want, uint32_t salt) {
  std::vector<PointId> ids;
  std::mt19937 rng(salt);
  for (size_t k = 0; k < want && count > 0; ++k) {
    ids.push_back(static_cast<PointId>(rng() % count));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

class IncrementalMutationSuite
    : public ::testing::TestWithParam<std::tuple<size_t, ShardPolicy>> {};

TEST_P(IncrementalMutationSuite, MutationsMatchFromScratchRegister) {
  const auto [shards, policy] = GetParam();
  // Anti-correlated data keeps the skyline large, so deletes hit skyline
  // members (re-promotion path) and inserts join the skyline regularly.
  const Dataset base =
      GenerateSynthetic(Distribution::kAnticorrelated, 400, 4, 77);
  RowModel model = RowModel::Of(base);

  SkylineEngine engine(ConfigFor(shards, policy));
  engine.RegisterDataset("ds", base.Clone());
  EXPECT_EQ(engine.MinorVersion("ds"), 0u);

  // 1: insert a batch (some rows dominate parts of the current skyline).
  const Dataset batch1 =
      GenerateSynthetic(Distribution::kAnticorrelated, 60, 4, 78);
  model.Insert(batch1);
  EXPECT_EQ(engine.InsertPoints("ds", batch1), 1u);
  ExpectMatchesScratch(engine, model, shards, policy, "after insert 1");

  // 2: delete a spread of ids, including skyline members.
  const std::vector<PointId> drop1 = PickIds(model.rows.size(), 70, 5);
  model.Delete(drop1);
  EXPECT_EQ(engine.DeletePoints("ds", drop1), 2u);
  ExpectMatchesScratch(engine, model, shards, policy, "after delete 1");

  // 3: insert again on the mutated state (routing now uses mutated
  // boxes / loads).
  const Dataset batch2 =
      GenerateSynthetic(Distribution::kCorrelated, 40, 4, 79);
  model.Insert(batch2);
  EXPECT_EQ(engine.InsertPoints("ds", batch2), 3u);
  ExpectMatchesScratch(engine, model, shards, policy, "after insert 2");

  // 4: a heavy delete — past the sketch staleness threshold, so the
  // exact-rebuild path runs too.
  const std::vector<PointId> drop2 = PickIds(model.rows.size(), 200, 6);
  model.Delete(drop2);
  EXPECT_EQ(engine.DeletePoints("ds", drop2), 4u);
  ExpectMatchesScratch(engine, model, shards, policy, "after delete 2");

  EXPECT_EQ(engine.MinorVersion("ds"), 4u);
  ASSERT_NE(engine.FindSketch("ds"), nullptr);
  EXPECT_EQ(engine.FindSketch("ds")->n, model.rows.size());
}

TEST_P(IncrementalMutationSuite, DeleteEverythingThenRepopulate) {
  const auto [shards, policy] = GetParam();
  const Dataset base =
      GenerateSynthetic(Distribution::kIndependent, 64, 3, 11);
  RowModel model = RowModel::Of(base);

  SkylineEngine engine(ConfigFor(shards, policy));
  engine.RegisterDataset("ds", base.Clone());

  std::vector<PointId> all(model.rows.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<PointId>(i);
  model.Delete(all);
  engine.DeletePoints("ds", all);
  EXPECT_TRUE(engine.Execute("ds", QuerySpec{}).ids.empty());
  ASSERT_NE(engine.Find("ds"), nullptr);
  EXPECT_EQ(engine.Find("ds")->count(), 0u);

  const Dataset refill =
      GenerateSynthetic(Distribution::kIndependent, 32, 3, 12);
  model.Insert(refill);
  engine.InsertPoints("ds", refill);
  ExpectMatchesScratch(engine, model, shards, policy, "after repopulate");
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAndShardMatrix, IncrementalMutationSuite,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{4}),
                       ::testing::Values(ShardPolicy::kRoundRobin,
                                         ShardPolicy::kMedianPivot)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, ShardPolicy>>& info) {
      return std::string("K") + std::to_string(std::get<0>(info.param)) +
             "_" + ShardPolicyName(std::get<1>(info.param));
    });

TEST(IncrementalMutationTest, InsertAssignsAppendIdsAndKeepsOldOnesStable) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{0.5f, 0.5f}, {0.7f, 0.7f}}));
  engine.InsertPoints("ds", MakeDataset({{0.1f, 0.9f}, {0.9f, 0.1f}}));
  const QueryResult r = engine.Execute("ds", QuerySpec{});
  // (0.7, 0.7) is dominated; the two inserted rows got ids 2 and 3.
  EXPECT_EQ(SortedEntries(r),
            (std::vector<OracleEntry>{{0, 0}, {2, 0}, {3, 0}}));
}

TEST(IncrementalMutationTest, DeleteCompactsSurvivingIds) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{0.9f, 0.9f},
                                            {0.1f, 0.8f},
                                            {0.8f, 0.1f},
                                            {0.5f, 0.5f}}));
  // Deleting row 0 shifts every survivor down by one.
  engine.DeletePoints("ds", std::vector<PointId>{0});
  const QueryResult r = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(SortedEntries(r),
            (std::vector<OracleEntry>{{0, 0}, {1, 0}, {2, 0}}));
}

TEST(IncrementalMutationTest, DeletedSkylineMemberRepromotesCoveredRows) {
  // p dominates q exclusively; deleting p must surface q.
  SkylineEngine engine(ConfigFor(2, ShardPolicy::kRoundRobin));
  engine.RegisterDataset("ds", MakeDataset({{0.2f, 0.2f},    // p (id 0)
                                            {0.3f, 0.3f},    // q (id 1)
                                            {0.1f, 0.9f},    // skyline
                                            {0.9f, 0.1f}}));  // skyline
  EXPECT_EQ(SortedEntries(engine.Execute("ds", QuerySpec{})),
            (std::vector<OracleEntry>{{0, 0}, {2, 0}, {3, 0}}));
  engine.DeletePoints("ds", std::vector<PointId>{0});
  EXPECT_EQ(SortedEntries(engine.Execute("ds", QuerySpec{})),
            (std::vector<OracleEntry>{{0, 0}, {1, 0}, {2, 0}}));
}

TEST(IncrementalMutationTest, DuplicatePointsSurvivepartnerDeletion) {
  // Coincident rows never dominate each other: deleting one copy must
  // keep the other in the skyline.
  SkylineEngine engine;
  engine.RegisterDataset(
      "ds", MakeDataset({{0.5f, 0.5f}, {0.5f, 0.5f}, {0.9f, 0.9f}}));
  engine.DeletePoints("ds", std::vector<PointId>{0});
  EXPECT_EQ(SortedEntries(engine.Execute("ds", QuerySpec{})),
            (std::vector<OracleEntry>{{0, 0}}));
}

TEST(IncrementalMutationTest, ErrorPaths) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{1.0f, 2.0f}}));
  EXPECT_THROW(engine.InsertPoints("nope", MakeDataset({{1.0f, 2.0f}})),
               std::runtime_error);
  EXPECT_THROW(engine.InsertPoints("ds", MakeDataset({{1.0f}})),
               std::runtime_error);
  EXPECT_THROW(
      engine.DeletePoints("nope", std::vector<PointId>{0}),
      std::runtime_error);
  EXPECT_THROW(
      engine.DeletePoints("ds", std::vector<PointId>{7}),
      std::runtime_error);
  // Empty batches are no-ops that do not bump the minor version.
  EXPECT_EQ(engine.InsertPoints("ds", Dataset(2, 0)), 0u);
  EXPECT_EQ(engine.DeletePoints("ds", std::vector<PointId>{}), 0u);
  EXPECT_EQ(engine.MinorVersion("ds"), 0u);
  // Duplicate ids in one batch delete the row once.
  engine.InsertPoints("ds", MakeDataset({{3.0f, 4.0f}}));
  engine.DeletePoints("ds", std::vector<PointId>{1, 1, 1});
  ASSERT_NE(engine.Find("ds"), nullptr);
  EXPECT_EQ(engine.Find("ds")->count(), 1u);
}

// ---- Selective cache invalidation matrix ------------------------------

TEST(IncrementalMutationTest, MutationInvalidatesOverlappingCachedResults) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{0.5f, 0.5f}, {0.9f, 0.9f}}));
  EXPECT_FALSE(engine.Execute("ds", QuerySpec{}).cache_hit);
  EXPECT_TRUE(engine.Execute("ds", QuerySpec{}).cache_hit);
  // An unconstrained entry can never be proven unaffected: erased.
  engine.InsertPoints("ds", MakeDataset({{0.1f, 0.1f}}));
  const QueryResult after = engine.Execute("ds", QuerySpec{});
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(SortedEntries(after), (std::vector<OracleEntry>{{2, 0}}));
}

TEST(IncrementalMutationTest, NonIntersectingConstrainedResultSurvives) {
  SkylineEngine engine;
  engine.RegisterDataset(
      "ds", MakeDataset({{0.1f, 0.2f}, {0.2f, 0.1f}, {0.8f, 0.8f}}));
  QuerySpec low;
  low.Constrain(0, 0.0f, 0.4f);
  engine.Execute("ds", low);
  // The insert lands entirely outside [0, 0.4] on dim 0: the cached
  // entry provably cannot change and must still be served.
  engine.InsertPoints("ds", MakeDataset({{0.7f, 0.05f}}));
  EXPECT_TRUE(engine.Execute("ds", low).cache_hit);
  // An intersecting insert erases it.
  engine.InsertPoints("ds", MakeDataset({{0.3f, 0.05f}}));
  EXPECT_FALSE(engine.Execute("ds", low).cache_hit);
}

TEST(IncrementalMutationTest, BulkInsertRoutedToFewShardsStaysExact) {
  // A single large batch concentrated on two shards drives the
  // intra-batch resolution sweep through multi-tile sizes.
  const Dataset base =
      GenerateSynthetic(Distribution::kAnticorrelated, 100, 3, 91);
  RowModel model = RowModel::Of(base);
  SkylineEngine engine(ConfigFor(2, ShardPolicy::kMedianPivot));
  engine.RegisterDataset("ds", base.Clone());
  const Dataset batch =
      GenerateSynthetic(Distribution::kAnticorrelated, 300, 3, 92);
  model.Insert(batch);
  engine.InsertPoints("ds", batch);
  ExpectMatchesScratch(engine, model, 2, ShardPolicy::kMedianPivot,
                       "bulk insert");
}

TEST(IncrementalMutationTest, DuplicateRowsInOneInsertBatchAllSurvive) {
  // Intra-batch resolution must keep coincident rows: neither copy
  // dominates the other, whichever sweep tests them.
  SkylineEngine engine(ConfigFor(2, ShardPolicy::kRoundRobin));
  engine.RegisterDataset("ds", MakeDataset({{0.5f, 0.5f}, {0.6f, 0.6f}}));
  engine.InsertPoints("ds", MakeDataset({{0.1f, 0.1f}, {0.1f, 0.1f}}));
  EXPECT_EQ(SortedEntries(engine.Execute("ds", QuerySpec{})),
            (std::vector<OracleEntry>{{2, 0}, {3, 0}}));
}

TEST(IncrementalMutationTest, ShardEpochTracksLocalRowNumbering) {
  // The epoch identifies a shard's local row content/numbering: fresh
  // after any repair that changes the rows, preserved by a pure
  // global-id remap — the property the engine's view-cache validation
  // relies on to keep a cached view composable only with the exact
  // shard generation it was cut from.
  const Dataset data = MakeDataset(
      {{0.1f, 0.9f}, {0.9f, 0.1f}, {0.5f, 0.5f}, {0.6f, 0.6f}});
  const ShardMap map = ShardMap::Build(data, 2, ShardPolicy::kRoundRobin);
  EXPECT_NE(map.shard(0).epoch, 0u);
  EXPECT_NE(map.shard(1).epoch, 0u);
  EXPECT_NE(map.shard(0).epoch, map.shard(1).epoch);

  const Dataset batch = MakeDataset({{0.05f, 0.05f}});
  const auto inserted =
      ShardWithInserts(map.shard(0), batch, {0}, /*base_global_id=*/4,
                       /*sketch_seed=*/1);
  EXPECT_NE(inserted->epoch, map.shard(0).epoch);

  std::vector<uint32_t> shift(4, 0);  // compaction map for deleting id 0
  for (size_t i = 1; i < shift.size(); ++i) shift[i] = 1;
  const auto deleted =
      ShardWithDeletes(map.shard(0), {0}, shift, /*sketch_seed=*/1);
  EXPECT_NE(deleted->epoch, map.shard(0).epoch);
  EXPECT_NE(deleted->epoch, inserted->epoch);

  const auto remapped = ShardWithRemappedIds(map.shard(1), shift);
  EXPECT_EQ(remapped->epoch, map.shard(1).epoch);
}

TEST(IncrementalMutationTest, AdversarialDatasetNameCannotCorruptPeerCaches) {
  // Cache prefixes are the numeric version alone, so a dataset whose
  // *name* spells another dataset's prefix cannot have its entries
  // remapped or erased by a mutation on that other dataset. Under a
  // name-based "name@version|" prefix, mutating "a" (version 1) would
  // also edit every entry of a dataset literally named "a@1|x".
  SkylineEngine engine;
  engine.RegisterDataset("a", MakeDataset({{0.9f, 0.9f}, {0.5f, 0.5f}}));
  const std::string evil = "a@1|x";
  engine.RegisterDataset(evil, MakeDataset({{0.9f, 0.9f},    // id 0: outside
                                            {0.1f, 0.2f},    // id 1: inside
                                            {0.2f, 0.1f}}));  // id 2: inside
  QuerySpec low;
  low.Constrain(0, 0.0f, 0.4f);
  EXPECT_EQ(Sorted(engine.Execute(evil, low).ids),
            (std::vector<PointId>{1, 2}));
  // Deleting a's row 0 ({0.9, 0.9}) misses evil's constraint box; a
  // shared prefix would remap (corrupt) evil's surviving entry through
  // a's two-row compaction map. It must be served bit-identical instead.
  engine.DeletePoints("a", std::vector<PointId>{0});
  const QueryResult after = engine.Execute(evil, low);
  EXPECT_TRUE(after.cache_hit);
  EXPECT_EQ(Sorted(after.ids), (std::vector<PointId>{1, 2}));
}

TEST(IncrementalMutationTest, SurvivingResultIdsAreRemappedAfterDelete) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{0.9f, 0.9f},    // id 0: outside
                                            {0.1f, 0.2f},    // id 1: inside
                                            {0.2f, 0.1f}}));  // id 2: inside
  QuerySpec low;
  low.Constrain(0, 0.0f, 0.4f);
  const QueryResult before = engine.Execute("ds", low);
  EXPECT_EQ(Sorted(before.ids), (std::vector<PointId>{1, 2}));
  // Deleting the outside row keeps the entry alive but shifts the ids.
  engine.DeletePoints("ds", std::vector<PointId>{0});
  const QueryResult after = engine.Execute("ds", low);
  EXPECT_TRUE(after.cache_hit);
  EXPECT_EQ(Sorted(after.ids), (std::vector<PointId>{0, 1}));
}

}  // namespace
}  // namespace sky::test
