// Copyright (c) SkyBench-NG contributors.
#include "common/aligned.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace sky {
namespace {

TEST(AlignedBuffer, AlignmentAndZeroing) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 64, 0u);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 7;
  int* ptr = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[3], 7);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer<int> a(10);
  AlignedBuffer<int> b(20);
  b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
}

TEST(AlignedBuffer, ResetReallocatesZeroed) {
  AlignedBuffer<double> buf(4);
  buf[0] = 1.5;
  buf.Reset(8);
  EXPECT_EQ(buf.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 0.0);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  buf.Reset(0);
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace sky
