// Copyright (c) SkyBench-NG contributors.
// Correctness of the sequential baselines: BNL, SFS, SaLSa, SSkyline,
// BSkyTree. Each is checked on hand-picked cases and against the
// independent brute-force oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bnl.h"
#include "baselines/bskytree.h"
#include "baselines/bskytree_s.h"
#include "baselines/less.h"
#include "baselines/salsa.h"
#include "baselines/sfs.h"
#include "baselines/sskyline.h"
#include "common/random.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

using Compute = Result (*)(const Dataset&, const Options&);

struct AlgoCase {
  const char* name;
  Compute fn;
};

const AlgoCase kSequential[] = {
    {"BNL", BnlCompute},           {"SFS", SfsCompute},
    {"LESS", LessCompute},
    {"SaLSa", SalsaCompute},       {"SSkyline", SSkylineCompute},
    {"BSkyTree", BSkyTreeCompute}, {"BSkyTreeS", BSkyTreeSCompute},
};

class SequentialAlgos : public ::testing::TestWithParam<size_t> {
 protected:
  const AlgoCase& algo() const { return kSequential[GetParam()]; }
};

TEST_P(SequentialAlgos, PaperFigureOneExample) {
  Dataset data =
      test::MakeDataset({{2, 2}, {4, 4}, {1, 5}, {5, 1}, {3, 1.5}});
  Result r = algo().fn(data, Options{});
  EXPECT_EQ(test::Sorted(r.skyline), (std::vector<PointId>{0, 2, 3, 4}))
      << algo().name;
}

TEST_P(SequentialAlgos, EmptyInput) {
  Dataset data;
  Result r = algo().fn(data, Options{});
  EXPECT_TRUE(r.skyline.empty()) << algo().name;
}

TEST_P(SequentialAlgos, SinglePoint) {
  Dataset data = test::MakeDataset({{1, 2, 3}});
  Result r = algo().fn(data, Options{});
  EXPECT_EQ(r.skyline, (std::vector<PointId>{0})) << algo().name;
}

TEST_P(SequentialAlgos, TotallyOrderedChain) {
  // p0 < p1 < ... < p9: only p0 survives.
  std::vector<float> flat;
  for (int i = 0; i < 10; ++i) {
    flat.push_back(static_cast<float>(i));
    flat.push_back(static_cast<float>(i));
  }
  Dataset data = Dataset::FromRowMajor(2, flat);
  Result r = algo().fn(data, Options{});
  EXPECT_EQ(r.skyline, (std::vector<PointId>{0})) << algo().name;
}

TEST_P(SequentialAlgos, AllIdenticalPointsAreAllSkyline) {
  std::vector<float> flat(60, 2.5f);
  Dataset data = Dataset::FromRowMajor(3, flat);
  Result r = algo().fn(data, Options{});
  EXPECT_EQ(r.skyline.size(), 20u) << algo().name;
}

TEST_P(SequentialAlgos, OneDimensional) {
  Dataset data = test::MakeDataset({{3}, {1}, {2}, {1}});
  Result r = algo().fn(data, Options{});
  EXPECT_EQ(test::Sorted(r.skyline), (std::vector<PointId>{1, 3}))
      << algo().name;
}

TEST_P(SequentialAlgos, RandomAgainstOracleAllDistributions) {
  for (const auto dist :
       {Distribution::kCorrelated, Distribution::kIndependent,
        Distribution::kAnticorrelated}) {
    for (const int d : {2, 5, 9}) {
      Dataset data = GenerateSynthetic(dist, 1500, d, 101);
      Result r = algo().fn(data, Options{});
      ASSERT_EQ(test::Sorted(r.skyline),
                test::Sorted(test::ReferenceSkyline(data)))
          << algo().name << " " << DistributionName(dist) << " d=" << d;
    }
  }
}

TEST_P(SequentialAlgos, QuantisedDuplicateHeavyData) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 3, 7);
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < 3; ++j) {
      data.MutableRow(i)[j] = std::floor(data.Row(i)[j] * 3.0f);
    }
  }
  Result r = algo().fn(data, Options{});
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)))
      << algo().name;
}

INSTANTIATE_TEST_SUITE_P(All, SequentialAlgos,
                         ::testing::Range<size_t>(0, std::size(kSequential)),
                         [](const auto& info) {
                           return kSequential[info.param].name;
                         });

TEST(Salsa, EarlyTerminationDoesTerminateEarly) {
  // One all-small point dominates a large tail; SaLSa should stop long
  // before scanning everything.
  std::vector<float> flat = {0.01f, 0.01f};
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    flat.push_back(0.5f + 0.5f * rng.NextFloat());
    flat.push_back(0.5f + 0.5f * rng.NextFloat());
  }
  Dataset data = Dataset::FromRowMajor(2, flat);
  Options o;
  o.count_dts = true;
  Result r = SalsaCompute(data, o);
  EXPECT_EQ(r.skyline, (std::vector<PointId>{0}));
  EXPECT_LT(r.stats.dominance_tests, 200u)
      << "SaLSa scanned far more points than early termination allows";
}

TEST(BSkyTree, LargeAnticorrelatedMatchesBnl) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 6000, 7, 3);
  Result a = BSkyTreeCompute(data, Options{});
  Result b = BnlCompute(data, Options{});
  EXPECT_EQ(test::Sorted(a.skyline), test::Sorted(b.skyline));
}

TEST(SSkylineBlock, SubrangeOnly) {
  Dataset data = test::MakeDataset({{9, 9}, {1, 1}, {2, 2}, {0, 5}, {9, 0}});
  DomCtx dom(2, data.stride(), true);
  std::vector<PointId> idx = {0, 1, 2, 3, 4};
  // Skyline of rows 1..4: {1,1} dominates {2,2}; {0,5} and {9,0} survive.
  uint64_t dts = 0;
  const size_t k = SSkylineBlock(data, idx, 1, 5, dom, &dts);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(idx[0], 0u) << "outside range must be untouched";
  std::vector<PointId> got(idx.begin() + 1, idx.begin() + 1 + k);
  EXPECT_EQ(test::Sorted(got), (std::vector<PointId>{1, 3, 4}));
}

}  // namespace
}  // namespace sky
