// Copyright (c) SkyBench-NG contributors.
// Tests for M(S): updateS&M (Algorithm 2) and compareToSky (Algorithm 3).
#include "core/sky_structure.h"

#include <gtest/gtest.h>

#include <random>

#include "data/generator.h"
#include "data/partition.h"
#include "data/prefilter.h"
#include "data/sorting.h"
#include "test_util.h"

namespace sky {
namespace {

/// Build a sorted, masked working set of confirmed skyline points only
/// (computed with the reference oracle) — the exact shape Hybrid appends.
struct Fixture {
  explicit Fixture(Distribution dist, size_t n, int d, uint64_t seed)
      : pool(2), data(GenerateSynthetic(dist, n, d, seed)) {
    const auto sky = test::ReferenceSkyline(data);
    std::vector<float> flat;
    for (const PointId id : sky) {
      for (int j = 0; j < d; ++j) flat.push_back(data.Row(id)[j]);
    }
    sky_only = Dataset::FromRowMajor(d, flat);
    ws = WorkingSet::FromDataset(sky_only, pool);
    ws.ComputeL1(pool);
    const auto pivot = SelectPivot(ws, PivotPolicy::kMedian, pool, 1);
    DomCtx dom(ws.dims, ws.stride, true);
    AssignMasks(ws, pivot.data(), dom, pool);
    SortByMaskThenL1(ws, pool);
  }
  ThreadPool pool;
  Dataset data;
  Dataset sky_only;
  WorkingSet ws;
};

TEST(SkyStructure, EmptyStructureDominatesNothing) {
  SkyStructure s(4, 8, 16);
  DomCtx dom(4, 8, true);
  float q[8] = {1, 1, 1, 1};
  EXPECT_FALSE(s.Dominated(q, 0, dom, nullptr, nullptr));
  EXPECT_EQ(s.size(), 0u);
  s.CheckInvariants();
}

TEST(SkyStructure, AppendMaintainsInvariants) {
  Fixture f(Distribution::kIndependent, 2000, 5, 31);
  DomCtx dom(f.ws.dims, f.ws.stride, true);
  SkyStructure s(f.ws.dims, f.ws.stride, f.ws.count);
  // Append in several uneven chunks, as Hybrid's blocks would.
  size_t pos = 0;
  const size_t chunks[] = {1, 7, 64, 1000000};
  size_t ci = 0;
  while (pos < f.ws.count) {
    const size_t len = std::min(chunks[ci % 4], f.ws.count - pos);
    s.Append(f.ws, pos, len, dom);
    s.CheckInvariants();
    pos += len;
    ++ci;
  }
  EXPECT_EQ(s.size(), f.ws.count);
}

class SkyStructureDominance
    : public ::testing::TestWithParam<std::tuple<Distribution, int, bool>> {
};

TEST_P(SkyStructureDominance, MatchesBruteForceScan) {
  const auto [dist, d, batch] = GetParam();
  Fixture f(dist, 1500, d, 77);
  DomCtx dom(f.ws.dims, f.ws.stride, /*use_simd=*/true, batch);
  SkyStructure s(f.ws.dims, f.ws.stride, f.ws.count);
  // Append the first half as "known skyline".
  const size_t half = f.ws.count / 2;
  s.Append(f.ws, 0, half, dom);

  // Probe points: random grid points (some dominated, some not).
  Dataset probes = GenerateSynthetic(dist, 500, d, 123);
  const auto pivot = SelectPivot(f.ws, PivotPolicy::kMedian, f.pool, 1);
  for (size_t i = 0; i < probes.count(); ++i) {
    const Value* q = probes.Row(i);
    const Mask qmask = dom.PartitionMask(q, pivot.data());
    bool expect = false;
    for (size_t j = 0; j < half && !expect; ++j) {
      expect = dom.Dominates(f.ws.Row(j), q);
    }
    uint64_t dts = 0, skips = 0;
    ASSERT_EQ(s.Dominated(q, qmask, dom, &dts, &skips), expect)
        << "probe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkyStructureDominance,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 5, 8, 12),
                       ::testing::Bool()));  // batched vs one-vs-one scan

TEST(SkyStructure, MaskFiltersActuallySkipWork) {
  Fixture f(Distribution::kAnticorrelated, 3000, 8, 13);
  DomCtx dom(f.ws.dims, f.ws.stride, true);
  SkyStructure s(f.ws.dims, f.ws.stride, f.ws.count);
  s.Append(f.ws, 0, f.ws.count, dom);
  uint64_t dts = 0, skips = 0;
  // Probe with every skyline point itself: none is dominated, and the
  // structure should skip a decent share of partitions.
  for (size_t i = 0; i < f.ws.count; i += 3) {
    // Recompute the level-1 mask: ws.masks are level-1 (pre-append).
    ASSERT_FALSE(
        s.Dominated(f.ws.Row(i), f.ws.masks[i], dom, &dts, &skips));
  }
  EXPECT_GT(skips, 0u);
  // Without filters the scan would be ~ (count/3) * count tests.
  EXPECT_LT(dts, (f.ws.count / 3) * f.ws.count);
}

TEST(SkyStructure, RemoveSweepKeepsDominanceExactAndMirrorBitIdentical) {
  // Randomized removal property test: repeatedly drop a random ~quarter
  // of the stored points (pivots included, so partition promotion and
  // mask recomputation both fire) until the structure is empty. After
  // every sweep the partition map must validate, the SoA tile mirror
  // must be bit-identical to the packed rows (CheckInvariants verifies
  // both), LastAppended must be empty, and Dominated must agree with an
  // independent brute-force scan of the surviving rows.
  Fixture f(Distribution::kAnticorrelated, 1200, 5, 41);
  DomCtx dom(f.ws.dims, f.ws.stride, true);
  SkyStructure s(f.ws.dims, f.ws.stride, f.ws.count);
  s.Append(f.ws, 0, f.ws.count, dom);
  const auto pivot = SelectPivot(f.ws, PivotPolicy::kMedian, f.pool, 1);
  const Dataset probes =
      GenerateSynthetic(Distribution::kAnticorrelated, 200, 5, 99);

  // Independent row lookup: original id -> working-set row pointer.
  std::vector<const Value*> row_of(f.ws.count, nullptr);
  for (size_t i = 0; i < f.ws.count; ++i) row_of[f.ws.ids[i]] = f.ws.Row(i);

  std::mt19937 rng(7);
  while (s.size() > 0) {
    const std::vector<PointId> current = s.ids();
    std::vector<PointId> drop;
    for (const PointId id : current) {
      if (rng() % 4 == 0) drop.push_back(id);
    }
    if (drop.empty()) drop.push_back(current[rng() % current.size()]);
    std::vector<PointId> survivors;
    for (const PointId id : current) {
      if (std::find(drop.begin(), drop.end(), id) == drop.end()) {
        survivors.push_back(id);
      }
    }

    EXPECT_EQ(s.Remove(drop, dom), drop.size());
    s.CheckInvariants();
    EXPECT_TRUE(s.LastAppended().empty());
    EXPECT_EQ(test::Sorted(s.ids()), test::Sorted(survivors));

    for (size_t i = 0; i < probes.count(); ++i) {
      const Value* q = probes.Row(i);
      const Mask qmask = dom.PartitionMask(q, pivot.data());
      bool expect = false;
      for (size_t k = 0; k < survivors.size() && !expect; ++k) {
        expect = dom.Dominates(row_of[survivors[k]], q);
      }
      ASSERT_EQ(s.Dominated(q, qmask, dom, nullptr, nullptr), expect)
          << "probe " << i << " at size " << s.size();
    }
  }
  EXPECT_EQ(s.PartitionCount(), 0u);
}

TEST(SkyStructure, RemoveAbsentIdsIsANoOp) {
  Fixture f(Distribution::kIndependent, 300, 4, 17);
  DomCtx dom(f.ws.dims, f.ws.stride, true);
  SkyStructure s(f.ws.dims, f.ws.stride, f.ws.count);
  s.Append(f.ws, 0, f.ws.count, dom);
  const size_t before = s.size();
  const std::vector<PointId> ghost{1000000, 1000001};
  EXPECT_EQ(s.Remove(ghost, dom), 0u);
  EXPECT_EQ(s.size(), before);
  s.CheckInvariants();
}

TEST(SkyStructure, LastAppendedExposesProgressiveSpan) {
  Fixture f(Distribution::kIndependent, 500, 4, 3);
  DomCtx dom(f.ws.dims, f.ws.stride, true);
  SkyStructure s(f.ws.dims, f.ws.stride, f.ws.count);
  s.Append(f.ws, 0, 10, dom);
  EXPECT_EQ(s.LastAppended().size(), 10u);
  s.Append(f.ws, 10, 5, dom);
  EXPECT_EQ(s.LastAppended().size(), 5u);
  EXPECT_EQ(s.size(), 15u);
}

}  // namespace
}  // namespace sky
