// Copyright (c) SkyBench-NG contributors.
// Shared helpers for the gtest suite.
#ifndef SKY_TESTS_TEST_UTIL_H_
#define SKY_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "core/options.h"
#include "data/dataset.h"
#include "dominance/dominance.h"

namespace sky::test {

/// Build a dataset from a nested initializer list of rows.
inline Dataset MakeDataset(std::initializer_list<std::vector<float>> rows) {
  if (rows.size() == 0) return Dataset{};
  const int dims = static_cast<int>(rows.begin()->size());
  std::vector<float> flat;
  flat.reserve(rows.size() * rows.begin()->size());
  for (const auto& row : rows) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return Dataset::FromRowMajor(dims, flat);
}

/// Brute-force O(n^2 d) reference skyline, written from Definition 3 with
/// no shared code paths with any library algorithm (independent oracle).
inline std::vector<PointId> ReferenceSkyline(const Dataset& data) {
  std::vector<PointId> out;
  const int d = data.dims();
  for (size_t i = 0; i < data.count(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < data.count() && !dominated; ++j) {
      if (i == j) continue;
      const Value* p = data.Row(j);
      const Value* q = data.Row(i);
      bool all_le = true, some_lt = false;
      for (int k = 0; k < d; ++k) {
        all_le &= p[k] <= q[k];
        some_lt |= p[k] < q[k];
      }
      dominated = all_le && some_lt;
    }
    if (!dominated) out.push_back(static_cast<PointId>(i));
  }
  return out;
}

/// Sorted copy for order-insensitive comparison.
inline std::vector<PointId> Sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace sky::test

#endif  // SKY_TESTS_TEST_UTIL_H_
