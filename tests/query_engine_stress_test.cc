// Copyright (c) SkyBench-NG contributors.
// Concurrency stress for the serving layer: many threads hammer one
// SkylineEngine with a mix of queries (cache hits, misses, LRU churn)
// while another thread registers/evicts datasets. Every returned result
// is checked against the sequentially precomputed answer. Run under TSan
// by the scheduled CI job.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "parallel/thread_pool.h"
#include "query/engine.h"
#include "test_util.h"

namespace sky::test {
namespace {

std::vector<QuerySpec> MixedSpecs() {
  std::vector<QuerySpec> specs;
  specs.push_back(QuerySpec{});  // native all-min question

  QuerySpec flipped;
  flipped.SetPreference(0, Preference::kMax);
  specs.push_back(flipped);

  QuerySpec projected;
  projected.Project({1, 2}, 4);
  specs.push_back(projected);

  QuerySpec boxed;
  boxed.Constrain(0, 0.1f, 0.8f).Constrain(3, 0.0f, 0.9f);
  specs.push_back(boxed);

  QuerySpec banded;
  banded.band_k = 3;
  specs.push_back(banded);

  QuerySpec capped;
  capped.SetPreference(2, Preference::kMax);
  capped.top_k = 25;
  specs.push_back(capped);

  return specs;
}

TEST(QueryEngineStressTest, ConcurrentMixedQueriesOneDataset) {
  // Tiny LRU so hits, misses and evictions all happen under contention.
  SkylineEngine engine(SkylineEngine::Config{4});
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 1500, 4, /*seed=*/77);
  engine.RegisterDataset("ds", data.Clone());

  const std::vector<QuerySpec> specs = MixedSpecs();
  std::vector<std::vector<PointId>> expected;
  for (const QuerySpec& spec : specs) {
    expected.push_back(Sorted(RunQuery(data, spec).ids));
  }

  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 24;
  std::atomic<int> mismatches{0};
  ThreadPool pool(kThreads);
  pool.RunOnAll([&](int worker) {
    Options opts;
    opts.threads = 1;
    // Deterministic per-worker sequence, offset so different specs are in
    // flight at once.
    for (int round = 0; round < kRoundsPerThread; ++round) {
      const size_t q =
          (static_cast<size_t>(worker) * 7 + static_cast<size_t>(round)) %
          specs.size();
      const QueryResult r = engine.Execute("ds", specs[q], opts);
      if (Sorted(r.ids) != expected[q]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);

  const auto counters = engine.cache_counters();
  EXPECT_GT(counters.hits, 0u);
  EXPECT_GT(counters.misses, 0u);
  EXPECT_LE(counters.entries, 4u);
}

TEST(QueryEngineStressTest, ConcurrentShardedExecutionStaysExact) {
  // Sharded plan/execute/merge under contention: many threads run the
  // mixed workload against a 4-shard dataset (per-shard pools, M(S)
  // merges and the view cache all active at once) while a churn thread
  // re-registers the same content under alternating shard policies —
  // every served result must still match the unsharded answer.
  SkylineEngine::Config config;
  config.result_cache_capacity = 4;  // force recomputation under load
  config.shards = 4;
  config.shard_policy = ShardPolicy::kMedianPivot;
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 1200, 4, /*seed=*/21);
  engine.RegisterDataset("ds", data.Clone());

  const std::vector<QuerySpec> specs = MixedSpecs();
  std::vector<std::vector<PointId>> expected;
  for (const QuerySpec& spec : specs) {
    expected.push_back(Sorted(RunQuery(data, spec).ids));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::thread churn([&] {
    for (int i = 0; i < 12; ++i) {
      engine.RegisterDataset("ds", data.Clone(), 4,
                             i % 2 ? ShardPolicy::kRoundRobin
                                   : ShardPolicy::kMedianPivot);
    }
    stop.store(true, std::memory_order_release);
  });

  constexpr int kThreads = 6;
  ThreadPool pool(kThreads);
  pool.RunOnAll([&](int worker) {
    Options opts;
    opts.threads = 2;  // per-query shard parallelism under contention
    int round = 0;
    do {
      const size_t q =
          (static_cast<size_t>(worker) * 5 + static_cast<size_t>(round)) %
          specs.size();
      const QueryResult r = engine.Execute("ds", specs[q], opts);
      if (Sorted(r.ids) != expected[q]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      ++round;
    } while (!stop.load(std::memory_order_acquire) || round < 12);
  });
  churn.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_NE(engine.FindShards("ds"), nullptr);
}

TEST(QueryEngineStressTest, ConcurrentAutoSelectionSurvivesSketchChurn) {
  // Auto-selected sharded serving while a churn thread re-registers the
  // same content (rebuilding every per-shard sketch and the dataset
  // sketch each time, under alternating policies): every cost-model
  // decision must resolve against a consistent registration generation
  // and every served result must still match the unsharded answer.
  SkylineEngine::Config config;
  config.result_cache_capacity = 4;  // force recomputation under load
  config.shards = 4;
  config.shard_policy = ShardPolicy::kMedianPivot;
  config.auto_algorithm = true;  // fleet-wide kAuto
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 1200, 4, /*seed=*/33);
  engine.RegisterDataset("ds", data.Clone());

  const std::vector<QuerySpec> specs = MixedSpecs();
  std::vector<std::vector<PointId>> expected;
  for (const QuerySpec& spec : specs) {
    expected.push_back(Sorted(RunQuery(data, spec).ids));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> unresolved{0};
  std::thread churn([&] {
    for (int i = 0; i < 12; ++i) {
      engine.RegisterDataset("ds", data.Clone(), 4,
                             i % 2 ? ShardPolicy::kRoundRobin
                                   : ShardPolicy::kMedianPivot);
    }
    stop.store(true, std::memory_order_release);
  });

  constexpr int kThreads = 6;
  ThreadPool pool(kThreads);
  pool.RunOnAll([&](int worker) {
    Options opts;
    opts.threads = 2;  // per-query shard parallelism under contention
    int round = 0;
    do {
      const size_t q =
          (static_cast<size_t>(worker) * 5 + static_cast<size_t>(round)) %
          specs.size();
      const QueryResult r = engine.Execute("ds", specs[q], opts);
      if (Sorted(r.ids) != expected[q]) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      for (const Algorithm a : r.shard_algorithms) {
        if (a == Algorithm::kAuto) {
          unresolved.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ++round;
    } while (!stop.load(std::memory_order_acquire) || round < 12);
  });
  churn.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(unresolved.load(), 0);
}

TEST(QueryEngineStressTest, ConcurrentMutationsDuringQueries) {
  // Readers hammer a sharded, auto-selected engine while one writer
  // applies a deterministic insert/delete script. Linearizability check:
  // every served result must be exact for SOME minor version that
  // existed — each reader answer has to match one of the precomputed
  // per-version oracles, never a torn mix of two versions.
  SkylineEngine::Config config;
  config.result_cache_capacity = 8;
  config.shards = 4;
  config.shard_policy = ShardPolicy::kMedianPivot;
  config.auto_algorithm = true;
  SkylineEngine engine(config);
  const Dataset base =
      GenerateSynthetic(Distribution::kAnticorrelated, 600, 3, 51);
  engine.RegisterDataset("ds", base.Clone());

  // Model of the row state (compact-index semantics) used to precompute
  // the mutation payloads and each version's expected answers.
  std::vector<std::vector<Value>> model;
  for (size_t i = 0; i < base.count(); ++i) {
    model.emplace_back(base.Row(i), base.Row(i) + 3);
  }
  const auto build_model = [&] {
    std::vector<float> flat;
    for (const auto& row : model) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    return Dataset::FromRowMajor(3, flat);
  };

  // The spec mix must include a constrained spec: identity specs never
  // materialize per-shard views, and the view cache under a racing
  // mutation is exactly where a stale reader could compose a view built
  // from a different shard generation (the Shard::epoch check guards it).
  QuerySpec banded;
  banded.band_k = 2;
  QuerySpec boxed;
  boxed.Constrain(0, 0.1f, 0.8f);
  const std::vector<QuerySpec> specs{QuerySpec{}, banded, boxed};

  constexpr int kSteps = 10;
  std::vector<Dataset> insert_batches;
  std::vector<std::vector<PointId>> delete_batches;
  // expected[s][v]: sorted (id, count) pairs of spec s at version v.
  std::vector<std::vector<std::vector<std::pair<PointId, uint32_t>>>>
      expected(specs.size());
  const auto snapshot_expected = [&] {
    const Dataset now = build_model();
    for (size_t s = 0; s < specs.size(); ++s) {
      const QueryResult r = RunQuery(now, specs[s]);
      std::vector<std::pair<PointId, uint32_t>> entries;
      for (size_t i = 0; i < r.ids.size(); ++i) {
        entries.emplace_back(r.ids[i], r.dominator_counts[i]);
      }
      std::sort(entries.begin(), entries.end());
      expected[s].push_back(std::move(entries));
    }
  };
  snapshot_expected();  // version 0
  std::mt19937 rng(4242);
  for (int step = 0; step < kSteps; ++step) {
    if (step % 2 == 0) {
      Dataset batch = GenerateSynthetic(Distribution::kAnticorrelated, 40, 3,
                                        1000 + static_cast<uint64_t>(step));
      for (size_t i = 0; i < batch.count(); ++i) {
        model.emplace_back(batch.Row(i), batch.Row(i) + 3);
      }
      insert_batches.push_back(std::move(batch));
    } else {
      std::vector<PointId> drop;
      for (int k = 0; k < 60; ++k) {
        drop.push_back(static_cast<PointId>(rng() % model.size()));
      }
      std::sort(drop.begin(), drop.end());
      drop.erase(std::unique(drop.begin(), drop.end()), drop.end());
      for (auto it = drop.rbegin(); it != drop.rend(); ++it) {
        model.erase(model.begin() + *it);
      }
      delete_batches.push_back(std::move(drop));
    }
    snapshot_expected();
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    size_t ins = 0, del = 0;
    for (int step = 0; step < kSteps; ++step) {
      if (step % 2 == 0) {
        engine.InsertPoints("ds", insert_batches[ins++]);
      } else {
        engine.DeletePoints("ds", delete_batches[del++]);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    stop.store(true, std::memory_order_release);
  });

  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  pool.RunOnAll([&](int worker) {
    Options opts;
    opts.threads = 1;
    std::mt19937 pick(static_cast<uint32_t>(worker) * 31 + 7);
    int round = 0;
    do {
      // Zipfian-ish spec choice: the plain skyline dominates traffic,
      // the banded and boxed specs split the tail.
      const uint32_t roll = pick() % 10;
      const size_t s = roll < 6 ? 0 : (roll < 8 ? 1 : 2);
      const QueryResult r = engine.Execute("ds", specs[s], opts);
      std::vector<std::pair<PointId, uint32_t>> got;
      for (size_t i = 0; i < r.ids.size(); ++i) {
        got.emplace_back(r.ids[i], r.dominator_counts[i]);
      }
      std::sort(got.begin(), got.end());
      bool matched = false;
      for (const auto& version : expected[s]) {
        if (got == version) {
          matched = true;
          break;
        }
      }
      if (!matched) torn.fetch_add(1, std::memory_order_relaxed);
      ++round;
    } while (!stop.load(std::memory_order_acquire) || round < 20);
  });
  writer.join();
  EXPECT_EQ(torn.load(), 0);
  // Settled state: the final version must now be served exactly.
  const QueryResult final_r = engine.Execute("ds", specs[0]);
  std::vector<std::pair<PointId, uint32_t>> final_got;
  for (size_t i = 0; i < final_r.ids.size(); ++i) {
    final_got.emplace_back(final_r.ids[i], final_r.dominator_counts[i]);
  }
  std::sort(final_got.begin(), final_got.end());
  EXPECT_EQ(final_got, expected[0].back());
  ASSERT_NE(engine.Find("ds"), nullptr);
  EXPECT_EQ(engine.Find("ds")->count(), model.size());
  EXPECT_EQ(engine.MinorVersion("ds"), static_cast<uint64_t>(kSteps));
}

TEST(QueryEngineStressTest, FailpointChurnNeverServesWrongAnswer) {
  // Probabilistic fault injection under concurrency: readers hammer a
  // sharded engine with deadlines racing a writer's insert/delete script
  // while every serving-path failpoint fires with low probability. The
  // invariant is the robustness contract itself — each served kOk result
  // must match SOME minor version's oracle exactly; failures must be
  // clean statuses; and after disarming, the engine must serve the final
  // version exactly.
  FailPoints::Instance().DisarmAll();
  SkylineEngine::Config config;
  config.result_cache_capacity = 8;
  config.shards = 4;
  config.shard_policy = ShardPolicy::kMedianPivot;
  SkylineEngine engine(config);
  const Dataset base =
      GenerateSynthetic(Distribution::kAnticorrelated, 500, 3, 71);
  engine.RegisterDataset("ds", base.Clone());

  std::vector<std::vector<Value>> model;
  for (size_t i = 0; i < base.count(); ++i) {
    model.emplace_back(base.Row(i), base.Row(i) + 3);
  }
  const auto build_model = [&] {
    std::vector<float> flat;
    for (const auto& row : model) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    return Dataset::FromRowMajor(3, flat);
  };

  QuerySpec boxed;
  boxed.Constrain(0, 0.1f, 0.8f);
  const std::vector<QuerySpec> specs{QuerySpec{}, boxed};

  constexpr int kSteps = 6;
  std::vector<Dataset> insert_batches;
  std::vector<std::vector<std::vector<PointId>>> expected(specs.size());
  const auto snapshot_expected = [&] {
    const Dataset now = build_model();
    for (size_t s = 0; s < specs.size(); ++s) {
      expected[s].push_back(Sorted(RunQuery(now, specs[s]).ids));
    }
  };
  snapshot_expected();
  for (int step = 0; step < kSteps; ++step) {
    Dataset batch = GenerateSynthetic(Distribution::kAnticorrelated, 30, 3,
                                      2000 + static_cast<uint64_t>(step));
    for (size_t i = 0; i < batch.count(); ++i) {
      model.emplace_back(batch.Row(i), batch.Row(i) + 3);
    }
    insert_batches.push_back(std::move(batch));
    snapshot_expected();
  }

  // Low-probability faults on every serving site; the writer retries a
  // step until it lands so every insert batch publishes exactly once.
  FailPoints::Instance().Arm("view_build", FailPoints::Mode::kThrow, 0.02);
  FailPoints::Instance().Arm("shard_execute", FailPoints::Mode::kBadAlloc,
                             0.02);
  FailPoints::Instance().Arm("merge_union", FailPoints::Mode::kError, 0.02);
  FailPoints::Instance().Arm("result_cache_put", FailPoints::Mode::kThrow,
                             0.05);
  FailPoints::Instance().Arm("shard_repair", FailPoints::Mode::kThrow, 0.1);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> clean_failures{0};
  std::thread writer([&] {
    for (int step = 0; step < kSteps; ++step) {
      for (;;) {
        try {
          engine.InsertPoints("ds", insert_batches[static_cast<size_t>(step)]);
          break;  // published; a retry would double-insert
        } catch (const std::exception&) {
          // Pre-publish abort: same batch, same target state — retry.
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true, std::memory_order_release);
  });

  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  pool.RunOnAll([&](int worker) {
    Options opts;
    opts.threads = 1;
    int round = 0;
    do {
      const size_t s = static_cast<size_t>(worker + round) % specs.size();
      if (round % 7 == 0) opts.deadline_ms = 0.05;  // occasional budget
      const QueryResult r = engine.Execute("ds", specs[s], opts);
      opts.deadline_ms = 0;
      if (r.status != Status::kOk) {
        EXPECT_TRUE(r.ids.empty());
        clean_failures.fetch_add(1, std::memory_order_relaxed);
      } else {
        const std::vector<PointId> got = Sorted(r.ids);
        bool matched = false;
        for (const auto& version : expected[s]) {
          if (got == version) {
            matched = true;
            break;
          }
        }
        if (!matched) torn.fetch_add(1, std::memory_order_relaxed);
      }
      ++round;
    } while (!stop.load(std::memory_order_acquire) || round < 30);
  });
  writer.join();
  EXPECT_EQ(torn.load(), 0);

  FailPoints::Instance().DisarmAll();
  engine.ClearCache();
  for (size_t s = 0; s < specs.size(); ++s) {
    const QueryResult final_r = engine.Execute("ds", specs[s]);
    EXPECT_EQ(final_r.status, Status::kOk);
    EXPECT_EQ(Sorted(final_r.ids), expected[s].back());
  }
  EXPECT_EQ(engine.MinorVersion("ds"), static_cast<uint64_t>(kSteps));
}

TEST(QueryEngineStressTest, QueriesRaceRegistrationAndEviction) {
  SkylineEngine engine;
  engine.RegisterDataset(
      "stable", GenerateSynthetic(Distribution::kIndependent, 800, 3, 5));
  const std::vector<PointId> expected =
      Sorted(engine.Execute("stable", QuerySpec{}).ids);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Churn thread: registers, queries and evicts a second dataset, and
  // repeatedly replaces "stable" with identical content (bumping its
  // version and invalidating cache entries mid-flight).
  std::thread churn([&] {
    for (int i = 0; i < 40; ++i) {
      engine.RegisterDataset(
          "temp", GenerateSynthetic(Distribution::kCorrelated, 300, 3,
                                    static_cast<uint64_t>(i)));
      engine.Execute("temp", QuerySpec{});
      engine.EvictDataset("temp");
      engine.RegisterDataset(
          "stable", GenerateSynthetic(Distribution::kIndependent, 800, 3, 5));
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      QuerySpec band;
      band.band_k = 2;
      while (!stop.load(std::memory_order_acquire)) {
        if (Sorted(engine.Execute("stable", QuerySpec{}).ids) != expected) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        engine.Execute("stable", band);
        // "temp" may or may not exist right now; both outcomes are fine,
        // the engine just must not crash or corrupt state.
        try {
          engine.Execute("temp", QuerySpec{});
        } catch (const std::runtime_error&) {
        }
      }
    });
  }
  churn.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_NE(engine.Find("stable"), nullptr);
}

}  // namespace
}  // namespace sky::test
