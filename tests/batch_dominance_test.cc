// Copyright (c) SkyBench-NG contributors.
// Differential and property tests for the batched dominance layer
// (dominance/batch.h): tile layout, lane padding, and verdict
// equivalence of every batch kernel against the DominatesScalar oracle —
// across d in [1, 16], ragged tail tiles, NaN coordinates, duplicated
// points, and both kernel flavours (scalar tiles and AVX2 tiles).
#include "dominance/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "core/hybrid.h"
#include "core/qflow.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "dominance/dominance.h"
#include "test_util.h"

namespace sky {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

/// Random dataset on a coarse grid (frequent ties), with optional NaN
/// injection and duplicated rows.
Dataset GridData(int d, size_t n, uint64_t seed, bool with_nan) {
  Dataset data(d, n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 3 && i > 0) {  // duplicate an earlier row verbatim
      for (int j = 0; j < d; ++j) {
        data.MutableRow(i)[j] = data.Row(i - 3)[j];
      }
      continue;
    }
    for (int j = 0; j < d; ++j) {
      data.MutableRow(i)[j] = static_cast<float>(rng.NextBounded(6)) / 4.0f;
    }
    if (with_nan && rng.NextBounded(11) == 0) {
      data.MutableRow(i)[rng.NextBounded(static_cast<uint32_t>(d))] = kNaN;
    }
  }
  return data;
}

TEST(TileBlock, LayoutAndPadding) {
  const int d = 3;
  TileBlock tiles(d, 11);  // ragged: 2 tiles, last with 3 valid lanes
  Dataset data = GridData(d, 11, 5, false);
  tiles.AppendRows(data.Row(0), data.stride(), 11);
  ASSERT_EQ(tiles.size(), 11u);
  ASSERT_EQ(tiles.tile_count(), 2u);
  EXPECT_EQ(tiles.ValidLanes(0), kFullLaneMask);
  EXPECT_EQ(tiles.ValidLanes(1), LaneMaskFirst(3));
  for (size_t i = 0; i < 11; ++i) {
    const Value* tile = tiles.Tile(i / kSimdWidth);
    for (int j = 0; j < d; ++j) {
      EXPECT_EQ(tile[j * kSimdWidth + i % kSimdWidth], data.Row(i)[j]);
    }
  }
  // Padding lanes of the ragged tail must hold the inert +inf value.
  const Value* tail = tiles.Tile(1);
  for (size_t lane = 3; lane < kSimdWidth; ++lane) {
    for (int j = 0; j < d; ++j) {
      EXPECT_EQ(tail[j * kSimdWidth + lane], kTileLanePad);
    }
  }
}

TEST(TileBlock, ClearRepadsUsedTiles) {
  const int d = 2;
  TileBlock tiles(d, 16);
  Dataset data = GridData(d, 10, 6, false);
  tiles.AppendRows(data.Row(0), data.stride(), 10);
  tiles.Clear();
  EXPECT_EQ(tiles.size(), 0u);
  tiles.AppendRows(data.Row(0), data.stride(), 3);
  const Value* tile = tiles.Tile(0);
  for (size_t lane = 3; lane < kSimdWidth; ++lane) {
    EXPECT_EQ(tile[lane], kTileLanePad) << "stale lane " << lane;
  }
}

TEST(LaneMasks, Helpers) {
  EXPECT_EQ(LaneMaskFirst(0), 0u);
  EXPECT_EQ(LaneMaskFirst(3), 0b111u);
  EXPECT_EQ(LaneMaskFirst(8), 0xFFu);
  EXPECT_EQ(LaneMaskRange(0, 8), 0xFFu);
  EXPECT_EQ(LaneMaskRange(2, 5), 0b11100u);
  EXPECT_EQ(LaneMaskRange(4, 4), 0u);
}

/// Oracle lane mask: which of tiles' points [t*8, t*8+8) strictly
/// dominate q, per DominatesScalar on the original rows.
uint32_t OracleLaneMask(const Dataset& data, size_t t, const Value* q,
                        uint32_t lane_mask) {
  uint32_t out = 0;
  for (size_t l = 0; l < kSimdWidth; ++l) {
    const size_t idx = t * kSimdWidth + l;
    if ((lane_mask & (1u << l)) == 0 || idx >= data.count()) continue;
    if (DominatesScalar(data.Row(idx), q, data.dims())) out |= 1u << l;
  }
  return out;
}

class BatchKernelDifferential
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(BatchKernelDifferential, TileVerdictsMatchScalarOracle) {
  const auto [d, with_nan] = GetParam();
  const size_t n = 203;  // ragged: 25 full tiles + 3-lane tail
  Dataset window = GridData(d, n, 100 + static_cast<uint64_t>(d), with_nan);
  Dataset probes = GridData(d, 64, 900 + static_cast<uint64_t>(d), with_nan);
  TileBlock tiles(d, n);
  tiles.AppendRows(window.Row(0), window.stride(), n);
  Rng rng(17);
  for (size_t i = 0; i < probes.count(); ++i) {
    const Value* q = probes.Row(i);
    for (size_t t = 0; t < tiles.tile_count(); ++t) {
      // Random lane restriction exercises both ragged tails and interior
      // masked scans (partition windows).
      const uint32_t lane_mask =
          static_cast<uint32_t>(rng.NextBounded(256));
      const uint32_t expect =
          OracleLaneMask(window, t, q, lane_mask & tiles.ValidLanes(t));
      ASSERT_EQ(TileDominatesScalar(q, tiles.Tile(t), d, lane_mask), expect)
          << "scalar tile kernel, d=" << d << " t=" << t;
      if (CpuHasAvx2()) {
        ASSERT_EQ(TileDominatesAvx2(q, tiles.Tile(t), d, lane_mask), expect)
            << "avx2 tile kernel, d=" << d << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDims, BatchKernelDifferential,
    ::testing::Combine(::testing::Range(1, kMaxDims + 1),
                       ::testing::Bool()));

class DomCtxBatchDifferential : public ::testing::TestWithParam<bool> {};

TEST_P(DomCtxBatchDifferential, DominatedByAnyMatchesOracleWithPrefixes) {
  const bool use_simd = GetParam();
  for (const int d : {1, 2, 4, 5, 8, 13, 16}) {
    Dataset window = GridData(d, 77, 31 + static_cast<uint64_t>(d), true);
    Dataset probes = GridData(d, 40, 77 + static_cast<uint64_t>(d), true);
    TileBlock tiles(d, 77);
    tiles.AppendRows(window.Row(0), window.stride(), 77);
    DomCtx dom(d, window.stride(), use_simd);
    Rng rng(3);
    for (size_t i = 0; i < probes.count(); ++i) {
      const Value* q = probes.Row(i);
      // Prefix limits cover empty, ragged, tile-aligned and full scans.
      for (const size_t limit : {size_t{0}, size_t{5}, size_t{8},
                                 size_t{16}, size_t{75}, size_t{77},
                                 size_t{1000}}) {
        bool expect = false;
        for (size_t j = 0; j < std::min(limit, window.count()); ++j) {
          if (DominatesScalar(window.Row(j), q, d)) {
            expect = true;
            break;
          }
        }
        uint64_t dts = 0;
        ASSERT_EQ(dom.DominatedByAny(q, tiles, limit, &dts), expect)
            << "d=" << d << " probe=" << i << " limit=" << limit
            << " simd=" << use_simd;
      }
    }
  }
}

TEST_P(DomCtxBatchDifferential, FilterTileMatchesOracle) {
  const bool use_simd = GetParam();
  for (const int d : {1, 3, 6, 8, 12}) {
    Dataset window = GridData(d, 130, 41 + static_cast<uint64_t>(d), true);
    Dataset cands = GridData(d, 90, 53 + static_cast<uint64_t>(d), true);
    TileBlock tiles(d, 130);
    tiles.AppendRows(window.Row(0), window.stride(), 130);
    DomCtx dom(d, window.stride(), use_simd);
    std::vector<uint8_t> flags(cands.count(), 0);
    flags[7] = 1;  // pre-flagged rows must be left alone and skipped
    uint64_t dts = 0;
    dom.FilterTile(cands.Row(0), cands.count(), tiles, flags.data(), &dts);
    EXPECT_GT(dts, 0u);
    for (size_t i = 0; i < cands.count(); ++i) {
      if (i == 7) {
        EXPECT_EQ(flags[i], 1) << "pre-flagged row cleared";
        continue;
      }
      bool expect = false;
      for (size_t j = 0; j < window.count() && !expect; ++j) {
        expect = DominatesScalar(window.Row(j), cands.Row(i), d);
      }
      ASSERT_EQ(flags[i] != 0, expect)
          << "d=" << d << " candidate=" << i << " simd=" << use_simd;
    }
  }
}

TEST_P(DomCtxBatchDifferential, MaskComparableLanesMatchesSubsetTest) {
  const bool use_simd = GetParam();
  DomCtx dom(4, 8, use_simd);
  Rng rng(9);
  for (int iter = 0; iter < 500; ++iter) {
    Mask masks8[kSimdWidth];
    for (auto& m : masks8) m = rng.NextBounded(1u << 12);
    const Mask q = rng.NextBounded(1u << 12);
    uint32_t expect = 0;
    for (size_t l = 0; l < kSimdWidth; ++l) {
      if (MaskMayDominate(masks8[l], q)) expect |= 1u << l;
    }
    ASSERT_EQ(dom.MaskComparableLanes(masks8, q), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Flavours, DomCtxBatchDifferential,
                         ::testing::Bool());

TEST(EqualKernel, Avx2MatchesScalarIncludingNaN) {
  if (!CpuHasAvx2()) GTEST_SKIP() << "host lacks AVX2";
  for (const int d : {1, 4, 8, 9, 16}) {
    Dataset data = GridData(d, 128, 600 + static_cast<uint64_t>(d), true);
    DomCtx dom(d, data.stride(), /*use_simd=*/true);
    for (size_t i = 0; i + 1 < data.count(); ++i) {
      const Value* p = data.Row(i);
      const Value* q = data.Row(i + 1);
      EXPECT_EQ(EqualAvx2(p, q, data.stride()), EqualScalar(p, q, d));
      EXPECT_EQ(dom.Equal(p, p), EqualScalar(p, p, d));
    }
  }
  // A NaN coordinate is unequal even to itself (scalar convention).
  Dataset one(4, 1);
  one.MutableRow(0)[2] = kNaN;
  EXPECT_FALSE(EqualAvx2(one.Row(0), one.Row(0), one.stride()));
  EXPECT_FALSE(EqualScalar(one.Row(0), one.Row(0), 4));
}

TEST(PaddingLanes, NeverDominateAnyProbe) {
  // A lone point in an 8-lane tile: the 7 padding lanes must stay inert
  // for finite, infinite and NaN probes alike.
  const int d = 4;
  TileBlock tiles(d, 1);
  const float row[4] = {0.5f, 0.5f, 0.5f, 0.5f};
  tiles.PushRow(row);
  const float probes[][4] = {{0.1f, 0.1f, 0.1f, 0.1f},
                             {0.9f, 0.9f, 0.9f, 0.9f},
                             {kNaN, 0.9f, 0.9f, 0.9f},
                             {kTileLanePad, kTileLanePad, kTileLanePad,
                              kTileLanePad}};
  for (const auto& q : probes) {
    const uint32_t scalar =
        TileDominatesScalar(q, tiles.Tile(0), d, kFullLaneMask);
    EXPECT_EQ(scalar & ~1u, 0u) << "padding lane dominated a probe";
    if (CpuHasAvx2()) {
      EXPECT_EQ(TileDominatesAvx2(q, tiles.Tile(0), d, kFullLaneMask),
                scalar);
    }
  }
}

/// End-to-end: the batched hot loops must produce row-identical skylines
/// to the non-batched paths on adversarial data (ties, duplicates).
TEST(BatchedAlgorithms, MatchNonBatchedSkylines) {
  for (const auto dist : {Distribution::kIndependent,
                          Distribution::kAnticorrelated}) {
    for (const int d : {2, 5, 8}) {
      Dataset data = GenerateSynthetic(dist, 6000, d, 271);
      for (const Algorithm algo : {Algorithm::kQFlow, Algorithm::kHybrid}) {
        Options on;
        on.algorithm = algo;
        on.threads = 2;
        on.alpha = 512;  // several blocks, ragged last block
        on.use_batch = true;
        Options off = on;
        off.use_batch = false;
        const Result a = algo == Algorithm::kQFlow ? QFlowCompute(data, on)
                                                   : HybridCompute(data, on);
        const Result b = algo == Algorithm::kQFlow
                             ? QFlowCompute(data, off)
                             : HybridCompute(data, off);
        EXPECT_EQ(test::Sorted(a.skyline), test::Sorted(b.skyline))
            << AlgorithmName(algo) << " dist=" << static_cast<int>(dist)
            << " d=" << d;
      }
    }
  }
}

}  // namespace
}  // namespace sky
