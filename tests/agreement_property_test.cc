// Copyright (c) SkyBench-NG contributors.
// Cross-algorithm agreement property: for every workload in the sweep,
// every algorithm must return exactly the same skyline id-set as BNL.
// This is the library's strongest end-to-end guarantee and the backbone
// of the "fair comparison" claim inherited from the paper's SkyBench.
#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

constexpr Algorithm kAll[] = {
    Algorithm::kBnl,      Algorithm::kSfs,       Algorithm::kSalsa,
    Algorithm::kLess,
    Algorithm::kSSkyline, Algorithm::kPSkyline,  Algorithm::kAPSkyline,
    Algorithm::kPsfs,
    Algorithm::kQFlow,    Algorithm::kHybrid,    Algorithm::kBSkyTree,
    Algorithm::kBSkyTreeS, Algorithm::kOsp,       Algorithm::kPBSkyTree,
};

struct Case {
  Distribution dist;
  size_t n;
  int d;
  uint64_t seed;
};

class Agreement : public ::testing::TestWithParam<Case> {};

TEST_P(Agreement, AllAlgorithmsAgreeWithBnl) {
  const Case c = GetParam();
  Dataset data = GenerateSynthetic(c.dist, c.n, c.d, c.seed);
  Options bnl_opts;
  bnl_opts.algorithm = Algorithm::kBnl;
  const auto expect =
      test::Sorted(ComputeSkyline(data, bnl_opts).skyline);
  for (const Algorithm algo : kAll) {
    Options o;
    o.algorithm = algo;
    o.threads = 3;
    Result r = ComputeSkyline(data, o);
    ASSERT_EQ(test::Sorted(r.skyline), expect)
        << AlgorithmName(algo) << " on " << DistributionName(c.dist)
        << " n=" << c.n << " d=" << c.d;
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  return std::string(DistributionName(info.param.dist)) + "_n" +
         std::to_string(info.param.n) + "_d" + std::to_string(info.param.d);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Agreement,
    ::testing::Values(
        // distribution x size x dimensionality grid
        Case{Distribution::kCorrelated, 500, 2, 1},
        Case{Distribution::kCorrelated, 2000, 8, 2},
        Case{Distribution::kCorrelated, 5000, 12, 3},
        Case{Distribution::kIndependent, 500, 2, 4},
        Case{Distribution::kIndependent, 2000, 8, 5},
        Case{Distribution::kIndependent, 5000, 12, 6},
        Case{Distribution::kIndependent, 300, 16, 7},
        Case{Distribution::kAnticorrelated, 500, 2, 8},
        Case{Distribution::kAnticorrelated, 2000, 8, 9},
        Case{Distribution::kAnticorrelated, 1500, 12, 10},
        // tiny inputs stress block/batch boundaries
        Case{Distribution::kAnticorrelated, 3, 4, 11},
        Case{Distribution::kIndependent, 65, 6, 12},
        Case{Distribution::kIndependent, 1, 5, 13}),
    CaseName);

TEST(Agreement, NegativeCoordinatesRegression) {
  // Regression for a real bug: the packed sort keys were only
  // order-preserving for non-negative floats, so datasets with negated
  // "larger is better" dimensions silently broke the sort-based
  // algorithms. Negate half the dimensions and re-check everything.
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 6, 404);
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < data.dims(); j += 2) {
      data.MutableRow(i)[j] = -data.Row(i)[j] * 100.0f;
    }
  }
  const auto expect = test::Sorted(test::ReferenceSkyline(data));
  for (const Algorithm algo : kAll) {
    Options o;
    o.algorithm = algo;
    o.threads = 2;
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, o).skyline), expect)
        << AlgorithmName(algo) << " on negative coordinates";
  }
  // Also exercise every pivot policy on negative data (Volume pivot used
  // to take logs of negative values).
  for (const PivotPolicy p :
       {PivotPolicy::kMedian, PivotPolicy::kBalanced, PivotPolicy::kManhattan,
        PivotPolicy::kVolume, PivotPolicy::kRandom}) {
    Options o;
    o.algorithm = Algorithm::kHybrid;
    o.pivot = p;
    o.threads = 2;
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, o).skyline), expect)
        << "Hybrid pivot policy " << PivotPolicyName(p);
  }
}

TEST(Agreement, VerifySkylineHelperAcceptsTruthRejectsLies) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 800, 5, 99);
  const auto truth = test::ReferenceSkyline(data);
  EXPECT_TRUE(VerifySkyline(data, truth));
  auto lie = truth;
  lie.pop_back();
  EXPECT_FALSE(VerifySkyline(data, lie));
}

}  // namespace
}  // namespace sky
