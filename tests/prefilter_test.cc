// Copyright (c) SkyBench-NG contributors.
#include "data/prefilter.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

class PrefilterSafety
    : public ::testing::TestWithParam<std::tuple<Distribution, int, int>> {};

TEST_P(PrefilterSafety, NeverRemovesSkylinePoints) {
  const auto [dist, threads, beta] = GetParam();
  Dataset data = GenerateSynthetic(dist, 3000, 5, 17);
  const auto skyline = test::ReferenceSkyline(data);
  const std::set<PointId> sky_set(skyline.begin(), skyline.end());

  ThreadPool pool(threads);
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  ws.ComputeL1(pool);
  DomCtx dom(ws.dims, ws.stride, true);
  const size_t removed = Prefilter(ws, pool, beta, dom, nullptr);
  EXPECT_EQ(ws.count + removed, data.count());
  // Every skyline id must still be present.
  std::set<PointId> surviving(ws.ids.begin(), ws.ids.end());
  for (const PointId id : skyline) {
    EXPECT_TRUE(surviving.count(id)) << "skyline point " << id << " removed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrefilterSafety,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(1, 4),
                       ::testing::Values(1, 8, 32)));

TEST(Prefilter, RemovesMostOfCorrelatedData) {
  Dataset data = GenerateSynthetic(Distribution::kCorrelated, 20000, 8, 5);
  ThreadPool pool(2);
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  ws.ComputeL1(pool);
  DomCtx dom(ws.dims, ws.stride, true);
  const size_t removed = Prefilter(ws, pool, 8, dom, nullptr);
  // The paper's point: on correlated data the pre-filter nearly produces
  // the solution by itself.
  EXPECT_GT(removed, data.count() / 2);
}

TEST(Prefilter, DuplicatePointsSurvive) {
  // All-identical input: nothing dominates anything; nothing is removed.
  std::vector<float> flat;
  for (int i = 0; i < 100; ++i) {
    flat.push_back(1.0f);
    flat.push_back(2.0f);
  }
  Dataset data = Dataset::FromRowMajor(2, flat);
  ThreadPool pool(3);
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  ws.ComputeL1(pool);
  DomCtx dom(ws.dims, ws.stride, true);
  EXPECT_EQ(Prefilter(ws, pool, 8, dom, nullptr), 0u);
  EXPECT_EQ(ws.count, 100u);
}

TEST(Prefilter, BetaZeroDisables) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 500, 4, 3);
  ThreadPool pool(2);
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  ws.ComputeL1(pool);
  DomCtx dom(ws.dims, ws.stride, true);
  EXPECT_EQ(Prefilter(ws, pool, 0, dom, nullptr), 0u);
}

TEST(Prefilter, CountsDominanceTests) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 4, 3);
  ThreadPool pool(2);
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  ws.ComputeL1(pool);
  DomCtx dom(ws.dims, ws.stride, true);
  DtCounter counter(true);
  Prefilter(ws, pool, 8, dom, &counter);
  EXPECT_GT(counter.tests(), 0u);
}

}  // namespace
}  // namespace sky
