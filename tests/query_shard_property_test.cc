// Copyright (c) SkyBench-NG contributors.
// Differential suite for the plan/execute/merge pipeline: sharded
// execution (every K x policy x spec combination) must be row-for-row
// identical to the unsharded engine and to the independent brute-force
// oracle — including exact k-skyband dominator counts and top-k order —
// and the planner must provably prune shards whose bounding boxes miss
// the constraint box.
#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "data/generator.h"
#include "data/realistic.h"
#include "gtest/gtest.h"
#include "query/engine.h"
#include "query/planner.h"
#include "query/shard_map.h"
#include "query_test_util.h"
#include "test_util.h"

namespace sky::test {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 7};
constexpr ShardPolicy kPolicies[] = {ShardPolicy::kRoundRobin,
                                     ShardPolicy::kMedianPivot};

std::vector<OracleEntry> AsEntries(const QueryResult& r) {
  std::vector<OracleEntry> out(r.ids.size());
  for (size_t i = 0; i < r.ids.size(); ++i) {
    out[i] = OracleEntry{r.ids[i], r.dominator_counts[i]};
  }
  return out;
}

std::vector<OracleEntry> SortedById(std::vector<OracleEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              return a.id < b.id;
            });
  return entries;
}

std::vector<OracleEntry> SortedEntries(const QueryResult& r) {
  return SortedById(AsEntries(r));
}

/// Constrained and unconstrained, skyline and k-skyband, projections,
/// flips and ranked caps — every merge strategy the planner can pick.
std::vector<QuerySpec> ShardSpecs(int d) {
  std::vector<QuerySpec> specs;
  specs.push_back(QuerySpec{});  // unconstrained skyline, identity path

  QuerySpec boxed;
  boxed.Constrain(0, 0.2f, 0.8f);
  specs.push_back(boxed);

  QuerySpec last_dim;  // prunable under the median policy's mask order
  last_dim.Constrain(d - 1, 0.0f, 0.4f);
  specs.push_back(last_dim);

  QuerySpec mixed;
  mixed.SetPreference(1, Preference::kMax).Project({0, 1, 2}, d);
  specs.push_back(mixed);

  QuerySpec band;
  band.band_k = 3;
  specs.push_back(band);

  QuerySpec capped;
  capped.SetPreference(0, Preference::kMax);
  capped.band_k = 2;
  capped.top_k = 10;
  specs.push_back(capped);

  QuerySpec everything;
  everything.Constrain(1, 0.1f, 0.9f);
  everything.band_k = 3;
  everything.top_k = 7;
  specs.push_back(everything);

  return specs;
}

void ExpectShardedMatchesOracle(const Dataset& data, uint64_t seed) {
  for (const QuerySpec& spec : ShardSpecs(data.dims())) {
    const std::vector<OracleEntry> oracle = ReferenceQuery(data, spec);
    const QueryResult unsharded = RunQuery(data, spec);
    ASSERT_EQ(SortedEntries(unsharded), SortedById(oracle))
        << "unsharded engine disagrees with the oracle; spec key "
        << spec.Canonicalize(data.dims()).CanonicalKey();
    for (const size_t k : kShardCounts) {
      for (const ShardPolicy policy : kPolicies) {
        const ShardMap map = ShardMap::Build(data, k, policy, seed);
        const QueryResult sharded = RunShardedQuery(map, spec);
        const std::string label =
            "K=" + std::to_string(k) + " policy=" + ShardPolicyName(policy) +
            " spec=" + spec.Canonicalize(data.dims()).CanonicalKey();
        EXPECT_EQ(sharded.matched_rows, unsharded.matched_rows) << label;
        if (spec.top_k > 0) {
          // Ranked results are fully deterministic: compare in order.
          EXPECT_EQ(AsEntries(sharded), oracle) << label;
          EXPECT_EQ(AsEntries(sharded), AsEntries(unsharded)) << label;
        } else {
          EXPECT_EQ(SortedEntries(sharded), oracle) << label;
          EXPECT_EQ(SortedEntries(sharded), SortedEntries(unsharded))
              << label;
        }
      }
    }
  }
}

TEST(QueryShardPropertyTest, IndependentDataMatchesOracle) {
  ExpectShardedMatchesOracle(
      GenerateSynthetic(Distribution::kIndependent, 500, 4, 17), 17);
}

TEST(QueryShardPropertyTest, AnticorrelatedDataMatchesOracle) {
  ExpectShardedMatchesOracle(
      GenerateSynthetic(Distribution::kAnticorrelated, 400, 5, 29), 29);
}

TEST(QueryShardPropertyTest, HouseLikeHeavyTieDataMatchesOracle) {
  // Realistic data with duplicated coordinates: coincident points across
  // different shards must all survive the M(S) merge, exactly like the
  // unsharded run reports them.
  ExpectShardedMatchesOracle(GenerateHouseLike(300, 7), 7);
}

TEST(QueryShardPropertyTest, ShardMapPartitionsRowsWithTightBoxes) {
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 257, 4, 5);
  for (const size_t k : kShardCounts) {
    for (const ShardPolicy policy : kPolicies) {
      const ShardMap map = ShardMap::Build(data, k, policy, 5);
      ASSERT_EQ(map.shard_count(), k);
      EXPECT_EQ(map.total_count(), data.count());
      std::vector<bool> seen(data.count(), false);
      for (size_t s = 0; s < map.shard_count(); ++s) {
        const Shard& shard = map.shard(s);
        ASSERT_EQ(shard.rows().count(), shard.row_ids.size());
        // Shard sizes differ by at most one.
        EXPECT_LE(shard.rows().count(), data.count() / k + 1);
        for (size_t w = 0; w < shard.row_ids.size(); ++w) {
          const PointId orig = shard.row_ids[w];
          ASSERT_LT(orig, data.count());
          EXPECT_FALSE(seen[orig]) << "row in two shards";
          seen[orig] = true;
          // Shard rows are bit-exact copies inside the shard box.
          for (int j = 0; j < data.dims(); ++j) {
            EXPECT_EQ(shard.rows().Row(w)[j], data.Row(orig)[j]);
            EXPECT_GE(shard.rows().Row(w)[j],
                      shard.box_lo[static_cast<size_t>(j)]);
            EXPECT_LE(shard.rows().Row(w)[j],
                      shard.box_hi[static_cast<size_t>(j)]);
          }
        }
      }
      EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                              [](bool b) { return b; }));
    }
  }
}

/// Two well-separated clusters: the median-pivot policy must put them in
/// disjoint-box shards, and the planner must prune deterministically.
Dataset TwoClusters() {
  std::vector<float> flat;
  for (int i = 0; i < 60; ++i) {
    const float v = 0.05f + 0.002f * static_cast<float>(i % 30);
    const float base = i < 30 ? 0.0f : 0.8f;  // cluster A low, B high
    flat.push_back(base + v);
    flat.push_back(base + 0.15f - v);
    flat.push_back(base + v * 0.5f);
  }
  return Dataset::FromRowMajor(3, flat);
}

TEST(QueryShardPropertyTest, PlannerPrunesNonIntersectingShards) {
  const Dataset data = TwoClusters();
  const ShardMap map =
      ShardMap::Build(data, 2, ShardPolicy::kMedianPivot, 11);
  ASSERT_EQ(map.shard_count(), 2u);

  QuerySpec low;
  low.Constrain(0, 0.0f, 0.3f);  // covers cluster A only
  const ExecutionPlan plan =
      PlanQuery(map, low.Canonicalize(data.dims()));
  EXPECT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.pruned, 1u);
  EXPECT_EQ(plan.merge, MergeStrategy::kNone);

  // The unconstrained plan executes everything and merges.
  const ExecutionPlan full =
      PlanQuery(map, QuerySpec{}.Canonicalize(data.dims()));
  EXPECT_EQ(full.shards.size(), 2u);
  EXPECT_EQ(full.pruned, 0u);
  EXPECT_EQ(full.merge, MergeStrategy::kSkylineUnion);

  QuerySpec banded = low;
  banded.band_k = 2;
  EXPECT_EQ(PlanQuery(map, banded.Canonicalize(data.dims())).merge,
            MergeStrategy::kNone);
  QuerySpec full_band;
  full_band.band_k = 2;
  EXPECT_EQ(PlanQuery(map, full_band.Canonicalize(data.dims())).merge,
            MergeStrategy::kSkybandUnion);

  // A box in the gap between the clusters prunes everything.
  QuerySpec gap;
  gap.Constrain(0, 0.4f, 0.7f);
  const ExecutionPlan none = PlanQuery(map, gap.Canonicalize(data.dims()));
  EXPECT_TRUE(none.shards.empty());
  EXPECT_EQ(none.pruned, 2u);
  const QueryResult empty = RunShardedQuery(map, gap);
  EXPECT_TRUE(empty.ids.empty());
  EXPECT_EQ(empty.matched_rows, 0u);
  EXPECT_EQ(empty.shards_executed, 0u);
  EXPECT_EQ(empty.shards_pruned, 2u);
  EXPECT_EQ(AsEntries(empty), ReferenceQuery(data, gap));
}

TEST(QueryShardPropertyTest, EnginePrunesAndStaysOracleIdentical) {
  SkylineEngine::Config config;
  config.shards = 2;
  config.shard_policy = ShardPolicy::kMedianPivot;
  SkylineEngine engine(config);
  const Dataset data = TwoClusters();
  engine.RegisterDataset("clusters", data.Clone());
  ASSERT_NE(engine.FindShards("clusters"), nullptr);
  EXPECT_EQ(engine.FindShards("clusters")->shard_count(), 2u);

  QuerySpec low;
  low.Constrain(0, 0.0f, 0.3f);
  const QueryResult r = engine.Execute("clusters", low);
  EXPECT_EQ(r.shards_executed, 1u);
  EXPECT_EQ(r.shards_pruned, 1u);
  EXPECT_EQ(SortedEntries(r), ReferenceQuery(data, low));

  // Round-robin shards interleave the clusters: nothing can be pruned,
  // the result is identical anyway.
  engine.RegisterDataset("clusters", data.Clone(), 2,
                         ShardPolicy::kRoundRobin);
  const QueryResult rr = engine.Execute("clusters", low);
  EXPECT_EQ(rr.shards_executed, 2u);
  EXPECT_EQ(rr.shards_pruned, 0u);
  EXPECT_EQ(SortedEntries(rr), ReferenceQuery(data, low));

  // Explicit shards=1 falls back to the unsharded fast path.
  engine.RegisterDataset("clusters", data.Clone(), 1,
                         ShardPolicy::kMedianPivot);
  EXPECT_EQ(engine.FindShards("clusters"), nullptr);
  const QueryResult one = engine.Execute("clusters", low);
  EXPECT_EQ(one.shards_executed, 1u);
  EXPECT_EQ(one.shards_pruned, 0u);
  EXPECT_EQ(SortedEntries(one), ReferenceQuery(data, low));
}

TEST(QueryShardPropertyTest, PerShardViewsReusedAcrossDepthSweep) {
  SkylineEngine::Config config;
  config.shards = 2;
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 400, 4, 13);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec base;
  base.SetPreference(0, Preference::kMax);  // non-identity, no pruning
  engine.Execute("ds", base);
  auto views = engine.view_cache_counters();
  EXPECT_EQ(views.misses, 2u);  // one materialization per executed shard
  EXPECT_EQ(views.entries, 2u);

  QuerySpec deeper = base;
  deeper.band_k = 2;
  const QueryResult r = engine.Execute("ds", deeper);
  views = engine.view_cache_counters();
  EXPECT_EQ(views.hits, 2u);  // same ViewKey: both shard views reused
  EXPECT_EQ(views.misses, 2u);
  EXPECT_EQ(SortedEntries(r), ReferenceQuery(data, deeper));
}

TEST(QueryShardPropertyTest, ProgressiveStreamsConfirmedIdsFromMerge) {
  // Multi-shard plans report progressively from the merge stage: the
  // union of streamed batches must be exactly the final answer, in
  // caller row space.
  SkylineEngine::Config config;
  config.shards = 3;
  SkylineEngine engine(config);
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 400, 4, 37);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec spec;
  spec.SetPreference(1, Preference::kMax);  // non-identity, no pruning
  Options opts;
  opts.algorithm = Algorithm::kQFlow;
  std::mutex mu;
  std::vector<PointId> reported;
  opts.progressive = [&](std::span<const PointId> ids) {
    std::lock_guard<std::mutex> lock(mu);
    reported.insert(reported.end(), ids.begin(), ids.end());
  };
  const QueryResult r = engine.Execute("ds", spec, opts);
  EXPECT_EQ(r.shards_executed, 3u);
  std::vector<PointId> got = reported;
  std::vector<PointId> want = r.ids;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(QueryShardPropertyTest, NanRowsNeverSatisfyConstraintsAnyShardCount) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const Dataset data = MakeDataset({
      {0.1f, 0.2f},
      {nan, 0.1f},  // NaN fails every closed interval, and stays out of
      {0.3f, nan},  // the shard bounding boxes
      {0.2f, 0.3f},
      {0.4f, 0.4f},
  });
  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 1.0f).Constrain(1, 0.0f, 1.0f);
  const std::vector<OracleEntry> oracle = ReferenceQuery(data, boxed);
  for (const size_t k : {size_t{1}, size_t{2}, size_t{3}}) {
    for (const ShardPolicy policy : kPolicies) {
      const ShardMap map = ShardMap::Build(data, k, policy, 3);
      EXPECT_EQ(SortedEntries(RunShardedQuery(map, boxed)), oracle)
          << "K=" << k << " policy=" << ShardPolicyName(policy);
    }
  }
}

}  // namespace
}  // namespace sky::test
