// Copyright (c) SkyBench-NG contributors.
#include "bench_support/harness.h"

#include <gtest/gtest.h>

#include "bench_support/table.h"
#include "bench_support/workload.h"

namespace sky {
namespace {

TEST(Workload, CacheReturnsSameObject) {
  WorkloadSpec spec;
  spec.count = 100;
  spec.dims = 3;
  const Dataset& a = WorkloadCache::Instance().Get(spec);
  const Dataset& b = WorkloadCache::Instance().Get(spec);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.count(), 100u);
  WorkloadCache::Instance().Clear();
}

TEST(Workload, SpecToString) {
  WorkloadSpec spec;
  spec.dist = Distribution::kAnticorrelated;
  spec.count = 42;
  spec.dims = 7;
  const std::string s = spec.ToString();
  EXPECT_NE(s.find("anti"), std::string::npos);
  EXPECT_NE(s.find("n=42"), std::string::npos);
  EXPECT_NE(s.find("d=7"), std::string::npos);
}

TEST(Harness, RunTimedReturnsVerifiedResult) {
  WorkloadSpec spec;
  spec.count = 500;
  spec.dims = 4;
  const Dataset& data = WorkloadCache::Instance().Get(spec);
  Options o;
  o.algorithm = Algorithm::kHybrid;
  o.threads = 2;
  Result r = RunTimed(data, o, /*repeats=*/3, /*verify=*/true);
  EXPECT_EQ(r.stats.skyline_size, r.skyline.size());
  WorkloadCache::Instance().Clear();
}

TEST(Harness, BenchConfigParsesFlags) {
  const char* argv[] = {"bin",         "--full",   "--verify",
                        "--repeats=5", "--n=1234", "--d=9",
                        "--threads=3", "--seed=77"};
  BenchConfig cfg = BenchConfig::Parse(8, const_cast<char**>(argv));
  EXPECT_TRUE(cfg.full);
  EXPECT_TRUE(cfg.verify);
  EXPECT_EQ(cfg.repeats, 5);
  EXPECT_EQ(cfg.n_override, 1234u);
  EXPECT_EQ(cfg.d_override, 9);
  EXPECT_EQ(cfg.max_threads, 3);
  EXPECT_EQ(cfg.seed, 77u);
}

TEST(Harness, MedianHelper) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(Table, PrintAndCsv) {
  Table t({"algo", "time"});
  t.AddRow({"Hybrid", Table::Num(0.123456, 3)});
  t.AddRow({"Q-Flow", Table::Int(42)});
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "algo,time\nHybrid,0.123\nQ-Flow,42\n");
  t.Print();  // smoke: must not crash
}

}  // namespace
}  // namespace sky
