// Copyright (c) SkyBench-NG contributors.
#include "common/random.h"

#include <gtest/gtest.h>

namespace sky {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.NextFloat();
    ASSERT_GE(v, 0.0f);
    ASSERT_LT(v, 1.0f);
  }
}

TEST(Rng, BoundedInRange) {
  Rng rng(9);
  for (const uint64_t n : {1ull, 2ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(n), n);
    }
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(10);
  int counts[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, NormalishMomentsLookNormal) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextNormalish();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.03);  // variance of Irwin-Hall(12)-6
}

TEST(SplitMix, DeterministicSequence) {
  uint64_t s1 = 5, s2 = 5;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace sky
