// Copyright (c) SkyBench-NG contributors.
// SkylineEngine unit tests: registry lifecycle, result-cache behavior,
// version invalidation, top-k ranking and error paths.
#include "query/engine.h"

#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/view.h"
#include "query_test_util.h"
#include "test_util.h"

namespace sky::test {
namespace {

std::vector<OracleEntry> AsEntries(const QueryResult& r) {
  std::vector<OracleEntry> out(r.ids.size());
  for (size_t i = 0; i < r.ids.size(); ++i) {
    out[i] = OracleEntry{r.ids[i], r.dominator_counts[i]};
  }
  return out;
}

std::vector<OracleEntry> SortedEntries(const QueryResult& r) {
  auto out = AsEntries(r);
  std::sort(out.begin(), out.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              return a.id < b.id;
            });
  return out;
}

TEST(RunQueryTest, MatchesOracleOnHandData) {
  const Dataset data = MakeDataset({
      {0.2f, 0.8f},
      {0.8f, 0.2f},
      {0.5f, 0.5f},
      {0.9f, 0.9f},  // dominated in the all-min question
  });
  const QueryResult r = RunQuery(data, QuerySpec{});
  EXPECT_EQ(SortedEntries(r), ReferenceQuery(data, QuerySpec{}));
  EXPECT_EQ(r.matched_rows, 4u);
  EXPECT_FALSE(r.cache_hit);
}

TEST(RunQueryTest, MaxPreferenceFlipsTheSkyline) {
  const Dataset data = MakeDataset({
      {0.2f, 0.8f},
      {0.8f, 0.2f},
      {0.5f, 0.5f},
      {0.9f, 0.9f},
  });
  QuerySpec spec;
  spec.SetPreference(0, Preference::kMax).SetPreference(1, Preference::kMax);
  const QueryResult r = RunQuery(data, spec);
  // Under maximize-everything, (0.9, 0.9) dominates every other point.
  EXPECT_EQ(SortedEntries(r), (std::vector<OracleEntry>{{3, 0}}));
  EXPECT_EQ(SortedEntries(r), ReferenceQuery(data, spec));
}

TEST(RunQueryTest, BandReportsExactDominatorCounts) {
  const Dataset data = MakeDataset({
      {0.1f, 0.1f},  // skyline
      {0.2f, 0.2f},  // 1 dominator
      {0.3f, 0.3f},  // 2 dominators
      {0.4f, 0.4f},  // 3 dominators — outside band_k=3
  });
  QuerySpec spec;
  spec.band_k = 3;
  const QueryResult r = RunQuery(data, spec);
  EXPECT_EQ(SortedEntries(r),
            (std::vector<OracleEntry>{{0, 0}, {1, 1}, {2, 2}}));
  EXPECT_EQ(SortedEntries(r), ReferenceQuery(data, spec));
}

TEST(RunQueryTest, TopKRanksByCountScoreId) {
  const Dataset data = MakeDataset({
      {0.5f, 0.5f},  // skyline, score 1.0
      {0.1f, 0.8f},  // skyline, score 0.9 — best score
      {0.8f, 0.1f},  // skyline, score 0.9 — tie, larger id
      {0.6f, 0.6f},  // 1 dominator
  });
  QuerySpec spec;
  spec.band_k = 2;
  spec.top_k = 3;
  const QueryResult r = RunQuery(data, spec);
  // Skyline members first (count 0) by score then id, then the band point.
  ASSERT_EQ(r.ids.size(), 3u);
  EXPECT_EQ(r.ids, (std::vector<PointId>{1, 2, 0}));
  EXPECT_EQ(r.dominator_counts, (std::vector<uint32_t>{0, 0, 0}));
  const auto oracle = ReferenceQuery(data, spec);
  EXPECT_EQ(AsEntries(r), oracle);
}

TEST(RunQueryTest, EmptyConstraintBoxYieldsEmptyResult) {
  const Dataset data = MakeDataset({{0.5f, 0.5f}});
  QuerySpec spec;
  spec.Constrain(0, 2.0f, 3.0f);
  const QueryResult r = RunQuery(data, spec);
  EXPECT_TRUE(r.ids.empty());
  EXPECT_EQ(r.matched_rows, 0u);
}

TEST(RunQueryTest, ProgressiveCallbackReportsOriginalIds) {
  // A constraint shifts view row numbers away from original ids; the
  // progressive callback must still deliver caller-space ids, and their
  // union must be exactly the final skyline.
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 400, 4, 31);
  QuerySpec spec;
  spec.Constrain(0, 0.3f, 1.0f);
  Options opts;
  opts.algorithm = Algorithm::kQFlow;
  opts.threads = 2;
  std::mutex mu;
  std::vector<PointId> reported;
  opts.progressive = [&](std::span<const PointId> ids) {
    std::lock_guard<std::mutex> lock(mu);
    reported.insert(reported.end(), ids.begin(), ids.end());
  };
  const QueryResult r = RunQuery(data, spec, opts);
  std::vector<PointId> got = reported;
  std::vector<PointId> want = r.ids;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(RunQueryTest, VerifyQueryAcceptsGoodAndRejectsCorrupted) {
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 400, 4, 11);
  QuerySpec spec;
  spec.SetPreference(1, Preference::kMax);
  spec.band_k = 2;
  QueryResult r = RunQuery(data, spec);
  EXPECT_TRUE(VerifyQuery(data, spec, r));
  ASSERT_FALSE(r.ids.empty());
  r.ids.pop_back();
  r.dominator_counts.pop_back();
  EXPECT_FALSE(VerifyQuery(data, spec, r));
}

TEST(SkylineEngineTest, RegistryLifecycle) {
  SkylineEngine engine;
  EXPECT_EQ(engine.Find("a"), nullptr);
  engine.RegisterDataset("a", MakeDataset({{1.0f, 2.0f}}));
  engine.RegisterDataset("b", MakeDataset({{1.0f}, {2.0f}}));
  ASSERT_NE(engine.Find("a"), nullptr);
  EXPECT_EQ(engine.Find("a")->count(), 1u);
  EXPECT_EQ(engine.DatasetNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(engine.EvictDataset("a"));
  EXPECT_FALSE(engine.EvictDataset("a"));
  EXPECT_EQ(engine.Find("a"), nullptr);
  EXPECT_EQ(engine.DatasetNames(), (std::vector<std::string>{"b"}));
}

TEST(SkylineEngineTest, ExecuteUnknownDatasetThrows) {
  SkylineEngine engine;
  EXPECT_THROW(engine.Execute("nope", QuerySpec{}), std::runtime_error);
}

TEST(SkylineEngineTest, SecondIdenticalQueryIsACacheHit) {
  SkylineEngine engine;
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 300, 3, 5));
  const QueryResult first = engine.Execute("ds", QuerySpec{});
  EXPECT_FALSE(first.cache_hit);
  const QueryResult second = engine.Execute("ds", QuerySpec{});
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(SortedEntries(first), SortedEntries(second));
  const auto counters = engine.cache_counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
}

TEST(SkylineEngineTest, EquivalentSpellingsHitTheSameEntry) {
  SkylineEngine engine;
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 200, 3, 5));
  QuerySpec spelled;
  spelled.preferences.assign(3, Preference::kMin);
  engine.Execute("ds", QuerySpec{});
  const QueryResult r = engine.Execute("ds", spelled);
  EXPECT_TRUE(r.cache_hit);
}

TEST(SkylineEngineTest, ReRegisteringInvalidatesCachedResults) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{0.1f, 0.9f}, {0.9f, 0.1f}}));
  const QueryResult before = engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(before.ids.size(), 2u);

  engine.RegisterDataset(
      "ds", MakeDataset({{0.1f, 0.1f}, {0.9f, 0.9f}, {0.5f, 0.5f}}));
  // The old generation's entry is purged, not just unreachable.
  EXPECT_EQ(engine.cache_counters().entries, 0u);
  const QueryResult after = engine.Execute("ds", QuerySpec{});
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.ids, (std::vector<PointId>{0}));
}

TEST(SkylineEngineTest, EvictPurgesTheDatasetsCachedResults) {
  SkylineEngine engine;
  engine.RegisterDataset("keep", MakeDataset({{1.0f}}));
  engine.RegisterDataset("drop", MakeDataset({{2.0f}}));
  QuerySpec band;
  band.band_k = 2;
  engine.Execute("keep", QuerySpec{});
  engine.Execute("drop", QuerySpec{});
  engine.Execute("drop", band);
  EXPECT_EQ(engine.cache_counters().entries, 3u);
  EXPECT_TRUE(engine.EvictDataset("drop"));
  EXPECT_EQ(engine.cache_counters().entries, 1u);
  // The survivor is still served from cache.
  EXPECT_TRUE(engine.Execute("keep", QuerySpec{}).cache_hit);
}

TEST(SkylineEngineTest, EvictPurgesSelectivityCacheEntries) {
  // Regression: EvictDataset used to leave selectivity estimates behind;
  // a later registration reusing the name could never collide (versions
  // are unique) but the entries squatted in the LRU forever.
  SkylineEngine engine;
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 400, 3, 19));
  QuerySpec boxed;
  boxed.Constrain(0, 0.1f, 0.8f);
  Options opts;
  opts.algorithm = Algorithm::kAuto;
  engine.Execute("ds", boxed, opts);
  EXPECT_EQ(engine.selectivity_cache_counters().entries, 1u);
  EXPECT_TRUE(engine.EvictDataset("ds"));
  EXPECT_EQ(engine.selectivity_cache_counters().entries, 0u);
  // Re-registration of the same name also purges the old generation.
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 400, 3, 19));
  engine.Execute("ds", boxed, opts);
  EXPECT_EQ(engine.selectivity_cache_counters().entries, 1u);
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 400, 3, 23));
  EXPECT_EQ(engine.selectivity_cache_counters().entries, 0u);
}

TEST(SkylineEngineTest, ZeroCapacityDisablesCaching) {
  SkylineEngine engine(SkylineEngine::Config{0});
  engine.RegisterDataset("ds", MakeDataset({{1.0f}}));
  engine.Execute("ds", QuerySpec{});
  const QueryResult again = engine.Execute("ds", QuerySpec{});
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(engine.cache_counters().entries, 0u);
}

TEST(SkylineEngineTest, LruEvictsLeastRecentlyUsed) {
  SkylineEngine engine(SkylineEngine::Config{2});
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 100, 3, 5));
  QuerySpec band2;
  band2.band_k = 2;
  QuerySpec band3;
  band3.band_k = 3;
  engine.Execute("ds", QuerySpec{});  // A
  engine.Execute("ds", band2);       // B — cache {B, A}
  engine.Execute("ds", QuerySpec{});  // touch A — {A, B}
  engine.Execute("ds", band3);       // C evicts B — {C, A}
  EXPECT_TRUE(engine.Execute("ds", QuerySpec{}).cache_hit);
  EXPECT_FALSE(engine.Execute("ds", band2).cache_hit);  // was evicted
  EXPECT_EQ(engine.cache_counters().evictions, 2u);     // B, then C
}

TEST(SkylineEngineTest, ClearCacheForcesRecompute) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{1.0f}}));
  engine.Execute("ds", QuerySpec{});
  engine.ClearCache();
  EXPECT_FALSE(engine.Execute("ds", QuerySpec{}).cache_hit);
}

Dataset ThreeIncomparable() {
  return MakeDataset({{0.1f, 0.9f}, {0.5f, 0.5f}, {0.9f, 0.1f}});
}

TEST(SkylineEngineTest, ByteBudgetEvictsLruFirst) {
  // Three incomparable points: every band query returns all three rows,
  // so every cached result prices identically and the byte budget holds
  // exactly two of them.
  const size_t one =
      QueryResultBytes(RunQuery(ThreeIncomparable(), QuerySpec{}));

  SkylineEngine::Config config;
  config.result_cache_capacity = 128;  // entry cap never binds here
  config.result_cache_bytes = 2 * one;
  SkylineEngine engine(config);
  engine.RegisterDataset("ds", ThreeIncomparable());
  QuerySpec band2;
  band2.band_k = 2;
  QuerySpec band3;
  band3.band_k = 3;
  engine.Execute("ds", QuerySpec{});  // A
  engine.Execute("ds", band2);        // B — {B, A}, at budget
  auto counters = engine.cache_counters();
  EXPECT_EQ(counters.entries, 2u);
  EXPECT_EQ(counters.bytes, 2 * one);
  EXPECT_EQ(counters.byte_evictions, 0u);

  engine.Execute("ds", band3);  // C — evicts A, the LRU entry
  counters = engine.cache_counters();
  EXPECT_EQ(counters.entries, 2u);
  EXPECT_LE(counters.bytes, config.result_cache_bytes);
  EXPECT_EQ(counters.byte_evictions, 1u);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_TRUE(engine.Execute("ds", band3).cache_hit);
  EXPECT_TRUE(engine.Execute("ds", band2).cache_hit);
  EXPECT_FALSE(engine.Execute("ds", QuerySpec{}).cache_hit);  // was evicted
}

TEST(SkylineEngineTest, ResultLargerThanByteBudgetIsNotRetained) {
  const size_t one =
      QueryResultBytes(RunQuery(ThreeIncomparable(), QuerySpec{}));

  SkylineEngine::Config config;
  config.result_cache_bytes = one - 1;
  SkylineEngine engine(config);
  engine.RegisterDataset("ds", ThreeIncomparable());
  engine.Execute("ds", QuerySpec{});
  const auto counters = engine.cache_counters();
  EXPECT_EQ(counters.entries, 0u);
  EXPECT_EQ(counters.bytes, 0u);
  EXPECT_FALSE(engine.Execute("ds", QuerySpec{}).cache_hit);
}

TEST(SkylineEngineTest, ViewReusedAcrossSpecsDifferingOnlyInDepthOrCap) {
  SkylineEngine engine;
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 300, 4, 23);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec base;
  base.SetPreference(1, Preference::kMax).Constrain(0, 0.1f, 0.9f);
  QuerySpec capped = base;
  capped.top_k = 5;
  QuerySpec banded = base;
  banded.band_k = 3;

  engine.Execute("ds", base);  // builds + caches the materialized view
  auto views = engine.view_cache_counters();
  EXPECT_EQ(views.misses, 1u);
  EXPECT_EQ(views.entries, 1u);

  // Same ViewKey, different band_k / top_k: result-cache misses that
  // reuse the one materialized view instead of rebuilding it.
  const QueryResult r1 = engine.Execute("ds", capped);
  const QueryResult r2 = engine.Execute("ds", banded);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_FALSE(r2.cache_hit);
  views = engine.view_cache_counters();
  EXPECT_EQ(views.hits, 2u);
  EXPECT_EQ(views.misses, 1u);
  EXPECT_EQ(views.entries, 1u);
  EXPECT_EQ(AsEntries(r1), ReferenceQuery(data, capped));
  EXPECT_EQ(SortedEntries(r2), ReferenceQuery(data, banded));

  // The identity transform needs no view and must not populate the cache.
  engine.Execute("ds", QuerySpec{});
  EXPECT_EQ(engine.view_cache_counters().entries, 1u);
}

TEST(SkylineEngineTest, InvalidSpecSurfacesAsException) {
  SkylineEngine engine;
  engine.RegisterDataset("ds", MakeDataset({{1.0f, 2.0f}}));
  QuerySpec bad;
  bad.preferences.assign(2, Preference::kIgnore);
  EXPECT_THROW(engine.Execute("ds", bad), std::runtime_error);
}

TEST(SkylineEngineTest, ViewCacheByteBudgetEvictsAndCounts) {
  // Two views over a 600-row dataset with a budget sized for one: the
  // second materialization must push the first out, and a budget smaller
  // than any view retains nothing.
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 600, 4, 29);
  QuerySpec a;
  a.Constrain(0, 0.0f, 0.8f);
  QuerySpec b;
  b.Constrain(1, 0.0f, 0.8f);
  const size_t one_view = QueryViewBytes(
      MaterializeView(data, a.Canonicalize(data.dims())));

  SkylineEngine::Config config;
  config.view_cache_capacity = 8;  // entry cap never binds here
  config.view_cache_bytes = one_view + one_view / 2;
  SkylineEngine engine(config);
  engine.RegisterDataset("ds", data.Clone());
  engine.Execute("ds", a);
  engine.Execute("ds", b);
  auto views = engine.view_cache_counters();
  EXPECT_EQ(views.entries, 1u);
  EXPECT_GE(views.byte_evictions, 1u);
  EXPECT_LE(views.bytes, config.view_cache_bytes);

  SkylineEngine::Config tiny_config;
  tiny_config.view_cache_bytes = 16;  // smaller than any view
  SkylineEngine tiny(tiny_config);
  tiny.RegisterDataset("ds", data.Clone());
  tiny.Execute("ds", a);
  EXPECT_EQ(tiny.view_cache_counters().entries, 0u);
}

TEST(SkylineEngineTest, ResultCacheTtlExpiresLazily) {
  SkylineEngine::Config config;
  config.result_cache_ttl = 0.05;  // 50 ms
  SkylineEngine engine(config);
  engine.RegisterDataset("ds", ThreeIncomparable());

  EXPECT_FALSE(engine.Execute("ds", QuerySpec{}).cache_hit);
  EXPECT_TRUE(engine.Execute("ds", QuerySpec{}).cache_hit);  // fresh
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Expired now: Get lazily erases the entry, counts it, and recomputes.
  EXPECT_FALSE(engine.Execute("ds", QuerySpec{}).cache_hit);
  const auto counters = engine.cache_counters();
  EXPECT_EQ(counters.ttl_evictions, 1u);
  EXPECT_GE(counters.evictions, 1u);
  // The recompute re-populated the cache; it serves again until expiry.
  EXPECT_TRUE(engine.Execute("ds", QuerySpec{}).cache_hit);
}

TEST(SkylineEngineTest, ZeroTtlNeverExpires) {
  SkylineEngine engine;  // default config: TTL off
  engine.RegisterDataset("ds", ThreeIncomparable());
  engine.Execute("ds", QuerySpec{});
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(engine.Execute("ds", QuerySpec{}).cache_hit);
  EXPECT_EQ(engine.cache_counters().ttl_evictions, 0u);
}

TEST(SkylineEngineTest, FindSketchTracksRegistration) {
  SkylineEngine engine;
  EXPECT_EQ(engine.FindSketch("ds"), nullptr);
  engine.RegisterDataset(
      "ds", GenerateSynthetic(Distribution::kIndependent, 500, 4, 31));
  const std::shared_ptr<const StatsSketch> sketch = engine.FindSketch("ds");
  ASSERT_NE(sketch, nullptr);
  EXPECT_EQ(sketch->n, 500u);
  EXPECT_EQ(sketch->d, 4);
  engine.EvictDataset("ds");
  EXPECT_EQ(engine.FindSketch("ds"), nullptr);
}

}  // namespace
}  // namespace sky::test
