// Copyright (c) SkyBench-NG contributors.
// Unit tests for the fault-injection harness (common/failpoint.h):
// spec parsing, all four modes, probability determinism, and the
// hits/trips accounting. The registry is process-wide, so every test
// disarms what it armed.
#include <algorithm>
#include <chrono>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"

namespace sky {
namespace {

class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::Instance().DisarmAll(); }
};

TEST_F(FailPointTest, UnarmedSiteIsFreeOfEffects) {
  EXPECT_FALSE(FailPoints::Instance().armed());
  EXPECT_NO_THROW(SKY_FAILPOINT("test_site"));
  EXPECT_EQ(FailPoints::Instance().Hits("test_site"), 0u);
}

TEST_F(FailPointTest, ThrowModeThrowsRuntimeError) {
  FailPoints::Instance().Arm("test_site", FailPoints::Mode::kThrow);
  EXPECT_TRUE(FailPoints::Instance().armed());
  EXPECT_THROW(SKY_FAILPOINT("test_site"), std::runtime_error);
  EXPECT_EQ(FailPoints::Instance().Hits("test_site"), 1u);
  EXPECT_EQ(FailPoints::Instance().Trips("test_site"), 1u);
  // Other sites stay clean while this one is armed.
  EXPECT_NO_THROW(SKY_FAILPOINT("other_site"));
}

TEST_F(FailPointTest, BadAllocModeThrowsBadAlloc) {
  FailPoints::Instance().Arm("test_site", FailPoints::Mode::kBadAlloc);
  EXPECT_THROW(SKY_FAILPOINT("test_site"), std::bad_alloc);
}

TEST_F(FailPointTest, ErrorModeThrowsTypedErrorNamingTheSite) {
  FailPoints::Instance().Arm("test_site", FailPoints::Mode::kError);
  try {
    SKY_FAILPOINT("test_site");
    FAIL() << "armed error site must throw";
  } catch (const FailPointError& err) {
    EXPECT_EQ(err.site(), "test_site");
    EXPECT_NE(std::string(err.what()).find("test_site"), std::string::npos);
  }
}

TEST_F(FailPointTest, DelayModeSleepsWithoutThrowing) {
  FailPoints::Instance().Arm("test_site", FailPoints::Mode::kDelay,
                             /*probability=*/1.0, /*delay_ms=*/20);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(SKY_FAILPOINT("test_site"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            15);
}

TEST_F(FailPointTest, ZeroProbabilityHitsButNeverTrips) {
  FailPoints::Instance().Arm("test_site", FailPoints::Mode::kThrow,
                             /*probability=*/0.0);
  for (int i = 0; i < 50; ++i) EXPECT_NO_THROW(SKY_FAILPOINT("test_site"));
  EXPECT_EQ(FailPoints::Instance().Hits("test_site"), 50u);
  EXPECT_EQ(FailPoints::Instance().Trips("test_site"), 0u);
}

TEST_F(FailPointTest, FractionalProbabilityIsDeterministicAcrossRuns) {
  // The per-site splitmix64 stream makes the trip pattern a function of
  // the hit index only — two identically armed sequences must agree.
  const auto run = [] {
    FailPoints::Instance().DisarmAll();
    FailPoints::Instance().Arm("test_site", FailPoints::Mode::kThrow,
                               /*probability=*/0.3);
    std::vector<bool> tripped;
    for (int i = 0; i < 200; ++i) {
      try {
        SKY_FAILPOINT("test_site");
        tripped.push_back(false);
      } catch (const std::runtime_error&) {
        tripped.push_back(true);
      }
    }
    return tripped;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  const size_t trips =
      static_cast<size_t>(std::count(first.begin(), first.end(), true));
  // p=0.3 over 200 draws: a degenerate all/none stream would mean the
  // probability gate is broken.
  EXPECT_GT(trips, 20u);
  EXPECT_LT(trips, 120u);
}

TEST_F(FailPointTest, ArmFromSpecParsesModesProbabilityAndDelay) {
  FailPoints& fp = FailPoints::Instance();
  EXPECT_TRUE(fp.ArmFromSpec("a:throw"));
  EXPECT_TRUE(fp.ArmFromSpec("b:bad_alloc:0.5"));
  EXPECT_TRUE(fp.ArmFromSpec("c:delay:1:25"));
  EXPECT_TRUE(fp.ArmFromSpec("d:error:0"));
  const std::vector<std::string> armed = fp.ArmedSites();
  EXPECT_EQ(armed, (std::vector<std::string>{"a", "b", "c", "d"}));

  std::string err;
  EXPECT_FALSE(fp.ArmFromSpec("", &err));
  EXPECT_FALSE(fp.ArmFromSpec("siteonly", &err));
  EXPECT_FALSE(fp.ArmFromSpec(":throw", &err));
  EXPECT_FALSE(fp.ArmFromSpec("a:notamode", &err));
  EXPECT_NE(err.find("notamode"), std::string::npos);
  EXPECT_FALSE(fp.ArmFromSpec("a:throw:junk", &err));
  EXPECT_FALSE(fp.ArmFromSpec("a:throw:1.5", &err));
  EXPECT_FALSE(fp.ArmFromSpec("a:delay:1:ms", &err));
  EXPECT_FALSE(fp.ArmFromSpec("a:throw:1:5:extra", &err));
}

TEST_F(FailPointTest, DisarmStopsInjectionAndRearmResetsNothing) {
  FailPoints& fp = FailPoints::Instance();
  fp.Arm("test_site", FailPoints::Mode::kThrow);
  EXPECT_THROW(SKY_FAILPOINT("test_site"), std::runtime_error);
  fp.Disarm("test_site");
  EXPECT_FALSE(fp.armed());
  EXPECT_NO_THROW(SKY_FAILPOINT("test_site"));
  // Disarming an unknown site is a no-op, not an underflow.
  fp.Disarm("never_armed");
  EXPECT_FALSE(fp.armed());
  // Re-arming the same site must not double-count toward armed().
  fp.Arm("test_site", FailPoints::Mode::kDelay, 1.0, 0);
  fp.Arm("test_site", FailPoints::Mode::kDelay, 1.0, 0);
  fp.DisarmAll();
  EXPECT_FALSE(fp.armed());
}

TEST_F(FailPointTest, ModeNamesRoundTripThroughParse) {
  using Mode = FailPoints::Mode;
  for (const Mode m :
       {Mode::kThrow, Mode::kBadAlloc, Mode::kError, Mode::kDelay}) {
    Mode parsed;
    ASSERT_TRUE(FailPoints::ParseMode(FailPoints::ModeName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  Mode ignored;
  EXPECT_FALSE(FailPoints::ParseMode("bogus", &ignored));
  // Spelling aliases accepted on input.
  EXPECT_TRUE(FailPoints::ParseMode("oom", &ignored));
  EXPECT_EQ(ignored, Mode::kBadAlloc);
}

}  // namespace
}  // namespace sky
