// Copyright (c) SkyBench-NG contributors.
#include "data/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace sky {
namespace {

TEST(Generator, Deterministic) {
  Dataset a = GenerateSynthetic(Distribution::kIndependent, 100, 4, 7);
  Dataset b = GenerateSynthetic(Distribution::kIndependent, 100, 4, 7);
  for (size_t i = 0; i < 100; ++i) {
    for (int j = 0; j < 4; ++j) {
      ASSERT_EQ(a.Row(i)[j], b.Row(i)[j]);
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  Dataset a = GenerateSynthetic(Distribution::kIndependent, 50, 4, 1);
  Dataset b = GenerateSynthetic(Distribution::kIndependent, 50, 4, 2);
  bool any_diff = false;
  for (size_t i = 0; i < 50 && !any_diff; ++i) {
    for (int j = 0; j < 4; ++j) any_diff |= a.Row(i)[j] != b.Row(i)[j];
  }
  EXPECT_TRUE(any_diff);
}

class GeneratorBounds
    : public ::testing::TestWithParam<std::tuple<Distribution, int>> {};

TEST_P(GeneratorBounds, ValuesInUnitCube) {
  const auto [dist, d] = GetParam();
  Dataset data = GenerateSynthetic(dist, 2000, d, 11);
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < d; ++j) {
      ASSERT_GE(data.Row(i)[j], 0.0f);
      ASSERT_LE(data.Row(i)[j], 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorBounds,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(2, 5, 8, 16)));

TEST(Generator, SkylineSizeOrderingAcrossDistributions) {
  // The defining property (paper Fig. 4): corr << indep << anti.
  const size_t n = 4000;
  const int d = 6;
  const auto sky_size = [&](Distribution dist) {
    Dataset data = GenerateSynthetic(dist, n, d, 3);
    return test::ReferenceSkyline(data).size();
  };
  const size_t corr = sky_size(Distribution::kCorrelated);
  const size_t indep = sky_size(Distribution::kIndependent);
  const size_t anti = sky_size(Distribution::kAnticorrelated);
  EXPECT_LT(corr * 2, indep);
  EXPECT_LT(indep * 2, anti);
}

TEST(Generator, CorrelatedCoordinatesCorrelate) {
  Dataset data = GenerateSynthetic(Distribution::kCorrelated, 5000, 2, 9);
  // Pearson correlation of the two coordinates should be strongly positive.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(data.count());
  for (size_t i = 0; i < data.count(); ++i) {
    const double x = data.Row(i)[0], y = data.Row(i)[1];
    sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double r = cov / std::sqrt(vx * vy);
  EXPECT_GT(r, 0.5);
}

TEST(Generator, AnticorrelatedCoordinatesAnticorrelate) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 5000, 2, 9);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(data.count());
  for (size_t i = 0; i < data.count(); ++i) {
    const double x = data.Row(i)[0], y = data.Row(i)[1];
    sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double r = cov / std::sqrt(vx * vy);
  EXPECT_LT(r, -0.5);
}

TEST(Generator, ParseDistributionNames) {
  EXPECT_EQ(ParseDistribution("corr"), Distribution::kCorrelated);
  EXPECT_EQ(ParseDistribution("independent"), Distribution::kIndependent);
  EXPECT_EQ(ParseDistribution("anti"), Distribution::kAnticorrelated);
  EXPECT_THROW(ParseDistribution("zipf"), std::invalid_argument);
}

}  // namespace
}  // namespace sky
