// Copyright (c) SkyBench-NG contributors.
// Unit tests for the persistent work-stealing executor
// (parallel/executor.h): inline single-thread path, fork-join
// equivalence with the ThreadPool facade, loop oracles, nested groups,
// admission caps and the stats/counters surface.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "gtest/gtest.h"
#include "parallel/executor.h"
#include "parallel/thread_pool.h"

namespace sky {
namespace {

TEST(ExecutorTest, SingleThreadRunsEverythingInline) {
  Executor exec(1);
  EXPECT_EQ(exec.threads(), 1);
  Executor::TaskGroup group(exec, 0);
  EXPECT_EQ(group.parallelism(), 1);

  int calls = 0;
  for (int i = 0; i < 16; ++i) {
    group.Run([&] { ++calls; });  // must run before Run() returns
    EXPECT_EQ(calls, i + 1);
  }
  group.Wait();
  const Executor::GroupStats stats = group.stats();
  EXPECT_EQ(stats.tasks, 0u);  // nothing ever hit a queue
  EXPECT_EQ(stats.inline_runs, 16u);
  EXPECT_EQ(stats.workers_used, 1);

  const auto counters = exec.Counters();
  EXPECT_EQ(counters.tasks, 0u);
  EXPECT_EQ(counters.steals, 0u);
  EXPECT_EQ(counters.queue_depth, 0u);
}

TEST(ExecutorTest, GroupCapClampsToExecutorWidth) {
  Executor exec(2);
  Executor::TaskGroup wide(exec, 64);
  EXPECT_EQ(wide.parallelism(), 2);
  Executor::TaskGroup defaulted(exec, 0);
  EXPECT_EQ(defaulted.parallelism(), 2);
  Executor::TaskGroup narrow(exec, 1);
  EXPECT_EQ(narrow.parallelism(), 1);
}

TEST(ExecutorTest, RunOnAllVisitsEverySlotExactlyOnce) {
  for (int threads : {2, 3, 4, 8}) {
    Executor exec(threads);
    Executor::TaskGroup group(exec, 0);
    std::vector<std::atomic<int>> visits(
        static_cast<size_t>(group.parallelism()));
    group.RunOnAll([&](int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, group.parallelism());
      visits[static_cast<size_t>(worker)].fetch_add(1);
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ExecutorTest, ParallelForSumMatchesSequential) {
  constexpr size_t kN = 20000;
  uint64_t expected = 0;
  for (size_t i = 0; i < kN; ++i) expected += i * i;

  Executor exec(4);
  Executor::TaskGroup group(exec, 0);
  std::atomic<uint64_t> sum{0};
  group.ParallelFor(kN, /*grain=*/64, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += i * i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), expected);
}

TEST(ExecutorTest, ParallelForCoversRangeExactlyOnce) {
  constexpr size_t kN = 5000;
  Executor exec(4);
  Executor::TaskGroup group(exec, 0);
  std::vector<std::atomic<int>> hits(kN);
  group.ParallelFor(kN, /*grain=*/7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecutorTest, ParallelForStaticPartitionsContiguously) {
  Executor exec(4);
  Executor::TaskGroup group(exec, 0);
  constexpr size_t kN = 103;
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges;
  group.ParallelForStatic(kN, [&](size_t begin, size_t end, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, group.parallelism());
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  size_t next = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, next);
    EXPECT_LT(begin, end);
    next = end;
  }
  EXPECT_EQ(next, kN);
}

TEST(ExecutorTest, ForkJoinMatchesThreadPoolFacade) {
  // The same skewed computation through a raw TaskGroup, a borrowed
  // ThreadPool and a standalone ThreadPool must agree bit-for-bit.
  constexpr size_t kN = 8192;
  const auto cost = [](size_t i) {
    uint64_t acc = i;
    for (size_t k = 0; k < i % 17; ++k) acc = acc * 2654435761u + k;
    return acc;
  };
  uint64_t expected = 0;
  for (size_t i = 0; i < kN; ++i) expected += cost(i);

  Executor exec(4);
  const auto via = [&](auto&& parallel_for) {
    std::atomic<uint64_t> sum{0};
    parallel_for([&](size_t begin, size_t end) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) local += cost(i);
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    return sum.load();
  };

  const uint64_t group_sum = via([&](const auto& body) {
    Executor::TaskGroup group(exec, 0);
    group.ParallelFor(kN, 32, body);
  });
  const uint64_t borrowed_sum = via([&](const auto& body) {
    ThreadPool pool(&exec, 3);
    pool.ParallelFor(kN, 32, body);
  });
  const uint64_t standalone_sum = via([&](const auto& body) {
    ThreadPool pool(4);
    pool.ParallelFor(kN, 32, body);
  });
  EXPECT_EQ(group_sum, expected);
  EXPECT_EQ(borrowed_sum, expected);
  EXPECT_EQ(standalone_sum, expected);
}

TEST(ExecutorTest, BorrowedThreadPoolClampsToExecutorWidth) {
  Executor exec(2);
  ThreadPool pool(&exec, 16);
  EXPECT_EQ(pool.threads(), 2);
  ThreadPool inline_pool(&exec, 1);
  EXPECT_EQ(inline_pool.threads(), 1);
  // Null executor degrades to standalone mode.
  ThreadPool fallback(static_cast<Executor*>(nullptr), 2);
  EXPECT_EQ(fallback.threads(), 2);
  std::atomic<int> visits{0};
  fallback.RunOnAll([&](int) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 2);
}

TEST(ExecutorTest, NestedGroupsShareTheWorkerSet) {
  // Outer fan-out over 8 slices, each forking an inner ParallelFor on a
  // nested group — the shape the engine produces when a sharded query's
  // per-shard algorithm is itself parallel.
  constexpr size_t kSlices = 8;
  constexpr size_t kPerSlice = 2000;
  Executor exec(4);
  std::atomic<uint64_t> sum{0};
  Executor::TaskGroup outer(exec, 0);
  outer.ParallelFor(kSlices, 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      Executor::TaskGroup inner(exec, 2);
      inner.ParallelFor(kPerSlice, 64, [&](size_t lo, size_t hi) {
        uint64_t local = 0;
        for (size_t i = lo; i < hi; ++i) local += s * kPerSlice + i;
        sum.fetch_add(local, std::memory_order_relaxed);
      });
    }
  });
  const size_t total = kSlices * kPerSlice;
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(total) * (total - 1) / 2);
}

TEST(ExecutorTest, AdmissionCapBoundsConcurrency) {
  // A group capped at 2 on a wide executor must never have more than two
  // of its loop bodies running at once, no matter how many chunks exist.
  Executor exec(8);
  Executor::TaskGroup group(exec, 2);
  ASSERT_EQ(group.parallelism(), 2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  group.ParallelFor(256, 1, [&](size_t, size_t) {
    const int now = running.fetch_add(1) + 1;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    std::atomic<int> spin{0};
    while (spin.fetch_add(1, std::memory_order_relaxed) < 400) {
    }
    running.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(ExecutorTest, GroupStatsAccountForParticipants) {
  Executor exec(4);
  Executor::TaskGroup group(exec, 0);
  std::atomic<uint64_t> sink{0};
  group.ParallelFor(10000, 16, [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += i;
    sink.fetch_add(local, std::memory_order_relaxed);
  });
  group.Wait();
  const Executor::GroupStats stats = group.stats();
  EXPECT_GE(stats.workers_used, 1);
  EXPECT_LE(stats.workers_used, exec.threads());
  // A loop spawns at most parallelism - 1 queued tasks per call.
  EXPECT_LE(stats.tasks, static_cast<uint64_t>(group.parallelism() - 1));
  EXPECT_LE(stats.steals, stats.tasks);
}

TEST(ExecutorTest, CountersAreMonotonic) {
  Executor exec(4);
  const auto before = exec.Counters();
  for (int round = 0; round < 4; ++round) {
    Executor::TaskGroup group(exec, 0);
    group.ParallelFor(4096, 16, [](size_t, size_t) {});
  }
  const auto after = exec.Counters();
  EXPECT_GE(after.tasks, before.tasks);
  EXPECT_GE(after.steals, before.steals);
  EXPECT_GE(after.inline_runs, before.inline_runs);
  EXPECT_GE(after.parks, before.parks);
  EXPECT_EQ(after.queue_depth, 0u);  // quiescent between groups
}

TEST(ExecutorTest, ReusableAcrossManyGroups) {
  // One executor serves many sequential fork-joins without leaking
  // pending state between them (the engine keeps one for its lifetime).
  Executor exec(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    Executor::TaskGroup group(exec, 0);
    group.ParallelFor(333, 10, [&](size_t begin, size_t end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 333u);
  }
}

TEST(ExecutorTest, EmptyAndTinyLoops) {
  Executor exec(4);
  Executor::TaskGroup group(exec, 0);
  int calls = 0;
  std::mutex mu;
  group.ParallelFor(0, 8, [&](size_t, size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  std::atomic<int> hits{0};
  group.ParallelFor(1, 8, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
  group.ParallelForStatic(0, [&](size_t, size_t, int) { hits.fetch_add(100); });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ExecutorTest, WaitRethrowsFirstTaskException) {
  Executor exec(4);
  Executor::TaskGroup group(exec, 0);
  for (int i = 0; i < 8; ++i) {
    group.Run([] { throw std::runtime_error("task died"); });
  }
  try {
    group.Wait();
    FAIL() << "Wait() must rethrow a captured task exception";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "task died");
  }
  // The group drained fully despite the failures; the executor is
  // reusable afterwards.
  Executor::TaskGroup next(exec, 0);
  std::atomic<int> ran{0};
  next.Run([&] { ran.fetch_add(1); });
  next.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecutorTest, BadAllocCrossesWaitWithItsType) {
  Executor exec(2);
  Executor::TaskGroup group(exec, 0);
  group.Run([]() -> void { throw std::bad_alloc(); });
  EXPECT_THROW(group.Wait(), std::bad_alloc);
}

TEST(ExecutorTest, ThrowingTaskTripsAttachedCancelToken) {
  // Siblings polling the attached token must observe the stop request
  // instead of finishing a doomed fork-join.
  Executor exec(4);
  CancelToken token;
  Executor::TaskGroup group(exec, 0);
  group.set_cancel_token(&token);
  std::atomic<int> stopped_early{0};
  group.Run([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 4; ++i) {
    group.Run([&] {
      for (int spin = 0; spin < 200'000; ++spin) {
        if (token.ShouldStop()) {
          stopped_early.fetch_add(1);
          return;
        }
        std::this_thread::yield();
      }
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), Status::kCancelled);
  // At least one sibling saw the trip before exhausting its spin budget
  // on any machine where the failing task ran first; either way, all
  // tasks completed and the group joined cleanly.
  EXPECT_GE(stopped_early.load(), 0);
}

TEST(ExecutorTest, DeadlineReasonSurvivesExceptionCapture) {
  // An exception arriving after the token already stopped for a deadline
  // must not repaint the reason: first cause wins.
  Executor exec(2);
  CancelToken token;
  token.Cancel(Status::kDeadlineExceeded);
  Executor::TaskGroup group(exec, 0);
  group.set_cancel_token(&token);
  group.Run([] { throw std::runtime_error("late failure"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(token.reason(), Status::kDeadlineExceeded);
}

TEST(ExecutorTest, DestructorDropsPendingExceptionWithoutTerminating) {
  Executor exec(2);
  {
    Executor::TaskGroup group(exec, 0);
    group.Run([] { throw std::runtime_error("never observed"); });
    // No Wait(): the destructor must drain and swallow, not std::terminate.
  }
  Executor::TaskGroup after(exec, 0);
  std::atomic<int> ran{0};
  after.Run([&] { ran.fetch_add(1); });
  after.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecutorTest, ThreadPoolLoopsPropagateWorkerExceptions) {
  // The facade delegates to TaskGroups, so both standalone and borrowed
  // pools inherit the containment story.
  ThreadPool standalone(4);
  EXPECT_THROW(standalone.RunOnAll([](int worker) {
    if (worker == 1) throw std::runtime_error("worker 1 died");
  }),
               std::runtime_error);
  // The pool survives the failed fork-join.
  std::atomic<int> visits{0};
  standalone.RunOnAll([&](int) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), standalone.threads());

  Executor exec(4);
  ThreadPool borrowed(&exec, 4);
  EXPECT_THROW(borrowed.ParallelFor(100, 10,
                                    [](size_t begin, size_t) {
                                      if (begin >= 50) throw std::bad_alloc();
                                    }),
               std::bad_alloc);
  std::atomic<uint64_t> sum{0};
  borrowed.ParallelFor(100, 10, [&](size_t begin, size_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100u);
}

}  // namespace
}  // namespace sky
