// Copyright (c) SkyBench-NG contributors.
// Mask algebra and composite-key tests (paper §VI-A2 / §VI-A3).
#include "common/bits.h"

#include <gtest/gtest.h>

namespace sky {
namespace {

TEST(Bits, MaskLevel) {
  EXPECT_EQ(MaskLevel(0b0000), 0);
  EXPECT_EQ(MaskLevel(0b0101), 2);
  EXPECT_EQ(MaskLevel(0b1111), 4);
}

TEST(Bits, FullMask) {
  EXPECT_EQ(FullMask(1), 0b1u);
  EXPECT_EQ(FullMask(4), 0b1111u);
  EXPECT_EQ(FullMask(16), 0xFFFFu);
}

TEST(Bits, MaskMayDominateSubsetRule) {
  // A partition may contain a dominator of another iff its mask is a
  // subset of the other's.
  EXPECT_TRUE(MaskMayDominate(0b00, 0b01));
  EXPECT_TRUE(MaskMayDominate(0b01, 0b01));   // same region
  EXPECT_TRUE(MaskMayDominate(0b01, 0b11));
  EXPECT_FALSE(MaskMayDominate(0b10, 0b01));  // crossing regions
  EXPECT_FALSE(MaskMayDominate(0b11, 0b01));  // higher level
}

TEST(Bits, PaperPropertyOne) {
  // §VI-A2 property 1: |m| >= |m'| and m != m' implies no point with mask
  // m dominates a point with mask m'.
  for (Mask m = 0; m < 16; ++m) {
    for (Mask mp = 0; mp < 16; ++mp) {
      if (MaskLevel(m) >= MaskLevel(mp) && m != mp) {
        EXPECT_FALSE(MaskMayDominate(m, mp)) << m << " vs " << mp;
      }
    }
  }
}

TEST(Bits, PaperPropertyTwo) {
  // §VI-A2 property 2: (m & m') < m implies no dominance from m to m'.
  for (Mask m = 0; m < 16; ++m) {
    for (Mask mp = 0; mp < 16; ++mp) {
      if ((m & mp) < m) {
        EXPECT_FALSE(MaskMayDominate(m, mp)) << m << " vs " << mp;
      } else {
        EXPECT_TRUE(MaskMayDominate(m, mp)) << m << " vs " << mp;
      }
    }
  }
}

TEST(Bits, CompositeKeyRoundTrip) {
  for (int d = 1; d <= 16; d += 3) {
    for (Mask m = 0; m <= FullMask(d); m += 5) {
      const uint32_t key = CompositeMaskKey(m, d);
      EXPECT_EQ(KeyToMask(key, d), m);
      EXPECT_EQ(KeyToLevel(key, d), MaskLevel(m));
    }
  }
}

TEST(Bits, CompositeKeyOrdersByLevelThenMask) {
  const int d = 4;
  // level(0b0011)=2 < level(0b0111)=3 even though 0b0111 > 0b0011.
  EXPECT_LT(CompositeMaskKey(0b0011, d), CompositeMaskKey(0b0111, d));
  // Same level: mask value breaks the tie.
  EXPECT_LT(CompositeMaskKey(0b0011, d), CompositeMaskKey(0b0101, d));
  // Exhaustive monotonicity check against the (level, mask) pair order.
  for (Mask a = 0; a <= FullMask(d); ++a) {
    for (Mask b = 0; b <= FullMask(d); ++b) {
      const bool pair_less = std::make_pair(MaskLevel(a), a) <
                             std::make_pair(MaskLevel(b), b);
      EXPECT_EQ(CompositeMaskKey(a, d) < CompositeMaskKey(b, d), pair_less);
    }
  }
}

TEST(Bits, OrderedBitsMonotoneForAllFloats) {
  // Regression guard: datasets may carry negative coordinates (negated
  // "larger is better" attributes), so the mapping must be a total order
  // over negatives, zero and positives alike.
  const float vals[] = {-1e20f, -3.5f,  -1.0f, -0.5f, -1e-30f, 0.0f,
                        1e-30f, 0.25f, 0.5f,  1.0f,  3.5f,    1e20f};
  for (size_t i = 0; i + 1 < std::size(vals); ++i) {
    EXPECT_LT(ToOrderedBits(vals[i]), ToOrderedBits(vals[i + 1]))
        << vals[i] << " vs " << vals[i + 1];
  }
}

}  // namespace
}  // namespace sky
