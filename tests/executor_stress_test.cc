// Copyright (c) SkyBench-NG contributors.
// Concurrency stress for the shared work-stealing executor
// (parallel/executor.h). Two layers: the raw scheduler hammered by many
// external submitters with nested groups, and a full engine where 8
// concurrent clients run sharded queries while a writer mutates the
// dataset — every served answer must match one of the precomputed
// per-version oracles. Run under TSan by the scheduled CI job.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "data/generator.h"
#include "gtest/gtest.h"
#include "parallel/executor.h"
#include "parallel/thread_pool.h"
#include "query/engine.h"
#include "test_util.h"

namespace sky::test {
namespace {

TEST(ExecutorStressTest, ManyExternalSubmittersOneScheduler) {
  // 8 external threads each run repeated fork-joins (some nested) on one
  // 4-wide executor — the engine's serving shape, where every client
  // thread is a foreign submitter that must inject, help and wait without
  // losing tasks or racing the parking protocol.
  Executor exec(4);
  constexpr int kClients = 8;
  constexpr int kRounds = 40;
  std::atomic<uint64_t> grand_total{0};
  ThreadPool clients(kClients);
  clients.RunOnAll([&](int client) {
    std::mt19937 rng(static_cast<uint32_t>(client) * 97 + 11);
    for (int round = 0; round < kRounds; ++round) {
      const size_t n = 100 + rng() % 900;
      std::atomic<uint64_t> sum{0};
      Executor::TaskGroup group(exec, 1 + static_cast<int>(rng() % 4));
      group.ParallelFor(n, 16, [&](size_t begin, size_t end) {
        uint64_t local = 0;
        for (size_t i = begin; i < end; ++i) local += i + 1;
        if ((begin % 128) == 0) {
          // Occasionally fork a nested group from inside a task.
          std::atomic<uint64_t> inner{0};
          Executor::TaskGroup sub(exec, 2);
          sub.ParallelFor(64, 8, [&](size_t lo, size_t hi) {
            inner.fetch_add(hi - lo, std::memory_order_relaxed);
          });
          sub.Wait();
          local += inner.load() / 64;  // always 1
        }
        sum.fetch_add(local, std::memory_order_relaxed);
      });
      const uint64_t base = static_cast<uint64_t>(n) * (n + 1) / 2;
      EXPECT_GE(sum.load(), base);
      grand_total.fetch_add(sum.load(), std::memory_order_relaxed);
    }
  });
  EXPECT_GT(grand_total.load(), 0u);
  EXPECT_EQ(exec.Counters().queue_depth, 0u);
}

TEST(ExecutorStressTest, EightShardedClientsWithConcurrentMutations) {
  // The ISSUE's acceptance stress: one engine with a 4-wide shared
  // executor, 8 client threads running sharded queries (per-query
  // parallelism borrowed from the executor as capped task groups) while
  // a writer applies a deterministic insert/delete script. Every served
  // result must be exact for SOME minor version that existed — never a
  // torn mix — and the settled state must serve the final version.
  SkylineEngine::Config config;
  config.result_cache_capacity = 8;
  config.shards = 4;
  config.shard_policy = ShardPolicy::kMedianPivot;
  config.executor_threads = 4;
  SkylineEngine engine(config);
  const Dataset base =
      GenerateSynthetic(Distribution::kAnticorrelated, 600, 3, 61);
  engine.RegisterDataset("ds", base.Clone());

  // Model of the row state (compact-index semantics) used to precompute
  // the mutation payloads and each version's expected answers.
  std::vector<std::vector<Value>> model;
  for (size_t i = 0; i < base.count(); ++i) {
    model.emplace_back(base.Row(i), base.Row(i) + 3);
  }
  const auto build_model = [&] {
    std::vector<float> flat;
    for (const auto& row : model) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    return Dataset::FromRowMajor(3, flat);
  };

  // Include a constrained spec so per-shard views (the cache most
  // exposed to racing mutations) are exercised on the executor path.
  QuerySpec banded;
  banded.band_k = 2;
  QuerySpec boxed;
  boxed.Constrain(0, 0.1f, 0.8f);
  const std::vector<QuerySpec> specs{QuerySpec{}, banded, boxed};

  constexpr int kSteps = 10;
  std::vector<Dataset> insert_batches;
  std::vector<std::vector<PointId>> delete_batches;
  // expected[s][v]: sorted (id, count) pairs of spec s at version v.
  std::vector<std::vector<std::vector<std::pair<PointId, uint32_t>>>>
      expected(specs.size());
  const auto snapshot_expected = [&] {
    const Dataset now = build_model();
    for (size_t s = 0; s < specs.size(); ++s) {
      const QueryResult r = RunQuery(now, specs[s]);
      std::vector<std::pair<PointId, uint32_t>> entries;
      for (size_t i = 0; i < r.ids.size(); ++i) {
        entries.emplace_back(r.ids[i], r.dominator_counts[i]);
      }
      std::sort(entries.begin(), entries.end());
      expected[s].push_back(std::move(entries));
    }
  };
  snapshot_expected();  // version 0
  std::mt19937 rng(6161);
  for (int step = 0; step < kSteps; ++step) {
    if (step % 2 == 0) {
      Dataset batch = GenerateSynthetic(Distribution::kAnticorrelated, 40, 3,
                                        2000 + static_cast<uint64_t>(step));
      for (size_t i = 0; i < batch.count(); ++i) {
        model.emplace_back(batch.Row(i), batch.Row(i) + 3);
      }
      insert_batches.push_back(std::move(batch));
    } else {
      std::vector<PointId> drop;
      for (int k = 0; k < 60; ++k) {
        drop.push_back(static_cast<PointId>(rng() % model.size()));
      }
      std::sort(drop.begin(), drop.end());
      drop.erase(std::unique(drop.begin(), drop.end()), drop.end());
      for (auto it = drop.rbegin(); it != drop.rend(); ++it) {
        model.erase(model.begin() + *it);
      }
      delete_batches.push_back(std::move(drop));
    }
    snapshot_expected();
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    size_t ins = 0, del = 0;
    for (int step = 0; step < kSteps; ++step) {
      if (step % 2 == 0) {
        engine.InsertPoints("ds", insert_batches[ins++]);
      } else {
        engine.DeletePoints("ds", delete_batches[del++]);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    stop.store(true, std::memory_order_release);
  });

  constexpr int kClients = 8;
  ThreadPool clients(kClients);
  clients.RunOnAll([&](int worker) {
    Options opts;
    opts.threads = 2;  // per-query cap on the shared executor
    std::mt19937 pick(static_cast<uint32_t>(worker) * 41 + 3);
    int round = 0;
    do {
      const uint32_t roll = pick() % 10;
      const size_t s = roll < 6 ? 0 : (roll < 8 ? 1 : 2);
      const QueryResult r = engine.Execute("ds", specs[s], opts);
      std::vector<std::pair<PointId, uint32_t>> got;
      for (size_t i = 0; i < r.ids.size(); ++i) {
        got.emplace_back(r.ids[i], r.dominator_counts[i]);
      }
      std::sort(got.begin(), got.end());
      bool matched = false;
      for (const auto& version : expected[s]) {
        if (got == version) {
          matched = true;
          break;
        }
      }
      if (!matched) torn.fetch_add(1, std::memory_order_relaxed);
      ++round;
    } while (!stop.load(std::memory_order_acquire) || round < 20);
  });
  writer.join();
  EXPECT_EQ(torn.load(), 0);

  // Settled state: the final version must now be served exactly.
  const QueryResult final_r = engine.Execute("ds", specs[0]);
  std::vector<std::pair<PointId, uint32_t>> final_got;
  for (size_t i = 0; i < final_r.ids.size(); ++i) {
    final_got.emplace_back(final_r.ids[i], final_r.dominator_counts[i]);
  }
  std::sort(final_got.begin(), final_got.end());
  EXPECT_EQ(final_got, expected[0].back());
  EXPECT_EQ(engine.MinorVersion("ds"), static_cast<uint64_t>(kSteps));

  // The whole run shared the engine's one scheduler: work actually
  // flowed through it and it is quiescent again.
  const auto counters = engine.executor().Counters();
  EXPECT_EQ(counters.queue_depth, 0u);
}

}  // namespace
}  // namespace sky::test
