// Copyright (c) SkyBench-NG contributors.
// Differential accounting tests for RunStats::dominance_tests: the SIMD
// toggle changes only the kernel flavour, never the control flow, so
// scalar and AVX2 runs of the same algorithm must report bit-identical
// dominance-test counts — at the tile-kernel level (DomCtx::
// DominatedByAny / FilterTile), at the algorithm level (Q-Flow, Hybrid)
// and through the sharded engine (per-shard runs plus the M(S) merge).
// The batch toggle is different: the tile kernels count per-lane tests
// and walk the window in cache-blocked order, so batch-on and batch-off
// counts legitimately differ; those runs are only checked for verdict
// agreement, not count equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/skyline.h"
#include "data/generator.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"
#include "query/engine.h"

namespace sky {
namespace {

std::vector<PointId> Sorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(DominanceAccountingTest, TileKernelsCountIdenticallyAcrossFlavours) {
  const int d = 6;
  const size_t n = 600;
  const size_t window = 64;
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, n, d, /*seed=*/17);
  TileBlock tiles(d, window);
  tiles.AppendRows(data.Row(0), data.stride(), window);

  const DomCtx scalar(d, data.stride(), /*use_simd=*/false);
  const DomCtx simd(d, data.stride(), /*use_simd=*/true);

  // One-vs-window: identical verdict and identical per-call test count
  // for every candidate, whichever kernel executes the lanes.
  for (size_t i = window; i < n; ++i) {
    uint64_t dts_scalar = 0, dts_simd = 0;
    const bool v_scalar =
        scalar.DominatedByAny(data.Row(i), tiles, window, &dts_scalar);
    const bool v_simd =
        simd.DominatedByAny(data.Row(i), tiles, window, &dts_simd);
    EXPECT_EQ(v_scalar, v_simd) << "candidate " << i;
    EXPECT_EQ(dts_scalar, dts_simd) << "candidate " << i;
  }

  // Many-vs-window: identical flags, flag count and test count.
  const size_t n_cand = n - window;
  std::vector<uint8_t> flags_scalar(n_cand, 0), flags_simd(n_cand, 0);
  uint64_t dts_scalar = 0, dts_simd = 0;
  const size_t dropped_scalar = scalar.FilterTile(
      data.Row(window), n_cand, tiles, flags_scalar.data(), &dts_scalar);
  const size_t dropped_simd = simd.FilterTile(
      data.Row(window), n_cand, tiles, flags_simd.data(), &dts_simd);
  EXPECT_EQ(dropped_scalar, dropped_simd);
  EXPECT_EQ(flags_scalar, flags_simd);
  EXPECT_EQ(dts_scalar, dts_simd);
  EXPECT_GT(dts_scalar, 0u);
}

TEST(DominanceAccountingTest, AlgorithmsCountIdenticallyAcrossSimdToggle) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kAnticorrelated}) {
    const Dataset data = GenerateSynthetic(dist, 4000, 6, /*seed=*/29);
    for (const Algorithm algo : {Algorithm::kQFlow, Algorithm::kHybrid}) {
      for (const bool use_batch : {true, false}) {
        Options opts;
        opts.algorithm = algo;
        opts.threads = 1;
        opts.count_dts = true;
        opts.use_batch = use_batch;

        opts.use_simd = false;
        const Result scalar = ComputeSkyline(data, opts);
        opts.use_simd = true;
        const Result simd = ComputeSkyline(data, opts);

        EXPECT_EQ(Sorted(scalar.skyline), Sorted(simd.skyline))
            << AlgorithmName(algo) << " batch=" << use_batch;
        EXPECT_EQ(scalar.stats.dominance_tests, simd.stats.dominance_tests)
            << AlgorithmName(algo) << " batch=" << use_batch;
        EXPECT_GT(scalar.stats.dominance_tests, 0u);
      }
    }
  }
}

TEST(DominanceAccountingTest, BatchToggleAgreesOnVerdictsNotCounts) {
  // Ablation sanity for the audited divergence: the batched tile scans
  // count per-lane tests in cache-blocked order, the one-vs-one paths
  // count early-outed scalar probes, so the totals differ by design —
  // but the skyline must not.
  const Dataset data =
      GenerateSynthetic(Distribution::kAnticorrelated, 3000, 5, /*seed=*/31);
  Options opts;
  opts.algorithm = Algorithm::kHybrid;
  opts.threads = 1;
  opts.count_dts = true;
  opts.use_batch = true;
  const Result batched = ComputeSkyline(data, opts);
  opts.use_batch = false;
  const Result unbatched = ComputeSkyline(data, opts);
  EXPECT_EQ(Sorted(batched.skyline), Sorted(unbatched.skyline));
  EXPECT_GT(batched.stats.dominance_tests, 0u);
  EXPECT_GT(unbatched.stats.dominance_tests, 0u);
}

TEST(DominanceAccountingTest, ShardedEngineCountsIdenticallyAcrossSimd) {
  // End-to-end through the serving layer: per-shard skylines plus the
  // union-then-filter merge, all with counting on. Fresh engines per
  // flavour keep the result cache out of the comparison.
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 3000, 4, /*seed=*/41);
  const auto run = [&](bool use_simd) {
    SkylineEngine::Config config;
    config.shards = 4;
    config.shard_policy = ShardPolicy::kMedianPivot;
    SkylineEngine engine(config);
    engine.RegisterDataset("pts", data.Clone());
    QuerySpec spec;
    spec.Constrain(0, 0.0f, 0.6f);
    Options opts;
    opts.threads = 1;
    opts.count_dts = true;
    opts.use_simd = use_simd;
    return engine.Execute("pts", spec, opts);
  };
  const QueryResult scalar = run(false);
  const QueryResult simd = run(true);
  EXPECT_EQ(Sorted(scalar.ids), Sorted(simd.ids));
  EXPECT_EQ(scalar.stats.dominance_tests, simd.stats.dominance_tests);
  EXPECT_GT(scalar.stats.dominance_tests, 0u);
}

}  // namespace
}  // namespace sky
