// Copyright (c) SkyBench-NG contributors.
#include "parallel/parallel_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/random.h"

namespace sky {
namespace {

class ParallelSortTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(ParallelSortTest, MatchesStdSort) {
  const int threads = std::get<0>(GetParam());
  const size_t n = std::get<1>(GetParam());
  ThreadPool pool(threads);
  Rng rng(n * 31 + static_cast<uint64_t>(threads));
  std::vector<uint64_t> v(n);
  for (auto& x : v) x = rng.Next() % 1000;  // many duplicates
  std::vector<uint64_t> expected = v;
  std::sort(expected.begin(), expected.end());
  ParallelSortU64(v, pool);
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{100},
                                         size_t{1} << 14,
                                         (size_t{1} << 16) + 17)));

TEST(ParallelSort, CustomComparator) {
  ThreadPool pool(4);
  std::vector<int> v((1 << 15) + 3);
  Rng rng(5);
  for (auto& x : v) x = static_cast<int>(rng.NextBounded(1 << 20));
  std::vector<int> expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<int>());
  ParallelSort(v, pool, std::greater<int>());
  EXPECT_EQ(v, expected);
}

TEST(ParallelSort, AlreadySortedAndReversed) {
  ThreadPool pool(3);
  std::vector<uint64_t> v(1 << 15);
  for (size_t i = 0; i < v.size(); ++i) v[i] = i;
  ParallelSortU64(v, pool);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  for (size_t i = 0; i < v.size(); ++i) v[i] = v.size() - i;
  ParallelSortU64(v, pool);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
}  // namespace sky
