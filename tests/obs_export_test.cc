// Copyright (c) SkyBench-NG contributors.
// Exposition tests (obs/export.h): every Prometheus line must parse as a
// comment or a `name{labels} value` sample, histogram families must
// expand into cumulative le-buckets capped by +Inf with _sum/_count,
// label values must be escaped, and the JSON document must be balanced
// and carry the schema marker, quantiles and bucket tables.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sky::obs {
namespace {

/// Registry with one of everything: plain counter, labeled counter
/// family, gauge, small-bounds histogram, and a label value exercising
/// the escaper.
void Populate(MetricsRegistry& reg) {
  reg.GetCounter("sky_requests_total", {}, "Total requests served")
      ->Add(1234);
  reg.GetCounter("sky_rpc_total", {{"method", "query"}}, "RPCs by method")
      ->Add(7);
  reg.GetCounter("sky_rpc_total", {{"method", "insert"}}, "RPCs by method")
      ->Add(3);
  reg.GetCounter("sky_odd_total", {{"note", "a\"b\\c\nd"}})->Add(1);
  reg.GetGauge("sky_cache_entries", {}, "Live cache entries")->Set(42.0);
  Histogram* h = reg.GetHistogram("sky_lat_seconds", {}, "Query latency",
                                  {0.001, 0.01, 0.1});
  h->Observe(0.0005);
  h->Observe(0.005);
  h->Observe(0.005);
  h->Observe(0.05);
  h->Observe(5.0);  // overflow
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

bool IsMetricNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

/// Parse one sample line as `name{labels} value` / `name value`; the
/// label block may not nest and the value must parse as a double
/// consuming the whole token.
bool ParseSampleLine(const std::string& line, std::string* name,
                     double* value) {
  size_t i = 0;
  while (i < line.size() && IsMetricNameChar(line[i])) ++i;
  if (i == 0) return false;
  *name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    // Labels: k="v" pairs; quotes may contain escaped characters.
    ++i;
    bool in_string = false;
    for (; i < line.size(); ++i) {
      if (in_string) {
        if (line[i] == '\\') {
          ++i;  // skip the escaped character
        } else if (line[i] == '"') {
          in_string = false;
        }
      } else if (line[i] == '"') {
        in_string = true;
      } else if (line[i] == '}') {
        break;
      }
    }
    if (i >= line.size() || line[i] != '}') return false;
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  const std::string token = line.substr(i + 1);
  if (token.empty()) return false;
  char trailing = 0;
  return std::sscanf(token.c_str(), "%lf%c", value, &trailing) == 1;
}

TEST(PrometheusTest, EveryLineParses) {
  MetricsRegistry reg;
  Populate(reg);
  const std::string text = RenderPrometheus(reg.Snapshot());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  for (const std::string& line : Lines(text)) {
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    std::string name;
    double value = 0.0;
    EXPECT_TRUE(ParseSampleLine(line, &name, &value)) << "line: " << line;
  }
}

TEST(PrometheusTest, TypeHeaderOncePerFamilyBeforeSamples) {
  MetricsRegistry reg;
  Populate(reg);
  const std::string text = RenderPrometheus(reg.Snapshot());
  const std::vector<std::string> lines = Lines(text);
  int rpc_type_lines = 0;
  int rpc_samples_before_type = 0;
  bool rpc_type_seen = false;
  for (const std::string& line : lines) {
    if (line == "# TYPE sky_rpc_total counter") {
      ++rpc_type_lines;
      rpc_type_seen = true;
    } else if (line.rfind("sky_rpc_total{", 0) == 0 && !rpc_type_seen) {
      ++rpc_samples_before_type;
    }
  }
  EXPECT_EQ(rpc_type_lines, 1);  // one header for the two-series family
  EXPECT_EQ(rpc_samples_before_type, 0);
  EXPECT_NE(text.find("# HELP sky_requests_total Total requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sky_lat_seconds histogram\n"),
            std::string::npos);
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry reg;
  Populate(reg);
  const std::string text = RenderPrometheus(reg.Snapshot());
  std::vector<double> bucket_counts;
  double count = -1.0, sum = -1.0, inf = -1.0;
  for (const std::string& line : Lines(text)) {
    std::string name;
    double value = 0.0;
    if (line.empty() || line[0] == '#' ||
        !ParseSampleLine(line, &name, &value)) {
      continue;
    }
    if (name == "sky_lat_seconds_bucket") {
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf = value;
      } else {
        bucket_counts.push_back(value);
      }
    } else if (name == "sky_lat_seconds_count") {
      count = value;
    } else if (name == "sky_lat_seconds_sum") {
      sum = value;
    }
  }
  ASSERT_EQ(bucket_counts.size(), 3u);  // one series per finite bound
  EXPECT_EQ(bucket_counts[0], 1.0);     // <= 0.001
  EXPECT_EQ(bucket_counts[1], 3.0);     // <= 0.01 (cumulative)
  EXPECT_EQ(bucket_counts[2], 4.0);     // <= 0.1
  EXPECT_EQ(inf, 5.0);                  // +Inf == _count
  EXPECT_EQ(count, 5.0);
  EXPECT_NEAR(sum, 5.0605, 1e-9);
  for (size_t i = 1; i < bucket_counts.size(); ++i) {
    EXPECT_GE(bucket_counts[i], bucket_counts[i - 1]);
  }
}

TEST(PrometheusTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  Populate(reg);
  const std::string text = RenderPrometheus(reg.Snapshot());
  EXPECT_NE(text.find("sky_odd_total{note=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

/// Minimal well-formedness walk: braces/brackets balance outside string
/// literals and the depth never goes negative.
bool JsonBalanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(JsonTest, DocumentIsBalancedAndCarriesSchema) {
  MetricsRegistry reg;
  Populate(reg);
  const std::string json = RenderJson(reg.Snapshot());
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"schema\": \"skybench-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sky_requests_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"value\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"labels\": {\"method\": \"query\"}"),
            std::string::npos);
  // Histograms carry count/sum, precomputed quantiles and the cumulative
  // bucket table capped by +Inf (present here: one observation overflowed).
  EXPECT_NE(json.find("\"count\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 5}"),
            std::string::npos);
  // The escaper covers JSON specials in label values.
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(JsonTest, EmptySnapshotIsStillValid) {
  MetricsRegistry reg;
  const std::string json = RenderJson(reg.Snapshot());
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("skybench-metrics-v1"), std::string::npos);
}

TEST(WriteTextFileTest, RoundTripsAndReportsFailure) {
  const std::string path =
      ::testing::TempDir() + "/obs_export_test_snapshot.txt";
  const std::string content = "hello metrics\n";
  ASSERT_TRUE(WriteTextFile(path, content));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), content);
  EXPECT_FALSE(WriteTextFile("/no/such/dir/snapshot.txt", content));
}

}  // namespace
}  // namespace sky::obs
