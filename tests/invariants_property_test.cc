// Copyright (c) SkyBench-NG contributors.
// Definition-level invariants, checked without reference to any other
// algorithm: (1) minimality — no reported point is dominated by another
// reported point; (2) completeness — every unreported point is dominated
// by some reported point; (3) closure under duplication — if a point is
// reported, every coincident copy is reported.
#include <gtest/gtest.h>

#include <set>

#include "core/skyline.h"
#include "data/generator.h"
#include "dominance/dominance.h"
#include "test_util.h"

namespace sky {
namespace {

void CheckInvariants(const Dataset& data, const std::vector<PointId>& sky,
                     const char* label) {
  const std::set<PointId> members(sky.begin(), sky.end());
  ASSERT_EQ(members.size(), sky.size()) << label << ": duplicate ids";
  DomCtx dom(data.dims(), data.stride(), true);

  // (1) minimality.
  for (size_t i = 0; i < sky.size(); ++i) {
    for (size_t j = 0; j < sky.size(); ++j) {
      if (i == j) continue;
      ASSERT_FALSE(dom.Dominates(data.Row(sky[j]), data.Row(sky[i])))
          << label << ": member " << sky[i] << " dominated by member "
          << sky[j];
    }
  }
  // (2) completeness + (3) duplicate closure.
  for (size_t q = 0; q < data.count(); ++q) {
    if (members.count(static_cast<PointId>(q))) continue;
    bool dominated = false;
    bool has_equal_member = false;
    for (const PointId m : sky) {
      dominated |= dom.Dominates(data.Row(m), data.Row(q));
      has_equal_member |= dom.Equal(data.Row(m), data.Row(q));
      if (dominated) break;
    }
    ASSERT_TRUE(dominated)
        << label << ": point " << q << " unreported but not dominated"
        << (has_equal_member ? " (coincident with a member!)" : "");
  }
}

class InvariantsPerAlgorithm : public ::testing::TestWithParam<Algorithm> {};

TEST_P(InvariantsPerAlgorithm, HoldOnMixedWorkloads) {
  struct Load {
    Distribution dist;
    size_t n;
    int d;
  };
  const Load loads[] = {
      {Distribution::kCorrelated, 1200, 6},
      {Distribution::kIndependent, 1200, 6},
      {Distribution::kAnticorrelated, 800, 6},
  };
  for (const Load& load : loads) {
    Dataset data = GenerateSynthetic(load.dist, load.n, load.d, 303);
    Options o;
    o.algorithm = GetParam();
    o.threads = 2;
    Result r = ComputeSkyline(data, o);
    CheckInvariants(data, r.skyline, AlgorithmName(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, InvariantsPerAlgorithm,
    ::testing::Values(Algorithm::kBnl, Algorithm::kSfs, Algorithm::kSalsa,
                      Algorithm::kLess,
                      Algorithm::kSSkyline, Algorithm::kPSkyline,
                      Algorithm::kAPSkyline,
                      Algorithm::kPsfs, Algorithm::kQFlow, Algorithm::kHybrid,
                      Algorithm::kBSkyTree, Algorithm::kBSkyTreeS,
                      Algorithm::kOsp, Algorithm::kPBSkyTree),
    [](const auto& info) {
      std::string name = AlgorithmName(info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

TEST(Invariants, DuplicateClosureExplicit) {
  // Three copies of the same skyline point; all must be reported by every
  // algorithm (coincident points never dominate each other).
  Dataset data = test::MakeDataset(
      {{5, 5}, {1, 1}, {1, 1}, {1, 1}, {0.5, 3}, {3, 0.5}});
  for (const Algorithm algo :
       {Algorithm::kQFlow, Algorithm::kHybrid, Algorithm::kPSkyline,
        Algorithm::kBSkyTree, Algorithm::kPBSkyTree}) {
    Options o;
    o.algorithm = algo;
    o.threads = 2;
    Result r = ComputeSkyline(data, o);
    EXPECT_EQ(test::Sorted(r.skyline),
              (std::vector<PointId>{1, 2, 3, 4, 5}))
        << AlgorithmName(algo);
  }
}

}  // namespace
}  // namespace sky
