// Copyright (c) SkyBench-NG contributors.
#include "core/options.h"

#include <gtest/gtest.h>

namespace sky {
namespace {

TEST(Options, AlgorithmNamesRoundTrip) {
  for (const Algorithm a :
       {Algorithm::kBnl, Algorithm::kSfs, Algorithm::kLess, Algorithm::kSalsa,
        Algorithm::kSSkyline, Algorithm::kPSkyline, Algorithm::kAPSkyline,
        Algorithm::kPsfs,
        Algorithm::kQFlow, Algorithm::kHybrid, Algorithm::kBSkyTree,
        Algorithm::kBSkyTreeS, Algorithm::kOsp, Algorithm::kPBSkyTree}) {
    EXPECT_EQ(ParseAlgorithm(AlgorithmName(a)), a);
  }
  EXPECT_THROW(ParseAlgorithm("quantum"), std::invalid_argument);
}

TEST(Options, LowercaseAliases) {
  EXPECT_EQ(ParseAlgorithm("hybrid"), Algorithm::kHybrid);
  EXPECT_EQ(ParseAlgorithm("qflow"), Algorithm::kQFlow);
  EXPECT_EQ(ParseAlgorithm("pskyline"), Algorithm::kPSkyline);
}

TEST(Options, AlphaDefaultsFollowPaper) {
  Options o;
  EXPECT_EQ(o.AlphaFor(Algorithm::kQFlow), size_t{1} << 13);   // Fig. 7
  EXPECT_EQ(o.AlphaFor(Algorithm::kHybrid), size_t{1} << 10);  // Fig. 8
  o.alpha = 99;
  EXPECT_EQ(o.AlphaFor(Algorithm::kQFlow), 99u);
  EXPECT_EQ(o.AlphaFor(Algorithm::kHybrid), 99u);
}

TEST(Options, ResolvedThreads) {
  Options o;
  o.threads = 5;
  EXPECT_EQ(o.ResolvedThreads(), 5);
  o.threads = 0;
  EXPECT_GE(o.ResolvedThreads(), 1);
}

TEST(Options, ParallelClassification) {
  EXPECT_TRUE(IsParallelAlgorithm(Algorithm::kHybrid));
  EXPECT_TRUE(IsParallelAlgorithm(Algorithm::kPBSkyTree));
  EXPECT_FALSE(IsParallelAlgorithm(Algorithm::kBnl));
  EXPECT_FALSE(IsParallelAlgorithm(Algorithm::kBSkyTree));
}

TEST(RunStats, ToStringMentionsKeyFields) {
  RunStats st;
  st.total_seconds = 1.5;
  st.skyline_size = 42;
  const std::string s = st.ToString();
  EXPECT_NE(s.find("total=1.5"), std::string::npos);
  EXPECT_NE(s.find("|sky|=42"), std::string::npos);
}

}  // namespace
}  // namespace sky
