// Copyright (c) SkyBench-NG contributors.
#include "core/options.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"

namespace sky {
namespace {

TEST(Options, AlgorithmNamesRoundTrip) {
  for (const Algorithm a :
       {Algorithm::kBnl, Algorithm::kSfs, Algorithm::kLess, Algorithm::kSalsa,
        Algorithm::kSSkyline, Algorithm::kPSkyline, Algorithm::kAPSkyline,
        Algorithm::kPsfs,
        Algorithm::kQFlow, Algorithm::kHybrid, Algorithm::kBSkyTree,
        Algorithm::kBSkyTreeS, Algorithm::kOsp, Algorithm::kPBSkyTree,
        Algorithm::kZonemap}) {
    EXPECT_EQ(ParseAlgorithm(AlgorithmName(a)), a);
  }
  EXPECT_THROW(ParseAlgorithm("quantum"), std::invalid_argument);
}

TEST(Options, LowercaseAliases) {
  EXPECT_EQ(ParseAlgorithm("hybrid"), Algorithm::kHybrid);
  EXPECT_EQ(ParseAlgorithm("qflow"), Algorithm::kQFlow);
  EXPECT_EQ(ParseAlgorithm("pskyline"), Algorithm::kPSkyline);
  EXPECT_EQ(ParseAlgorithm("bskytree-s"), Algorithm::kBSkyTreeS);
  EXPECT_EQ(ParseAlgorithm("bskytrees"), Algorithm::kBSkyTreeS);
  EXPECT_EQ(ParseAlgorithm("Q-Flow"), Algorithm::kQFlow);
}

TEST(Options, AutoParsesAndRoundTrips) {
  EXPECT_EQ(ParseAlgorithm("auto"), Algorithm::kAuto);
  EXPECT_EQ(ParseAlgorithm("AUTO"), Algorithm::kAuto);
  EXPECT_STREQ(AlgorithmName(Algorithm::kAuto), "auto");
  EXPECT_TRUE(IsParallelAlgorithm(Algorithm::kAuto));  // may resolve so
  // AlphaFor is well-defined even pre-resolution (Fig. 7 default).
  Options o;
  EXPECT_EQ(o.AlphaFor(Algorithm::kAuto), size_t{1} << 13);
}

TEST(Options, ParseErrorListsEveryValidName) {
  // The satellite requirement: a typo's diagnostic must enumerate the
  // full valid vocabulary, auto included, so the CLI can surface it.
  try {
    ParseAlgorithm("quantum");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quantum"), std::string::npos) << msg;
    for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
      EXPECT_NE(msg.find(desc.parse_name), std::string::npos)
          << msg << " missing " << desc.parse_name;
    }
    EXPECT_NE(msg.find("auto"), std::string::npos) << msg;
  }
}

TEST(AlgorithmRegistry, CoversEveryAlgorithmExactlyOnce) {
  ASSERT_EQ(AlgorithmTable().size(), 15u);
  for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
    // Each row is self-consistent and reachable through the lookup.
    EXPECT_EQ(&GetAlgorithmDescriptor(desc.algorithm), &desc);
    EXPECT_NE(desc.compute, nullptr);
    EXPECT_STREQ(AlgorithmName(desc.algorithm), desc.name);
    EXPECT_EQ(ParseAlgorithm(desc.parse_name), desc.algorithm);
    EXPECT_EQ(ParseAlgorithm(desc.name), desc.algorithm);
    EXPECT_EQ(IsParallelAlgorithm(desc.algorithm), desc.parallel);
  }
  EXPECT_THROW(GetAlgorithmDescriptor(Algorithm::kAuto),
               std::invalid_argument);
}

TEST(AlgorithmRegistry, AutoCandidatesMatchThePaperNarrative) {
  // Fig. 5/6: sequential BSkyTree, mid-range PSkyline, Q-Flow/Hybrid at
  // scale — exactly the candidate set the cost model selects from.
  std::vector<Algorithm> candidates;
  for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
    if (desc.auto_candidate) candidates.push_back(desc.algorithm);
  }
  EXPECT_EQ(candidates,
            (std::vector<Algorithm>{Algorithm::kPSkyline, Algorithm::kQFlow,
                                    Algorithm::kHybrid, Algorithm::kBSkyTree,
                                    Algorithm::kZonemap}));
}

TEST(Options, AlphaDefaultsFollowPaper) {
  Options o;
  EXPECT_EQ(o.AlphaFor(Algorithm::kQFlow), size_t{1} << 13);   // Fig. 7
  EXPECT_EQ(o.AlphaFor(Algorithm::kHybrid), size_t{1} << 10);  // Fig. 8
  o.alpha = 99;
  EXPECT_EQ(o.AlphaFor(Algorithm::kQFlow), 99u);
  EXPECT_EQ(o.AlphaFor(Algorithm::kHybrid), 99u);
}

TEST(Options, ResolvedThreads) {
  Options o;
  o.threads = 5;
  EXPECT_EQ(o.ResolvedThreads(), 5);
  o.threads = 0;
  EXPECT_GE(o.ResolvedThreads(), 1);
}

TEST(Options, ParallelClassification) {
  EXPECT_TRUE(IsParallelAlgorithm(Algorithm::kHybrid));
  EXPECT_TRUE(IsParallelAlgorithm(Algorithm::kPBSkyTree));
  EXPECT_FALSE(IsParallelAlgorithm(Algorithm::kBnl));
  EXPECT_FALSE(IsParallelAlgorithm(Algorithm::kBSkyTree));
}

TEST(RunStats, ToStringMentionsKeyFields) {
  RunStats st;
  st.total_seconds = 1.5;
  st.skyline_size = 42;
  const std::string s = st.ToString();
  EXPECT_NE(s.find("total=1.5"), std::string::npos);
  EXPECT_NE(s.find("|sky|=42"), std::string::npos);
}

}  // namespace
}  // namespace sky
