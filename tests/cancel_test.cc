// Copyright (c) SkyBench-NG contributors.
// Unit tests for the cooperative-cancellation primitive
// (common/cancel.h): arm-once latching, first-reason-wins, deadline
// expiry, parent chaining, and the null-tolerant checkpoint helpers.
#include <chrono>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "gtest/gtest.h"
#include "parallel/thread_pool.h"

namespace sky {
namespace {

TEST(CancelTokenTest, DefaultTokenNeverStops) {
  CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_EQ(token.reason(), Status::kOk);
  EXPECT_NO_THROW(token.CheckIn());
}

TEST(CancelTokenTest, CancelLatchesAndCheckInThrows) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.reason(), Status::kCancelled);
  try {
    token.CheckIn();
    FAIL() << "CheckIn() on a cancelled token must throw";
  } catch (const CancelledError& err) {
    EXPECT_EQ(err.reason(), Status::kCancelled);
  }
}

TEST(CancelTokenTest, FirstReasonWins) {
  CancelToken token;
  token.Cancel(Status::kDeadlineExceeded);
  token.Cancel(Status::kCancelled);  // later reason must not overwrite
  EXPECT_EQ(token.reason(), Status::kDeadlineExceeded);
}

TEST(CancelTokenTest, NonPositiveDeadlineArmsNothing) {
  CancelToken zero(0.0);
  CancelToken negative(-5.0);
  EXPECT_FALSE(zero.ShouldStop());
  EXPECT_FALSE(negative.ShouldStop());
}

TEST(CancelTokenTest, DeadlineExpiryLatchesDeadlineExceeded) {
  CancelToken token(1.0);  // 1 ms
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.reason(), Status::kDeadlineExceeded);
  // Latched: still stopped on every later poll.
  EXPECT_TRUE(token.ShouldStop());
}

TEST(CancelTokenTest, GenerousDeadlineDoesNotStop) {
  CancelToken token(60'000.0);
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_NO_THROW(token.CheckIn());
}

TEST(CancelTokenTest, ParentStopPropagatesToChild) {
  CancelToken parent;
  CancelToken child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.ShouldStop());
  parent.Cancel(Status::kCancelled);
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_EQ(child.reason(), Status::kCancelled);
}

TEST(CancelTokenTest, ParentDeadlineReasonSurvivesChildChain) {
  CancelToken parent(1.0);
  CancelToken child(60'000.0);
  child.set_parent(&parent);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_EQ(child.reason(), Status::kDeadlineExceeded);
}

TEST(CancelTokenTest, ConcurrentCancelsAgreeOnOneReason) {
  // Many threads race Cancel() with distinct reasons; every observer must
  // see a single coherent winner (no torn reason, no kOk after stop).
  for (int round = 0; round < 20; ++round) {
    CancelToken token;
    ThreadPool pool(4);
    pool.RunOnAll([&](int worker) {
      token.Cancel(worker % 2 == 0 ? Status::kCancelled
                                   : Status::kDeadlineExceeded);
    });
    EXPECT_TRUE(token.ShouldStop());
    const Status r = token.reason();
    EXPECT_TRUE(r == Status::kCancelled || r == Status::kDeadlineExceeded);
  }
}

TEST(CancelTokenTest, NullTolerantHelpers) {
  EXPECT_FALSE(ShouldStop(nullptr));
  EXPECT_NO_THROW(CheckCancel(nullptr));
  CancelToken token;
  EXPECT_FALSE(ShouldStop(&token));
  token.Cancel();
  EXPECT_TRUE(ShouldStop(&token));
  EXPECT_THROW(CheckCancel(&token), CancelledError);
}

TEST(CancelTokenTest, StatusNamesAreStableSpellings) {
  // The CLI prints these and the trace attaches them; spelling is API.
  EXPECT_STREQ(StatusName(Status::kOk), "ok");
  EXPECT_STREQ(StatusName(Status::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(StatusName(Status::kCancelled), "cancelled");
  EXPECT_STREQ(StatusName(Status::kOverloaded), "overloaded");
  EXPECT_STREQ(StatusName(Status::kInternalError), "internal_error");
}

}  // namespace
}  // namespace sky
