// Copyright (c) SkyBench-NG contributors.
#include "core/hybrid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/qflow.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

Options HybridOpts(int threads, size_t alpha = 0,
                   PivotPolicy pivot = PivotPolicy::kMedian, int beta = 8) {
  Options o;
  o.algorithm = Algorithm::kHybrid;
  o.threads = threads;
  o.alpha = alpha;
  o.pivot = pivot;
  o.prefilter_beta = beta;
  return o;
}

class HybridAgainstOracle
    : public ::testing::TestWithParam<std::tuple<Distribution, int, int>> {};

TEST_P(HybridAgainstOracle, MatchesReference) {
  const auto [dist, d, threads] = GetParam();
  Dataset data = GenerateSynthetic(dist, 4000, d, 47);
  Result r = HybridCompute(data, HybridOpts(threads));
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HybridAgainstOracle,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(1, 2, 6, 12, 16),
                       ::testing::Values(1, 4)));

class HybridPivots : public ::testing::TestWithParam<PivotPolicy> {};

TEST_P(HybridPivots, EveryPivotPolicyIsCorrect) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 2500, 6, 53);
  Result r = HybridCompute(data, HybridOpts(3, 0, GetParam()));
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

INSTANTIATE_TEST_SUITE_P(All, HybridPivots,
                         ::testing::Values(PivotPolicy::kMedian,
                                           PivotPolicy::kBalanced,
                                           PivotPolicy::kManhattan,
                                           PivotPolicy::kVolume,
                                           PivotPolicy::kRandom));

class HybridAlphaEdge : public ::testing::TestWithParam<size_t> {};

TEST_P(HybridAlphaEdge, AnyBlockSizeIsCorrect) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 999, 5, 59);
  Result r = HybridCompute(data, HybridOpts(4, GetParam()));
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

INSTANTIATE_TEST_SUITE_P(Alphas, HybridAlphaEdge,
                         ::testing::Values(1, 2, 17, 128, 100000));

TEST(Hybrid, PrefilterDisabledStillCorrect) {
  Dataset data = GenerateSynthetic(Distribution::kCorrelated, 3000, 8, 61);
  Result r = HybridCompute(data, HybridOpts(2, 0, PivotPolicy::kMedian, 0));
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

TEST(Hybrid, DuplicateHeavyInput) {
  // Real-data regime (paper Table II): no distinct value condition.
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 3000, 4, 67);
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < data.dims(); ++j) {
      data.MutableRow(i)[j] =
          std::floor(data.Row(i)[j] * 4.0f) / 4.0f;  // only 5 values/dim
    }
  }
  Result r = HybridCompute(data, HybridOpts(4));
  EXPECT_EQ(test::Sorted(r.skyline),
            test::Sorted(test::ReferenceSkyline(data)));
}

TEST(Hybrid, AllPointsIdentical) {
  std::vector<float> flat;
  for (int i = 0; i < 500; ++i) {
    flat.push_back(3.0f);
    flat.push_back(4.0f);
    flat.push_back(5.0f);
  }
  Dataset data = Dataset::FromRowMajor(3, flat);
  Result r = HybridCompute(data, HybridOpts(4, 64));
  EXPECT_EQ(r.skyline.size(), 500u);  // nobody dominates anybody
}

TEST(Hybrid, ProgressiveCallbackCoversExactlyTheSkyline) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 2000, 5, 71);
  Options o = HybridOpts(4, 128);
  std::vector<PointId> streamed;
  o.progressive = [&](std::span<const PointId> chunk) {
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  };
  Result r = HybridCompute(data, o);
  EXPECT_EQ(test::Sorted(streamed), test::Sorted(r.skyline));
}

TEST(Hybrid, MaskSkipsReported) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 5000, 8, 73);
  Options o = HybridOpts(2);
  o.count_dts = true;
  Result r = HybridCompute(data, o);
  EXPECT_GT(r.stats.mask_filter_hits, 0u)
      << "region-wise incomparability should skip dominance tests";
  EXPECT_GT(r.stats.dominance_tests, 0u);
}

TEST(Hybrid, FarFewerDtsThanQFlow) {
  // The paper's core claim for the data structure (§VI-E): Hybrid
  // substantially reduces dominance tests versus Q-Flow.
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 8000, 8, 79);
  Options hy = HybridOpts(1);
  hy.count_dts = true;
  Options qf;
  qf.algorithm = Algorithm::kQFlow;
  qf.threads = 1;
  qf.count_dts = true;
  const uint64_t hybrid_dts = HybridCompute(data, hy).stats.dominance_tests;
  Result qr = QFlowCompute(data, qf);
  EXPECT_LT(hybrid_dts, qr.stats.dominance_tests / 2);
}

TEST(Hybrid, StatsPhaseDecompositionSumsBelowTotal) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 4000, 6, 83);
  Result r = HybridCompute(data, HybridOpts(2));
  const RunStats& st = r.stats;
  EXPECT_LE(st.init_seconds + st.prefilter_seconds + st.pivot_seconds +
                st.phase1_seconds + st.phase2_seconds + st.compress_seconds,
            st.total_seconds + 1e-6);
}

}  // namespace
}  // namespace sky
