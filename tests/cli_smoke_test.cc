// Copyright (c) SkyBench-NG contributors.
// End-to-end smoke test: shells out to the built `skybench` CLI binary
// and checks exit codes plus the shape of its stdout. The binary path is
// injected by CMake as SKYBENCH_CLI_PATH.
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

#ifndef SKYBENCH_CLI_PATH
#error "SKYBENCH_CLI_PATH must be defined by the build system"
#endif

namespace sky::test {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string out;
};

CliResult RunCli(const std::string& args) {
  // Fold stderr into the captured stream so Usage() text is observable.
  const std::string cmd = std::string(SKYBENCH_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  CliResult r;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) r.out += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(CliSmokeTest, TinyGeneratedRunVerifies) {
  const CliResult r =
      RunCli("--algo=hybrid --dist=indep --n=500 --d=4 --seed=7 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("dataset: n=500 d=4"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Hybrid"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("|sky|="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;
}

TEST(CliSmokeTest, SequentialBaselineAgreesWithQflow) {
  const CliResult a =
      RunCli("--algo=sfs --dist=anti --n=300 --d=5 --seed=11 --verify");
  const CliResult b =
      RunCli("--algo=qflow --dist=anti --n=300 --d=5 --seed=11 --verify");
  EXPECT_EQ(a.exit_code, 0) << a.out;
  EXPECT_EQ(b.exit_code, 0) << b.out;
  // Same seed, same workload: both must report the same skyline size.
  const auto size_of = [](const std::string& out) {
    const size_t pos = out.find("|sky|=");
    EXPECT_NE(pos, std::string::npos) << out;
    if (pos == std::string::npos) return std::string();
    const size_t end = out.find(' ', pos);
    return out.substr(pos, end - pos);
  };
  EXPECT_EQ(size_of(a.out), size_of(b.out));
}

TEST(CliSmokeTest, OutputCsvHasSkylineRows) {
  const std::string path =
      ::testing::TempDir() + "/skybench_smoke_out.csv";
  std::remove(path.c_str());
  const CliResult r = RunCli("--algo=bnl --dist=corr --n=200 --d=3 --seed=3 "
                             "--output=" + path);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "CLI did not write " << path;
  size_t rows = 0;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    // Every row must have exactly d=3 comma-separated fields.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2) << line;
    ++rows;
  }
  EXPECT_GT(rows, 0u);
  std::remove(path.c_str());
}

TEST(CliSmokeTest, HelpExitsZeroVersionReportsBuild) {
  const CliResult help = RunCli("--help");
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos) << help.out;

  const CliResult version = RunCli("--version");
  EXPECT_EQ(version.exit_code, 0);
  EXPECT_NE(version.out.find("skybench "), std::string::npos) << version.out;
  EXPECT_NE(version.out.find("AVX2 kernels"), std::string::npos) << version.out;
}

TEST(CliSmokeTest, KbandFlagServesSkybandAndVerifies) {
  const CliResult r =
      RunCli("--dist=indep --n=400 --d=4 --seed=9 --kband=3 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("|result|="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;

  // The 3-skyband contains the skyline, so it can only be larger.
  const auto count_of = [](const std::string& out, const char* tag) {
    const size_t pos = out.find(tag);
    EXPECT_NE(pos, std::string::npos) << out;
    return pos == std::string::npos
               ? -1L
               : std::atol(out.c_str() + pos + std::strlen(tag));
  };
  const CliResult sky =
      RunCli("--algo=bnl --dist=indep --n=400 --d=4 --seed=9");
  EXPECT_GE(count_of(r.out, "|result|="), count_of(sky.out, "|sky|="))
      << r.out << sky.out;
}

TEST(CliSmokeTest, QueryFlagsRouteThroughEngineAndVerify) {
  const CliResult r = RunCli(
      "--algo=qflow --dist=indep --n=400 --d=4 --seed=13 "
      "--minmax=min,max,min,ignore --constrain=0:0.1:0.9 --topk=5 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("|result|="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("matched="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;

  const CliResult proj = RunCli(
      "--dist=anti --n=300 --d=5 --seed=3 --project=0,2 --verify");
  EXPECT_EQ(proj.exit_code, 0) << proj.out;
  EXPECT_NE(proj.out.find("verification: OK"), std::string::npos) << proj.out;
}

TEST(CliSmokeTest, BadQuerySpecsFailCleanlyNotAbort) {
  for (const char* args :
       {"--n=50 --d=4 --minmax=bogus", "--n=50 --d=4 --minmax=min,max",
        "--n=50 --d=4 --constrain=9:0:1", "--n=50 --d=4 --constrain=0:junk:1",
        "--n=50 --d=4 --kband=0", "--n=50 --d=4 --project=7",
        "--n=50 --d=4 --kband=-1", "--n=50 --d=4 --topk=-2",
        "--n=50 --d=4 --kband=4294967297", "--n=50 --d=4 --kband=junk",
        "--n=50 --d=4 --constrain=0:0.9:0.1"}) {
    const CliResult r = RunCli(args);
    EXPECT_EQ(r.exit_code, 2) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("error:"), std::string::npos) << args << "\n"
                                                       << r.out;
  }
}

TEST(CliSmokeTest, BadFlagExitsWithUsage) {
  const CliResult r = RunCli("--definitely-not-a-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos) << r.out;
}

TEST(CliSmokeTest, InvalidInputsFailCleanlyNotAbort) {
  // Unknown names, unreadable files and out-of-range dims must produce a
  // diagnostic and exit 2 — never std::terminate (exit 134).
  const std::string wide_csv = ::testing::TempDir() + "/skybench_wide.csv";
  {
    std::ofstream f(wide_csv);
    for (int j = 0; j < 17; ++j) f << (j ? ",1" : "1");  // d=17 > kMaxDims
    f << "\n";
  }
  const std::string wide_arg = "--input=" + wide_csv;
  for (const char* args : {"--algo=noexist --n=10", "--dist=noexist --n=10",
                           "--input=/definitely/not/here.csv",
                           "--d=99 --n=10", "--d=0 --n=10",
                           wide_arg.c_str()}) {
    const CliResult r = RunCli(args);
    EXPECT_EQ(r.exit_code, 2) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("error:"), std::string::npos) << args << "\n"
                                                       << r.out;
  }
  std::remove(wide_csv.c_str());
}

}  // namespace
}  // namespace sky::test
