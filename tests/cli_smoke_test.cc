// Copyright (c) SkyBench-NG contributors.
// End-to-end smoke test: shells out to the built `skybench` CLI binary
// and checks exit codes plus the shape of its stdout. The binary path is
// injected by CMake as SKYBENCH_CLI_PATH.
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

#ifndef SKYBENCH_CLI_PATH
#error "SKYBENCH_CLI_PATH must be defined by the build system"
#endif

namespace sky::test {
namespace {

struct CliResult {
  int exit_code = -1;
  std::string out;
};

CliResult RunCli(const std::string& args) {
  // Fold stderr into the captured stream so Usage() text is observable.
  const std::string cmd = std::string(SKYBENCH_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  CliResult r;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) r.out += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(CliSmokeTest, TinyGeneratedRunVerifies) {
  const CliResult r =
      RunCli("--algo=hybrid --dist=indep --n=500 --d=4 --seed=7 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("dataset: n=500 d=4"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Hybrid"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("|sky|="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;
}

TEST(CliSmokeTest, SequentialBaselineAgreesWithQflow) {
  const CliResult a =
      RunCli("--algo=sfs --dist=anti --n=300 --d=5 --seed=11 --verify");
  const CliResult b =
      RunCli("--algo=qflow --dist=anti --n=300 --d=5 --seed=11 --verify");
  EXPECT_EQ(a.exit_code, 0) << a.out;
  EXPECT_EQ(b.exit_code, 0) << b.out;
  // Same seed, same workload: both must report the same skyline size.
  const auto size_of = [](const std::string& out) {
    const size_t pos = out.find("|sky|=");
    EXPECT_NE(pos, std::string::npos) << out;
    if (pos == std::string::npos) return std::string();
    const size_t end = out.find(' ', pos);
    return out.substr(pos, end - pos);
  };
  EXPECT_EQ(size_of(a.out), size_of(b.out));
}

TEST(CliSmokeTest, OutputCsvHasSkylineRows) {
  const std::string path =
      ::testing::TempDir() + "/skybench_smoke_out.csv";
  std::remove(path.c_str());
  const CliResult r = RunCli("--algo=bnl --dist=corr --n=200 --d=3 --seed=3 "
                             "--output=" + path);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "CLI did not write " << path;
  size_t rows = 0;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    // Every row must have exactly d=3 comma-separated fields.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2) << line;
    ++rows;
  }
  EXPECT_GT(rows, 0u);
  std::remove(path.c_str());
}

TEST(CliSmokeTest, BinarySnapshotRoundTripsThroughFormatFlag) {
  const std::string snap = ::testing::TempDir() + "/skybench_snap.bin";
  std::remove(snap.c_str());
  // The skyline of a skyline is itself, so writing the result rows as a
  // binary snapshot and re-running on the snapshot must reproduce the
  // same |sky| — end-to-end SaveBinary -> LoadBinary.
  const CliResult save = RunCli(
      "--algo=bnl --dist=corr --n=300 --d=3 --seed=5 --output=" + snap);
  EXPECT_EQ(save.exit_code, 0) << save.out;
  EXPECT_NE(save.out.find("(bin)"), std::string::npos) << save.out;

  const auto count_of = [](const std::string& out, const char* tag) {
    const size_t pos = out.find(tag);
    EXPECT_NE(pos, std::string::npos) << out;
    return pos == std::string::npos
               ? -1L
               : std::atol(out.c_str() + pos + std::strlen(tag));
  };
  const long sky_size = count_of(save.out, "|sky|=");

  // Auto-detection goes by the magic bytes, not the extension.
  const std::string sniffed = ::testing::TempDir() + "/skybench_snap.data";
  std::rename(snap.c_str(), sniffed.c_str());
  const CliResult autodetect = RunCli("--algo=bnl --input=" + sniffed);
  EXPECT_EQ(autodetect.exit_code, 0) << autodetect.out;
  EXPECT_EQ(count_of(autodetect.out, "|sky|="), sky_size) << autodetect.out;

  const CliResult forced =
      RunCli("--algo=bnl --format=bin --input=" + sniffed);
  EXPECT_EQ(forced.exit_code, 0) << forced.out;
  EXPECT_EQ(count_of(forced.out, "|sky|="), sky_size) << forced.out;

  // A CSV forced through --format=bin fails on the magic, cleanly.
  const std::string csv = ::testing::TempDir() + "/skybench_not_bin.csv";
  {
    std::ofstream f(csv);
    f << "0.5,0.5,0.5\n";
  }
  const CliResult mismatch = RunCli("--format=bin --input=" + csv);
  EXPECT_EQ(mismatch.exit_code, 2) << mismatch.out;
  EXPECT_NE(mismatch.out.find("error:"), std::string::npos) << mismatch.out;

  const CliResult bad_format = RunCli("--format=xml --n=50 --d=3");
  EXPECT_EQ(bad_format.exit_code, 2) << bad_format.out;
  EXPECT_NE(bad_format.out.find("error:"), std::string::npos)
      << bad_format.out;

  std::remove(sniffed.c_str());
  std::remove(csv.c_str());
}

TEST(CliSmokeTest, ShardedQueryPrunesAndVerifies) {
  // Sharded serving must verify against the brute-force reference and
  // report the same |result| as the unsharded engine run.
  const CliResult sharded = RunCli(
      "--dist=indep --n=600 --d=4 --seed=7 --shards=4 "
      "--shard-policy=median --constrain=3:0.0:0.4 --verify");
  EXPECT_EQ(sharded.exit_code, 0) << sharded.out;
  EXPECT_NE(sharded.out.find("shards: policy=median"), std::string::npos)
      << sharded.out;
  EXPECT_NE(sharded.out.find("pruned="), std::string::npos) << sharded.out;
  EXPECT_NE(sharded.out.find("verification: OK"), std::string::npos)
      << sharded.out;

  const CliResult unsharded = RunCli(
      "--dist=indep --n=600 --d=4 --seed=7 --constrain=3:0.0:0.4 --verify");
  EXPECT_EQ(unsharded.exit_code, 0) << unsharded.out;
  const auto result_of = [](const std::string& out) {
    const size_t pos = out.find("|result|=");
    EXPECT_NE(pos, std::string::npos) << out;
    if (pos == std::string::npos) return std::string();
    const size_t end = out.find(' ', pos);
    return out.substr(pos, end - pos);
  };
  EXPECT_EQ(result_of(sharded.out), result_of(unsharded.out));

  const CliResult bad = RunCli("--n=50 --d=3 --shards=4 --shard-policy=nope");
  EXPECT_EQ(bad.exit_code, 2) << bad.out;
  EXPECT_NE(bad.out.find("error:"), std::string::npos) << bad.out;
}

TEST(CliSmokeTest, HelpExitsZeroVersionReportsBuild) {
  const CliResult help = RunCli("--help");
  EXPECT_EQ(help.exit_code, 0);
  EXPECT_NE(help.out.find("usage:"), std::string::npos) << help.out;

  const CliResult version = RunCli("--version");
  EXPECT_EQ(version.exit_code, 0);
  EXPECT_NE(version.out.find("skybench "), std::string::npos) << version.out;
  EXPECT_NE(version.out.find("AVX2 kernels"), std::string::npos) << version.out;
}

TEST(CliSmokeTest, KbandFlagServesSkybandAndVerifies) {
  const CliResult r =
      RunCli("--dist=indep --n=400 --d=4 --seed=9 --kband=3 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("|result|="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;

  // The 3-skyband contains the skyline, so it can only be larger.
  const auto count_of = [](const std::string& out, const char* tag) {
    const size_t pos = out.find(tag);
    EXPECT_NE(pos, std::string::npos) << out;
    return pos == std::string::npos
               ? -1L
               : std::atol(out.c_str() + pos + std::strlen(tag));
  };
  const CliResult sky =
      RunCli("--algo=bnl --dist=indep --n=400 --d=4 --seed=9");
  EXPECT_GE(count_of(r.out, "|result|="), count_of(sky.out, "|sky|="))
      << r.out << sky.out;
}

TEST(CliSmokeTest, QueryFlagsRouteThroughEngineAndVerify) {
  const CliResult r = RunCli(
      "--algo=qflow --dist=indep --n=400 --d=4 --seed=13 "
      "--minmax=min,max,min,ignore --constrain=0:0.1:0.9 --topk=5 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("|result|="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("matched="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;

  const CliResult proj = RunCli(
      "--dist=anti --n=300 --d=5 --seed=3 --project=0,2 --verify");
  EXPECT_EQ(proj.exit_code, 0) << proj.out;
  EXPECT_NE(proj.out.find("verification: OK"), std::string::npos) << proj.out;
}

TEST(CliSmokeTest, BadQuerySpecsFailCleanlyNotAbort) {
  for (const char* args :
       {"--n=50 --d=4 --minmax=bogus", "--n=50 --d=4 --minmax=min,max",
        "--n=50 --d=4 --constrain=9:0:1", "--n=50 --d=4 --constrain=0:junk:1",
        "--n=50 --d=4 --kband=0", "--n=50 --d=4 --project=7",
        "--n=50 --d=4 --kband=-1", "--n=50 --d=4 --topk=-2",
        "--n=50 --d=4 --kband=4294967297", "--n=50 --d=4 --kband=junk",
        "--n=50 --d=4 --constrain=0:0.9:0.1"}) {
    const CliResult r = RunCli(args);
    EXPECT_EQ(r.exit_code, 2) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("error:"), std::string::npos) << args << "\n"
                                                       << r.out;
  }
}

TEST(CliSmokeTest, AutoAlgoSelectsPrintsDecisionAndVerifies) {
  // --algo=auto routes through the engine; the decision line must name a
  // concrete algorithm and the result must verify.
  const CliResult r =
      RunCli("--algo=auto --dist=indep --n=500 --d=4 --seed=7 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("auto "), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("  auto: "), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("auto: auto"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;
  // The decision must be one of the model's candidates (the exact pick
  // depends on the host's core count).
  const bool known_pick =
      r.out.find("auto: BSkyTree") != std::string::npos ||
      r.out.find("auto: PSkyline") != std::string::npos ||
      r.out.find("auto: Q-Flow") != std::string::npos ||
      r.out.find("auto: Hybrid") != std::string::npos;
  EXPECT_TRUE(known_pick) << r.out;

  // Any spelling ParseAlgorithm accepts routes through the engine and
  // prints the decision line too.
  const CliResult upper =
      RunCli("--algo=AUTO --dist=indep --n=300 --d=4 --seed=7");
  EXPECT_EQ(upper.exit_code, 0) << upper.out;
  EXPECT_NE(upper.out.find("  auto: "), std::string::npos) << upper.out;

  // Sharded auto: one decision per executed shard, same |result| as a
  // fixed-algorithm run of the same query.
  const CliResult sharded = RunCli(
      "--algo=auto --dist=indep --n=600 --d=4 --seed=7 --shards=4 "
      "--shard-policy=median --constrain=3:0.0:0.4 --verify");
  EXPECT_EQ(sharded.exit_code, 0) << sharded.out;
  EXPECT_NE(sharded.out.find("shards: policy=median"), std::string::npos)
      << sharded.out;
  EXPECT_NE(sharded.out.find("  auto: "), std::string::npos) << sharded.out;
  EXPECT_NE(sharded.out.find("verification: OK"), std::string::npos)
      << sharded.out;
}

TEST(CliSmokeTest, BadAlgoListsEveryValidName) {
  // The --algo diagnostic must enumerate the valid vocabulary (auto
  // included) and exit 2.
  const CliResult r = RunCli("--algo=noexist --n=50 --d=3");
  EXPECT_EQ(r.exit_code, 2) << r.out;
  EXPECT_NE(r.out.find("error:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("valid:"), std::string::npos) << r.out;
  for (const char* name : {"bnl", "pskyline", "qflow", "hybrid", "bskytree",
                           "pbskytree", "auto"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name << "\n" << r.out;
  }
}

TEST(CliSmokeTest, RobustServingExitCodeSemantics) {
  // The CLI's documented exit-code contract for the robust-serving
  // flags: 0 = served, 2 = bad flag value, 3 = runtime refusal
  // (deadline exceeded, shed, or injected/internal failure).

  // A generous deadline on a tiny workload serves normally: exit 0.
  const CliResult ok = RunCli(
      "--algo=qflow --dist=indep --n=400 --d=4 --seed=5 "
      "--deadline-ms=60000 --verify");
  EXPECT_EQ(ok.exit_code, 0) << ok.out;
  EXPECT_NE(ok.out.find("verification: OK"), std::string::npos) << ok.out;

  // An impossible deadline on a heavy parallel run: status line + exit 3
  // on the library path (no engine flags)...
  const CliResult late = RunCli(
      "--algo=pskyline --dist=anti --n=200000 --d=10 --seed=5 "
      "--deadline-ms=0.001");
  EXPECT_EQ(late.exit_code, 3) << late.out;
  EXPECT_NE(late.out.find("status=deadline_exceeded"), std::string::npos)
      << late.out;

  // ...and on the engine path (query flags present).
  const CliResult engine_late = RunCli(
      "--algo=qflow --dist=anti --n=100000 --d=8 --seed=5 --shards=2 "
      "--deadline-ms=0.001");
  EXPECT_EQ(engine_late.exit_code, 3) << engine_late.out;
  EXPECT_NE(engine_late.out.find("status=deadline_exceeded"),
            std::string::npos)
      << engine_late.out;

  // An armed failpoint that kills the compute: clean status, exit 3.
  const CliResult injected = RunCli(
      "--dist=indep --n=500 --d=4 --constrain=0:0.1:0.9 "
      "--failpoint=view_build:error");
  EXPECT_EQ(injected.exit_code, 3) << injected.out;
  EXPECT_NE(injected.out.find("status=internal_error"), std::string::npos)
      << injected.out;

  // Delay-mode injection slows but never corrupts: exit 0 and verified.
  const CliResult delayed = RunCli(
      "--dist=indep --n=500 --d=4 --constrain=0:0.1:0.9 "
      "--failpoint=view_build:delay:1:5 --verify");
  EXPECT_EQ(delayed.exit_code, 0) << delayed.out;
  EXPECT_NE(delayed.out.find("verification: OK"), std::string::npos)
      << delayed.out;

  // Flag-value errors stay exit 2, distinct from runtime refusals.
  for (const char* args :
       {"--n=50 --d=3 --deadline-ms=junk", "--n=50 --d=3 --deadline-ms=-1",
        "--n=50 --d=3 --max-inflight=junk", "--n=50 --d=3 --failpoint=bogus",
        "--n=50 --d=3 --failpoint=site:notamode",
        "--n=50 --d=3 --failpoint=site:throw:2.0"}) {
    const CliResult r = RunCli(args);
    EXPECT_EQ(r.exit_code, 2) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("error:"), std::string::npos) << args << "\n"
                                                       << r.out;
  }

  // The contract is printed in --help.
  const CliResult help = RunCli("--help");
  EXPECT_NE(help.out.find("exit codes:"), std::string::npos) << help.out;
  EXPECT_NE(help.out.find("--deadline-ms"), std::string::npos) << help.out;
  EXPECT_NE(help.out.find("--failpoint"), std::string::npos) << help.out;
  EXPECT_NE(help.out.find("--max-inflight"), std::string::npos) << help.out;
  EXPECT_NE(help.out.find("--serve-stale"), std::string::npos) << help.out;
}

TEST(CliSmokeTest, ServeStaleAndMaxInflightRouteThroughEngine) {
  // --serve-stale / --max-inflight are engine config; either flag alone
  // must route the run through SkylineEngine (|result|= line, not
  // |sky|=) and serve correctly in the absence of overload.
  const CliResult r = RunCli(
      "--dist=indep --n=400 --d=4 --seed=9 --serve-stale --max-inflight=8 "
      "--verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("|result|="), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("verification: OK"), std::string::npos) << r.out;
}

TEST(CliSmokeTest, BadFlagExitsWithUsage) {
  const CliResult r = RunCli("--definitely-not-a-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos) << r.out;
}

TEST(CliSmokeTest, InvalidInputsFailCleanlyNotAbort) {
  // Unknown names, unreadable files and out-of-range dims must produce a
  // diagnostic and exit 2 — never std::terminate (exit 134).
  const std::string wide_csv = ::testing::TempDir() + "/skybench_wide.csv";
  {
    std::ofstream f(wide_csv);
    for (int j = 0; j < 17; ++j) f << (j ? ",1" : "1");  // d=17 > kMaxDims
    f << "\n";
  }
  const std::string wide_arg = "--input=" + wide_csv;
  for (const char* args : {"--algo=noexist --n=10", "--dist=noexist --n=10",
                           "--input=/definitely/not/here.csv",
                           "--d=99 --n=10", "--d=0 --n=10",
                           wide_arg.c_str()}) {
    const CliResult r = RunCli(args);
    EXPECT_EQ(r.exit_code, 2) << args << "\n" << r.out;
    EXPECT_NE(r.out.find("error:"), std::string::npos) << args << "\n"
                                                       << r.out;
  }
  std::remove(wide_csv.c_str());
}

}  // namespace
}  // namespace sky::test
