// Copyright (c) SkyBench-NG contributors.
// Differential and structural coverage for the block zonemap index and
// the BBS-style branch-and-bound skyline (Algorithm::kZonemap): the
// traversal must be row-for-row identical to the brute-force oracle
// across distributions x shard counts/policies x constrained/
// unconstrained x band depths, the index must stay valid across
// block-local mutation repair, pruning decisions must be provably
// justified, and the counting tile kernel plus the cost learner riding
// along in this change are checked against scalar oracles.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/skyline.h"
#include "core/zonemap_skyline.h"
#include "data/generator.h"
#include "data/realistic.h"
#include "data/sketch.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"
#include "gtest/gtest.h"
#include "index/zonemap.h"
#include "query/cost_model.h"
#include "query/engine.h"
#include "query_test_util.h"
#include "test_util.h"

namespace sky::test {
namespace {

std::vector<OracleEntry> SortedById(std::vector<OracleEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              return a.id < b.id;
            });
  return entries;
}

std::vector<OracleEntry> SortedEntries(const QueryResult& r) {
  std::vector<OracleEntry> out(r.ids.size());
  for (size_t i = 0; i < r.ids.size(); ++i) {
    out[i] = OracleEntry{r.ids[i], r.dominator_counts[i]};
  }
  std::sort(out.begin(), out.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              return a.id < b.id;
            });
  return out;
}

Dataset MakeData(const std::string& dist, size_t n, int d, uint64_t seed) {
  if (dist == "house") return GenerateHouseLike(n, seed);
  return GenerateSynthetic(ParseDistribution(dist), n, d, seed);
}

/// The spec grid the zonemap paths must cover: the direct path (band-1
/// box-only, constrained and unconstrained), the view path (preference
/// flips), the skyband substrate (band_k > 1) and ranked caps.
std::vector<QuerySpec> ZonemapSpecs(int d) {
  std::vector<QuerySpec> specs;
  specs.push_back(QuerySpec{});  // unconstrained direct path

  QuerySpec boxed;
  boxed.Constrain(0, 0.1f, 0.6f);
  specs.push_back(boxed);

  QuerySpec tight;  // selective box on two dims
  tight.Constrain(0, 0.0f, 0.25f).Constrain(d - 1, 0.0f, 0.3f);
  specs.push_back(tight);

  QuerySpec flipped = boxed;  // not box-only: runs via the view path
  flipped.SetPreference(1, Preference::kMax);
  specs.push_back(flipped);

  QuerySpec banded = boxed;  // band_k > 1: ComputeSkyband substrate
  banded.band_k = 3;
  specs.push_back(banded);

  QuerySpec capped = boxed;
  capped.top_k = 9;
  specs.push_back(capped);

  return specs;
}

TEST(ZonemapDifferential, MatchesOracleAcrossTheGrid) {
  Options opts;
  opts.algorithm = Algorithm::kZonemap;
  for (const std::string dist : {"indep", "anti", "corr", "house"}) {
    const Dataset data = MakeData(dist, 450, 5, 17);
    for (const QuerySpec& spec : ZonemapSpecs(data.dims())) {
      const std::vector<OracleEntry> oracle = ReferenceQuery(data, spec);
      const QueryResult one_shot = RunQuery(data, spec, opts);
      const std::string key = dist + " spec=" +
                              spec.Canonicalize(data.dims()).CanonicalKey();
      if (spec.top_k > 0) {
        std::vector<OracleEntry> got(one_shot.ids.size());
        for (size_t i = 0; i < one_shot.ids.size(); ++i) {
          got[i] = OracleEntry{one_shot.ids[i], one_shot.dominator_counts[i]};
        }
        EXPECT_EQ(got, oracle) << key;
      } else {
        EXPECT_EQ(SortedEntries(one_shot), oracle) << key;
      }
      for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
        for (const ShardPolicy policy :
             {ShardPolicy::kRoundRobin, ShardPolicy::kMedianPivot}) {
          if (shards == 1 && policy != ShardPolicy::kRoundRobin) continue;
          SkylineEngine::Config config;
          config.shards = shards;
          config.shard_policy = policy;
          SkylineEngine engine(config);
          engine.RegisterDataset("ds", data.Clone());
          const QueryResult r = engine.Execute("ds", spec, opts);
          EXPECT_EQ(SortedEntries(r), SortedById(oracle))
              << key << " K=" << shards
              << " policy=" << ShardPolicyName(policy);
        }
      }
    }
  }
}

TEST(ZonemapDifferential, BlockRowsSweepMatchesOracle) {
  // Degenerate block sizes (1 row per block, bigger than the dataset)
  // change only the traversal granularity, never the answer.
  const Dataset data = MakeData("anti", 350, 4, 23);
  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.5f);
  for (const size_t block_rows : {size_t{1}, size_t{7}, size_t{64},
                                  size_t{4096}}) {
    Options opts;
    opts.algorithm = Algorithm::kZonemap;
    opts.block_rows = block_rows;
    for (const QuerySpec& spec : {QuerySpec{}, boxed}) {
      EXPECT_EQ(SortedEntries(RunQuery(data, spec, opts)),
                ReferenceQuery(data, spec))
          << "block_rows=" << block_rows
          << " constrained=" << !spec.constraints.empty();
    }
  }
}

TEST(ZonemapDifferential, NonFiniteRowsMatchOracle) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const Dataset data = MakeDataset({
      {0.10f, 0.20f, 0.30f},
      {nan, 0.05f, 0.10f},    // NaN on an unconstrained dim can pass a box
      {0.05f, nan, 0.10f},
      {-inf, 0.50f, 0.50f},   // -inf dominates every finite first coord
      {0.20f, inf, 0.10f},
      {0.15f, 0.15f, 0.15f},
      {0.90f, 0.90f, 0.90f},
      {0.15f, 0.15f, 0.15f},  // duplicate: coincident points both survive
  });
  QuerySpec boxed;
  boxed.Constrain(1, 0.0f, 0.6f);
  QuerySpec tight;  // NaN on dim 0 passes a box that constrains dim 1 only
  tight.Constrain(1, 0.0f, 0.2f).Constrain(2, 0.0f, 0.2f);
  Options opts;
  opts.algorithm = Algorithm::kZonemap;
  for (const QuerySpec& spec : {QuerySpec{}, boxed, tight}) {
    EXPECT_EQ(SortedEntries(RunQuery(data, spec, opts)),
              ReferenceQuery(data, spec))
        << "constrained=" << !spec.constraints.empty();
  }
  // Irregular rows must be segregated, not silently dropped.
  const ZoneMapIndex index = ZoneMapIndex::Build(data);
  EXPECT_EQ(index.irregular().size(), 4u);
  EXPECT_TRUE(index.Validate(data));
}

TEST(ZoneMapIndexTest, BuildValidatesAcrossBlockSizes) {
  const Dataset data = MakeData("indep", 777, 4, 31);
  for (const size_t block_rows : {size_t{0}, size_t{8}, size_t{50},
                                  size_t{1000}}) {
    const ZoneMapIndex index = ZoneMapIndex::Build(data, block_rows);
    EXPECT_TRUE(index.Validate(data)) << "block_rows=" << block_rows;
    EXPECT_EQ(index.rows(), data.count());
    EXPECT_EQ(index.dims(), data.dims());
    const size_t eff =
        block_rows == 0 ? ZoneMapIndex::kDefaultBlockRows : block_rows;
    EXPECT_EQ(index.block_count(), (data.count() + eff - 1) / eff);
    EXPECT_EQ(index.super_count(),
              (index.block_count() + ZoneMapIndex::kSuperFan - 1) /
                  ZoneMapIndex::kSuperFan);
  }
}

/// data plus `extra` appended (the post-insert dataset).
Dataset Appended(const Dataset& base, const Dataset& extra) {
  std::vector<float> flat;
  flat.reserve((base.count() + extra.count()) *
               static_cast<size_t>(base.dims()));
  for (size_t i = 0; i < base.count(); ++i) {
    flat.insert(flat.end(), base.Row(i), base.Row(i) + base.dims());
  }
  for (size_t i = 0; i < extra.count(); ++i) {
    flat.insert(flat.end(), extra.Row(i), extra.Row(i) + extra.dims());
  }
  return Dataset::FromRowMajor(base.dims(), flat);
}

TEST(ZoneMapIndexTest, AppendRepairValidatesAndMatchesFreshBuild) {
  const Dataset base = MakeData("anti", 300, 4, 7);
  Dataset extra = MakeData("indep", 90, 4, 8);
  const Dataset post = Appended(base, extra);
  const ZoneMapIndex index = ZoneMapIndex::Build(base, 32);
  const ZoneMapIndex repaired = index.WithAppendedRows(post, base.count());
  EXPECT_TRUE(repaired.Validate(post));
  EXPECT_EQ(repaired.rows(), post.count());
  // The repaired index answers exactly like a fresh build.
  const std::vector<PointId> fresh_sky =
      Sorted(ZonemapSkylineRun(post, ZoneMapIndex::Build(post, 32), {},
                               Options{})
                 .skyline);
  EXPECT_EQ(Sorted(ZonemapSkylineRun(post, repaired, {}, Options{}).skyline),
            fresh_sky);
}

TEST(ZoneMapIndexTest, DeleteRepairValidatesAndMatchesFreshBuild) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Dataset base = MakeData("anti", 260, 4, 11);
  std::vector<float> flat;
  for (size_t i = 0; i < base.count(); ++i) {
    flat.insert(flat.end(), base.Row(i), base.Row(i) + base.dims());
  }
  flat.insert(flat.end(), {nan, 0.1f, 0.1f, 0.1f});  // irregular victim
  const Dataset data = Dataset::FromRowMajor(4, flat);

  const std::vector<PointId> drop = {0, 5, 6, 100, 259, 260};
  std::vector<float> kept;
  std::vector<bool> dead(data.count(), false);
  for (const PointId id : drop) dead[id] = true;
  for (size_t i = 0; i < data.count(); ++i) {
    if (!dead[i]) kept.insert(kept.end(), data.Row(i), data.Row(i) + 4);
  }
  const Dataset post = Dataset::FromRowMajor(4, kept);

  const ZoneMapIndex index = ZoneMapIndex::Build(data, 32);
  const ZoneMapIndex repaired = index.WithDeletedRows(post, drop);
  EXPECT_TRUE(repaired.Validate(post));
  EXPECT_EQ(repaired.rows(), post.count());
  const std::vector<PointId> fresh_sky =
      Sorted(ZonemapSkylineRun(post, ZoneMapIndex::Build(post, 32), {},
                               Options{})
                 .skyline);
  EXPECT_EQ(Sorted(ZonemapSkylineRun(post, repaired, {}, Options{}).skyline),
            fresh_sky);
}

TEST(ZonemapTraversal, PrunedBlocksAreProvablyDominated) {
  // Every dominance-pruned block's min corner must be strictly dominated
  // by some returned member — the BBS pruning rule, checked a posteriori
  // (clean data: confirmed members are never retracted).
  const Dataset data = MakeData("indep", 3000, 4, 41);
  const ZoneMapIndex index = ZoneMapIndex::Build(data, 32);
  const ZonemapRunResult r = ZonemapSkylineRun(data, index, {}, Options{});
  EXPECT_EQ(Sorted(std::vector<PointId>(r.skyline)),
            ReferenceSkyline(data));
  EXPECT_EQ(r.blocks_visited + r.blocks_pruned + r.blocks_box_skipped,
            index.block_count());
  EXPECT_EQ(r.blocks_box_skipped, 0u);  // unconstrained
  EXPECT_EQ(r.matched_rows, data.count());
  EXPECT_GT(r.blocks_pruned, 0u);  // 3000 indep rows prune heavily
  EXPECT_EQ(r.pruned_blocks.size(), r.blocks_pruned);
  const int d = data.dims();
  for (const uint32_t b : r.pruned_blocks) {
    const Value* lo = index.block_lo(b);
    bool justified = false;
    for (const PointId id : r.skyline) {
      const Value* m = data.Row(id);
      bool all_le = true, some_lt = false;
      for (int j = 0; j < d; ++j) {
        all_le &= m[j] <= lo[j];
        some_lt |= m[j] < lo[j];
      }
      if (all_le && some_lt) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "block " << b << " pruned without a witness";
  }
}

TEST(ZonemapTraversal, ConstrainedRunSkipsDisjointBlocksExactly) {
  const Dataset data = MakeData("indep", 4000, 4, 43);
  const ZoneMapIndex index = ZoneMapIndex::Build(data, 64);
  QuerySpec tight;
  tight.Constrain(0, 0.0f, 0.15f).Constrain(1, 0.0f, 0.15f);
  const QuerySpec canon = tight.Canonicalize(data.dims());
  const ZonemapRunResult r =
      ZonemapSkylineRun(data, index, canon.constraints, Options{});
  EXPECT_EQ(r.blocks_visited + r.blocks_pruned + r.blocks_box_skipped,
            index.block_count());
  EXPECT_GT(r.blocks_box_skipped, 0u);  // a 2% box misses most AABBs
  // matched_rows is exact: the brute candidate count.
  size_t expect_matched = 0;
  for (size_t i = 0; i < data.count(); ++i) {
    expect_matched += data.Row(i)[0] <= 0.15f && data.Row(i)[1] <= 0.15f;
  }
  EXPECT_EQ(r.matched_rows, expect_matched);
  EXPECT_EQ(Sorted(std::vector<PointId>(r.skyline)),
            [&] {
              std::vector<PointId> ids;
              for (const OracleEntry& e : ReferenceQuery(data, tight)) {
                ids.push_back(e.id);
              }
              return ids;
            }());
}

TEST(ZonemapTraversal, ProgressiveStreamsExactlyTheSkyline) {
  const Dataset data = MakeData("anti", 1500, 4, 47);
  const ZoneMapIndex index = ZoneMapIndex::Build(data);
  Options opts;
  std::vector<PointId> streamed;
  opts.progressive = [&](std::span<const PointId> ids) {
    streamed.insert(streamed.end(), ids.begin(), ids.end());
  };
  const ZonemapRunResult r = ZonemapSkylineRun(data, index, {}, opts);
  EXPECT_EQ(Sorted(streamed), Sorted(std::vector<PointId>(r.skyline)));

  // A box-passing irregular row can retract a would-be member, so the
  // traversal must not stream at all there. Here {nan, 0.05} dominates
  // both finite rows (NaN contributes neither violation nor strictness),
  // which is exactly why streaming confirmed-finite members would lie.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const Dataset noisy = MakeDataset({
      {0.1f, 0.2f},
      {0.2f, 0.1f},
      {nan, 0.05f},
  });
  streamed.clear();
  const ZonemapRunResult nr =
      ZonemapSkylineRun(noisy, ZoneMapIndex::Build(noisy), {}, opts);
  EXPECT_TRUE(streamed.empty());
  EXPECT_EQ(nr.skyline, (std::vector<PointId>{2}));
}

TEST(CountDominatorsKernel, MatchesScalarOracleUnderCaps) {
  const Dataset data = MakeData("indep", 500, 6, 53);
  TileBlock tiles(data.dims(), data.count());
  tiles.AppendRows(data.Row(0), data.stride(), data.count());
  const auto oracle_count = [&](const Value* q, size_t limit) {
    uint32_t c = 0;
    for (size_t i = 0; i < std::min(limit, data.count()); ++i) {
      const Value* p = data.Row(i);
      bool all_le = true, some_lt = false;
      for (int j = 0; j < data.dims(); ++j) {
        all_le &= p[j] <= q[j];
        some_lt |= p[j] < q[j];
      }
      c += all_le && some_lt;
    }
    return c;
  };
  for (const bool simd : {false, true}) {
    const DomCtx dom(data.dims(), data.stride(), simd);
    for (size_t qi = 0; qi < data.count(); qi += 17) {
      const Value* q = data.Row(qi);
      for (const size_t limit : {data.count(), size_t{100}, size_t{3}}) {
        const uint32_t exact = oracle_count(q, limit);
        // A cap above the true count returns the exact count.
        EXPECT_EQ(dom.CountDominators(q, tiles, limit, exact + 1, nullptr),
                  exact)
            << "simd=" << simd << " qi=" << qi << " limit=" << limit;
        // cap == 0 never scans.
        EXPECT_EQ(dom.CountDominators(q, tiles, limit, 0, nullptr), 0u);
        // A reachable cap early-outs at >= cap without exceeding the
        // true count (the last tile's popcount only counts dominators).
        if (exact >= 2) {
          const uint32_t capped =
              dom.CountDominators(q, tiles, limit, 2, nullptr);
          EXPECT_GE(capped, 2u);
          EXPECT_LE(capped, exact);
        }
      }
    }
    const TileBlock empty(data.dims(), 0);
    EXPECT_EQ(dom.CountDominators(data.Row(0), empty, 0, 5, nullptr), 0u);
  }
}

TEST(CountDominatorsKernel, DominanceTestsAreAccounted) {
  const Dataset data = MakeData("anti", 300, 4, 59);
  TileBlock tiles(data.dims(), data.count());
  tiles.AppendRows(data.Row(0), data.stride(), data.count());
  const DomCtx dom(data.dims(), data.stride(), true);
  uint64_t dts = 0;
  dom.CountDominators(data.Row(7), tiles, data.count(), 1'000'000, &dts);
  EXPECT_GT(dts, 0u);
  EXPECT_LE(dts, ((data.count() + kSimdWidth - 1) / kSimdWidth) * kSimdWidth);
}

TEST(CostLearnerTest, SeedsBlendsAndClamps) {
  CostLearner learner;
  EXPECT_DOUBLE_EQ(learner.Scale(Algorithm::kHybrid), 1.0);
  EXPECT_EQ(learner.Observations(Algorithm::kHybrid), 0u);

  // First observation seeds the EMA: 2000 measured ns / 1000 predicted.
  learner.Record(Algorithm::kHybrid, 1000.0, 2e-6);
  EXPECT_DOUBLE_EQ(learner.Scale(Algorithm::kHybrid), 2.0);
  EXPECT_EQ(learner.Observations(Algorithm::kHybrid), 1u);

  // Second blends at 0.2: 0.8 * 2.0 + 0.2 * 1.0.
  learner.Record(Algorithm::kHybrid, 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(learner.Scale(Algorithm::kHybrid), 1.8);

  // Ratios clamp to [0.01, 100] so one hiccup cannot poison the cell.
  learner.Record(Algorithm::kBnl, 1000.0, 1.0);  // 1e6x over: clamps to 100
  EXPECT_DOUBLE_EQ(learner.Scale(Algorithm::kBnl), 100.0);
  learner.Record(Algorithm::kSfs, 1e15, 1e-9);  // 1e-15x under: clamps
  EXPECT_DOUBLE_EQ(learner.Scale(Algorithm::kSfs), 0.01);

  // Sub-1 predictions are floored at 1 ns before dividing.
  learner.Record(Algorithm::kLess, 0.5, 5e-9);
  EXPECT_DOUBLE_EQ(learner.Scale(Algorithm::kLess), 5.0);

  learner.Reset();
  for (const Algorithm a : {Algorithm::kHybrid, Algorithm::kBnl,
                            Algorithm::kSfs, Algorithm::kLess}) {
    EXPECT_DOUBLE_EQ(learner.Scale(a), 1.0);
    EXPECT_EQ(learner.Observations(a), 0u);
  }
}

TEST(CostLearnerTest, LearnedScaleFlipsSelection) {
  StatsSketch sk;
  sk.n = 2'000'000;
  sk.d = 8;
  sk.est_skyline = 60'000.0;
  sk.growth_exponent = 0.6;
  SelectionContext ctx;
  ctx.threads = 16;
  ASSERT_EQ(ChooseAlgorithm(sk, ctx).algorithm, Algorithm::kHybrid);

  CostLearner learner;
  learner.Record(Algorithm::kHybrid, 1.0, 1.0);  // scale clamps to 100
  ctx.learner = &learner;
  EXPECT_NE(ChooseAlgorithm(sk, ctx).algorithm, Algorithm::kHybrid);
}

TEST(ZonemapAutoSelection, DirectGateControlsCandidacy) {
  StatsSketch sk;
  sk.n = 50'000;
  sk.d = 8;
  sk.est_skyline = 2'500.0;
  sk.growth_exponent = 0.6;
  SelectionContext ctx;
  ctx.threads = 4;
  ctx.selectivity = 0.01;  // a 1% box: the direct path's home turf
  EXPECT_NE(ChooseAlgorithm(sk, ctx).algorithm, Algorithm::kZonemap);
  ctx.zonemap_direct = true;
  EXPECT_EQ(ChooseAlgorithm(sk, ctx).algorithm, Algorithm::kZonemap);

  // Without the gate, no sketch anywhere makes zonemap the pick.
  SelectionContext off;
  off.threads = 4;
  for (const double sel : {1.0, 0.1, 0.001}) {
    off.selectivity = sel;
    EXPECT_NE(ChooseAlgorithm(sk, off).algorithm, Algorithm::kZonemap);
  }
}

TEST(ZonemapEngine, UnshardedIndexIsCachedAndRepairedAcrossMutations) {
  SkylineEngine::Config config;
  config.shards = 1;
  config.result_cache_capacity = 0;  // measure the zonemap cache alone
  SkylineEngine engine(config);
  const Dataset data = MakeData("anti", 400, 4, 61);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.7f);
  Options opts;
  opts.algorithm = Algorithm::kZonemap;

  const QueryResult first = engine.Execute("ds", boxed, opts);
  auto counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_EQ(SortedEntries(first), ReferenceQuery(data, boxed));

  const QueryResult again = engine.Execute("ds", boxed, opts);
  counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_GE(counters.hits, 1u);
  EXPECT_EQ(SortedEntries(again), SortedEntries(first));

  // Insert: the cached index is repaired block-locally (tail append), so
  // the next query hits — no rebuild miss — and stays oracle-identical.
  const Dataset extra = MakeData("indep", 60, 4, 62);
  engine.InsertPoints("ds", extra);
  EXPECT_EQ(engine.MinorVersion("ds"), 1u);
  const auto pre_insert = engine.zonemap_cache_counters();
  const QueryResult after_insert = engine.Execute("ds", boxed, opts);
  counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.misses, pre_insert.misses)
      << "repair should avoid a rebuild";
  EXPECT_GT(counters.hits, pre_insert.hits);
  EXPECT_EQ(SortedEntries(after_insert),
            ReferenceQuery(*engine.Find("ds"), boxed));

  // Delete: same story through WithDeletedRows.
  const std::vector<PointId> drop = {1, 7, 13, 400, 459};
  engine.DeletePoints("ds", drop);
  EXPECT_EQ(engine.MinorVersion("ds"), 2u);
  const auto pre_delete = engine.zonemap_cache_counters();
  const QueryResult after_delete = engine.Execute("ds", boxed, opts);
  counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.misses, pre_delete.misses);
  EXPECT_GT(counters.hits, pre_delete.hits);
  EXPECT_EQ(SortedEntries(after_delete),
            ReferenceQuery(*engine.Find("ds"), boxed));

  // A custom block size must not pollute the fixed cache keys.
  Options custom = opts;
  custom.block_rows = 16;
  const auto pre_custom = engine.zonemap_cache_counters();
  const QueryResult custom_r = engine.Execute("ds", boxed, custom);
  counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.entries, pre_custom.entries);
  EXPECT_EQ(counters.misses, pre_custom.misses);
  EXPECT_EQ(SortedEntries(custom_r), SortedEntries(after_delete));
}

TEST(ZonemapEngine, ShardedIndexesAreRepairedAcrossMutations) {
  SkylineEngine::Config config;
  config.shards = 3;
  config.result_cache_capacity = 0;
  SkylineEngine engine(config);
  const Dataset data = MakeData("indep", 600, 4, 67);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec wide;  // covers every shard box: all three execute
  wide.Constrain(0, 0.0f, 1.0f);
  Options opts;
  opts.algorithm = Algorithm::kZonemap;

  const QueryResult first = engine.Execute("ds", wide, opts);
  EXPECT_EQ(first.shards_executed, 3u);
  auto counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.misses, 3u);  // one build per shard
  EXPECT_EQ(counters.entries, 3u);
  EXPECT_EQ(SortedEntries(first), ReferenceQuery(data, wide));

  engine.InsertPoints("ds", MakeData("anti", 45, 4, 68));
  const auto pre = engine.zonemap_cache_counters();
  const QueryResult after = engine.Execute("ds", wide, opts);
  counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.misses, pre.misses)
      << "every touched shard's index should be repaired, not rebuilt";
  EXPECT_EQ(SortedEntries(after), ReferenceQuery(*engine.Find("ds"), wide));

  const std::vector<PointId> drop = {0, 100, 200, 300, 600};
  engine.DeletePoints("ds", drop);
  const auto pre_del = engine.zonemap_cache_counters();
  const QueryResult after_del = engine.Execute("ds", wide, opts);
  counters = engine.zonemap_cache_counters();
  EXPECT_EQ(counters.misses, pre_del.misses);
  EXPECT_EQ(SortedEntries(after_del),
            ReferenceQuery(*engine.Find("ds"), wide));
}

TEST(ZonemapEngine, CostLearningRecordsOnlyWhenEnabled) {
  const Dataset data = MakeData("indep", 500, 4, 71);
  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.5f);

  SkylineEngine::Config off;
  off.shards = 1;
  off.result_cache_capacity = 0;
  SkylineEngine cold(off);
  cold.RegisterDataset("ds", data.Clone());
  Options opts;
  opts.algorithm = Algorithm::kHybrid;
  cold.Execute("ds", boxed, opts);
  for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
    EXPECT_EQ(cold.Learner().Observations(desc.algorithm), 0u);
  }

  SkylineEngine::Config on = off;
  on.cost_learning = true;
  SkylineEngine warm(on);
  warm.RegisterDataset("ds", data.Clone());
  warm.Execute("ds", boxed, opts);
  EXPECT_EQ(warm.Learner().Observations(Algorithm::kHybrid), 1u);
  EXPECT_GT(warm.Learner().Scale(Algorithm::kHybrid), 0.0);
  warm.Execute("ds", boxed, opts);  // result cache is off: records again
  EXPECT_EQ(warm.Learner().Observations(Algorithm::kHybrid), 2u);
}

TEST(ZonemapStress, ConcurrentZonemapQueriesAndMutations) {
  // TSan target: zonemap-path queries racing InsertPoints / DeletePoints
  // must stay crash-free and every served result must be internally
  // consistent (ids in range, no duplicates). Exact answers are checked
  // once traffic stops.
  SkylineEngine::Config config;
  config.shards = 2;
  SkylineEngine engine(config);
  const Dataset data = MakeData("indep", 400, 4, 73);
  engine.RegisterDataset("ds", data.Clone());

  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.6f);
  std::atomic<bool> stop{false};
  std::atomic<size_t> served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Options opts;
      opts.algorithm = t % 2 == 0 ? Algorithm::kZonemap : Algorithm::kAuto;
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryResult r = engine.Execute("ds", boxed, opts);
        std::vector<PointId> ids = r.ids;
        std::sort(ids.begin(), ids.end());
        EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 0; round < 15; ++round) {
    engine.InsertPoints("ds", MakeData("anti", 20, 4, 80 + round));
    const std::vector<PointId> drop = {static_cast<PointId>(3 * round),
                                       static_cast<PointId>(3 * round + 1)};
    engine.DeletePoints("ds", drop);
  }
  // Under heavy machine load the mutation rounds can outrun the readers;
  // keep traffic flowing until at least one query landed mid-mutation-era.
  while (served.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(served.load(), 0u);

  Options opts;
  opts.algorithm = Algorithm::kZonemap;
  const QueryResult fin = engine.Execute("ds", boxed, opts);
  EXPECT_EQ(SortedEntries(fin), ReferenceQuery(*engine.Find("ds"), boxed));
}

}  // namespace
}  // namespace sky::test
