// Copyright (c) SkyBench-NG contributors.
// QuerySpec parsing, canonicalization and cache-key behavior.
#include "query/query_spec.h"

#include <stdexcept>

#include "gtest/gtest.h"

namespace sky::test {
namespace {

constexpr Value kInf = std::numeric_limits<Value>::infinity();

TEST(QuerySpecTest, ParsePreferenceAcceptsNamesAndShorthands) {
  EXPECT_EQ(ParsePreference("min"), Preference::kMin);
  EXPECT_EQ(ParsePreference("max"), Preference::kMax);
  EXPECT_EQ(ParsePreference("ignore"), Preference::kIgnore);
  EXPECT_EQ(ParsePreference("-"), Preference::kMin);
  EXPECT_EQ(ParsePreference("+"), Preference::kMax);
  EXPECT_EQ(ParsePreference("_"), Preference::kIgnore);
  EXPECT_THROW(ParsePreference("bogus"), std::runtime_error);
  EXPECT_THROW(ParsePreference(""), std::runtime_error);
}

TEST(QuerySpecTest, ParsePreferenceList) {
  const auto prefs = ParsePreferenceList("min,max,_,+");
  ASSERT_EQ(prefs.size(), 4u);
  EXPECT_EQ(prefs[0], Preference::kMin);
  EXPECT_EQ(prefs[1], Preference::kMax);
  EXPECT_EQ(prefs[2], Preference::kIgnore);
  EXPECT_EQ(prefs[3], Preference::kMax);
  EXPECT_THROW(ParsePreferenceList("min,,max"), std::runtime_error);
}

TEST(QuerySpecTest, ParseIndexList) {
  EXPECT_EQ(ParseIndexList("0,2,5"), (std::vector<int>{0, 2, 5}));
  EXPECT_THROW(ParseIndexList("0,x"), std::runtime_error);
  EXPECT_THROW(ParseIndexList("-1"), std::runtime_error);
  EXPECT_THROW(ParseIndexList("16"), std::runtime_error);  // >= kMaxDims
}

TEST(QuerySpecTest, ParseConstraintList) {
  const auto cs = ParseConstraintList("1:0.25:0.75,3:*:0.5,2:-1:*");
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0].dim, 1);
  EXPECT_FLOAT_EQ(cs[0].lo, 0.25f);
  EXPECT_FLOAT_EQ(cs[0].hi, 0.75f);
  EXPECT_EQ(cs[1].dim, 3);
  EXPECT_EQ(cs[1].lo, -kInf);
  EXPECT_FLOAT_EQ(cs[1].hi, 0.5f);
  EXPECT_EQ(cs[2].dim, 2);
  EXPECT_FLOAT_EQ(cs[2].lo, -1.0f);
  EXPECT_EQ(cs[2].hi, kInf);

  EXPECT_THROW(ParseConstraintList("1:2"), std::runtime_error);
  EXPECT_THROW(ParseConstraintList("1:a:b"), std::runtime_error);
  EXPECT_THROW(ParseConstraintList("oops"), std::runtime_error);
}

TEST(QuerySpecTest, CanonicalizePadsShortPreferenceLists) {
  QuerySpec spec;
  spec.SetPreference(1, Preference::kMax);
  const QuerySpec canon = spec.Canonicalize(4);
  ASSERT_EQ(canon.preferences.size(), 4u);
  EXPECT_EQ(canon.preferences[0], Preference::kMin);
  EXPECT_EQ(canon.preferences[1], Preference::kMax);
  EXPECT_EQ(canon.preferences[2], Preference::kMin);
  EXPECT_EQ(canon.preferences[3], Preference::kMin);
}

TEST(QuerySpecTest, CanonicalizeRejectsMalformedSpecs) {
  QuerySpec long_prefs;
  long_prefs.preferences.assign(5, Preference::kMin);
  EXPECT_THROW(long_prefs.Canonicalize(4), std::runtime_error);

  QuerySpec all_ignored;
  all_ignored.preferences.assign(3, Preference::kIgnore);
  EXPECT_THROW(all_ignored.Canonicalize(3), std::runtime_error);

  QuerySpec zero_band;
  zero_band.band_k = 0;
  EXPECT_THROW(zero_band.Canonicalize(3), std::runtime_error);

  QuerySpec bad_dim;
  bad_dim.Constrain(7, 0.0f, 1.0f);
  EXPECT_THROW(bad_dim.Canonicalize(4), std::runtime_error);

  QuerySpec empty_box;
  empty_box.Constrain(0, 0.5f, 0.25f);
  EXPECT_THROW(empty_box.Canonicalize(4), std::runtime_error);

  // Two disjoint constraints on one dimension intersect to nothing.
  QuerySpec disjoint;
  disjoint.Constrain(0, 0.0f, 0.2f).Constrain(0, 0.8f, 1.0f);
  EXPECT_THROW(disjoint.Canonicalize(4), std::runtime_error);
}

TEST(QuerySpecTest, CanonicalizeMergesAndSortsConstraints) {
  QuerySpec spec;
  spec.Constrain(2, 0.0f, 0.9f)
      .Constrain(0, 0.1f, kInf)
      .Constrain(2, 0.3f, 1.5f)
      .Constrain(1, -kInf, kInf);  // no-op, dropped
  const QuerySpec canon = spec.Canonicalize(4);
  ASSERT_EQ(canon.constraints.size(), 2u);
  EXPECT_EQ(canon.constraints[0].dim, 0);
  EXPECT_EQ(canon.constraints[1].dim, 2);
  EXPECT_FLOAT_EQ(canon.constraints[1].lo, 0.3f);
  EXPECT_FLOAT_EQ(canon.constraints[1].hi, 0.9f);
}

TEST(QuerySpecTest, EquivalentSpellingsShareACanonicalKey) {
  const QuerySpec empty_canon = QuerySpec{}.Canonicalize(3);
  QuerySpec explicit_min;
  explicit_min.preferences.assign(3, Preference::kMin);
  EXPECT_EQ(empty_canon.CanonicalKey(),
            explicit_min.Canonicalize(3).CanonicalKey());

  QuerySpec split_box;
  split_box.Constrain(1, 0.2f, kInf).Constrain(1, -kInf, 0.8f);
  QuerySpec one_box;
  one_box.Constrain(1, 0.2f, 0.8f);
  EXPECT_EQ(split_box.Canonicalize(3).CanonicalKey(),
            one_box.Canonicalize(3).CanonicalKey());
}

TEST(QuerySpecTest, DistinctSemanticsGetDistinctKeys) {
  const std::string base = QuerySpec{}.Canonicalize(3).CanonicalKey();

  QuerySpec flipped;
  flipped.SetPreference(2, Preference::kMax);
  EXPECT_NE(flipped.Canonicalize(3).CanonicalKey(), base);

  QuerySpec banded;
  banded.band_k = 2;
  EXPECT_NE(banded.Canonicalize(3).CanonicalKey(), base);

  QuerySpec capped;
  capped.top_k = 10;
  EXPECT_NE(capped.Canonicalize(3).CanonicalKey(), base);

  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.5f);
  EXPECT_NE(boxed.Canonicalize(3).CanonicalKey(), base);
}

TEST(QuerySpecTest, IdentityTransformDetection) {
  EXPECT_TRUE(QuerySpec{}.Canonicalize(4).IsIdentityTransform());

  QuerySpec banded;  // band/topk change the question, not the transform
  banded.band_k = 3;
  banded.top_k = 5;
  EXPECT_TRUE(banded.Canonicalize(4).IsIdentityTransform());

  QuerySpec flipped;
  flipped.SetPreference(0, Preference::kMax);
  EXPECT_FALSE(flipped.Canonicalize(4).IsIdentityTransform());

  QuerySpec dropped;
  dropped.SetPreference(3, Preference::kIgnore);
  EXPECT_FALSE(dropped.Canonicalize(4).IsIdentityTransform());

  QuerySpec boxed;
  boxed.Constrain(0, 0.0f, 0.5f);
  EXPECT_FALSE(boxed.Canonicalize(4).IsIdentityTransform());
}

TEST(QuerySpecTest, ProjectKeepsListedDimensionsOnly) {
  QuerySpec spec;
  spec.SetPreference(1, Preference::kMax);
  spec.Project({0, 1}, 5);
  const QuerySpec canon = spec.Canonicalize(5);
  EXPECT_EQ(canon.preferences[0], Preference::kMin);
  EXPECT_EQ(canon.preferences[1], Preference::kMax);  // preserved
  EXPECT_EQ(canon.preferences[2], Preference::kIgnore);
  EXPECT_EQ(canon.preferences[3], Preference::kIgnore);
  EXPECT_EQ(canon.preferences[4], Preference::kIgnore);

  QuerySpec bad;
  EXPECT_THROW(bad.Project({}, 4), std::runtime_error);
  EXPECT_THROW(bad.Project({4}, 4), std::runtime_error);
}

}  // namespace
}  // namespace sky::test
