// Copyright (c) SkyBench-NG contributors.
#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sky {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int calls = 0;
  pool.RunOnAll([&](int w) {
    EXPECT_EQ(w, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, RunOnAllVisitsEveryWorkerOnce) {
  for (int t : {2, 3, 4, 8}) {
    ThreadPool pool(t);
    std::vector<std::atomic<int>> visits(static_cast<size_t>(t));
    pool.RunOnAll([&](int w) { visits[static_cast<size_t>(w)]++; });
    for (int w = 0; w < t; ++w) {
      EXPECT_EQ(visits[static_cast<size_t>(w)].load(), 1) << "worker " << w;
    }
  }
}

TEST(ThreadPool, RunOnAllIsReusable) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunOnAll([&](int) { total++; });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 100'000;
  std::vector<std::atomic<uint8_t>> hit(kN);
  pool.ParallelFor(kN, 64, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hit[i]++;
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hit[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndTiny) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 16, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(3, 16, [&](size_t b, size_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 3u);
}

TEST(ThreadPool, ParallelForStaticPartitionsContiguously) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<int> owner(kN, -1);
  pool.ParallelForStatic(kN, [&](size_t b, size_t e, int w) {
    for (size_t i = b; i < e; ++i) owner[i] = w;
  });
  // Every element owned and owners form contiguous non-decreasing runs.
  for (size_t i = 0; i < kN; ++i) ASSERT_GE(owner[i], 0);
  for (size_t i = 1; i < kN; ++i) ASSERT_GE(owner[i], owner[i - 1]);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(8);
  constexpr size_t kN = 1 << 18;
  std::vector<uint64_t> values(kN);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(kN, 1024, [&](size_t b, size_t e) {
    uint64_t local = 0;
    for (size_t i = b; i < e; ++i) local += values[i];
    sum += local;
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(2, 1, [&](size_t b, size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, NestedDataParallelismViaSeparatePools) {
  // Algorithms create their own pools; two pools must coexist.
  ThreadPool outer(2);
  std::atomic<int> total{0};
  outer.RunOnAll([&](int) {
    ThreadPool inner(2);
    inner.ParallelFor(10, 1, [&](size_t b, size_t e) {
      total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(total.load(), 20);
}

}  // namespace
}  // namespace sky
