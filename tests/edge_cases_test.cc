// Copyright (c) SkyBench-NG contributors.
// Edge cases and mathematical property tests that hold for the skyline
// operator itself: idempotence, invariance under monotone per-dimension
// transformations, and behavior at the supported limits (d=1, d=16,
// degenerate dimensions, extreme values, heavy oversubscription).
#include <gtest/gtest.h>

#include <cmath>

#include "core/skyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

const Algorithm kCore[] = {Algorithm::kQFlow, Algorithm::kHybrid,
                           Algorithm::kPSkyline, Algorithm::kBSkyTree,
                           Algorithm::kPBSkyTree};

Options Opt(Algorithm a, int threads = 2) {
  Options o;
  o.algorithm = a;
  o.threads = threads;
  return o;
}

TEST(EdgeCases, MaxDimensionalityMaskWidth) {
  // d=16 uses the full mask width (2^16 partitions possible).
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 600, 16, 1);
  const auto expect = test::Sorted(test::ReferenceSkyline(data));
  for (const Algorithm a : kCore) {
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, Opt(a)).skyline), expect)
        << AlgorithmName(a);
  }
}

TEST(EdgeCases, SingleDimensionDegeneratesToMin) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 1000, 1, 2);
  float mn = data.Row(0)[0];
  for (size_t i = 1; i < data.count(); ++i) mn = std::min(mn, data.Row(i)[0]);
  for (const Algorithm a : kCore) {
    const Result r = ComputeSkyline(data, Opt(a));
    for (const PointId id : r.skyline) {
      ASSERT_EQ(data.Row(id)[0], mn) << AlgorithmName(a);
    }
    ASSERT_FALSE(r.skyline.empty()) << AlgorithmName(a);
  }
}

TEST(EdgeCases, ConstantDimensionIsIgnoredEffectively) {
  // One dimension constant for all points: it can never break a dominance
  // tie, so the skyline equals the skyline of the remaining dimensions.
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 1500, 4, 3);
  for (size_t i = 0; i < data.count(); ++i) data.MutableRow(i)[2] = 5.0f;
  const auto expect = test::Sorted(test::ReferenceSkyline(data));
  for (const Algorithm a : kCore) {
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, Opt(a)).skyline), expect)
        << AlgorithmName(a);
  }
}

TEST(EdgeCases, ExtremeMagnitudes) {
  Dataset data = test::MakeDataset({{1e30f, 1e-30f},
                                    {1e-30f, 1e30f},
                                    {1e30f, 1e30f},
                                    {1e-30f, 1e-30f}});
  for (const Algorithm a : kCore) {
    // Point 3 dominates everything except... it dominates 0, 1, 2.
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, Opt(a)).skyline),
              (std::vector<PointId>{3}))
        << AlgorithmName(a);
  }
}

TEST(EdgeCases, HeavyOversubscription) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 500, 5, 4);
  const auto expect = test::Sorted(test::ReferenceSkyline(data));
  for (const Algorithm a : kCore) {
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, Opt(a, 64)).skyline), expect)
        << AlgorithmName(a) << " with 64 threads on 500 points";
  }
}

TEST(EdgeCases, TwoPointsAllRelations) {
  // dominates / dominated / incomparable / equal.
  struct Case {
    std::vector<float> a, b;
    std::vector<PointId> expect;
  };
  const Case cases[] = {
      {{1, 1}, {2, 2}, {0}},
      {{2, 2}, {1, 1}, {1}},
      {{1, 2}, {2, 1}, {0, 1}},
      {{1, 1}, {1, 1}, {0, 1}},
  };
  for (const Case& c : cases) {
    Dataset data = test::MakeDataset({c.a, c.b});
    for (const Algorithm a : kCore) {
      ASSERT_EQ(test::Sorted(ComputeSkyline(data, Opt(a)).skyline), c.expect)
          << AlgorithmName(a);
    }
  }
}

class SkylineProperties : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SkylineProperties, Idempotence) {
  // SKY(SKY(P)) == SKY(P).
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 6, 5);
  const Result first = ComputeSkyline(data, Opt(GetParam()));
  std::vector<float> flat;
  for (const PointId id : first.skyline) {
    for (int j = 0; j < data.dims(); ++j) flat.push_back(data.Row(id)[j]);
  }
  Dataset sky_only = Dataset::FromRowMajor(data.dims(), flat);
  const Result second = ComputeSkyline(sky_only, Opt(GetParam()));
  EXPECT_EQ(second.skyline.size(), first.skyline.size());
}

TEST_P(SkylineProperties, MonotoneTransformInvariance) {
  // Applying a strictly increasing function per dimension preserves all
  // dominance relations, hence the skyline id-set.
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 1500, 4, 6);
  const auto before =
      test::Sorted(ComputeSkyline(data, Opt(GetParam())).skyline);
  Dataset warped(data.dims(), data.count());
  for (size_t i = 0; i < data.count(); ++i) {
    warped.MutableRow(i)[0] = std::exp(data.Row(i)[0]);
    warped.MutableRow(i)[1] = data.Row(i)[1] * 1000.0f - 7.0f;
    warped.MutableRow(i)[2] = std::sqrt(data.Row(i)[2]);
    warped.MutableRow(i)[3] = std::atan(data.Row(i)[3]);
  }
  const auto after =
      test::Sorted(ComputeSkyline(warped, Opt(GetParam())).skyline);
  EXPECT_EQ(before, after);
}

TEST_P(SkylineProperties, AddingDominatedPointsChangesNothing) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 1000, 5, 7);
  const auto base =
      test::Sorted(ComputeSkyline(data, Opt(GetParam())).skyline);
  // Append clearly dominated points (everything shifted up by +10).
  std::vector<float> flat;
  for (size_t i = 0; i < data.count(); ++i) {
    for (int j = 0; j < data.dims(); ++j) flat.push_back(data.Row(i)[j]);
  }
  for (size_t i = 0; i < 200; ++i) {
    for (int j = 0; j < data.dims(); ++j) {
      flat.push_back(data.Row(i)[j] + 10.0f);
    }
  }
  Dataset extended = Dataset::FromRowMajor(data.dims(), flat);
  const auto got =
      test::Sorted(ComputeSkyline(extended, Opt(GetParam())).skyline);
  EXPECT_EQ(got, base);
}

TEST_P(SkylineProperties, UnionUpperBound) {
  // SKY(A ∪ B) ⊆ SKY(A) ∪ SKY(B) (as point sets).
  Dataset a = GenerateSynthetic(Distribution::kIndependent, 800, 4, 8);
  Dataset b = GenerateSynthetic(Distribution::kAnticorrelated, 800, 4, 9);
  std::vector<float> flat;
  for (size_t i = 0; i < a.count(); ++i) {
    for (int j = 0; j < 4; ++j) flat.push_back(a.Row(i)[j]);
  }
  for (size_t i = 0; i < b.count(); ++i) {
    for (int j = 0; j < 4; ++j) flat.push_back(b.Row(i)[j]);
  }
  Dataset u = Dataset::FromRowMajor(4, flat);
  const auto sky_u = ComputeSkyline(u, Opt(GetParam())).skyline;
  const auto sky_a = test::Sorted(ComputeSkyline(a, Opt(GetParam())).skyline);
  const auto sky_b = test::Sorted(ComputeSkyline(b, Opt(GetParam())).skyline);
  for (const PointId id : sky_u) {
    if (id < a.count()) {
      EXPECT_TRUE(std::binary_search(sky_a.begin(), sky_a.end(), id));
    } else {
      EXPECT_TRUE(std::binary_search(sky_b.begin(), sky_b.end(),
                                     static_cast<PointId>(id - a.count())));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Core, SkylineProperties,
                         ::testing::Values(Algorithm::kQFlow,
                                           Algorithm::kHybrid,
                                           Algorithm::kPSkyline,
                                           Algorithm::kBSkyTree,
                                           Algorithm::kPBSkyTree),
                         [](const auto& info) {
                           std::string name = AlgorithmName(info.param);
                           std::erase_if(
                               name,
                               [](char c) { return !std::isalnum(c); });
                           return name;
                         });

}  // namespace
}  // namespace sky
