// Copyright (c) SkyBench-NG contributors.
#include "data/working_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sky {
namespace {

TEST(WorkingSet, CopiesDatasetAndIds) {
  Dataset d = test::MakeDataset({{1, 2}, {3, 4}, {5, 6}});
  ThreadPool pool(2);
  WorkingSet ws = WorkingSet::FromDataset(d, pool);
  ASSERT_EQ(ws.count, 3u);
  EXPECT_EQ(ws.ids, (std::vector<PointId>{0, 1, 2}));
  EXPECT_EQ(ws.Row(2)[1], 6.0f);
}

TEST(WorkingSet, ComputeL1) {
  Dataset d = test::MakeDataset({{1, 2}, {3, 4}});
  ThreadPool pool(1);
  WorkingSet ws = WorkingSet::FromDataset(d, pool);
  ws.ComputeL1(pool);
  EXPECT_FLOAT_EQ(ws.l1[0], 3.0f);
  EXPECT_FLOAT_EQ(ws.l1[1], 7.0f);
}

TEST(WorkingSet, PermuteByReordersEverything) {
  Dataset d = test::MakeDataset({{1, 0}, {2, 0}, {3, 0}});
  ThreadPool pool(1);
  WorkingSet ws = WorkingSet::FromDataset(d, pool);
  ws.ComputeL1(pool);
  ws.masks = {10, 20, 30};
  ws.PermuteBy({2, 0, 1});
  EXPECT_EQ(ws.Row(0)[0], 3.0f);
  EXPECT_EQ(ws.ids, (std::vector<PointId>{2, 0, 1}));
  EXPECT_FLOAT_EQ(ws.l1[0], 3.0f);
  EXPECT_EQ(ws.masks, (std::vector<Mask>{30, 10, 20}));
}

TEST(WorkingSet, CompressRangeDropsFlagged) {
  Dataset d = test::MakeDataset({{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}});
  ThreadPool pool(1);
  WorkingSet ws = WorkingSet::FromDataset(d, pool);
  ws.ComputeL1(pool);
  // Compress the middle range [1, 4): drop offsets 0 and 2 of the range.
  const uint8_t flags[] = {1, 0, 1};
  const size_t kept = ws.CompressRange(1, 4, flags);
  EXPECT_EQ(kept, 1u);
  EXPECT_EQ(ws.Row(1)[0], 3.0f);  // survivor shifted to range start
  EXPECT_EQ(ws.ids[1], 2u);
  EXPECT_EQ(ws.Row(4)[0], 5.0f);  // outside the range: untouched
}

TEST(WorkingSet, CompressRangeAllSurviveOrAllDie) {
  Dataset d = test::MakeDataset({{1, 0}, {2, 0}});
  ThreadPool pool(1);
  WorkingSet ws = WorkingSet::FromDataset(d, pool);
  const uint8_t none[] = {0, 0};
  EXPECT_EQ(ws.CompressRange(0, 2, none), 2u);
  const uint8_t all[] = {1, 1};
  EXPECT_EQ(ws.CompressRange(0, 2, all), 0u);
}

}  // namespace
}  // namespace sky
