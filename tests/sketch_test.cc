// Copyright (c) SkyBench-NG contributors.
// Deterministic unit tests for the dataset statistics sketch: moments,
// correlation sign, the log-sampling skyline estimate, and the
// quantile-based selectivity estimator.
#include "data/sketch.h"

#include <cmath>

#include "data/generator.h"
#include "gtest/gtest.h"

namespace sky::test {
namespace {

Dataset Grid2D(size_t n, bool anticorrelated) {
  std::vector<Value> vals;
  vals.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) {
    const Value x = static_cast<Value>(i) / static_cast<Value>(n);
    vals.push_back(x);
    vals.push_back(anticorrelated ? 1.0f - x : x);
  }
  return Dataset::FromRowMajor(2, vals);
}

TEST(SketchTest, MomentsMatchSmallDataset) {
  // n below every sample cap: the sketch sees all rows, so min/max are
  // exact and mean/variance match the closed forms.
  const Dataset data = Grid2D(100, /*anticorrelated=*/false);
  const StatsSketch sk = ComputeSketch(data);
  ASSERT_EQ(sk.n, 100u);
  ASSERT_EQ(sk.d, 2);
  ASSERT_EQ(sk.dims.size(), 2u);
  EXPECT_FLOAT_EQ(sk.dims[0].min, 0.0f);
  EXPECT_FLOAT_EQ(sk.dims[0].max, 0.99f);
  EXPECT_NEAR(sk.dims[0].mean, 0.495, 1e-5);
  // Var of uniform {0, .01, ..., .99}: (k^2-1)/12 * step^2, k=100.
  EXPECT_NEAR(sk.dims[0].variance, (100.0 * 100.0 - 1.0) / 12.0 * 1e-4, 1e-4);
}

TEST(SketchTest, SpearmanSignTracksCorrelation) {
  const StatsSketch corr =
      ComputeSketch(Grid2D(500, /*anticorrelated=*/false));
  const StatsSketch anti = ComputeSketch(Grid2D(500, /*anticorrelated=*/true));
  EXPECT_GT(corr.mean_spearman, 0.95);
  EXPECT_LT(anti.mean_spearman, -0.95);
}

TEST(SketchTest, SkylineEstimateExactWhenSampleCoversData) {
  // Perfectly anticorrelated 2-d data: every point is on the skyline.
  const Dataset anti = Grid2D(400, /*anticorrelated=*/true);
  const StatsSketch sk = ComputeSketch(anti);
  EXPECT_DOUBLE_EQ(sk.est_skyline, 400.0);
  // Perfectly correlated: only the origin survives.
  const StatsSketch corr = ComputeSketch(Grid2D(400, false));
  EXPECT_DOUBLE_EQ(corr.est_skyline, 1.0);
}

TEST(SketchTest, SkylineEstimateOrdersDistributions) {
  const size_t n = 20'000;  // large enough to force extrapolation
  const int d = 6;
  const StatsSketch anti = ComputeSketch(
      GenerateSynthetic(Distribution::kAnticorrelated, n, d, 7));
  const StatsSketch indep =
      ComputeSketch(GenerateSynthetic(Distribution::kIndependent, n, d, 7));
  const StatsSketch corr =
      ComputeSketch(GenerateSynthetic(Distribution::kCorrelated, n, d, 7));
  EXPECT_GT(anti.est_skyline, indep.est_skyline);
  EXPECT_GT(indep.est_skyline, corr.est_skyline);
  for (const StatsSketch* sk : {&anti, &indep, &corr}) {
    EXPECT_GE(sk->est_skyline, 1.0);
    EXPECT_LE(sk->est_skyline, static_cast<double>(n));
    EXPECT_GE(sk->growth_exponent, 0.0);
    EXPECT_LE(sk->growth_exponent, 1.0);
  }
}

TEST(SketchTest, EstimateSkylineAtIsMonotoneAndClamped) {
  const StatsSketch sk = ComputeSketch(
      GenerateSynthetic(Distribution::kIndependent, 20'000, 5, 3));
  EXPECT_LE(sk.EstimateSkylineAt(1'000), sk.EstimateSkylineAt(10'000));
  EXPECT_LE(sk.EstimateSkylineAt(10'000), sk.EstimateSkylineAt(20'000));
  EXPECT_GE(sk.EstimateSkylineAt(0.0), 0.0);
  EXPECT_LE(sk.EstimateSkylineAt(2.0), 2.0);
}

TEST(SketchTest, SelectivityEstimatorTracksUniformIntervals) {
  const Dataset data =
      GenerateSynthetic(Distribution::kIndependent, 8'000, 4, 11);
  const StatsSketch sk = ComputeSketch(data);
  EXPECT_NEAR(sk.EstimateIntervalSelectivity(0, 0.0f, 1.0f), 1.0, 0.01);
  EXPECT_NEAR(sk.EstimateIntervalSelectivity(1, 0.0f, 0.5f), 0.5, 0.1);
  EXPECT_NEAR(sk.EstimateIntervalSelectivity(2, 0.25f, 0.75f), 0.5, 0.1);
  EXPECT_DOUBLE_EQ(sk.EstimateIntervalSelectivity(3, 2.0f, 3.0f), 0.0);
  // Out-of-range dimensions never prune.
  EXPECT_DOUBLE_EQ(sk.EstimateIntervalSelectivity(99, 0.0f, 0.1f), 1.0);
}

TEST(SketchTest, DeterministicInSeed) {
  const Dataset data =
      GenerateSynthetic(Distribution::kAnticorrelated, 10'000, 5, 13);
  const StatsSketch a = ComputeSketch(data, 42);
  const StatsSketch b = ComputeSketch(data, 42);
  EXPECT_DOUBLE_EQ(a.est_skyline, b.est_skyline);
  EXPECT_DOUBLE_EQ(a.mean_spearman, b.mean_spearman);
  EXPECT_DOUBLE_EQ(a.growth_exponent, b.growth_exponent);
}

TEST(SketchTest, EmptyAndTinyDatasets) {
  const StatsSketch empty = ComputeSketch(Dataset(3, 0));
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.EstimateIntervalSelectivity(0, 0.0f, 1.0f), 1.0);
  EXPECT_DOUBLE_EQ(empty.EstimateSkylineAt(0.0), 0.0);

  const StatsSketch one = ComputeSketch(Grid2D(1, false));
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.est_skyline, 1.0);
}

}  // namespace
}  // namespace sky::test
