// Copyright (c) SkyBench-NG contributors.
// Concurrency stress: the parallel algorithms use flag-only writes during
// their parallel phases and benign read races for early pruning. These
// tests hammer the racy paths (tiny blocks, many threads, repeated runs)
// and assert the result is identical every time — the algorithms must be
// deterministic in their OUTPUT even though their schedules are not.
#include <gtest/gtest.h>

#include "core/skyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

class ConcurrencyStress : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ConcurrencyStress, RepeatedRunsIdenticalUnderContention) {
  // Small α forces many synchronization rounds; 8 threads on 1-4 cores
  // maximises interleaving diversity.
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 4000, 7, 99);
  Options o;
  o.algorithm = GetParam();
  o.threads = 8;
  o.alpha = 64;
  const auto first = test::Sorted(ComputeSkyline(data, o).skyline);
  EXPECT_EQ(first, test::Sorted(test::ReferenceSkyline(data)));
  for (int run = 0; run < 8; ++run) {
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, o).skyline), first)
        << AlgorithmName(GetParam()) << " run " << run;
  }
}

TEST_P(ConcurrencyStress, ManyTinyBlocksManyThreads) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 10, 77);
  Options o;
  o.algorithm = GetParam();
  o.threads = 16;
  o.alpha = 8;  // 250 blocks of 8 points across 16 threads
  EXPECT_EQ(test::Sorted(ComputeSkyline(data, o).skyline),
            test::Sorted(test::ReferenceSkyline(data)))
      << AlgorithmName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Parallel, ConcurrencyStress,
                         ::testing::Values(Algorithm::kQFlow,
                                           Algorithm::kHybrid,
                                           Algorithm::kPSkyline,
                                           Algorithm::kAPSkyline,
                                           Algorithm::kPsfs,
                                           Algorithm::kPBSkyTree),
                         [](const auto& info) {
                           std::string name = AlgorithmName(info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(c);
                           });
                           return name;
                         });

TEST(ConcurrencyStressPool, RepeatedPoolChurn) {
  // Creating and destroying pools rapidly (each ComputeSkyline makes its
  // own) must not leak or deadlock.
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 500, 4, 5);
  Options o;
  o.algorithm = Algorithm::kHybrid;
  o.threads = 4;
  const auto expect = test::Sorted(test::ReferenceSkyline(data));
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, o).skyline), expect);
  }
}

}  // namespace
}  // namespace sky
