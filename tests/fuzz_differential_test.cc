// Copyright (c) SkyBench-NG contributors.
// Randomized differential testing: many small random configurations
// (size, dimensionality, distribution, value quantisation, sign flips,
// thread count, block size) — every algorithm must match the independent
// brute-force oracle on all of them. Catches interaction bugs the
// structured parameter sweeps miss.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/skyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

constexpr Algorithm kAll[] = {
    Algorithm::kBnl,       Algorithm::kSfs,      Algorithm::kLess,
    Algorithm::kSalsa,     Algorithm::kSSkyline, Algorithm::kPSkyline,
    Algorithm::kAPSkyline,
    Algorithm::kPsfs,      Algorithm::kQFlow,    Algorithm::kHybrid,
    Algorithm::kBSkyTree,  Algorithm::kBSkyTreeS, Algorithm::kOsp,
    Algorithm::kPBSkyTree,
};

Dataset RandomConfigDataset(Rng& rng, std::string* description) {
  const size_t n = 1 + rng.NextBounded(500);
  const int d = 1 + static_cast<int>(rng.NextBounded(16));
  const auto dist = static_cast<Distribution>(rng.NextBounded(3));
  Dataset data = GenerateSynthetic(dist, n, d, rng.Next());
  // Random post-processing: quantise (duplicates), scale, negate dims.
  const bool quantise = rng.NextBounded(2) == 0;
  const int levels = 2 + static_cast<int>(rng.NextBounded(14));
  for (int j = 0; j < d; ++j) {
    const float scale = rng.NextBounded(2) ? 1.0f : (0.01f + 1000.0f *
                                                     rng.NextFloat());
    const float sign = rng.NextBounded(4) == 0 ? -1.0f : 1.0f;
    for (size_t i = 0; i < n; ++i) {
      float v = data.Row(i)[j];
      if (quantise) v = std::floor(v * levels) / levels;
      data.MutableRow(i)[j] = sign * scale * v;
    }
  }
  *description = std::string(DistributionName(dist)) + " n=" +
                 std::to_string(n) + " d=" + std::to_string(d) +
                 (quantise ? " quantised" : "");
  return data;
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, AllAlgorithmsMatchOracle) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  std::string description;
  Dataset data = RandomConfigDataset(rng, &description);
  const auto expect = test::Sorted(test::ReferenceSkyline(data));
  for (const Algorithm algo : kAll) {
    Options o;
    o.algorithm = algo;
    o.threads = 1 + static_cast<int>(rng.NextBounded(6));
    o.alpha = rng.NextBounded(2) ? 0 : 1 + rng.NextBounded(700);
    o.pivot = static_cast<PivotPolicy>(rng.NextBounded(5));
    o.prefilter_beta = static_cast<int>(rng.NextBounded(17));
    o.use_simd = rng.NextBounded(2) == 0;
    o.seed = rng.Next();
    ASSERT_EQ(test::Sorted(ComputeSkyline(data, o).skyline), expect)
        << AlgorithmName(algo) << " on {" << description
        << "} threads=" << o.threads << " alpha=" << o.alpha
        << " pivot=" << PivotPolicyName(o.pivot)
        << " beta=" << o.prefilter_beta << " simd=" << o.use_simd;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace sky
