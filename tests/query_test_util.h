// Copyright (c) SkyBench-NG contributors.
// Independent brute-force oracle for the query engine: evaluates a
// QuerySpec's semantics (constraints, preference dominance, band depth,
// top-k ranking) directly on the original dataset, sharing no code with
// the rewriter/engine under test.
#ifndef SKY_TESTS_QUERY_TEST_UTIL_H_
#define SKY_TESTS_QUERY_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "data/dataset.h"
#include "query/query_spec.h"

namespace sky::test {

struct OracleEntry {
  PointId id = 0;
  uint32_t dominators = 0;

  friend bool operator==(const OracleEntry&, const OracleEntry&) = default;
};

/// All points of `data` that satisfy every constraint and have fewer than
/// band_k dominators under the preference dominance of `spec`; when
/// spec.top_k > 0 the result is ranked by (dominators asc, score asc, id
/// asc) and truncated, otherwise sorted by id.
inline std::vector<OracleEntry> ReferenceQuery(const Dataset& data,
                                               const QuerySpec& spec) {
  const int d = data.dims();
  std::vector<Preference> prefs = spec.preferences;
  prefs.resize(static_cast<size_t>(d), Preference::kMin);

  // Candidate rows: inside every constraint box (closed intervals on
  // original values, ignored dimensions included).
  std::vector<PointId> cand;
  for (size_t i = 0; i < data.count(); ++i) {
    bool ok = true;
    for (const DimConstraint& c : spec.constraints) {
      const Value v = data.Row(i)[c.dim];
      ok &= (v >= c.lo && v <= c.hi);
    }
    if (ok) cand.push_back(static_cast<PointId>(i));
  }

  // p dominates q iff p is at least as good on every non-ignored
  // dimension and strictly better on one ("good" per the preference).
  const auto dominates = [&](const Value* p, const Value* q) {
    bool some_better = false;
    for (int j = 0; j < d; ++j) {
      switch (prefs[static_cast<size_t>(j)]) {
        case Preference::kMin:
          if (p[j] > q[j]) return false;
          some_better |= p[j] < q[j];
          break;
        case Preference::kMax:
          if (p[j] < q[j]) return false;
          some_better |= p[j] > q[j];
          break;
        case Preference::kIgnore:
          break;
      }
    }
    return some_better;
  };

  std::vector<OracleEntry> out;
  for (const PointId qi : cand) {
    uint32_t count = 0;
    for (const PointId pi : cand) {
      if (pi != qi && dominates(data.Row(pi), data.Row(qi))) ++count;
    }
    if (count < spec.band_k) {
      out.push_back(OracleEntry{qi, count});
    }
  }

  if (spec.top_k > 0) {
    // Score: the view-coordinate sum — original values, MAX negated,
    // accumulated in ascending kept-dimension order (float-exact match
    // with ViewRowScore on the materialized view).
    const auto score = [&](PointId id) {
      const Value* row = data.Row(id);
      Value sum = 0;
      for (int j = 0; j < d; ++j) {
        if (prefs[static_cast<size_t>(j)] == Preference::kMin) sum += row[j];
        if (prefs[static_cast<size_t>(j)] == Preference::kMax) sum += -row[j];
      }
      return sum;
    };
    std::sort(out.begin(), out.end(),
              [&](const OracleEntry& a, const OracleEntry& b) {
                if (a.dominators != b.dominators) {
                  return a.dominators < b.dominators;
                }
                const Value sa = score(a.id), sb = score(b.id);
                if (sa != sb) return sa < sb;
                return a.id < b.id;
              });
    if (out.size() > spec.top_k) out.resize(spec.top_k);
  }
  return out;
}

}  // namespace sky::test

#endif  // SKY_TESTS_QUERY_TEST_UTIL_H_
