// Copyright (c) SkyBench-NG contributors.
// Structural checks for the real-dataset stand-ins (paper Table I).
#include "data/realistic.h"

#include <gtest/gtest.h>

#include <set>

#include "core/skyline.h"
#include "test_util.h"

namespace sky {
namespace {

double SkylineFraction(const Dataset& data) {
  Options o;
  o.algorithm = Algorithm::kBSkyTree;
  Result r = ComputeSkyline(data, o);
  return static_cast<double>(r.skyline.size()) /
         static_cast<double>(data.count());
}

size_t DistinctValues(const Dataset& data, int dim) {
  std::set<float> vals;
  for (size_t i = 0; i < data.count(); ++i) vals.insert(data.Row(i)[dim]);
  return vals.size();
}

TEST(Realistic, NbaLikeShape) {
  Dataset d = GenerateNbaLike(4000, 1);
  EXPECT_EQ(d.dims(), 8);
  EXPECT_EQ(d.count(), 4000u);
  // Duplicated values: the distinct value condition must fail.
  EXPECT_LT(DistinctValues(d, 0), d.count() / 4);
}

TEST(Realistic, HouseLikeShape) {
  Dataset d = GenerateHouseLike(4000, 1);
  EXPECT_EQ(d.dims(), 6);
  EXPECT_LT(DistinctValues(d, 0), d.count());
}

TEST(Realistic, WeatherLikeShape) {
  Dataset d = GenerateWeatherLike(4000, 1);
  EXPECT_EQ(d.dims(), 15);
  EXPECT_LT(DistinctValues(d, 0), 64u) << "weather grid is coarse";
}

TEST(Realistic, FullSizesMatchTableOne) {
  // Generate just the headers' cardinality cheaply (structure only).
  EXPECT_EQ(GenerateNbaLike(17264, 2).count(), 17264u);
}

TEST(Realistic, SkylineFractionsApproximateTableOne) {
  // Table I: NBA 10.4%, House 4.51%, Weather 11.2%. Loose bands — the
  // stand-ins only need the right regime at reduced scale.
  const double nba = SkylineFraction(GenerateNbaLike(8000, 3));
  EXPECT_GT(nba, 0.02);
  EXPECT_LT(nba, 0.35);
  const double house = SkylineFraction(GenerateHouseLike(8000, 3));
  EXPECT_GT(house, 0.005);
  EXPECT_LT(house, 0.25);
}

TEST(Realistic, AllAlgorithmsAgreeOnDuplicateHeavyStandIn) {
  Dataset d = GenerateNbaLike(2500, 4);
  const auto expect = test::Sorted(test::ReferenceSkyline(d));
  for (const Algorithm algo :
       {Algorithm::kHybrid, Algorithm::kQFlow, Algorithm::kPSkyline,
        Algorithm::kBSkyTree, Algorithm::kPBSkyTree, Algorithm::kSalsa}) {
    Options o;
    o.algorithm = algo;
    o.threads = 2;
    ASSERT_EQ(test::Sorted(ComputeSkyline(d, o).skyline), expect)
        << AlgorithmName(algo);
  }
}

}  // namespace
}  // namespace sky
