// Copyright (c) SkyBench-NG contributors.
// Guards the build-system contract: the generated version header, the
// SIMD padding invariants the CMake subsystem promises the kernels, and
// the runtime/compile-time AVX2 gating relationship.
#include <gtest/gtest.h>

#include <cstring>

#include "common/types.h"
#include "common/version.h"
#include "data/dataset.h"
#include "dominance/dominance.h"

namespace sky {
namespace {

TEST(BuildConfigTest, VersionHeaderIsConfigured) {
  // configure_file must have substituted every placeholder.
  EXPECT_GE(kVersionMajor, 0);
  EXPECT_GE(kVersionMinor, 0);
  EXPECT_GE(kVersionPatch, 0);
  EXPECT_GT(std::strlen(kVersionString), 0u);
  EXPECT_EQ(std::strchr(kVersionString, '@'), nullptr);
  EXPECT_EQ(std::strchr(kBuildType, '@'), nullptr);
}

TEST(BuildConfigTest, StrideIsSimdPaddedForAllDims) {
  for (int d = 1; d <= kMaxDims; ++d) {
    const int stride = Dataset::StrideFor(d);
    EXPECT_GE(stride, d) << "d=" << d;
    EXPECT_EQ(stride % kSimdWidth, 0) << "d=" << d;
  }
}

TEST(BuildConfigTest, CpuAvx2ImpliesKernelsCompiledIn) {
  // CpuHasAvx2() must never report true unless the AVX2 translation unit
  // was actually built with the vector kernels; DomCtx relies on this to
  // dispatch safely.
  if (!kBuildHasAvx2) {
    EXPECT_FALSE(CpuHasAvx2());
  }
  DomCtx dom(4, Dataset::StrideFor(4), /*use_simd=*/true);
  EXPECT_EQ(dom.simd(), CpuHasAvx2());
}

TEST(BuildConfigTest, PaddingLanesAreZeroInitialised) {
  // The CMake-visible promise AlignedBuffer makes to the SIMD kernels:
  // lanes beyond dims() compare equal (zero) and never flip a verdict.
  Dataset data(3, 4);
  for (size_t i = 0; i < data.count(); ++i) {
    const Value* row = data.Row(i);
    for (int j = data.dims(); j < data.stride(); ++j) {
      EXPECT_EQ(row[j], 0.0f) << "row " << i << " lane " << j;
    }
  }
}

}  // namespace
}  // namespace sky
