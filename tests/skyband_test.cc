// Copyright (c) SkyBench-NG contributors.
#include "core/skyband.h"

#include <gtest/gtest.h>

#include <map>

#include "core/skyline.h"
#include "data/generator.h"
#include "test_util.h"

namespace sky {
namespace {

/// Brute-force oracle: exact dominator counts for every point.
std::map<PointId, uint32_t> BruteForceCounts(const Dataset& data) {
  std::map<PointId, uint32_t> counts;
  const int d = data.dims();
  for (size_t i = 0; i < data.count(); ++i) {
    uint32_t c = 0;
    for (size_t j = 0; j < data.count(); ++j) {
      if (i == j) continue;
      const Value* p = data.Row(j);
      const Value* q = data.Row(i);
      bool all_le = true, some_lt = false;
      for (int k = 0; k < d; ++k) {
        all_le &= p[k] <= q[k];
        some_lt |= p[k] < q[k];
      }
      c += all_le && some_lt;
    }
    counts[static_cast<PointId>(i)] = c;
  }
  return counts;
}

TEST(Skyband, KOneEqualsSkyline) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 2000, 5, 3);
  Options o;
  o.threads = 3;
  const SkybandResult band = ComputeSkyband(data, 1, o);
  Options sky_opts;
  sky_opts.algorithm = Algorithm::kBnl;
  const Result sky = ComputeSkyline(data, sky_opts);
  EXPECT_EQ(test::Sorted(band.skyband), test::Sorted(sky.skyline));
  for (const uint32_t c : band.dominator_counts) EXPECT_EQ(c, 0u);
}

class SkybandSweep
    : public ::testing::TestWithParam<std::tuple<Distribution, uint32_t, int>> {
};

TEST_P(SkybandSweep, MembershipAndCountsMatchBruteForce) {
  const auto [dist, k, threads] = GetParam();
  Dataset data = GenerateSynthetic(dist, 1500, 4, 17);
  const auto truth = BruteForceCounts(data);
  Options o;
  o.threads = threads;
  o.alpha = 128;  // many small blocks: stress the two-phase counting
  const SkybandResult band = ComputeSkyband(data, k, o);
  // Membership: exactly the points with < k dominators.
  std::vector<PointId> expect;
  for (const auto& [id, c] : truth) {
    if (c < k) expect.push_back(id);
  }
  ASSERT_EQ(test::Sorted(band.skyband), expect);
  // Counts: exact for members.
  for (size_t i = 0; i < band.skyband.size(); ++i) {
    ASSERT_EQ(band.dominator_counts[i], truth.at(band.skyband[i]))
        << "member " << band.skyband[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkybandSweep,
    ::testing::Combine(::testing::Values(Distribution::kCorrelated,
                                         Distribution::kIndependent,
                                         Distribution::kAnticorrelated),
                       ::testing::Values(1u, 2u, 3u, 8u),
                       ::testing::Values(1, 4)));

TEST(Skyband, DuplicatesDoNotDominateEachOther) {
  Dataset data = test::MakeDataset(
      {{1, 1}, {1, 1}, {2, 2}, {2, 2}, {3, 3}});
  // Dominator counts: the two (1,1) have 0; the two (2,2) have 2 (both
  // copies of (1,1)); (3,3) has 4.
  const SkybandResult k3 = ComputeSkyband(data, 3);
  EXPECT_EQ(test::Sorted(k3.skyband), (std::vector<PointId>{0, 1, 2, 3}));
  const SkybandResult k5 = ComputeSkyband(data, 5);
  EXPECT_EQ(k5.skyband.size(), 5u);
}

TEST(Skyband, GrowsMonotonicallyWithK) {
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 3000, 5, 23);
  size_t prev = 0;
  for (const uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    const size_t size = ComputeSkyband(data, k).skyband.size();
    EXPECT_GE(size, prev) << "k=" << k;
    prev = size;
  }
  EXPECT_EQ(ComputeSkyband(data, static_cast<uint32_t>(data.count()))
                .skyband.size(),
            data.count());
}

TEST(Skyband, EmptyInput) {
  Dataset data;
  EXPECT_TRUE(ComputeSkyband(data, 3).skyband.empty());
}

TEST(Skyband, ThreadCountInvariance) {
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 2500, 6, 29);
  Options one;
  one.threads = 1;
  const auto base = ComputeSkyband(data, 4, one);
  for (int t : {2, 8}) {
    Options o;
    o.threads = t;
    const auto got = ComputeSkyband(data, 4, o);
    EXPECT_EQ(test::Sorted(got.skyband), test::Sorted(base.skyband));
  }
}

}  // namespace
}  // namespace sky
