// Copyright (c) SkyBench-NG contributors.
// Trace tests (obs/trace.h): FormatSeconds scaling, TraceBuilder span
// recording and Render()'s indented tree, and the engine integration —
// span nesting/ordering on a sharded + constrained query, the two-span
// hit trace, and the invariant that cached results never carry the
// producer's trace.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "data/generator.h"
#include "query/engine.h"

namespace sky {
namespace {

using obs::FormatSeconds;
using obs::TraceBuilder;
using obs::TraceSpan;

TEST(FormatSecondsTest, PicksHumanScale) {
  EXPECT_EQ(FormatSeconds(0.0), "0ns");
  EXPECT_EQ(FormatSeconds(840e-9), "840ns");
  EXPECT_EQ(FormatSeconds(12.34e-6), "12.3us");
  EXPECT_EQ(FormatSeconds(1.52e-3), "1.52ms");
  EXPECT_EQ(FormatSeconds(2.0405), "2.041s");
}

TEST(TraceBuilderTest, RecordsSpansAndAttrs) {
  TraceBuilder tb;
  const int root = tb.Open("query");
  EXPECT_EQ(root, 0);
  const int child = tb.AddSpan("plan", root, 0.001, 0.002);
  tb.Attr(child, "merge", "union-filter");
  tb.AttrCount(child, "shards", 4);
  tb.Close(root);
  const auto trace = tb.Finish();
  ASSERT_EQ(trace->spans.size(), 2u);
  EXPECT_EQ(trace->spans[0].name, "query");
  EXPECT_EQ(trace->spans[0].parent, -1);
  EXPECT_GE(trace->spans[0].duration_seconds, 0.0);
  EXPECT_EQ(trace->spans[1].name, "plan");
  EXPECT_EQ(trace->spans[1].parent, 0);
  EXPECT_DOUBLE_EQ(trace->spans[1].start_seconds, 0.001);
  ASSERT_EQ(trace->spans[1].attrs.size(), 2u);
  EXPECT_EQ(trace->spans[1].attrs[0],
            (std::pair<std::string, std::string>{"merge", "union-filter"}));
  EXPECT_EQ(trace->spans[1].attrs[1],
            (std::pair<std::string, std::string>{"shards", "4"}));
}

TEST(TraceBuilderTest, NowIsMonotone) {
  TraceBuilder tb;
  const double a = tb.Now();
  const double b = tb.Now();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(RenderTest, IndentedTreeWithExactFormatting) {
  TraceBuilder tb;
  const int root = tb.AddSpan("query", -1, 0.0, 1.52e-3);
  tb.Attr(root, "dataset", "hotels");
  tb.AddSpan("plan", root, 0.0, 12.34e-6);
  const int shard = tb.AddSpan("shard[0]", root, 0.0, 840e-9);
  tb.AttrCount(shard, "rows", 42);
  EXPECT_EQ(tb.Finish()->Render(),
            "query 1.52ms dataset=hotels\n"
            "  plan 12.3us\n"
            "  shard[0] 840ns rows=42\n");
}

TEST(RenderTest, GrandchildrenIndentTwice) {
  TraceBuilder tb;
  const int a = tb.AddSpan("a", -1, 0.0, 0.0);
  const int b = tb.AddSpan("b", a, 0.0, 0.0);
  tb.AddSpan("c", b, 0.0, 0.0);
  tb.AddSpan("d", a, 0.0, 0.0);
  EXPECT_EQ(tb.Finish()->Render(),
            "a 0ns\n"
            "  b 0ns\n"
            "    c 0ns\n"
            "  d 0ns\n");
}

/// Index of the first span with `name`, or -1.
int FindSpan(const obs::QueryTrace& t, const std::string& name) {
  for (size_t i = 0; i < t.spans.size(); ++i) {
    if (t.spans[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

/// Value of attr `key` on span `idx`, or "" when absent.
std::string AttrOf(const obs::QueryTrace& t, int idx, const std::string& key) {
  for (const auto& [k, v] : t.spans[static_cast<size_t>(idx)].attrs) {
    if (k == key) return v;
  }
  return "";
}

TEST(EngineTraceTest, ShardedConstrainedQuerySpanTree) {
  SkylineEngine::Config config;
  config.auto_algorithm = true;
  SkylineEngine engine(config);
  engine.RegisterDataset(
      "pts",
      GenerateSynthetic(Distribution::kIndependent, 4000, 4, /*seed=*/11),
      /*shards=*/4, ShardPolicy::kMedianPivot);

  QuerySpec spec;
  spec.Constrain(0, 0.0f, 0.4f);
  Options opts;
  opts.trace = true;
  opts.threads = 2;
  opts.count_dts = true;
  const QueryResult r = engine.Execute("pts", spec, opts);

  ASSERT_NE(r.trace, nullptr);
  const obs::QueryTrace& t = *r.trace;
  ASSERT_FALSE(t.spans.empty());
  EXPECT_EQ(t.spans[0].name, "query");
  EXPECT_EQ(t.spans[0].parent, -1);
  EXPECT_EQ(AttrOf(t, 0, "dataset"), "pts");
  EXPECT_EQ(AttrOf(t, 0, "cache"), "miss");

  // Parents always precede their children in recording order.
  for (size_t i = 0; i < t.spans.size(); ++i) {
    EXPECT_LT(t.spans[i].parent, static_cast<int>(i));
  }

  // The plan stage comes first under the root and reports the pruning
  // decision; executed + pruned must cover the shard map.
  const int plan = FindSpan(t, "plan");
  ASSERT_GE(plan, 0);
  EXPECT_EQ(t.spans[static_cast<size_t>(plan)].parent, 0);
  EXPECT_EQ(AttrOf(t, plan, "shards"),
            std::to_string(r.shards_executed));
  EXPECT_EQ(AttrOf(t, plan, "pruned"), std::to_string(r.shards_pruned));
  EXPECT_EQ(r.shards_executed + r.shards_pruned, 4u);

  // One shard span per executed shard, each under the root, after the
  // plan span, and labeled with the algorithm it ran.
  size_t shard_spans = 0;
  for (size_t i = 0; i < t.spans.size(); ++i) {
    if (t.spans[i].name.rfind("shard[", 0) != 0) continue;
    ++shard_spans;
    EXPECT_EQ(t.spans[i].parent, 0);
    EXPECT_GT(static_cast<int>(i), plan);
    EXPECT_NE(AttrOf(t, static_cast<int>(i), "algo"), "");
    EXPECT_NE(AttrOf(t, static_cast<int>(i), "dom_tests"), "");
  }
  EXPECT_EQ(shard_spans, r.shards_executed);

  // Multi-shard plans merge after the last shard span; the result lands
  // in the cache through a cache.put span.
  if (r.shards_executed > 1) {
    const int merge = FindSpan(t, "merge");
    ASSERT_GE(merge, 0);
    EXPECT_EQ(t.spans[static_cast<size_t>(merge)].parent, 0);
    EXPECT_NE(AttrOf(t, merge, "strategy"), "");
  }
  const int put = FindSpan(t, "cache.put");
  ASSERT_GE(put, 0);
  EXPECT_EQ(t.spans[static_cast<size_t>(put)].parent, 0);

  // Render() yields the root line unindented and children at depth one.
  const std::string rendered = t.Render();
  EXPECT_EQ(rendered.rfind("query ", 0), 0u);
  EXPECT_NE(rendered.find("\n  plan "), std::string::npos);

  // A repeat of the same query is served from the result cache with a
  // fresh two-span hit trace, not the producer's tree.
  const QueryResult hit = engine.Execute("pts", spec, opts);
  EXPECT_TRUE(hit.cache_hit);
  ASSERT_NE(hit.trace, nullptr);
  ASSERT_EQ(hit.trace->spans.size(), 2u);
  EXPECT_EQ(hit.trace->spans[0].name, "query");
  EXPECT_EQ(AttrOf(*hit.trace, 0, "cache"), "hit");
  EXPECT_EQ(hit.trace->spans[1].name, "cache.get");

  // Tracing stays strictly opt-in: an untraced repeat of a cached query
  // carries no trace (the cache never stored one).
  Options quiet = opts;
  quiet.trace = false;
  const QueryResult untraced = engine.Execute("pts", spec, quiet);
  EXPECT_TRUE(untraced.cache_hit);
  EXPECT_EQ(untraced.trace, nullptr);
}

TEST(EngineTraceTest, UnshardedIdentityQueryTracesExecuteStage) {
  SkylineEngine engine;
  engine.RegisterDataset(
      "flat", GenerateSynthetic(Distribution::kAnticorrelated, 500, 3,
                                /*seed=*/3));
  Options opts;
  opts.trace = true;
  const QueryResult r = engine.Execute("flat", QuerySpec{}, opts);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.trace->spans[0].name, "query");
  EXPECT_GE(FindSpan(*r.trace, "execute"), 0);

  Options quiet;
  const QueryResult untraced =
      engine.Execute("flat", QuerySpec{}, quiet);
  EXPECT_EQ(untraced.trace, nullptr);
}

}  // namespace
}  // namespace sky
