// Copyright (c) SkyBench-NG contributors.
#include "data/sorting.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "data/generator.h"
#include "data/partition.h"
#include "dominance/dominance.h"
#include "test_util.h"

namespace sky {
namespace {

WorkingSet MakeWs(const Dataset& data, ThreadPool& pool) {
  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  ws.ComputeL1(pool);
  return ws;
}

class SortThreads : public ::testing::TestWithParam<int> {};

TEST_P(SortThreads, L1OrderIsNonDecreasing) {
  ThreadPool pool(GetParam());
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 5000, 5, 3);
  WorkingSet ws = MakeWs(data, pool);
  SortByL1(ws, pool);
  EXPECT_TRUE(IsSortedByL1(ws));
  // Rows, ids and l1 must stay consistent after the permutation.
  for (size_t i = 0; i < ws.count; ++i) {
    float acc = 0;
    for (int j = 0; j < ws.dims; ++j) acc += ws.Row(i)[j];
    ASSERT_FLOAT_EQ(acc, ws.l1[i]);
    ASSERT_FLOAT_EQ(acc, [&] {
      float a = 0;
      for (int j = 0; j < data.dims(); ++j) a += data.Row(ws.ids[i])[j];
      return a;
    }());
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SortThreads, ::testing::Values(1, 2, 4));

TEST(Sorting, L1SortGuaranteesNoBackwardDominance) {
  // Paper §V-A: if p precedes q in the sort order, q cannot dominate p.
  ThreadPool pool(2);
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 1500, 4, 8);
  WorkingSet ws = MakeWs(data, pool);
  SortByL1(ws, pool);
  DomCtx dom(ws.dims, ws.stride, true);
  for (size_t i = 0; i < ws.count; i += 7) {
    for (size_t j = i + 1; j < ws.count; j += 13) {
      ASSERT_FALSE(dom.Dominates(ws.Row(j), ws.Row(i)))
          << "successor " << j << " dominates predecessor " << i;
    }
  }
}

TEST(Sorting, CompositeSortOrdersByLevelMaskThenL1) {
  ThreadPool pool(2);
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 3000, 6, 5);
  WorkingSet ws = MakeWs(data, pool);
  const auto pivot = SelectPivot(ws, PivotPolicy::kMedian, pool, 0);
  DomCtx dom(ws.dims, ws.stride, true);
  AssignMasks(ws, pivot.data(), dom, pool);
  SortByMaskThenL1(ws, pool);
  for (size_t i = 1; i < ws.count; ++i) {
    const uint32_t ka = CompositeMaskKey(ws.masks[i - 1], ws.dims);
    const uint32_t kb = CompositeMaskKey(ws.masks[i], ws.dims);
    ASSERT_LE(ka, kb) << "composite key order violated at " << i;
    if (ka == kb) {
      ASSERT_LE(ws.l1[i - 1], ws.l1[i]) << "L1 tiebreak violated at " << i;
    }
  }
}

TEST(Sorting, CompositeSortKeepsNoBackwardDominance) {
  // The composite order must preserve the Q-Flow invariant: a successor
  // never dominates a predecessor (needed for block-append correctness).
  ThreadPool pool(2);
  Dataset data = GenerateSynthetic(Distribution::kAnticorrelated, 1200, 5, 6);
  WorkingSet ws = MakeWs(data, pool);
  const auto pivot = SelectPivot(ws, PivotPolicy::kMedian, pool, 0);
  DomCtx dom(ws.dims, ws.stride, true);
  AssignMasks(ws, pivot.data(), dom, pool);
  SortByMaskThenL1(ws, pool);
  for (size_t i = 0; i < ws.count; i += 5) {
    for (size_t j = i + 1; j < ws.count; j += 11) {
      ASSERT_FALSE(dom.Dominates(ws.Row(j), ws.Row(i)));
    }
  }
}

TEST(Sorting, MinCoordOrderForSalsa) {
  ThreadPool pool(1);
  Dataset data = GenerateSynthetic(Distribution::kIndependent, 2000, 3, 4);
  WorkingSet ws = MakeWs(data, pool);
  SortByMinCoord(ws, pool);
  const auto min_of = [&](size_t i) {
    float mn = ws.Row(i)[0];
    for (int j = 1; j < ws.dims; ++j) mn = std::min(mn, ws.Row(i)[j]);
    return mn;
  };
  for (size_t i = 1; i < ws.count; ++i) {
    ASSERT_LE(min_of(i - 1), min_of(i));
  }
}

TEST(Sorting, EmptyAndSingleton) {
  ThreadPool pool(2);
  Dataset single = test::MakeDataset({{1, 2}});
  WorkingSet ws = MakeWs(single, pool);
  SortByL1(ws, pool);
  EXPECT_EQ(ws.count, 1u);
  EXPECT_EQ(ws.ids[0], 0u);
}

}  // namespace
}  // namespace sky
