// Copyright (c) SkyBench-NG contributors.
// skybench — command-line front end for the library, in the spirit of the
// paper's released SkyBench suite: run any implemented algorithm on a
// generated or loaded dataset and report timing, phase breakdown and
// dominance-test counts.
//
// Examples:
//   skybench --algo=hybrid --dist=anti --n=1000000 --d=12 --threads=16
//   skybench --algo=qflow --input=points.csv --alpha=8192 --stats
//   skybench --algo=all --dist=indep --n=100000 --d=8 --verify
//
// Query-engine flags (any of them routes the run through SkylineEngine):
//   skybench --dist=house --n=50000 --minmax=min,max,min,min,max,min
//   skybench --input=points.csv --project=0,2,5 --constrain=0:0.1:0.9
//   skybench --algo=qflow --dist=anti --kband=3 --topk=10
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/version.h"
#include "core/algorithm_registry.h"
#include "core/skyline.h"
#include "data/generator.h"
#include "data/realistic.h"
#include "dominance/dominance.h"
#include "obs/export.h"
#include "query/engine.h"
#include "query/shard_map.h"

namespace sky {
namespace {

struct CliArgs {
  std::string algo = "hybrid";
  std::string dist = "indep";
  std::string input;      // CSV or binary path; overrides generation
  std::string format = "auto";  // input parsing: auto|csv|bin
  std::string output;     // write result rows; *.bin selects SaveBinary
  size_t n = 100'000;
  int d = 8;
  int threads = 0;
  size_t alpha = 0;
  size_t block_rows = 0;  // zonemap block size (0 = default 256)
  std::string pivot = "median";
  uint64_t seed = 42;
  bool no_simd = false;
  bool no_batch = false;
  bool stats = false;
  bool verify = false;
  // Query-engine surface; any non-default value routes through the engine.
  std::string minmax;     // per-dim preference list, e.g. "min,max,ignore"
  std::string project;    // keep-list of dimension indices, e.g. "0,2,5"
  std::string constrain;  // box constraints, e.g. "1:0.2:0.8,3:*:0.5"
  uint32_t kband = 1;     // band depth (1 = skyline)
  size_t topk = 0;        // ranked result cap (0 = all)
  size_t shards = 1;      // engine shard count (1 = unsharded)
  std::string shard_policy = "rr";  // rr|median
  int executor_threads = 0;  // engine shared-executor width (0 = hardware)
  std::string insert_csv;  // rows to InsertPoints after registration
  std::string delete_ids;  // ids to DeletePoints after registration
  // Robust serving: deadline applies to both paths; the admission /
  // serve-stale knobs are engine config. --failpoint specs are armed
  // directly at parse time (process-wide registry).
  double deadline_ms = 0;  // per-query wall-clock budget (0 = none)
  int max_inflight = 0;    // engine admission cap (0 = unlimited)
  bool serve_stale = false;  // answer shed/timed-out queries from
                             // expired cache entries, marked stale
  bool trace = false;      // print the per-query span tree
  std::string stats_json;  // write the engine metrics snapshot as JSON
  std::string stats_prom;  // write it as Prometheus text exposition

  bool UsesQueryEngine() const {
    return !minmax.empty() || !project.empty() || !constrain.empty() ||
           kband != 1 || topk != 0 || shards > 1 || !insert_csv.empty() ||
           !delete_ids.empty() || trace || !stats_json.empty() ||
           !stats_prom.empty() || max_inflight != 0 || serve_stale;
  }
};

[[noreturn]] void Version() {
  std::printf("skybench %s (%s build, AVX2 kernels %s, cpu avx2 %s)\n",
              kVersionString, kBuildType[0] != '\0' ? kBuildType : "unknown",
              kBuildHasAvx2 ? "compiled" : "absent",
              CpuHasAvx2() ? "yes" : "no");
  std::exit(0);
}

[[noreturn]] void Usage(int exit_code = 2) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: skybench [options]\n"
      "  --algo=NAME      bnl|sfs|less|salsa|sskyline|pskyline|psfs|qflow|\n"
      "                   hybrid|bskytree|pbskytree|zonemap|all\n"
      "                   (default hybrid)\n"
      "                   auto = cost-model selection per query and shard\n"
      "  --dist=NAME      corr|indep|anti|nba|house|weather  (default indep)\n"
      "  --n=N --d=D      generated workload size             (1e5 x 8)\n"
      "  --input=PATH     load CSV or binary snapshot instead of generating\n"
      "  --format=NAME    input format: auto|csv|bin     (default auto:\n"
      "                   sniff the binary magic, else CSV)\n"
      "  --output=PATH    write result points (*.bin = binary snapshot,\n"
      "                   else CSV)\n"
      "  --threads=T      0 = all hardware threads\n"
      "  --alpha=A        block size (0 = paper default)\n"
      "  --block-rows=N   rows per zonemap block for --algo=zonemap\n"
      "                   (0 = default 256)\n"
      "  --pivot=NAME     median|balanced|manhattan|volume|random\n"
      "  --seed=S         generator / random pivot seed\n"
      "  --no-simd        scalar dominance kernels\n"
      "  --no-batch       one-vs-one window scans (disable SoA tile kernels)\n"
      "  --stats          print the phase breakdown\n"
      "  --verify         cross-check against the BNL oracle\n"
      "query engine (any of these routes the run through SkylineEngine):\n"
      "  --minmax=LIST    per-dim preference: min|max|ignore (or -,+,_)\n"
      "  --project=LIST   keep only these dimension indices, e.g. 0,2,5\n"
      "  --constrain=SPEC box constraints DIM:LO:HI[,...]; * = unbounded\n"
      "  --kband=K        k-skyband: points with < K dominators (default 1)\n"
      "  --topk=K         cap ranked results at K points (default all)\n"
      "  --shards=K       split the dataset into K engine shards; queries\n"
      "                   plan, prune and merge per shard (default 1)\n"
      "  --shard-policy=P rr|median row-to-shard assignment (default rr)\n"
      "  --executor-threads=T width of the engine's shared work-stealing\n"
      "                   executor (0 = all hardware threads; 1 = inline);\n"
      "                   --threads then caps each query's share of it\n"
      "  --insert-csv=P   after load, insert the rows of file P (CSV or\n"
      "                   binary snapshot) via the incremental delta path;\n"
      "                   new rows take ids N, N+1, ...\n"
      "  --delete-ids=L   after load (and any insert), delete these row\n"
      "                   ids, e.g. 3,17,42; surviving ids compact down\n"
      "robust serving:\n"
      "  --deadline-ms=D  per-query wall-clock budget in milliseconds; a\n"
      "                   run that overshoots stops at the next checkpoint\n"
      "                   (parallel algorithms and the zonemap path only)\n"
      "  --max-inflight=N admission cap on concurrent fresh computes in the\n"
      "                   engine (0 = unlimited); over-cap queries are shed\n"
      "  --serve-stale    answer shed or timed-out queries from a\n"
      "                   TTL-expired result-cache entry, marked stale\n"
      "  --failpoint=SPEC arm a fault-injection site, repeatable:\n"
      "                   NAME:MODE[:P[:DELAY_MS]], MODE one of\n"
      "                   throw|bad_alloc|error|delay (see README for the\n"
      "                   site catalog); also via SKYBENCH_FAILPOINTS env\n"
      "observability:\n"
      "  --trace          print each query's span tree (plan, per-shard\n"
      "                   execute, merge, cache put) after the result line\n"
      "  --stats-json=P   write the engine metrics snapshot to P as JSON\n"
      "  --stats-prom=P   write it to P as Prometheus text exposition\n"
      "  --version        print build identity and exit\n"
      "  --help           print this message and exit\n"
      "exit codes: 0 success; 1 --verify mismatch; 2 usage or input\n"
      "errors; 3 query refused at runtime (deadline exceeded, shed by\n"
      "admission control, or an injected/internal failure)\n");
  std::exit(exit_code);
}

/// Strict non-negative integer parse for the query flags (a negative or
/// over-range --kband would otherwise wrap through the unsigned cast).
unsigned long long ParseCount(const char* text, const char* flag,
                              unsigned long long max_value) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' || v < 0 ||
      static_cast<unsigned long long>(v) > max_value) {
    std::fprintf(stderr,
                 "error: %s wants an integer in [0, %llu], got '%s'\n", flag,
                 max_value, text);
    std::exit(2);
  }
  return static_cast<unsigned long long>(v);
}

/// Strict non-negative millisecond parse for --deadline-ms (fractional
/// budgets are allowed; junk or negatives exit 2 like every flag error).
double ParseMillis(const char* text, const char* flag) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0' || !(v >= 0)) {
    std::fprintf(stderr, "error: %s wants a non-negative number, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return v;
}

/// Comma-separated row ids for --delete-ids. ParseIndexList is the wrong
/// tool here: it range-checks against the dimension count.
std::vector<PointId> ParseIdList(const std::string& text) {
  std::vector<PointId> ids;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    ids.push_back(static_cast<PointId>(
        ParseCount(token.c_str(), "--delete-ids", UINT32_MAX)));
    pos = comma + 1;
  }
  return ids;
}

bool Flag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

CliArgs Parse(int argc, char** argv) {
  CliArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (Flag(argv[i], "--algo", &v) && v) a.algo = v;
    else if (Flag(argv[i], "--dist", &v) && v) a.dist = v;
    else if (Flag(argv[i], "--input", &v) && v) a.input = v;
    else if (Flag(argv[i], "--format", &v) && v) a.format = v;
    else if (Flag(argv[i], "--output", &v) && v) a.output = v;
    else if (Flag(argv[i], "--n", &v) && v)
      a.n = static_cast<size_t>(std::atoll(v));
    else if (Flag(argv[i], "--d", &v) && v) a.d = std::atoi(v);
    else if (Flag(argv[i], "--threads", &v) && v) a.threads = std::atoi(v);
    else if (Flag(argv[i], "--alpha", &v) && v)
      a.alpha = static_cast<size_t>(std::atoll(v));
    else if (Flag(argv[i], "--block-rows", &v) && v)
      a.block_rows = static_cast<size_t>(
          ParseCount(v, "--block-rows", 100'000'000));
    else if (Flag(argv[i], "--pivot", &v) && v) a.pivot = v;
    else if (Flag(argv[i], "--seed", &v) && v)
      a.seed = static_cast<uint64_t>(std::atoll(v));
    else if (Flag(argv[i], "--minmax", &v) && v) a.minmax = v;
    else if (Flag(argv[i], "--project", &v) && v) a.project = v;
    else if (Flag(argv[i], "--constrain", &v) && v) a.constrain = v;
    else if (Flag(argv[i], "--kband", &v) && v)
      a.kband = static_cast<uint32_t>(ParseCount(v, "--kband", UINT32_MAX));
    else if (Flag(argv[i], "--topk", &v) && v)
      a.topk = static_cast<size_t>(ParseCount(v, "--topk", SIZE_MAX));
    else if (Flag(argv[i], "--shards", &v) && v)
      a.shards = static_cast<size_t>(ParseCount(v, "--shards", 1'000'000));
    else if (Flag(argv[i], "--shard-policy", &v) && v) a.shard_policy = v;
    else if (Flag(argv[i], "--executor-threads", &v) && v)
      a.executor_threads = std::atoi(v);
    else if (Flag(argv[i], "--insert-csv", &v) && v) a.insert_csv = v;
    else if (Flag(argv[i], "--delete-ids", &v) && v) a.delete_ids = v;
    else if (Flag(argv[i], "--deadline-ms", &v) && v)
      a.deadline_ms = ParseMillis(v, "--deadline-ms");
    else if (Flag(argv[i], "--max-inflight", &v) && v)
      a.max_inflight =
          static_cast<int>(ParseCount(v, "--max-inflight", 1'000'000));
    else if (Flag(argv[i], "--serve-stale", &v)) a.serve_stale = true;
    else if (Flag(argv[i], "--failpoint", &v) && v) {
      std::string err;
      if (!FailPoints::Instance().ArmFromSpec(v, &err)) {
        std::fprintf(stderr, "error: --failpoint: %s\n", err.c_str());
        std::exit(2);
      }
    }
    else if (Flag(argv[i], "--trace", &v)) a.trace = true;
    else if (Flag(argv[i], "--stats-json", &v) && v) a.stats_json = v;
    else if (Flag(argv[i], "--stats-prom", &v) && v) a.stats_prom = v;
    else if (Flag(argv[i], "--no-simd", &v)) a.no_simd = true;
    else if (Flag(argv[i], "--no-batch", &v)) a.no_batch = true;
    else if (Flag(argv[i], "--stats", &v)) a.stats = true;
    else if (Flag(argv[i], "--verify", &v)) a.verify = true;
    else if (Flag(argv[i], "--version", &v)) Version();
    else if (Flag(argv[i], "--help", &v) || std::strcmp(argv[i], "-h") == 0)
      Usage(0);
    else Usage();
  }
  return a;
}

Dataset LoadData(const CliArgs& a) {
  if (!a.input.empty()) {
    if (a.format == "bin") return Dataset::LoadBinary(a.input);
    if (a.format == "csv") return Dataset::LoadCsv(a.input);
    // auto: the snapshot magic decides, so binary inputs need no
    // particular file extension.
    return Dataset::SniffBinary(a.input) ? Dataset::LoadBinary(a.input)
                                         : Dataset::LoadCsv(a.input);
  }
  if (a.dist == "nba") return GenerateNbaLike(a.n, a.seed);
  if (a.dist == "house") return GenerateHouseLike(a.n, a.seed);
  if (a.dist == "weather") return GenerateWeatherLike(a.n, a.seed);
  return GenerateSynthetic(ParseDistribution(a.dist), a.n, a.d, a.seed);
}

Options BuildOptions(const CliArgs& a, Algorithm algo) {
  Options o;
  o.algorithm = algo;
  o.threads = a.threads;
  o.alpha = a.alpha;
  o.block_rows = a.block_rows;
  o.pivot = ParsePivotPolicy(a.pivot);
  o.use_simd = !a.no_simd;
  o.use_batch = !a.no_batch;
  o.count_dts = true;
  o.trace = a.trace;
  o.seed = a.seed;
  o.deadline_ms = a.deadline_ms;
  return o;
}

/// Write the selected rows (original dimensions) of `data` to `path` —
/// a binary snapshot when the path ends in ".bin", CSV otherwise.
void WriteRows(const Dataset& data, const std::vector<PointId>& ids,
               const std::string& path, const char* what) {
  Dataset out(data.dims(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    std::memcpy(out.MutableRow(i), data.Row(ids[i]),
                sizeof(Value) * static_cast<size_t>(data.dims()));
  }
  const bool bin =
      path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
  if (bin) {
    out.SaveBinary(path);
  } else {
    out.SaveCsv(path);
  }
  std::printf("  wrote %zu %s rows to %s (%s)\n", out.count(), what,
              path.c_str(), bin ? "bin" : "csv");
}

void RunOne(const Dataset& data, Algorithm algo, const CliArgs& a) {
  Result r;
  try {
    r = ComputeSkyline(data, BuildOptions(a, algo));
  } catch (const CancelledError& err) {
    // The library path has no QueryResult::status to carry the refusal,
    // so the deadline surfaces here as the documented runtime exit code.
    std::printf("%-10s status=%s\n", AlgorithmName(algo),
                StatusName(err.reason()));
    std::exit(3);
  }
  std::printf("%-10s time=%.4fs |sky|=%zu dts=%llu\n", AlgorithmName(algo),
              r.stats.total_seconds, r.skyline.size(),
              static_cast<unsigned long long>(r.stats.dominance_tests));
  if (a.stats) std::printf("  %s\n", r.stats.ToString().c_str());
  if (a.verify) {
    if (VerifySkyline(data, r.skyline)) {
      std::printf("  verification: OK\n");
    } else {
      std::printf("  verification: FAILED\n");
      std::exit(1);
    }
  }
  if (!a.output.empty()) WriteRows(data, r.skyline, a.output, "skyline");
}

QuerySpec BuildSpec(const CliArgs& a, int dims) {
  QuerySpec spec;
  if (!a.minmax.empty()) {
    spec.preferences = ParsePreferenceList(a.minmax);
    if (spec.preferences.size() != static_cast<size_t>(dims)) {
      throw std::runtime_error("--minmax lists " +
                               std::to_string(spec.preferences.size()) +
                               " preferences for a d=" + std::to_string(dims) +
                               " dataset");
    }
  }
  if (!a.project.empty()) spec.Project(ParseIndexList(a.project), dims);
  if (!a.constrain.empty()) spec.constraints = ParseConstraintList(a.constrain);
  spec.band_k = a.kband;
  spec.top_k = a.topk;
  return spec;
}

void RunQueryOne(SkylineEngine& engine, const Dataset& data, Algorithm algo,
                 const CliArgs& a) {
  const QuerySpec spec = BuildSpec(a, data.dims());
  const QueryResult r = engine.Execute("cli", spec, BuildOptions(a, algo));
  if (r.status != Status::kOk && !r.stale) {
    // Clean refusal: the engine returned no rows (errors never carry a
    // result). Truncated partials need a progressive consumer, which the
    // CLI is not, so this prints and exits with the runtime code.
    std::printf("%-10s status=%s\n",
                a.kband > 1 ? "skyband" : AlgorithmName(algo),
                StatusName(r.status));
    std::exit(3);
  }
  // The k-skyband path is algorithm-independent (ComputeSkyband ignores
  // the algorithm selection), so labelling it with an algorithm name
  // would misattribute the timing.
  std::printf("%-10s time=%.4fs |result|=%zu matched=%zu%s%s\n",
              a.kband > 1 ? "skyband" : AlgorithmName(algo),
              r.stats.total_seconds, r.ids.size(), r.matched_rows,
              r.cache_hit ? " [cached]" : "", r.stale ? " [stale]" : "");
  if (a.shards > 1) {
    std::printf("  shards: policy=%s executed=%u pruned=%u\n",
                a.shard_policy.c_str(), r.shards_executed, r.shards_pruned);
  }
  if (algo == Algorithm::kAuto) {
    // The cost model's decision, one entry per executed shard.
    std::printf("  auto:");
    for (const Algorithm chosen : r.shard_algorithms) {
      std::printf(" %s", AlgorithmName(chosen));
    }
    std::printf("\n");
  }
  if (a.trace && r.trace != nullptr) {
    std::printf("%s", r.trace->Render().c_str());
  }
  if (a.stats) std::printf("  %s\n", r.stats.ToString().c_str());
  if (a.verify) {
    if (VerifyQuery(data, spec, r)) {
      std::printf("  verification: OK\n");
    } else {
      std::printf("  verification: FAILED\n");
      std::exit(1);
    }
  }
  if (!a.output.empty()) WriteRows(data, r.ids, a.output, "result");
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) try {
  const sky::CliArgs args = sky::Parse(argc, argv);
  if (args.input.empty() && (args.d < 1 || args.d > sky::kMaxDims)) {
    std::fprintf(stderr, "error: --d must be in [1, %d], got %d\n",
                 sky::kMaxDims, args.d);
    return 2;
  }
  if (args.format != "auto" && args.format != "csv" && args.format != "bin") {
    std::fprintf(stderr, "error: unknown --format '%s' (want auto|csv|bin)\n",
                 args.format.c_str());
    return 2;
  }
  // Resolved before the data load so a typo fails fast.
  const sky::ShardPolicy shard_policy =
      sky::ParseShardPolicy(args.shard_policy);
  // Resolve algorithm names before the (possibly expensive) data load so
  // a typo fails fast.
  std::vector<sky::Algorithm> algos;
  if (args.algo == "all") {
    // Sweep the whole registry: a new algorithm row joins --algo=all
    // (and its verify coverage) automatically.
    for (const sky::AlgorithmDescriptor& desc : sky::AlgorithmTable()) {
      algos.push_back(desc.algorithm);
    }
  } else {
    algos.push_back(sky::ParseAlgorithm(args.algo));
  }
  sky::Dataset data = sky::LoadData(args);
  std::printf("dataset: n=%zu d=%d\n", data.count(), data.dims());
  // --algo=auto (any spelling ParseAlgorithm accepts) routes through
  // the engine too: selection happens at plan time from
  // registration-time sketches, and the per-shard decisions are
  // reported on the result.
  const bool auto_algo =
      algos.size() == 1 && algos[0] == sky::Algorithm::kAuto;
  if (args.UsesQueryEngine() || auto_algo) {
    // Route through the serving layer: register once (padded rows and the
    // shard decomposition built at load), then execute against the
    // registered dataset.
    sky::SkylineEngine::Config cfg;
    cfg.shards = args.shards;
    cfg.shard_policy = shard_policy;
    cfg.executor_threads = args.executor_threads;
    cfg.max_inflight = args.max_inflight;
    cfg.serve_stale = args.serve_stale;
    sky::SkylineEngine engine(cfg);
    engine.RegisterDataset("cli", std::move(data));
    if (!args.insert_csv.empty()) {
      // Incremental delta path: only the touched shards repair their
      // skylines; the registration is not rebuilt.
      sky::Dataset extra = sky::Dataset::SniffBinary(args.insert_csv)
                               ? sky::Dataset::LoadBinary(args.insert_csv)
                               : sky::Dataset::LoadCsv(args.insert_csv);
      const size_t added = extra.count();
      engine.InsertPoints("cli", extra);
      std::printf("inserted %zu rows from %s (minor v%llu)\n", added,
                  args.insert_csv.c_str(),
                  static_cast<unsigned long long>(engine.MinorVersion("cli")));
    }
    if (!args.delete_ids.empty()) {
      const std::vector<sky::PointId> drop =
          sky::ParseIdList(args.delete_ids);
      engine.DeletePoints("cli", drop);
      std::printf("deleted %zu rows (minor v%llu); surviving ids compacted\n",
                  drop.size(),
                  static_cast<unsigned long long>(engine.MinorVersion("cli")));
    }
    const std::shared_ptr<const sky::Dataset> ds = engine.Find("cli");
    if (args.kband > 1 && algos.size() > 1) {
      // The skyband path ignores the algorithm selection: an --algo=all
      // sweep would run the identical computation once per name.
      std::printf(
          "note: --kband is algorithm-independent; running once\n");
      algos.resize(1);
    }
    for (const sky::Algorithm algo : algos) {
      sky::RunQueryOne(engine, *ds, algo, args);
      // In --algo=all sweeps each algorithm should compute, not replay the
      // previous algorithm's cached answer.
      if (algos.size() > 1) engine.ClearCache();
    }
    if (!args.stats_json.empty() || !args.stats_prom.empty()) {
      const sky::obs::MetricsSnapshot snap = engine.Metrics().Snapshot();
      if (!args.stats_json.empty()) {
        sky::obs::WriteTextFile(args.stats_json, sky::obs::RenderJson(snap));
        std::printf("wrote metrics snapshot (json) to %s\n",
                    args.stats_json.c_str());
      }
      if (!args.stats_prom.empty()) {
        sky::obs::WriteTextFile(args.stats_prom,
                                sky::obs::RenderPrometheus(snap));
        std::printf("wrote metrics snapshot (prometheus) to %s\n",
                    args.stats_prom.c_str());
      }
    }
  } else {
    for (const sky::Algorithm algo : algos) sky::RunOne(data, algo, args);
  }
  return 0;
} catch (const std::exception& e) {
  // Unknown algorithm/distribution names and unreadable inputs surface
  // here; fail with a clean diagnostic instead of std::terminate.
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
