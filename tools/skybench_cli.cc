// Copyright (c) SkyBench-NG contributors.
// skybench — command-line front end for the library, in the spirit of the
// paper's released SkyBench suite: run any implemented algorithm on a
// generated or loaded dataset and report timing, phase breakdown and
// dominance-test counts.
//
// Examples:
//   skybench --algo=hybrid --dist=anti --n=1000000 --d=12 --threads=16
//   skybench --algo=qflow --input=points.csv --alpha=8192 --stats
//   skybench --algo=all --dist=indep --n=100000 --d=8 --verify
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/version.h"
#include "core/skyline.h"
#include "data/generator.h"
#include "data/realistic.h"
#include "dominance/dominance.h"

namespace sky {
namespace {

struct CliArgs {
  std::string algo = "hybrid";
  std::string dist = "indep";
  std::string input;      // CSV or .bin path; overrides generation
  std::string output;     // optional: write skyline rows as CSV
  size_t n = 100'000;
  int d = 8;
  int threads = 0;
  size_t alpha = 0;
  std::string pivot = "median";
  uint64_t seed = 42;
  bool no_simd = false;
  bool stats = false;
  bool verify = false;
};

[[noreturn]] void Version() {
  std::printf("skybench %s (%s build, AVX2 kernels %s, cpu avx2 %s)\n",
              kVersionString, kBuildType[0] != '\0' ? kBuildType : "unknown",
              kBuildHasAvx2 ? "compiled" : "absent",
              CpuHasAvx2() ? "yes" : "no");
  std::exit(0);
}

[[noreturn]] void Usage(int exit_code = 2) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: skybench [options]\n"
      "  --algo=NAME      bnl|sfs|less|salsa|sskyline|pskyline|psfs|qflow|\n"
      "                   hybrid|bskytree|pbskytree|all      (default hybrid)\n"
      "  --dist=NAME      corr|indep|anti|nba|house|weather  (default indep)\n"
      "  --n=N --d=D      generated workload size             (1e5 x 8)\n"
      "  --input=PATH     load CSV (or .bin) instead of generating\n"
      "  --output=PATH    write skyline points as CSV\n"
      "  --threads=T      0 = all hardware threads\n"
      "  --alpha=A        block size (0 = paper default)\n"
      "  --pivot=NAME     median|balanced|manhattan|volume|random\n"
      "  --seed=S         generator / random pivot seed\n"
      "  --no-simd        scalar dominance kernels\n"
      "  --stats          print the phase breakdown\n"
      "  --verify         cross-check against the BNL oracle\n"
      "  --version        print build identity and exit\n"
      "  --help           print this message and exit\n");
  std::exit(exit_code);
}

bool Flag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

CliArgs Parse(int argc, char** argv) {
  CliArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (Flag(argv[i], "--algo", &v) && v) a.algo = v;
    else if (Flag(argv[i], "--dist", &v) && v) a.dist = v;
    else if (Flag(argv[i], "--input", &v) && v) a.input = v;
    else if (Flag(argv[i], "--output", &v) && v) a.output = v;
    else if (Flag(argv[i], "--n", &v) && v) a.n = static_cast<size_t>(std::atoll(v));
    else if (Flag(argv[i], "--d", &v) && v) a.d = std::atoi(v);
    else if (Flag(argv[i], "--threads", &v) && v) a.threads = std::atoi(v);
    else if (Flag(argv[i], "--alpha", &v) && v) a.alpha = static_cast<size_t>(std::atoll(v));
    else if (Flag(argv[i], "--pivot", &v) && v) a.pivot = v;
    else if (Flag(argv[i], "--seed", &v) && v) a.seed = static_cast<uint64_t>(std::atoll(v));
    else if (Flag(argv[i], "--no-simd", &v)) a.no_simd = true;
    else if (Flag(argv[i], "--stats", &v)) a.stats = true;
    else if (Flag(argv[i], "--verify", &v)) a.verify = true;
    else if (Flag(argv[i], "--version", &v)) Version();
    else if (Flag(argv[i], "--help", &v) || std::strcmp(argv[i], "-h") == 0)
      Usage(0);
    else Usage();
  }
  return a;
}

Dataset LoadData(const CliArgs& a) {
  if (!a.input.empty()) {
    if (a.input.size() > 4 &&
        a.input.compare(a.input.size() - 4, 4, ".bin") == 0) {
      return Dataset::LoadBinary(a.input);
    }
    return Dataset::LoadCsv(a.input);
  }
  if (a.dist == "nba") return GenerateNbaLike(a.n, a.seed);
  if (a.dist == "house") return GenerateHouseLike(a.n, a.seed);
  if (a.dist == "weather") return GenerateWeatherLike(a.n, a.seed);
  return GenerateSynthetic(ParseDistribution(a.dist), a.n, a.d, a.seed);
}

void RunOne(const Dataset& data, Algorithm algo, const CliArgs& a) {
  Options o;
  o.algorithm = algo;
  o.threads = a.threads;
  o.alpha = a.alpha;
  o.pivot = ParsePivotPolicy(a.pivot);
  o.use_simd = !a.no_simd;
  o.count_dts = true;
  o.seed = a.seed;
  const Result r = ComputeSkyline(data, o);
  std::printf("%-10s time=%.4fs |sky|=%zu dts=%llu\n", AlgorithmName(algo),
              r.stats.total_seconds, r.skyline.size(),
              static_cast<unsigned long long>(r.stats.dominance_tests));
  if (a.stats) std::printf("  %s\n", r.stats.ToString().c_str());
  if (a.verify) {
    if (VerifySkyline(data, r.skyline)) {
      std::printf("  verification: OK\n");
    } else {
      std::printf("  verification: FAILED\n");
      std::exit(1);
    }
  }
  if (!a.output.empty()) {
    Dataset out(data.dims(), r.skyline.size());
    for (size_t i = 0; i < r.skyline.size(); ++i) {
      std::memcpy(out.MutableRow(i), data.Row(r.skyline[i]),
                  sizeof(Value) * static_cast<size_t>(data.dims()));
    }
    out.SaveCsv(a.output);
    std::printf("  wrote %zu skyline rows to %s\n", out.count(),
                a.output.c_str());
  }
}

}  // namespace
}  // namespace sky

int main(int argc, char** argv) try {
  const sky::CliArgs args = sky::Parse(argc, argv);
  if (args.input.empty() && (args.d < 1 || args.d > sky::kMaxDims)) {
    std::fprintf(stderr, "error: --d must be in [1, %d], got %d\n",
                 sky::kMaxDims, args.d);
    return 2;
  }
  // Resolve algorithm names before the (possibly expensive) data load so
  // a typo fails fast.
  std::vector<sky::Algorithm> algos;
  if (args.algo == "all") {
    for (const char* name :
         {"bnl", "sfs", "less", "salsa", "sskyline", "pskyline",
          "apskyline", "psfs",
          "qflow", "hybrid", "bskytree", "bskytree-s", "osp",
          "pbskytree"}) {
      algos.push_back(sky::ParseAlgorithm(name));
    }
  } else {
    algos.push_back(sky::ParseAlgorithm(args.algo));
  }
  const sky::Dataset data = sky::LoadData(args);
  std::printf("dataset: n=%zu d=%d\n", data.count(), data.dims());
  for (const sky::Algorithm algo : algos) sky::RunOne(data, algo, args);
  return 0;
} catch (const std::exception& e) {
  // Unknown algorithm/distribution names and unreadable inputs surface
  // here; fail with a clean diagnostic instead of std::terminate.
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
