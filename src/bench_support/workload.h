// Copyright (c) SkyBench-NG contributors.
// Workload specification and in-process dataset cache for the benchmark
// harness. Bench binaries sweep (distribution, n, d) grids; the cache
// avoids regenerating identical datasets between sweep points.
#ifndef SKY_BENCH_SUPPORT_WORKLOAD_H_
#define SKY_BENCH_SUPPORT_WORKLOAD_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "data/dataset.h"
#include "data/generator.h"

namespace sky {

struct WorkloadSpec {
  Distribution dist = Distribution::kIndependent;
  size_t count = 100'000;
  int dims = 8;
  uint64_t seed = 42;

  std::string ToString() const;
};

/// Process-wide cache of generated datasets, keyed by the full spec.
/// Thread-safe: concurrent Get calls (as issued by multi-threaded harness
/// drivers) serialize on an internal mutex, and the heap-allocated
/// datasets stay at stable addresses across later insertions. Returned
/// references remain valid until Clear(), which must not run concurrently
/// with users of previously returned datasets.
class WorkloadCache {
 public:
  static WorkloadCache& Instance();

  /// Generate (or fetch) the dataset for `spec`.
  const Dataset& Get(const WorkloadSpec& spec);

  /// Drop all cached datasets (memory pressure between sweeps).
  void Clear();

 private:
  using Key = std::tuple<int, size_t, int, uint64_t>;
  std::mutex mu_;
  std::map<Key, std::unique_ptr<Dataset>> cache_;  // guarded by mu_
};

}  // namespace sky

#endif  // SKY_BENCH_SUPPORT_WORKLOAD_H_
