// Copyright (c) SkyBench-NG contributors.
// Minimal ASCII table / CSV writer for the benchmark binaries; every bench
// prints the same rows or series the paper's tables and figures report.
#ifndef SKY_BENCH_SUPPORT_TABLE_H_
#define SKY_BENCH_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace sky {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Render with aligned columns to stdout.
  void Print() const;

  /// Render as CSV (for plotting scripts).
  std::string ToCsv() const;

  /// Formatting helpers.
  static std::string Num(double v, int precision = 4);
  static std::string Int(uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sky

#endif  // SKY_BENCH_SUPPORT_TABLE_H_
