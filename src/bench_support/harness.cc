// Copyright (c) SkyBench-NG contributors.
#include "bench_support/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sky {

namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

[[noreturn]] void Usage(const char* binary) {
  std::fprintf(stderr,
               "usage: %s [--full] [--verify] [--csv] [--repeats=R] "
               "[--threads=T] [--n=N] [--d=D] [--seed=S]\n",
               binary);
  std::exit(2);
}

}  // namespace

BenchConfig BenchConfig::Parse(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--full", &v)) {
      cfg.full = true;
    } else if (ParseFlag(argv[i], "--verify", &v)) {
      cfg.verify = true;
    } else if (ParseFlag(argv[i], "--csv", &v)) {
      cfg.csv = true;
    } else if (ParseFlag(argv[i], "--repeats", &v) && v != nullptr) {
      cfg.repeats = std::max(1, std::atoi(v));
    } else if (ParseFlag(argv[i], "--threads", &v) && v != nullptr) {
      cfg.max_threads = std::atoi(v);
    } else if (ParseFlag(argv[i], "--n", &v) && v != nullptr) {
      cfg.n_override = static_cast<size_t>(std::atoll(v));
    } else if (ParseFlag(argv[i], "--d", &v) && v != nullptr) {
      cfg.d_override = std::atoi(v);
    } else if (ParseFlag(argv[i], "--seed", &v) && v != nullptr) {
      cfg.seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      Usage(argv[0]);
    }
  }
  return cfg;
}

Result RunTimed(const Dataset& data, const Options& opts, int repeats,
                bool verify) {
  std::vector<Result> runs;
  runs.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    runs.push_back(ComputeSkyline(data, opts));
  }
  std::sort(runs.begin(), runs.end(), [](const Result& a, const Result& b) {
    return a.stats.total_seconds < b.stats.total_seconds;
  });
  Result& median = runs[runs.size() / 2];
  if (verify && !VerifySkyline(data, median.skyline)) {
    std::fprintf(stderr, "VERIFICATION FAILED for %s (|sky|=%zu)\n",
                 AlgorithmName(opts.algorithm), median.skyline.size());
    std::abort();
  }
  return std::move(median);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace sky
