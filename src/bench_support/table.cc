// Copyright (c) SkyBench-NG contributors.
#include "bench_support/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "common/macros.h"

namespace sky {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  SKY_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

std::string Table::ToCsv() const {
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 == row.size()) ? '\n' : ',';
    }
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace sky
