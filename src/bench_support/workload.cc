// Copyright (c) SkyBench-NG contributors.
#include "bench_support/workload.h"

#include <cstdio>

namespace sky {

std::string WorkloadSpec::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s n=%zu d=%d seed=%llu",
                DistributionName(dist), count, dims,
                static_cast<unsigned long long>(seed));
  return buf;
}

WorkloadCache& WorkloadCache::Instance() {
  static WorkloadCache instance;
  return instance;
}

const Dataset& WorkloadCache::Get(const WorkloadSpec& spec) {
  const Key key{static_cast<int>(spec.dist), spec.count, spec.dims,
                spec.seed};
  // Generation runs under the lock: two racing callers of the same spec
  // would otherwise both generate, and the loser's Dataset would be
  // destroyed while the winner's reference escapes. Losing generation
  // parallelism is fine — the cache exists to avoid regeneration at all.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto data = std::make_unique<Dataset>(
        GenerateSynthetic(spec.dist, spec.count, spec.dims, spec.seed));
    it = cache_.emplace(key, std::move(data)).first;
  }
  return *it->second;
}

void WorkloadCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace sky
