// Copyright (c) SkyBench-NG contributors.
// Shared runner + command-line plumbing for the figure/table benchmark
// binaries. Every binary supports:
//   --full            paper-scale parameters instead of laptop defaults
//   --n=N --d=D       explicit workload overrides
//   --threads=T       max thread count for the sweep
//   --repeats=R       timing repetitions (median reported)
//   --verify          cross-check each result against the BNL oracle
//   --csv             emit CSV instead of an aligned table
#ifndef SKY_BENCH_SUPPORT_HARNESS_H_
#define SKY_BENCH_SUPPORT_HARNESS_H_

#include <string>
#include <vector>

#include "bench_support/workload.h"
#include "core/options.h"
#include "core/skyline.h"

namespace sky {

struct BenchConfig {
  bool full = false;
  bool verify = false;
  bool csv = false;
  int repeats = 1;
  int max_threads = 0;    ///< 0: binary-specific default
  size_t n_override = 0;  ///< 0: binary-specific default
  int d_override = 0;     ///< 0: binary-specific default
  uint64_t seed = 42;

  /// Parse argv; unknown flags abort with a usage message.
  static BenchConfig Parse(int argc, char** argv);
};

/// Run `opts.algorithm` on `data` `repeats` times; returns the run with
/// median total time. Aborts if --verify finds a mismatch against BNL.
Result RunTimed(const Dataset& data, const Options& opts, int repeats,
                bool verify);

/// Median helper.
double Median(std::vector<double> values);

}  // namespace sky

#endif  // SKY_BENCH_SUPPORT_HARNESS_H_
