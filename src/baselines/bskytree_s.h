// Copyright (c) SkyBench-NG contributors.
// BSkyTree-S (Lee & Hwang, Inf. Syst. 2014): the variant of BSkyTree the
// paper's §III singles out as using "neither recursion nor the data
// structure". One global pivot partitions the data; points are sorted by
// (level, mask, L1) and scanned SFS-style, with pairwise dominance tests
// guarded by the mask incomparability filter. It sits between SFS (no
// partitioning) and BSkyTree-P (recursive partitioning + SkyTree), and is
// structurally the sequential skeleton Hybrid's Phase II generalizes.
#ifndef SKY_BASELINES_BSKYTREE_S_H_
#define SKY_BASELINES_BSKYTREE_S_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result BSkyTreeSCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_BSKYTREE_S_H_
