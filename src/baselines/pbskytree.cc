// Copyright (c) SkyBench-NG contributors.
#include "baselines/pbskytree.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "baselines/skytree_common.h"
#include "common/cancel.h"
#include "common/timer.h"
#include "parallel/parallel_sort.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace {

using skytree::Tree;

/// Recursion is halted for groups smaller than this (paper Appendix A:
/// "we halt the recursion when there are fewer than 64 points").
constexpr size_t kRecursionHalt = 64;

/// Mask computation is parallelized only above this size; below it the
/// fork-join overhead dominates.
constexpr size_t kParallelPartitionThreshold = 1 << 13;

class ParallelBuilder {
 public:
  ParallelBuilder(const WorkingSet& ws, const DomCtx& dom,
                  const std::vector<Value>& lo, const std::vector<Value>& hi,
                  ThreadPool& pool, PivotPolicy policy, uint64_t seed,
                  const CancelToken* cancel)
      : ws_(ws),
        cancel_(cancel),
        dom_(dom),
        lo_(lo),
        hi_(hi),
        pool_(pool),
        tree_(ws, dom),
        full_(FullMask(ws.dims)),
        policy_(policy),
        rng_(seed),
        // Batches hold whole groups only (a group split across flushes
        // could leak a dominated point into the tree), so the cap must be
        // at least the recursion-halt group size.
        batch_cap_(std::max<size_t>(kRecursionHalt,
                                    16 * static_cast<size_t>(pool.threads()))) {
  }

  uint32_t Build(std::vector<uint32_t>& pts) {
    SKY_DCHECK(!pts.empty());
    // Deadline checkpoint per recursion step (each step handles one mask
    // group); the partially built tree is discarded on unwind.
    CheckCancel(cancel_);
    const size_t pivot_pos = skytree::SubsetPivotIndex(
        ws_, pts, lo_, hi_, dom_, policy_, rng_, &dts_);
    const uint32_t pivot = pts[pivot_pos];
    const uint32_t node = tree_.NewNode(pivot, /*mask=*/0);

    // ---- Parallel partitioning (mask computation) of the remainder.
    std::vector<std::pair<uint32_t, uint32_t>> keyed(pts.size());
    std::vector<uint8_t> drop(pts.size(), 0);
    const auto classify = [&](size_t i, uint64_t* dts) {
      const uint32_t p = pts[i];
      if (i == pivot_pos) {
        drop[i] = 1;
        return;
      }
      const Mask m = dom_.PartitionMask(ws_.Row(p), ws_.Row(pivot));
      ++*dts;
      if (m == full_) {
        drop[i] = dom_.Equal(ws_.Row(p), ws_.Row(pivot)) ? 2 : 1;
        return;
      }
      keyed[i] = {CompositeMaskKey(m, ws_.dims), p};
    };
    if (pts.size() >= kParallelPartitionThreshold) {
      std::atomic<uint64_t> par_dts{0};
      pool_.ParallelForStatic(pts.size(), [&](size_t b, size_t e, int) {
        uint64_t local = 0;
        for (size_t i = b; i < e; ++i) classify(i, &local);
        par_dts.fetch_add(local, std::memory_order_relaxed);
      });
      dts_ += par_dts.load(std::memory_order_relaxed);
    } else {
      for (size_t i = 0; i < pts.size(); ++i) classify(i, &dts_);
    }
    std::vector<uint32_t> duplicates;
    {
      size_t w = 0;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (drop[i] == 2) {
          duplicates.push_back(pts[i]);
        } else if (drop[i] == 0) {
          keyed[w++] = keyed[i];
        }
      }
      keyed.resize(w);
    }
    if (keyed.size() >= kParallelPartitionThreshold) {
      ParallelSort(keyed, pool_);
    } else {
      std::sort(keyed.begin(), keyed.end());
    }

    // ---- Process mask groups in (level, mask) order, batching small
    // groups (Appendix A).
    Batch batch;
    size_t g = 0;
    std::vector<uint32_t> survivors;
    while (g < keyed.size()) {
      CheckCancel(cancel_);  // per-mask-group deadline checkpoint
      size_t g_end = g;
      while (g_end < keyed.size() && keyed[g_end].first == keyed[g].first) {
        ++g_end;
      }
      const Mask m = KeyToMask(keyed[g].first, ws_.dims);
      const size_t group_size = g_end - g;
      if (group_size < kRecursionHalt) {
        // Halted group: queue the whole group for batched parallel
        // processing; flush first if it would overflow the cap.
        if (batch.points.size() + group_size > batch_cap_) {
          FlushBatch(node, batch);
        }
        for (size_t i = g; i < g_end; ++i) {
          batch.points.push_back(keyed[i].second);
          batch.masks.push_back(m);
        }
      } else {
        // Large group: the batch must land in the tree first so the
        // group's sibling filter sees its survivors.
        FlushBatch(node, batch);
        survivors.clear();
        for (size_t i = g; i < g_end; ++i) {
          const uint32_t p = keyed[i].second;
          bool dominated = false;
          for (const uint32_t c : tree_.At(node).children) {
            if (MaskMayDominate(tree_.At(c).mask, m)) {
              if (tree_.Filter(c, p, &dts_, &skips_)) {
                dominated = true;
                break;
              }
            } else {
              ++skips_;
            }
          }
          if (!dominated) survivors.push_back(p);
        }
        if (!survivors.empty()) {
          const uint32_t child = Build(survivors);
          tree_.At(child).mask = m;
          tree_.At(node).children.push_back(child);
        }
      }
      g = g_end;
    }
    FlushBatch(node, batch);

    for (const uint32_t p : duplicates) {
      tree_.At(node).children.push_back(tree_.NewNode(p, full_));
    }
    return node;
  }

  Tree& tree() { return tree_; }
  uint64_t dts() const { return dts_; }
  uint64_t skips() const { return skips_; }

 private:
  struct Batch {
    std::vector<uint32_t> points;  // DFS (level, mask) order
    std::vector<Mask> masks;       // masks relative to the parent pivot
  };

  /// Process the pending batch: parallel sibling-subtree filtering
  /// (Phase I), parallel peer resolution in DFS order (Phase II), then
  /// attach survivors as leaf children of `node`.
  void FlushBatch(uint32_t node, Batch& batch) {
    const size_t bn = batch.points.size();
    if (bn == 0) return;
    std::vector<uint8_t> flags(bn, 0);
    std::atomic<uint64_t> par_dts{0}, par_skips{0};

    // Phase I: each batch point against the completed sibling subtrees.
    pool_.ParallelFor(bn, 4, [&](size_t lo, size_t hi) {
      uint64_t dts = 0, skips = 0;
      for (size_t k = lo; k < hi; ++k) {
        const uint32_t p = batch.points[k];
        const Mask m = batch.masks[k];
        for (const uint32_t c : tree_.At(node).children) {
          if (MaskMayDominate(tree_.At(c).mask, m)) {
            if (tree_.Filter(c, p, &dts, &skips)) {
              flags[k] = 1;
              break;
            }
          } else {
            ++skips;
          }
        }
      }
      par_dts.fetch_add(dts, std::memory_order_relaxed);
      par_skips.fetch_add(skips, std::memory_order_relaxed);
    });

    // Phase II: peer resolution. Earlier groups are scanned with the mask
    // filter (the (level, mask) order guarantees no backward dominance
    // across groups); same-group peers carry no such guarantee, so they
    // are tested in BOTH positions (each point scans the whole group).
    pool_.ParallelFor(bn, 4, [&](size_t lo, size_t hi) {
      uint64_t dts = 0, skips = 0;
      for (size_t k = lo; k < hi; ++k) {
        if (flags[k]) continue;
        const Value* q = ws_.Row(batch.points[k]);
        for (size_t j = 0; j < bn; ++j) {
          if (j == k) continue;
          const bool same_group = batch.masks[j] == batch.masks[k];
          if (!same_group) {
            if (j > k || MaskIncomparable(batch.masks[j], batch.masks[k])) {
              ++skips;
              continue;
            }
          }
          if (std::atomic_ref<uint8_t>(flags[j]).load(
                  std::memory_order_relaxed) != 0) {
            continue;
          }
          ++dts;
          if (dom_.Dominates(ws_.Row(batch.points[j]), q)) {
            std::atomic_ref<uint8_t>(flags[k]).store(
                1, std::memory_order_relaxed);
            break;
          }
        }
      }
      par_dts.fetch_add(dts, std::memory_order_relaxed);
      par_skips.fetch_add(skips, std::memory_order_relaxed);
    });
    dts_ += par_dts.load(std::memory_order_relaxed);
    skips_ += par_skips.load(std::memory_order_relaxed);

    for (size_t k = 0; k < bn; ++k) {
      if (!flags[k]) {
        tree_.At(node).children.push_back(
            tree_.NewNode(batch.points[k], batch.masks[k]));
      }
    }
    batch.points.clear();
    batch.masks.clear();
  }

  const WorkingSet& ws_;
  const CancelToken* cancel_;
  const DomCtx& dom_;
  const std::vector<Value>& lo_;
  const std::vector<Value>& hi_;
  ThreadPool& pool_;
  Tree tree_;
  const Mask full_;
  PivotPolicy policy_;
  Rng rng_;
  const size_t batch_cap_;
  uint64_t dts_ = 0;
  uint64_t skips_ = 0;
};

}  // namespace

Result PBSkyTreeCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  ThreadPool pool(opts.executor, opts.ResolvedThreads());
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);  // used by the Manhattan subset-pivot policy
  const std::vector<Value> lo = data.MinPerDim();
  const std::vector<Value> hi = data.MaxPerDim();
  st.init_seconds = phase.Lap();

  ParallelBuilder builder(ws, dom, lo, hi, pool, opts.pivot, opts.seed,
                          opts.cancel);
  std::vector<uint32_t> all(ws.count);
  for (size_t i = 0; i < ws.count; ++i) all[i] = static_cast<uint32_t>(i);
  builder.Build(all);
  st.phase1_seconds = phase.Lap();

  builder.tree().CollectIds(res.skyline);
  st.skyline_size = res.skyline.size();
  if (opts.count_dts) {
    st.dominance_tests = builder.dts();
    st.mask_filter_hits = builder.skips();
  }
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
