// Copyright (c) SkyBench-NG contributors.
// BSkyTree-P (Lee & Hwang, Inf. Syst. 2014): the state-of-the-art
// sequential skyline algorithm the paper benchmarks against. Recursive
// point-based space partitioning with balanced pivot selection and a
// SkyTree over confirmed skyline points.
#ifndef SKY_BASELINES_BSKYTREE_H_
#define SKY_BASELINES_BSKYTREE_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result BSkyTreeCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_BSKYTREE_H_
