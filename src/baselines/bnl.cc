// Copyright (c) SkyBench-NG contributors.
#include "baselines/bnl.h"

#include <vector>

#include "common/timer.h"
#include "dominance/dominance.h"

namespace sky {

// Maintains a window of mutually non-dominated candidates. Each input
// point is tested against the window: if dominated it is dropped; if it
// dominates window members they are dropped; otherwise it joins the
// window. With the whole input in memory the window is the final skyline.
Result BnlCompute(const Dataset& data, const Options& opts) {
  Result res;
  if (data.count() == 0) return res;
  WallTimer total;
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);

  std::vector<PointId> window;
  window.reserve(256);
  uint64_t dts = 0;
  for (size_t i = 0; i < data.count(); ++i) {
    const Value* p = data.Row(i);
    bool dominated = false;
    size_t write = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const Value* cand = data.Row(window[w]);
      const Relation rel = dom.Compare(cand, p);
      ++dts;
      if (rel == Relation::kLeftDominates) {
        // `p` is dominated: everything already kept stays; the rest of
        // the window is untouched.
        dominated = true;
        // Preserve the not-yet-scanned suffix.
        while (w < window.size()) window[write++] = window[w++];
        break;
      }
      if (rel != Relation::kRightDominates) {
        window[write++] = window[w];  // keep cand (p does not dominate it)
      }
    }
    window.resize(write);
    if (!dominated) window.push_back(static_cast<PointId>(i));
  }
  counter.AddTests(dts);

  res.skyline = std::move(window);
  res.stats.skyline_size = res.skyline.size();
  res.stats.dominance_tests = counter.tests();
  res.stats.total_seconds = total.Seconds();
  res.stats.phase1_seconds = res.stats.total_seconds;
  return res;
}

}  // namespace sky
