// Copyright (c) SkyBench-NG contributors.
#include "baselines/apskyline.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/sskyline.h"
#include "common/cancel.h"
#include "common/timer.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace {

constexpr size_t kMergeGrain = 64;

/// Hyperspherical angles of a point (shifted to the positive orthant):
/// phi_k = atan2(norm(x_{k+1..d}), x_k), k = 0..d-2. Dominance tends to
/// happen between points of similar direction, which is what the angular
/// partitioning exploits.
void AnglesOf(const Value* row, const std::vector<Value>& mins, int d,
              float* out) {
  // Shift so all coordinates are >= 0 (angles need a consistent orthant).
  float sq_suffix = 0.0f;
  std::vector<float> shifted(static_cast<size_t>(d));
  for (int j = 0; j < d; ++j) {
    shifted[static_cast<size_t>(j)] = row[j] - mins[static_cast<size_t>(j)];
  }
  for (int j = d - 1; j >= 1; --j) {
    sq_suffix +=
        shifted[static_cast<size_t>(j)] * shifted[static_cast<size_t>(j)];
    if (j - 1 < d - 1) {
      out[j - 1] = std::atan2(std::sqrt(sq_suffix),
                              shifted[static_cast<size_t>(j - 1)]);
    }
  }
}

/// Split `t` into per-angle grid extents, most splits on the first
/// angles (coarse factorization: repeatedly halve).
std::vector<int> GridExtents(int t, int angles) {
  std::vector<int> ext(static_cast<size_t>(std::max(1, angles)), 1);
  int remaining = std::max(1, t);
  size_t axis = 0;
  while (remaining > 1) {
    ext[axis] *= 2;
    remaining = (remaining + 1) / 2;
    axis = (axis + 1) % ext.size();
  }
  return ext;
}

/// skyline(A ∪ B) for two skylines (same reasoning as PSkyline's merge).
std::vector<PointId> MergeSkylines(const Dataset& data,
                                   const std::vector<PointId>& a,
                                   const std::vector<PointId>& b,
                                   const DomCtx& dom, ThreadPool& pool,
                                   DtCounter& counter) {
  std::vector<uint8_t> b_dead(b.size(), 0);
  pool.ParallelFor(b.size(), kMergeGrain, [&](size_t lo, size_t hi) {
    uint64_t dts = 0;
    for (size_t i = lo; i < hi; ++i) {
      for (const PointId pa : a) {
        ++dts;
        if (dom.Dominates(data.Row(pa), data.Row(b[i]))) {
          b_dead[i] = 1;
          break;
        }
      }
    }
    counter.AddTests(dts);
  });
  std::vector<PointId> b_live;
  for (size_t i = 0; i < b.size(); ++i) {
    if (!b_dead[i]) b_live.push_back(b[i]);
  }
  std::vector<uint8_t> a_dead(a.size(), 0);
  pool.ParallelFor(a.size(), kMergeGrain, [&](size_t lo, size_t hi) {
    uint64_t dts = 0;
    for (size_t i = lo; i < hi; ++i) {
      for (const PointId pb : b_live) {
        ++dts;
        if (dom.Dominates(data.Row(pb), data.Row(a[i]))) {
          a_dead[i] = 1;
          break;
        }
      }
    }
    counter.AddTests(dts);
  });
  std::vector<PointId> out;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_dead[i]) out.push_back(a[i]);
  }
  out.insert(out.end(), b_live.begin(), b_live.end());
  return out;
}

}  // namespace

Result APSkylineCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  const int t = opts.ResolvedThreads();
  ThreadPool pool(opts.executor, t);
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);
  const int d = data.dims();
  const size_t n = data.count();

  // ---- Angular partitioning. d=1 has no angles: fall back to one cell
  // per thread, linear split.
  WallTimer phase;
  const int num_angles = d - 1;
  std::vector<size_t> cell_of(n, 0);
  size_t num_cells = 1;
  if (num_angles >= 1 && n > 1) {
    const std::vector<Value> mins = data.MinPerDim();
    const std::vector<int> ext = GridExtents(t, num_angles);
    std::vector<std::vector<float>> angles(
        static_cast<size_t>(num_angles), std::vector<float>(n));
    pool.ParallelForStatic(n, [&](size_t b, size_t e, int) {
      float buf[kMaxDims];
      for (size_t i = b; i < e; ++i) {
        AnglesOf(data.Row(i), mins, d, buf);
        for (int k = 0; k < num_angles; ++k) {
          angles[static_cast<size_t>(k)][i] = buf[k];
        }
      }
    });
    // Equi-depth boundaries per angle (quantiles of the marginal).
    num_cells = 1;
    for (size_t k = 0; k < ext.size(); ++k) {
      const int splits = ext[k];
      if (splits <= 1) continue;
      std::vector<float> sorted = angles[k];
      std::vector<float> bounds;
      for (int s = 1; s < splits; ++s) {
        auto nth = sorted.begin() +
                   static_cast<ptrdiff_t>(n * static_cast<size_t>(s) /
                                          static_cast<size_t>(splits));
        std::nth_element(sorted.begin(), nth, sorted.end());
        bounds.push_back(*nth);
      }
      pool.ParallelForStatic(n, [&](size_t b, size_t e, int) {
        for (size_t i = b; i < e; ++i) {
          const size_t bucket = static_cast<size_t>(
              std::upper_bound(bounds.begin(), bounds.end(), angles[k][i]) -
              bounds.begin());
          cell_of[i] = cell_of[i] * static_cast<size_t>(splits) + bucket;
        }
      });
      num_cells *= static_cast<size_t>(splits);
    }
  } else {
    // Linear fallback: one chunk per thread.
    num_cells = static_cast<size_t>(t);
    const size_t per = (n + num_cells - 1) / num_cells;
    for (size_t i = 0; i < n; ++i) cell_of[i] = i / per;
  }
  std::vector<std::vector<PointId>> cells(num_cells);
  for (size_t i = 0; i < n; ++i) {
    cells[cell_of[i]].push_back(static_cast<PointId>(i));
  }
  st.init_seconds = phase.Lap();

  // ---- Phase I: local skyline per angular cell, in parallel.
  std::vector<std::vector<PointId>> locals(num_cells);
  pool.ParallelFor(num_cells, 1, [&](size_t lo, size_t hi) {
    uint64_t dts = 0;
    for (size_t c = lo; c < hi; ++c) {
      if (cells[c].empty()) continue;
      const size_t k = SSkylineBlock(data, cells[c], 0, cells[c].size(), dom,
                                     &dts, opts.cancel);
      locals[c].assign(cells[c].begin(),
                       cells[c].begin() + static_cast<ptrdiff_t>(k));
    }
    counter.AddTests(dts);
  });
  st.phase1_seconds = phase.Lap();

  // ---- Phase II: fold local skylines into the global one.
  std::vector<PointId> global;
  for (const auto& local : locals) {
    CheckCancel(opts.cancel);  // per-fold-step deadline checkpoint
    if (local.empty()) continue;
    if (global.empty()) {
      global = local;
    } else {
      global = MergeSkylines(data, global, local, dom, pool, counter);
    }
  }
  st.phase2_seconds = phase.Lap();

  res.skyline = std::move(global);
  st.skyline_size = res.skyline.size();
  st.dominance_tests = counter.tests();
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
