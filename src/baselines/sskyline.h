// Copyright (c) SkyBench-NG contributors.
// SSkyline (Im & Park, Inf. Syst. 2011): the in-place, index-swapping
// nested loop that PSkyline runs on each thread-local block. Exposed both
// as a standalone sequential algorithm and as the helper PSkyline uses.
#ifndef SKY_BASELINES_SSKYLINE_H_
#define SKY_BASELINES_SSKYLINE_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "data/dataset.h"
#include "dominance/dominance.h"

namespace sky {

/// In-place skyline of the points listed in `idx[begin, end)` (indices
/// into `data`). On return the first `k` slots of the range hold the
/// block's skyline; returns k. `dts` accumulates dominance tests.
/// `cancel` (optional) is polled every ~1k comparisons; a stop request
/// raises CancelledError — the scan has no partial-result notion, so
/// callers discard the block.
size_t SSkylineBlock(const Dataset& data, std::vector<PointId>& idx,
                     size_t begin, size_t end, const DomCtx& dom,
                     uint64_t* dts, const CancelToken* cancel = nullptr);

Result SSkylineCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_SSKYLINE_H_
