// Copyright (c) SkyBench-NG contributors.
// Sort-Filter Skyline (Chomicki, Godfrey, Gryz, Liang; ICDE 2003):
// presort by a monotone function of the coordinates (we use the L1 norm,
// as the paper's Q-Flow does) so that no point can be dominated by a
// successor; the window then only ever contains confirmed skyline points.
#ifndef SKY_BASELINES_SFS_H_
#define SKY_BASELINES_SFS_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result SfsCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_SFS_H_
