// Copyright (c) SkyBench-NG contributors.
#include "baselines/less.h"

#include <algorithm>
#include <vector>

#include "common/timer.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace {
/// Size of the elimination-filter window (points with the smallest L1
/// norms seen so far). Godfrey et al. use a buffer-pool page; a handful
/// of strong points captures nearly all of the effect in main memory.
constexpr size_t kEfWindow = 16;
}  // namespace

Result LessCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  ThreadPool pool(1);  // LESS is sequential
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);

  // ---- Pass 0: elimination-filter scan. The EF window keeps the
  // kEfWindow points with smallest L1; every point is tested against the
  // window and flagged if dominated. This removes the bulk of easy
  // points before sorting (the sort then runs on the survivors only).
  std::vector<uint32_t> ef;  // indices into ws, max-L1 kept at front
  ef.reserve(kEfWindow);
  const auto ef_less = [&](uint32_t a, uint32_t b) {
    return ws.l1[a] < ws.l1[b];
  };
  std::vector<uint8_t> flagged(ws.count, 0);
  uint64_t dts = 0;
  for (size_t i = 0; i < ws.count; ++i) {
    bool dominated = false;
    for (const uint32_t e : ef) {
      ++dts;
      if (dom.Dominates(ws.Row(e), ws.Row(i))) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      flagged[i] = 1;
      continue;
    }
    const uint32_t idx = static_cast<uint32_t>(i);
    if (ef.size() < kEfWindow) {
      ef.push_back(idx);
      std::push_heap(ef.begin(), ef.end(), ef_less);
    } else if (ws.l1[i] < ws.l1[ef.front()]) {
      std::pop_heap(ef.begin(), ef.end(), ef_less);
      ef.back() = idx;
      std::push_heap(ef.begin(), ef.end(), ef_less);
    }
  }
  const size_t kept = ws.CompressRange(0, ws.count, flagged.data());
  ws.count = kept;
  ws.ids.resize(kept);
  ws.l1.resize(kept);
  st.prefilter_seconds = phase.Lap();

  // ---- Sort survivors by L1, then SFS-style confirmed-window filter.
  SortByL1(ws, pool);
  st.init_seconds = phase.Lap();

  std::vector<uint32_t> window;
  std::vector<PointId> out;
  for (size_t i = 0; i < ws.count; ++i) {
    const Value* p = ws.Row(i);
    bool dominated = false;
    for (const uint32_t w : window) {
      ++dts;
      if (dom.Dominates(ws.Row(w), p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      window.push_back(static_cast<uint32_t>(i));
      out.push_back(ws.ids[i]);
      if (opts.progressive) {
        opts.progressive(std::span<const PointId>(&out.back(), 1));
      }
    }
  }
  counter.AddTests(dts);
  st.phase1_seconds = phase.Lap();

  res.skyline = std::move(out);
  st.skyline_size = res.skyline.size();
  st.dominance_tests = counter.tests();
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
