// Copyright (c) SkyBench-NG contributors.
#include "baselines/sskyline.h"

#include <utility>

#include "common/timer.h"

namespace sky {

// Classic three-pointer scan: `head` is the current candidate, `i` scans
// the unresolved middle, `tail` receives discarded points. When a point
// dominates the head, it becomes the new head and the scan restarts; when
// the scan passes `tail`, head is a confirmed skyline point.
size_t SSkylineBlock(const Dataset& data, std::vector<PointId>& idx,
                     size_t begin, size_t end, const DomCtx& dom,
                     uint64_t* dts, const CancelToken* cancel) {
  if (begin >= end) return 0;
  size_t head = begin;
  size_t tail = end - 1;
  uint64_t local = 0;
  size_t i = head + 1;
  while (head <= tail) {
    if ((local & 1023u) == 1023u) CheckCancel(cancel);
    if (i > tail) {
      // head confirmed: advance to the next unresolved candidate.
      ++head;
      if (head > tail) break;
      i = head + 1;
      continue;
    }
    const Relation rel = dom.Compare(data.Row(idx[head]), data.Row(idx[i]));
    ++local;
    if (rel == Relation::kLeftDominates) {
      // i is dominated: overwrite with the tail element.
      idx[i] = idx[tail];
      --tail;
    } else if (rel == Relation::kRightDominates) {
      // i dominates head: i becomes the head; restart its scan.
      idx[head] = idx[i];
      idx[i] = idx[tail];
      --tail;
      i = head + 1;
    } else {
      ++i;
    }
    if (tail == static_cast<size_t>(-1)) break;  // guard size_t wrap
  }
  if (dts != nullptr) *dts += local;
  return (tail - begin) + 1;
}

Result SSkylineCompute(const Dataset& data, const Options& opts) {
  Result res;
  if (data.count() == 0) return res;
  WallTimer total;
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);

  std::vector<PointId> idx(data.count());
  for (size_t i = 0; i < data.count(); ++i) idx[i] = static_cast<PointId>(i);
  uint64_t dts = 0;
  const size_t k =
      SSkylineBlock(data, idx, 0, data.count(), dom, &dts);
  idx.resize(k);

  res.skyline = std::move(idx);
  res.stats.skyline_size = res.skyline.size();
  res.stats.dominance_tests = opts.count_dts ? dts : 0;
  res.stats.total_seconds = total.Seconds();
  res.stats.phase1_seconds = res.stats.total_seconds;
  return res;
}

}  // namespace sky
