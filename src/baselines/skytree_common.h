// Copyright (c) SkyBench-NG contributors.
// Shared machinery for BSkyTree (Lee & Hwang, Inf. Syst. 2014) and the
// paper's parallelization PBSkyTree (Appendix A): the SkyTree arena, the
// lattice-based dominance filter, and balanced pivot selection.
//
// A SkyTree node holds one confirmed skyline point. Its children partition
// the node's region by their mask relative to the node's point; a query
// point q can only be dominated inside child c when c.mask ⊆ mask(q, node)
// — whole subtrees are skipped otherwise. This is the recursive
// region-wise incomparability that makes BSkyTree the sequential state of
// the art (paper §III).
#ifndef SKY_BASELINES_SKYTREE_COMMON_H_
#define SKY_BASELINES_SKYTREE_COMMON_H_

#include <algorithm>
#include <deque>
#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "data/partition.h"
#include "data/working_set.h"
#include "dominance/dominance.h"

namespace sky {
namespace skytree {

struct Node {
  uint32_t point;   ///< index into the WorkingSet
  Mask mask;        ///< mask relative to the parent's point
  std::vector<uint32_t> children;  ///< arena indices
};

/// Arena-allocated SkyTree over an immutable WorkingSet.
class Tree {
 public:
  explicit Tree(const WorkingSet& ws, const DomCtx& dom)
      : ws_(ws), dom_(dom), full_(FullMask(ws.dims)) {}

  uint32_t NewNode(uint32_t point, Mask mask) {
    arena_.push_back(Node{point, mask, {}});
    return static_cast<uint32_t>(arena_.size() - 1);
  }

  Node& At(uint32_t idx) { return arena_[idx]; }
  const Node& At(uint32_t idx) const { return arena_[idx]; }
  size_t NodeCount() const { return arena_.size(); }

  /// True iff some point in the subtree rooted at `node` dominates p.
  /// Each mask computation against a node's point costs one DT.
  bool Filter(uint32_t node, uint32_t p, uint64_t* dts,
              uint64_t* skips) const {
    const Node& n = arena_[node];
    const Mask m = dom_.PartitionMask(ws_.Row(p), ws_.Row(n.point));
    ++*dts;
    if (m == full_) {
      // The node's point potentially dominates p; only coincident points
      // escape (duplicates are skyline members too).
      return !dom_.Equal(ws_.Row(p), ws_.Row(n.point));
    }
    for (const uint32_t c : n.children) {
      if (MaskMayDominate(arena_[c].mask, m)) {
        if (Filter(c, p, dts, skips)) return true;
      } else {
        ++*skips;
      }
    }
    return false;
  }

  /// Collect every point stored in the tree (the skyline) as original ids.
  void CollectIds(std::vector<PointId>& out) const {
    out.reserve(out.size() + arena_.size());
    for (const Node& n : arena_) out.push_back(ws_.ids[n.point]);
  }

 private:
  const WorkingSet& ws_;
  const DomCtx& dom_;
  const Mask full_;
  std::deque<Node> arena_;
};

/// Balanced pivot (Lee & Hwang): among `pts`, pick a skyline point with
/// small normalised coordinate range. A greedy scan prefers dominators and
/// smaller ranges; a replacement pass then guarantees skyline membership.
/// `lo`/`hi` are global per-dimension bounds used for normalisation.
/// Returns an index *position* into pts.
size_t BalancedPivotIndex(const WorkingSet& ws,
                          const std::vector<uint32_t>& pts,
                          const std::vector<Value>& lo,
                          const std::vector<Value>& hi, const DomCtx& dom,
                          uint64_t* dts);

/// Random skyline pivot (OSP, Zhang et al. SIGMOD 2009): a uniformly drawn
/// point repaired to a skyline point of `pts` by one one-way replacement
/// scan. Returns an index position into pts.
size_t RandomPivotIndex(const WorkingSet& ws, const std::vector<uint32_t>& pts,
                        const DomCtx& dom, Rng& rng, uint64_t* dts);

/// Manhattan pivot: the minimum-L1 point of `pts` (necessarily in the
/// skyline of pts). Requires ws.l1.
size_t ManhattanPivotIndex(const WorkingSet& ws,
                           const std::vector<uint32_t>& pts, uint64_t* dts);

/// Policy-dispatching subset pivot. Policies without a natural in-subset
/// point (kMedian, kVolume) fall back to kBalanced, the BSkyTree default.
size_t SubsetPivotIndex(const WorkingSet& ws, const std::vector<uint32_t>& pts,
                        const std::vector<Value>& lo,
                        const std::vector<Value>& hi, const DomCtx& dom,
                        PivotPolicy policy, Rng& rng, uint64_t* dts);

}  // namespace skytree
}  // namespace sky

#endif  // SKY_BASELINES_SKYTREE_COMMON_H_
