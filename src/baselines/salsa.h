// Copyright (c) SkyBench-NG contributors.
// SaLSa (Bartolini, Ciaccia, Patella; TODS 2008): sort-based skyline with
// early termination. Points are sorted by minimum coordinate (ties by L1);
// the scan stops once the smallest unseen min-coordinate exceeds the
// smallest maximum coordinate among confirmed skyline points (the "stop
// point" dominates every remaining point).
#ifndef SKY_BASELINES_SALSA_H_
#define SKY_BASELINES_SALSA_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result SalsaCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_SALSA_H_
