// Copyright (c) SkyBench-NG contributors.
#include "baselines/sfs.h"

#include <vector>

#include "common/timer.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

Result SfsCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  ThreadPool pool(1);  // SFS is sequential
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);
  SortByL1(ws, pool);
  st.init_seconds = phase.Lap();

  // Window of confirmed skyline points (indices into the sorted ws).
  std::vector<uint32_t> window;
  window.reserve(256);
  uint64_t dts = 0;
  std::vector<PointId> out;
  for (size_t i = 0; i < ws.count; ++i) {
    const Value* p = ws.Row(i);
    bool dominated = false;
    for (const uint32_t w : window) {
      ++dts;
      if (dom.Dominates(ws.Row(w), p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      window.push_back(static_cast<uint32_t>(i));
      out.push_back(ws.ids[i]);
      if (opts.progressive) {
        opts.progressive(std::span<const PointId>(&out.back(), 1));
      }
    }
  }
  counter.AddTests(dts);
  st.phase1_seconds = phase.Lap();

  res.skyline = std::move(out);
  st.skyline_size = res.skyline.size();
  st.dominance_tests = counter.tests();
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
