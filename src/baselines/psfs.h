// Copyright (c) SkyBench-NG contributors.
// PSFS (Im & Park, Inf. Syst. 2011): parallel Sort-Filter-Skyline, the
// naive baseline the paper calls "a weaker version of our Q-Flow".
// Blocks of the L1-sorted input are screened against the confirmed window
// in parallel (like Q-Flow Phase I), but the peer resolution within a
// block is sequential — there is no parallel Phase II.
#ifndef SKY_BASELINES_PSFS_H_
#define SKY_BASELINES_PSFS_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result PsfsCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_PSFS_H_
