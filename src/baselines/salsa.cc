// Copyright (c) SkyBench-NG contributors.
#include "baselines/salsa.h"

#include <algorithm>
#include <vector>

#include "common/timer.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

Result SalsaCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  ThreadPool pool(1);  // SaLSa is sequential
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);
  SortByMinCoord(ws, pool);
  st.init_seconds = phase.Lap();

  const int d = ws.dims;
  // Smallest "maximum coordinate" among skyline points found so far. Once
  // min_i(p) > stop_threshold, the stop point s* satisfies
  // s*[i] <= stop_threshold < min_i(p) <= p[i] for all i: p is strictly
  // dominated and so is every later point in the sort order.
  float stop_threshold = 1e30f;

  std::vector<uint32_t> window;
  std::vector<PointId> out;
  uint64_t dts = 0;
  for (size_t i = 0; i < ws.count; ++i) {
    const Value* p = ws.Row(i);
    float mn = p[0], mx = p[0];
    for (int j = 1; j < d; ++j) {
      mn = std::min(mn, p[j]);
      mx = std::max(mx, p[j]);
    }
    if (mn > stop_threshold) break;  // early termination
    bool dominated = false;
    for (const uint32_t w : window) {
      ++dts;
      if (dom.Dominates(ws.Row(w), p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      window.push_back(static_cast<uint32_t>(i));
      out.push_back(ws.ids[i]);
      stop_threshold = std::min(stop_threshold, mx);
      if (opts.progressive) {
        opts.progressive(std::span<const PointId>(&out.back(), 1));
      }
    }
  }
  counter.AddTests(dts);
  st.phase1_seconds = phase.Lap();

  res.skyline = std::move(out);
  st.skyline_size = res.skyline.size();
  st.dominance_tests = counter.tests();
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
