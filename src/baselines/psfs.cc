// Copyright (c) SkyBench-NG contributors.
#include "baselines/psfs.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/cancel.h"
#include "common/timer.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

Result PsfsCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  ThreadPool pool(opts.executor, opts.ResolvedThreads());
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);
  SortByL1(ws, pool);
  st.init_seconds = phase.Lap();

  const size_t alpha = opts.AlphaFor(Algorithm::kPsfs);
  const size_t stride = static_cast<size_t>(ws.stride);
  AlignedBuffer<Value> sky_rows(ws.count * stride);
  std::vector<PointId> sky_ids;
  size_t sky_count = 0;
  const auto sky_row = [&](size_t i) { return sky_rows.data() + i * stride; };
  const size_t row_bytes = sizeof(Value) * stride;

  std::vector<uint8_t> flags(std::min(alpha, ws.count));

  for (size_t b = 0; b < ws.count; b += alpha) {
    CheckCancel(opts.cancel);  // per-block deadline checkpoint
    const size_t e = std::min(b + alpha, ws.count);
    const size_t blen = e - b;
    std::fill_n(flags.begin(), blen, uint8_t{0});

    // Parallel screen against the confirmed window.
    phase.Restart();
    pool.ParallelFor(blen, 16, [&](size_t lo, size_t hi) {
      uint64_t dts = 0;
      for (size_t k = lo; k < hi; ++k) {
        const Value* q = ws.Row(b + k);
        for (size_t s = 0; s < sky_count; ++s) {
          ++dts;
          if (dom.Dominates(sky_row(s), q)) {
            flags[k] = 1;
            break;
          }
        }
      }
      counter.AddTests(dts);
    });
    st.phase1_seconds += phase.Lap();

    // Sequential peer resolution: append survivors one by one, testing
    // each against the points this block has already appended.
    const size_t survivors = ws.CompressRange(b, e, flags.data());
    uint64_t dts = 0;
    const size_t block_sky_begin = sky_count;
    for (size_t k = 0; k < survivors; ++k) {
      const Value* q = ws.Row(b + k);
      bool dominated = false;
      for (size_t s = block_sky_begin; s < sky_count; ++s) {
        ++dts;
        if (dom.Dominates(sky_row(s), q)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        std::memcpy(sky_row(sky_count), q, row_bytes);
        sky_ids.push_back(ws.ids[b + k]);
        ++sky_count;
      }
    }
    counter.AddTests(dts);
    st.phase2_seconds += phase.Lap();

    if (opts.progressive && sky_count > block_sky_begin) {
      opts.progressive(std::span<const PointId>(
          sky_ids.data() + block_sky_begin, sky_count - block_sky_begin));
    }
  }

  res.skyline = std::move(sky_ids);
  st.skyline_size = sky_count;
  st.dominance_tests = counter.tests();
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
