// Copyright (c) SkyBench-NG contributors.
#include "baselines/bskytree_s.h"

#include <vector>

#include "common/bits.h"
#include "common/timer.h"
#include "data/partition.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

Result BSkyTreeSCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  ThreadPool pool(1);  // sequential by design
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);
  st.init_seconds += phase.Lap();

  // One global pivot (Balanced, per Lee & Hwang) and level-1 masks.
  const std::vector<Value> pivot =
      SelectPivot(ws, PivotPolicy::kBalanced, pool, opts.seed);
  AssignMasks(ws, pivot.data(), dom, pool);
  st.pivot_seconds = phase.Lap();

  SortByMaskThenL1(ws, pool);
  st.init_seconds += phase.Lap();

  // SFS-style scan over the sorted points: the window holds confirmed
  // skyline points (sort order guarantees no successor dominates a
  // predecessor); each dominance test is guarded by the subset filter on
  // the stored masks (paper §VI-A2).
  std::vector<uint32_t> window;
  std::vector<PointId> out;
  uint64_t dts = 0, skips = 0;
  for (size_t i = 0; i < ws.count; ++i) {
    const Value* p = ws.Row(i);
    const Mask m = ws.masks[i];
    bool dominated = false;
    for (const uint32_t w : window) {
      if (MaskIncomparable(ws.masks[w], m)) {
        ++skips;
        continue;
      }
      ++dts;
      if (dom.Dominates(ws.Row(w), p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      window.push_back(static_cast<uint32_t>(i));
      out.push_back(ws.ids[i]);
      if (opts.progressive) {
        opts.progressive(std::span<const PointId>(&out.back(), 1));
      }
    }
  }
  counter.AddTests(dts);
  counter.AddMaskSkips(skips);
  st.phase1_seconds = phase.Lap();

  res.skyline = std::move(out);
  st.skyline_size = res.skyline.size();
  st.dominance_tests = counter.tests();
  st.mask_filter_hits = counter.mask_skips();
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
