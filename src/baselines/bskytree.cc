// Copyright (c) SkyBench-NG contributors.
#include "baselines/bskytree.h"

#include <algorithm>
#include <utility>

#include "baselines/skytree_common.h"
#include "common/timer.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace skytree {

size_t BalancedPivotIndex(const WorkingSet& ws,
                          const std::vector<uint32_t>& pts,
                          const std::vector<Value>& lo,
                          const std::vector<Value>& hi, const DomCtx& dom,
                          uint64_t* dts) {
  const int d = ws.dims;
  const auto range_of = [&](uint32_t p) {
    const Value* r = ws.Row(p);
    float mn = 1e30f, mx = -1e30f;
    for (int j = 0; j < d; ++j) {
      const float span =
          hi[static_cast<size_t>(j)] - lo[static_cast<size_t>(j)];
      const float norm =
          span > 0 ? (r[j] - lo[static_cast<size_t>(j)]) / span : 0.0f;
      mn = std::min(mn, norm);
      mx = std::max(mx, norm);
    }
    return mx - mn;
  };
  size_t cand = 0;
  float cand_range = range_of(pts[0]);
  for (size_t i = 1; i < pts.size(); ++i) {
    ++*dts;
    if (dom.Dominates(ws.Row(pts[i]), ws.Row(pts[cand]))) {
      cand = i;
      cand_range = range_of(pts[i]);
    } else if (!dom.Dominates(ws.Row(pts[cand]), ws.Row(pts[i]))) {
      const float r = range_of(pts[i]);
      if (r < cand_range) {
        cand = i;
        cand_range = r;
      }
    }
  }
  // Repair pass: a range-based switch can land on a dominated point; the
  // one-way replacement chain below always terminates on a skyline point
  // of `pts`.
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i == cand) continue;
    ++*dts;
    if (dom.Dominates(ws.Row(pts[i]), ws.Row(pts[cand]))) cand = i;
  }
  return cand;
}

size_t RandomPivotIndex(const WorkingSet& ws,
                        const std::vector<uint32_t>& pts, const DomCtx& dom,
                        Rng& rng, uint64_t* dts) {
  size_t cand = static_cast<size_t>(rng.NextBounded(pts.size()));
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i == cand) continue;
    ++*dts;
    if (dom.Dominates(ws.Row(pts[i]), ws.Row(pts[cand]))) cand = i;
  }
  return cand;
}

size_t ManhattanPivotIndex(const WorkingSet& ws,
                           const std::vector<uint32_t>& pts, uint64_t* dts) {
  (void)dts;
  SKY_DCHECK(ws.l1.size() == ws.count);
  size_t cand = 0;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (ws.l1[pts[i]] < ws.l1[pts[cand]]) cand = i;
  }
  return cand;
}

size_t SubsetPivotIndex(const WorkingSet& ws, const std::vector<uint32_t>& pts,
                        const std::vector<Value>& lo,
                        const std::vector<Value>& hi, const DomCtx& dom,
                        PivotPolicy policy, Rng& rng, uint64_t* dts) {
  switch (policy) {
    case PivotPolicy::kRandom:
      return RandomPivotIndex(ws, pts, dom, rng, dts);
    case PivotPolicy::kManhattan:
      if (!ws.l1.empty()) return ManhattanPivotIndex(ws, pts, dts);
      [[fallthrough]];
    case PivotPolicy::kBalanced:
    case PivotPolicy::kMedian:  // no in-subset analogue: use balanced
    case PivotPolicy::kVolume:
      return BalancedPivotIndex(ws, pts, lo, hi, dom, dts);
  }
  return BalancedPivotIndex(ws, pts, lo, hi, dom, dts);
}

}  // namespace skytree

namespace {

using skytree::Tree;

/// Sequential recursive construction (BSkyTree-P).
class Builder {
 public:
  Builder(const WorkingSet& ws, const DomCtx& dom,
          const std::vector<Value>& lo, const std::vector<Value>& hi,
          PivotPolicy policy, uint64_t seed)
      : ws_(ws), dom_(dom), lo_(lo), hi_(hi), tree_(ws, dom),
        full_(FullMask(ws.dims)), policy_(policy), rng_(seed) {}

  uint32_t Build(std::vector<uint32_t>& pts) {
    SKY_DCHECK(!pts.empty());
    const size_t pivot_pos = skytree::SubsetPivotIndex(
        ws_, pts, lo_, hi_, dom_, policy_, rng_, &dts_);
    const uint32_t pivot = pts[pivot_pos];
    const uint32_t node = tree_.NewNode(pivot, /*mask=*/0);

    // Partition the remaining points by mask relative to the pivot;
    // full-mask points are dominated (or coincident duplicates).
    std::vector<std::pair<uint32_t, uint32_t>> keyed;  // (composite key, pt)
    keyed.reserve(pts.size());
    std::vector<uint32_t> duplicates;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (i == pivot_pos) continue;
      const uint32_t p = pts[i];
      const Mask m = dom_.PartitionMask(ws_.Row(p), ws_.Row(pivot));
      ++dts_;
      if (m == full_) {
        if (dom_.Equal(ws_.Row(p), ws_.Row(pivot))) duplicates.push_back(p);
        continue;  // dominated by the pivot: pruned
      }
      keyed.emplace_back(CompositeMaskKey(m, ws_.dims), p);
    }
    std::sort(keyed.begin(), keyed.end());

    // Process mask groups in (level, mask) order: a group's potential
    // dominators are always in already-completed sibling subtrees.
    size_t g = 0;
    std::vector<uint32_t> survivors;
    while (g < keyed.size()) {
      size_t g_end = g;
      while (g_end < keyed.size() && keyed[g_end].first == keyed[g].first) {
        ++g_end;
      }
      const Mask m = KeyToMask(keyed[g].first, ws_.dims);
      survivors.clear();
      for (size_t i = g; i < g_end; ++i) {
        const uint32_t p = keyed[i].second;
        bool dominated = false;
        for (const uint32_t c : tree_.At(node).children) {
          if (MaskMayDominate(tree_.At(c).mask, m)) {
            if (tree_.Filter(c, p, &dts_, &skips_)) {
              dominated = true;
              break;
            }
          } else {
            ++skips_;
          }
        }
        if (!dominated) survivors.push_back(p);
      }
      if (!survivors.empty()) {
        const uint32_t child = Build(survivors);
        tree_.At(child).mask = m;
        tree_.At(node).children.push_back(child);
      }
      g = g_end;
    }

    // Coincident duplicates of the pivot are skyline points; attach as
    // full-mask leaves (they can neither dominate nor be dominated).
    for (const uint32_t p : duplicates) {
      tree_.At(node).children.push_back(tree_.NewNode(p, full_));
    }
    return node;
  }

  Tree& tree() { return tree_; }
  uint64_t dts() const { return dts_; }
  uint64_t skips() const { return skips_; }

 private:
  const WorkingSet& ws_;
  const DomCtx& dom_;
  const std::vector<Value>& lo_;
  const std::vector<Value>& hi_;
  Tree tree_;
  const Mask full_;
  PivotPolicy policy_;
  Rng rng_;
  uint64_t dts_ = 0;
  uint64_t skips_ = 0;
};

}  // namespace

Result BSkyTreeCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  ThreadPool pool(1);
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);  // used by the Manhattan subset-pivot policy
  const std::vector<Value> lo = data.MinPerDim();
  const std::vector<Value> hi = data.MaxPerDim();
  st.init_seconds = phase.Lap();

  Builder builder(ws, dom, lo, hi, opts.pivot, opts.seed);
  std::vector<uint32_t> all(ws.count);
  for (size_t i = 0; i < ws.count; ++i) all[i] = static_cast<uint32_t>(i);
  builder.Build(all);
  st.phase1_seconds = phase.Lap();

  builder.tree().CollectIds(res.skyline);
  st.skyline_size = res.skyline.size();
  if (opts.count_dts) {
    st.dominance_tests = builder.dts();
    st.mask_filter_hits = builder.skips();
  }
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
