// Copyright (c) SkyBench-NG contributors.
#include "baselines/pskyline.h"

#include <algorithm>
#include <vector>

#include "baselines/sskyline.h"
#include "common/cancel.h"
#include "common/timer.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace {

constexpr size_t kMergeGrain = 64;

/// skyline(A ∪ B) for two sets that are each skylines already. A point of
/// B survives iff no A point dominates it; a point of A survives iff no
/// *surviving* B point dominates it (any dominating B point is itself
/// undominated by A, by transitivity, so checking survivors suffices).
std::vector<PointId> MergeSkylines(const Dataset& data,
                                   const std::vector<PointId>& a,
                                   const std::vector<PointId>& b,
                                   const DomCtx& dom, ThreadPool& pool,
                                   DtCounter& counter) {
  std::vector<uint8_t> b_dead(b.size(), 0);
  pool.ParallelFor(b.size(), kMergeGrain, [&](size_t lo, size_t hi) {
    uint64_t dts = 0;
    for (size_t i = lo; i < hi; ++i) {
      const Value* q = data.Row(b[i]);
      for (const PointId pa : a) {
        ++dts;
        if (dom.Dominates(data.Row(pa), q)) {
          b_dead[i] = 1;
          break;
        }
      }
    }
    counter.AddTests(dts);
  });
  std::vector<PointId> b_live;
  b_live.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    if (!b_dead[i]) b_live.push_back(b[i]);
  }

  std::vector<uint8_t> a_dead(a.size(), 0);
  pool.ParallelFor(a.size(), kMergeGrain, [&](size_t lo, size_t hi) {
    uint64_t dts = 0;
    for (size_t i = lo; i < hi; ++i) {
      const Value* q = data.Row(a[i]);
      for (const PointId pb : b_live) {
        ++dts;
        if (dom.Dominates(data.Row(pb), q)) {
          a_dead[i] = 1;
          break;
        }
      }
    }
    counter.AddTests(dts);
  });

  std::vector<PointId> out;
  out.reserve(a.size() + b_live.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_dead[i]) out.push_back(a[i]);
  }
  out.insert(out.end(), b_live.begin(), b_live.end());
  return out;
}

}  // namespace

Result PSkylineCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;
  WallTimer total;
  const int t = opts.ResolvedThreads();
  ThreadPool pool(opts.executor, t);
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);

  // ---- Phase I (parallel map): local skylines of t linear blocks.
  WallTimer phase;
  const size_t n = data.count();
  std::vector<PointId> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<PointId>(i);
  const size_t blocks = static_cast<size_t>(t);
  const size_t per = (n + blocks - 1) / blocks;
  std::vector<std::vector<PointId>> locals(blocks);
  pool.ParallelFor(blocks, 1, [&](size_t lo, size_t hi) {
    uint64_t dts = 0;
    for (size_t blk = lo; blk < hi; ++blk) {
      const size_t begin = std::min(n, blk * per);
      const size_t end = std::min(n, begin + per);
      // The in-block scan polls the token itself; a raised CancelledError
      // is captured by the TaskGroup and rethrown at the join.
      const size_t k =
          SSkylineBlock(data, idx, begin, end, dom, &dts, opts.cancel);
      locals[blk].assign(idx.begin() + static_cast<ptrdiff_t>(begin),
                         idx.begin() + static_cast<ptrdiff_t>(begin + k));
    }
    counter.AddTests(dts);
  });
  st.phase1_seconds = phase.Lap();

  // ---- Phase II (parallel reduce): fold local skylines into the global
  // one; each fold step is internally parallel.
  std::vector<PointId> global;
  for (const auto& local : locals) {
    CheckCancel(opts.cancel);  // per-fold-step deadline checkpoint
    if (global.empty()) {
      global = local;
    } else if (!local.empty()) {
      global = MergeSkylines(data, global, local, dom, pool, counter);
    }
  }
  st.phase2_seconds = phase.Lap();

  res.skyline = std::move(global);
  st.skyline_size = res.skyline.size();
  st.dominance_tests = counter.tests();
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
