// Copyright (c) SkyBench-NG contributors.
// PBSkyTree (paper Appendix A): the paper's non-trivial parallelization of
// BSkyTree. Recursion is halted below 64 points; halted sibling groups are
// accumulated (in DFS order) into work batches of up to 16 * threads
// points, which are then filtered in parallel against the current SkyTree
// and against preceding batch survivors, and attached as leaves.
// Partitioning (mask computation) is parallelized; pivot selection is not
// (its cost is negligible).
#ifndef SKY_BASELINES_PBSKYTREE_H_
#define SKY_BASELINES_PBSKYTREE_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result PBSkyTreeCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_PBSKYTREE_H_
