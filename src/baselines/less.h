// Copyright (c) SkyBench-NG contributors.
// LESS (Godfrey, Shipley, Gryz; VLDB J. 2007): "Linear Elimination Sort
// for Skyline". The paper's related work (§III) groups it with SFS and
// SaLSa ("all three have similar performance"); it is included to
// complete the sort-based family. LESS folds dominance elimination into
// the sort itself: pass 0 streams the data through a small
// elimination-filter (EF) window of the best points seen, discarding the
// bulk of dominated points before the (cheaper) sort of the survivors;
// an SFS-style filter pass finishes the job.
#ifndef SKY_BASELINES_LESS_H_
#define SKY_BASELINES_LESS_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result LessCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_LESS_H_
