// Copyright (c) SkyBench-NG contributors.
// PSkyline (Im & Park, Inf. Syst. 2011): the state-of-the-art multicore
// baseline of the paper. The dataset is cut linearly into one block per
// thread; each thread computes its local skyline with SSkyline (parallel
// map), and local results are folded into a global skyline with a
// parallelized two-sided merge (parallel reduce).
#ifndef SKY_BASELINES_PSKYLINE_H_
#define SKY_BASELINES_PSKYLINE_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result PSkylineCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_PSKYLINE_H_
