// Copyright (c) SkyBench-NG contributors.
// APSkyline (Liknes, Vlachou, Doulkeridis, Nørvåg; DASFAA 2014): the
// third multicore algorithm of the paper's related work (§III). Same
// divide-and-conquer pattern as PSkyline, but the dataset is partitioned
// by *angle* around the origin instead of linearly: points within an
// angular sector are far more likely to dominate each other, so local
// skylines are smaller and the merge phase cheaper. The paper notes the
// approach "does not scale with dimensionality" (its own evaluation stops
// at d = 5) — reproduced here by the equi-depth angular grid degrading to
// few effective splits at high d.
#ifndef SKY_BASELINES_APSKYLINE_H_
#define SKY_BASELINES_APSKYLINE_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result APSkylineCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_APSKYLINE_H_
