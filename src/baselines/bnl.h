// Copyright (c) SkyBench-NG contributors.
// Block-nested-loop skyline (Börzsönyi et al., ICDE 2001): the original
// main-memory algorithm. Kept deliberately simple — it is the library's
// correctness oracle for every other implementation.
#ifndef SKY_BASELINES_BNL_H_
#define SKY_BASELINES_BNL_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

Result BnlCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_BASELINES_BNL_H_
