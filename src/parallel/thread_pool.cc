// Copyright (c) SkyBench-NG contributors.
#include "parallel/thread_pool.h"

#include <algorithm>

#include "common/macros.h"

namespace sky {

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::DefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ThreadPool::WorkerLoop(int index) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunOnAll(const std::function<void(int)>& fn) {
  if (threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    running_ = threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);  // caller is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(1, grain);
  if (threads_ == 1 || n <= grain) {
    fn(0, n);
    return;
  }
  std::atomic<size_t> cursor{0};
  RunOnAll([&](int) {
    for (;;) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(begin, std::min(begin + grain, n));
    }
  });
}

void ThreadPool::ParallelForStatic(
    size_t n, const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    fn(0, n, 0);
    return;
  }
  const size_t per = (n + static_cast<size_t>(threads_) - 1) /
                     static_cast<size_t>(threads_);
  RunOnAll([&](int w) {
    const size_t begin = std::min(n, per * static_cast<size_t>(w));
    const size_t end = std::min(n, begin + per);
    if (begin < end) fn(begin, end, w);
  });
}

}  // namespace sky
