// Copyright (c) SkyBench-NG contributors.
#include "parallel/thread_pool.h"

#include <algorithm>

#include "parallel/executor.h"

namespace sky {

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  if (threads_ > 1) {
    owned_ = std::make_unique<Executor>(threads_);
    exec_ = owned_.get();
  }
}

ThreadPool::ThreadPool(Executor* executor, int threads)
    : threads_(std::max(1, threads)) {
  if (executor != nullptr) {
    threads_ = std::max(1, std::min(threads_, executor->threads()));
    if (threads_ > 1) exec_ = executor;
  } else if (threads_ > 1) {
    owned_ = std::make_unique<Executor>(threads_);
    exec_ = owned_.get();
  }
}

ThreadPool::~ThreadPool() = default;

int ThreadPool::DefaultThreads() { return Executor::DefaultThreads(); }

void ThreadPool::RunOnAll(const std::function<void(int)>& fn) {
  if (exec_ == nullptr) {
    fn(0);
    return;
  }
  Executor::TaskGroup group(*exec_, threads_);
  group.RunOnAll(fn);
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (exec_ == nullptr) {
    fn(0, n);
    return;
  }
  Executor::TaskGroup group(*exec_, threads_);
  group.ParallelFor(n, grain, fn);
}

void ThreadPool::ParallelForStatic(
    size_t n, const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  if (exec_ == nullptr) {
    fn(0, n, 0);
    return;
  }
  Executor::TaskGroup group(*exec_, threads_);
  group.ParallelForStatic(n, fn);
}

}  // namespace sky
