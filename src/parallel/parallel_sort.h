// Copyright (c) SkyBench-NG contributors.
// Parallel merge sort used by the initialization phases ("Init." in paper
// Figs. 7/8 covers L1 computation + sorting; both are parallelized).
#ifndef SKY_PARALLEL_PARALLEL_SORT_H_
#define SKY_PARALLEL_PARALLEL_SORT_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.h"

namespace sky {

/// Sort `v` ascending by `less` using `pool`: the vector is cut into one
/// chunk per worker, chunks are std::sort-ed in parallel, then log(t)
/// rounds of pairwise std::inplace_merge (independent pairs merged in
/// parallel). Not stable. Falls back to std::sort for small inputs or a
/// single worker.
template <typename T, typename Less = std::less<T>>
void ParallelSort(std::vector<T>& v, ThreadPool& pool, Less less = Less{}) {
  const size_t n = v.size();
  const int t = pool.threads();
  if (t == 1 || n < (1u << 14)) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  const size_t per = (n + static_cast<size_t>(t) - 1) / static_cast<size_t>(t);
  std::vector<size_t> bounds;
  for (size_t b = 0; b < n; b += per) bounds.push_back(b);
  bounds.push_back(n);
  const size_t chunks = bounds.size() - 1;
  pool.ParallelFor(chunks, 1, [&](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      std::sort(v.begin() + static_cast<ptrdiff_t>(bounds[c]),
                v.begin() + static_cast<ptrdiff_t>(bounds[c + 1]), less);
    }
  });
  for (size_t step = 1; step < chunks; step *= 2) {
    std::vector<std::array<size_t, 3>> merges;
    for (size_t i = 0; i + step < chunks; i += 2 * step) {
      merges.push_back({bounds[i], bounds[i + step],
                        bounds[std::min(i + 2 * step, chunks)]});
    }
    pool.ParallelFor(merges.size(), 1, [&](size_t b, size_t e) {
      for (size_t m = b; m < e; ++m) {
        std::inplace_merge(v.begin() + static_cast<ptrdiff_t>(merges[m][0]),
                           v.begin() + static_cast<ptrdiff_t>(merges[m][1]),
                           v.begin() + static_cast<ptrdiff_t>(merges[m][2]),
                           less);
      }
    });
  }
}

/// Convenience instantiation for packed uint64 keys.
void ParallelSortU64(std::vector<uint64_t>& keys, ThreadPool& pool);

}  // namespace sky

#endif  // SKY_PARALLEL_PARALLEL_SORT_H_
