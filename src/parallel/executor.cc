// Copyright (c) SkyBench-NG contributors.
#include "parallel/executor.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/failpoint.h"

namespace sky {

namespace {

/// Worker identity: set once per worker thread at startup. A thread that
/// is not a worker of executor E (external caller, or a worker of some
/// other executor) submits to E through the injection queue and steals
/// from every deque when helping.
struct WorkerTls {
  Executor* exec = nullptr;
  int index = -1;
};
thread_local WorkerTls tls_worker;

}  // namespace

// ---------------------------------------------------------------------------
// Deque
// ---------------------------------------------------------------------------

Executor::Deque::Ring::Ring(size_t cap)
    : capacity(cap), mask(cap - 1), cells(new std::atomic<Task*>[cap]) {
  for (size_t i = 0; i < cap; ++i) {
    cells[i].store(nullptr, std::memory_order_relaxed);
  }
}

Executor::Deque::Deque() {
  auto ring = std::make_unique<Ring>(64);
  ring_.store(ring.get(), std::memory_order_relaxed);
  retired_.push_back(std::move(ring));
}

Executor::Deque::~Deque() = default;

Executor::Deque::Ring* Executor::Deque::Grow(Ring* old, int64_t top,
                                             int64_t bottom) {
  auto bigger = std::make_unique<Ring>(old->capacity * 2);
  for (int64_t i = top; i < bottom; ++i) {
    bigger->cells[static_cast<size_t>(i) & bigger->mask].store(
        old->cells[static_cast<size_t>(i) & old->mask].load(
            std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  Ring* raw = bigger.get();
  ring_.store(raw, std::memory_order_release);
  retired_.push_back(std::move(bigger));
  return raw;
}

void Executor::Deque::Push(Task* t) {
  const int64_t b = bottom_.load(std::memory_order_relaxed);
  const int64_t top = top_.load(std::memory_order_seq_cst);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (b - top >= static_cast<int64_t>(ring->capacity)) {
    ring = Grow(ring, top, b);
  }
  ring->cells[static_cast<size_t>(b) & ring->mask].store(
      t, std::memory_order_relaxed);
  // seq_cst store doubles as the release that publishes the cell to
  // thieves reading bottom_.
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

Executor::Task* Executor::Deque::Pop() {
  const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Ring* ring = ring_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  int64_t top = top_.load(std::memory_order_seq_cst);
  if (top <= b) {
    Task* t = ring->cells[static_cast<size_t>(b) & ring->mask].load(
        std::memory_order_relaxed);
    if (top == b) {
      // Last element: race against thieves for it via the top_ CAS.
      if (!top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_seq_cst)) {
        t = nullptr;
      }
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }
    return t;
  }
  bottom_.store(b + 1, std::memory_order_seq_cst);
  return nullptr;
}

Executor::Task* Executor::Deque::Steal() {
  int64_t top = top_.load(std::memory_order_seq_cst);
  const int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (top >= b) return nullptr;
  Ring* ring = ring_.load(std::memory_order_acquire);
  Task* t = ring->cells[static_cast<size_t>(top) & ring->mask].load(
      std::memory_order_relaxed);
  // top_ only ever increases, so the CAS cannot ABA: success means the
  // value read above was the live entry for index `top`.
  if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return nullptr;
  }
  return t;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(int threads) : threads_(std::max(1, threads)) {
  const int spawned = threads_ - 1;
  deques_.reserve(static_cast<size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(static_cast<size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // TaskGroups wait in their destructor, so every queue is empty here.
}

int Executor::DefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

Executor::CountersSnapshot Executor::Counters() const {
  CountersSnapshot s;
  s.tasks = tasks_total_.load(std::memory_order_relaxed);
  s.steals = steals_total_.load(std::memory_order_relaxed);
  s.inline_runs = inline_total_.load(std::memory_order_relaxed);
  s.parks = parks_total_.load(std::memory_order_relaxed);
  s.queue_depth = static_cast<size_t>(
      std::max<int64_t>(0, queued_.load(std::memory_order_relaxed)));
  return s;
}

void Executor::Submit(Task* t) {
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (tls_worker.exec == this) {
    deques_[static_cast<size_t>(tls_worker.index)]->Push(t);
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    inject_.push_back(t);
  }
  // Wake a parked worker. A worker publishes parked_ before re-checking
  // queued_ under park_mu_ and we incremented queued_ before reading
  // parked_ (both seq_cst), so at least one side always sees the other:
  // either the worker sees the new task and stays awake, or we see it
  // parked and deliver a notify it cannot miss (the notify is serialised
  // against its wait by park_mu_).
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }
}

Executor::Task* Executor::TryAcquire(bool* stolen) {
  *stolen = false;
  const bool is_worker = tls_worker.exec == this;
  if (is_worker) {
    if (Task* t = deques_[static_cast<size_t>(tls_worker.index)]->Pop()) {
      queued_.fetch_sub(1, std::memory_order_seq_cst);
      return t;
    }
  }
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!inject_.empty()) {
      Task* t = inject_.front();
      inject_.pop_front();
      queued_.fetch_sub(1, std::memory_order_seq_cst);
      return t;
    }
  }
  const size_t n = deques_.size();
  if (n != 0) {
    // Rotate the sweep start so thieves spread across victims.
    static thread_local size_t rotation = 0;
    const size_t start = rotation++;
    for (size_t k = 0; k < n; ++k) {
      const size_t j = (start + k) % n;
      if (is_worker && j == static_cast<size_t>(tls_worker.index)) continue;
      if (Task* t = deques_[j]->Steal()) {
        queued_.fetch_sub(1, std::memory_order_seq_cst);
        *stolen = true;
        return t;
      }
    }
  }
  return nullptr;
}

bool Executor::HelpOnce() {
  bool stolen = false;
  Task* t = TryAcquire(&stolen);
  if (t == nullptr) return false;
  Execute(t, stolen);
  return true;
}

void Executor::Execute(Task* t, bool stolen) {
  TaskGroup* group = t->group;
  tasks_total_.fetch_add(1, std::memory_order_relaxed);
  if (stolen) {
    steals_total_.fetch_add(1, std::memory_order_relaxed);
    group->steals_.fetch_add(1, std::memory_order_relaxed);
  }
  group->NoteParticipant();
  try {
    SKY_FAILPOINT("executor_task");
    t->fn();
  } catch (...) {
    // The worker loop is effectively noexcept: an escaping exception
    // would terminate the process. Contain it in the group instead.
    group->CaptureException(std::current_exception());
  }
  delete t;
  group->FinishTask();
}

void Executor::WorkerLoop(int index) {
  tls_worker = {this, index};
  for (;;) {
    bool stolen = false;
    if (Task* t = TryAcquire(&stolen)) {
      Execute(t, stolen);
      continue;
    }
    // Work is nominally queued but a race took it from under us — retry
    // briefly instead of thrashing park/unpark.
    if (queued_.load(std::memory_order_seq_cst) > 0) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    if (shutdown_) return;
    parked_.fetch_add(1, std::memory_order_seq_cst);
    if (queued_.load(std::memory_order_seq_cst) > 0) {
      parked_.fetch_sub(1, std::memory_order_seq_cst);
      continue;
    }
    parks_total_.fetch_add(1, std::memory_order_relaxed);
    park_cv_.wait(lock, [&] {
      return shutdown_ || queued_.load(std::memory_order_seq_cst) > 0;
    });
    parked_.fetch_sub(1, std::memory_order_seq_cst);
    if (shutdown_) return;
  }
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

Executor::TaskGroup::TaskGroup(Executor& exec, int max_parallelism)
    : exec_(exec),
      parallelism_(std::max(
          1, std::min(max_parallelism <= 0 ? exec.threads() : max_parallelism,
                      exec.threads()))) {}

Executor::TaskGroup::~TaskGroup() { WaitDone(); }

void Executor::TaskGroup::NoteParticipant() {
  int bit = 0;  // external caller / submitting thread
  if (tls_worker.exec == &exec_) bit = 1 + std::min(tls_worker.index, 62);
  participant_mask_.fetch_or(uint64_t{1} << bit, std::memory_order_relaxed);
}

void Executor::TaskGroup::RunInline(const std::function<void()>& fn) {
  inline_runs_.fetch_add(1, std::memory_order_relaxed);
  exec_.inline_total_.fetch_add(1, std::memory_order_relaxed);
  NoteParticipant();
  try {
    fn();
  } catch (...) {
    // Same containment as the queued path: the submitter may be mid
    // fork loop; the exception surfaces at Wait() like any other.
    CaptureException(std::current_exception());
  }
}

void Executor::TaskGroup::CaptureException(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(done_mu_);
  if (first_error_ != nullptr) return;  // first exception wins
  first_error_ = std::move(e);
  // Cancel cooperatively so sibling tasks polling the token unwind
  // instead of completing a fork-join whose result will be discarded.
  if (cancel_ != nullptr) cancel_->Cancel(Status::kCancelled);
}

void Executor::TaskGroup::FinishTask() {
  // The decrement happens under done_mu_ so a waiter can only observe
  // pending_ == 0 after we released the lock — it is then safe for it to
  // destroy the group.
  std::lock_guard<std::mutex> lock(done_mu_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_cv_.notify_all();
  }
}

void Executor::TaskGroup::Run(std::function<void()> fn) {
  // Admission control: at or beyond the cap the submitter runs the task
  // itself (caller-runs backpressure) instead of queueing more work.
  if (parallelism_ == 1 ||
      pending_.load(std::memory_order_relaxed) >= parallelism_) {
    RunInline(fn);
    return;
  }
  tasks_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_acq_rel);
  exec_.Submit(new Task{std::move(fn), this});
}

void Executor::TaskGroup::WaitDone() {
  // Help-first: drain acquirable work (any group's) while our tasks are
  // outstanding; tasks never block, so helping always makes progress.
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!exec_.HelpOnce()) break;
  }
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void Executor::TaskGroup::Wait() {
  WaitDone();
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    e = std::exchange(first_error_, nullptr);
  }
  if (e != nullptr) std::rethrow_exception(e);
}

void Executor::TaskGroup::RunOnAll(const std::function<void(int)>& fn) {
  const int p = parallelism_;
  if (p == 1) {
    RunInline([&fn] { fn(0); });
    Wait();  // nothing pending, but a captured exception must surface
    return;
  }
  for (int w = 1; w < p; ++w) {
    Run([&fn, w] { fn(w); });
  }
  RunInline([&fn] { fn(0); });
  Wait();
}

void Executor::TaskGroup::ParallelFor(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(1, grain);
  const int p = parallelism_;
  if (p == 1 || n <= grain) {
    RunInline([&fn, n] { fn(0, n); });
    Wait();  // nothing pending, but a captured exception must surface
    return;
  }
  std::atomic<size_t> cursor{0};
  const auto loop = [&cursor, &fn, n, grain] {
    for (;;) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(begin, std::min(begin + grain, n));
    }
  };
  const size_t chunks = (n + grain - 1) / grain;
  const int spawn =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(p), chunks)) - 1;
  for (int i = 0; i < spawn; ++i) Run(loop);
  RunInline(loop);  // caller participates before blocking
  Wait();
}

void Executor::TaskGroup::ParallelForStatic(
    size_t n, const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  const int p = parallelism_;
  if (p == 1) {
    RunInline([&fn, n] { fn(0, n, 0); });
    Wait();  // nothing pending, but a captured exception must surface
    return;
  }
  const size_t per =
      (n + static_cast<size_t>(p) - 1) / static_cast<size_t>(p);
  for (int w = 1; w < p; ++w) {
    const size_t begin = std::min(n, per * static_cast<size_t>(w));
    const size_t end = std::min(n, begin + per);
    if (begin < end) {
      Run([&fn, begin, end, w] { fn(begin, end, w); });
    }
  }
  const size_t end0 = std::min(n, per);
  if (end0 > 0) {
    RunInline([&fn, end0] { fn(0, end0, 0); });
  }
  Wait();
}

Executor::GroupStats Executor::TaskGroup::stats() const {
  GroupStats s;
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.workers_used =
      std::popcount(participant_mask_.load(std::memory_order_relaxed));
  return s;
}

}  // namespace sky
