// Copyright (c) SkyBench-NG contributors.
// Fork-join thread pool replacing the paper's OpenMP runtime (§VII-A2).
// Workers are persistent: Q-Flow/Hybrid dispatch two parallel phases per
// α-block, so per-phase thread spawning would dwarf the work (§IV-B).
#ifndef SKY_PARALLEL_THREAD_POOL_H_
#define SKY_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sky {

/// Fixed-size fork-join pool. `threads` counts total parallelism: the
/// calling thread participates as worker 0 and `threads - 1` std::threads
/// are spawned. With threads == 1 every operation runs inline, so a
/// single-threaded run carries no synchronisation overhead at all (the
/// paper's t=1 baselines depend on this).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Hardware concurrency with a sane floor of 1.
  static int DefaultThreads();

  /// Run `fn(worker_index)` once on every worker (0 == caller) and block
  /// until all invocations return. This is the fork-join primitive; all
  /// higher-level loops are built on it.
  void RunOnAll(const std::function<void(int)>& fn);

  /// Dynamic-schedule parallel loop over [0, n): workers repeatedly claim
  /// `grain`-sized chunks from a shared atomic cursor and invoke
  /// `fn(begin, end)`. Mirrors OpenMP `schedule(dynamic, grain)`, which the
  /// skyline phases need because per-point work is highly skewed (points
  /// dominated early terminate their scan almost immediately).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Static-schedule variant: worker w gets the w-th of `threads` nearly
  /// equal contiguous ranges. Used where per-item cost is uniform (L1
  /// computation, mask computation) and locality matters.
  void ParallelForStatic(size_t n,
                         const std::function<void(size_t, size_t, int)>& fn);

 private:
  void WorkerLoop(int index);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;                        // guarded by mu_
  int running_ = 0;                                // guarded by mu_
  bool shutdown_ = false;                          // guarded by mu_
};

}  // namespace sky

#endif  // SKY_PARALLEL_THREAD_POOL_H_
