// Copyright (c) SkyBench-NG contributors.
// Fork-join pool facade over the work-stealing scheduler core
// (parallel/executor.h), replacing the paper's OpenMP runtime (§VII-A2).
// Workers are persistent: Q-Flow/Hybrid dispatch two parallel phases per
// α-block, so per-phase thread spawning would dwarf the work (§IV-B).
//
// Two modes share one API:
//  - standalone `ThreadPool(threads)` owns a private Executor — the
//    non-engine/CLI fallback with the historical semantics;
//  - borrowed `ThreadPool(executor, threads)` runs every loop as a capped
//    TaskGroup on a shared engine-owned Executor, so concurrent queries
//    draw from one bounded worker set instead of oversubscribing.
#ifndef SKY_PARALLEL_THREAD_POOL_H_
#define SKY_PARALLEL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <memory>

namespace sky {

class Executor;

/// Fixed-size fork-join pool. `threads` counts total parallelism: the
/// calling thread participates as worker 0. With threads == 1 every
/// operation runs inline and no scheduler is constructed at all, so a
/// single-threaded run carries no synchronisation overhead (the paper's
/// t=1 baselines depend on this).
class ThreadPool {
 public:
  /// Standalone mode: owns a private Executor with `threads - 1` workers.
  explicit ThreadPool(int threads);
  /// Borrowed mode: loops run as TaskGroups capped at `threads` on the
  /// shared `executor` (further clamped to the executor's width). A null
  /// executor degrades to standalone mode.
  ThreadPool(Executor* executor, int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Hardware concurrency with a sane floor of 1.
  static int DefaultThreads();

  /// Run `fn(worker_index)` once per parallelism slot (0 == caller) and
  /// block until all invocations return. This is the fork-join primitive;
  /// all higher-level loops are built on it. Standalone pools guarantee
  /// the slots run concurrently; borrowed pools only bound them.
  void RunOnAll(const std::function<void(int)>& fn);

  /// Dynamic-schedule parallel loop over [0, n): workers repeatedly claim
  /// `grain`-sized chunks from a shared atomic cursor and invoke
  /// `fn(begin, end)`. Mirrors OpenMP `schedule(dynamic, grain)`, which the
  /// skyline phases need because per-point work is highly skewed (points
  /// dominated early terminate their scan almost immediately).
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Static-schedule variant: slot w gets the w-th of `threads` nearly
  /// equal contiguous ranges. Used where per-item cost is uniform (L1
  /// computation, mask computation) and locality matters.
  void ParallelForStatic(size_t n,
                         const std::function<void(size_t, size_t, int)>& fn);

 private:
  int threads_;
  std::unique_ptr<Executor> owned_;  // standalone multi-threaded mode
  Executor* exec_ = nullptr;         // scheduler core (owned or borrowed);
                                     // null when threads_ == 1
};

}  // namespace sky

#endif  // SKY_PARALLEL_THREAD_POOL_H_
