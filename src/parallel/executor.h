// Copyright (c) SkyBench-NG contributors.
// Persistent work-stealing executor shared across queries, mutations, and
// algorithm phases. The seed's ThreadPool made parallelism persistent
// *within* one query (per-phase thread spawning would dwarf the work,
// paper §VII-A2/§IV-B); this finishes that argument at the engine level:
// N in-flight queries share one bounded worker set instead of spawning
// N×threads OS threads per request.
//
// Shape: each worker owns a Chase-Lev-style deque (LIFO local pop, FIFO
// steal); external threads submit through a small mutex-guarded injection
// queue and then help execute while they wait (caller-runs). Idle workers
// park on a condvar. All synchronisation is via seq_cst atomics on the
// deque indices and atomic cells — deliberately no atomic_thread_fence,
// which ThreadSanitizer does not model.
#ifndef SKY_PARALLEL_EXECUTOR_H_
#define SKY_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"

namespace sky {

/// Persistent work-stealing scheduler. `threads` counts total parallelism
/// the same way ThreadPool does: the submitting thread participates
/// (caller-runs), so `threads - 1` worker std::threads are spawned and
/// `threads == 1` spawns nothing — every TaskGroup then runs fully inline
/// with zero synchronisation, preserving the paper's t=1 baselines.
///
/// Lifetime: all TaskGroups must be destroyed (i.e. have completed) before
/// the Executor is destroyed.
class Executor {
 public:
  explicit Executor(int threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total parallelism (including a caller), >= 1.
  int threads() const { return threads_; }

  /// Hardware concurrency with a sane floor of 1.
  static int DefaultThreads();

  /// Monotonic scheduler counters, exported by the engine as
  /// sky_executor_* metrics (obs satellite).
  struct CountersSnapshot {
    uint64_t tasks = 0;        ///< tasks executed to completion
    uint64_t steals = 0;       ///< tasks taken from another worker's deque
    uint64_t inline_runs = 0;  ///< group submissions run caller-inline
    uint64_t parks = 0;        ///< worker park (sleep) events
    size_t queue_depth = 0;    ///< tasks currently queued, not yet running
  };
  CountersSnapshot Counters() const;

  /// Per-group accounting, surfaced in per-query traces.
  struct GroupStats {
    uint64_t tasks = 0;        ///< tasks submitted through the queues
    uint64_t inline_runs = 0;  ///< submissions run inline (admission/cap)
    uint64_t steals = 0;       ///< of this group's tasks
    int workers_used = 0;      ///< distinct participants (workers + caller)
  };

  /// Scoped fork-join scope with a parallelism cap — the admission-control
  /// unit. `max_parallelism` bounds how many tasks the group keeps in
  /// flight (0 = executor width); submissions beyond the cap run inline on
  /// the submitter (caller-runs backpressure), so a group can never occupy
  /// more than `parallelism()` workers no matter how much it forks.
  /// Effective parallelism is additionally clamped to the executor width;
  /// at 1 every Run() is a plain inline call. Not thread-safe: one logical
  /// owner submits and waits; the spawned tasks themselves may fork nested
  /// groups.
  class TaskGroup {
   public:
    TaskGroup(Executor& exec, int max_parallelism);
    /// Blocks until all submitted tasks have finished. A still-pending
    /// captured exception is dropped here (destructors cannot throw);
    /// call Wait() explicitly to observe it.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Effective parallelism (cap clamped to executor width), >= 1.
    int parallelism() const { return parallelism_; }

    /// Submit one task. May run it inline (parallelism()==1, or the group
    /// is at its cap). A task that throws (any exception, including
    /// std::bad_alloc) does not cross the worker loop: the group captures
    /// the first exception, trips the attached CancelToken (if any) so
    /// sibling tasks can stop cooperatively, and rethrows at Wait().
    void Run(std::function<void()> fn);

    /// Block until every submitted task has finished, then rethrow the
    /// first exception any of them raised. The waiting thread helps
    /// execute queued work (any group's — help-first) before sleeping,
    /// so a caller is never idle while its own tasks queue.
    void Wait();

    /// Attach a token to cancel when a task throws, so siblings polling
    /// it unwind instead of finishing a doomed fork-join. Not owned;
    /// must outlive the group.
    void set_cancel_token(const CancelToken* token) { cancel_ = token; }

    /// ThreadPool-shaped loops on this group's budget. Each call is a
    /// complete fork-join (returns after all its iterations finish).
    void RunOnAll(const std::function<void(int)>& fn);
    void ParallelFor(size_t n, size_t grain,
                     const std::function<void(size_t, size_t)>& fn);
    void ParallelForStatic(size_t n,
                           const std::function<void(size_t, size_t, int)>& fn);

    /// Accounting so far (stable once Wait() has returned).
    GroupStats stats() const;

   private:
    friend class Executor;

    void RunInline(const std::function<void()>& fn);
    void NoteParticipant();
    void FinishTask();  // called by the executor after a task of ours runs
    void CaptureException(std::exception_ptr e);
    void WaitDone();  // the drain of Wait(), without the rethrow

    Executor& exec_;
    const int parallelism_;
    const CancelToken* cancel_ = nullptr;
    std::atomic<int> pending_{0};  // queued + running tasks
    std::mutex done_mu_;
    std::condition_variable done_cv_;
    std::exception_ptr first_error_;  // guarded by done_mu_
    // Stats (relaxed; read after Wait()).
    std::atomic<uint64_t> tasks_{0};
    std::atomic<uint64_t> inline_runs_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> participant_mask_{0};
  };

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  /// Chase-Lev-style deque. Owner pushes/pops at the bottom (LIFO);
  /// thieves CAS the top (FIFO). Ring cells are atomic pointers and the
  /// indices are seq_cst — strictly stronger than the canonical
  /// fence-based formulation, chosen so TSan models every ordering.
  class Deque {
   public:
    Deque();
    ~Deque();
    void Push(Task* t);  // owner only
    Task* Pop();         // owner only
    Task* Steal();       // any thread

   private:
    struct Ring {
      explicit Ring(size_t capacity);
      const size_t capacity;
      const size_t mask;
      std::unique_ptr<std::atomic<Task*>[]> cells;
    };
    Ring* Grow(Ring* old, int64_t top, int64_t bottom);

    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::atomic<Ring*> ring_;
    // Retired rings stay alive until destruction: a slow thief may still
    // read cells of an old ring; the top_ CAS arbitrates correctness.
    std::vector<std::unique_ptr<Ring>> retired_;
  };

  void Submit(Task* t);
  /// Try to acquire one queued task without blocking (used by helping
  /// waiters and the worker loop). Sets `stolen` when the task came from
  /// another worker's deque.
  Task* TryAcquire(bool* stolen);
  /// Acquire-and-run one task if any is available. Returns false when no
  /// work could be acquired.
  bool HelpOnce();
  void Execute(Task* t, bool stolen);
  void WorkerLoop(int index);

  const int threads_;
  std::vector<std::unique_ptr<Deque>> deques_;  // one per spawned worker
  std::vector<std::thread> workers_;

  // External submissions (from threads that are not workers of this
  // executor) land here; workers drain it when their deque runs dry.
  std::mutex inject_mu_;
  std::deque<Task*> inject_;

  // Parking. queued_ counts tasks visible in the injection queue plus all
  // deques; a worker only parks while it is 0 (checked under park_mu_, so
  // the submit-side increment + notify cannot be missed).
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int64_t> queued_{0};
  std::atomic<int> parked_{0};
  bool shutdown_ = false;  // guarded by park_mu_

  // Global counters.
  std::atomic<uint64_t> tasks_total_{0};
  std::atomic<uint64_t> steals_total_{0};
  std::atomic<uint64_t> inline_total_{0};
  std::atomic<uint64_t> parks_total_{0};
};

}  // namespace sky

#endif  // SKY_PARALLEL_EXECUTOR_H_
