// Copyright (c) SkyBench-NG contributors.
#include "parallel/parallel_sort.h"

namespace sky {

void ParallelSortU64(std::vector<uint64_t>& keys, ThreadPool& pool) {
  ParallelSort(keys, pool);
}

}  // namespace sky
