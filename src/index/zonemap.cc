// Copyright (c) SkyBench-NG contributors.
#include "index/zonemap.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/failpoint.h"
#include "common/macros.h"
#include "data/sketch.h"

namespace sky {
namespace {

bool RowFinite(const Value* row, int dims) {
  for (int j = 0; j < dims; ++j) {
    if (!std::isfinite(row[j])) return false;
  }
  return true;
}

/// Per-dimension normaliser for the cut key: quantile rank when the sketch
/// carries a sample for the dimension, min-max otherwise. Returns a value
/// in [0, 1]; degenerate dimensions map to 0.5 so they don't perturb the
/// rank sum.
class DimRanker {
 public:
  DimRanker(const Dataset& data, const std::vector<uint32_t>& finite,
            const StatsSketch* sketch) {
    const int dims = data.dims();
    quantiles_.resize(dims, nullptr);
    lo_.assign(dims, std::numeric_limits<Value>::infinity());
    hi_.assign(dims, -std::numeric_limits<Value>::infinity());
    bool need_minmax = false;
    for (int j = 0; j < dims; ++j) {
      if (sketch != nullptr && j < static_cast<int>(sketch->quantiles.size()) &&
          !sketch->quantiles[j].empty()) {
        quantiles_[j] = &sketch->quantiles[j];
      } else {
        need_minmax = true;
      }
    }
    if (need_minmax) {
      for (uint32_t r : finite) {
        const Value* row = data.Row(r);
        for (int j = 0; j < dims; ++j) {
          lo_[j] = std::min(lo_[j], row[j]);
          hi_[j] = std::max(hi_[j], row[j]);
        }
      }
    }
  }

  double Rank(int j, Value v) const {
    if (quantiles_[j] != nullptr) {
      const std::vector<Value>& q = *quantiles_[j];
      const auto it = std::lower_bound(q.begin(), q.end(), v);
      return static_cast<double>(it - q.begin()) /
             static_cast<double>(q.size());
    }
    const double span =
        static_cast<double>(hi_[j]) - static_cast<double>(lo_[j]);
    if (!(span > 0.0)) return 0.5;
    return (static_cast<double>(v) - static_cast<double>(lo_[j])) / span;
  }

 private:
  std::vector<const std::vector<Value>*> quantiles_;
  std::vector<Value> lo_;
  std::vector<Value> hi_;
};

}  // namespace

ZoneMapIndex ZoneMapIndex::Build(const Dataset& data, size_t block_rows,
                                 const StatsSketch* sketch) {
  SKY_FAILPOINT("zonemap_build");
  ZoneMapIndex index;
  index.dims_ = data.dims();
  index.rows_ = data.count();
  index.stride_ = static_cast<size_t>(data.stride());
  index.block_rows_ = block_rows == 0 ? kDefaultBlockRows : block_rows;

  const int dims = data.dims();
  std::vector<uint32_t> finite;
  finite.reserve(data.count());
  for (size_t r = 0; r < data.count(); ++r) {
    if (RowFinite(data.Row(r), dims)) {
      finite.push_back(static_cast<uint32_t>(r));
    } else {
      index.irregular_.push_back(static_cast<uint32_t>(r));
    }
  }

  // Order finite rows along a Z-order (Morton) curve over their normalized
  // quantile ranks, so consecutive rows share a spatial cell and block
  // AABBs are tight in *every* dimension regardless of input order — the
  // flat-file analogue of BBS's R-tree leaves. A rank-sum key would cut
  // thin shells of the rank hyperplane instead: near-full-range AABBs on
  // every axis, which never go box-disjoint and rarely get min-corner
  // pruned. Stable sort keeps ties (duplicate cells) deterministic.
  if (!finite.empty()) {
    DimRanker ranker(data, finite, sketch);
    const int bits = std::max(1, std::min(8, 64 / dims));
    const double scale = static_cast<double>((1u << bits) - 1);
    std::vector<uint64_t> key(finite.size());
    std::vector<uint32_t> cell(dims);
    for (size_t i = 0; i < finite.size(); ++i) {
      const Value* row = data.Row(finite[i]);
      for (int j = 0; j < dims; ++j) {
        const double rank = std::clamp(ranker.Rank(j, row[j]), 0.0, 1.0);
        cell[j] = static_cast<uint32_t>(rank * scale);
      }
      uint64_t k = 0;
      for (int bit = bits - 1; bit >= 0; --bit) {
        for (int j = 0; j < dims; ++j) {
          k = (k << 1) | ((cell[j] >> bit) & 1u);
        }
      }
      key[i] = k;
    }
    std::vector<uint32_t> perm(finite.size());
    std::iota(perm.begin(), perm.end(), 0u);
    std::stable_sort(perm.begin(), perm.end(),
                     [&](uint32_t a, uint32_t b) { return key[a] < key[b]; });
    index.order_.reserve(finite.size());
    for (uint32_t p : perm) index.order_.push_back(finite[p]);
  }
  index.clustered_.resize(index.order_.size() * index.stride_);
  for (size_t i = 0; i < index.order_.size(); ++i) {
    std::copy_n(data.Row(index.order_[i]), index.stride_,
                index.clustered_.data() + i * index.stride_);
  }

  const size_t blocks =
      (index.order_.size() + index.block_rows_ - 1) / index.block_rows_;
  index.block_begin_.reserve(blocks + 1);
  index.block_begin_.push_back(0);
  index.block_lo_.reserve(blocks * dims);
  index.block_hi_.reserve(blocks * dims);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * index.block_rows_;
    const size_t end = std::min(begin + index.block_rows_, index.order_.size());
    index.block_begin_.push_back(static_cast<uint32_t>(end));
    for (int j = 0; j < dims; ++j) {
      index.block_lo_.push_back(std::numeric_limits<Value>::infinity());
      index.block_hi_.push_back(-std::numeric_limits<Value>::infinity());
    }
    Value* lo = index.block_lo_.data() + b * dims;
    Value* hi = index.block_hi_.data() + b * dims;
    for (size_t i = begin; i < end; ++i) {
      const Value* row = index.clustered_.data() + i * index.stride_;
      for (int j = 0; j < dims; ++j) {
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
  }
  index.RebuildSupers();
  return index;
}

ZoneMapIndex ZoneMapIndex::WithAppendedRows(const Dataset& data,
                                            size_t old_count) const {
  SKY_CHECK(old_count == rows_ && data.count() >= old_count);
  SKY_CHECK(data.dims() == dims_);
  SKY_CHECK(static_cast<size_t>(data.stride()) == stride_);
  ZoneMapIndex index = *this;
  index.rows_ = data.count();
  for (size_t r = old_count; r < data.count(); ++r) {
    const Value* row = data.Row(r);
    if (!RowFinite(row, dims_)) {
      index.irregular_.push_back(static_cast<uint32_t>(r));
      continue;
    }
    const size_t last = index.block_count();
    const bool tail_open =
        last > 0 && index.block_begin_[last] - index.block_begin_[last - 1] <
                        index.block_rows_;
    if (!tail_open) {
      // Open a fresh block whose AABB degenerates to this row.
      index.block_begin_.push_back(index.block_begin_.back());
      for (int j = 0; j < dims_; ++j) {
        index.block_lo_.push_back(row[j]);
        index.block_hi_.push_back(row[j]);
      }
    }
    const size_t b = index.block_count() - 1;
    index.order_.push_back(static_cast<uint32_t>(r));
    index.clustered_.insert(index.clustered_.end(), row, row + stride_);
    ++index.block_begin_[b + 1];
    Value* lo = index.block_lo_.data() + b * dims_;
    Value* hi = index.block_hi_.data() + b * dims_;
    for (int j = 0; j < dims_; ++j) {
      lo[j] = std::min(lo[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  index.RebuildSupers();
  return index;
}

ZoneMapIndex ZoneMapIndex::WithDeletedRows(
    const Dataset& data, std::span<const PointId> drop_local) const {
  SKY_CHECK(data.count() + drop_local.size() == rows_);
  SKY_CHECK(data.dims() == dims_);
  // new_local = old_local - shift[old_local]; dropped rows map nowhere.
  std::vector<uint8_t> dropped(rows_, 0);
  for (PointId d : drop_local) {
    SKY_CHECK(d < rows_ && !dropped[d]);
    dropped[d] = 1;
  }
  std::vector<uint32_t> shift(rows_ + 1, 0);
  for (size_t r = 0; r < rows_; ++r) {
    shift[r + 1] = shift[r] + (dropped[r] ? 1u : 0u);
  }

  ZoneMapIndex index;
  index.dims_ = dims_;
  index.rows_ = data.count();
  index.stride_ = stride_;
  index.block_rows_ = block_rows_;
  index.source_epoch = source_epoch;
  index.source_shard = source_shard;
  index.order_.reserve(order_.size());
  index.clustered_.reserve(clustered_.size());
  index.block_begin_.push_back(0);
  SKY_CHECK(static_cast<size_t>(data.stride()) == stride_);
  for (size_t b = 0; b < block_count(); ++b) {
    const std::span<const uint32_t> points = block_points(b);
    const size_t first = index.order_.size();
    bool lost = false;
    for (size_t k = 0; k < points.size(); ++k) {
      const uint32_t old_row = points[k];
      if (dropped[old_row]) {
        lost = true;
        continue;
      }
      index.order_.push_back(old_row - shift[old_row]);
      const Value* src =
          clustered_.data() + (block_begin_[b] + k) * stride_;
      index.clustered_.insert(index.clustered_.end(), src, src + stride_);
    }
    const size_t kept = index.order_.size() - first;
    if (kept == 0) continue;  // block emptied: drop it entirely
    index.block_begin_.push_back(static_cast<uint32_t>(index.order_.size()));
    if (!lost) {
      // Untouched block: AABB unchanged (survivors keep their values).
      const Value* lo = block_lo(b);
      const Value* hi = block_hi(b);
      index.block_lo_.insert(index.block_lo_.end(), lo, lo + dims_);
      index.block_hi_.insert(index.block_hi_.end(), hi, hi + dims_);
      continue;
    }
    for (int j = 0; j < dims_; ++j) {
      index.block_lo_.push_back(std::numeric_limits<Value>::infinity());
      index.block_hi_.push_back(-std::numeric_limits<Value>::infinity());
    }
    Value* lo = index.block_lo_.data() + index.block_lo_.size() - dims_;
    Value* hi = index.block_hi_.data() + index.block_hi_.size() - dims_;
    for (size_t i = first; i < index.order_.size(); ++i) {
      const Value* row = index.clustered_.data() + i * stride_;
      for (int j = 0; j < dims_; ++j) {
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
  }
  for (uint32_t old_row : irregular_) {
    if (!dropped[old_row]) index.irregular_.push_back(old_row - shift[old_row]);
  }
  index.RebuildSupers();
  return index;
}

void ZoneMapIndex::RebuildSupers() {
  super_begin_.clear();
  super_lo_.clear();
  super_hi_.clear();
  const size_t blocks = block_count();
  if (blocks == 0) return;
  const size_t supers = (blocks + kSuperFan - 1) / kSuperFan;
  super_begin_.reserve(supers + 1);
  super_begin_.push_back(0);
  super_lo_.reserve(supers * dims_);
  super_hi_.reserve(supers * dims_);
  for (size_t s = 0; s < supers; ++s) {
    const size_t first = s * kSuperFan;
    const size_t last = std::min(first + kSuperFan, blocks);
    super_begin_.push_back(static_cast<uint32_t>(last));
    for (int j = 0; j < dims_; ++j) {
      super_lo_.push_back(std::numeric_limits<Value>::infinity());
      super_hi_.push_back(-std::numeric_limits<Value>::infinity());
    }
    Value* lo = super_lo_.data() + s * dims_;
    Value* hi = super_hi_.data() + s * dims_;
    for (size_t b = first; b < last; ++b) {
      const Value* blo = block_lo(b);
      const Value* bhi = block_hi(b);
      for (int j = 0; j < dims_; ++j) {
        lo[j] = std::min(lo[j], blo[j]);
        hi[j] = std::max(hi[j], bhi[j]);
      }
    }
  }
}

bool ZoneMapIndex::Validate(const Dataset& data) const {
  if (data.dims() != dims_ || data.count() != rows_) return false;
  if (static_cast<size_t>(data.stride()) != stride_) return false;
  if (clustered_.size() != order_.size() * stride_) return false;
  std::vector<uint8_t> seen(rows_, 0);
  for (size_t b = 0; b < block_count(); ++b) {
    const std::span<const uint32_t> points = block_points(b);
    if (points.empty()) return false;
    std::vector<Value> lo(dims_, std::numeric_limits<Value>::infinity());
    std::vector<Value> hi(dims_, -std::numeric_limits<Value>::infinity());
    for (size_t k = 0; k < points.size(); ++k) {
      const uint32_t r = points[k];
      if (r >= rows_ || seen[r]) return false;
      seen[r] = 1;
      const Value* row = data.Row(r);
      if (!RowFinite(row, dims_)) return false;
      const Value* cl = block_row_data(b) + k * stride_;
      for (int j = 0; j < dims_; ++j) {
        if (cl[j] != row[j]) return false;
        lo[j] = std::min(lo[j], row[j]);
        hi[j] = std::max(hi[j], row[j]);
      }
    }
    for (int j = 0; j < dims_; ++j) {
      if (lo[j] != block_lo(b)[j] || hi[j] != block_hi(b)[j]) return false;
    }
  }
  for (uint32_t r : irregular_) {
    if (r >= rows_ || seen[r]) return false;
    seen[r] = 1;
    if (RowFinite(data.Row(r), dims_)) return false;
  }
  for (size_t r = 0; r < rows_; ++r) {
    if (!seen[r]) return false;
  }
  // Supers tile the block list in order with merged AABBs.
  const size_t blocks = block_count();
  if (blocks == 0) return super_count() == 0;
  if (super_count() == 0 || super_first(0) != 0 ||
      super_last(super_count() - 1) != blocks) {
    return false;
  }
  for (size_t s = 0; s < super_count(); ++s) {
    if (super_first(s) >= super_last(s)) return false;
    if (s > 0 && super_first(s) != super_last(s - 1)) return false;
    std::vector<Value> lo(dims_, std::numeric_limits<Value>::infinity());
    std::vector<Value> hi(dims_, -std::numeric_limits<Value>::infinity());
    for (uint32_t b = super_first(s); b < super_last(s); ++b) {
      for (int j = 0; j < dims_; ++j) {
        lo[j] = std::min(lo[j], block_lo(b)[j]);
        hi[j] = std::max(hi[j], block_hi(b)[j]);
      }
    }
    for (int j = 0; j < dims_; ++j) {
      if (lo[j] != super_lo(s)[j] || hi[j] != super_hi(s)[j]) return false;
    }
  }
  return true;
}

size_t ZoneMapIndexBytes(const ZoneMapIndex& index) {
  const size_t blocks = index.block_count();
  const size_t supers = index.super_count();
  const size_t d = static_cast<size_t>(index.dims());
  return sizeof(ZoneMapIndex) +
         (index.rows() + blocks + supers + 2) * sizeof(uint32_t) +
         index.finite_count() * index.stride() * sizeof(Value) +
         2 * (blocks + supers) * d * sizeof(Value);
}

}  // namespace sky
