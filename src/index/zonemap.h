// Copyright (c) SkyBench-NG contributors.
// Block zonemap index: a flat 1-2 level block summary cut over a dataset's
// rows. Level 0 is an ordered list of fixed-size blocks (~256 rows each),
// every block carrying its exact per-dimension minimum (the "min corner" of
// BBS [Papadias et al. 2003]) and full AABB; level 1 groups consecutive
// blocks into super-blocks with merged AABBs. core/zonemap_skyline.h runs a
// best-first branch-and-bound traversal over this structure, and the query
// engine intersects block AABBs with constraint boxes for sub-shard pruning.
#ifndef SKY_INDEX_ZONEMAP_H_
#define SKY_INDEX_ZONEMAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "data/dataset.h"

namespace sky {

struct StatsSketch;

/// Immutable block summary of one dataset (typically one shard's rows).
/// Rows with any non-finite coordinate (NaN or +-inf) are segregated into
/// the `irregular` list and never enter a block, so every block AABB is
/// finite and min-corner dominance reasoning is exact.
///
/// The index is clustering: finite rows are copied into cut order (dataset
/// stride preserved), so block scans read sequential memory instead of
/// gathering through the source row order.
///
/// Blocks are cut after ordering finite rows along a Z-order (Morton) curve
/// over their normalized quantile ranks: each coordinate is ranked against
/// the owning shard's StatsSketch quantiles (min-max normalisation when no
/// sketch is available) and the rank bits are interleaved MSB-first across
/// dimensions, so consecutive rows share a spatial cell and AABBs stay
/// tight on every axis — even on round-robin shards whose row order is
/// interleaved.
///
/// Mutation repair is block-local: WithAppendedRows extends the tail block
/// and appends fresh blocks (AABBs stay exact; rank order degrades only for
/// the appended tail until a rebuild), WithDeletedRows drops rows from their
/// blocks and recomputes only the touched AABBs.
class ZoneMapIndex {
 public:
  static constexpr size_t kDefaultBlockRows = 256;
  static constexpr size_t kSuperFan = 64;  ///< blocks per super-block

  ZoneMapIndex() = default;

  /// Build over all rows of `data`. `block_rows` 0 = kDefaultBlockRows.
  /// `sketch`, when given, supplies the per-dimension quantile samples the
  /// rank-sum cut key is computed against.
  static ZoneMapIndex Build(const Dataset& data, size_t block_rows = 0,
                            const StatsSketch* sketch = nullptr);

  /// Repaired index after rows were appended: `data` is the post-insert
  /// dataset whose first `old_count` rows this index was built over.
  ZoneMapIndex WithAppendedRows(const Dataset& data, size_t old_count) const;

  /// Repaired index after deletes: `drop_local` holds the deleted local row
  /// indices (ascending, pre-delete numbering) and `data` is the compacted
  /// post-delete dataset (survivors keep their relative order).
  ZoneMapIndex WithDeletedRows(const Dataset& data,
                               std::span<const PointId> drop_local) const;

  int dims() const { return dims_; }
  /// Total rows indexed (blocks + irregular) == source dataset count.
  size_t rows() const { return rows_; }
  size_t block_rows() const { return block_rows_; }

  size_t block_count() const {
    return block_begin_.empty() ? 0 : block_begin_.size() - 1;
  }
  /// Local row indices of block `b`, in cut order.
  std::span<const uint32_t> block_points(size_t b) const {
    return {order_.data() + block_begin_[b],
            order_.data() + block_begin_[b + 1]};
  }
  /// Clustered copy of block `b`'s rows: the i-th row of block_points(b)
  /// starts at block_row_data(b) + i * stride(). Blocks are concatenated in
  /// cut order, so a traversal scan is sequential instead of gathering
  /// through the dataset's row order.
  const Value* block_row_data(size_t b) const {
    return clustered_.data() + static_cast<size_t>(block_begin_[b]) * stride_;
  }
  /// Floats per clustered row (the source dataset's padded stride).
  size_t stride() const { return stride_; }
  /// Rows held in blocks (== rows() - irregular().size()).
  size_t finite_count() const { return order_.size(); }
  /// Exact per-dimension minimum (min corner) / maximum of block `b`.
  const Value* block_lo(size_t b) const { return block_lo_.data() + b * dims_; }
  const Value* block_hi(size_t b) const { return block_hi_.data() + b * dims_; }

  size_t super_count() const {
    return super_begin_.empty() ? 0 : super_begin_.size() - 1;
  }
  /// Half-open block range [first, last) covered by super-block `s`.
  uint32_t super_first(size_t s) const { return super_begin_[s]; }
  uint32_t super_last(size_t s) const { return super_begin_[s + 1]; }
  const Value* super_lo(size_t s) const { return super_lo_.data() + s * dims_; }
  const Value* super_hi(size_t s) const { return super_hi_.data() + s * dims_; }

  /// Rows excluded from blocks because some coordinate is non-finite.
  std::span<const uint32_t> irregular() const { return irregular_; }

  /// Full structural check against the dataset the index claims to cover:
  /// blocks + irregular partition [0, rows), AABBs are exact, every block
  /// row is finite, supers tile the block list with merged AABBs. Used by
  /// tests and mutation-repair assertions; O(n*d).
  bool Validate(const Dataset& data) const;

  /// Epoch of the source rows (Shard::epoch, or the registration's minor
  /// snapshot version for unsharded data) — cache entries are served only
  /// when this still matches. Source shard index, -1 for unsharded.
  uint64_t source_epoch = 0;
  int source_shard = -1;

 private:
  void RebuildSupers();

  int dims_ = 0;
  size_t rows_ = 0;
  size_t stride_ = 0;
  size_t block_rows_ = kDefaultBlockRows;
  std::vector<uint32_t> order_;        ///< block row lists, concatenated
  std::vector<Value> clustered_;       ///< order_'s rows, stride_ floats each
  std::vector<uint32_t> block_begin_;  ///< block_count+1 offsets into order_
  std::vector<Value> block_lo_;        ///< block_count x dims
  std::vector<Value> block_hi_;        ///< block_count x dims
  std::vector<uint32_t> super_begin_;  ///< super_count+1 offsets into blocks
  std::vector<Value> super_lo_;        ///< super_count x dims
  std::vector<Value> super_hi_;        ///< super_count x dims
  std::vector<uint32_t> irregular_;    ///< rows with a non-finite coordinate
};

/// Approximate heap bytes, for LRU cache pricing.
size_t ZoneMapIndexBytes(const ZoneMapIndex& index);

}  // namespace sky

#endif  // SKY_INDEX_ZONEMAP_H_
