// Copyright (c) SkyBench-NG contributors.
// AVX2 dominance kernels. This translation unit is compiled with -mavx2
// when available; callers must gate on CpuHasAvx2() (DomCtx does).
#include "dominance/dominance.h"

#include "common/bits.h"

#if defined(SKY_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace sky {

bool CpuHasAvx2() {
#if defined(SKY_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if defined(SKY_HAVE_AVX2)

bool DominatesAvx2(const Value* p, const Value* q, int dpad) {
  // Accumulate "p < q somewhere" lanes; bail out on any "p > q" lane.
  int lt = 0;
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(q + i);
    if (_mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GT_OQ)) != 0) {
      return false;
    }
    lt |= _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_LT_OQ));
  }
  return lt != 0;
}

bool PotentiallyDominatesAvx2(const Value* p, const Value* q, int dpad) {
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(q + i);
    if (_mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GT_OQ)) != 0) {
      return false;
    }
  }
  return true;
}

Relation CompareAvx2(const Value* p, const Value* q, int dpad) {
  int p_lt = 0, q_lt = 0;
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(q + i);
    p_lt |= _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_LT_OQ));
    q_lt |= _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GT_OQ));
    if (p_lt != 0 && q_lt != 0) return Relation::kIncomparable;
  }
  if (p_lt != 0) return Relation::kLeftDominates;
  if (q_lt != 0) return Relation::kRightDominates;
  return Relation::kEqual;
}

Mask PartitionMaskAvx2(const Value* p, const Value* v, int d, int dpad) {
  Mask m = 0;
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(v + i);
    const int ge = _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GE_OQ));
    m |= static_cast<Mask>(ge) << i;
  }
  // Padding lanes compare 0 >= 0 == true; strip them.
  return m & FullMask(d);
}

#else  // !SKY_HAVE_AVX2 — scalar stand-ins so the library still links.

bool DominatesAvx2(const Value* p, const Value* q, int dpad) {
  return DominatesScalar(p, q, dpad);
}
bool PotentiallyDominatesAvx2(const Value* p, const Value* q, int dpad) {
  return PotentiallyDominatesScalar(p, q, dpad);
}
Relation CompareAvx2(const Value* p, const Value* q, int dpad) {
  return CompareScalar(p, q, dpad);
}
Mask PartitionMaskAvx2(const Value* p, const Value* v, int d, int dpad) {
  (void)dpad;
  return PartitionMaskScalar(p, v, d);
}

#endif  // SKY_HAVE_AVX2

}  // namespace sky
