// Copyright (c) SkyBench-NG contributors.
// AVX2 dominance kernels. This translation unit is compiled with -mavx2
// when available; callers must gate on CpuHasAvx2() (DomCtx does).
#include "dominance/dominance.h"

#include <algorithm>
#include <bit>

#include "common/bits.h"
#include "dominance/batch.h"

#if defined(SKY_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace sky {

bool CpuHasAvx2() {
#if defined(SKY_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if defined(SKY_HAVE_AVX2)

bool DominatesAvx2(const Value* p, const Value* q, int dpad) {
  // Accumulate "p < q somewhere" lanes; bail out on any "p > q" lane.
  int lt = 0;
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(q + i);
    if (_mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GT_OQ)) != 0) {
      return false;
    }
    lt |= _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_LT_OQ));
  }
  return lt != 0;
}

bool PotentiallyDominatesAvx2(const Value* p, const Value* q, int dpad) {
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(q + i);
    if (_mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GT_OQ)) != 0) {
      return false;
    }
  }
  return true;
}

Relation CompareAvx2(const Value* p, const Value* q, int dpad) {
  int p_lt = 0, q_lt = 0;
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(q + i);
    p_lt |= _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_LT_OQ));
    q_lt |= _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GT_OQ));
    if (p_lt != 0 && q_lt != 0) return Relation::kIncomparable;
  }
  if (p_lt != 0) return Relation::kLeftDominates;
  if (q_lt != 0) return Relation::kRightDominates;
  return Relation::kEqual;
}

Mask PartitionMaskAvx2(const Value* p, const Value* v, int d, int dpad) {
  Mask m = 0;
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(v + i);
    const int ge = _mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_GE_OQ));
    m |= static_cast<Mask>(ge) << i;
  }
  // Padding lanes compare 0 >= 0 == true; strip them.
  return m & FullMask(d);
}

bool EqualAvx2(const Value* p, const Value* q, int dpad) {
  for (int i = 0; i < dpad; i += 8) {
    const __m256 a = _mm256_loadu_ps(p + i);
    const __m256 b = _mm256_loadu_ps(q + i);
    // EQ_OQ is false for NaN lanes, matching EqualScalar's
    // (NaN != NaN) == true convention; zero padding lanes compare equal.
    if (_mm256_movemask_ps(_mm256_cmp_ps(a, b, _CMP_EQ_OQ)) != 0xFF) {
      return false;
    }
  }
  return true;
}

uint32_t TileDominatesAvx2(const Value* q, const Value* tile, int dims,
                           uint32_t lane_mask) {
  // One register row per dimension: 8 window points vs one broadcast
  // candidate coordinate. A lane dominates iff it never compares greater
  // (GT accumulates violations; false on NaN, like the scalar kernel)
  // and compares strictly less somewhere.
  __m256 gt = _mm256_setzero_ps();
  __m256 lt = _mm256_setzero_ps();
  int alive = static_cast<int>(lane_mask & kFullLaneMask);
  for (int j = 0; j < dims; ++j) {
    const __m256 w = _mm256_load_ps(tile + j * kSimdWidth);
    const __m256 c = _mm256_set1_ps(q[j]);
    gt = _mm256_or_ps(gt, _mm256_cmp_ps(w, c, _CMP_GT_OQ));
    lt = _mm256_or_ps(lt, _mm256_cmp_ps(w, c, _CMP_LT_OQ));
    alive &= ~_mm256_movemask_ps(gt);
    if (alive == 0) return 0;  // no lane can still dominate: early out
  }
  return static_cast<uint32_t>(
             _mm256_movemask_ps(_mm256_andnot_ps(gt, lt))) &
         lane_mask & kFullLaneMask;
}

uint32_t MaskComparableLanesAvx2(const Mask* masks8, Mask m) {
  const __m256i mm =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(masks8));
  const __m256i leak =
      _mm256_and_si256(mm, _mm256_set1_epi32(static_cast<int>(~m)));
  const __m256i comparable =
      _mm256_cmpeq_epi32(leak, _mm256_setzero_si256());
  return static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(comparable)));
}

namespace {

/// The candidate's coordinates broadcast once per window scan — a
/// per-tile kernel entry would redo d broadcasts per 8 points.
struct BroadcastQ {
  __m256 v[kMaxDims];
  BroadcastQ(const Value* q, int d) {
    for (int j = 0; j < d; ++j) v[j] = _mm256_set1_ps(q[j]);
  }
};

/// First dimension at which the early-out movemask check runs. Below it
/// the check's vector-to-int transfer costs more than the compares it
/// could save; past it most random lanes are dead and the break pays.
constexpr int kEarlyOutFromDim = 4;

SKY_ALWAYS_INLINE uint32_t TileVsBroadcast(const BroadcastQ& q,
                                           const Value* tile, int dims,
                                           uint32_t lane_mask) {
  __m256 gt = _mm256_setzero_ps();
  __m256 lt = _mm256_setzero_ps();
  for (int j = 0; j < dims; ++j) {
    const __m256 w = _mm256_load_ps(tile + j * kSimdWidth);
    gt = _mm256_or_ps(gt, _mm256_cmp_ps(w, q.v[j], _CMP_GT_OQ));
    lt = _mm256_or_ps(lt, _mm256_cmp_ps(w, q.v[j], _CMP_LT_OQ));
    if (j >= kEarlyOutFromDim &&
        (~_mm256_movemask_ps(gt) & static_cast<int>(lane_mask) & 0xFF) ==
            0) {
      return 0;
    }
  }
  return static_cast<uint32_t>(
             _mm256_movemask_ps(_mm256_andnot_ps(gt, lt))) &
         lane_mask & kFullLaneMask;
}

}  // namespace

bool DominatedByAnyAvx2(const Value* q, const TileBlock& tiles,
                        size_t limit, uint64_t* dts) {
  const size_t n = limit < tiles.size() ? limit : tiles.size();
  if (n == 0) return false;
  const int dims = tiles.dims();
  const BroadcastQ qb(q, dims);
  uint64_t tested = 0;
  bool dominated = false;
  const size_t full = n / kSimdWidth;
  const size_t tail = n % kSimdWidth;
  for (size_t t = 0; t < full; ++t) {
    tested += kSimdWidth;
    if (TileVsBroadcast(qb, tiles.Tile(t), dims, kFullLaneMask) != 0) {
      dominated = true;
      break;
    }
  }
  if (!dominated && tail != 0) {
    tested += tail;
    dominated = TileVsBroadcast(qb, tiles.Tile(full), dims,
                                LaneMaskFirst(tail)) != 0;
  }
  if (dts != nullptr) *dts += tested;
  return dominated;
}

bool DominatedInRangeAvx2(const Value* q, const TileBlock& tiles,
                          size_t from, uint64_t* dts) {
  const size_t n = tiles.size();
  if (from >= n) return false;
  const int dims = tiles.dims();
  const BroadcastQ qb(q, dims);
  uint64_t tested = 0;
  bool dominated = false;
  const size_t ntiles = tiles.tile_count();
  for (size_t t = from / kSimdWidth; t < ntiles && !dominated; ++t) {
    uint32_t lanes = tiles.ValidLanes(t);
    if (t * kSimdWidth < from) {
      lanes &= ~LaneMaskFirst(from - t * kSimdWidth);
    }
    if (lanes == 0) continue;
    tested += std::popcount(lanes);
    dominated = TileVsBroadcast(qb, tiles.Tile(t), dims, lanes) != 0;
  }
  if (dts != nullptr) *dts += tested;
  return dominated;
}

uint32_t CountDominatorsAvx2(const Value* q, const TileBlock& tiles,
                             size_t limit, uint32_t cap, uint64_t* dts) {
  const size_t n = limit < tiles.size() ? limit : tiles.size();
  if (n == 0 || cap == 0) return 0;
  const int dims = tiles.dims();
  const BroadcastQ qb(q, dims);
  uint64_t tested = 0;
  uint32_t count = 0;
  const size_t full = n / kSimdWidth;
  const size_t tail = n % kSimdWidth;
  for (size_t t = 0; t < full && count < cap; ++t) {
    tested += kSimdWidth;
    count += std::popcount(
        TileVsBroadcast(qb, tiles.Tile(t), dims, kFullLaneMask));
  }
  if (count < cap && tail != 0) {
    tested += tail;
    count += std::popcount(
        TileVsBroadcast(qb, tiles.Tile(full), dims, LaneMaskFirst(tail)));
  }
  if (dts != nullptr) *dts += tested;
  return count;
}

size_t FilterTileAvx2(const Value* rows, int stride, size_t n,
                      const TileBlock& tiles, uint8_t* flags,
                      uint64_t* dts) {
  const size_t ntiles = tiles.tile_count();
  if (n == 0 || ntiles == 0) return 0;
  const int dims = tiles.dims();
  const size_t chunk = std::max<size_t>(
      1, kWindowChunkBytes / (tiles.tile_floats() * sizeof(Value)));
  uint64_t tested = 0;
  size_t flagged = 0;
  // Cache-blocked loop order: each L1-sized slice of the window is
  // streamed against every still-alive candidate before the next slice.
  for (size_t t0 = 0; t0 < ntiles; t0 += chunk) {
    const size_t t1 = t0 + chunk < ntiles ? t0 + chunk : ntiles;
    for (size_t i = 0; i < n; ++i) {
      if (flags[i] != 0) continue;
      const Value* q = rows + i * static_cast<size_t>(stride);
      const BroadcastQ qb(q, dims);
      for (size_t t = t0; t < t1; ++t) {
        const uint32_t valid = tiles.ValidLanes(t);
        tested += std::popcount(valid);
        if (TileVsBroadcast(qb, tiles.Tile(t), dims, valid) != 0) {
          flags[i] = 1;
          ++flagged;
          break;
        }
      }
    }
  }
  if (dts != nullptr) *dts += tested;
  return flagged;
}

#else  // !SKY_HAVE_AVX2 — scalar stand-ins so the library still links.

bool DominatesAvx2(const Value* p, const Value* q, int dpad) {
  return DominatesScalar(p, q, dpad);
}
bool PotentiallyDominatesAvx2(const Value* p, const Value* q, int dpad) {
  return PotentiallyDominatesScalar(p, q, dpad);
}
Relation CompareAvx2(const Value* p, const Value* q, int dpad) {
  return CompareScalar(p, q, dpad);
}
Mask PartitionMaskAvx2(const Value* p, const Value* v, int d, int dpad) {
  (void)dpad;
  return PartitionMaskScalar(p, v, d);
}
bool EqualAvx2(const Value* p, const Value* q, int dpad) {
  return EqualScalar(p, q, dpad);
}
uint32_t TileDominatesAvx2(const Value* q, const Value* tile, int dims,
                           uint32_t lane_mask) {
  return TileDominatesScalar(q, tile, dims, lane_mask);
}
uint32_t MaskComparableLanesAvx2(const Mask* masks8, Mask m) {
  return MaskComparableLanesScalar(masks8, m);
}
bool DominatedByAnyAvx2(const Value* q, const TileBlock& tiles,
                        size_t limit, uint64_t* dts) {
  const size_t n = limit < tiles.size() ? limit : tiles.size();
  uint64_t tested = 0;
  bool dominated = false;
  for (size_t t = 0; t * kSimdWidth < n && !dominated; ++t) {
    const size_t lanes = std::min<size_t>(kSimdWidth, n - t * kSimdWidth);
    tested += lanes;
    dominated = TileDominatesScalar(q, tiles.Tile(t), tiles.dims(),
                                    LaneMaskFirst(lanes)) != 0;
  }
  if (dts != nullptr) *dts += tested;
  return dominated;
}
bool DominatedInRangeAvx2(const Value* q, const TileBlock& tiles,
                          size_t from, uint64_t* dts) {
  uint64_t tested = 0;
  bool dominated = false;
  for (size_t t = from / kSimdWidth; t < tiles.tile_count() && !dominated;
       ++t) {
    uint32_t lanes = tiles.ValidLanes(t);
    if (t * kSimdWidth < from) {
      lanes &= ~LaneMaskFirst(from - t * kSimdWidth);
    }
    if (lanes == 0) continue;
    tested += std::popcount(lanes);
    dominated =
        TileDominatesScalar(q, tiles.Tile(t), tiles.dims(), lanes) != 0;
  }
  if (dts != nullptr) *dts += tested;
  return dominated;
}
size_t FilterTileAvx2(const Value* rows, int stride, size_t n,
                      const TileBlock& tiles, uint8_t* flags,
                      uint64_t* dts) {
  size_t flagged = 0;
  for (size_t i = 0; i < n; ++i) {
    if (flags[i] != 0) continue;
    if (DominatedByAnyAvx2(rows + i * static_cast<size_t>(stride), tiles,
                           tiles.size(), dts)) {
      flags[i] = 1;
      ++flagged;
    }
  }
  return flagged;
}
uint32_t CountDominatorsAvx2(const Value* q, const TileBlock& tiles,
                             size_t limit, uint32_t cap, uint64_t* dts) {
  const size_t n = limit < tiles.size() ? limit : tiles.size();
  uint64_t tested = 0;
  uint32_t count = 0;
  for (size_t t = 0; t * kSimdWidth < n && count < cap; ++t) {
    const size_t lanes = std::min<size_t>(kSimdWidth, n - t * kSimdWidth);
    tested += lanes;
    count += std::popcount(TileDominatesScalar(q, tiles.Tile(t), tiles.dims(),
                                               LaneMaskFirst(lanes)));
  }
  if (dts != nullptr) *dts += tested;
  return count;
}

#endif  // SKY_HAVE_AVX2

}  // namespace sky
