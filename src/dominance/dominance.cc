// Copyright (c) SkyBench-NG contributors.
#include "dominance/dominance.h"

namespace sky {

DomCtx::DomCtx(int dims, int stride, bool use_simd, bool use_batch)
    : d_(dims),
      stride_(stride),
      simd_(use_simd && CpuHasAvx2()),
      batch_(use_batch) {
  SKY_CHECK(dims >= 1 && dims <= kMaxDims);
  SKY_CHECK(stride >= dims && stride % kSimdWidth == 0);
}

}  // namespace sky
