// Copyright (c) SkyBench-NG contributors.
// Portable half of the batched dominance layer: TileBlock maintenance,
// scalar tile kernels, and the DomCtx entry points (which dispatch to
// the AVX2 kernels in simd.cc at runtime). This TU is deliberately NOT
// compiled with -mavx2 so it stays executable on any host.
#include "dominance/batch.h"

#include <algorithm>
#include <bit>

#include "common/bits.h"
#include "dominance/dominance.h"

namespace sky {

void TileBlock::Reset(int dims, size_t capacity) {
  SKY_CHECK(dims >= 1 && dims <= kMaxDims);
  dims_ = dims;
  tile_floats_ = static_cast<size_t>(dims) * kSimdWidth;
  capacity_ = capacity;
  count_ = 0;
  const size_t tiles = (capacity + kSimdWidth - 1) / kSimdWidth;
  soa_.Reset(tiles * tile_floats_);
  std::fill_n(soa_.data(), soa_.size(), kTileLanePad);
}

void TileBlock::Clear() {
  const size_t used_tiles = tile_count();
  std::fill_n(soa_.data(), used_tiles * tile_floats_, kTileLanePad);
  count_ = 0;
}

void TileBlock::PushRow(const Value* row) {
  SKY_DCHECK(count_ < capacity_);
  Value* lane = soa_.data() + (count_ / kSimdWidth) * tile_floats_ +
                count_ % kSimdWidth;
  for (int j = 0; j < dims_; ++j) lane[j * kSimdWidth] = row[j];
  ++count_;
}

void TileBlock::AppendRows(const Value* rows, int stride, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    PushRow(rows + i * static_cast<size_t>(stride));
  }
}

void TileBlock::PadLane(size_t i) {
  SKY_DCHECK(i < count_);
  Value* lane = soa_.data() + (i / kSimdWidth) * tile_floats_ +
                i % kSimdWidth;
  for (int j = 0; j < dims_; ++j) lane[j * kSimdWidth] = kTileLanePad;
}

uint32_t TileDominatesScalar(const Value* q, const Value* tile, int dims,
                             uint32_t lane_mask) {
  uint32_t out = 0;
  uint32_t rem = lane_mask & kFullLaneMask;
  while (rem != 0) {
    const int lane = std::countr_zero(rem);
    rem &= rem - 1;
    const Value* w = tile + lane;
    bool gt = false, lt = false;
    for (int j = 0; j < dims; ++j) {
      const Value v = w[j * kSimdWidth];
      if (v > q[j]) {
        gt = true;
        break;
      }
      lt |= v < q[j];
    }
    if (!gt && lt) out |= 1u << lane;
  }
  return out;
}

uint32_t MaskComparableLanesScalar(const Mask* masks8, Mask m) {
  uint32_t out = 0;
  for (size_t l = 0; l < kSimdWidth; ++l) {
    if (MaskMayDominate(masks8[l], m)) out |= 1u << l;
  }
  return out;
}

uint32_t DomCtx::TileDominates(const Value* q, const Value* tile,
                               uint32_t lane_mask) const {
  return simd_ ? TileDominatesAvx2(q, tile, d_, lane_mask)
               : TileDominatesScalar(q, tile, d_, lane_mask);
}

uint32_t DomCtx::MaskComparableLanes(const Mask* masks8, Mask m) const {
  return simd_ ? MaskComparableLanesAvx2(masks8, m)
               : MaskComparableLanesScalar(masks8, m);
}

namespace {

/// Scalar flavours of the whole-scan kernels (the AVX2 flavours live in
/// simd.cc with hoisted candidate broadcasts).
bool DominatedByAnyScalarImpl(const Value* q, const TileBlock& tiles,
                              int dims, size_t limit, uint64_t* dts) {
  const size_t n = std::min(limit, tiles.size());
  uint64_t tested = 0;
  bool dominated = false;
  const size_t full = n / kSimdWidth;
  const size_t tail = n % kSimdWidth;
  for (size_t t = 0; t < full; ++t) {
    tested += kSimdWidth;
    if (TileDominatesScalar(q, tiles.Tile(t), dims, kFullLaneMask) != 0) {
      dominated = true;
      break;
    }
  }
  if (!dominated && tail != 0) {
    tested += tail;
    dominated = TileDominatesScalar(q, tiles.Tile(full), dims,
                                    LaneMaskFirst(tail)) != 0;
  }
  if (dts != nullptr) *dts += tested;
  return dominated;
}

bool DominatedInRangeScalarImpl(const Value* q, const TileBlock& tiles,
                                int dims, size_t from, uint64_t* dts) {
  uint64_t tested = 0;
  bool dominated = false;
  for (size_t t = from / kSimdWidth; t < tiles.tile_count() && !dominated;
       ++t) {
    uint32_t lanes = tiles.ValidLanes(t);
    if (t * kSimdWidth < from) {
      lanes &= ~LaneMaskFirst(from - t * kSimdWidth);
    }
    if (lanes == 0) continue;
    tested += std::popcount(lanes);
    dominated = TileDominatesScalar(q, tiles.Tile(t), dims, lanes) != 0;
  }
  if (dts != nullptr) *dts += tested;
  return dominated;
}

uint32_t CountDominatorsScalarImpl(const Value* q, const TileBlock& tiles,
                                   int dims, size_t limit, uint32_t cap,
                                   uint64_t* dts) {
  const size_t n = std::min(limit, tiles.size());
  uint64_t tested = 0;
  uint32_t count = 0;
  for (size_t t = 0; t * kSimdWidth < n && count < cap; ++t) {
    const size_t lanes = std::min<size_t>(kSimdWidth, n - t * kSimdWidth);
    tested += lanes;
    count += std::popcount(TileDominatesScalar(q, tiles.Tile(t), dims,
                                               LaneMaskFirst(lanes)));
  }
  if (dts != nullptr) *dts += tested;
  return count;
}

size_t FilterTileScalarImpl(const Value* rows, int stride, size_t n,
                            const TileBlock& tiles, int dims,
                            uint8_t* flags, uint64_t* dts) {
  const size_t ntiles = tiles.tile_count();
  const size_t chunk = std::max<size_t>(
      1, kWindowChunkBytes / (tiles.tile_floats() * sizeof(Value)));
  uint64_t tested = 0;
  size_t flagged = 0;
  // Cache-blocked loop order: each L1-sized slice of the window is
  // streamed against every still-alive candidate before the next slice,
  // so window tiles are read from cache n times instead of from memory.
  for (size_t t0 = 0; t0 < ntiles; t0 += chunk) {
    const size_t t1 = std::min(ntiles, t0 + chunk);
    for (size_t i = 0; i < n; ++i) {
      if (flags[i] != 0) continue;
      const Value* q = rows + i * static_cast<size_t>(stride);
      for (size_t t = t0; t < t1; ++t) {
        const uint32_t valid = tiles.ValidLanes(t);
        tested += std::popcount(valid);
        if (TileDominatesScalar(q, tiles.Tile(t), dims, valid) != 0) {
          flags[i] = 1;
          ++flagged;
          break;
        }
      }
    }
  }
  if (dts != nullptr) *dts += tested;
  return flagged;
}

}  // namespace

bool DomCtx::DominatedByAny(const Value* q, const TileBlock& tiles,
                            size_t limit, uint64_t* dts) const {
  return simd_ ? DominatedByAnyAvx2(q, tiles, limit, dts)
               : DominatedByAnyScalarImpl(q, tiles, d_, limit, dts);
}

bool DomCtx::DominatedInRange(const Value* q, const TileBlock& tiles,
                              size_t from, uint64_t* dts) const {
  if (from >= tiles.size()) return false;
  if (from == 0) return DominatedByAny(q, tiles, tiles.size(), dts);
  return simd_ ? DominatedInRangeAvx2(q, tiles, from, dts)
               : DominatedInRangeScalarImpl(q, tiles, d_, from, dts);
}

uint32_t DomCtx::CountDominators(const Value* q, const TileBlock& tiles,
                                 size_t limit, uint32_t cap,
                                 uint64_t* dts) const {
  if (cap == 0 || tiles.empty()) return 0;
  return simd_ ? CountDominatorsAvx2(q, tiles, limit, cap, dts)
               : CountDominatorsScalarImpl(q, tiles, d_, limit, cap, dts);
}

size_t DomCtx::FilterTile(const Value* rows, size_t n,
                          const TileBlock& tiles, uint8_t* flags,
                          uint64_t* dts) const {
  if (n == 0 || tiles.empty()) return 0;
  return simd_ ? FilterTileAvx2(rows, stride_, n, tiles, flags, dts)
               : FilterTileScalarImpl(rows, stride_, n, tiles, d_, flags,
                                      dts);
}

}  // namespace sky
