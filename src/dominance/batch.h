// Copyright (c) SkyBench-NG contributors.
// Batched dominance layer: SoA tiles of kSimdWidth points and the
// one-vs-many / many-vs-many kernels that test a candidate against a
// whole tile per instruction stream. The one-vs-one kernels in
// dominance.h vectorize *across dimensions* — at the paper's common
// d=4..8 that fills at most one 8-lane register per compare; the tile
// kernels here vectorize *across points* instead, so every compare keeps
// all 8 lanes busy regardless of d and early-outs via movemask.
#ifndef SKY_DOMINANCE_BATCH_H_
#define SKY_DOMINANCE_BATCH_H_

#include <bit>
#include <cstdint>
#include <limits>

#include "common/aligned.h"
#include "common/macros.h"
#include "common/types.h"
#include "dominance/dominance.h"

namespace sky {

/// Lane-padding value for SoA tiles. +inf loses every ordered comparison
/// (never <=, never <) against finite coordinates, compares equal-only
/// against itself, and every NaN comparison is false — so a padding lane
/// can never register as a dominator of any candidate, NaN included.
inline constexpr Value kTileLanePad = std::numeric_limits<Value>::infinity();

/// All 8 lanes of a tile.
inline constexpr uint32_t kFullLaneMask = (1u << kSimdWidth) - 1;

/// Cache-blocking chunk for many-vs-many scans: the slice of the tile
/// window replayed against every surviving candidate before moving on.
/// Half a typical 32 KiB L1d, so candidate rows and flags fit alongside.
inline constexpr size_t kWindowChunkBytes = 16 * 1024;

/// Minimum shared-window size before the batched tile scans beat the
/// one-vs-one kernels — below it the broadcast/tiling overhead dominates.
/// Shared by Q-Flow's window scan and ComputeSkyband's band count.
inline constexpr size_t kBatchWindowMin = 256;

/// Minimum in-block prefix before the peer scans (Q-Flow Phase II,
/// ComputeSkyband Phase II) switch to the tile kernels.
inline constexpr size_t kBatchPrefixMin = 64;

/// Bit mask of the first `lanes` lanes (lanes <= kSimdWidth).
SKY_ALWAYS_INLINE uint32_t LaneMaskFirst(size_t lanes) {
  return (lanes >= kSimdWidth) ? kFullLaneMask
                               : ((1u << lanes) - 1);
}

/// Bits [lo, hi) of a tile's lane mask (0 <= lo <= hi <= kSimdWidth).
SKY_ALWAYS_INLINE uint32_t LaneMaskRange(size_t lo, size_t hi) {
  return LaneMaskFirst(hi) & ~LaneMaskFirst(lo);
}

/// An append-only array of SoA tiles: tile t holds points
/// [t*kSimdWidth, (t+1)*kSimdWidth) transposed, so dimension j of all 8
/// points occupies the contiguous, 32-byte-aligned floats
/// Tile(t)[j*kSimdWidth .. j*kSimdWidth+8). Unfilled lanes (a ragged
/// tail, or a cleared block) hold kTileLanePad on every dimension.
///
/// Unlike Dataset/WorkingSet rows, tiles carry exactly `dims` dimensions
/// per point — the SIMD padding moved from the dimension axis to the
/// point axis.
class TileBlock {
 public:
  TileBlock() = default;
  TileBlock(int dims, size_t capacity) { Reset(dims, capacity); }

  /// Allocate room for `capacity` points and mark every lane unfilled.
  void Reset(int dims, size_t capacity);

  /// Forget all points but keep the allocation, re-padding only the
  /// tiles that were actually written (cheap per-block reuse).
  void Clear();

  /// Append one point (reads `dims` floats from `row`).
  void PushRow(const Value* row);

  /// Append `count` AoS rows of the given stride (a WorkingSet/Dataset
  /// row range).
  void AppendRows(const Value* rows, int stride, size_t count);

  /// Deactivate point i's lane: overwrite every dimension with
  /// kTileLanePad so the lane is inert in every kernel (a padded lane
  /// can never dominate anything). The slot still counts toward size();
  /// re-padding an already-padded lane is a harmless no-op. This is the
  /// removal primitive for callers that mirror a tombstoned window.
  void PadLane(size_t i);

  int dims() const { return dims_; }
  size_t size() const { return count_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return count_ == 0; }
  size_t tile_count() const {
    return (count_ + kSimdWidth - 1) / kSimdWidth;
  }
  /// Floats per tile (dims * kSimdWidth).
  size_t tile_floats() const { return tile_floats_; }
  const Value* Tile(size_t t) const {
    SKY_DCHECK(t < tile_count());
    return soa_.data() + t * tile_floats_;
  }
  /// Lanes of tile t that hold real points.
  uint32_t ValidLanes(size_t t) const {
    SKY_DCHECK(t < tile_count());
    return LaneMaskFirst(count_ - t * kSimdWidth);
  }

 private:
  int dims_ = 0;
  size_t tile_floats_ = 0;
  size_t count_ = 0;
  size_t capacity_ = 0;
  AlignedBuffer<Value> soa_;
};

// ---- Tile kernels ----------------------------------------------------
//
// Each returns the bitmask of lanes (restricted to `lane_mask`) whose
// point strictly dominates q, with verdicts identical per lane to
// DominatesScalar — including the NaN convention (a NaN coordinate
// compares neither greater nor smaller, contributing neither a
// violation nor strictness). The AVX2 flavours live in simd.cc behind
// the same SKY_HAVE_AVX2 gate as the one-vs-one kernels; callers must
// gate on CpuHasAvx2() (DomCtx does).

uint32_t TileDominatesScalar(const Value* q, const Value* tile, int dims,
                             uint32_t lane_mask);
uint32_t TileDominatesAvx2(const Value* q, const Value* tile, int dims,
                           uint32_t lane_mask);

/// Lane mask over 8 consecutive partition masks: bit l set iff a point
/// carrying masks8[l] may dominate a point carrying mask m (the subset
/// test MaskMayDominate, vectorized). Loads 8 Mask values from masks8.
uint32_t MaskComparableLanesScalar(const Mask* masks8, Mask m);
uint32_t MaskComparableLanesAvx2(const Mask* masks8, Mask m);

// ---- Whole-scan kernels ----------------------------------------------
//
// The hot window scans live in the AVX2 TU so the candidate's broadcast
// registers are hoisted out of the tile loop (a per-tile entry call
// would re-broadcast d coordinates per 8 points). Callers must gate on
// CpuHasAvx2(); DomCtx::DominatedByAny / FilterTile do and fall back to
// the scalar tile loops otherwise.

/// True iff some point among the first min(limit, tiles.size()) tile
/// points strictly dominates q. Adds per-lane tests to *dts (non-null).
bool DominatedByAnyAvx2(const Value* q, const TileBlock& tiles,
                        size_t limit, uint64_t* dts);

/// True iff some tile point in [from, tiles.size()) strictly dominates q —
/// the suffix complement of DominatedByAnyAvx2's prefix limit, for callers
/// that already checked q against an earlier prefix of an append-only
/// window. Adds per-lane tests to *dts (non-null).
bool DominatedInRangeAvx2(const Value* q, const TileBlock& tiles,
                          size_t from, uint64_t* dts);

/// Flag every AoS candidate row (stride floats apart) dominated by some
/// tile point; cache-blocked over the window. Pre-flagged rows are
/// skipped. Returns the number newly flagged; adds tests to *dts.
size_t FilterTileAvx2(const Value* rows, int stride, size_t n,
                      const TileBlock& tiles, uint8_t* flags,
                      uint64_t* dts);

/// Number of points among the first min(limit, tiles.size()) tile points
/// that strictly dominate q, early-outing at tile granularity once the
/// running count reaches `cap`: the return value is exact when below
/// `cap` and merely >= cap otherwise (the last tile's full popcount is
/// included, so it may overshoot by up to kSimdWidth-1). This is the
/// dominator-counting core of the batched k-skyband paths, where `cap`
/// is band_k and any count >= band_k disqualifies identically. Adds
/// per-lane tests to *dts (non-null).
uint32_t CountDominatorsAvx2(const Value* q, const TileBlock& tiles,
                             size_t limit, uint32_t cap, uint64_t* dts);

/// Tail-safe 8-mask load: when fewer than kSimdWidth masks remain
/// readable at `src`, copies the `avail` real ones into `tmp` (filling
/// the rest with all-ones) and returns `tmp`; otherwise returns `src`.
/// The fill value is irrelevant — out-of-range lanes must already be
/// excluded by the caller's lane mask — this only keeps loads legal.
SKY_ALWAYS_INLINE const Mask* LoadMasks8(const Mask* src, size_t avail,
                                         Mask* tmp) {
  if (SKY_LIKELY(avail >= kSimdWidth)) return src;
  for (size_t i = 0; i < kSimdWidth; ++i) {
    tmp[i] = i < avail ? src[i] : ~Mask{0};
  }
  return tmp;
}

/// Mask-filtered batched probe of one tile (the shared inner step of
/// SkyStructure::Dominated and Hybrid's peer scan): among `active`
/// lanes, count the mask-incomparable ones (vs `m`) as skips, test the
/// comparable ones against q, and return true iff one dominates.
/// A single surviving lane routes through the one-vs-one kernel for its
/// per-dimension early exit (which the 8-lane kernel cannot do).
/// `masks` points at the lane-0 partition mask with `avail` readable
/// entries (tail-safe); `rows0`/`stride` give lane 0's AoS row for the
/// single-lane path. Inline: called once per tile in the hottest scans.
SKY_ALWAYS_INLINE bool ProbeMaskedTile(const DomCtx& dom, const Value* q,
                                       const Value* tile, const Mask* masks,
                                       size_t avail, Mask m,
                                       uint32_t active, const Value* rows0,
                                       size_t stride, uint64_t* dts,
                                       uint64_t* skips) {
  if (active == 0) return false;
  Mask tmp[kSimdWidth];
  const Mask* m8 = LoadMasks8(masks, avail, tmp);
  const uint32_t comparable = dom.MaskComparableLanes(m8, m);
  *skips += std::popcount(active & ~comparable);
  const uint32_t elig = active & comparable;
  if (elig == 0) return false;
  *dts += std::popcount(elig);
  if ((elig & (elig - 1)) == 0) {
    const size_t lane = static_cast<size_t>(std::countr_zero(elig));
    return dom.Dominates(rows0 + lane * stride, q);
  }
  return dom.TileDominates(q, tile, elig) != 0;
}

}  // namespace sky

#endif  // SKY_DOMINANCE_BATCH_H_
