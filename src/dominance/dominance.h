// Copyright (c) SkyBench-NG contributors.
// Dominance-test kernels — the primary operation of every skyline
// algorithm (paper §IV-A). All kernels operate on SIMD-padded rows: the
// row stride is a multiple of kSimdWidth floats and padding lanes are
// zero, so they compare equal and never influence the verdict.
#ifndef SKY_DOMINANCE_DOMINANCE_H_
#define SKY_DOMINANCE_DOMINANCE_H_

#include "common/macros.h"
#include "common/types.h"

namespace sky {

/// True iff p strictly dominates q (Definition 2): p <= q on every
/// dimension and p < q on at least one. Coincident points do not dominate
/// each other, so duplicated skyline points are all retained.
SKY_ALWAYS_INLINE bool DominatesScalar(const Value* SKY_RESTRICT p,
                                       const Value* SKY_RESTRICT q, int d) {
  bool strict = false;
  for (int i = 0; i < d; ++i) {
    if (p[i] > q[i]) return false;
    strict |= p[i] < q[i];
  }
  return strict;
}

/// True iff p "may dominate" q (Definition 1): p <= q on every dimension.
SKY_ALWAYS_INLINE bool PotentiallyDominatesScalar(const Value* SKY_RESTRICT p,
                                                  const Value* SKY_RESTRICT q,
                                                  int d) {
  for (int i = 0; i < d; ++i) {
    if (p[i] > q[i]) return false;
  }
  return true;
}

/// Full two-way comparison.
SKY_ALWAYS_INLINE Relation CompareScalar(const Value* SKY_RESTRICT p,
                                         const Value* SKY_RESTRICT q, int d) {
  bool p_lt = false, q_lt = false;
  for (int i = 0; i < d; ++i) {
    p_lt |= p[i] < q[i];
    q_lt |= q[i] < p[i];
    if (p_lt && q_lt) return Relation::kIncomparable;
  }
  if (p_lt) return Relation::kLeftDominates;
  if (q_lt) return Relation::kRightDominates;
  return Relation::kEqual;
}

/// Partition mask of p relative to pivot v (paper §VI-A2):
/// bit i = (p[i] < v[i]) ? 0 : 1.
SKY_ALWAYS_INLINE Mask PartitionMaskScalar(const Value* SKY_RESTRICT p,
                                           const Value* SKY_RESTRICT v,
                                           int d) {
  Mask m = 0;
  for (int i = 0; i < d; ++i) {
    m |= static_cast<Mask>(p[i] >= v[i]) << i;
  }
  return m;
}

/// True iff p and q are coincident on the first d dimensions.
SKY_ALWAYS_INLINE bool EqualScalar(const Value* SKY_RESTRICT p,
                                   const Value* SKY_RESTRICT q, int d) {
  for (int i = 0; i < d; ++i) {
    if (p[i] != q[i]) return false;
  }
  return true;
}

// Vectorized (AVX2) kernels, compiled in when SKY_HAVE_AVX2 is defined.
// `dpad` must be the padded row stride (multiple of 8). Loads are
// unaligned-tolerant (loadu; identical throughput on aligned rows), so
// stack/vector-backed pivots are accepted. Defined in simd.cc.
bool DominatesAvx2(const Value* p, const Value* q, int dpad);
bool PotentiallyDominatesAvx2(const Value* p, const Value* q, int dpad);
Relation CompareAvx2(const Value* p, const Value* q, int dpad);
Mask PartitionMaskAvx2(const Value* p, const Value* v, int d, int dpad);
bool EqualAvx2(const Value* p, const Value* q, int dpad);

/// Runtime check that the host CPU executes AVX2.
bool CpuHasAvx2();

class TileBlock;  // SoA tiles for the batched kernels (dominance/batch.h)

/// Bound dominance context: fixes dimensionality, padded stride, and
/// kernel flavour once per run so hot loops carry no re-dispatch cost
/// beyond one well-predicted branch.
class DomCtx {
 public:
  /// `use_simd` requests the vector kernels; silently falls back to scalar
  /// when the build or CPU lacks AVX2. `use_batch` additionally routes the
  /// hot window scans through the SoA tile kernels (dominance/batch.h);
  /// turning it off restores the one-vs-one paths for ablation.
  DomCtx(int dims, int stride, bool use_simd, bool use_batch = true);

  int dims() const { return d_; }
  int stride() const { return stride_; }
  bool simd() const { return simd_; }
  /// True when consumers should prefer the batched tile entry points.
  bool batch() const { return batch_; }

  SKY_ALWAYS_INLINE bool Dominates(const Value* p, const Value* q) const {
    return simd_ ? DominatesAvx2(p, q, stride_) : DominatesScalar(p, q, d_);
  }

  SKY_ALWAYS_INLINE bool PotentiallyDominates(const Value* p,
                                              const Value* q) const {
    return simd_ ? PotentiallyDominatesAvx2(p, q, stride_)
                 : PotentiallyDominatesScalar(p, q, d_);
  }

  SKY_ALWAYS_INLINE Relation Compare(const Value* p, const Value* q) const {
    return simd_ ? CompareAvx2(p, q, stride_) : CompareScalar(p, q, d_);
  }

  SKY_ALWAYS_INLINE Mask PartitionMask(const Value* p, const Value* v) const {
    return simd_ ? PartitionMaskAvx2(p, v, d_, stride_)
                 : PartitionMaskScalar(p, v, d_);
  }

  SKY_ALWAYS_INLINE bool Equal(const Value* p, const Value* q) const {
    return simd_ ? EqualAvx2(p, q, stride_) : EqualScalar(p, q, d_);
  }

  // ---- Batched (tile) entry points, defined in batch.cc. Each works in
  // any build: with SIMD they run the AVX2 tile kernels, without they run
  // the scalar tile kernels — verdicts are identical either way.

  /// Lane mask of `tile` points (restricted to lane_mask) that strictly
  /// dominate q. Per-lane verdicts match DominatesScalar exactly.
  uint32_t TileDominates(const Value* q, const Value* tile,
                         uint32_t lane_mask) const;

  /// Lane mask over masks8[0..8) of points that may dominate a point
  /// carrying partition mask m (vectorized MaskMayDominate).
  uint32_t MaskComparableLanes(const Mask* masks8, Mask m) const;

  /// True iff some point among the first min(limit, tiles.size()) tile
  /// points strictly dominates q; early-outs per tile. Adds the number of
  /// per-lane tests performed to *dts when non-null.
  bool DominatedByAny(const Value* q, const TileBlock& tiles, size_t limit,
                      uint64_t* dts) const;

  /// True iff some tile point in [from, tiles.size()) strictly dominates
  /// q — the suffix complement of DominatedByAny's prefix limit, for
  /// callers that already checked q against an earlier prefix of an
  /// append-only window.
  bool DominatedInRange(const Value* q, const TileBlock& tiles, size_t from,
                        uint64_t* dts) const;

  /// Number of points among the first min(limit, tiles.size()) tile
  /// points that strictly dominate q, early-outing once the count reaches
  /// `cap` — exact below cap, >= cap otherwise (k-skyband counting:
  /// cap = band_k, where any count >= band_k disqualifies identically).
  uint32_t CountDominators(const Value* q, const TileBlock& tiles,
                           size_t limit, uint32_t cap, uint64_t* dts) const;

  /// Many-vs-many: flag every candidate row i in [0, n) (AoS rows of this
  /// context's stride) dominated by some tile point. The window is walked
  /// in L1-sized chunks, each replayed against all surviving candidates
  /// (cache-blocked scan). Returns the number of rows newly flagged;
  /// rows already flagged on entry are skipped.
  size_t FilterTile(const Value* rows, size_t n, const TileBlock& tiles,
                    uint8_t* flags, uint64_t* dts) const;

 private:
  int d_;
  int stride_;
  bool simd_;
  bool batch_;
};

}  // namespace sky

#endif  // SKY_DOMINANCE_DOMINANCE_H_
