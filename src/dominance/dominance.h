// Copyright (c) SkyBench-NG contributors.
// Dominance-test kernels — the primary operation of every skyline
// algorithm (paper §IV-A). All kernels operate on SIMD-padded rows: the
// row stride is a multiple of kSimdWidth floats and padding lanes are
// zero, so they compare equal and never influence the verdict.
#ifndef SKY_DOMINANCE_DOMINANCE_H_
#define SKY_DOMINANCE_DOMINANCE_H_

#include "common/macros.h"
#include "common/types.h"

namespace sky {

/// True iff p strictly dominates q (Definition 2): p <= q on every
/// dimension and p < q on at least one. Coincident points do not dominate
/// each other, so duplicated skyline points are all retained.
SKY_ALWAYS_INLINE bool DominatesScalar(const Value* SKY_RESTRICT p,
                                       const Value* SKY_RESTRICT q, int d) {
  bool strict = false;
  for (int i = 0; i < d; ++i) {
    if (p[i] > q[i]) return false;
    strict |= p[i] < q[i];
  }
  return strict;
}

/// True iff p "may dominate" q (Definition 1): p <= q on every dimension.
SKY_ALWAYS_INLINE bool PotentiallyDominatesScalar(const Value* SKY_RESTRICT p,
                                                  const Value* SKY_RESTRICT q,
                                                  int d) {
  for (int i = 0; i < d; ++i) {
    if (p[i] > q[i]) return false;
  }
  return true;
}

/// Full two-way comparison.
SKY_ALWAYS_INLINE Relation CompareScalar(const Value* SKY_RESTRICT p,
                                         const Value* SKY_RESTRICT q, int d) {
  bool p_lt = false, q_lt = false;
  for (int i = 0; i < d; ++i) {
    p_lt |= p[i] < q[i];
    q_lt |= q[i] < p[i];
    if (p_lt && q_lt) return Relation::kIncomparable;
  }
  if (p_lt) return Relation::kLeftDominates;
  if (q_lt) return Relation::kRightDominates;
  return Relation::kEqual;
}

/// Partition mask of p relative to pivot v (paper §VI-A2):
/// bit i = (p[i] < v[i]) ? 0 : 1.
SKY_ALWAYS_INLINE Mask PartitionMaskScalar(const Value* SKY_RESTRICT p,
                                           const Value* SKY_RESTRICT v,
                                           int d) {
  Mask m = 0;
  for (int i = 0; i < d; ++i) {
    m |= static_cast<Mask>(p[i] >= v[i]) << i;
  }
  return m;
}

/// True iff p and q are coincident on the first d dimensions.
SKY_ALWAYS_INLINE bool EqualScalar(const Value* SKY_RESTRICT p,
                                   const Value* SKY_RESTRICT q, int d) {
  for (int i = 0; i < d; ++i) {
    if (p[i] != q[i]) return false;
  }
  return true;
}

// Vectorized (AVX2) kernels, compiled in when SKY_HAVE_AVX2 is defined.
// `dpad` must be the padded row stride (multiple of 8). Loads are
// unaligned-tolerant (loadu; identical throughput on aligned rows), so
// stack/vector-backed pivots are accepted. Defined in simd.cc.
bool DominatesAvx2(const Value* p, const Value* q, int dpad);
bool PotentiallyDominatesAvx2(const Value* p, const Value* q, int dpad);
Relation CompareAvx2(const Value* p, const Value* q, int dpad);
Mask PartitionMaskAvx2(const Value* p, const Value* v, int d, int dpad);

/// Runtime check that the host CPU executes AVX2.
bool CpuHasAvx2();

/// Bound dominance context: fixes dimensionality, padded stride, and
/// kernel flavour once per run so hot loops carry no re-dispatch cost
/// beyond one well-predicted branch.
class DomCtx {
 public:
  /// `use_simd` requests the vector kernels; silently falls back to scalar
  /// when the build or CPU lacks AVX2.
  DomCtx(int dims, int stride, bool use_simd);

  int dims() const { return d_; }
  int stride() const { return stride_; }
  bool simd() const { return simd_; }

  SKY_ALWAYS_INLINE bool Dominates(const Value* p, const Value* q) const {
    return simd_ ? DominatesAvx2(p, q, stride_) : DominatesScalar(p, q, d_);
  }

  SKY_ALWAYS_INLINE bool PotentiallyDominates(const Value* p,
                                              const Value* q) const {
    return simd_ ? PotentiallyDominatesAvx2(p, q, stride_)
                 : PotentiallyDominatesScalar(p, q, d_);
  }

  SKY_ALWAYS_INLINE Relation Compare(const Value* p, const Value* q) const {
    return simd_ ? CompareAvx2(p, q, stride_) : CompareScalar(p, q, d_);
  }

  SKY_ALWAYS_INLINE Mask PartitionMask(const Value* p, const Value* v) const {
    return simd_ ? PartitionMaskAvx2(p, v, d_, stride_)
                 : PartitionMaskScalar(p, v, d_);
  }

  SKY_ALWAYS_INLINE bool Equal(const Value* p, const Value* q) const {
    return EqualScalar(p, q, d_);
  }

 private:
  int d_;
  int stride_;
  bool simd_;
};

}  // namespace sky

#endif  // SKY_DOMINANCE_DOMINANCE_H_
