// Copyright (c) SkyBench-NG contributors.
// Unified algorithm registry: one descriptor per implemented algorithm —
// entry point, parse/display names, capability flags and the cost
// coefficients the auto-selection cost model (query/cost_model.h)
// evaluates. ComputeSkyline dispatches through this table, the CLI and
// benchmarks enumerate it, and ParseAlgorithm derives its valid-name
// diagnostics from it, so adding an algorithm is a one-row change.
#ifndef SKY_CORE_ALGORITHM_REGISTRY_H_
#define SKY_CORE_ALGORITHM_REGISTRY_H_

#include <span>
#include <string>

#include "core/options.h"

namespace sky {

/// Coefficients of the cost model's per-algorithm runtime estimate (see
/// query/cost_model.cc for the formula). Units are nanoseconds of work;
/// only ratios matter, calibrated to reproduce the paper's Fig. 5/6
/// crossovers (sequential BSkyTree small/low-d, PSkyline mid-range,
/// Q-Flow/Hybrid at scale).
struct CostCoefficients {
  double startup_ns = 0.0;         ///< fixed per-run overhead
  double startup_thread_ns = 0.0;  ///< extra overhead per worker thread
  double per_point_ns = 0.0;       ///< linear work per point per dim
  double per_cmp_ns = 0.0;         ///< work per point x skyline coordinate
  double cmp_dim_growth = 1.0;     ///< per-dim growth of per_cmp past d=4
  double per_sky2_ns = 0.0;        ///< work quadratic in the skyline size
                                   ///< (divide-and-conquer merge phases)
  double parallel_fraction = 0.0;  ///< Amdahl fraction that scales with t
};

struct AlgorithmDescriptor {
  Algorithm algorithm = Algorithm::kBnl;
  const char* name = "";        ///< canonical display name ("BSkyTree-S")
  const char* parse_name = "";  ///< canonical CLI spelling ("bskytree-s")
  Result (*compute)(const Dataset&, const Options&) = nullptr;
  bool parallel = false;     ///< uses more than one thread
  bool progressive = false;  ///< honors Options::progressive
  bool skyband = false;      ///< ComputeSkyband reuses its block-flow core
  bool auto_candidate = false;  ///< eligible for kAuto cost selection
  CostCoefficients cost;
};

/// Every registered algorithm, in Algorithm enum order. kAuto is not a
/// row: it is a request that resolves to one of these.
std::span<const AlgorithmDescriptor> AlgorithmTable();

/// Descriptor lookup. Throws std::invalid_argument for Algorithm::kAuto
/// (an unresolved auto request must never reach dispatch).
const AlgorithmDescriptor& GetAlgorithmDescriptor(Algorithm algorithm);

/// "bnl, sfs, ..., pbskytree, auto" — the ParseAlgorithm diagnostic list.
std::string AlgorithmNameList();

}  // namespace sky

#endif  // SKY_CORE_ALGORITHM_REGISTRY_H_
