// Copyright (c) SkyBench-NG contributors.
// BBS-style branch-and-bound skyline over a block zonemap index
// (index/zonemap.h): a min-heap ordered by min-corner L1 norm pops
// super-blocks, blocks and individual points best-first; any entry whose
// min corner is dominated by an already-confirmed member is pruned with a
// single DominatedByAny tile call, and block AABBs are intersected with
// the query's constraint box so constrained specs skip whole blocks
// without touching a row. Registered as Algorithm::kZonemap.
#ifndef SKY_CORE_ZONEMAP_SKYLINE_H_
#define SKY_CORE_ZONEMAP_SKYLINE_H_

#include <span>
#include <vector>

#include "core/options.h"
#include "data/dataset.h"
#include "index/zonemap.h"
#include "query/query_spec.h"

namespace sky {

/// Outcome of one zonemap traversal, in the index's local row space.
struct ZonemapRunResult {
  std::vector<PointId> skyline;  ///< local row indices, confirmation order
  RunStats stats;                ///< init = heap seed, phase1 = traversal,
                                 ///< phase2 = irregular/final filter
  size_t matched_rows = 0;       ///< rows inside the constraint box (exact)
  size_t blocks_visited = 0;     ///< blocks whose rows entered the heap
  size_t blocks_pruned = 0;      ///< blocks skipped: min corner dominated
  size_t blocks_box_skipped = 0; ///< blocks skipped: AABB misses the box
  std::vector<uint32_t> pruned_blocks;  ///< indices of dominance-pruned blocks
};

/// Best-first traversal of `index` (which must have been built over
/// `data`). `constraints` restricts candidates to a box exactly like
/// MaterializeView does (closed intervals; a NaN coordinate fails its
/// constraint); empty = unconstrained. Finite rows are resolved by the
/// branch-and-bound traversal; rows the index segregated as irregular
/// (non-finite coordinates) are box-checked individually and folded in
/// with a final FilterTile pass, so results match the flat algorithms on
/// any input. opts.progressive streams confirmed members (local ids) in
/// dominance order — only when no irregular row passes the box, since a
/// late irregular row could otherwise retract a streamed member.
ZonemapRunResult ZonemapSkylineRun(const Dataset& data,
                                   const ZoneMapIndex& index,
                                   std::span<const DimConstraint> constraints,
                                   const Options& opts);

/// Registry entry point (AlgorithmTable row for Algorithm::kZonemap):
/// builds a private index over `data` (opts.block_rows; no sketch) and
/// runs the unconstrained traversal. The engine's direct path reuses a
/// cached per-shard index instead and passes the constraint box through
/// ZonemapSkylineRun — this standalone form pays the build on every call,
/// which the cost model's startup coefficients reflect.
Result ZonemapSkylineCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_CORE_ZONEMAP_SKYLINE_H_
