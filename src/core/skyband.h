// Copyright (c) SkyBench-NG contributors.
// k-skyband (extension): all points dominated by fewer than k others —
// the standard generalisation of the skyline (k = 1). Useful when the
// skyline alone is too sparse (top-k alternatives per trade-off). The
// parallel variant reuses the paper's α-block flow: because every
// dominator of a k-skyband member is itself a k-skyband member (the
// dominator's dominators are a subset of the member's), the globally
// shared band is a sufficient filter — the same argument that lets
// Q-Flow keep only the skyline.
#ifndef SKY_CORE_SKYBAND_H_
#define SKY_CORE_SKYBAND_H_

#include <vector>

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

struct SkybandResult {
  /// Original row ids of all points with fewer than k dominators.
  std::vector<PointId> skyband;
  /// Exact dominator count of each member (same order as `skyband`).
  std::vector<uint32_t> dominator_counts;
  RunStats stats;
};

/// Compute the k-skyband of `data`. k >= 1; k == 1 yields the skyline.
/// opts.threads > 1 selects the parallel block algorithm; opts.alpha and
/// opts.use_simd are honored. Other algorithm-selection fields ignored.
SkybandResult ComputeSkyband(const Dataset& data, uint32_t k,
                             const Options& opts = Options{});

}  // namespace sky

#endif  // SKY_CORE_SKYBAND_H_
