// Copyright (c) SkyBench-NG contributors.
// Public façade of the library: one entry point dispatching to any of the
// ten implemented skyline algorithms.
//
// Quickstart:
//   sky::Dataset data = sky::GenerateSynthetic(
//       sky::Distribution::kAnticorrelated, 100'000, 8, /*seed=*/42);
//   sky::Options opts;
//   opts.algorithm = sky::Algorithm::kHybrid;
//   opts.threads = 4;
//   sky::Result r = sky::ComputeSkyline(data, opts);
//   // r.skyline holds the Dataset row indices of all skyline points.
#ifndef SKY_CORE_SKYLINE_H_
#define SKY_CORE_SKYLINE_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

/// Compute the skyline of `data` (smaller is better on every dimension)
/// with the algorithm selected in `opts`. Returns original row indices of
/// every non-dominated point — coincident duplicates of a skyline point
/// are all reported, matching Definition 3 of the paper.
Result ComputeSkyline(const Dataset& data, const Options& opts = Options{});

/// Convenience: verify that `candidate` is exactly SKY(data) by the
/// definition (O(n * |candidate| * d); test/debug use). Returns true on
/// exact agreement with a reference computation.
bool VerifySkyline(const Dataset& data, const std::vector<PointId>& candidate);

}  // namespace sky

#endif  // SKY_CORE_SKYLINE_H_
