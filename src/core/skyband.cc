// Copyright (c) SkyBench-NG contributors.
#include "core/skyband.h"

#include <algorithm>
#include <cstring>

#include "common/cancel.h"
#include "common/timer.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

// Correctness sketch. Let D(p) be p's dominator set. For any x in D(p),
// D(x) is a subset of D(p) (transitivity), so:
//   (a) if |D(p)| < k, every dominator of p is a k-skyband member;
//   (b) if |D(p)| >= k, at least k of p's dominators are band members
//       (pick a minimal non-member x in D(p): D(x) consists of members
//       only and |D(x)| >= k — contradiction, so no non-member minimal
//       exists below the k threshold).
// Hence counting dominators against the confirmed band alone classifies
// every point exactly, and reported counts are exact for members by (a).
//
// The L1 sort guarantees dominators precede their victims, so the α-block
// flow of Q-Flow carries over: Phase I counts band dominators, Phase II
// counts preceding in-block peers (flagged peers included — a flagged
// dominator implies >= k+1 dominators anyway).
SkybandResult ComputeSkyband(const Dataset& data, uint32_t k,
                             const Options& opts) {
  SkybandResult res;
  RunStats& st = res.stats;
  SKY_CHECK(k >= 1);
  if (data.count() == 0) return res;

  WallTimer total;
  ThreadPool pool(opts.executor, opts.ResolvedThreads());
  DomCtx dom(data.dims(), data.stride(), opts.use_simd, opts.use_batch);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  WallTimer phase;
  ws.ComputeL1(pool);
  SortByL1(ws, pool);
  st.init_seconds = phase.Lap();

  const size_t alpha = opts.AlphaFor(Algorithm::kQFlow);
  const size_t stride = static_cast<size_t>(ws.stride);
  const size_t row_bytes = sizeof(Value) * stride;

  AlignedBuffer<Value> band_rows(ws.count * stride);
  std::vector<PointId> band_ids;
  std::vector<uint32_t> band_counts;
  size_t band_count = 0;
  const auto band_row = [&](size_t i) {
    return band_rows.data() + i * stride;
  };

  std::vector<uint8_t> flags(std::min(alpha, ws.count));
  std::vector<uint32_t> counts(std::min(alpha, ws.count));

  // SoA mirrors for the batched counting kernel: `band_tiles` shadows the
  // confirmed band (appended as members confirm), `block_tiles` is rebuilt
  // per block over the Phase II survivors. Capped counting keeps the exact
  // classification: CountDominators is exact below cap and any count >= k
  // flags identically.
  TileBlock band_tiles;
  TileBlock block_tiles;
  if (dom.batch()) {
    band_tiles.Reset(data.dims(), ws.count);
    block_tiles.Reset(data.dims(), std::min(alpha, ws.count));
  }

  for (size_t b = 0; b < ws.count; b += alpha) {
    CheckCancel(opts.cancel);  // per-block deadline checkpoint
    const size_t e = std::min(b + alpha, ws.count);
    const size_t blen = e - b;
    std::fill_n(flags.begin(), blen, uint8_t{0});
    std::fill_n(counts.begin(), blen, 0u);

    // Phase I: count dominators among confirmed band members, stopping
    // as soon as k is reached.
    phase.Restart();
    const bool batch1 = dom.batch() && band_count >= kBatchWindowMin;
    pool.ParallelFor(blen, 16, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const Value* q = ws.Row(b + i);
        uint32_t c = 0;
        if (batch1) {
          c = std::min(
              dom.CountDominators(q, band_tiles, band_count, k, nullptr), k);
        } else {
          for (size_t s = 0; s < band_count && c < k; ++s) {
            c += dom.Dominates(band_row(s), q);
          }
        }
        counts[i] = c;
        if (c >= k) flags[i] = 1;
      }
    });
    st.phase1_seconds += phase.Lap();

    // Compress, carrying the partial counts along.
    size_t write = 0;
    for (size_t i = 0; i < blen; ++i) {
      if (flags[i]) continue;
      ws.MoveRow(b + write, b + i);
      counts[write] = counts[i];
      ++write;
    }
    const size_t survivors = write;
    st.compress_seconds += phase.Lap();

    // Phase II: add dominators among preceding in-block survivors. A
    // dominating peer counts whether or not it is itself flagged (its
    // own >= k dominators also dominate us).
    std::fill_n(flags.begin(), survivors, uint8_t{0});
    if (dom.batch() && survivors > kBatchPrefixMin) {
      block_tiles.Clear();
      block_tiles.AppendRows(ws.Row(b), ws.stride, survivors);
    }
    pool.ParallelFor(survivors, 16, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const Value* q = ws.Row(b + i);
        uint32_t c = counts[i];
        if (dom.batch() && i >= kBatchPrefixMin) {
          if (c < k) {
            c = std::min(
                c + dom.CountDominators(q, block_tiles, i, k - c, nullptr),
                k);
          }
        } else {
          for (size_t j = 0; j < i && c < k; ++j) {
            c += dom.Dominates(ws.Row(b + j), q);
          }
        }
        counts[i] = c;
        if (c >= k) flags[i] = 1;
      }
    });
    st.phase2_seconds += phase.Lap();

    for (size_t i = 0; i < survivors; ++i) {
      if (flags[i]) continue;
      std::memcpy(band_row(band_count), ws.Row(b + i), row_bytes);
      if (dom.batch()) band_tiles.PushRow(ws.Row(b + i));
      band_ids.push_back(ws.ids[b + i]);
      band_counts.push_back(counts[i]);
      ++band_count;
    }
    st.compress_seconds += phase.Lap();
  }

  res.skyband = std::move(band_ids);
  res.dominator_counts = std::move(band_counts);
  st.skyline_size = band_count;
  st.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
