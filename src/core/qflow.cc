// Copyright (c) SkyBench-NG contributors.
#include "core/qflow.h"

#include <algorithm>
#include <cstring>

#include "common/cancel.h"
#include "common/stats.h"
#include "common/timer.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace {
/// Dynamic-schedule chunk for the parallel phases: small enough to balance
/// the highly skewed per-point cost (dominated points abort their scan
/// almost immediately), large enough to amortise the claim.
constexpr size_t kPhaseGrain = 16;
}  // namespace

// Phase I batches only past kBatchWindowMin window points and Phase II
// past kBatchPrefixMin peers (dominance/batch.h): below these the window
// fits a few tiles and per-point early exit (the first dominators are
// L1-strong and sit at the front) beats paying for 8 lanes per compare.

Result QFlowCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;

  WallTimer total;
  ThreadPool pool(opts.executor, opts.ResolvedThreads());
  DomCtx dom(data.dims(), data.stride(), opts.use_simd, opts.use_batch);
  DtCounter counter(opts.count_dts);

  WorkingSet ws = WorkingSet::FromDataset(data, pool);

  // Initialization: parallel L1 + sort ("Init." of paper Fig. 7).
  WallTimer phase;
  ws.ComputeL1(pool);
  SortByL1(ws, pool);
  st.init_seconds = phase.Lap();

  const size_t alpha = opts.AlphaFor(Algorithm::kQFlow);
  const size_t stride = static_cast<size_t>(ws.stride);
  const size_t row_bytes = sizeof(Value) * stride;

  // Global skyline S: contiguous rows + original ids, append-only. In
  // batch mode a transposed SoA mirror of S (and a per-block tile set of
  // Phase II survivors) feeds the 8-lane window kernels.
  AlignedBuffer<Value> sky_rows(ws.count * stride);
  std::vector<PointId> sky_ids;
  sky_ids.reserve(1024);
  size_t sky_count = 0;
  const auto sky_row = [&](size_t i) { return sky_rows.data() + i * stride; };

  const bool batch = dom.batch();
  TileBlock sky_tiles;
  TileBlock block_tiles;
  if (batch) {
    sky_tiles.Reset(ws.dims, ws.count);
    block_tiles.Reset(ws.dims, std::min(alpha, ws.count));
  }

  std::vector<uint8_t> flags(std::min(alpha, ws.count));

  for (size_t b = 0; b < ws.count; b += alpha) {
    // Deadline / cancellation checkpoint, once per α-block: everything
    // confirmed so far (and already reported progressively) is exact, so
    // stopping here yields a well-formed partial skyline.
    CheckCancel(opts.cancel);
    const size_t e = std::min(b + alpha, ws.count);
    const size_t blen = e - b;
    std::fill_n(flags.begin(), blen, uint8_t{0});

    // ---- Phase I: each block point vs. the known global skyline, in the
    // exact order a sequential algorithm would use (Algorithm 1 l.6-8).
    // Batch mode filters each candidate run against the SoA mirror of S
    // with the cache-blocked tile scan; the verdict per point is
    // identical, only the evaluation width changes.
    phase.Restart();
    // Tiny windows favour the one-vs-one scan: its per-point early exit
    // finds the (L1-strong) first dominators in a couple of tests, while
    // a tile pass always pays for 8 lanes.
    const bool batch_window = batch && sky_count >= kBatchWindowMin;
    pool.ParallelFor(blen, kPhaseGrain, [&](size_t lo, size_t hi) {
      uint64_t dts = 0;
      if (batch_window) {
        dom.FilterTile(ws.Row(b + lo), hi - lo, sky_tiles, flags.data() + lo,
                       &dts);
      } else {
        for (size_t k = lo; k < hi; ++k) {
          const Value* q = ws.Row(b + k);
          for (size_t s = 0; s < sky_count; ++s) {
            ++dts;
            if (dom.Dominates(sky_row(s), q)) {
              flags[k] = 1;
              break;
            }
          }
        }
      }
      counter.AddTests(dts);
    });
    st.phase1_seconds += phase.Lap();

    // ---- Compression (Algorithm 1 l.9).
    const size_t survivors = ws.CompressRange(b, e, flags.data());
    st.compress_seconds += phase.Lap();

    // ---- Phase II: survivors vs. preceding in-block survivors
    // (Algorithm 1 l.10-12). If Q[j] dominates Q[k], Q[k] is dominated
    // regardless of Q[j]'s own (still unsettled) fate. Batch mode tiles
    // the survivor range once, then each point scans its prefix of tiles
    // (the ragged head tile handled by a lane mask).
    std::fill_n(flags.begin(), survivors, uint8_t{0});
    if (batch) {
      block_tiles.Clear();
      block_tiles.AppendRows(ws.Row(b), ws.stride, survivors);
    }
    pool.ParallelFor(survivors, kPhaseGrain, [&](size_t lo, size_t hi) {
      uint64_t dts = 0;
      for (size_t k = lo; k < hi; ++k) {
        const Value* q = ws.Row(b + k);
        if (batch && k >= kBatchPrefixMin) {
          if (dom.DominatedByAny(q, block_tiles, k, &dts)) flags[k] = 1;
          continue;
        }
        for (size_t j = 0; j < k; ++j) {
          ++dts;
          if (dom.Dominates(ws.Row(b + j), q)) {
            flags[k] = 1;
            break;
          }
        }
      }
      counter.AddTests(dts);
    });
    st.phase2_seconds += phase.Lap();

    // ---- Compression + append to S (Algorithm 1 l.13-14).
    const size_t confirmed = ws.CompressRange(b, b + survivors, flags.data());
    for (size_t k = 0; k < confirmed; ++k) {
      std::memcpy(sky_row(sky_count + k), ws.Row(b + k), row_bytes);
      sky_ids.push_back(ws.ids[b + k]);
    }
    if (batch) sky_tiles.AppendRows(ws.Row(b), ws.stride, confirmed);
    sky_count += confirmed;
    st.compress_seconds += phase.Lap();

    if (opts.progressive && confirmed > 0) {
      opts.progressive(
          std::span<const PointId>(sky_ids.data() + sky_count - confirmed,
                                   confirmed));
    }
  }

  res.skyline = std::move(sky_ids);
  st.skyline_size = sky_count;
  st.dominance_tests = counter.tests();
  st.total_seconds = total.Seconds();
  st.other_seconds =
      std::max(0.0, st.total_seconds - (st.init_seconds + st.phase1_seconds +
                                        st.phase2_seconds +
                                        st.compress_seconds));
  return res;
}

}  // namespace sky
