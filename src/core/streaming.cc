// Copyright (c) SkyBench-NG contributors.
#include "core/streaming.h"

#include <algorithm>
#include <cstring>

#include "data/dataset.h"

namespace sky {
namespace {

/// Window size at which an insert switches from the per-member Compare
/// loop to the batched tile kernels. Below this the broadcast setup and
/// mirror bookkeeping cost more than they save.
constexpr size_t kStreamBatchMin = 64;

}  // namespace

StreamingSkyline::StreamingSkyline(int dims, bool use_simd)
    : stride_(Dataset::StrideFor(dims)),
      dom_(dims, stride_, use_simd) {
  probe_.Reset(dims, 1);
}

void StreamingSkyline::EnsureCapacity(size_t need) {
  if (need <= capacity_) return;
  size_t new_cap = capacity_ == 0 ? 64 : capacity_;
  while (new_cap < need) new_cap *= 2;
  AlignedBuffer<Value> grown(new_cap * static_cast<size_t>(stride_));
  if (count_ > 0) {
    std::memcpy(grown.data(), rows_.data(),
                sizeof(Value) * count_ * static_cast<size_t>(stride_));
  }
  rows_ = std::move(grown);
  capacity_ = new_cap;
  RebuildTiles();
}

void StreamingSkyline::RebuildTiles() {
  tiles_.Reset(dom_.dims(), capacity_);
  for (size_t i = 0; i < count_; ++i) tiles_.PushRow(Row(i));
  for (size_t i = 0; i < count_; ++i) {
    if (dead_[i]) tiles_.PadLane(i);
  }
}

bool StreamingSkyline::Insert(std::span<const Value> point, PointId id) {
  SKY_CHECK(point.size() == static_cast<size_t>(dom_.dims()));
  ++inserted_;
  if (count_ == capacity_) {
    // Grow: compaction first (may free slots), then doubling.
    CompactIfNeeded();
    EnsureCapacity(count_ + 1);
  }
  // Stage the candidate into a padded scratch row (append slot).
  Value* candidate = MutableRow(count_);
  std::memset(candidate, 0, sizeof(Value) * static_cast<size_t>(stride_));
  std::memcpy(candidate, point.data(), sizeof(Value) * point.size());

  if (count_ >= kStreamBatchMin) {
    // Batched path. The window is an antichain, so a dominated candidate
    // dominates no member and the reject test can run first. Tombstoned
    // lanes are padded inert in the mirror, so both sweeps skip them for
    // free.
    if (dom_.DominatedByAny(candidate, tiles_, count_, &dts_)) return false;
    probe_.Clear();
    probe_.PushRow(candidate);
    dead_before_.assign(dead_.begin(), dead_.end());
    const size_t evicted =
        dom_.FilterTile(rows_.data(), count_, probe_, dead_.data(), &dts_);
    if (evicted > 0) {
      live_ -= evicted;
      for (size_t i = 0; i < count_; ++i) {
        if (dead_[i] != dead_before_[i]) tiles_.PadLane(i);
      }
    }
  } else {
    // One pass: drop out if dominated; tombstone members the candidate
    // dominates (a member cannot both dominate and be dominated).
    for (size_t i = 0; i < count_; ++i) {
      if (dead_[i]) continue;
      ++dts_;
      const Relation rel = dom_.Compare(Row(i), candidate);
      if (rel == Relation::kLeftDominates) return false;
      if (rel == Relation::kRightDominates) {
        dead_[i] = 1;
        --live_;
        tiles_.PadLane(i);
      }
    }
  }
  ids_.push_back(id);
  dead_.push_back(0);
  tiles_.PushRow(candidate);
  ++count_;
  ++live_;
  CompactIfNeeded();
  return true;
}

void StreamingSkyline::Seed(const Dataset& data,
                            std::span<const PointId> members) {
  SKY_CHECK(count_ == 0);
  if (members.empty()) return;
  EnsureCapacity(members.size());
  for (size_t k = 0; k < members.size(); ++k) {
    Value* dst = MutableRow(k);
    std::memset(dst, 0, sizeof(Value) * static_cast<size_t>(stride_));
    std::memcpy(dst, data.Row(members[k]),
                sizeof(Value) * static_cast<size_t>(dom_.dims()));
  }
  ids_.assign(members.begin(), members.end());
  dead_.assign(members.size(), 0);
  count_ = live_ = members.size();
  RebuildTiles();
}

bool StreamingSkyline::Remove(PointId id) {
  for (size_t i = 0; i < count_; ++i) {
    if (!dead_[i] && ids_[i] == id) {
      dead_[i] = 1;
      --live_;
      tiles_.PadLane(i);
      CompactIfNeeded();
      return true;
    }
  }
  return false;
}

void StreamingSkyline::CompactIfNeeded() {
  if (count_ < 64 || live_ * 2 > count_) return;
  size_t write = 0;
  for (size_t i = 0; i < count_; ++i) {
    if (dead_[i]) continue;
    if (write != i) {
      std::memcpy(MutableRow(write), Row(i),
                  sizeof(Value) * static_cast<size_t>(stride_));
      ids_[write] = ids_[i];
    }
    ++write;
  }
  count_ = write;
  ids_.resize(write);
  dead_.assign(write, 0);
  RebuildTiles();
}

std::vector<PointId> StreamingSkyline::Ids() const {
  std::vector<PointId> out;
  out.reserve(live_);
  for (size_t i = 0; i < count_; ++i) {
    if (!dead_[i]) out.push_back(ids_[i]);
  }
  return out;
}

std::vector<Value> StreamingSkyline::Rows() const {
  std::vector<Value> out;
  out.reserve(live_ * static_cast<size_t>(dom_.dims()));
  for (size_t i = 0; i < count_; ++i) {
    if (dead_[i]) continue;
    const Value* r = Row(i);
    out.insert(out.end(), r, r + dom_.dims());
  }
  return out;
}

}  // namespace sky
