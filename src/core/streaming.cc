// Copyright (c) SkyBench-NG contributors.
#include "core/streaming.h"

#include <cstring>

#include "data/dataset.h"

namespace sky {

StreamingSkyline::StreamingSkyline(int dims, bool use_simd)
    : stride_(Dataset::StrideFor(dims)),
      dom_(dims, stride_, use_simd) {}

bool StreamingSkyline::Insert(std::span<const Value> point, PointId id) {
  SKY_CHECK(point.size() == static_cast<size_t>(dom_.dims()));
  ++inserted_;
  // Stage the candidate into a padded scratch row (append slot).
  if (count_ == capacity_) {
    // Grow: compaction first (may free slots), then doubling.
    CompactIfNeeded();
    if (count_ == capacity_) {
      const size_t new_cap = capacity_ == 0 ? 64 : capacity_ * 2;
      AlignedBuffer<Value> grown(new_cap * static_cast<size_t>(stride_));
      if (count_ > 0) {
        std::memcpy(grown.data(), rows_.data(),
                    sizeof(Value) * count_ * static_cast<size_t>(stride_));
      }
      rows_ = std::move(grown);
      capacity_ = new_cap;
    }
  }
  Value* candidate = MutableRow(count_);
  std::memset(candidate, 0, sizeof(Value) * static_cast<size_t>(stride_));
  std::memcpy(candidate, point.data(), sizeof(Value) * point.size());

  // One pass: drop out if dominated; tombstone members the candidate
  // dominates (a member cannot both dominate and be dominated).
  for (size_t i = 0; i < count_; ++i) {
    if (dead_.size() > i && dead_[i]) continue;
    ++dts_;
    const Relation rel = dom_.Compare(Row(i), candidate);
    if (rel == Relation::kLeftDominates) return false;
    if (rel == Relation::kRightDominates) {
      dead_[i] = 1;
      --live_;
    }
  }
  ids_.push_back(id);
  dead_.push_back(0);
  ++count_;
  ++live_;
  CompactIfNeeded();
  return true;
}

void StreamingSkyline::CompactIfNeeded() {
  if (count_ < 64 || live_ * 2 > count_) return;
  size_t write = 0;
  for (size_t i = 0; i < count_; ++i) {
    if (dead_[i]) continue;
    if (write != i) {
      std::memcpy(MutableRow(write), Row(i),
                  sizeof(Value) * static_cast<size_t>(stride_));
      ids_[write] = ids_[i];
    }
    ++write;
  }
  count_ = write;
  ids_.resize(write);
  dead_.assign(write, 0);
}

std::vector<PointId> StreamingSkyline::Ids() const {
  std::vector<PointId> out;
  out.reserve(live_);
  for (size_t i = 0; i < count_; ++i) {
    if (!dead_[i]) out.push_back(ids_[i]);
  }
  return out;
}

std::vector<Value> StreamingSkyline::Rows() const {
  std::vector<Value> out;
  out.reserve(live_ * static_cast<size_t>(dom_.dims()));
  for (size_t i = 0; i < count_; ++i) {
    if (dead_[i]) continue;
    const Value* r = Row(i);
    out.insert(out.end(), r, r + dom_.dims());
  }
  return out;
}

}  // namespace sky
