// Copyright (c) SkyBench-NG contributors.
// Hybrid (paper §VI): Q-Flow's block flow of control combined with
// point-based partitioning — pre-filter, pivot partitioning, composite
// (level, mask, L1) sort, the M(S) structure for Phase I, and the
// three-loop decomposition of Phase II.
#ifndef SKY_CORE_HYBRID_H_
#define SKY_CORE_HYBRID_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

/// Compute SKY(data) with Hybrid. Honors opts.threads, opts.alpha,
/// opts.pivot, opts.prefilter_beta, opts.use_simd, opts.count_dts and
/// opts.progressive.
Result HybridCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_CORE_HYBRID_H_
