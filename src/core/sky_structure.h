// Copyright (c) SkyBench-NG contributors.
// The Hybrid skyline data structure M(S) (paper §VI-B, Fig. 3): the global
// skyline stored as a contiguous, insertion-ordered array of points plus a
// flat vector of (mask, start) pairs — one per non-empty level-1 partition
// — terminated by a sentinel. Each partition's first point (the one with
// smallest L1 in the partition, by the global sort order) acts as its
// level-2 pivot; later members store their mask *relative to that pivot*.
#ifndef SKY_CORE_SKY_STRUCTURE_H_
#define SKY_CORE_SKY_STRUCTURE_H_

#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/stats.h"
#include "common/types.h"
#include "data/working_set.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"

namespace sky {

class SkyStructure {
 public:
  /// `capacity` bounds the number of skyline points ever appended (the
  /// caller passes n; the skyline cannot exceed the input).
  SkyStructure(int dims, int stride, size_t capacity);

  size_t size() const { return count_; }
  int dims() const { return dims_; }

  const Value* Row(size_t i) const {
    SKY_DCHECK(i < count_);
    return rows_.data() + i * static_cast<size_t>(stride_);
  }

  const std::vector<PointId>& ids() const { return ids_; }

  /// Original ids of the points appended by the most recent Append call
  /// (for progressive reporting).
  std::span<const PointId> LastAppended() const {
    return {ids_.data() + last_append_begin_, count_ - last_append_begin_};
  }

  /// updateS&M (paper Algorithm 2): append the compressed block
  /// ws[begin, begin+len) — all confirmed skyline points carrying level-1
  /// masks in sorted (level, mask, L1) order — and maintain the two-level
  /// partition map. Points opening a new partition become its level-2
  /// pivot and keep their level-1 mask; the rest are re-partitioned
  /// against their pivot.
  void Append(const WorkingSet& ws, size_t begin, size_t len,
              const DomCtx& dom);

  /// Remove every stored point whose original id appears in `drop`,
  /// compacting rows/ids/masks and the SoA tile mirror in place and
  /// repairing the two-level partition map: emptied partitions vanish
  /// and a partition whose pivot was removed promotes its first survivor
  /// (whose stored mask becomes the partition's level-1 mask; the other
  /// survivors' level-2 masks are recomputed against the new pivot).
  /// Afterwards LastAppended() is empty — a removal-triggered repack
  /// shifts indices, so the previous append span must not be read.
  /// Returns the number of points removed.
  size_t Remove(std::span<const PointId> drop, const DomCtx& dom);

  /// compareToSky (paper Algorithm 3): true iff some stored skyline point
  /// dominates q (which carries level-1 mask `qmask`). `dts`/`skips`
  /// accumulate dominance tests and mask-filter skips when non-null.
  bool Dominated(const Value* q, Mask qmask, const DomCtx& dom,
                 uint64_t* dts, uint64_t* skips) const;

  /// Number of non-empty level-1 partitions (excludes the sentinel).
  size_t PartitionCount() const {
    return partitions_.empty() ? 0 : partitions_.size() - 1;
  }

  /// Validation hook for tests: checks partition contiguity, pivot
  /// positions, and sentinel placement. Aborts on violation.
  void CheckInvariants() const;

 private:
  struct PartEntry {
    Mask mask;       // level-1 mask of every member of this partition
    uint32_t start;  // index of the partition's first point (its pivot)
  };

  int dims_;
  int stride_;
  size_t count_ = 0;
  size_t last_append_begin_ = 0;
  AlignedBuffer<Value> rows_;
  /// Transposed SoA mirror of rows_ in global tile coordinates (tile t =
  /// points [8t, 8t+8)), maintained by Append for the batched window
  /// scan. Partition ranges map onto it with lane masks, so a tile may
  /// straddle partitions.
  TileBlock tiles_;
  std::vector<PointId> ids_;
  /// For a partition pivot: its level-1 mask. For any other point: its
  /// level-2 mask relative to the partition pivot.
  std::vector<Mask> masks_;
  /// Non-empty partitions in append order + sentinel (FullMask+1, count).
  std::vector<PartEntry> partitions_;
};

}  // namespace sky

#endif  // SKY_CORE_SKY_STRUCTURE_H_
