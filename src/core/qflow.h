// Copyright (c) SkyBench-NG contributors.
// Q-Flow (paper §V, Algorithm 1): the high-throughput block-processing
// flow of control with a globally shared skyline. Hybrid (§VI) layers
// point-based partitioning on top of this flow.
#ifndef SKY_CORE_QFLOW_H_
#define SKY_CORE_QFLOW_H_

#include "core/options.h"
#include "data/dataset.h"

namespace sky {

/// Compute SKY(data) with Q-Flow. Honors opts.threads, opts.alpha,
/// opts.use_simd, opts.count_dts and opts.progressive.
Result QFlowCompute(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_CORE_QFLOW_H_
