// Copyright (c) SkyBench-NG contributors.
// Incrementally maintained skyline under point insertions and removals —
// a natural extension of the paper's global-shared-skyline paradigm for
// online feeds (the α-block flow processes a static file; this class
// handles one-at-a-time arrivals), and the per-shard repair primitive
// behind SkylineEngine::InsertPoints / DeletePoints. Not part of the
// paper's evaluation.
#ifndef SKY_CORE_STREAMING_H_
#define SKY_CORE_STREAMING_H_

#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"

namespace sky {

class Dataset;

/// BNL-style dynamic skyline window over padded rows. Insertion is
/// O(|skyline| * d/8) with the SIMD kernels; dominated members are
/// tombstoned and compacted amortizedly. Coincident duplicates of skyline
/// members are retained, matching the batch algorithms' "coincident
/// points never dominate" convention. A SoA tile mirror of the window
/// (tombstoned slots padded inert) lets large windows scan through the
/// batched DominatedByAny / FilterTile kernels instead of one
/// Compare per member.
class StreamingSkyline {
 public:
  explicit StreamingSkyline(int dims, bool use_simd = true);

  /// Insert a point (dims values; the class pads internally). Returns
  /// true iff the point is in the current skyline (i.e. was not
  /// dominated). May evict previously inserted members it dominates.
  bool Insert(std::span<const Value> point, PointId id);

  /// Bulk-load a known antichain with no dominance scans: member k is
  /// data.Row(members[k]), inserted under id members[k]. The window must
  /// be empty. Callers are trusted that no member dominates another —
  /// this is the seed step of shard-skyline repair, where the members
  /// are an already-computed skyline.
  void Seed(const Dataset& data, std::span<const PointId> members);

  /// Tombstone the live member carrying `id` with no dominance
  /// semantics — the caller decides what, if anything, to re-promote
  /// (deletion repair re-inserts the candidates the removed member had
  /// been suppressing). Returns false if no live member carries the id.
  bool Remove(PointId id);

  /// Number of current skyline members.
  size_t size() const { return live_; }

  int dims() const { return dom_.dims(); }

  /// Ids of the current skyline members (insertion order).
  std::vector<PointId> Ids() const;

  /// Copy the current skyline members' coordinates (row major, dims
  /// values per member, same order as Ids()).
  std::vector<Value> Rows() const;

  /// Total points offered via Insert.
  uint64_t inserted() const { return inserted_; }
  /// Dominance tests executed so far.
  uint64_t dominance_tests() const { return dts_; }

 private:
  void EnsureCapacity(size_t need);
  void CompactIfNeeded();
  /// Rebuild the SoA mirror from rows_/dead_ (after growth or
  /// compaction, when slot indices move).
  void RebuildTiles();
  const Value* Row(size_t i) const {
    return rows_.data() + i * static_cast<size_t>(stride_);
  }
  Value* MutableRow(size_t i) {
    return rows_.data() + i * static_cast<size_t>(stride_);
  }

  int stride_;
  DomCtx dom_;
  AlignedBuffer<Value> rows_;   // capacity_ * stride_
  TileBlock tiles_;             // SoA mirror; lane i == slot i, dead padded
  TileBlock probe_;             // 1-point scratch tile (eviction sweeps)
  std::vector<PointId> ids_;
  std::vector<uint8_t> dead_;
  std::vector<uint8_t> dead_before_;  // scratch: dead_ snapshot per insert
  size_t count_ = 0;     // slots in use (incl. tombstones)
  size_t live_ = 0;      // live members
  size_t capacity_ = 0;  // allocated rows
  uint64_t inserted_ = 0;
  uint64_t dts_ = 0;
};

}  // namespace sky

#endif  // SKY_CORE_STREAMING_H_
