// Copyright (c) SkyBench-NG contributors.
// Public options and result types for skyline computation.
#ifndef SKY_CORE_OPTIONS_H_
#define SKY_CORE_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/stats.h"
#include "common/types.h"
#include "data/partition.h"

namespace sky {

class Executor;

/// Every algorithm implemented by the library. Q-Flow and Hybrid are the
/// paper's contribution; the rest are the baselines of its evaluation plus
/// the classic sequential algorithms the benchmark suite ships. Each
/// concrete value owns a descriptor row in core/algorithm_registry.h.
enum class Algorithm : uint8_t {
  kBnl,        ///< block-nested-loop [Börzsönyi et al. 2001] — test oracle
  kSfs,        ///< sort-filter skyline [Chomicki et al. 2003]
  kLess,       ///< linear elimination-sort skyline [Godfrey et al. 2007]
  kSalsa,      ///< sort-and-limit skyline [Bartolini et al. 2008]
  kSSkyline,   ///< in-place nested loop used inside PSkyline [Im/Park 2011]
  kPSkyline,   ///< divide-and-conquer multicore [Im/Park 2011]
  kAPSkyline,  ///< angle-based divide-and-conquer multicore [Liknes 2014]
  kPsfs,       ///< parallel SFS, the naive baseline of [Im/Park 2011]
  kQFlow,      ///< paper §V: block flow with global shared skyline
  kHybrid,     ///< paper §VI: Q-Flow + point-based partitioning + M(S)
  kBSkyTree,   ///< sequential state of the art [Lee/Hwang 2014]
  kBSkyTreeS,  ///< BSkyTree-S: one pivot, no recursion/tree [Lee/Hwang 2014]
  kOsp,        ///< OSP: recursive partitioning, random pivot [Zhang 2009]
  kPBSkyTree,  ///< paper Appendix A: parallelized BSkyTree
  kZonemap,    ///< BBS-style best-first traversal over the block zonemap
               ///< index (index/zonemap.h, core/zonemap_skyline.h)
  kAuto,       ///< cost-model selection from the dataset/shard sketch
               ///< (query/cost_model.h); resolved before dispatch
};

const char* AlgorithmName(Algorithm algo);
/// Parse a CLI spelling or display name (case and '-' insensitive),
/// including "auto". Throws std::invalid_argument listing every valid
/// name on junk.
Algorithm ParseAlgorithm(const std::string& name);

/// True for algorithms that use more than one thread. kAuto counts as
/// parallel: it may resolve to a parallel algorithm.
bool IsParallelAlgorithm(Algorithm algo);

/// Invoked after each completed block with the original ids of points just
/// confirmed as skyline members (progressive reporting, paper §I).
using ProgressiveCallback = std::function<void(std::span<const PointId>)>;

struct Options {
  Algorithm algorithm = Algorithm::kHybrid;

  /// Total parallelism (including the calling thread). 0 = hardware
  /// concurrency. Sequential algorithms ignore this. When `executor` is
  /// set this is a concurrency *limit* (TaskGroup cap) on that shared
  /// scheduler rather than a thread count to spawn.
  int threads = 0;

  /// Optional shared work-stealing scheduler (parallel/executor.h), not
  /// owned. When set, parallel algorithms run their phase loops as capped
  /// task groups on these borrowed workers instead of constructing a
  /// private pool — the engine sets this so concurrent queries and
  /// mutations share one bounded worker set. Null = standalone pool (the
  /// CLI/library one-shot fallback).
  Executor* executor = nullptr;

  /// Block size α. 0 = per-algorithm default from the paper's Fig. 7/8
  /// study: 2^13 for Q-Flow/PSFS, 2^10 for Hybrid.
  size_t alpha = 0;

  /// Pivot selection policy for Hybrid (paper default: median).
  PivotPolicy pivot = PivotPolicy::kMedian;

  /// Size of each per-thread pre-filter priority queue (paper: β = 8).
  /// 0 disables the pre-filter.
  int prefilter_beta = 8;

  /// Use the AVX2 dominance kernels when the CPU supports them.
  bool use_simd = true;

  /// Route the hot window scans through the batched SoA tile kernels
  /// (dominance/batch.h): one candidate vs 8 window points per compare,
  /// cache-blocked over the window. Honored by Q-Flow, Hybrid (M(S) and
  /// peer scans) and the sharded merge; off restores the one-vs-one
  /// paths for ablation.
  bool use_batch = true;

  /// Collect dominance-test counters (small overhead).
  bool count_dts = false;

  /// Record a per-query trace of the serving pipeline — plan, view build
  /// vs. cache hit, per-shard execution, merge, cache put — attached to
  /// QueryResult::trace (obs/trace.h). Honored by the query-engine paths
  /// (SkylineEngine::Execute, RunQuery, RunShardedQuery); plain
  /// ComputeSkyline calls ignore it.
  bool trace = false;

  /// Seed for randomized choices (kRandom pivot).
  uint64_t seed = 42;

  /// Rows per zonemap block for Algorithm::kZonemap (index/zonemap.h).
  /// 0 = ZoneMapIndex::kDefaultBlockRows. Other algorithms ignore it.
  size_t block_rows = 0;

  /// Optional progressive result callback. Honored by the algorithms
  /// whose registry descriptor sets `progressive` (Q-Flow, Hybrid,
  /// SFS, SaLSa, LESS, PSFS, BSkyTree-S); others ignore it. kAuto
  /// restricts selection to these when a callback is present.
  ProgressiveCallback progressive;

  /// Wall-clock budget for one computation, in milliseconds; 0 = none.
  /// ComputeSkyline arms a CancelToken from it (chained to `cancel`
  /// below) and the long-running loops poll at block / tile boundaries,
  /// so a run returns within the budget plus one checkpoint granule —
  /// by throwing CancelledError(kDeadlineExceeded). The engine converts
  /// that to QueryResult::status (or a `truncated` partial result on
  /// progressive-capable paths) instead of letting it escape.
  double deadline_ms = 0;

  /// Optional cooperative cancellation token (not owned; null = never
  /// cancelled). Polled at the same checkpoints as the deadline. The
  /// engine threads its own per-query token through here.
  const CancelToken* cancel = nullptr;

  /// Resolved α for an algorithm (applies the paper defaults). kAuto
  /// resolves to a concrete algorithm before α matters; asking anyway
  /// returns the Fig. 7 default.
  size_t AlphaFor(Algorithm algo) const;
  /// Resolved thread count.
  int ResolvedThreads() const;
};

/// A skyline result: original Dataset row indices of all skyline members
/// (order unspecified; duplicates of skyline points are all included), and
/// the run's statistics.
struct Result {
  std::vector<PointId> skyline;
  RunStats stats;
};

}  // namespace sky

#endif  // SKY_CORE_OPTIONS_H_
