// Copyright (c) SkyBench-NG contributors.
#include "core/algorithm_registry.h"

#include <stdexcept>

#include "baselines/apskyline.h"
#include "baselines/bnl.h"
#include "baselines/bskytree.h"
#include "baselines/bskytree_s.h"
#include "baselines/less.h"
#include "baselines/pbskytree.h"
#include "baselines/psfs.h"
#include "baselines/pskyline.h"
#include "baselines/salsa.h"
#include "baselines/sfs.h"
#include "baselines/sskyline.h"
#include "core/hybrid.h"
#include "core/qflow.h"
#include "core/zonemap_skyline.h"

namespace sky {
namespace {

/// OSP = BSkyTree's recursion with a random skyline pivot [Zhang 2009].
Result OspCompute(const Dataset& data, const Options& opts) {
  Options osp = opts;
  osp.pivot = PivotPolicy::kRandom;
  return BSkyTreeCompute(data, osp);
}

// Cost coefficients are relative work units (~ns), calibrated against
// measured runs (bench/ablation_autoselect) to reproduce the paper's
// Fig. 5/6 crossover structure. The measured shape they encode:
//   - PSkyline wins small-skyline instances (its SSkyline core is a
//     near-linear scan, while BSkyTree pays a high per-point toll for
//     L1 sorting plus pivot/tree construction) but its
//     divide-and-conquer merges are quadratic in the skyline size
//     (per_sky2), so dense anticorrelated skylines sink it;
//   - Q-Flow is the low-d champion (one sorted α-block is close to an
//     optimal in-place scan — cheapest per-comparison cost at d=4 —
//     but its unmasked DTs decay fastest with d, growth 1.30);
//   - BSkyTree wins the startup-bound and small/mid comparison-bound
//     band past d≈5 (mask pruning, no pool or partitioning setup);
//   - Hybrid owns scale: its β-prefilter plus point-based partitioning
//     cut dominance work *algorithmically* (lowest flat per-cmp cost,
//     measurably faster than BSkyTree even at t=1 once n·m is large),
//     at the price of the family's biggest fixed startup — and its
//     high parallel fraction stretches the lead as threads arrive.
// Q-Flow's and Hybrid's per_cmp coefficients were re-calibrated for the
// batched tile kernels (dominance/batch.h): their window scans now run
// 8 points per compare, roughly halving effective per-comparison cost
// versus the one-vs-one AVX2 measurements the original constants
// encoded, and widening their lead over the non-batched candidates
// (PSkyline/BSkyTree keep one-vs-one inner loops and their constants).
// Only auto-candidates need faithful coefficients; the rest carry
// rough values for completeness.
constexpr AlgorithmDescriptor kTable[] = {
    {Algorithm::kBnl, "BNL", "bnl", &BnlCompute,
     /*parallel=*/false, /*progressive=*/false, /*skyband=*/false,
     /*auto_candidate=*/false,
     {500, 0, 2, 1.60, 1.00, 0.0, 0.0}},
    {Algorithm::kSfs, "SFS", "sfs", &SfsCompute,
     false, true, false, false,
     {1'000, 0, 10, 1.10, 1.00, 0.0, 0.0}},
    {Algorithm::kLess, "LESS", "less", &LessCompute,
     false, true, false, false,
     {1'000, 0, 9, 1.00, 1.00, 0.0, 0.0}},
    {Algorithm::kSalsa, "SaLSa", "salsa", &SalsaCompute,
     false, true, false, false,
     {1'000, 0, 10, 1.00, 1.00, 0.0, 0.0}},
    {Algorithm::kSSkyline, "SSkyline", "sskyline", &SSkylineCompute,
     false, false, false, false,
     {500, 0, 2, 1.30, 1.00, 0.0, 0.0}},
    {Algorithm::kPSkyline, "PSkyline", "pskyline", &PSkylineCompute,
     true, false, false, true,
     {15'000, 12'000, 2, 0.16, 1.35, 3.0, 0.88}},
    {Algorithm::kAPSkyline, "APSkyline", "apskyline", &APSkylineCompute,
     true, false, false, false,
     {10'000, 25'000, 3, 0.20, 1.30, 2.5, 0.88}},
    {Algorithm::kPsfs, "PSFS", "psfs", &PsfsCompute,
     true, true, false, false,
     {8'000, 20'000, 8, 1.10, 1.00, 0.5, 0.85}},
    {Algorithm::kQFlow, "Q-Flow", "qflow", &QFlowCompute,
     true, true, true, true,
     {10'000, 25'000, 9, 0.11, 1.30, 0.2, 0.93}},
    {Algorithm::kHybrid, "Hybrid", "hybrid", &HybridCompute,
     true, true, false, true,
     {500'000, 150'000, 8, 0.11, 1.10, 0.05, 0.95}},
    {Algorithm::kBSkyTree, "BSkyTree", "bskytree", &BSkyTreeCompute,
     false, false, false, true,
     {2'000, 0, 20, 0.25, 1.10, 0.05, 0.0}},
    {Algorithm::kBSkyTreeS, "BSkyTree-S", "bskytree-s", &BSkyTreeSCompute,
     false, true, false, false,
     {2'000, 0, 16, 0.45, 1.08, 0.05, 0.0}},
    {Algorithm::kOsp, "OSP", "osp", &OspCompute,
     false, false, false, false,
     {2'000, 0, 18, 0.40, 1.10, 0.05, 0.0}},
    {Algorithm::kPBSkyTree, "PBSkyTree", "pbskytree", &PBSkyTreeCompute,
     true, false, false, false,
     {25'000, 80'000, 12, 0.40, 1.18, 0.3, 0.90}},
    // Zonemap is the only candidate whose cost depends on data layout
    // (blocks pruned), which the static model cannot see. ChooseAlgorithm
    // therefore only considers it when SelectionContext::zonemap_direct
    // says the engine would run it on raw rows against a constraint box —
    // exactly where its sub-shard AABB pruning pays — and charges every
    // other candidate the view materialization the direct path skips.
    // per_point covers the rank-sum cut when the index must be built.
    {Algorithm::kZonemap, "Zonemap", "zonemap", &ZonemapSkylineCompute,
     false, true, false, true,
     {4'000, 0, 7, 0.20, 1.12, 0.05, 0.0}},
};

}  // namespace

std::span<const AlgorithmDescriptor> AlgorithmTable() { return kTable; }

const AlgorithmDescriptor& GetAlgorithmDescriptor(Algorithm algorithm) {
  for (const AlgorithmDescriptor& desc : kTable) {
    if (desc.algorithm == algorithm) return desc;
  }
  throw std::invalid_argument(
      "no algorithm descriptor: an unresolved kAuto request (or a corrupt "
      "Algorithm value) reached dispatch");
}

std::string AlgorithmNameList() {
  std::string list;
  for (const AlgorithmDescriptor& desc : kTable) {
    list += desc.parse_name;
    list += ", ";
  }
  list += "auto";
  return list;
}

}  // namespace sky
