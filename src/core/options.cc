// Copyright (c) SkyBench-NG contributors.
#include "core/options.h"

#include <stdexcept>

#include "parallel/thread_pool.h"

namespace sky {

const char* AlgorithmName(Algorithm algo) {
  switch (algo) {
    case Algorithm::kBnl:
      return "BNL";
    case Algorithm::kSfs:
      return "SFS";
    case Algorithm::kLess:
      return "LESS";
    case Algorithm::kSalsa:
      return "SaLSa";
    case Algorithm::kSSkyline:
      return "SSkyline";
    case Algorithm::kPSkyline:
      return "PSkyline";
    case Algorithm::kAPSkyline:
      return "APSkyline";
    case Algorithm::kPsfs:
      return "PSFS";
    case Algorithm::kQFlow:
      return "Q-Flow";
    case Algorithm::kHybrid:
      return "Hybrid";
    case Algorithm::kBSkyTree:
      return "BSkyTree";
    case Algorithm::kBSkyTreeS:
      return "BSkyTree-S";
    case Algorithm::kOsp:
      return "OSP";
    case Algorithm::kPBSkyTree:
      return "PBSkyTree";
  }
  return "?";
}

Algorithm ParseAlgorithm(const std::string& name) {
  if (name == "bnl" || name == "BNL") return Algorithm::kBnl;
  if (name == "sfs" || name == "SFS") return Algorithm::kSfs;
  if (name == "less" || name == "LESS") return Algorithm::kLess;
  if (name == "salsa" || name == "SaLSa") return Algorithm::kSalsa;
  if (name == "sskyline" || name == "SSkyline") return Algorithm::kSSkyline;
  if (name == "pskyline" || name == "PSkyline") return Algorithm::kPSkyline;
  if (name == "apskyline" || name == "APSkyline")
    return Algorithm::kAPSkyline;
  if (name == "psfs" || name == "PSFS") return Algorithm::kPsfs;
  if (name == "qflow" || name == "Q-Flow" || name == "q-flow")
    return Algorithm::kQFlow;
  if (name == "hybrid" || name == "Hybrid") return Algorithm::kHybrid;
  if (name == "bskytree" || name == "BSkyTree") return Algorithm::kBSkyTree;
  if (name == "bskytree-s" || name == "bskytrees" || name == "BSkyTree-S")
    return Algorithm::kBSkyTreeS;
  if (name == "osp" || name == "OSP") return Algorithm::kOsp;
  if (name == "pbskytree" || name == "PBSkyTree")
    return Algorithm::kPBSkyTree;
  throw std::invalid_argument("unknown algorithm: " + name);
}

bool IsParallelAlgorithm(Algorithm algo) {
  switch (algo) {
    case Algorithm::kAPSkyline:
    case Algorithm::kPSkyline:
    case Algorithm::kPsfs:
    case Algorithm::kQFlow:
    case Algorithm::kHybrid:
    case Algorithm::kPBSkyTree:
      return true;
    default:
      return false;
  }
}

size_t Options::AlphaFor(Algorithm algo) const {
  if (alpha != 0) return alpha;
  switch (algo) {
    case Algorithm::kHybrid:
      return size_t{1} << 10;  // paper Fig. 8
    default:
      return size_t{1} << 13;  // paper Fig. 7
  }
}

int Options::ResolvedThreads() const {
  return threads > 0 ? threads : ThreadPool::DefaultThreads();
}

}  // namespace sky
