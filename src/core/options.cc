// Copyright (c) SkyBench-NG contributors.
#include "core/options.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/algorithm_registry.h"
#include "parallel/thread_pool.h"

namespace sky {
namespace {

/// Case- and dash-insensitive normal form, so "Q-Flow", "qflow" and
/// "BSkyTree-S"/"bskytrees" all parse ("auto" included).
std::string NormalizeAlgorithmName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '-') continue;
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

const char* AlgorithmName(Algorithm algo) {
  if (algo == Algorithm::kAuto) return "auto";
  for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
    if (desc.algorithm == algo) return desc.name;
  }
  return "?";
}

Algorithm ParseAlgorithm(const std::string& name) {
  const std::string norm = NormalizeAlgorithmName(name);
  if (norm == "auto") return Algorithm::kAuto;
  for (const AlgorithmDescriptor& desc : AlgorithmTable()) {
    if (norm == NormalizeAlgorithmName(desc.parse_name) ||
        norm == NormalizeAlgorithmName(desc.name)) {
      return desc.algorithm;
    }
  }
  throw std::invalid_argument("unknown algorithm '" + name +
                              "' (valid: " + AlgorithmNameList() + ")");
}

bool IsParallelAlgorithm(Algorithm algo) {
  if (algo == Algorithm::kAuto) return true;  // may resolve to parallel
  return GetAlgorithmDescriptor(algo).parallel;
}

size_t Options::AlphaFor(Algorithm algo) const {
  if (alpha != 0) return alpha;
  switch (algo) {
    case Algorithm::kHybrid:
      return size_t{1} << 10;  // paper Fig. 8
    default:
      return size_t{1} << 13;  // paper Fig. 7 (kAuto: resolved upstream)
  }
}

int Options::ResolvedThreads() const {
  return threads > 0 ? threads : ThreadPool::DefaultThreads();
}

}  // namespace sky
