// Copyright (c) SkyBench-NG contributors.
#include "core/skyline.h"

#include <algorithm>

#include "baselines/bnl.h"
#include "core/algorithm_registry.h"
#include "query/cost_model.h"

namespace sky {

Result ComputeSkyline(const Dataset& data, const Options& opts) {
  Options run = opts;
  if (run.algorithm == Algorithm::kAuto) {
    // Direct calls with kAuto sketch the input on the fly (the one
    // deliberate core -> query arrow; the serving layer resolves from
    // its registration-time sketches long before reaching here).
    run.algorithm = ChooseAlgorithmForDataset(data, opts);
  }
  // Arm the deadline here, at the one dispatch point every direct call
  // funnels through, and chain it to any caller-provided token. The
  // algorithms poll `run.cancel` at block / tile boundaries and unwind
  // with CancelledError(kDeadlineExceeded); library callers see that
  // exception, the engine converts it to QueryResult::status.
  CancelToken deadline(run.deadline_ms);
  if (run.deadline_ms > 0) {
    deadline.set_parent(run.cancel);
    run.cancel = &deadline;
    run.deadline_ms = 0;
  }
  return GetAlgorithmDescriptor(run.algorithm).compute(data, run);
}

bool VerifySkyline(const Dataset& data,
                   const std::vector<PointId>& candidate) {
  Options ref_opts;
  ref_opts.algorithm = Algorithm::kBnl;
  Result ref = BnlCompute(data, ref_opts);
  std::vector<PointId> a = candidate;
  std::vector<PointId> b = std::move(ref.skyline);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace sky
