// Copyright (c) SkyBench-NG contributors.
#include "core/skyline.h"

#include <algorithm>

#include "baselines/apskyline.h"
#include "baselines/bnl.h"
#include "baselines/bskytree.h"
#include "baselines/bskytree_s.h"
#include "baselines/less.h"
#include "baselines/pbskytree.h"
#include "baselines/psfs.h"
#include "baselines/pskyline.h"
#include "baselines/salsa.h"
#include "baselines/sfs.h"
#include "baselines/sskyline.h"
#include "core/hybrid.h"
#include "core/qflow.h"

namespace sky {

Result ComputeSkyline(const Dataset& data, const Options& opts) {
  switch (opts.algorithm) {
    case Algorithm::kBnl:
      return BnlCompute(data, opts);
    case Algorithm::kSfs:
      return SfsCompute(data, opts);
    case Algorithm::kLess:
      return LessCompute(data, opts);
    case Algorithm::kSalsa:
      return SalsaCompute(data, opts);
    case Algorithm::kSSkyline:
      return SSkylineCompute(data, opts);
    case Algorithm::kPSkyline:
      return PSkylineCompute(data, opts);
    case Algorithm::kAPSkyline:
      return APSkylineCompute(data, opts);
    case Algorithm::kPsfs:
      return PsfsCompute(data, opts);
    case Algorithm::kQFlow:
      return QFlowCompute(data, opts);
    case Algorithm::kHybrid:
      return HybridCompute(data, opts);
    case Algorithm::kBSkyTree:
      return BSkyTreeCompute(data, opts);
    case Algorithm::kBSkyTreeS:
      return BSkyTreeSCompute(data, opts);
    case Algorithm::kOsp: {
      // OSP = BSkyTree's recursion with a random skyline pivot.
      Options osp = opts;
      osp.pivot = PivotPolicy::kRandom;
      return BSkyTreeCompute(data, osp);
    }
    case Algorithm::kPBSkyTree:
      return PBSkyTreeCompute(data, opts);
  }
  return BnlCompute(data, opts);
}

bool VerifySkyline(const Dataset& data,
                   const std::vector<PointId>& candidate) {
  Options ref_opts;
  ref_opts.algorithm = Algorithm::kBnl;
  Result ref = BnlCompute(data, ref_opts);
  std::vector<PointId> a = candidate;
  std::vector<PointId> b = std::move(ref.skyline);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace sky
