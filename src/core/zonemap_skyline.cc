// Copyright (c) SkyBench-NG contributors.
#include "core/zonemap_skyline.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <vector>

#include "common/cancel.h"
#include "common/macros.h"
#include "common/timer.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"

namespace sky {
namespace {

// Heap keys are L1 norms accumulated in dimension order as doubles. For a
// dominating pair p <= q (coordinatewise) every partial sum of p is <= the
// matching partial sum of q because rounded addition is monotone, so a
// dominator never pops *after* its victim — but rounding can collapse the
// strict inequality into a tie. Ties are therefore resolved by popping all
// equal-key entries as one batch: containers first (comparator), then the
// point batch cross-checks its own survivors pairwise (ResolveTieBatch)
// so a dominator that ties with its victim still eliminates it.
double L1Key(const Value* row, int dims) {
  double s = 0.0;
  for (int j = 0; j < dims; ++j) s += static_cast<double>(row[j]);
  return s;
}

enum Kind : uint8_t { kSuper = 0, kBlock = 1, kPoint = 2 };

struct HeapEntry {
  double key;
  Kind kind;
  uint32_t idx;
  // For kPoint: confirmed.size() when pushed. The block visit already
  // checked the point against that prefix, so the pop only probes the
  // suffix of members confirmed while the point sat in the heap.
  uint32_t seen = 0;
};

// Min-heap on key; containers (lower kind) pop before points at equal key
// so every equal-key point is already in the heap when the first one pops.
struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.kind > b.kind;
  }
};

enum class BoxRel { kDisjoint, kInside, kPartial };

/// Relation of an AABB to the (expanded, all-dims) constraint box.
BoxRel ClassifyBox(const Value* lo, const Value* hi, const Value* box_lo,
                   const Value* box_hi, int dims) {
  bool inside = true;
  for (int j = 0; j < dims; ++j) {
    if (lo[j] > box_hi[j] || hi[j] < box_lo[j]) return BoxRel::kDisjoint;
    inside &= lo[j] >= box_lo[j] && hi[j] <= box_hi[j];
  }
  return inside ? BoxRel::kInside : BoxRel::kPartial;
}

/// Finite rows only (a NaN would fail); mirrors MaterializeView's
/// closed-interval predicate with unconstrained dims expanded to +-inf.
bool RowInExpandedBox(const Value* row, const Value* box_lo,
                      const Value* box_hi, int dims) {
  for (int j = 0; j < dims; ++j) {
    if (!(row[j] >= box_lo[j] && row[j] <= box_hi[j])) return false;
  }
  return true;
}

/// Exact MaterializeView predicate for possibly-NaN rows: only constrained
/// dimensions are tested, so a NaN on an unconstrained dimension passes.
bool RowInConstraintBox(const Value* row,
                        std::span<const DimConstraint> constraints) {
  for (const DimConstraint& c : constraints) {
    const Value v = row[c.dim];
    if (!(v >= c.lo && v <= c.hi)) return false;
  }
  return true;
}

}  // namespace

ZonemapRunResult ZonemapSkylineRun(const Dataset& data,
                                   const ZoneMapIndex& index,
                                   std::span<const DimConstraint> constraints,
                                   const Options& opts) {
  ZonemapRunResult r;
  const int dims = data.dims();
  SKY_CHECK(index.dims() == dims && index.rows() == data.count());
  SKY_CHECK(index.stride() == static_cast<size_t>(data.stride()));
  const size_t row_floats = static_cast<size_t>(data.stride());
  WallTimer total;
  WallTimer phase;

  const bool boxed = !constraints.empty();
  std::vector<Value> box_lo(dims, -std::numeric_limits<Value>::infinity());
  std::vector<Value> box_hi(dims, std::numeric_limits<Value>::infinity());
  for (const DimConstraint& c : constraints) {
    SKY_CHECK(c.dim >= 0 && c.dim < dims);
    box_lo[c.dim] = std::max(box_lo[c.dim], c.lo);
    box_hi[c.dim] = std::min(box_hi[c.dim], c.hi);
  }

  DomCtx dom(dims, data.stride(), opts.use_simd, opts.use_batch);
  uint64_t dts = 0;

  // Irregular rows (non-finite coordinates) are outside the min-corner
  // reasoning entirely: resolve their box membership up front. When any
  // survive, confirmed members cannot stream (a -inf or NaN row may
  // dominate finite rows) and a final FilterTile pass folds them in.
  std::vector<uint32_t> extra;
  for (uint32_t row : index.irregular()) {
    if (!boxed || RowInConstraintBox(data.Row(row), constraints)) {
      extra.push_back(row);
    }
  }
  const bool stream = opts.progressive != nullptr && extra.empty();

  // The confirmed tile set grows geometrically: Reset pads the whole
  // capacity, so sizing it to data.count() up front would touch the full
  // dataset's worth of memory before the first block is even visited.
  TileBlock confirmed(dims, std::min<size_t>(data.count(), 1024));
  std::vector<PointId> confirmed_ids;
  std::vector<PointId> chunk;  // pending progressive flush
  const auto confirm = [&](PointId id) {
    if (confirmed.size() == confirmed.capacity()) {
      TileBlock bigger(dims, confirmed.capacity() * 2);
      for (PointId c : confirmed_ids) bigger.PushRow(data.Row(c));
      confirmed = std::move(bigger);
    }
    confirmed.PushRow(data.Row(id));
    confirmed_ids.push_back(id);
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap;
  for (size_t s = 0; s < index.super_count(); ++s) {
    heap.push({L1Key(index.super_lo(s), dims), kSuper,
               static_cast<uint32_t>(s)});
  }
  r.stats.init_seconds = phase.Seconds();
  phase.Restart();

  // Count one dominance-pruned block: box-disjoint parts contribute no
  // matches, fully-inside blocks contribute their size without a scan,
  // partial blocks need a row scan for the exact matched_rows count.
  const auto prune_block = [&](uint32_t b) {
    ++r.blocks_pruned;
    r.pruned_blocks.push_back(b);
    if (!boxed) return;
    const BoxRel rel = ClassifyBox(index.block_lo(b), index.block_hi(b),
                                   box_lo.data(), box_hi.data(), dims);
    if (rel == BoxRel::kDisjoint) return;
    if (rel == BoxRel::kInside) {
      r.matched_rows += index.block_points(b).size();
      return;
    }
    const size_t n = index.block_points(b).size();
    const Value* rows = index.block_row_data(b);
    for (size_t i = 0; i < n; ++i) {
      r.matched_rows += RowInExpandedBox(rows + i * row_floats, box_lo.data(),
                                         box_hi.data(), dims);
    }
  };

  std::vector<Value> scratch;  // AoS staging for the irregular fold
  std::vector<uint8_t> flags;
  struct BatchEntry {
    uint32_t row;
    uint32_t seen;
  };
  std::vector<BatchEntry> batch;  // equal-key point batch
  std::vector<uint32_t> passed;

  while (!heap.empty()) {
    // Deadline checkpoint per heap pop. The traversal is progressive:
    // everything confirmed (and streamed) so far is exact global skyline,
    // so stopping here truncates cleanly.
    CheckCancel(opts.cancel);
    const HeapEntry e = heap.top();
    heap.pop();
    if (e.kind == kSuper) {
      const uint32_t first = index.super_first(e.idx);
      const uint32_t last = index.super_last(e.idx);
      if (boxed && ClassifyBox(index.super_lo(e.idx), index.super_hi(e.idx),
                               box_lo.data(), box_hi.data(), dims) ==
                       BoxRel::kDisjoint) {
        r.blocks_box_skipped += last - first;
        continue;
      }
      if (dom.DominatedByAny(index.super_lo(e.idx), confirmed,
                             confirmed.size(), &dts)) {
        for (uint32_t b = first; b < last; ++b) prune_block(b);
        continue;
      }
      for (uint32_t b = first; b < last; ++b) {
        if (boxed && ClassifyBox(index.block_lo(b), index.block_hi(b),
                                 box_lo.data(), box_hi.data(), dims) ==
                         BoxRel::kDisjoint) {
          ++r.blocks_box_skipped;
          continue;
        }
        heap.push({L1Key(index.block_lo(b), dims), kBlock, b});
      }
      continue;
    }
    if (e.kind == kBlock) {
      // The confirmed set has grown since this block was pushed: one
      // min-corner probe prunes the whole block (a member dominating the
      // min corner strictly dominates every point of the block).
      if (dom.DominatedByAny(index.block_lo(e.idx), confirmed,
                             confirmed.size(), &dts)) {
        prune_block(e.idx);
        continue;
      }
      ++r.blocks_visited;
      const std::span<const uint32_t> points = index.block_points(e.idx);
      const Value* rows = index.block_row_data(e.idx);
      const BoxRel rel =
          boxed ? ClassifyBox(index.block_lo(e.idx), index.block_hi(e.idx),
                              box_lo.data(), box_hi.data(), dims)
                : BoxRel::kInside;
      // Out-of-box rows are pre-flagged so FilterTile skips them and the
      // clustered block feeds the kernel in place — no row copies.
      flags.assign(points.size(), 0);
      size_t in_box = points.size();
      if (rel == BoxRel::kPartial) {
        in_box = 0;
        for (size_t i = 0; i < points.size(); ++i) {
          const bool ok = RowInExpandedBox(rows + i * row_floats,
                                           box_lo.data(), box_hi.data(), dims);
          flags[i] = ok ? 0 : 1;
          in_box += ok;
        }
      }
      if (boxed) r.matched_rows += in_box;
      if (in_box > 0 && !confirmed.empty()) {
        dom.FilterTile(rows, points.size(), confirmed, flags.data(), &dts);
      }
      const uint32_t seen = static_cast<uint32_t>(confirmed.size());
      for (size_t i = 0; i < points.size(); ++i) {
        if (flags[i]) continue;
        heap.push({L1Key(rows + i * row_floats, dims), kPoint, points[i],
                   seen});
      }
      continue;
    }
    // Point pop: drain every point tying on the key (all are already in
    // the heap — containers with this key expanded first), check against
    // the confirmed set, then cross-check survivors within the batch so a
    // dominator whose key rounded onto its victim's still eliminates it.
    batch.clear();
    batch.push_back({e.idx, e.seen});
    while (!heap.empty() && heap.top().key == e.key) {
      SKY_DCHECK(heap.top().kind == kPoint);
      batch.push_back({heap.top().idx, heap.top().seen});
      heap.pop();
    }
    passed.clear();
    for (const BatchEntry& be : batch) {
      // The block visit's FilterTile covered confirmed[0, seen); only the
      // members confirmed since then still need probing.
      if (!dom.DominatedInRange(data.Row(be.row), confirmed, be.seen,
                                &dts)) {
        passed.push_back(be.row);
      }
    }
    for (size_t i = 0; i < passed.size(); ++i) {
      bool member = true;
      for (size_t j = 0; member && j < passed.size(); ++j) {
        if (j == i) continue;
        ++dts;
        member = !dom.Dominates(data.Row(passed[j]), data.Row(passed[i]));
      }
      if (!member) continue;
      confirm(passed[i]);
      if (stream) {
        chunk.push_back(passed[i]);
        if (chunk.size() >= 256) {
          opts.progressive(chunk);
          chunk.clear();
        }
      }
    }
  }
  if (stream && !chunk.empty()) opts.progressive(chunk);
  r.stats.phase1_seconds = phase.Seconds();
  phase.Restart();

  if (extra.empty()) {
    r.skyline = std::move(confirmed_ids);
  } else {
    // Fold the box-passing irregular rows in with one many-vs-many pass:
    // SKY(confirmed ∪ extra) is the exact answer because every finite
    // non-member is dominated by a confirmed member, and tile kernels
    // share the scalar NaN/inf conventions.
    std::vector<uint32_t> pool = std::move(confirmed_ids);
    pool.insert(pool.end(), extra.begin(), extra.end());
    TileBlock tiles(dims, pool.size());
    scratch.resize(pool.size() * row_floats);
    for (size_t i = 0; i < pool.size(); ++i) {
      tiles.PushRow(data.Row(pool[i]));
      std::copy_n(data.Row(pool[i]), row_floats,
                  scratch.data() + i * row_floats);
    }
    flags.assign(pool.size(), 0);
    dom.FilterTile(scratch.data(), pool.size(), tiles, flags.data(), &dts);
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!flags[i]) r.skyline.push_back(pool[i]);
    }
  }
  r.matched_rows = boxed ? r.matched_rows + extra.size() : data.count();
  r.stats.phase2_seconds = phase.Seconds();
  if (opts.count_dts) r.stats.dominance_tests = dts;
  r.stats.skyline_size = r.skyline.size();
  r.stats.total_seconds = total.Seconds();
  return r;
}

Result ZonemapSkylineCompute(const Dataset& data, const Options& opts) {
  WallTimer total;
  WallTimer build;
  const ZoneMapIndex index = ZoneMapIndex::Build(data, opts.block_rows);
  const double build_seconds = build.Seconds();
  ZonemapRunResult run = ZonemapSkylineRun(data, index, {}, opts);
  Result res;
  res.skyline = std::move(run.skyline);
  res.stats = run.stats;
  res.stats.init_seconds += build_seconds;
  res.stats.total_seconds = total.Seconds();
  return res;
}

}  // namespace sky
