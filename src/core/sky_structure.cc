// Copyright (c) SkyBench-NG contributors.
#include "core/sky_structure.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/bits.h"

namespace sky {

SkyStructure::SkyStructure(int dims, int stride, size_t capacity)
    : dims_(dims), stride_(stride) {
  rows_.Reset(capacity * static_cast<size_t>(stride_));
  tiles_.Reset(dims, capacity);
  ids_.reserve(capacity);
  masks_.reserve(capacity);
}

void SkyStructure::Append(const WorkingSet& ws, size_t begin, size_t len,
                          const DomCtx& dom) {
  last_append_begin_ = count_;
  if (len == 0) return;

  // Current open partition: mask of the last partition and index of its
  // pivot row, or "none" on the very first append.
  Mask open_mask = ~Mask{0};
  uint32_t open_pivot = 0;
  if (!partitions_.empty()) {
    partitions_.pop_back();  // pop sentinel
    open_mask = partitions_.back().mask;
    open_pivot = partitions_.back().start;
  }

  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(stride_);
  for (size_t j = 0; j < len; ++j) {
    const size_t src = begin + j;
    const uint32_t dst = static_cast<uint32_t>(count_);
    Value* dst_row =
        rows_.data() + static_cast<size_t>(dst) * static_cast<size_t>(stride_);
    std::memcpy(dst_row, ws.Row(src), row_bytes);
    tiles_.PushRow(dst_row);
    ids_.push_back(ws.ids[src]);
    const Mask level1 = ws.masks[src];
    if (level1 == open_mask) {
      // Same partition as the previous point: store the level-2 mask
      // relative to the partition pivot (Algorithm 2 line 6).
      masks_.push_back(dom.PartitionMask(dst_row, Row(open_pivot)));
    } else {
      // New partition: this point becomes its pivot and keeps the level-1
      // mask (Algorithm 2 lines 8-9).
      open_mask = level1;
      open_pivot = dst;
      masks_.push_back(level1);
      partitions_.push_back({open_mask, open_pivot});
    }
    ++count_;
  }
  // Re-push the sentinel (Algorithm 2 line 10).
  partitions_.push_back({FullMask(dims_) + 1, static_cast<uint32_t>(count_)});
}

size_t SkyStructure::Remove(std::span<const PointId> drop,
                            const DomCtx& dom) {
  if (drop.empty() || count_ == 0) return 0;
  std::vector<PointId> sorted(drop.begin(), drop.end());
  std::sort(sorted.begin(), sorted.end());
  const auto dropped = [&](PointId id) {
    return std::binary_search(sorted.begin(), sorted.end(), id);
  };

  const size_t stride = static_cast<size_t>(stride_);
  const size_t row_bytes = sizeof(Value) * stride;
  std::vector<PartEntry> kept_parts;
  kept_parts.reserve(partitions_.size());
  size_t w = 0;
  size_t removed = 0;
  const size_t nparts = partitions_.size() - 1;
  for (size_t k = 0; k < nparts; ++k) {
    const Mask pmask = partitions_[k].mask;
    const uint32_t s = partitions_[k].start;
    const uint32_t t = partitions_[k + 1].start;
    size_t new_pivot = 0;
    bool pivot_set = false;
    bool pivot_moved = false;
    for (uint32_t j = s; j < t; ++j) {
      if (dropped(ids_[j])) {
        ++removed;
        continue;
      }
      if (w != j) {
        std::memcpy(rows_.data() + w * stride, Row(j), row_bytes);
        ids_[w] = ids_[j];
        masks_[w] = masks_[j];
      }
      if (!pivot_set) {
        pivot_set = true;
        new_pivot = w;
        pivot_moved = (j != s);
        masks_[w] = pmask;  // the pivot stores the level-1 mask
        kept_parts.push_back({pmask, static_cast<uint32_t>(w)});
      } else if (pivot_moved) {
        masks_[w] = dom.PartitionMask(rows_.data() + w * stride,
                                      rows_.data() + new_pivot * stride);
      }
      ++w;
    }
  }
  count_ = w;
  ids_.resize(count_);
  masks_.resize(count_);
  partitions_ = std::move(kept_parts);
  if (count_ > 0) {
    partitions_.push_back(
        {FullMask(dims_) + 1, static_cast<uint32_t>(count_)});
  }
  // The previous append span is meaningless after a repack.
  last_append_begin_ = count_;
  tiles_.Clear();
  for (size_t i = 0; i < count_; ++i) tiles_.PushRow(Row(i));
  return removed;
}

bool SkyStructure::Dominated(const Value* q, Mask qmask, const DomCtx& dom,
                             uint64_t* dts, uint64_t* skips) const {
  if (partitions_.empty()) return false;
  const Mask full = FullMask(dims_);
  const uint32_t qkey = CompositeMaskKey(qmask, dims_);
  uint64_t local_dts = 0, local_skips = 0;
  const size_t nparts = partitions_.size() - 1;
  bool dominated = false;
  for (size_t k = 0; k < nparts && !dominated; ++k) {
    const Mask pmask = partitions_[k].mask;
    // Partitions are stored in increasing composite-key order; a subset
    // mask never has a larger key, so everything past q's key is
    // incomparable and the scan can stop.
    if (CompositeMaskKey(pmask, dims_) > qkey) break;
    // Level-1 filter (Algorithm 3 line 3): skip the whole partition unless
    // its region may dominate q's region.
    if (MaskIncomparable(pmask, qmask)) {
      ++local_skips;
      continue;
    }
    const uint32_t s = partitions_[k].start;
    const uint32_t t = partitions_[k + 1].start;
    // Compare q to the level-2 pivot once (Algorithm 3 line 5); its cost
    // is that of one dominance test.
    const Mask m2 = dom.PartitionMask(q, Row(s));
    ++local_dts;
    if (m2 == full && !dom.Equal(q, Row(s))) {
      dominated = true;  // the pivot itself dominates q (line 6)
      break;
    }
    if (dom.batch()) {
      // Batched member scan: the partition range [s+1, t) maps onto the
      // global SoA tiles with lane masks at both ragged ends. The
      // level-2 filter (line 8) runs 8 masks per compare, and surviving
      // lanes share one tile dominance kernel (ProbeMaskedTile).
      const size_t stride = static_cast<size_t>(stride_);
      for (size_t g = (s + 1) / kSimdWidth;
           g * kSimdWidth < t && !dominated; ++g) {
        const size_t row0 = g * kSimdWidth;
        const size_t lo = row0 < s + 1 ? (s + 1) - row0 : 0;
        const size_t hi = std::min<size_t>(kSimdWidth, t - row0);
        if (ProbeMaskedTile(dom, q, tiles_.Tile(g), masks_.data() + row0,
                            count_ - row0, m2, LaneMaskRange(lo, hi),
                            rows_.data() + row0 * stride, stride,
                            &local_dts, &local_skips)) {
          dominated = true;
        }
      }
      continue;
    }
    for (uint32_t j = s + 1; j < t; ++j) {
      // Level-2 filter (line 8): member masks are relative to the pivot,
      // exactly comparable with m2.
      if (MaskIncomparable(masks_[j], m2)) {
        ++local_skips;
        continue;
      }
      ++local_dts;
      if (dom.Dominates(Row(j), q)) {
        dominated = true;
        break;
      }
    }
  }
  if (dts != nullptr) *dts += local_dts;
  if (skips != nullptr) *skips += local_skips;
  return dominated;
}

void SkyStructure::CheckInvariants() const {
  if (count_ == 0) {
    SKY_CHECK(partitions_.empty());
    return;
  }
  SKY_CHECK(!partitions_.empty());
  SKY_CHECK(partitions_.back().mask == FullMask(dims_) + 1);
  SKY_CHECK(partitions_.back().start == count_);
  SKY_CHECK(partitions_.front().start == 0);
  uint32_t prev_key = 0;
  for (size_t k = 0; k + 1 < partitions_.size(); ++k) {
    SKY_CHECK(partitions_[k].start < partitions_[k + 1].start);
    // Partitions appear in strictly increasing (level, mask) order.
    const uint32_t key = CompositeMaskKey(partitions_[k].mask, dims_);
    if (k > 0) SKY_CHECK(prev_key < key);
    prev_key = key;
    // The pivot stores the partition's level-1 mask.
    SKY_CHECK(masks_[partitions_[k].start] == partitions_[k].mask);
  }
  SKY_CHECK(ids_.size() == count_ && masks_.size() == count_);
  // The SoA mirror must track rows_ bit-identically (NaN payloads
  // included), lane for lane — a stale mirror would silently corrupt the
  // batched Dominated scan after a remove/repack.
  SKY_CHECK(tiles_.size() == count_);
  for (size_t i = 0; i < count_; ++i) {
    const Value* lane = tiles_.Tile(i / kSimdWidth) + i % kSimdWidth;
    const Value* row = Row(i);
    for (int j = 0; j < dims_; ++j) {
      SKY_CHECK(std::memcmp(&lane[static_cast<size_t>(j) * kSimdWidth],
                            &row[j], sizeof(Value)) == 0);
    }
  }
}

}  // namespace sky
