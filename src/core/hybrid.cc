// Copyright (c) SkyBench-NG contributors.
#include "core/hybrid.h"

#include <algorithm>
#include <atomic>

#include "common/bits.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/sky_structure.h"
#include "data/prefilter.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace {

constexpr size_t kPhaseGrain = 16;

/// compareToPeers (paper Algorithm 4): is block point `me` dominated by a
/// preceding point of the same α-block? The block is sorted by
/// (level, mask, L1), so the predecessors decompose into three runs:
/// lower levels (mask-filtered DTs), same level with a different mask
/// (provably incomparable — skipped), and the same partition
/// (unconditional DTs).
bool DominatedByPeer(const WorkingSet& ws, size_t block_begin, size_t me,
                     const DomCtx& dom, std::vector<uint8_t>& flags,
                     uint64_t* dts, uint64_t* skips) {
  const Value* q = ws.Row(block_begin + me);
  const Mask my_mask = ws.masks[block_begin + me];
  const int my_level = MaskLevel(my_mask);
  size_t i = 0;
  // Loop 1: predecessors in strictly lower levels.
  while (i < me && MaskLevel(ws.masks[block_begin + i]) < my_level) {
    // Reading a concurrently written flag is a benign optimisation race:
    // a stale 0 only costs one extra dominance test.
    const bool pruned = std::atomic_ref<uint8_t>(flags[i]).load(
                            std::memory_order_relaxed) != 0;
    if (!pruned) {
      if (MaskIncomparable(ws.masks[block_begin + i], my_mask)) {
        ++*skips;
      } else {
        ++*dts;
        if (dom.Dominates(ws.Row(block_begin + i), q)) return true;
      }
    }
    ++i;
  }
  // Loop 2: same level, smaller mask — incomparable by §VI-A2 property 1.
  while (i < me && ws.masks[block_begin + i] != my_mask) ++i;
  // Loop 3: same partition — no assumption possible.
  while (i < me) {
    ++*dts;
    if (dom.Dominates(ws.Row(block_begin + i), q)) return true;
    ++i;
  }
  return false;
}

}  // namespace

Result HybridCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;

  WallTimer total;
  ThreadPool pool(opts.ResolvedThreads());
  DomCtx dom(data.dims(), data.stride(), opts.use_simd);
  DtCounter counter(opts.count_dts);
  DtCounter* counter_ptr = opts.count_dts ? &counter : nullptr;

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  const int dims = ws.dims;

  // ---- Initialization part 1: L1 norms (parallel).
  WallTimer phase;
  ws.ComputeL1(pool);
  st.init_seconds += phase.Lap();

  // ---- Pre-filter (paper §VI-A1).
  if (opts.prefilter_beta > 0) {
    st.prefiltered_points =
        Prefilter(ws, pool, opts.prefilter_beta, dom, counter_ptr);
  }
  st.prefilter_seconds = phase.Lap();
  if (ws.count == 0) {  // degenerate: cannot happen with beta>0, but safe
    st.total_seconds = total.Seconds();
    return res;
  }

  // ---- Pivot selection + level-1 partitioning (paper §VI-A2).
  const std::vector<Value> pivot =
      SelectPivot(ws, opts.pivot, pool, opts.seed);
  AssignMasks(ws, pivot.data(), dom, pool);
  st.pivot_seconds = phase.Lap();

  // ---- Initialization part 2: composite (level, mask, L1) sort.
  SortByMaskThenL1(ws, pool);
  st.init_seconds += phase.Lap();

  const size_t alpha = opts.AlphaFor(Algorithm::kHybrid);
  SkyStructure sky(dims, ws.stride, ws.count);
  std::vector<uint8_t> flags(std::min(alpha, ws.count));

  for (size_t b = 0; b < ws.count; b += alpha) {
    const size_t e = std::min(b + alpha, ws.count);
    const size_t blen = e - b;
    std::fill_n(flags.begin(), blen, uint8_t{0});

    // ---- Phase I: block points vs. M(S) (Algorithm 3).
    phase.Restart();
    pool.ParallelFor(blen, kPhaseGrain, [&](size_t lo, size_t hi) {
      uint64_t dts = 0, skips = 0;
      for (size_t k = lo; k < hi; ++k) {
        if (sky.Dominated(ws.Row(b + k), ws.masks[b + k], dom, &dts,
                          &skips)) {
          flags[k] = 1;
        }
      }
      counter.AddTests(dts);
      counter.AddMaskSkips(skips);
    });
    st.phase1_seconds += phase.Lap();

    const size_t survivors = ws.CompressRange(b, e, flags.data());
    st.compress_seconds += phase.Lap();

    // ---- Phase II: survivors vs. preceding in-block survivors
    // (Algorithm 4).
    std::fill_n(flags.begin(), survivors, uint8_t{0});
    pool.ParallelFor(survivors, kPhaseGrain, [&](size_t lo, size_t hi) {
      uint64_t dts = 0, skips = 0;
      for (size_t k = lo; k < hi; ++k) {
        if (DominatedByPeer(ws, b, k, dom, flags, &dts, &skips)) {
          std::atomic_ref<uint8_t>(flags[k]).store(
              1, std::memory_order_relaxed);
        }
      }
      counter.AddTests(dts);
      counter.AddMaskSkips(skips);
    });
    st.phase2_seconds += phase.Lap();

    const size_t confirmed = ws.CompressRange(b, b + survivors, flags.data());
    // ---- updateS&M (Algorithm 2).
    sky.Append(ws, b, confirmed, dom);
    st.compress_seconds += phase.Lap();

    if (opts.progressive && confirmed > 0) {
      opts.progressive(sky.LastAppended());
    }
  }

  res.skyline = sky.ids();
  st.skyline_size = sky.size();
  st.dominance_tests = counter.tests();
  st.mask_filter_hits = counter.mask_skips();
  st.total_seconds = total.Seconds();
  st.other_seconds = std::max(
      0.0, st.total_seconds -
               (st.init_seconds + st.prefilter_seconds + st.pivot_seconds +
                st.phase1_seconds + st.phase2_seconds + st.compress_seconds));
  return res;
}

}  // namespace sky
