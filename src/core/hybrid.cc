// Copyright (c) SkyBench-NG contributors.
#include "core/hybrid.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "common/bits.h"
#include "common/cancel.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/sky_structure.h"
#include "data/prefilter.h"
#include "data/sorting.h"
#include "data/working_set.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

namespace {

constexpr size_t kPhaseGrain = 16;

/// compareToPeers (paper Algorithm 4): is block point `me` dominated by a
/// preceding point of the same α-block? The block is sorted by
/// (level, mask, L1), so the predecessors decompose into three runs:
/// lower levels (mask-filtered DTs), same level with a different mask
/// (provably incomparable — skipped), and the same partition
/// (unconditional DTs).
bool DominatedByPeer(const WorkingSet& ws, size_t block_begin, size_t me,
                     const DomCtx& dom, std::vector<uint8_t>& flags,
                     uint64_t* dts, uint64_t* skips) {
  const Value* q = ws.Row(block_begin + me);
  const Mask my_mask = ws.masks[block_begin + me];
  const int my_level = MaskLevel(my_mask);
  size_t i = 0;
  // Loop 1: predecessors in strictly lower levels.
  while (i < me && MaskLevel(ws.masks[block_begin + i]) < my_level) {
    // Reading a concurrently written flag is a benign optimisation race:
    // a stale 0 only costs one extra dominance test.
    const bool pruned = std::atomic_ref<uint8_t>(flags[i]).load(
                            std::memory_order_relaxed) != 0;
    if (!pruned) {
      if (MaskIncomparable(ws.masks[block_begin + i], my_mask)) {
        ++*skips;
      } else {
        ++*dts;
        if (dom.Dominates(ws.Row(block_begin + i), q)) return true;
      }
    }
    ++i;
  }
  // Loop 2: same level, smaller mask — incomparable by §VI-A2 property 1.
  while (i < me && ws.masks[block_begin + i] != my_mask) ++i;
  // Loop 3: same partition — no assumption possible.
  while (i < me) {
    ++*dts;
    if (dom.Dominates(ws.Row(block_begin + i), q)) return true;
    ++i;
  }
  return false;
}

/// Batched compareToPeers: identical decomposition to DominatedByPeer,
/// but the three predecessor runs are resolved from per-block run-start
/// tables (the block is sorted by composite (level, mask) key, so the
/// lower-level run is exactly [0, level_start[me]) and the same-partition
/// run is [mask_start[me], me)), and each run is scanned 8 peers per
/// compare over the block's SoA tiles.
bool DominatedByPeerBatched(const WorkingSet& ws, size_t block_begin,
                            size_t me, const DomCtx& dom,
                            const TileBlock& tiles,
                            const std::vector<uint32_t>& level_start,
                            const std::vector<uint32_t>& mask_start,
                            std::vector<uint8_t>& flags, uint64_t* dts,
                            uint64_t* skips) {
  const Value* q = ws.Row(block_begin + me);
  const Mask my_mask = ws.masks[block_begin + me];
  const size_t i1 = level_start[me];
  const size_t i2 = mask_start[me];
  // Run 1: strictly lower levels — pruned peers skipped (same benign
  // stale-flag race as the scalar path), survivors mask-filtered 8 at a
  // time, comparable lanes tested with one tile kernel.
  for (size_t g = 0; g * kSimdWidth < i1; ++g) {
    const size_t row0 = g * kSimdWidth;
    const size_t hi = std::min<size_t>(kSimdWidth, i1 - row0);
    uint32_t unpruned = 0;
    for (size_t l = 0; l < hi; ++l) {
      if (std::atomic_ref<uint8_t>(flags[row0 + l])
              .load(std::memory_order_relaxed) == 0) {
        unpruned |= 1u << l;
      }
    }
    if (ProbeMaskedTile(dom, q, tiles.Tile(g),
                        ws.masks.data() + block_begin + row0,
                        ws.masks.size() - (block_begin + row0), my_mask,
                        unpruned, ws.Row(block_begin + row0),
                        static_cast<size_t>(ws.stride), dts, skips)) {
      return true;
    }
  }
  // Run 2: same level, different mask — provably incomparable, skipped.
  // Run 3: same partition — unconditional tests.
  for (size_t g = i2 / kSimdWidth; g * kSimdWidth < me; ++g) {
    const size_t row0 = g * kSimdWidth;
    const size_t lo = row0 < i2 ? i2 - row0 : 0;
    const size_t hi = std::min<size_t>(kSimdWidth, me - row0);
    const uint32_t range = LaneMaskRange(lo, hi);
    if (range == 0) continue;
    *dts += std::popcount(range);
    if (dom.TileDominates(q, tiles.Tile(g), range) != 0) return true;
  }
  return false;
}

}  // namespace

Result HybridCompute(const Dataset& data, const Options& opts) {
  Result res;
  RunStats& st = res.stats;
  if (data.count() == 0) return res;

  WallTimer total;
  ThreadPool pool(opts.executor, opts.ResolvedThreads());
  DomCtx dom(data.dims(), data.stride(), opts.use_simd, opts.use_batch);
  DtCounter counter(opts.count_dts);
  DtCounter* counter_ptr = opts.count_dts ? &counter : nullptr;

  WorkingSet ws = WorkingSet::FromDataset(data, pool);
  const int dims = ws.dims;

  // ---- Initialization part 1: L1 norms (parallel).
  WallTimer phase;
  ws.ComputeL1(pool);
  st.init_seconds += phase.Lap();

  // ---- Pre-filter (paper §VI-A1).
  if (opts.prefilter_beta > 0) {
    st.prefiltered_points =
        Prefilter(ws, pool, opts.prefilter_beta, dom, counter_ptr);
  }
  st.prefilter_seconds = phase.Lap();
  if (ws.count == 0) {  // degenerate: cannot happen with beta>0, but safe
    st.total_seconds = total.Seconds();
    return res;
  }

  // ---- Pivot selection + level-1 partitioning (paper §VI-A2).
  const std::vector<Value> pivot =
      SelectPivot(ws, opts.pivot, pool, opts.seed);
  AssignMasks(ws, pivot.data(), dom, pool);
  st.pivot_seconds = phase.Lap();

  // ---- Initialization part 2: composite (level, mask, L1) sort.
  SortByMaskThenL1(ws, pool);
  st.init_seconds += phase.Lap();

  const size_t alpha = opts.AlphaFor(Algorithm::kHybrid);
  SkyStructure sky(dims, ws.stride, ws.count);
  std::vector<uint8_t> flags(std::min(alpha, ws.count));

  // Batch-mode Phase II state, rebuilt per block: SoA tiles over the
  // block's Phase-I survivors plus the run-start tables that replace
  // DominatedByPeer's per-candidate predecessor scans.
  const bool batch = dom.batch();
  TileBlock peer_tiles;
  std::vector<uint32_t> level_start;
  std::vector<uint32_t> mask_start;
  if (batch) peer_tiles.Reset(dims, std::min(alpha, ws.count));

  for (size_t b = 0; b < ws.count; b += alpha) {
    // Deadline / cancellation checkpoint, once per α-block: S holds only
    // confirmed global members, so stopping here is a clean truncation.
    CheckCancel(opts.cancel);
    const size_t e = std::min(b + alpha, ws.count);
    const size_t blen = e - b;
    std::fill_n(flags.begin(), blen, uint8_t{0});

    // ---- Phase I: block points vs. M(S) (Algorithm 3).
    phase.Restart();
    pool.ParallelFor(blen, kPhaseGrain, [&](size_t lo, size_t hi) {
      uint64_t dts = 0, skips = 0;
      for (size_t k = lo; k < hi; ++k) {
        if (sky.Dominated(ws.Row(b + k), ws.masks[b + k], dom, &dts,
                          &skips)) {
          flags[k] = 1;
        }
      }
      counter.AddTests(dts);
      counter.AddMaskSkips(skips);
    });
    st.phase1_seconds += phase.Lap();

    const size_t survivors = ws.CompressRange(b, e, flags.data());
    st.compress_seconds += phase.Lap();

    // ---- Phase II: survivors vs. preceding in-block survivors
    // (Algorithm 4).
    std::fill_n(flags.begin(), survivors, uint8_t{0});
    if (batch) {
      peer_tiles.Clear();
      peer_tiles.AppendRows(ws.Row(b), ws.stride, survivors);
      level_start.resize(survivors);
      mask_start.resize(survivors);
      for (size_t i = 0; i < survivors; ++i) {
        if (i == 0) {
          level_start[0] = mask_start[0] = 0;
          continue;
        }
        const Mask m = ws.masks[b + i];
        const Mask pm = ws.masks[b + i - 1];
        mask_start[i] = m == pm ? mask_start[i - 1]
                                : static_cast<uint32_t>(i);
        level_start[i] = MaskLevel(m) == MaskLevel(pm)
                             ? level_start[i - 1]
                             : static_cast<uint32_t>(i);
      }
    }
    pool.ParallelFor(survivors, kPhaseGrain, [&](size_t lo, size_t hi) {
      uint64_t dts = 0, skips = 0;
      for (size_t k = lo; k < hi; ++k) {
        const bool dominated =
            batch ? DominatedByPeerBatched(ws, b, k, dom, peer_tiles,
                                           level_start, mask_start, flags,
                                           &dts, &skips)
                  : DominatedByPeer(ws, b, k, dom, flags, &dts, &skips);
        if (dominated) {
          std::atomic_ref<uint8_t>(flags[k]).store(
              1, std::memory_order_relaxed);
        }
      }
      counter.AddTests(dts);
      counter.AddMaskSkips(skips);
    });
    st.phase2_seconds += phase.Lap();

    const size_t confirmed = ws.CompressRange(b, b + survivors, flags.data());
    // ---- updateS&M (Algorithm 2).
    sky.Append(ws, b, confirmed, dom);
    st.compress_seconds += phase.Lap();

    if (opts.progressive && confirmed > 0) {
      opts.progressive(sky.LastAppended());
    }
  }

  res.skyline = sky.ids();
  st.skyline_size = sky.size();
  st.dominance_tests = counter.tests();
  st.mask_filter_hits = counter.mask_skips();
  st.total_seconds = total.Seconds();
  st.other_seconds = std::max(
      0.0, st.total_seconds -
               (st.init_seconds + st.prefilter_seconds + st.pivot_seconds +
                st.phase1_seconds + st.phase2_seconds + st.compress_seconds));
  return res;
}

}  // namespace sky
