// Copyright (c) SkyBench-NG contributors.
#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sky {
namespace obs {

size_t ThisThreadCell() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricCells - 1);
  return slot;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) {
    total += c.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::runtime_error("obs: histogram needs at least one bound");
  }
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]) ||
        (i > 0 && bounds_[i] <= bounds_[i - 1])) {
      throw std::runtime_error(
          "obs: histogram bounds must be finite and strictly ascending");
    }
  }
  const size_t n_buckets = bounds_.size() + 1;
  cells_ = std::make_unique<Cell[]>(kMetricCells);
  for (size_t c = 0; c < kMetricCells; ++c) {
    cells_[c].buckets = std::make_unique<std::atomic<uint64_t>[]>(n_buckets);
    for (size_t b = 0; b < n_buckets; ++b) {
      cells_[c].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double value) {
  // NaN would land in the overflow bucket via the comparisons below and
  // poison the sum; drop it (the serving layer never produces one, but a
  // histogram is exactly where a bug like that should not compound).
  if (std::isnan(value)) return;
  // Bucket i holds observations <= bounds_[i] (Prometheus `le`).
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Cell& cell = cells_[ThisThreadCell()];
  cell.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  double cur = cell.sum.load(std::memory_order_relaxed);
  while (!cell.sum.compare_exchange_weak(cur, cur + value,
                                         std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.buckets.assign(bounds_.size() + 1, 0);
  for (size_t c = 0; c < kMetricCells; ++c) {
    for (size_t b = 0; b < data.buckets.size(); ++b) {
      data.buckets[b] += cells_[c].buckets[b].load(std::memory_order_relaxed);
    }
    data.sum += cells_[c].sum.load(std::memory_order_relaxed);
  }
  for (const uint64_t b : data.buckets) data.count += b;
  return data;
}

double HistogramData::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cum + in_bucket < target || in_bucket == 0.0) {
      cum += in_bucket;
      continue;
    }
    // The target rank lands in bucket i: interpolate linearly between its
    // bounds. Bucket 0 starts at 0 (latencies are non-negative; a signed
    // histogram still gets a defensible lower edge). The overflow bucket
    // has no upper edge — clamp to the last finite bound.
    const double lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : bounds.back();
    const double frac =
        in_bucket > 0.0 ? (target - cum) / in_bucket : 1.0;
    return lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
  }
  return bounds.back();
}

std::vector<double> DefaultLatencyBounds() {
  std::vector<double> bounds;
  bounds.reserve(91);
  // 10 log-spaced buckets per decade over [1e-7 s, 1e2 s].
  for (int e = -70; e <= 20; ++e) {
    bounds.push_back(std::pow(10.0, static_cast<double>(e) / 10.0));
  }
  return bounds;
}

namespace {

/// Registry key of (name, labels): name plus the sorted label pairs,
/// joined with characters no Prometheus-legal name contains.
std::string MetricId(const std::string& name, const Labels& labels) {
  std::string id = name;
  for (const auto& [k, v] : labels) {
    id += '\x1f';
    id += k;
    id += '\x1e';
    id += v;
  }
  return id;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::Intern(MetricKind kind,
                                                const std::string& name,
                                                const Labels& labels,
                                                const std::string& help) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const std::string id = MetricId(name, sorted);
  auto [it, inserted] = entries_.try_emplace(id);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.name = name;
    e.labels = std::move(sorted);
    e.help = help;
  } else if (e.kind != kind) {
    throw std::runtime_error("obs: metric '" + name +
                             "' re-registered as a different kind");
  }
  return e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = Intern(MetricKind::kCounter, name, labels, help);
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = Intern(MetricKind::kGauge, name, labels, help);
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = Intern(MetricKind::kHistogram, name, labels, help);
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(
        bounds.empty() ? DefaultLatencyBounds() : std::move(bounds));
  }
  return e.histogram.get();
}

void MetricsRegistry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.metrics.reserve(entries_.size());
    for (const auto& [id, e] : entries_) {
      MetricValue v;
      v.name = e.name;
      v.labels = e.labels;
      v.help = e.help;
      v.kind = e.kind;
      switch (e.kind) {
        case MetricKind::kCounter:
          v.value = static_cast<double>(e.counter->Value());
          break;
        case MetricKind::kGauge:
          v.value = e.gauge->Value();
          break;
        case MetricKind::kHistogram:
          v.histogram = e.histogram->Snapshot();
          break;
      }
      snap.metrics.push_back(std::move(v));
    }
    collectors = collectors_;
  }
  for (const Collector& fn : collectors) fn(snap.metrics);
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

const MetricValue* MetricsSnapshot::Find(const std::string& name,
                                         const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricValue& m : metrics) {
    if (m.name == name && m.labels == sorted) return &m;
  }
  return nullptr;
}

double MetricsSnapshot::Value(const std::string& name,
                              const Labels& labels) const {
  const MetricValue* m = Find(name, labels);
  return m == nullptr ? 0.0 : m->value;
}

}  // namespace obs
}  // namespace sky
