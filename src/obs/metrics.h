// Copyright (c) SkyBench-NG contributors.
// Process-level metrics: named counters, gauges and log-bucketed latency
// histograms behind one MetricsRegistry, built for a serving layer where
// the hot path increments from many threads at once. Counters and
// histograms stripe their state over a small array of cache-line-sized
// atomic cells indexed by a per-thread slot, so concurrent increments
// almost never touch the same line; Snapshot() merges the cells into a
// stable, sorted view the exporters (obs/export.h) render as Prometheus
// text or JSON. Registries are instantiable (SkylineEngine owns one per
// engine) — nothing here is a global singleton.
#ifndef SKY_OBS_METRICS_H_
#define SKY_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sky {
namespace obs {

/// Cells per striped metric (power of two). 16 lines = 1 KiB per counter;
/// more threads than cells only means occasional sharing, never a lost
/// update.
inline constexpr size_t kMetricCells = 16;

/// Stable stripe slot of the calling thread in [0, kMetricCells):
/// threads take consecutive slots in creation order, so up to
/// kMetricCells concurrent threads never share a cell.
size_t ThisThreadCell();

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on the
/// calling thread's cell. Value() sums the cells — monotone over time,
/// though a sum racing concurrent increments may miss the very latest.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[ThisThreadCell()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kMetricCells];
};

/// Last-write-wins instantaneous value (cache occupancy, dataset count).
/// Gauges are set at observation points, not summed, so one atomic is
/// enough.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram: cumulative-free per-bucket counts over
/// fixed upper bounds (bucket i holds observations <= bounds[i]; the
/// final bucket is the +inf overflow), plus count and sum.
struct HistogramData {
  std::vector<double> bounds;     ///< ascending finite upper bounds
  std::vector<uint64_t> buckets;  ///< size bounds.size() + 1 (overflow last)
  uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank. Exact to within one bucket width —
  /// the resolution the fixed log bounds were chosen for. Observations
  /// past the last bound clamp to it; an empty histogram reports 0.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram. Observe() touches only the calling thread's
/// cell: one relaxed bucket increment plus a relaxed CAS-add into the
/// cell's sum. Bounds are frozen at construction (log-spaced latency
/// bounds by default), so merging cells is plain addition.
class Histogram {
 public:
  /// `bounds` must be non-empty, finite and strictly ascending.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  HistogramData Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Cell {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::unique_ptr<Cell[]> cells_;
};

/// Default latency bounds: 10 buckets per decade from 100 ns to 100 s
/// (91 bounds), so p50/p90/p99/p999 estimates carry at most ~26% relative
/// bucket-rounding error anywhere in the serving range.
std::vector<double> DefaultLatencyBounds();

/// Label set of one metric, sorted by key at registration. Keys must be
/// Prometheus-legal label names; values are escaped by the exporters.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// One metric's merged value inside a snapshot.
struct MetricValue {
  std::string name;
  Labels labels;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       ///< counter / gauge payload
  HistogramData histogram;  ///< kHistogram payload
};

/// Stable view of a whole registry, sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* Find(const std::string& name,
                          const Labels& labels = {}) const;
  /// Counter/gauge value under (name, labels); 0 when absent.
  double Value(const std::string& name, const Labels& labels = {}) const;
};

/// Named-metric registry. GetCounter / GetGauge / GetHistogram intern on
/// first use and afterwards return the same pointer, stable for the
/// registry's lifetime — callers resolve once at wire-up time and the hot
/// path never sees the registry mutex. Collectors let subsystems that
/// already keep their own counters (the engine's LRU caches) contribute
/// values at snapshot time instead of double-counting on the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Intern (or fetch) a metric. `help` sticks from the first caller.
  /// Throws std::runtime_error when (name, labels) is already registered
  /// as a different kind.
  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  /// Empty `bounds` selects DefaultLatencyBounds().
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "",
                          std::vector<double> bounds = {});

  /// Snapshot-time contributor: appends fully formed MetricValues. Runs
  /// outside the registry mutex, so a collector may call back into the
  /// registry (none of ours do).
  using Collector = std::function<void(std::vector<MetricValue>&)>;
  void AddCollector(Collector fn);

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& Intern(MetricKind kind, const std::string& name,
                const Labels& labels, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // guarded by mu_; key = id string
  std::vector<Collector> collectors_;     // guarded by mu_
};

}  // namespace obs
}  // namespace sky

#endif  // SKY_OBS_METRICS_H_
