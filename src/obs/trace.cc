// Copyright (c) SkyBench-NG contributors.
#include "obs/trace.h"

#include <cstdio>

namespace sky {
namespace obs {

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

std::string QueryTrace::Render() const {
  // Children in recording order under each parent; parents always precede
  // children, so depth is computable in one forward pass.
  std::vector<int> depth(spans.size(), 0);
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int p = spans[i].parent;
    if (p < 0 || static_cast<size_t>(p) >= i) {
      roots.push_back(i);
    } else {
      depth[i] = depth[static_cast<size_t>(p)] + 1;
      children[static_cast<size_t>(p)].push_back(i);
    }
  }
  std::string out;
  std::vector<size_t> stack(roots.rbegin(), roots.rend());
  while (!stack.empty()) {
    const size_t i = stack.back();
    stack.pop_back();
    const TraceSpan& s = spans[i];
    out.append(static_cast<size_t>(depth[i]) * 2, ' ');
    out += s.name;
    out += ' ';
    out += FormatSeconds(s.duration_seconds);
    for (const auto& [k, v] : s.attrs) {
      out += ' ';
      out += k;
      out += '=';
      out += v;
    }
    out += '\n';
    for (auto it = children[i].rbegin(); it != children[i].rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

TraceBuilder::TraceBuilder()
    : epoch_(std::chrono::steady_clock::now()),
      trace_(std::make_shared<QueryTrace>()) {}

double TraceBuilder::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

int TraceBuilder::AddSpan(std::string name, int parent, double start_seconds,
                          double duration_seconds) {
  TraceSpan s;
  s.name = std::move(name);
  s.parent = parent;
  s.start_seconds = start_seconds;
  s.duration_seconds = duration_seconds;
  trace_->spans.push_back(std::move(s));
  return static_cast<int>(trace_->spans.size()) - 1;
}

int TraceBuilder::Open(std::string name, int parent) {
  return AddSpan(std::move(name), parent, Now(), 0.0);
}

void TraceBuilder::Close(int span) {
  TraceSpan& s = trace_->spans[static_cast<size_t>(span)];
  s.duration_seconds = Now() - s.start_seconds;
}

void TraceBuilder::Attr(int span, std::string key, std::string value) {
  trace_->spans[static_cast<size_t>(span)].attrs.emplace_back(
      std::move(key), std::move(value));
}

void TraceBuilder::AttrCount(int span, std::string key, uint64_t value) {
  Attr(span, std::move(key), std::to_string(value));
}

std::shared_ptr<const QueryTrace> TraceBuilder::Finish() {
  return std::move(trace_);
}

}  // namespace obs
}  // namespace sky
