// Copyright (c) SkyBench-NG contributors.
#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace sky {
namespace obs {
namespace {

/// Shortest-faithful number: integral values (every counter) render with
/// no fraction, everything else with enough digits to round-trip a
/// bucket bound or a seconds sum.
std::string FormatNumber(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  return buf;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `{k="v",...}` or empty; `extra` appends one more pair (histogram le).
std::string LabelBlock(const Labels& labels,
                       const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first + "=\"" + EscapeLabelValue(extra->second) + "\"";
  }
  out += '}';
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_family;
  for (const MetricValue& m : snap.metrics) {
    // The snapshot is sorted by name, so a family's series are adjacent;
    // emit the HELP/TYPE header once per family.
    if (m.name != last_family) {
      if (!m.help.empty()) {
        out += "# HELP " + m.name + " " + m.help + "\n";
      }
      out += "# TYPE " + m.name + " " + KindName(m.kind) + "\n";
      last_family = m.name;
    }
    if (m.kind == MetricKind::kHistogram) {
      const HistogramData& h = m.histogram;
      uint64_t cum = 0;
      for (size_t b = 0; b < h.bounds.size(); ++b) {
        cum += h.buckets[b];
        const std::pair<std::string, std::string> le{
            "le", FormatNumber(h.bounds[b])};
        out += m.name + "_bucket" + LabelBlock(m.labels, &le) + " " +
               FormatNumber(static_cast<double>(cum)) + "\n";
      }
      const std::pair<std::string, std::string> le_inf{"le", "+Inf"};
      out += m.name + "_bucket" + LabelBlock(m.labels, &le_inf) + " " +
             FormatNumber(static_cast<double>(h.count)) + "\n";
      out += m.name + "_sum" + LabelBlock(m.labels, nullptr) + " " +
             FormatNumber(h.sum) + "\n";
      out += m.name + "_count" + LabelBlock(m.labels, nullptr) + " " +
             FormatNumber(static_cast<double>(h.count)) + "\n";
    } else {
      out += m.name + LabelBlock(m.labels, nullptr) + " " +
             FormatNumber(m.value) + "\n";
    }
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"schema\": \"skybench-metrics-v1\",\n"
                    "  \"metrics\": [\n";
  for (size_t i = 0; i < snap.metrics.size(); ++i) {
    const MetricValue& m = snap.metrics[i];
    out += "    {\"name\": \"" + EscapeJson(m.name) + "\", \"type\": \"" +
           KindName(m.kind) + "\"";
    if (!m.labels.empty()) {
      out += ", \"labels\": {";
      for (size_t l = 0; l < m.labels.size(); ++l) {
        if (l > 0) out += ", ";
        out += "\"" + EscapeJson(m.labels[l].first) + "\": \"" +
               EscapeJson(m.labels[l].second) + "\"";
      }
      out += "}";
    }
    if (m.kind == MetricKind::kHistogram) {
      const HistogramData& h = m.histogram;
      out += ", \"count\": " + FormatNumber(static_cast<double>(h.count));
      out += ", \"sum\": " + FormatNumber(h.sum);
      out += ", \"p50\": " + FormatNumber(h.Quantile(0.50));
      out += ", \"p90\": " + FormatNumber(h.Quantile(0.90));
      out += ", \"p99\": " + FormatNumber(h.Quantile(0.99));
      out += ", \"p999\": " + FormatNumber(h.Quantile(0.999));
      out += ", \"buckets\": [";
      uint64_t cum = 0;
      bool first = true;
      for (size_t b = 0; b < h.bounds.size(); ++b) {
        // Empty buckets are elided: 91 fixed bounds would otherwise bloat
        // every snapshot; cumulative counts keep elision lossless.
        if (h.buckets[b] == 0) continue;
        cum += h.buckets[b];
        if (!first) out += ", ";
        first = false;
        out += "{\"le\": " + FormatNumber(h.bounds[b]) +
               ", \"count\": " + FormatNumber(static_cast<double>(cum)) + "}";
      }
      if (h.count > cum) {
        if (!first) out += ", ";
        out += "{\"le\": \"+Inf\", \"count\": " +
               FormatNumber(static_cast<double>(h.count)) + "}";
      }
      out += "]";
    } else {
      out += ", \"value\": " + FormatNumber(m.value);
    }
    out += "}";
    if (i + 1 < snap.metrics.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  const bool ok = written == content.size() && closed;
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace obs
}  // namespace sky
