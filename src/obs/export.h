// Copyright (c) SkyBench-NG contributors.
// Exposition formats for a MetricsSnapshot: Prometheus text format 0.0.4
// (HELP/TYPE headers, label escaping, cumulative `le` histogram buckets
// with _sum/_count) and a JSON document carrying the same data plus
// precomputed p50/p90/p99/p999 per histogram — the form the CLI's
// --stats-json flag and the query_service example write out.
#ifndef SKY_OBS_EXPORT_H_
#define SKY_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace sky {
namespace obs {

/// Prometheus text exposition of the snapshot. Families (same metric
/// name) share one # HELP / # TYPE header; histograms expand into
/// cumulative `name_bucket{le="..."}` series plus `name_sum` and
/// `name_count`.
std::string RenderPrometheus(const MetricsSnapshot& snap);

/// JSON document: {"schema": "skybench-metrics-v1", "metrics": [...]}
/// with one object per metric; histograms carry count/sum/quantiles and
/// the cumulative bucket table.
std::string RenderJson(const MetricsSnapshot& snap);

/// Write `content` to `path`; false (with a stderr diagnostic) on error.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace sky

#endif  // SKY_OBS_EXPORT_H_
