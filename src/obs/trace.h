// Copyright (c) SkyBench-NG contributors.
// Opt-in per-query tracing: the engine records one span per pipeline
// stage (plan, view build / cache hit, per-shard execute, merge, cache
// put), attaches the finished tree to the QueryResult, and Render()
// prints it as an indented tree with per-span attributes — the
// query-granular complement to the aggregate registry in obs/metrics.h.
// Spans are recorded post-hoc on the coordinating thread from measured
// stage timings, so a TraceBuilder needs no synchronisation and costs
// nothing when tracing is off (the engine simply never constructs one).
#ifndef SKY_OBS_TRACE_H_
#define SKY_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sky {
namespace obs {

/// One traced stage. `parent` indexes into QueryTrace::spans (-1 = root);
/// times are seconds relative to the trace epoch (TraceBuilder
/// construction).
struct TraceSpan {
  std::string name;
  int parent = -1;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// A finished trace: spans in recording order (parents always precede
/// their children).
struct QueryTrace {
  std::vector<TraceSpan> spans;

  /// Indented tree, one span per line:
  ///   query 1.52ms dataset=hotels
  ///     plan 12.3us shards=2 pruned=2
  ///     shard[0] 512us algo=hybrid dom_tests=52342
  std::string Render() const;
};

/// Human-scaled duration: "840ns", "12.3us", "1.52ms", "2.041s".
std::string FormatSeconds(double seconds);

/// Single-threaded span recorder. Open/Close bracket a stage on the
/// recording thread; AddSpan backfills a span from timings measured
/// elsewhere (the parallel shard executors record wall times into their
/// result slots and the coordinator emits the spans afterwards).
class TraceBuilder {
 public:
  TraceBuilder();

  /// Seconds since the trace epoch.
  double Now() const;

  /// Record a complete span; returns its index for Attr calls.
  int AddSpan(std::string name, int parent, double start_seconds,
              double duration_seconds);
  /// Start a span now; Close stamps its duration.
  int Open(std::string name, int parent = -1);
  void Close(int span);

  void Attr(int span, std::string key, std::string value);
  void AttrCount(int span, std::string key, uint64_t value);

  /// Hand the trace off (the builder is spent afterwards).
  std::shared_ptr<const QueryTrace> Finish();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::shared_ptr<QueryTrace> trace_;
};

}  // namespace obs
}  // namespace sky

#endif  // SKY_OBS_TRACE_H_
