// Copyright (c) SkyBench-NG contributors.
// Fault-injection (failpoint) harness for the serving and mutation paths.
//
// A failpoint is a named site in the code — SKY_FAILPOINT("view_build")
// — that normally costs one relaxed atomic load. Arming a site (via the
// API, a CLI --failpoint flag, or the SKYBENCH_FAILPOINTS environment
// variable) makes the site throw, allocate-fail, error, or delay with a
// configurable probability, so tests can prove that every failure mode
// surfaces as a clean error Status or an exact answer — never a torn
// result. Probability draws are deterministic (a per-site counter fed
// through splitmix64), so a failing injection run replays exactly.
//
// Site catalog (kept current in README.md "Robust serving"):
//   view_build      materialising a constrained view (query/view.cc call)
//   zonemap_build   building the block zonemap index
//   shard_execute   per-shard algorithm run inside the fan-out
//   shard_repair    delta repair of one shard on insert/delete
//   merge_union     the M(S) union-then-filter merge stage
//   executor_task   every task the work-stealing executor runs
//   result_cache_put  admission of a finished result into the cache
#ifndef SKY_COMMON_FAILPOINT_H_
#define SKY_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace sky {

/// Thrown by a site armed in kError mode: the "clean, expected error"
/// injection (e.g. a failed I/O), distinct from kThrow's generic
/// runtime_error so tests can tell the two containment paths apart.
class FailPointError : public std::runtime_error {
 public:
  explicit FailPointError(const std::string& site)
      : std::runtime_error("failpoint '" + site + "': injected error"),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class FailPoints {
 public:
  enum class Mode : uint8_t {
    kThrow,     ///< throw std::runtime_error (an unexpected bug)
    kBadAlloc,  ///< throw std::bad_alloc (allocation failure)
    kError,     ///< throw FailPointError (an expected, typed failure)
    kDelay,     ///< sleep delay_ms (a slow dependency / page fault storm)
  };

  /// Process-wide registry. First use arms every spec found in the
  /// SKYBENCH_FAILPOINTS env var ("site:mode[:p[:delay_ms]]", comma
  /// separated), so injection works in any binary without plumbing.
  static FailPoints& Instance();

  /// Arm `site`. `probability` in [0,1] is the per-hit trip chance
  /// (clamped); `delay_ms` only matters for kDelay.
  void Arm(const std::string& site, Mode mode, double probability = 1.0,
           int delay_ms = 10);
  /// Arm from a "site:mode[:p[:delay_ms]]" spec. Returns false (and sets
  /// *error when non-null) on a malformed spec.
  bool ArmFromSpec(const std::string& spec, std::string* error = nullptr);
  void Disarm(const std::string& site);
  void DisarmAll();

  /// Times the site was reached / actually tripped since armed.
  uint64_t Hits(const std::string& site) const;
  uint64_t Trips(const std::string& site) const;
  std::vector<std::string> ArmedSites() const;

  static const char* ModeName(Mode mode);
  /// Parse "throw" / "bad_alloc" / "error" / "delay"; false on junk.
  static bool ParseMode(const std::string& name, Mode* mode);

  /// True when any site is armed — the only check on the fast path.
  bool armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path: look the site up and fire its configured behaviour.
  void Evaluate(const char* site);

 private:
  FailPoints();

  struct SiteState {
    Mode mode = Mode::kThrow;
    double probability = 1.0;
    int delay_ms = 10;
    uint64_t hits = 0;
    uint64_t trips = 0;
    uint64_t draws = 0;  // deterministic probability stream position
  };

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;  // guarded by mu_
};

/// The site marker. One relaxed load when nothing is armed.
inline void MaybeFailPoint(const char* site) {
  FailPoints& fp = FailPoints::Instance();
  if (fp.armed()) fp.Evaluate(site);
}

#define SKY_FAILPOINT(site) ::sky::MaybeFailPoint(site)

}  // namespace sky

#endif  // SKY_COMMON_FAILPOINT_H_
