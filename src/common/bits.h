// Copyright (c) SkyBench-NG contributors.
// Bit-twiddling helpers for partition masks and composite sort keys.
#ifndef SKY_COMMON_BITS_H_
#define SKY_COMMON_BITS_H_

#include <bit>
#include <cstdint>

#include "common/macros.h"
#include "common/types.h"

namespace sky {

/// Number of set bits ("level" of a partition mask in the paper: a point in
/// a higher level is worse than the pivot on more dimensions).
SKY_ALWAYS_INLINE int MaskLevel(Mask m) { return std::popcount(m); }

/// True iff a point carrying mask `a` may dominate a point carrying mask
/// `b` (both masks relative to the same pivot). This single subset test
/// captures both properties of paper §VI-A2:
///   * if `a` has a bit outside `b`, the `a`-point is worse than the pivot
///     on a dimension where the `b`-point is strictly better, so dominance
///     is impossible;
///   * level/mask inequalities quoted in the paper are corollaries.
/// Note `a == b` (same partition) returns true: dominance is possible.
SKY_ALWAYS_INLINE bool MaskMayDominate(Mask a, Mask b) {
  return (a & ~b) == 0;
}

/// Complement of MaskMayDominate, reading as the paper's Algorithm 3/4
/// guard "mask is not incomparable to q.m".
SKY_ALWAYS_INLINE bool MaskIncomparable(Mask a, Mask b) {
  return (a & ~b) != 0;
}

/// The all-ones mask for d dimensions: a point with this mask is
/// potentially dominated by the pivot.
SKY_ALWAYS_INLINE Mask FullMask(int d) {
  return (d >= 32) ? ~Mask{0} : ((Mask{1} << d) - 1);
}

/// Composite sort key from paper §VI-A3: K = (|m| << d) | m. Sorting by K
/// orders points by level first, then mask value, in one integer compare.
SKY_ALWAYS_INLINE uint32_t CompositeMaskKey(Mask m, int d) {
  return (static_cast<uint32_t>(MaskLevel(m)) << d) | m;
}

/// Recover the mask from a composite key.
SKY_ALWAYS_INLINE Mask KeyToMask(uint32_t key, int d) {
  return key & FullMask(d);
}

/// Recover the level from a composite key.
SKY_ALWAYS_INLINE int KeyToLevel(uint32_t key, int d) {
  return static_cast<int>(key >> d);
}

/// Total-order-preserving mapping from float to uint32: for any finite
/// a, b, a < b iff ToOrderedBits(a) < ToOrderedBits(b). Negative floats
/// have their bits flipped entirely (two's-complement-style reversal);
/// non-negatives get the sign bit set. Used to pack (composite key, L1
/// norm) into a single uint64 sort key — datasets may contain negative
/// coordinates (e.g. "larger is better" attributes loaded negated).
SKY_ALWAYS_INLINE uint32_t ToOrderedBits(float f) {
  const uint32_t u = std::bit_cast<uint32_t>(f);
  return (u & 0x80000000u) ? ~u : (u | 0x80000000u);
}

}  // namespace sky

#endif  // SKY_COMMON_BITS_H_
