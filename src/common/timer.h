// Copyright (c) SkyBench-NG contributors.
// Wall-clock timing utilities for phase breakdowns (paper Figs. 7 and 8).
#ifndef SKY_COMMON_TIMER_H_
#define SKY_COMMON_TIMER_H_

#include <chrono>

namespace sky {

/// Monotonic wall-clock timer with double-precision seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds elapsed, and restart in one call (for consecutive phases).
  double Lap() {
    const auto now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sky

#endif  // SKY_COMMON_TIMER_H_
