// Copyright (c) SkyBench-NG contributors.
// Cache-line / SIMD aligned buffer used for the point matrix.
#ifndef SKY_COMMON_ALIGNED_H_
#define SKY_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/macros.h"

namespace sky {

/// Minimal aligned array. std::vector cannot guarantee 32-byte alignment
/// pre-C++17 allocators portably, and we want zero-initialisation control.
template <typename T, size_t kAlign = 64>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t count) { Reset(count); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Free(); }

  /// Reallocate to hold `count` elements. Contents are zero-initialised;
  /// zero padding is load-bearing for the SIMD dominance kernels.
  void Reset(size_t count) {
    Free();
    if (count == 0) return;
    const size_t bytes = RoundUp(count * sizeof(T), kAlign);
    data_ = static_cast<T*>(std::aligned_alloc(kAlign, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    size_ = count;
    std::memset(static_cast<void*>(data_), 0, bytes);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) {
    SKY_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    SKY_DCHECK(i < size_);
    return data_[i];
  }

 private:
  static size_t RoundUp(size_t v, size_t a) { return (v + a - 1) / a * a; }

  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sky

#endif  // SKY_COMMON_ALIGNED_H_
