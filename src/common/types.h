// Copyright (c) SkyBench-NG contributors.
// Fundamental types shared by all skyline modules.
#ifndef SKY_COMMON_TYPES_H_
#define SKY_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace sky {

/// Value type of every dataset coordinate. The paper's SkyBench also uses
/// 32-bit floats so that 256-bit AVX registers hold 8 coordinates.
using Value = float;

/// Index of a point inside a Dataset (row number) or inside the original,
/// pre-sort order (original id).
using PointId = uint32_t;

/// A partition mask: bit i is set iff the point is >= the pivot on
/// dimension i (see Definition in paper §VI-A2). With d <= 16 dimensions a
/// 32-bit mask is ample; we keep 32 bits so the composite sort key
/// (level << d | mask) also fits comfortably.
using Mask = uint32_t;

/// Maximum supported dimensionality. The paper evaluates d in [4, 16].
inline constexpr int kMaxDims = 16;

/// SIMD register width in floats (AVX2: 8). Dataset rows are padded to a
/// multiple of this so vector kernels never touch foreign memory.
inline constexpr int kSimdWidth = 8;

/// Relationship between two points as determined by a two-way test.
enum class Relation : uint8_t {
  kIncomparable = 0,  ///< neither dominates the other (and not equal)
  kLeftDominates,     ///< p dominates q
  kRightDominates,    ///< q dominates p
  kEqual,             ///< coincident points (no dominance either way)
};

}  // namespace sky

#endif  // SKY_COMMON_TYPES_H_
