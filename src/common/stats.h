// Copyright (c) SkyBench-NG contributors.
// Run statistics: phase wall-times matching the paper's Figs. 7/8 stacked
// bars, plus dominance-test counters (the paper's central cost metric).
#ifndef SKY_COMMON_STATS_H_
#define SKY_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace sky {

/// Per-run statistics. Phase names follow the decomposition of paper
/// Figures 7 and 8: "Init." (L1 + sort), "Pre-filter", "Pivot",
/// "Phase I", "Phase II", "Compress", and "Other".
struct RunStats {
  double init_seconds = 0.0;       ///< L1 computation and sorting
  double prefilter_seconds = 0.0;  ///< Hybrid's priority-queue pre-filter
  double pivot_seconds = 0.0;      ///< pivot selection + partitioning
  double phase1_seconds = 0.0;     ///< comparisons against the global skyline
  double phase2_seconds = 0.0;     ///< comparisons against block peers
  double compress_seconds = 0.0;   ///< block compression + skyline append
  double other_seconds = 0.0;      ///< everything else (allocation, merge, ...)
  double total_seconds = 0.0;      ///< end-to-end wall time

  uint64_t dominance_tests = 0;    ///< full DTs executed (when counting is on)
  uint64_t mask_filter_hits = 0;   ///< DTs skipped via mask incomparability
  uint64_t prefiltered_points = 0; ///< points removed by the pre-filter
  uint64_t skyline_size = 0;       ///< |SKY(P)| of this run

  /// Sum of the named phases; total_seconds - Accounted() is reported as
  /// residual "Other" time by the harness.
  double Accounted() const {
    return init_seconds + prefilter_seconds + pivot_seconds + phase1_seconds +
           phase2_seconds + compress_seconds + other_seconds;
  }

  /// Human-readable one-line summary.
  std::string ToString() const;
};

/// Thread-safe dominance-test counter. Counting is optional: hot loops use
/// a thread-local cell and flush at synchronisation points, so the cost is
/// one relaxed add per phase per thread. When `enabled == false` all calls
/// are no-ops compiled down to a predictable branch.
class DtCounter {
 public:
  explicit DtCounter(bool enabled = false) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Add `n` dominance tests (called at flush points, not per test).
  void AddTests(uint64_t n) {
    if (enabled_) tests_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Add `n` mask-filter skips.
  void AddMaskSkips(uint64_t n) {
    if (enabled_) mask_skips_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t tests() const { return tests_.load(std::memory_order_relaxed); }
  uint64_t mask_skips() const {
    return mask_skips_.load(std::memory_order_relaxed);
  }

  void Reset() {
    tests_.store(0, std::memory_order_relaxed);
    mask_skips_.store(0, std::memory_order_relaxed);
  }

 private:
  bool enabled_;
  std::atomic<uint64_t> tests_{0};
  std::atomic<uint64_t> mask_skips_{0};
};

}  // namespace sky

#endif  // SKY_COMMON_STATS_H_
