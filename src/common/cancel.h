// Copyright (c) SkyBench-NG contributors.
// Deadline / cooperative-cancellation primitive for the serving path.
//
// A CancelToken is an arm-once flag plus an optional steady-clock
// deadline. Long-running loops poll it at block / tile boundaries
// (ShouldStop — one relaxed load on the fast path, a clock read only
// when a deadline is armed), so a computation overshoots its budget by
// at most one checkpoint granule. CheckIn() turns an observed stop
// request into a CancelledError, which unwinds the algorithm cleanly;
// the engine catches it at the query boundary and maps it to a Status.
// Tokens chain: a per-query token can point at a caller-owned parent so
// either side can stop the work.
#ifndef SKY_COMMON_CANCEL_H_
#define SKY_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace sky {

/// Outcome classification for the robust serving path. kOk results carry
/// answers; everything else is a clean refusal (the engine never returns
/// a torn result — see query/engine.h).
enum class Status : uint8_t {
  kOk = 0,
  kDeadlineExceeded,  ///< Options::deadline_ms elapsed mid-computation
  kCancelled,         ///< an external CancelToken fired
  kOverloaded,        ///< shed by admission control before any work ran
  kInternalError,     ///< a worker threw; contained, engine still serving
};

const char* StatusName(Status s);

/// Thrown from CancelToken::CheckIn() when a stop was requested. Crosses
/// at most the algorithm call stack: TaskGroup captures it on worker
/// threads and rethrows at join; SkylineEngine::Execute converts it to
/// QueryResult::status.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(Status reason);
  Status reason() const { return reason_; }

 private:
  Status reason_;
};

class CancelToken {
 public:
  /// Inert token: never stops unless Cancel() is called.
  CancelToken() = default;

  /// Token armed with a deadline `deadline_ms` from now. <= 0 arms
  /// nothing (same as the default constructor).
  explicit CancelToken(double deadline_ms);

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request a stop. First caller's reason wins; later calls are no-ops.
  /// Safe from any thread; const so worker code holding a `const
  /// CancelToken*` can trip it (the flag is logically external state).
  void Cancel(Status reason = Status::kCancelled) const;

  /// True once a stop was requested (directly, via deadline expiry, or
  /// through the parent). Deadline expiry is latched on first
  /// observation so subsequent calls are one relaxed load.
  bool ShouldStop() const;

  /// Throws CancelledError if ShouldStop(). The checkpoint call.
  void CheckIn() const;

  /// Why the token stopped; kOk while still running.
  Status reason() const;

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Chain to a caller-owned token (not owned; must outlive this). A
  /// parent stop is latched into this token on first observation.
  void set_parent(const CancelToken* parent) { parent_ = parent; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<uint8_t> reason_{static_cast<uint8_t>(Status::kOk)};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

/// Null-tolerant checkpoint helpers so call sites stay one-liners and
/// cost nothing when no token is threaded through Options.
inline bool ShouldStop(const CancelToken* token) {
  return token != nullptr && token->ShouldStop();
}
inline void CheckCancel(const CancelToken* token) {
  if (token != nullptr) token->CheckIn();
}

}  // namespace sky

#endif  // SKY_COMMON_CANCEL_H_
