// Copyright (c) SkyBench-NG contributors.
#include "common/stats.h"

#include <cstdio>

namespace sky {

std::string RunStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "total=%.4fs init=%.4f prefilter=%.4f pivot=%.4f p1=%.4f p2=%.4f "
      "compress=%.4f other=%.4f |sky|=%llu dts=%llu mask_skips=%llu",
      total_seconds, init_seconds, prefilter_seconds, pivot_seconds,
      phase1_seconds, phase2_seconds, compress_seconds, other_seconds,
      static_cast<unsigned long long>(skyline_size),
      static_cast<unsigned long long>(dominance_tests),
      static_cast<unsigned long long>(mask_filter_hits));
  return buf;
}

}  // namespace sky
