// Copyright (c) SkyBench-NG contributors.
#include "common/cancel.h"

#include <string>

namespace sky {

const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kCancelled:
      return "cancelled";
    case Status::kOverloaded:
      return "overloaded";
    case Status::kInternalError:
      return "internal_error";
  }
  return "unknown";
}

CancelledError::CancelledError(Status reason)
    : std::runtime_error(std::string("computation stopped: ") +
                         StatusName(reason)),
      reason_(reason) {}

CancelToken::CancelToken(double deadline_ms) {
  if (deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));
  }
}

void CancelToken::Cancel(Status reason) const {
  // First reason wins: the CAS keeps a later deadline observation from
  // overwriting an explicit Cancel (or vice versa).
  uint8_t expected = static_cast<uint8_t>(Status::kOk);
  reason_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                  std::memory_order_relaxed,
                                  std::memory_order_relaxed);
  cancelled_.store(true, std::memory_order_release);
}

bool CancelToken::ShouldStop() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  if (has_deadline_ &&
      std::chrono::steady_clock::now() >= deadline_) {
    Cancel(Status::kDeadlineExceeded);
    return true;
  }
  if (parent_ != nullptr && parent_->ShouldStop()) {
    Cancel(parent_->reason());
    return true;
  }
  return false;
}

void CancelToken::CheckIn() const {
  if (ShouldStop()) throw CancelledError(reason());
}

Status CancelToken::reason() const {
  if (!cancelled_.load(std::memory_order_acquire)) return Status::kOk;
  const Status r = static_cast<Status>(reason_.load(std::memory_order_relaxed));
  // Cancel() publishes the flag after the CAS, so a racing reader that
  // sees the flag but an unwritten reason cannot happen; kOk here would
  // mean Cancel(kOk), which we normalise to kCancelled.
  return r == Status::kOk ? Status::kCancelled : r;
}

}  // namespace sky
