// Copyright (c) SkyBench-NG contributors.
// Deterministic, fast pseudo-random generators used by the synthetic data
// generators and tests. We avoid <random> engines in hot paths: the classic
// skyline generator needs billions of draws for paper-scale datasets.
#ifndef SKY_COMMON_RANDOM_H_
#define SKY_COMMON_RANDOM_H_

#include <cstdint>

#include "common/macros.h"

namespace sky {

/// SplitMix64: used to seed and for one-off hashing of seeds.
SKY_ALWAYS_INLINE uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Deterministic across platforms, cheap, and each
/// instance is independent, so parallel generation can give one stream per
/// thread without locking.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform value in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n) {
    SKY_DCHECK(n > 0);
    // Lemire's multiply-shift rejection-free variant is overkill here; the
    // generators are not adversarial. Simple modulo bias is acceptable for
    // n << 2^64 but we use 128-bit multiply to keep distributions clean.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  /// Approximate standard normal via sum of 12 uniforms minus 6
  /// (Irwin-Hall). Matches the quality used by the classic skyline data
  /// generator and is branch-free.
  double NextNormalish() {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += NextDouble();
    return acc - 6.0;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace sky

#endif  // SKY_COMMON_RANDOM_H_
