// Copyright (c) SkyBench-NG contributors.
// Small portability and diagnostics macros shared by all modules.
#ifndef SKY_COMMON_MACROS_H_
#define SKY_COMMON_MACROS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define SKY_LIKELY(x) __builtin_expect(!!(x), 1)
#define SKY_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define SKY_ALWAYS_INLINE inline __attribute__((always_inline))
#define SKY_NOINLINE __attribute__((noinline))
#define SKY_RESTRICT __restrict__
#else
#define SKY_LIKELY(x) (x)
#define SKY_UNLIKELY(x) (x)
#define SKY_ALWAYS_INLINE inline
#define SKY_NOINLINE
#define SKY_RESTRICT
#endif

// Debug-only assertion; compiled out in release builds.
#define SKY_DCHECK(cond) assert(cond)

// Always-on invariant check. Used on cheap, load-bearing invariants whose
// violation would silently corrupt results (e.g. partition bounds).
#define SKY_CHECK(cond)                                                     \
  do {                                                                      \
    if (SKY_UNLIKELY(!(cond))) {                                            \
      std::fprintf(stderr, "SKY_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // SKY_COMMON_MACROS_H_
