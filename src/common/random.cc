// Copyright (c) SkyBench-NG contributors.
#include "common/random.h"

// Header-only today; this translation unit anchors the module and keeps the
// build graph stable if out-of-line helpers are added later.
