// Copyright (c) SkyBench-NG contributors.
#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

namespace sky {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

FailPoints::FailPoints() {
  const char* env = std::getenv("SKYBENCH_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string specs(env);
  size_t start = 0;
  while (start <= specs.size()) {
    size_t comma = specs.find(',', start);
    if (comma == std::string::npos) comma = specs.size();
    const std::string one = specs.substr(start, comma - start);
    if (!one.empty()) ArmFromSpec(one);  // malformed env specs are ignored
    start = comma + 1;
  }
}

const char* FailPoints::ModeName(Mode mode) {
  switch (mode) {
    case Mode::kThrow:
      return "throw";
    case Mode::kBadAlloc:
      return "bad_alloc";
    case Mode::kError:
      return "error";
    case Mode::kDelay:
      return "delay";
  }
  return "unknown";
}

bool FailPoints::ParseMode(const std::string& name, Mode* mode) {
  if (name == "throw") {
    *mode = Mode::kThrow;
  } else if (name == "bad_alloc" || name == "badalloc" || name == "oom") {
    *mode = Mode::kBadAlloc;
  } else if (name == "error") {
    *mode = Mode::kError;
  } else if (name == "delay") {
    *mode = Mode::kDelay;
  } else {
    return false;
  }
  return true;
}

void FailPoints::Arm(const std::string& site, Mode mode, double probability,
                     int delay_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.try_emplace(site);
  it->second.mode = mode;
  it->second.probability = std::clamp(probability, 0.0, 1.0);
  it->second.delay_ms = std::max(0, delay_ms);
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

bool FailPoints::ArmFromSpec(const std::string& spec, std::string* error) {
  // site:mode[:p[:delay_ms]]
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t colon = spec.find(':', start);
    if (colon == std::string::npos) colon = spec.size();
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (parts.size() < 2 || parts.size() > 4 || parts[0].empty()) {
    return fail("expected site:mode[:p[:delay_ms]], got '" + spec + "'");
  }
  Mode mode;
  if (!ParseMode(parts[1], &mode)) {
    return fail("unknown failpoint mode '" + parts[1] +
                "' (throw|bad_alloc|error|delay)");
  }
  double probability = 1.0;
  int delay_ms = 10;
  try {
    if (parts.size() >= 3 && !parts[2].empty()) {
      size_t used = 0;
      probability = std::stod(parts[2], &used);
      if (used != parts[2].size()) throw std::invalid_argument(parts[2]);
    }
    if (parts.size() == 4 && !parts[3].empty()) {
      size_t used = 0;
      delay_ms = std::stoi(parts[3], &used);
      if (used != parts[3].size()) throw std::invalid_argument(parts[3]);
    }
  } catch (const std::exception&) {
    return fail("bad probability/delay in failpoint spec '" + spec + "'");
  }
  if (probability < 0.0 || probability > 1.0) {
    return fail("failpoint probability must be in [0,1]: '" + spec + "'");
  }
  Arm(parts[0], mode, probability, delay_ms);
  return true;
}

void FailPoints::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(site) != 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(sites_.size()),
                         std::memory_order_relaxed);
  sites_.clear();
}

uint64_t FailPoints::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FailPoints::Trips(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.trips;
}

std::vector<std::string> FailPoints::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [site, state] : sites_) out.push_back(site);
  std::sort(out.begin(), out.end());
  return out;
}

void FailPoints::Evaluate(const char* site) {
  Mode mode;
  int delay_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return;
    SiteState& s = it->second;
    ++s.hits;
    if (s.probability < 1.0) {
      // Deterministic per-site stream: replaying a run trips the same
      // hits in the same order regardless of thread interleaving of
      // *other* sites.
      const uint64_t draw = SplitMix64(s.draws++);
      const double u =
          static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
      if (u >= s.probability) return;
    }
    ++s.trips;
    mode = s.mode;
    delay_ms = s.delay_ms;
  }
  switch (mode) {
    case Mode::kThrow:
      throw std::runtime_error(std::string("failpoint '") + site +
                               "': injected throw");
    case Mode::kBadAlloc:
      throw std::bad_alloc();
    case Mode::kError:
      throw FailPointError(site);
    case Mode::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return;
  }
}

}  // namespace sky
