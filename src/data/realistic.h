// Copyright (c) SkyBench-NG contributors.
// Synthetic stand-ins for the paper's real datasets (Table I). The
// originals (NBA, House, Weather) are not redistributable; these
// generators match their cardinality, dimensionality, heavy value
// duplication (the "distinct value condition" fails, which is what
// Table II tests) and approximate skyline fraction. See DESIGN.md §4.
#ifndef SKY_DATA_REALISTIC_H_
#define SKY_DATA_REALISTIC_H_

#include <cstdint>

#include "data/dataset.h"

namespace sky {

/// NBA-like: 17,264 x 8 player-season stat lines. Quantised box-score
/// style values with many ties; skyline ~10% of input.
Dataset GenerateNbaLike(uint64_t seed = 7);

/// House-like: 127,931 x 6 household expenditure values. Integer dollar
/// amounts (heavy duplication); mildly anticorrelated mixture tuned to a
/// ~4-5% skyline.
Dataset GenerateHouseLike(uint64_t seed = 7);

/// Weather-like: 566,268 x 15 coarsely quantised meteorological readings;
/// skyline ~11% of input.
Dataset GenerateWeatherLike(uint64_t seed = 7);

/// Scaled-down variants (same structure, smaller n) for tests.
Dataset GenerateNbaLike(size_t count, uint64_t seed);
Dataset GenerateHouseLike(size_t count, uint64_t seed);
Dataset GenerateWeatherLike(size_t count, uint64_t seed);

}  // namespace sky

#endif  // SKY_DATA_REALISTIC_H_
