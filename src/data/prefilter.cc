// Copyright (c) SkyBench-NG contributors.
#include "data/prefilter.h"

#include <algorithm>
#include <vector>

namespace sky {

namespace {

/// Fixed-capacity max-heap (by L1) of candidate filter points.
struct FilterHeap {
  struct Entry {
    float l1;
    uint32_t idx;
    bool operator<(const Entry& o) const { return l1 < o.l1; }
  };
  std::vector<Entry> heap;
  size_t cap;

  explicit FilterHeap(size_t beta) : cap(beta) { heap.reserve(beta); }

  bool WouldAccept(float l1) const {
    return heap.size() < cap || l1 < heap.front().l1;
  }

  void Insert(float l1, uint32_t idx) {
    if (heap.size() < cap) {
      heap.push_back({l1, idx});
      std::push_heap(heap.begin(), heap.end());
    } else {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {l1, idx};
      std::push_heap(heap.begin(), heap.end());
    }
  }
};

}  // namespace

size_t Prefilter(WorkingSet& ws, ThreadPool& pool, int beta,
                 const DomCtx& dom, DtCounter* counter) {
  const size_t n = ws.count;
  if (n == 0 || beta <= 0) return 0;
  SKY_DCHECK(ws.l1.size() == n);

  const int t = pool.threads();
  std::vector<uint8_t> flagged(n, 0);
  std::vector<FilterHeap> heaps(static_cast<size_t>(t),
                                FilterHeap(static_cast<size_t>(beta)));
  std::vector<uint64_t> dts(static_cast<size_t>(t), 0);

  // Pass 1: per-worker heaps of smallest-L1 points; everything else is
  // tested against the worker's current heap.
  pool.ParallelForStatic(n, [&](size_t b, size_t e, int w) {
    FilterHeap& heap = heaps[static_cast<size_t>(w)];
    uint64_t local_dts = 0;
    for (size_t i = b; i < e; ++i) {
      if (heap.WouldAccept(ws.l1[i])) {
        heap.Insert(ws.l1[i], static_cast<uint32_t>(i));
        continue;
      }
      for (const auto& entry : heap.heap) {
        ++local_dts;
        if (dom.Dominates(ws.Row(entry.idx), ws.Row(i))) {
          flagged[i] = 1;
          break;
        }
      }
    }
    dts[static_cast<size_t>(w)] += local_dts;
  });

  // Pass 2: every surviving point against the union of all heaps.
  pool.ParallelForStatic(n, [&](size_t b, size_t e, int w) {
    uint64_t local_dts = 0;
    for (size_t i = b; i < e; ++i) {
      if (flagged[i]) continue;
      for (const auto& heap : heaps) {
        for (const auto& entry : heap.heap) {
          if (entry.idx == i) continue;
          ++local_dts;
          if (dom.Dominates(ws.Row(entry.idx), ws.Row(i))) {
            flagged[i] = 1;
            break;
          }
        }
        if (flagged[i]) break;
      }
    }
    dts[static_cast<size_t>(w)] += local_dts;
  });

  if (counter != nullptr) {
    uint64_t total = 0;
    for (uint64_t v : dts) total += v;
    counter->AddTests(total);
  }

  const size_t kept = ws.CompressRange(0, n, flagged.data());
  ws.count = kept;
  ws.ids.resize(kept);
  ws.l1.resize(kept);
  if (!ws.masks.empty()) ws.masks.resize(kept);
  return n - kept;
}

}  // namespace sky
