// Copyright (c) SkyBench-NG contributors.
// Immutable input container for skyline computation: an n x d matrix of
// float coordinates, row-major, with rows padded to the SIMD width.
#ifndef SKY_DATA_DATASET_H_
#define SKY_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"

namespace sky {

/// A dataset of `count` points over `dims` ordinal dimensions. Smaller
/// values are preferred on every dimension (paper convention; invert signs
/// for "larger is better" attributes before loading).
///
/// Rows are padded with zeros to a multiple of kSimdWidth floats and the
/// backing store is 64-byte aligned, so all dominance kernels can use
/// aligned vector loads. Algorithms never mutate a Dataset; each run copies
/// it into a private WorkingSet it is free to permute.
class Dataset {
 public:
  Dataset() = default;

  /// Allocate an uninitialised (zeroed) dataset.
  Dataset(int dims, size_t count);

  /// Build from densely packed row-major values (count*dims floats).
  static Dataset FromRowMajor(int dims, const std::vector<Value>& values);

  /// Deep copy. Datasets are normally shared immutably (the engine hands
  /// out shared_ptrs); cloning is explicit so accidental copies can't
  /// happen silently.
  Dataset Clone() const;

  /// Parse a CSV of numeric columns (no header detection: lines starting
  /// with '#' are skipped). Throws std::runtime_error on malformed input.
  static Dataset LoadCsv(const std::string& path);

  /// Write as CSV (only real dimensions, not padding).
  void SaveCsv(const std::string& path) const;

  /// Compact binary format: magic, dims, count, then raw padded rows.
  static Dataset LoadBinary(const std::string& path);
  void SaveBinary(const std::string& path) const;

  /// True when `path` is readable and starts with the binary-snapshot
  /// magic — format auto-detection without trusting file extensions.
  static bool SniffBinary(const std::string& path);

  int dims() const { return dims_; }
  size_t count() const { return count_; }
  /// Padded row stride in floats (multiple of kSimdWidth).
  int stride() const { return stride_; }
  bool empty() const { return count_ == 0; }

  const Value* Row(size_t i) const {
    SKY_DCHECK(i < count_);
    return rows_.data() + i * static_cast<size_t>(stride_);
  }
  Value* MutableRow(size_t i) {
    SKY_DCHECK(i < count_);
    return rows_.data() + i * static_cast<size_t>(stride_);
  }

  /// Column-wise minima / maxima over real dimensions (empty for an empty
  /// dataset). Used for pivot normalisation.
  std::vector<Value> MinPerDim() const;
  std::vector<Value> MaxPerDim() const;

  /// Padded stride for a dimensionality.
  static int StrideFor(int dims);

 private:
  int dims_ = 0;
  int stride_ = 0;
  size_t count_ = 0;
  AlignedBuffer<Value> rows_;
};

}  // namespace sky

#endif  // SKY_DATA_DATASET_H_
