// Copyright (c) SkyBench-NG contributors.
// Mutable per-run copy of a Dataset that algorithms are free to permute,
// annotate (L1 norms, partition masks) and compact. Keeping original ids
// alongside the rows lets every algorithm report results as indices into
// the caller's Dataset regardless of internal reordering.
#ifndef SKY_DATA_WORKING_SET_H_
#define SKY_DATA_WORKING_SET_H_

#include <cstring>
#include <vector>

#include "common/aligned.h"
#include "common/types.h"
#include "data/dataset.h"
#include "parallel/thread_pool.h"

namespace sky {

struct WorkingSet {
  int dims = 0;
  int stride = 0;
  size_t count = 0;
  AlignedBuffer<Value> rows;   ///< count * stride floats, zero padded
  std::vector<PointId> ids;    ///< original Dataset row of each point
  std::vector<float> l1;       ///< Manhattan norms (after ComputeL1)
  std::vector<Mask> masks;     ///< level-1 partition masks (after AssignMasks)

  /// Deep-copy the dataset. O(n d) and parallelised.
  static WorkingSet FromDataset(const Dataset& data, ThreadPool& pool);

  const Value* Row(size_t i) const {
    SKY_DCHECK(i < count);
    return rows.data() + i * static_cast<size_t>(stride);
  }
  Value* MutableRow(size_t i) {
    SKY_DCHECK(i < count);
    return rows.data() + i * static_cast<size_t>(stride);
  }

  /// Fill `l1` with Manhattan norms, in parallel ("Init." phase of the
  /// paper's Fig. 7/8 decomposition).
  void ComputeL1(ThreadPool& pool);

  /// Reorder rows/ids/l1/masks so that new position k holds old element
  /// order[k]. `order` must be a permutation of [0, count).
  void PermuteBy(const std::vector<uint32_t>& order);

  /// Remove every point i in [begin, end) with flags[i - begin] != 0 by
  /// shifting survivors left within the range (the paper's "compression",
  /// §V-D). Points outside the range are untouched. Returns the number of
  /// survivors; they occupy [begin, begin + survivors) contiguously.
  size_t CompressRange(size_t begin, size_t end, const uint8_t* flags);

  /// In-place copy of a row (used by compression).
  void MoveRow(size_t dst, size_t src);
};

}  // namespace sky

#endif  // SKY_DATA_WORKING_SET_H_
