// Copyright (c) SkyBench-NG contributors.
#include "data/partition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/random.h"

namespace sky {

const char* PivotPolicyName(PivotPolicy policy) {
  switch (policy) {
    case PivotPolicy::kMedian:
      return "median";
    case PivotPolicy::kBalanced:
      return "balanced";
    case PivotPolicy::kManhattan:
      return "manhattan";
    case PivotPolicy::kVolume:
      return "volume";
    case PivotPolicy::kRandom:
      return "random";
  }
  return "?";
}

PivotPolicy ParsePivotPolicy(const std::string& name) {
  if (name == "median") return PivotPolicy::kMedian;
  if (name == "balanced") return PivotPolicy::kBalanced;
  if (name == "manhattan") return PivotPolicy::kManhattan;
  if (name == "volume") return PivotPolicy::kVolume;
  if (name == "random") return PivotPolicy::kRandom;
  throw std::invalid_argument("unknown pivot policy: " + name);
}

namespace {

std::vector<Value> PaddedCopy(const WorkingSet& ws, const Value* row) {
  std::vector<Value> out(static_cast<size_t>(ws.stride), 0.0f);
  std::copy(row, row + ws.dims, out.begin());
  return out;
}

std::vector<Value> MedianPivot(const WorkingSet& ws, ThreadPool& pool) {
  // Per-dimension medians, computed exactly via nth_element on a column
  // copy; dimensions are independent so they parallelise trivially.
  std::vector<Value> pivot(static_cast<size_t>(ws.stride), 0.0f);
  pool.ParallelFor(static_cast<size_t>(ws.dims), 1, [&](size_t b, size_t e) {
    std::vector<Value> column(ws.count);
    for (size_t dim = b; dim < e; ++dim) {
      for (size_t i = 0; i < ws.count; ++i) {
        column[i] = ws.Row(i)[dim];
      }
      auto mid = column.begin() + static_cast<ptrdiff_t>(ws.count / 2);
      std::nth_element(column.begin(), mid, column.end());
      pivot[dim] = *mid;
    }
  });
  return pivot;
}

std::vector<Value> ManhattanPivot(const WorkingSet& ws) {
  SKY_DCHECK(ws.l1.size() == ws.count);
  size_t best = 0;
  for (size_t i = 1; i < ws.count; ++i) {
    if (ws.l1[i] < ws.l1[best]) best = i;
  }
  return PaddedCopy(ws, ws.Row(best));
}

std::vector<Value> VolumePivot(const WorkingSet& ws) {
  // Paper (Fig. 9, after SaLSa [2]): the point with maximum coordinate
  // product. Products are computed in log space for stability; values are
  // shifted by the per-dimension minimum so negative coordinates (e.g.
  // negated "larger is better" attributes) stay in the log domain.
  std::vector<double> shift(static_cast<size_t>(ws.dims), 0.0);
  for (size_t i = 0; i < ws.count; ++i) {
    const Value* r = ws.Row(i);
    for (int j = 0; j < ws.dims; ++j) {
      shift[static_cast<size_t>(j)] =
          std::min(shift[static_cast<size_t>(j)], static_cast<double>(r[j]));
    }
  }
  size_t best = 0;
  double best_log = -1e300;
  for (size_t i = 0; i < ws.count; ++i) {
    const Value* r = ws.Row(i);
    double acc = 0.0;
    for (int j = 0; j < ws.dims; ++j) {
      acc += std::log(static_cast<double>(r[j]) -
                      shift[static_cast<size_t>(j)] + 1e-9);
    }
    if (acc > best_log) {
      best_log = acc;
      best = i;
    }
  }
  return PaddedCopy(ws, ws.Row(best));
}

/// One-way replacement scan: start from `start`, replace the candidate
/// whenever a point dominates it. Terminates at a skyline point (the
/// replacement chain strictly decreases in the dominance order).
size_t SkylinePointScan(const WorkingSet& ws, const DomCtx& dom,
                        size_t start) {
  size_t cand = start;
  for (size_t i = 0; i < ws.count; ++i) {
    if (i == cand) continue;
    if (dom.Dominates(ws.Row(i), ws.Row(cand))) cand = i;
  }
  return cand;
}

std::vector<Value> RandomPivot(const WorkingSet& ws, const DomCtx& dom,
                               uint64_t seed) {
  Rng rng(seed);
  const size_t start = static_cast<size_t>(rng.NextBounded(ws.count));
  return PaddedCopy(ws, ws.Row(SkylinePointScan(ws, dom, start)));
}

std::vector<Value> BalancedPivot(const WorkingSet& ws, const DomCtx& dom) {
  // Min-max normalised range: range(p) = max_i p̂[i] - min_i p̂[i]. Small
  // range means the point sits near the "diagonal" of the data and splits
  // all dimensions evenly — Lee & Hwang's balanced criterion [15].
  std::vector<Value> lo(static_cast<size_t>(ws.dims));
  std::vector<Value> hi(static_cast<size_t>(ws.dims));
  for (int j = 0; j < ws.dims; ++j) {
    lo[static_cast<size_t>(j)] = ws.Row(0)[j];
    hi[static_cast<size_t>(j)] = ws.Row(0)[j];
  }
  for (size_t i = 1; i < ws.count; ++i) {
    const Value* r = ws.Row(i);
    for (int j = 0; j < ws.dims; ++j) {
      lo[static_cast<size_t>(j)] = std::min(lo[static_cast<size_t>(j)], r[j]);
      hi[static_cast<size_t>(j)] = std::max(hi[static_cast<size_t>(j)], r[j]);
    }
  }
  auto range_of = [&](size_t i) {
    const Value* r = ws.Row(i);
    float mn = 1e30f, mx = -1e30f;
    for (int j = 0; j < ws.dims; ++j) {
      const float span =
          hi[static_cast<size_t>(j)] - lo[static_cast<size_t>(j)];
      const float norm =
          span > 0 ? (r[j] - lo[static_cast<size_t>(j)]) / span : 0.0f;
      mn = std::min(mn, norm);
      mx = std::max(mx, norm);
    }
    return mx - mn;
  };
  // Greedy scan preferring dominators, then smaller range; a final
  // replacement pass repairs any non-skyline choice the greedy scan can
  // make (range-based replacement does not preserve skyline membership).
  size_t cand = 0;
  float cand_range = range_of(0);
  for (size_t i = 1; i < ws.count; ++i) {
    if (dom.Dominates(ws.Row(i), ws.Row(cand))) {
      cand = i;
      cand_range = range_of(i);
    } else if (!dom.Dominates(ws.Row(cand), ws.Row(i))) {
      const float r = range_of(i);
      if (r < cand_range) {
        cand = i;
        cand_range = r;
      }
    }
  }
  return PaddedCopy(ws, ws.Row(SkylinePointScan(ws, dom, cand)));
}

}  // namespace

std::vector<Value> SelectPivot(const WorkingSet& ws, PivotPolicy policy,
                               ThreadPool& pool, uint64_t seed) {
  SKY_CHECK(ws.count > 0);
  DomCtx dom(ws.dims, ws.stride, /*use_simd=*/true);
  switch (policy) {
    case PivotPolicy::kMedian:
      return MedianPivot(ws, pool);
    case PivotPolicy::kBalanced:
      return BalancedPivot(ws, dom);
    case PivotPolicy::kManhattan:
      return ManhattanPivot(ws);
    case PivotPolicy::kVolume:
      return VolumePivot(ws);
    case PivotPolicy::kRandom:
      return RandomPivot(ws, dom, seed);
  }
  return MedianPivot(ws, pool);
}

void AssignMasks(WorkingSet& ws, const Value* pivot, const DomCtx& dom,
                 ThreadPool& pool) {
  ws.masks.resize(ws.count);
  pool.ParallelForStatic(ws.count, [&](size_t b, size_t e, int) {
    for (size_t i = b; i < e; ++i) {
      ws.masks[i] = dom.PartitionMask(ws.Row(i), pivot);
    }
  });
}

}  // namespace sky
