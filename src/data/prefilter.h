// Copyright (c) SkyBench-NG contributors.
// Hybrid's pre-filter (paper §VI-A1): cheaply discard points that are
// dominated by one of a handful of "strong" low-L1 points before the
// heavier initialisation work (pivot selection, sorting).
#ifndef SKY_DATA_PREFILTER_H_
#define SKY_DATA_PREFILTER_H_

#include <cstddef>

#include "common/stats.h"
#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

/// Two parallel passes over `ws` (whose l1 must be computed):
///  1. each worker scans a contiguous chunk keeping a max-heap of the
///     `beta` points with smallest L1 norm it has seen; every other point
///     is tested against the heap's points and flagged if dominated;
///  2. every point is tested against the union of all workers' heaps.
/// Flagged points are then compacted away. Returns the number removed.
/// beta = 8 follows the paper's empirical setting.
size_t Prefilter(WorkingSet& ws, ThreadPool& pool, int beta,
                 const DomCtx& dom, DtCounter* counter);

}  // namespace sky

#endif  // SKY_DATA_PREFILTER_H_
