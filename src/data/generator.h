// Copyright (c) SkyBench-NG contributors.
// Synthetic workload generator reimplementing the standard skyline data
// generator of Börzsönyi et al. [ICDE 2001], used by the paper (§VII-A3)
// to produce correlated, independent and anticorrelated datasets over
// [0, 1)^d.
#ifndef SKY_DATA_GENERATOR_H_
#define SKY_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace sky {

enum class Distribution : uint8_t {
  kCorrelated,     ///< coordinates cluster around the diagonal; tiny skyline
  kIndependent,    ///< uniform iid coordinates; moderate skyline
  kAnticorrelated, ///< points spread along a constant-sum plane; huge skyline
};

/// Short name used in tables ("corr", "indep", "anti").
const char* DistributionName(Distribution dist);

/// Parse "corr"/"indep"/"anti" (also accepts full names). Throws on junk.
Distribution ParseDistribution(const std::string& name);

/// Generate `count` points over `dims` dimensions. Deterministic in
/// (dist, count, dims, seed) and independent of thread count: each point is
/// derived from a per-index hashed substream.
Dataset GenerateSynthetic(Distribution dist, size_t count, int dims,
                          uint64_t seed);

}  // namespace sky

#endif  // SKY_DATA_GENERATOR_H_
