// Copyright (c) SkyBench-NG contributors.
// Dataset statistics sketch: the compact, sample-based summary the cost
// model (query/cost_model.h) selects algorithms from. A sketch is built
// once per dataset (and once per shard) at registration time and answers
// three questions cheaply at plan time:
//   shape        n, d, per-dimension min/max/mean/variance,
//   correlation  the mean sampled Spearman rank correlation across
//                dimension pairs (negative = anticorrelated = big
//                skylines, positive = correlated = tiny skylines),
//   cardinality  a log-sampling skyline estimate: exact skylines of two
//                log-spaced subsamples fit a power law m(n) ~ c * n^b
//                that extrapolates to the full cardinality,
// plus a per-dimension quantile sample that estimates the selectivity of
// a box constraint without touching the data.
#ifndef SKY_DATA_SKETCH_H_
#define SKY_DATA_SKETCH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace sky {

/// Sample-based moments of one dimension. NaN coordinates are excluded
/// (they can never satisfy a constraint nor win a dominance test).
struct DimStats {
  Value min = 0;
  Value max = 0;
  double mean = 0.0;
  double variance = 0.0;
};

struct StatsSketch {
  size_t n = 0;  ///< exact row count of the sketched data
  int d = 0;     ///< exact dimensionality

  std::vector<DimStats> dims;  ///< one entry per dimension

  /// Mean Spearman rank correlation over all dimension pairs of a small
  /// row sample, in [-1, 1]. 0 when d < 2 or the sample is degenerate.
  double mean_spearman = 0.0;

  /// Estimated |SKY| of the full data (log-sampling power-law fit).
  double est_skyline = 1.0;

  /// Fitted growth exponent b of m(n) ~ c * n^b, clamped to [0, 1].
  double growth_exponent = 0.0;

  /// Per-dimension sorted value sample (NaN-free) for selectivity
  /// estimation; empty for an empty dataset.
  std::vector<std::vector<Value>> quantiles;

  /// Rows inserted or deleted since the last exact ComputeSketch. The
  /// incremental updates below keep n exact and the moments close, but
  /// quantiles and correlation drift — StaleFraction() is the drift
  /// bound the cost model damps its estimates by.
  uint64_t mutated_rows = 0;

  /// Mutated fraction of the current row count, in [0, 1].
  double StaleFraction() const {
    if (n == 0) return mutated_rows == 0 ? 0.0 : 1.0;
    const double f =
        static_cast<double>(mutated_rows) / static_cast<double>(n);
    return f > 1.0 ? 1.0 : f;
  }

  /// Fraction of rows whose dimension `dim` falls in [lo, hi] (closed),
  /// estimated from the quantile sample. Returns 1.0 when the sketch is
  /// empty or `dim` is out of range (never prunes on ignorance).
  double EstimateIntervalSelectivity(int dim, Value lo, Value hi) const;

  /// Rescale the skyline estimate to a subset of n_eff rows using the
  /// fitted power law. Clamped to [1, n_eff].
  double EstimateSkylineAt(double n_eff) const;
};

/// Build the sketch of `data`. Deterministic in (data, seed); cost is
/// O(sample) — bounded regardless of n — so it is safe to run inside
/// every RegisterDataset / ShardMap::Build.
StatsSketch ComputeSketch(const Dataset& data, uint64_t seed = 42);

/// Fold `count` inserted AoS rows (`stride` floats apart, first of them
/// at `rows`) into the sketch without a rebuild: n is exact, per-
/// dimension min/max grow exactly, mean/variance merge by weight, and
/// est_skyline is rescaled to the new n along the fitted power law.
/// Quantiles and the Spearman estimate keep their last sampled values —
/// mutated_rows records the drift for StaleFraction().
void UpdateSketchOnInsert(StatsSketch& sketch, const Value* rows, int stride,
                          size_t count);

/// Account `count` deleted rows: n shrinks exactly and est_skyline is
/// rescaled down the power law; min/max/moments are left unchanged
/// (conservative — a deletion can only narrow the true range).
void UpdateSketchOnDelete(StatsSketch& sketch, size_t count);

/// True once the accumulated mutation drift (StaleFraction) crosses the
/// rebuild threshold — callers should then re-run ComputeSketch exactly.
bool SketchNeedsRebuild(const StatsSketch& sketch);

}  // namespace sky

#endif  // SKY_DATA_SKETCH_H_
