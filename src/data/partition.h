// Copyright (c) SkyBench-NG contributors.
// Pivot selection policies (paper §VI-A2, evaluated in Fig. 9) and
// partition-mask assignment.
#ifndef SKY_DATA_PARTITION_H_
#define SKY_DATA_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/working_set.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"

namespace sky {

enum class PivotPolicy : uint8_t {
  kMedian,     ///< virtual point of per-dimension medians (paper default)
  kBalanced,   ///< skyline point with minimum normalised range [15]
  kManhattan,  ///< point with minimum L1 norm [9]
  kVolume,     ///< point with maximum coordinate product [2]
  kRandom,     ///< random skyline point via one-way DT replacement [23]
};

const char* PivotPolicyName(PivotPolicy policy);
PivotPolicy ParsePivotPolicy(const std::string& name);

/// Compute the pivot vector for `ws` under `policy`. Returned vector has
/// `ws.stride` entries (zero padded) so it can feed SIMD mask kernels.
/// `seed` drives kRandom. Requires ws.l1 for kManhattan/kBalanced.
std::vector<Value> SelectPivot(const WorkingSet& ws, PivotPolicy policy,
                               ThreadPool& pool, uint64_t seed);

/// Fill ws.masks with each point's partition mask relative to `pivot`
/// (bit i set iff point[i] >= pivot[i]), in parallel.
void AssignMasks(WorkingSet& ws, const Value* pivot, const DomCtx& dom,
                 ThreadPool& pool);

}  // namespace sky

#endif  // SKY_DATA_PARTITION_H_
