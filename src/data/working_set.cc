// Copyright (c) SkyBench-NG contributors.
#include "data/working_set.h"

#include <numeric>

namespace sky {

WorkingSet WorkingSet::FromDataset(const Dataset& data, ThreadPool& pool) {
  WorkingSet ws;
  ws.dims = data.dims();
  ws.stride = data.stride();
  ws.count = data.count();
  ws.rows.Reset(ws.count * static_cast<size_t>(ws.stride));
  ws.ids.resize(ws.count);
  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(ws.stride);
  pool.ParallelForStatic(ws.count, [&](size_t b, size_t e, int) {
    for (size_t i = b; i < e; ++i) {
      std::memcpy(ws.MutableRow(i), data.Row(i), row_bytes);
      ws.ids[i] = static_cast<PointId>(i);
    }
  });
  return ws;
}

void WorkingSet::ComputeL1(ThreadPool& pool) {
  l1.resize(count);
  pool.ParallelForStatic(count, [&](size_t b, size_t e, int) {
    for (size_t i = b; i < e; ++i) {
      const Value* r = Row(i);
      float acc = 0.0f;
      for (int j = 0; j < dims; ++j) acc += r[j];
      l1[i] = acc;
    }
  });
}

void WorkingSet::PermuteBy(const std::vector<uint32_t>& order) {
  SKY_DCHECK(order.size() == count);
  AlignedBuffer<Value> new_rows(count * static_cast<size_t>(stride));
  std::vector<PointId> new_ids(count);
  std::vector<float> new_l1(l1.empty() ? 0 : count);
  std::vector<Mask> new_masks(masks.empty() ? 0 : count);
  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(stride);
  for (size_t k = 0; k < count; ++k) {
    const uint32_t src = order[k];
    SKY_DCHECK(src < count);
    std::memcpy(new_rows.data() + k * static_cast<size_t>(stride), Row(src),
                row_bytes);
    new_ids[k] = ids[src];
    if (!l1.empty()) new_l1[k] = l1[src];
    if (!masks.empty()) new_masks[k] = masks[src];
  }
  rows = std::move(new_rows);
  ids = std::move(new_ids);
  l1 = std::move(new_l1);
  masks = std::move(new_masks);
}

void WorkingSet::MoveRow(size_t dst, size_t src) {
  if (dst == src) return;
  std::memcpy(MutableRow(dst), Row(src),
              sizeof(Value) * static_cast<size_t>(stride));
  ids[dst] = ids[src];
  if (!l1.empty()) l1[dst] = l1[src];
  if (!masks.empty()) masks[dst] = masks[src];
}

size_t WorkingSet::CompressRange(size_t begin, size_t end,
                                 const uint8_t* flags) {
  SKY_DCHECK(begin <= end && end <= count);
  size_t write = begin;
  for (size_t i = begin; i < end; ++i) {
    if (flags[i - begin] == 0) {
      MoveRow(write, i);
      ++write;
    }
  }
  return write - begin;
}

}  // namespace sky
