// Copyright (c) SkyBench-NG contributors.
#include "data/dataset.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/macros.h"

namespace sky {

int Dataset::StrideFor(int dims) {
  SKY_CHECK(dims >= 1 && dims <= kMaxDims);
  return (dims + kSimdWidth - 1) / kSimdWidth * kSimdWidth;
}

Dataset::Dataset(int dims, size_t count)
    : dims_(dims), stride_(StrideFor(dims)), count_(count) {
  rows_.Reset(count * static_cast<size_t>(stride_));
}

Dataset Dataset::FromRowMajor(int dims, const std::vector<Value>& values) {
  SKY_CHECK(dims > 0 && values.size() % static_cast<size_t>(dims) == 0);
  const size_t n = values.size() / static_cast<size_t>(dims);
  Dataset out(dims, n);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out.MutableRow(i), values.data() + i * dims,
                sizeof(Value) * static_cast<size_t>(dims));
  }
  return out;
}

Dataset Dataset::Clone() const {
  if (dims_ == 0) return Dataset{};
  Dataset out(dims_, count_);
  if (count_ > 0) {
    std::memcpy(out.rows_.data(), rows_.data(),
                sizeof(Value) * count_ * static_cast<size_t>(stride_));
  }
  return out;
}

Dataset Dataset::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<Value> values;
  std::string line;
  int dims = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string cell;
    int cols = 0;
    while (std::getline(ss, cell, ',')) {
      values.push_back(std::strtof(cell.c_str(), nullptr));
      ++cols;
    }
    if (dims < 0) {
      dims = cols;
    } else if (dims != cols) {
      throw std::runtime_error("ragged CSV row in " + path);
    }
  }
  if (dims <= 0) throw std::runtime_error("empty CSV " + path);
  if (dims > kMaxDims) {
    throw std::runtime_error(path + " has " + std::to_string(dims) +
                             " columns; at most " +
                             std::to_string(kMaxDims) + " supported");
  }
  return FromRowMajor(dims, values);
}

void Dataset::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  for (size_t i = 0; i < count_; ++i) {
    const Value* r = Row(i);
    for (int j = 0; j < dims_; ++j) {
      out << r[j] << (j + 1 == dims_ ? '\n' : ',');
    }
  }
}

namespace {
constexpr uint64_t kBinaryMagic = 0x534b594e47763031ULL;  // "SKYNGv01"
}  // namespace

void Dataset::SaveBinary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  const uint64_t d = static_cast<uint64_t>(dims_);
  const uint64_t n = count_;
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), 8);
  out.write(reinterpret_cast<const char*>(&d), 8);
  out.write(reinterpret_cast<const char*>(&n), 8);
  out.write(reinterpret_cast<const char*>(rows_.data()),
            static_cast<std::streamsize>(sizeof(Value) * count_ *
                                         static_cast<size_t>(stride_)));
}

bool Dataset::SniffBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  return in.good() && magic == kBinaryMagic;
}

Dataset Dataset::LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  uint64_t magic = 0, d = 0, n = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  in.read(reinterpret_cast<char*>(&d), 8);
  in.read(reinterpret_cast<char*>(&n), 8);
  if (magic != kBinaryMagic) throw std::runtime_error("bad magic in " + path);
  if (d < 1 || d > static_cast<uint64_t>(kMaxDims)) {
    throw std::runtime_error(path + " declares d=" + std::to_string(d) +
                             "; expected 1.." + std::to_string(kMaxDims));
  }
  Dataset out(static_cast<int>(d), n);
  in.read(reinterpret_cast<char*>(out.rows_.data()),
          static_cast<std::streamsize>(sizeof(Value) * n *
                                       static_cast<size_t>(out.stride_)));
  if (!in) throw std::runtime_error("truncated dataset " + path);
  return out;
}

std::vector<Value> Dataset::MinPerDim() const {
  if (count_ == 0) return {};
  std::vector<Value> mins(Row(0), Row(0) + dims_);
  for (size_t i = 1; i < count_; ++i) {
    const Value* r = Row(i);
    for (int j = 0; j < dims_; ++j) {
      if (r[j] < mins[static_cast<size_t>(j)]) {
        mins[static_cast<size_t>(j)] = r[j];
      }
    }
  }
  return mins;
}

std::vector<Value> Dataset::MaxPerDim() const {
  if (count_ == 0) return {};
  std::vector<Value> maxs(Row(0), Row(0) + dims_);
  for (size_t i = 1; i < count_; ++i) {
    const Value* r = Row(i);
    for (int j = 0; j < dims_; ++j) {
      if (r[j] > maxs[static_cast<size_t>(j)]) {
        maxs[static_cast<size_t>(j)] = r[j];
      }
    }
  }
  return maxs;
}

}  // namespace sky
