// Copyright (c) SkyBench-NG contributors.
// Sort orders used by the algorithms:
//  * ascending L1 norm (Q-Flow, SFS; paper §V-A) — guarantees no point is
//    dominated by a successor and puts strong pruners first;
//  * (level, mask, L1) composite order (Hybrid; paper §VI-A3) via the
//    bit-hacked key K = (|m| << d) | m;
//  * ascending min-coordinate with L1 tie-break (SaLSa [2]) — enables
//    early termination.
#ifndef SKY_DATA_SORTING_H_
#define SKY_DATA_SORTING_H_

#include "data/working_set.h"
#include "parallel/thread_pool.h"

namespace sky {

/// Sort ws ascending by L1 norm. Requires ws.l1.
void SortByL1(WorkingSet& ws, ThreadPool& pool);

/// Sort ws by (level(mask), mask, L1). Requires ws.l1 and ws.masks.
void SortByMaskThenL1(WorkingSet& ws, ThreadPool& pool);

/// Sort ws ascending by min coordinate, ties by L1. Requires ws.l1.
void SortByMinCoord(WorkingSet& ws, ThreadPool& pool);

/// Postcondition check used by tests: true iff for every i < j the sort
/// key of i does not exceed that of j under ascending-L1 order.
bool IsSortedByL1(const WorkingSet& ws);

}  // namespace sky

#endif  // SKY_DATA_SORTING_H_
