// Copyright (c) SkyBench-NG contributors.
// Faithful reimplementation of the classic `randdataset` generator
// (Börzsönyi, Kossmann, Stocker; ICDE 2001). The three distributions share
// one structure: pick a "plane value" v, start every coordinate at v, then
// redistribute perturbations h between adjacent dimensions
// (x[i] += h, x[(i+1)%d] -= h) so the coordinate sum is preserved within a
// point. Correlated data draws small bell-shaped h (points hug the
// diagonal); anticorrelated draws uniform h over the full legal range
// (points spread across the constant-sum plane). Out-of-range candidates
// are rejected and redrawn, exactly as in the original C code.
#include "data/generator.h"

#include <stdexcept>

#include "common/macros.h"
#include "common/random.h"

namespace sky {

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kCorrelated:
      return "corr";
    case Distribution::kIndependent:
      return "indep";
    case Distribution::kAnticorrelated:
      return "anti";
  }
  return "?";
}

Distribution ParseDistribution(const std::string& name) {
  if (name == "corr" || name == "correlated") return Distribution::kCorrelated;
  if (name == "indep" || name == "independent")
    return Distribution::kIndependent;
  if (name == "anti" || name == "anticorrelated")
    return Distribution::kAnticorrelated;
  throw std::invalid_argument("unknown distribution: " + name);
}

namespace {

/// Sum of `n` uniforms rescaled to [lo, hi]; peaked at the midpoint
/// (Irwin-Hall). This is random_peak() of the original generator.
double RandomPeak(Rng& rng, double lo, double hi, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  return lo + (hi - lo) * (sum / n);
}

/// Bell-shaped value with mean `med`, support [med - var, med + var]
/// (random_normal() of the original generator: a 12-fold peak).
double RandomNormal(Rng& rng, double med, double var) {
  return RandomPeak(rng, med - var, med + var, 12);
}

void GenCorrelatedPoint(Rng& rng, Value* out, int d) {
  for (;;) {
    const double v = RandomPeak(rng, 0.0, 1.0, d);
    const double l = v <= 0.5 ? v : 1.0 - v;
    double x[kMaxDims];
    for (int i = 0; i < d; ++i) x[i] = v;
    for (int i = 0; i < d; ++i) {
      const double h = RandomNormal(rng, 0.0, l);
      x[i] += h;
      x[(i + 1) % d] -= h;
    }
    bool ok = true;
    for (int i = 0; i < d; ++i) ok &= (x[i] >= 0.0 && x[i] <= 1.0);
    if (ok) {
      for (int i = 0; i < d; ++i) out[i] = static_cast<Value>(x[i]);
      return;
    }
  }
}

void GenAnticorrelatedPoint(Rng& rng, Value* out, int d) {
  for (;;) {
    const double v = RandomNormal(rng, 0.5, 0.25);
    const double l = v <= 0.5 ? v : 1.0 - v;
    double x[kMaxDims];
    for (int i = 0; i < d; ++i) x[i] = v;
    for (int i = 0; i < d; ++i) {
      const double h = rng.NextUniform(-l, l);
      x[i] += h;
      x[(i + 1) % d] -= h;
    }
    bool ok = true;
    for (int i = 0; i < d; ++i) ok &= (x[i] >= 0.0 && x[i] <= 1.0);
    if (ok) {
      for (int i = 0; i < d; ++i) out[i] = static_cast<Value>(x[i]);
      return;
    }
  }
}

void GenIndependentPoint(Rng& rng, Value* out, int d) {
  for (int i = 0; i < d; ++i) out[i] = rng.NextFloat();
}

}  // namespace

Dataset GenerateSynthetic(Distribution dist, size_t count, int dims,
                          uint64_t seed) {
  SKY_CHECK(dims >= 1 && dims <= kMaxDims);
  Dataset out(dims, count);
  // One hashed substream per point keeps generation deterministic and
  // trivially parallelisable / resumable.
  for (size_t i = 0; i < count; ++i) {
    uint64_t mix = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    Rng rng(SplitMix64(mix));
    Value* row = out.MutableRow(i);
    switch (dist) {
      case Distribution::kCorrelated:
        GenCorrelatedPoint(rng, row, dims);
        break;
      case Distribution::kIndependent:
        GenIndependentPoint(rng, row, dims);
        break;
      case Distribution::kAnticorrelated:
        GenAnticorrelatedPoint(rng, row, dims);
        break;
    }
  }
  return out;
}

}  // namespace sky
