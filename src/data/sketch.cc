// Copyright (c) SkyBench-NG contributors.
#include "data/sketch.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"

namespace sky {
namespace {

/// Caps keeping sketch cost flat in n: moment/quantile rows, correlation
/// rows, and the two log-spaced skyline subsample sizes.
constexpr size_t kMomentSample = 2048;
constexpr size_t kQuantileKeep = 256;
constexpr size_t kSpearmanSample = 256;
constexpr size_t kSkylineSampleLo = 512;
constexpr size_t kSkylineSampleHi = 2048;

/// Evenly spaced row indices covering [0, n) — deterministic and
/// order-insensitive enough for moment and quantile estimation.
std::vector<size_t> StrideSample(size_t n, size_t want) {
  const size_t take = std::min(n, want);
  std::vector<size_t> rows(take);
  for (size_t i = 0; i < take; ++i) rows[i] = i * n / take;
  return rows;
}

/// Random row subset in random order, for the skyline subsamples
/// (stride or dataset-order sampling would bias against sorted inputs,
/// e.g. mask-ordered shards — and the lo estimate is a *prefix* of this
/// list, so the order itself must be random too). Rows are distinct via
/// a partial Fisher-Yates shuffle while the index vector is affordable;
/// for huge n, sampling with replacement collides on < want/2^16 of the
/// draws, which is negligible (duplicates would otherwise inflate the
/// sample skyline: equal rows never dominate each other).
std::vector<size_t> RandomSample(size_t n, size_t want, Rng& rng) {
  const size_t take = std::min(n, want);
  if (n <= size_t{1} << 16) {
    std::vector<size_t> rows(n);
    std::iota(rows.begin(), rows.end(), size_t{0});
    for (size_t i = 0; i < take; ++i) {
      std::swap(rows[i], rows[i + rng.NextBounded(n - i)]);
    }
    rows.resize(take);
    return rows;
  }
  std::vector<size_t> rows(take);
  for (size_t i = 0; i < take; ++i) rows[i] = rng.NextBounded(n);
  return rows;
}

/// |SKY| of the sampled rows by incremental nested loops (BNL-style,
/// local to the sketch so the data layer stays independent of core/).
/// NaN rows never dominate and are never dominated, matching the
/// algorithm suite's IEEE comparison semantics.
size_t SampleSkylineSize(const Dataset& data, const std::vector<size_t>& rows) {
  const int d = data.dims();
  std::vector<const Value*> sky;
  sky.reserve(64);
  for (const size_t row : rows) {
    const Value* q = data.Row(row);
    bool dominated = false;
    size_t w = 0;
    for (size_t i = 0; i < sky.size(); ++i) {
      const Value* p = sky[i];
      bool p_le = true, p_lt = false, q_le = true, q_lt = false;
      for (int j = 0; j < d; ++j) {
        p_le &= p[j] <= q[j];
        p_lt |= p[j] < q[j];
        q_le &= q[j] <= p[j];
        q_lt |= q[j] < p[j];
      }
      if (p_le && p_lt) {
        dominated = true;
        // Keep the remaining members: q cannot dominate any of them
        // (dominance is transitive and they are mutually incomparable).
        break;
      }
      if (!(q_le && q_lt)) sky[w++] = p;  // p survives q
    }
    if (dominated) continue;
    sky.resize(w);
    sky.push_back(q);
  }
  return sky.size();
}

/// Mean Spearman rank correlation across all dimension pairs of a row
/// sample. Ranks use average-free midpoint-less ordering (ties broken by
/// sample position), which is ample for a sign-and-strength summary.
double MeanSpearman(const Dataset& data, const std::vector<size_t>& rows) {
  const int d = data.dims();
  const size_t s = rows.size();
  if (d < 2 || s < 8) return 0.0;

  // Rank each dimension's sample values.
  std::vector<std::vector<double>> ranks(static_cast<size_t>(d),
                                         std::vector<double>(s));
  std::vector<size_t> order(s);
  for (int j = 0; j < d; ++j) {
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const Value va = data.Row(rows[a])[j];
      const Value vb = data.Row(rows[b])[j];
      if (va != vb) return va < vb;
      return a < b;
    });
    for (size_t r = 0; r < s; ++r) {
      ranks[static_cast<size_t>(j)][order[r]] = static_cast<double>(r);
    }
  }

  const double mean_rank = static_cast<double>(s - 1) / 2.0;
  double var = 0.0;  // identical for every dimension (ranks are 0..s-1)
  for (size_t r = 0; r < s; ++r) {
    const double dev = static_cast<double>(r) - mean_rank;
    var += dev * dev;
  }
  if (var <= 0.0) return 0.0;

  double sum = 0.0;
  int pairs = 0;
  for (int a = 0; a < d; ++a) {
    for (int b = a + 1; b < d; ++b) {
      double cov = 0.0;
      for (size_t r = 0; r < s; ++r) {
        cov += (ranks[static_cast<size_t>(a)][r] - mean_rank) *
               (ranks[static_cast<size_t>(b)][r] - mean_rank);
      }
      sum += cov / var;
      ++pairs;
    }
  }
  return pairs > 0 ? sum / pairs : 0.0;
}

}  // namespace

double StatsSketch::EstimateIntervalSelectivity(int dim, Value lo,
                                                Value hi) const {
  if (dim < 0 || static_cast<size_t>(dim) >= quantiles.size()) return 1.0;
  const std::vector<Value>& q = quantiles[static_cast<size_t>(dim)];
  if (q.empty()) return 1.0;
  const auto first = std::lower_bound(q.begin(), q.end(), lo);
  const auto last = std::upper_bound(q.begin(), q.end(), hi);
  const auto inside = std::distance(first, last);
  return inside <= 0 ? 0.0
                     : static_cast<double>(inside) /
                           static_cast<double>(q.size());
}

double StatsSketch::EstimateSkylineAt(double n_eff) const {
  if (n_eff <= 1.0) return std::min(1.0, std::max(n_eff, 0.0));
  if (n == 0) return 1.0;
  const double scale =
      std::pow(n_eff / static_cast<double>(n), growth_exponent);
  return std::clamp(est_skyline * scale, 1.0, n_eff);
}

StatsSketch ComputeSketch(const Dataset& data, uint64_t seed) {
  StatsSketch sk;
  sk.n = data.count();
  sk.d = data.dims();
  sk.dims.assign(static_cast<size_t>(sk.d), DimStats{});
  sk.quantiles.assign(static_cast<size_t>(sk.d), {});
  if (sk.n == 0 || sk.d == 0) return sk;

  // Per-dimension moments and the quantile sample, on a stride sample.
  const std::vector<size_t> moment_rows = StrideSample(sk.n, kMomentSample);
  for (int j = 0; j < sk.d; ++j) {
    DimStats& ds = sk.dims[static_cast<size_t>(j)];
    std::vector<Value>& vals = sk.quantiles[static_cast<size_t>(j)];
    vals.reserve(moment_rows.size());
    double sum = 0.0, sum_sq = 0.0;
    for (const size_t row : moment_rows) {
      const Value v = data.Row(row)[j];
      if (std::isnan(v)) continue;  // see DimStats doc
      vals.push_back(v);
      sum += v;
      sum_sq += static_cast<double>(v) * v;
    }
    if (!vals.empty()) {
      std::sort(vals.begin(), vals.end());
      ds.min = vals.front();
      ds.max = vals.back();
      const double cnt = static_cast<double>(vals.size());
      ds.mean = sum / cnt;
      ds.variance = std::max(0.0, sum_sq / cnt - ds.mean * ds.mean);
    }
    // Thin the sorted sample to evenly spaced order statistics so the
    // per-sketch footprint stays small even with many shards resident.
    if (vals.size() > kQuantileKeep) {
      std::vector<Value> kept(kQuantileKeep);
      for (size_t i = 0; i < kQuantileKeep; ++i) {
        kept[i] = vals[i * vals.size() / kQuantileKeep];
      }
      vals = std::move(kept);
    }
  }

  sk.mean_spearman = MeanSpearman(data, StrideSample(sk.n, kSpearmanSample));

  // Log-sampling cardinality estimate: exact skylines at two log-spaced
  // sample sizes fit m(n) ~ c * n^b; extrapolate the fit to the full n.
  // The small sample is a *prefix* of the large one, so their sampling
  // noise is positively correlated and mostly cancels in the m_hi/m_lo
  // ratio — two independent draws make b wildly unstable when m is
  // small (a 5-vs-30 fluke reads as linear growth).
  Rng rng(seed ^ 0x5ce7c4u);
  const std::vector<size_t> hi_rows = RandomSample(sk.n, kSkylineSampleHi, rng);
  const double n_hi = static_cast<double>(hi_rows.size());
  const double m_hi = std::max<double>(
      1.0, static_cast<double>(SampleSkylineSize(data, hi_rows)));
  if (hi_rows.size() <= kSkylineSampleLo) {
    // n is small enough that the "sample" is (nearly) the whole dataset:
    // the sample skyline is the answer, no extrapolation needed.
    sk.growth_exponent = 0.0;
    sk.est_skyline = m_hi;
    return sk;
  }
  const std::vector<size_t> lo_rows(hi_rows.begin(),
                                    hi_rows.begin() + kSkylineSampleLo);
  const double n_lo = static_cast<double>(lo_rows.size());
  const double m_lo = std::max<double>(
      1.0, static_cast<double>(SampleSkylineSize(data, lo_rows)));
  sk.growth_exponent = std::clamp(
      std::log(m_hi / m_lo) / std::log(n_hi / n_lo), 0.0, 1.0);
  sk.est_skyline =
      std::clamp(m_hi * std::pow(static_cast<double>(sk.n) / n_hi,
                                 sk.growth_exponent),
                 1.0, static_cast<double>(sk.n));
  return sk;
}

void UpdateSketchOnInsert(StatsSketch& sketch, const Value* rows, int stride,
                          size_t count) {
  if (count == 0) return;
  const size_t new_n = sketch.n + count;
  // Rescale along the fitted power law *before* n moves (the estimator
  // extrapolates relative to the sketched n).
  sketch.est_skyline = sketch.EstimateSkylineAt(static_cast<double>(new_n));
  const double w_old = static_cast<double>(sketch.n);
  for (int j = 0; j < sketch.d && static_cast<size_t>(j) < sketch.dims.size();
       ++j) {
    DimStats& ds = sketch.dims[static_cast<size_t>(j)];
    // NaN coordinates are excluded, matching ComputeSketch.
    double sum = 0.0, sum_sq = 0.0;
    size_t finite = 0;
    Value lo = ds.min, hi = ds.max;
    for (size_t i = 0; i < count; ++i) {
      const Value v = rows[i * static_cast<size_t>(stride) +
                           static_cast<size_t>(j)];
      if (std::isnan(v)) continue;
      ++finite;
      sum += v;
      sum_sq += static_cast<double>(v) * v;
      if (sketch.n == 0 && finite == 1) {
        lo = hi = v;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (finite == 0) continue;
    ds.min = lo;
    ds.max = hi;
    // Weighted moment merge: treat the sampled mean/variance as exact
    // over the old n — an approximation consistent with the sketch being
    // sample-based in the first place.
    const double w_new = static_cast<double>(finite);
    const double w = w_old + w_new;
    const double mean_new = sum / w_new;
    const double var_new = std::max(0.0, sum_sq / w_new - mean_new * mean_new);
    const double delta = mean_new - ds.mean;
    const double mean = ds.mean + delta * (w_new / w);
    ds.variance = (w_old * ds.variance + w_new * var_new +
                   w_old * w_new * delta * delta / w) /
                  w;
    ds.mean = mean;
  }
  sketch.n = new_n;
  sketch.mutated_rows += count;
}

void UpdateSketchOnDelete(StatsSketch& sketch, size_t count) {
  if (count == 0) return;
  const size_t new_n = sketch.n >= count ? sketch.n - count : 0;
  sketch.est_skyline = sketch.EstimateSkylineAt(static_cast<double>(new_n));
  sketch.n = new_n;
  sketch.mutated_rows += count;
}

bool SketchNeedsRebuild(const StatsSketch& sketch) {
  // A quarter of the rows churned ≈ the point where the frozen quantile
  // and correlation samples stop being representative.
  return sketch.StaleFraction() >= 0.25;
}

}  // namespace sky
