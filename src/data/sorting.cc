// Copyright (c) SkyBench-NG contributors.
#include "data/sorting.h"

#include <algorithm>

#include "common/bits.h"
#include "parallel/parallel_sort.h"

namespace sky {

namespace {

/// Sort record: `primary` fully encodes the sort order, `idx` is the
/// point's current position. Packing the float key through ToOrderedBits
/// keeps the comparator a single integer compare.
struct SortRec {
  uint64_t primary;
  uint32_t idx;
};

void ApplyOrder(WorkingSet& ws, std::vector<SortRec>& recs) {
  std::vector<uint32_t> order(ws.count);
  for (size_t i = 0; i < ws.count; ++i) order[i] = recs[i].idx;
  ws.PermuteBy(order);
}

}  // namespace

void SortByL1(WorkingSet& ws, ThreadPool& pool) {
  SKY_DCHECK(ws.l1.size() == ws.count);
  std::vector<SortRec> recs(ws.count);
  pool.ParallelForStatic(ws.count, [&](size_t b, size_t e, int) {
    for (size_t i = b; i < e; ++i) {
      recs[i] = {static_cast<uint64_t>(ToOrderedBits(ws.l1[i])),
                 static_cast<uint32_t>(i)};
    }
  });
  ParallelSort(recs, pool, [](const SortRec& a, const SortRec& b) {
    return a.primary < b.primary;
  });
  ApplyOrder(ws, recs);
}

void SortByMaskThenL1(WorkingSet& ws, ThreadPool& pool) {
  SKY_DCHECK(ws.l1.size() == ws.count && ws.masks.size() == ws.count);
  std::vector<SortRec> recs(ws.count);
  const int d = ws.dims;
  pool.ParallelForStatic(ws.count, [&](size_t b, size_t e, int) {
    for (size_t i = b; i < e; ++i) {
      const uint64_t key =
          (static_cast<uint64_t>(CompositeMaskKey(ws.masks[i], d)) << 32) |
          ToOrderedBits(ws.l1[i]);
      recs[i] = {key, static_cast<uint32_t>(i)};
    }
  });
  ParallelSort(recs, pool, [](const SortRec& a, const SortRec& b) {
    return a.primary < b.primary;
  });
  ApplyOrder(ws, recs);
}

void SortByMinCoord(WorkingSet& ws, ThreadPool& pool) {
  SKY_DCHECK(ws.l1.size() == ws.count);
  std::vector<SortRec> recs(ws.count);
  pool.ParallelForStatic(ws.count, [&](size_t b, size_t e, int) {
    for (size_t i = b; i < e; ++i) {
      const Value* r = ws.Row(i);
      float mn = r[0];
      for (int j = 1; j < ws.dims; ++j) mn = std::min(mn, r[j]);
      const uint64_t key = (static_cast<uint64_t>(ToOrderedBits(mn)) << 32) |
                           ToOrderedBits(ws.l1[i]);
      recs[i] = {key, static_cast<uint32_t>(i)};
    }
  });
  ParallelSort(recs, pool, [](const SortRec& a, const SortRec& b) {
    return a.primary < b.primary;
  });
  ApplyOrder(ws, recs);
}

bool IsSortedByL1(const WorkingSet& ws) {
  for (size_t i = 1; i < ws.count; ++i) {
    if (ws.l1[i - 1] > ws.l1[i]) return false;
  }
  return true;
}

}  // namespace sky
