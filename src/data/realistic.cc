// Copyright (c) SkyBench-NG contributors.
#include "data/realistic.h"

#include <cmath>

#include "common/random.h"
#include "data/generator.h"

namespace sky {

namespace {

/// Quantise v to a grid of `levels` steps over [0, 1]: this is what makes
/// the stand-ins behave like real data — identical values across points.
Value Quantise(double v, int levels) {
  const double q = std::floor(v * levels) / levels;
  return static_cast<Value>(q);
}

/// Anticorrelated-leaning value pair redistribution as in the classic
/// generator, but writing quantised outputs.
void MixedPoint(Rng& rng, Value* out, int d, double anti_fraction,
                int levels) {
  const bool anti = rng.NextDouble() < anti_fraction;
  double x[kMaxDims];
  for (;;) {
    const double v = anti ? 0.5 + 0.25 * (rng.NextNormalish() / 3.0)
                          : rng.NextDouble();
    const double l = (v <= 0.5 ? v : 1.0 - v);
    if (l <= 0.0) continue;
    for (int i = 0; i < d; ++i) x[i] = anti ? v : rng.NextDouble();
    if (anti) {
      for (int i = 0; i < d; ++i) {
        const double h = rng.NextUniform(-l, l);
        x[i] += h;
        x[(i + 1) % d] -= h;
      }
    }
    bool ok = true;
    for (int i = 0; i < d; ++i) ok &= (x[i] >= 0.0 && x[i] <= 1.0);
    if (ok) break;
  }
  for (int i = 0; i < d; ++i) out[i] = Quantise(x[i], levels);
}

Dataset MixedQuantised(size_t count, int dims, double anti_fraction,
                       int levels, uint64_t seed) {
  Dataset out(dims, count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t mix = seed ^ (0xd1b54a32d192ed03ULL * (i + 1));
    Rng rng(SplitMix64(mix));
    MixedPoint(rng, out.MutableRow(i), dims, anti_fraction, levels);
  }
  return out;
}

}  // namespace

// Quantisation levels are tuned so skyline fractions land near Table I:
// NBA 10.4%, House 4.5%, Weather 11.2%. Independent data at these (n, d)
// already gives roughly the right order of magnitude (the expected uniform
// skyline is (ln n)^{d-1}/(d-1)!); the anti fraction nudges House upward.

Dataset GenerateNbaLike(size_t count, uint64_t seed) {
  return MixedQuantised(count, /*dims=*/8, /*anti_fraction=*/0.0,
                        /*levels=*/40, seed);
}

Dataset GenerateHouseLike(size_t count, uint64_t seed) {
  return MixedQuantised(count, /*dims=*/6, /*anti_fraction=*/0.35,
                        /*levels=*/1000, seed);
}

Dataset GenerateWeatherLike(size_t count, uint64_t seed) {
  return MixedQuantised(count, /*dims=*/15, /*anti_fraction=*/0.0,
                        /*levels=*/25, seed);
}

Dataset GenerateNbaLike(uint64_t seed) { return GenerateNbaLike(17264, seed); }

Dataset GenerateHouseLike(uint64_t seed) {
  return GenerateHouseLike(127931, seed);
}

Dataset GenerateWeatherLike(uint64_t seed) {
  return GenerateWeatherLike(566268, seed);
}

}  // namespace sky
