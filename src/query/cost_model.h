// Copyright (c) SkyBench-NG contributors.
// Cost-model algorithm selection: maps (dataset/shard StatsSketch,
// constraint selectivity, band depth, thread budget) to the cheapest
// algorithm under the per-algorithm runtime estimates whose coefficients
// live in the AlgorithmRegistry. Calibrated to the paper's Fig. 5/6
// crossovers: sequential BSkyTree wins small/low-d inputs, PSkyline
// holds a mid-range band, Q-Flow/Hybrid dominate at scale. The planner
// (query/planner.h) calls this once per surviving shard, so one query
// can run BSkyTree on a pruned 3k-row shard and Hybrid on a 2M-row one.
#ifndef SKY_QUERY_COST_MODEL_H_
#define SKY_QUERY_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/options.h"
#include "data/sketch.h"
#include "query/query_spec.h"

namespace sky {

/// Online recalibration of the static cost coefficients: each executed
/// query reports (model-predicted cost, measured wall time) for the
/// algorithm that actually ran, and the learner keeps a per-algorithm
/// exponential moving average of the measured/predicted ratio.
/// ChooseAlgorithm multiplies every candidate's model cost by its learned
/// scale, so systematic per-host miscalibration (a slow allocator, no
/// AVX2, an oversubscribed pool) shifts future picks without touching the
/// registry constants. Thread-safe; enabled behind Config::cost_learning
/// (off by default so deterministic tests see the static model).
class CostLearner {
 public:
  /// Learned cost multiplier for `algo` (1.0 until the first record).
  double Scale(Algorithm algo) const;

  /// Blend one observation in. `predicted_cost` is the model estimate in
  /// relative-ns units, `measured_seconds` the query's wall time. Ratios
  /// are clamped to [0.01, 100] so one scheduling hiccup cannot poison
  /// the average.
  void Record(Algorithm algo, double predicted_cost,
              double measured_seconds);

  /// Observations recorded for `algo` so far.
  uint64_t Observations(Algorithm algo) const;

  void Reset();

 private:
  /// EMA weight of a new observation (first observation seeds the EMA).
  static constexpr double kBlend = 0.2;
  struct Cell {
    double scale = 1.0;
    uint64_t observations = 0;
  };
  mutable std::mutex mu_;
  std::array<Cell, static_cast<size_t>(Algorithm::kAuto) + 1> cells_;
};

/// Per-query inputs of one selection decision.
struct SelectionContext {
  /// Estimated fraction of rows surviving the constraint box, in [0, 1].
  double selectivity = 1.0;
  /// Band depth of the query (1 = plain skyline). Depths > 1 route to
  /// ComputeSkyband, whose block flow is Q-Flow's, so selection is
  /// restricted to skyband-capable algorithms.
  uint32_t band_k = 1;
  /// Threads available to this run (per shard under sharded execution).
  int threads = 1;
  /// The caller installed a progressive callback: restrict selection to
  /// algorithms that actually stream (descriptor `progressive`), so an
  /// auto pick never silently swallows the batches.
  bool progressive = false;
  /// The engine would run Algorithm::kZonemap directly on raw shard rows
  /// against the spec's constraint box (band-1, all-min, box-only spec):
  /// zonemap becomes a candidate with a cheap box-scan term, and every
  /// other candidate is charged the view materialization the direct path
  /// skips. False (the default) excludes zonemap from selection — its
  /// cost depends on block pruning the static model cannot see, so it
  /// only competes where its sub-shard pruning structurally pays.
  bool zonemap_direct = false;
  /// Optional learned per-algorithm cost multipliers (Config::cost_learning).
  const CostLearner* learner = nullptr;
};

/// A resolved selection plus the model's reasoning, for reporting.
struct AlgorithmChoice {
  Algorithm algorithm = Algorithm::kBSkyTree;
  double est_cost = 0.0;     ///< model cost of the winner (relative ns)
  double est_rows = 0.0;     ///< effective rows fed to the algorithm
  double est_skyline = 0.0;  ///< skyline estimate at that row count
};

/// Model cost of running `algorithm` in this context (lower is better).
/// Exposed so tests and the ablation bench can inspect the boundaries.
double EstimateAlgorithmCost(Algorithm algorithm, const StatsSketch& sketch,
                             const SelectionContext& ctx);

/// Pick the cheapest auto-candidate for `sketch` under `ctx`.
AlgorithmChoice ChooseAlgorithm(const StatsSketch& sketch,
                                const SelectionContext& ctx);

/// Estimated fraction of rows satisfying every constraint, from the
/// sketch's per-dimension quantile samples (independence assumption).
double EstimateConstraintSelectivity(
    const StatsSketch& sketch, const std::vector<DimConstraint>& constraints);

/// Resolve kAuto for a bare dataset with no planner in sight (direct
/// ComputeSkyline calls): sketches `data` on the fly — selectivity 1,
/// band 1 — and returns the choice. The serving path never uses this; it
/// selects from the registration-time sketches instead.
Algorithm ChooseAlgorithmForDataset(const Dataset& data, const Options& opts);

}  // namespace sky

#endif  // SKY_QUERY_COST_MODEL_H_
