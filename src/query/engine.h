// Copyright (c) SkyBench-NG contributors.
// SkylineEngine: the long-lived serving layer on top of the algorithm
// suite. Holds a registry of named datasets (optionally sharded at
// registration), and answers each QuerySpec through a three-stage
// plan -> execute -> merge pipeline:
//
//   plan     the planner prunes shards whose bounding boxes miss the
//            constraint box, picks the merge strategy and — for
//            Algorithm::kAuto requests — cost-selects an algorithm and
//            thread budget per surviving shard from the
//            registration-time StatsSketch,
//   execute  surviving shards run per-shard skylines / k-skybands on a
//            fork-join pool (single-shard datasets take the original
//            unsharded fast path),
//   merge    partial results are combined with the paper's M(S)
//            union-then-filter operator (depth-aware for k-skybands).
//
// Finished results land in a byte- and entry-capped LRU; materialized
// views are reused across specs that differ only in band_k / top_k. All
// public methods are safe to call concurrently from many threads.
#ifndef SKY_QUERY_ENGINE_H_
#define SKY_QUERY_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/options.h"
#include "data/sketch.h"
#include "index/zonemap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/executor.h"
#include "query/cost_model.h"
#include "query/planner.h"
#include "query/query_spec.h"
#include "query/result_cache.h"
#include "query/shard_map.h"
#include "query/view.h"

namespace sky {

/// Result of one query: original-dataset row ids plus per-id dominator
/// counts under the query's dominance relation (all zero when band_k == 1).
struct QueryResult {
  /// Terminal outcome of the request (common/cancel.h). kOk results carry
  /// the exact answer (possibly `stale`); kDeadlineExceeded may carry a
  /// `truncated` progressive prefix; kOverloaded / kCancelled /
  /// kInternalError carry no rows. Unknown datasets and invalid specs
  /// still throw as before — statuses cover runtime outcomes only:
  /// deadlines, cancellation, load shedding, contained worker failures.
  Status status = Status::kOk;
  /// `ids` is a confirmed-but-incomplete progressive prefix cut off by a
  /// deadline: every id is a true member of the answer, some members are
  /// missing, and neither top-k ranking nor dominator counts were
  /// applied. Truncated results are never cached.
  bool truncated = false;
  /// Served from a TTL-expired result-cache entry under
  /// Config::serve_stale — the member set may predate recent mutations.
  /// Stale results are re-served as-is, never re-cached.
  bool stale = false;
  std::vector<PointId> ids;
  std::vector<uint32_t> dominator_counts;  ///< parallel to `ids`
  size_t matched_rows = 0;  ///< rows inside the constraint box
  bool cache_hit = false;   ///< true when served from the result cache
  uint32_t shards_executed = 1;  ///< shards the plan actually ran
  uint32_t shards_pruned = 0;    ///< shards skipped by box intersection
  /// Algorithm each executed shard ran (one entry for unsharded runs) —
  /// under kAuto, the cost model's per-shard picks. Like `stats`, a
  /// cache hit reports the run that produced the entry. Empty for runs
  /// on empty data. band_k > 1 reports the selection even though
  /// ComputeSkyband's block flow ignores it.
  std::vector<Algorithm> shard_algorithms;
  RunStats stats;           ///< stats of the run that produced the entry
  /// Constraint box of the canonical spec that produced this result —
  /// the mutation path's invalidation key: a cached result survives a
  /// mutation iff its box provably excludes every mutated row.
  std::vector<DimConstraint> constraints;
  /// Per-query span tree, present iff Options::trace was set (obs/trace.h;
  /// render with trace->Render()). Never stored in the result cache — a
  /// cache hit carries a fresh two-span hit trace, not the producer's.
  std::shared_ptr<const obs::QueryTrace> trace;
};

/// Payload bytes of a result for the cache's byte budget.
size_t QueryResultBytes(const QueryResult& r);

/// One-shot, uncached execution of `spec` against `data` with the
/// algorithm/threads/alpha selection in `opts` (band_k > 1 routes to
/// ComputeSkyband, which ignores the algorithm field). This is the whole
/// unsharded pipeline: canonicalize, materialize the view, compute, map
/// ids back, apply the top-k cap. Throws std::runtime_error on invalid
/// specs.
QueryResult RunQuery(const Dataset& data, const QuerySpec& spec,
                     const Options& opts = Options{});

/// One-shot, uncached sharded execution: plan against `map`, run the
/// surviving shards (parallelism across shards; each shard computes
/// single-threaded), merge with M(S). Row-for-row identical to RunQuery
/// on the unsharded dataset. Exposed for tests and benchmarks; serving
/// traffic goes through SkylineEngine::Execute.
QueryResult RunShardedQuery(const ShardMap& map, const QuerySpec& spec,
                            const Options& opts = Options{});

/// Re-run `spec` through the BNL reference path and compare id sets (and
/// dominator counts) against `r`. O(view^2); test and --verify use.
bool VerifyQuery(const Dataset& data, const QuerySpec& spec,
                 const QueryResult& r);

struct EngineMetricsSnapshot;

class SkylineEngine {
 public:
  struct Config {
    /// Max finished results kept in the LRU cache (0 disables caching).
    size_t result_cache_capacity = 128;
    /// Byte budget over cached result payloads (QueryResultBytes); 0
    /// disables the byte cap. Evicts LRU-first once exceeded.
    size_t result_cache_bytes = 0;
    /// TTL over cached results in seconds (0 = never expire). Entries
    /// older than this are lazily expired on Get (ttl_evictions
    /// counter) — for refresh-heavy workloads where stale answers are
    /// worse than recomputes.
    double result_cache_ttl = 0.0;
    /// Max materialized views kept for reuse across specs sharing a
    /// ViewKey (0 disables view reuse). Views are dataset-sized; keep
    /// this small.
    size_t view_cache_capacity = 8;
    /// Byte budget over cached view payloads (QueryViewBytes); 0
    /// disables the byte cap. Views are the engine's largest cached
    /// objects, so serving deployments should set this.
    size_t view_cache_bytes = 0;
    /// Shards per registered dataset (1 = unsharded fast path).
    size_t shards = 1;
    /// Row-to-shard assignment policy used at registration.
    ShardPolicy shard_policy = ShardPolicy::kRoundRobin;
    /// Serving-wide auto-selection: when true, Execute treats every
    /// request as Algorithm::kAuto, letting the cost model pick per
    /// query and per shard regardless of the caller's Options.
    bool auto_algorithm = false;
    /// Feed the engine's metrics registry (query counters, latency
    /// histograms, planner / mutation / invalidation tallies). Off turns
    /// every registry update into a skipped branch — the measured-overhead
    /// baseline of bench/perf_smoke's metrics pair. The per-cache LRU
    /// counters are maintained by the caches regardless.
    bool metrics = true;
    /// Online cost-model recalibration (query/cost_model.h CostLearner):
    /// unsharded and single-shard fresh computes record their measured
    /// wall time against the model's prediction, and kAuto selection
    /// scales candidate costs by the learned per-algorithm ratios. Off by
    /// default so deterministic tests see the static model.
    bool cost_learning = false;
    /// Width of the engine's shared work-stealing executor
    /// (parallel/executor.h): every sharded query, mutation repair, and
    /// intra-shard algorithm phase runs as capped task groups on this one
    /// worker set, so N concurrent requests never spawn N×threads OS
    /// threads. 0 = Executor::DefaultThreads(); 1 = fully inline (no
    /// worker threads at all). Options::threads / the planner's
    /// shard_threads budget become per-query concurrency limits against
    /// this width.
    int executor_threads = 0;
    /// Serve queries through the shared executor (the default). Off
    /// restores the seed's behaviour of constructing a private ThreadPool
    /// per parallel request — kept only as the baseline arm for
    /// bench/ablation_executor.cc and perf_smoke's concurrent-serving
    /// gate, not a serving mode. Mutation repair always uses the shared
    /// executor.
    bool shared_executor = true;
    /// Admission control: max queries computing concurrently. 0 =
    /// unlimited. Cache hits are always served; a fresh compute over the
    /// cap is shed immediately with Status::kOverloaded (or answered
    /// stale under `serve_stale`). Mutations are not admission-gated.
    int max_inflight = 0;
    /// Shed fresh computes while the shared executor's backlog (queued,
    /// not-yet-running tasks) exceeds this bound; 0 = unbounded. Guards
    /// against deep fork-join pileups that `max_inflight` alone cannot
    /// see when each query fans out many tasks.
    size_t max_queue_depth = 0;
    /// Degraded answers instead of failures: a shed or deadline-exceeded
    /// query with a TTL-expired result-cache entry for its exact key is
    /// answered from that entry, marked QueryResult::stale. Requires
    /// result_cache_ttl > 0 to ever trigger (unexpired entries are plain
    /// hits). Expired entries are then kept for fallback rather than
    /// lazily erased; a successful recompute refreshes them in place.
    bool serve_stale = false;
  };

  SkylineEngine();  // default Config
  explicit SkylineEngine(Config config);

  SkylineEngine(const SkylineEngine&) = delete;
  SkylineEngine& operator=(const SkylineEngine&) = delete;

  /// Register (or replace) a dataset under `name`, sharding it per the
  /// engine Config. Replacement bumps the version, so cached results of
  /// the old generation can never be served for the new data. Returns the
  /// registered version.
  uint64_t RegisterDataset(const std::string& name, Dataset data);

  /// Same, with an explicit shard count / policy overriding the Config.
  uint64_t RegisterDataset(const std::string& name, Dataset data,
                           size_t shards, ShardPolicy policy);

  /// Drop `name` from the registry and purge its result-cache entries.
  /// In-flight queries holding the dataset finish safely (shared
  /// ownership). Returns false if absent.
  bool EvictDataset(const std::string& name);

  // ---- Incremental mutation ------------------------------------------
  //
  // Point-level updates without a re-register: each mutated row is
  // routed to its shard and only that shard's skyline, SoA mirror, and
  // sketch are repaired (query/delta.h); the M(S) merge makes shard-
  // local repair sufficient for the global answer. Row ids are compact
  // indices: InsertPoints appends (existing ids stable, new rows get ids
  // old_count..old_count+k-1); DeletePoints compacts (a surviving id
  // shifts down by the number of deleted ids below it) — after any
  // mutation the registered state is row-identical to a fresh
  // registration of the surviving rows. Each mutation bumps a per-
  // dataset minor version and *selectively* invalidates cache entries:
  // results/views/selectivities whose constraint box excludes every
  // mutated row (and, for shard-cut views, whose shard was untouched)
  // survive — deletes remap their ids in place — while everything else
  // is erased. Mutations serialize with each other; queries never block.

  /// Append every row of `rows` (dims must match). Returns the new minor
  /// version. Throws std::runtime_error on unknown name or dims
  /// mismatch.
  uint64_t InsertPoints(const std::string& name, const Dataset& rows);

  /// Delete the rows with the given current ids (duplicates tolerated).
  /// Returns the new minor version. Throws std::runtime_error on unknown
  /// name or an out-of-range id.
  uint64_t DeletePoints(const std::string& name, std::span<const PointId> ids);

  /// Minor version of a registered dataset (0 = never mutated; also 0 if
  /// absent). Bumped by every InsertPoints / DeletePoints batch.
  uint64_t MinorVersion(const std::string& name) const;

  /// Look up a registered dataset (nullptr if absent).
  std::shared_ptr<const Dataset> Find(const std::string& name) const;

  /// Shard decomposition of a registered dataset (nullptr if absent or
  /// registered unsharded).
  std::shared_ptr<const ShardMap> FindShards(const std::string& name) const;

  /// Registration-time statistics sketch of a registered dataset — the
  /// cost model's whole-dataset selection input (nullptr if absent).
  std::shared_ptr<const StatsSketch> FindSketch(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> DatasetNames() const;

  /// Execute `spec` against the dataset registered under `name`,
  /// consulting the result cache first. Safe for concurrent callers; two
  /// racing misses on the same key may both compute (last insert wins —
  /// both results are correct). On multi-shard plans a progressive
  /// callback fires during the merge stage (once partial results are
  /// confirmed global), not per shard; single-shard plans stream as the
  /// unsharded path does. Throws std::runtime_error for unknown names or
  /// invalid specs. Runtime outcomes are returned, not thrown: a deadline
  /// (Options::deadline_ms) or caller cancellation comes back as
  /// QueryResult::status (with a `truncated` partial on progressive
  /// requests), admission-control rejection as kOverloaded (or a `stale`
  /// answer under Config::serve_stale), and any exception a worker
  /// raises mid-compute — std::bad_alloc included — is contained and
  /// mapped to kInternalError with the engine state intact.
  QueryResult Execute(const std::string& name, const QuerySpec& spec,
                      const Options& opts = Options{});

  void ClearCache() {
    cache_.Clear();
    view_cache_.Clear();
    selectivity_cache_.Clear();
    zonemap_cache_.Clear();
  }

  /// The learner behind Config::cost_learning (state persists across
  /// queries; exposed so tests and benches can inspect or reset it).
  CostLearner& Learner() { return learner_; }
  const CostLearner& Learner() const { return learner_; }

  /// A cached constraint-selectivity estimate plus the constraint box it
  /// was estimated for (the mutation path's invalidation key).
  struct SelectivityEntry {
    double value = 1.0;
    std::vector<DimConstraint> constraints;
  };

  /// One coherent engine-health snapshot (EngineMetricsSnapshot, defined
  /// below): all three cache counter sets plus the registered-dataset
  /// count, read in one call. The per-cache accessors below are thin
  /// shims over this.
  EngineMetricsSnapshot MetricsSnapshot() const;
  LruCache<QueryResult>::Counters cache_counters() const;
  LruCache<QueryView>::Counters view_cache_counters() const;
  LruCache<SelectivityEntry>::Counters selectivity_cache_counters() const;
  LruCache<ZoneMapIndex>::Counters zonemap_cache_counters() const;

  /// The engine's metrics registry — every counter/histogram the serving
  /// and mutation paths feed (plus the cache-counter collector), ready
  /// for obs/export.h. Snapshotting is safe concurrently with serving.
  obs::MetricsRegistry& Metrics() { return metrics_; }
  const obs::MetricsRegistry& Metrics() const { return metrics_; }

  /// The engine-owned shared scheduler every serving and mutation path
  /// runs on (Config::executor_threads). Exposed so callers embedding the
  /// engine can co-schedule their own work on the same bounded worker set.
  Executor& executor() { return executor_; }
  const Executor& executor() const { return executor_; }

 private:
  struct Registered {
    /// Whole-dataset rows at current ids. For sharded datasets a
    /// mutation clears this (the truth lives in the shards); Find()
    /// lazily reconcatenates and re-caches it. Never null when
    /// `shards` is null.
    std::shared_ptr<const Dataset> data;
    std::shared_ptr<const ShardMap> shards;  // nullptr when unsharded
    std::shared_ptr<const StatsSketch> sketch;  // whole-dataset sketch
    uint64_t version = 0;
    uint64_t minor = 0;  ///< bumped per mutation batch
    int dims = 0;        ///< stable across mutations
    size_t count = 0;    ///< current row count
  };

  /// Cache inserts gated on (`version`, `minor`) still being the
  /// registered generation of `name`, checked under the registry lock so
  /// the insert cannot interleave with a re-registration's purge or a
  /// mutation's selective fixup: a replacement/mutation blocks on the
  /// registry lock until the Put finishes, and its ErasePrefix/EditPrefix
  /// then sees the entry — a computation that outlived its generation
  /// can never leave stale entries squatting under live keys.
  void PutResultIfCurrent(const std::string& name, uint64_t version,
                          uint64_t minor, const std::string& key,
                          std::shared_ptr<const QueryResult> value);
  void PutViewIfCurrent(const std::string& name, uint64_t version,
                        uint64_t minor, const std::string& key,
                        std::shared_ptr<const QueryView> value);
  void PutSelectivityIfCurrent(const std::string& name, uint64_t version,
                               uint64_t minor, const std::string& key,
                               std::shared_ptr<const SelectivityEntry> value);
  void PutZonemapIfCurrent(const std::string& name, uint64_t version,
                           uint64_t minor, const std::string& key,
                           std::shared_ptr<const ZoneMapIndex> value);

  /// A block-locally repaired zonemap index ready to replace a cache
  /// entry the mutation invalidated, stamped with its post-mutation
  /// epoch. Built pre-publish (outside the registry lock) by
  /// InsertPoints / DeletePoints from the still-valid cached index.
  using RepairedZonemap =
      std::pair<std::string, std::shared_ptr<const ZoneMapIndex>>;

  /// Selective cache fixup after a mutation, called with `registry_mu_`
  /// held exclusively (lock order registry -> cache is the process-wide
  /// rule). `mut_lo`/`mut_hi` bound every mutated row; `touched_shards`
  /// flags repaired shards (empty when unsharded); `id_shift` is the
  /// delete compaction map (empty for pure inserts). Zonemap entries for
  /// touched shards (and the whole-dataset entry) are erased, then the
  /// `repaired_zonemaps` replacements are installed.
  void FixupCachesLocked(const std::string& prefix,
                         const std::vector<Value>& mut_lo,
                         const std::vector<Value>& mut_hi,
                         const std::vector<uint8_t>& touched_shards,
                         const std::vector<uint32_t>& id_shift,
                         const std::vector<RepairedZonemap>& repaired_zonemaps);

  /// Hot-path instruments, interned once at construction so serving
  /// threads never touch the registry mutex (obs/metrics.h pointers are
  /// stable for the registry's lifetime).
  struct Instruments {
    obs::Counter* queries = nullptr;        ///< sky_engine_queries_total
    obs::Histogram* latency = nullptr;      ///< sky_query_latency_seconds
    obs::Histogram* compute = nullptr;      ///< sky_query_compute_seconds
    obs::Counter* view_builds = nullptr;    ///< sky_engine_view_builds_total
    obs::Counter* inserts = nullptr;        ///< sky_mutation_inserts_total
    obs::Counter* deletes = nullptr;        ///< sky_mutation_deletes_total
    obs::Counter* rows_inserted = nullptr;
    obs::Counter* rows_deleted = nullptr;
    obs::Counter* retries = nullptr;  ///< sky_mutation_retries_total
    obs::Counter* repair_dom_tests = nullptr;
    obs::Counter* sketch_rebuilds = nullptr;
    obs::Histogram* mutation_latency = nullptr;  ///< sky_mutation_seconds
    obs::Counter* invalidated_results = nullptr;
    obs::Counter* invalidated_views = nullptr;
    obs::Counter* invalidated_selectivities = nullptr;
    obs::Counter* invalidated_zonemaps = nullptr;
    obs::Counter* zonemap_repairs = nullptr;  ///< sky_zonemap_repairs_total
    /// sky_query_deadline_exceeded_total — queries whose deadline tripped
    /// (truncated partials included).
    obs::Counter* deadline_exceeded = nullptr;
    /// sky_query_shed_total — queries rejected by admission control.
    obs::Counter* shed = nullptr;
    /// sky_query_degraded_total — degraded answers served: stale cache
    /// entries and truncated progressive prefixes.
    obs::Counter* degraded = nullptr;
    /// sky_engine_algorithm_total{algo=...}, indexed by Algorithm value —
    /// one bump per executed shard (the planner decision tally).
    std::array<obs::Counter*, static_cast<size_t>(Algorithm::kAuto) + 1>
        algorithm{};
  };

  void WireInstruments();

  const Config config_;
  /// The shared work-stealing worker set (declared before the caches so
  /// it outlives any destructor-ordered teardown that might still touch
  /// it). All TaskGroups are scoped inside Execute/mutation calls, which
  /// must have returned before destruction — the usual engine-outlives-
  /// callers contract.
  Executor executor_;
  obs::MetricsRegistry metrics_;
  Instruments inst_;
  mutable std::shared_mutex registry_mu_;
  std::map<std::string, Registered> registry_;  // guarded by registry_mu_
  uint64_t next_version_ = 1;                   // guarded by registry_mu_
  /// Serializes InsertPoints / DeletePoints batches with each other (the
  /// registry lock is only held for snapshot and publish, so concurrent
  /// mutations could otherwise interleave their repair work). Always
  /// acquired before registry_mu_.
  std::mutex mutation_mu_;
  /// Fresh computes currently inside Execute (admission control's
  /// Config::max_inflight gauge; cache hits and shed queries never
  /// count).
  std::atomic<int> inflight_{0};
  LruCache<QueryResult> cache_;
  LruCache<QueryView> view_cache_;
  /// Constraint-selectivity estimates, keyed by (dataset version |
  /// constraint key) like the other caches so a re-registration's purge
  /// invalidates them with the sketch they came from. Values carry their
  /// constraint box so mutations can invalidate selectively.
  LruCache<SelectivityEntry> selectivity_cache_;
  /// Lazily built per-shard (and whole-dataset) block zonemap indexes
  /// (index/zonemap.h), keyed "<version>|zm|s<idx>" / "<version>|zm|d"
  /// and epoch-guarded like shard views: an entry is served only when its
  /// source_epoch still matches the shard epoch (the minor version for
  /// unsharded data). Only default-block-size indexes are cached;
  /// explicit Options::block_rows overrides build privately.
  LruCache<ZoneMapIndex> zonemap_cache_;
  CostLearner learner_;  ///< behind Config::cost_learning
};

/// Unified engine-health snapshot: all three cache counter sets plus the
/// registered-dataset count, read through one call instead of three
/// accessors whose values could straddle concurrent traffic.
struct EngineMetricsSnapshot {
  LruCache<QueryResult>::Counters result_cache;
  LruCache<QueryView>::Counters view_cache;
  LruCache<SkylineEngine::SelectivityEntry>::Counters selectivity_cache;
  LruCache<ZoneMapIndex>::Counters zonemap_cache;
  size_t datasets = 0;
};

inline LruCache<QueryResult>::Counters SkylineEngine::cache_counters() const {
  return MetricsSnapshot().result_cache;
}
inline LruCache<QueryView>::Counters SkylineEngine::view_cache_counters()
    const {
  return MetricsSnapshot().view_cache;
}
inline LruCache<SkylineEngine::SelectivityEntry>::Counters
SkylineEngine::selectivity_cache_counters() const {
  return MetricsSnapshot().selectivity_cache;
}
inline LruCache<ZoneMapIndex>::Counters
SkylineEngine::zonemap_cache_counters() const {
  return MetricsSnapshot().zonemap_cache;
}

}  // namespace sky

#endif  // SKY_QUERY_ENGINE_H_
