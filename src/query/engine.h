// Copyright (c) SkyBench-NG contributors.
// SkylineEngine: the long-lived serving layer on top of the algorithm
// suite. Holds a registry of named datasets (padded rows built once at
// registration), rewrites each QuerySpec into a materialized view, runs
// any of the implemented algorithms against it, maps ids back, and caches
// finished results in an LRU keyed by the canonical spec. All public
// methods are safe to call concurrently from many threads.
#ifndef SKY_QUERY_ENGINE_H_
#define SKY_QUERY_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/options.h"
#include "query/query_spec.h"
#include "query/result_cache.h"

namespace sky {

/// Result of one query: original-dataset row ids plus per-id dominator
/// counts under the query's dominance relation (all zero when band_k == 1).
struct QueryResult {
  std::vector<PointId> ids;
  std::vector<uint32_t> dominator_counts;  ///< parallel to `ids`
  size_t matched_rows = 0;  ///< rows inside the constraint box
  bool cache_hit = false;   ///< true when served from the result cache
  RunStats stats;           ///< stats of the run that produced the entry
};

/// One-shot, uncached execution of `spec` against `data` with the
/// algorithm/threads/alpha selection in `opts` (band_k > 1 routes to
/// ComputeSkyband, which ignores the algorithm field). This is the whole
/// rewrite pipeline: canonicalize, materialize the view, compute, map ids
/// back, apply the top-k cap. Throws std::runtime_error on invalid specs.
QueryResult RunQuery(const Dataset& data, const QuerySpec& spec,
                     const Options& opts = Options{});

/// Re-run `spec` through the BNL reference path and compare id sets (and
/// dominator counts) against `r`. O(view^2); test and --verify use.
bool VerifyQuery(const Dataset& data, const QuerySpec& spec,
                 const QueryResult& r);

class SkylineEngine {
 public:
  struct Config {
    /// Max finished results kept in the LRU cache (0 disables caching).
    size_t result_cache_capacity = 128;
  };

  SkylineEngine();  // default Config
  explicit SkylineEngine(Config config);

  SkylineEngine(const SkylineEngine&) = delete;
  SkylineEngine& operator=(const SkylineEngine&) = delete;

  /// Register (or replace) a dataset under `name`. Replacement bumps the
  /// version, so cached results of the old generation can never be served
  /// for the new data. Returns the registered version.
  uint64_t RegisterDataset(const std::string& name, Dataset data);

  /// Drop `name` from the registry and purge its result-cache entries.
  /// In-flight queries holding the dataset finish safely (shared
  /// ownership). Returns false if absent.
  bool EvictDataset(const std::string& name);

  /// Look up a registered dataset (nullptr if absent).
  std::shared_ptr<const Dataset> Find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> DatasetNames() const;

  /// Execute `spec` against the dataset registered under `name`,
  /// consulting the result cache first. Safe for concurrent callers; two
  /// racing misses on the same key may both compute (last insert wins —
  /// both results are correct). Throws std::runtime_error for unknown
  /// names or invalid specs.
  QueryResult Execute(const std::string& name, const QuerySpec& spec,
                      const Options& opts = Options{});

  void ClearCache() { cache_.Clear(); }
  LruCache<QueryResult>::Counters cache_counters() const {
    return cache_.counters();
  }

 private:
  struct Registered {
    std::shared_ptr<const Dataset> data;
    uint64_t version = 0;
  };

  mutable std::shared_mutex registry_mu_;
  std::map<std::string, Registered> registry_;  // guarded by registry_mu_
  uint64_t next_version_ = 1;                   // guarded by registry_mu_
  LruCache<QueryResult> cache_;
};

}  // namespace sky

#endif  // SKY_QUERY_ENGINE_H_
