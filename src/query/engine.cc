// Copyright (c) SkyBench-NG contributors.
#include "query/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "common/cancel.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "core/skyband.h"
#include "core/skyline.h"
#include "core/zonemap_skyline.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"
#include "parallel/thread_pool.h"
#include "query/cost_model.h"
#include "query/delta.h"
#include "query/view.h"

namespace sky {
namespace {

/// Largest candidate union the sharded merge filters directly with the
/// batched tile kernels instead of launching a full skyline algorithm.
/// The direct filter is O(total * m) but skips the WorkingSet copy,
/// sort, and pool spin-up, which dominate at this scale.
constexpr size_t kBatchMergeMaxRows = 4096;

/// Top-k rank score. NaN (possible in loaded CSV data) sorts last —
/// mapping it to +inf keeps std::sort's strict weak ordering intact.
Value RankScore(const Dataset& view, size_t row) {
  const Value s = ViewRowScore(view, row);
  return std::isnan(s) ? std::numeric_limits<Value>::infinity() : s;
}

/// Rank r's entries by (dominator count asc, view score asc, original id
/// asc) and truncate to top_k. `scores` is parallel to r.ids.
void RankAndTruncate(QueryResult& r, size_t top_k,
                     const std::vector<Value>& scores) {
  std::vector<size_t> order(r.ids.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (r.dominator_counts[a] != r.dominator_counts[b]) {
      return r.dominator_counts[a] < r.dominator_counts[b];
    }
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return r.ids[a] < r.ids[b];
  });
  const size_t keep = std::min(top_k, order.size());
  std::vector<PointId> ids(keep);
  std::vector<uint32_t> counts(keep);
  for (size_t i = 0; i < keep; ++i) {
    ids[i] = r.ids[order[i]];
    counts[i] = r.dominator_counts[order[i]];
  }
  r.ids = std::move(ids);
  r.dominator_counts = std::move(counts);
}

/// Execute stage on one already-rewritten target: compute the skyline /
/// k-skyband, map target-local rows to final ids through `row_map`
/// (nullptr = identity), and apply the top-k cap.
QueryResult RunOnTarget(const Dataset& target,
                        const std::vector<PointId>* row_map,
                        const QuerySpec& canon, const Options& opts) {
  QueryResult r;
  r.matched_rows = target.count();
  if (target.count() == 0) return r;

  Options run_opts = opts;
  if (run_opts.algorithm == Algorithm::kAuto) {
    // Engine paths resolve kAuto from registration-time sketches before
    // reaching here; this covers one-shot RunQuery callers. The target
    // is already constraint-filtered, so a fresh sketch of it is the
    // exact selection input (selectivity 1). Skybands run Q-Flow's
    // block flow whatever the field says — report that truthfully.
    run_opts.algorithm = canon.band_k == 1
                             ? ChooseAlgorithmForDataset(target, run_opts)
                             : Algorithm::kQFlow;
  }
  r.shard_algorithms.assign(1, run_opts.algorithm);
  if (opts.progressive && row_map != nullptr) {
    // Progressive ids must arrive in the caller's row space: remap each
    // confirmed batch out of the view's row numbering before forwarding.
    const ProgressiveCallback callback = opts.progressive;
    run_opts.progressive = [callback, row_map](std::span<const PointId> ids) {
      std::vector<PointId> mapped(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        mapped[i] = (*row_map)[ids[i]];
      }
      callback(mapped);
    };
  }

  std::vector<PointId> view_rows;  // result ids in target-local row space
  if (canon.band_k == 1) {
    Result run = ComputeSkyline(target, run_opts);
    r.stats = run.stats;
    view_rows = std::move(run.skyline);
    r.dominator_counts.assign(view_rows.size(), 0u);
  } else {
    SkybandResult run = ComputeSkyband(target, canon.band_k, run_opts);
    r.stats = run.stats;
    view_rows = std::move(run.skyband);
    r.dominator_counts = std::move(run.dominator_counts);
  }

  r.ids.resize(view_rows.size());
  if (row_map == nullptr) {
    std::copy(view_rows.begin(), view_rows.end(), r.ids.begin());
  } else {
    for (size_t i = 0; i < view_rows.size(); ++i) {
      r.ids[i] = (*row_map)[view_rows[i]];
    }
  }

  if (canon.top_k > 0) {
    std::vector<Value> scores(view_rows.size());
    for (size_t i = 0; i < view_rows.size(); ++i) {
      scores[i] = RankScore(target, view_rows[i]);
    }
    RankAndTruncate(r, canon.top_k, scores);
  }
  r.stats.skyline_size = r.ids.size();
  return r;
}

/// Execute stage on raw rows through the zonemap direct path: run the
/// BBS traversal against the constraint box without materializing a
/// view (band-1 box-only specs only — raw rows carry the exact view
/// values there, so dominance and rank scores match the view path
/// bit-for-bit). `row_map` maps index-local rows to final ids.
QueryResult RunZonemapDirect(const Dataset& data, const ZoneMapIndex& index,
                             const std::vector<PointId>* row_map,
                             const QuerySpec& canon, const Options& opts) {
  QueryResult r;
  if (data.count() == 0) return r;

  Options run_opts = opts;
  if (opts.progressive && row_map != nullptr) {
    const ProgressiveCallback callback = opts.progressive;
    run_opts.progressive = [callback, row_map](std::span<const PointId> ids) {
      std::vector<PointId> mapped(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        mapped[i] = (*row_map)[ids[i]];
      }
      callback(mapped);
    };
  }
  ZonemapRunResult run =
      ZonemapSkylineRun(data, index, canon.constraints, run_opts);
  r.stats = run.stats;
  r.matched_rows = run.matched_rows;
  r.shard_algorithms.assign(1, Algorithm::kZonemap);
  r.ids.resize(run.skyline.size());
  if (row_map == nullptr) {
    std::copy(run.skyline.begin(), run.skyline.end(), r.ids.begin());
  } else {
    for (size_t i = 0; i < run.skyline.size(); ++i) {
      r.ids[i] = (*row_map)[run.skyline[i]];
    }
  }
  r.dominator_counts.assign(r.ids.size(), 0u);
  if (canon.top_k > 0) {
    std::vector<Value> scores(run.skyline.size());
    for (size_t i = 0; i < run.skyline.size(); ++i) {
      scores[i] = RankScore(data, run.skyline[i]);
    }
    RankAndTruncate(r, canon.top_k, scores);
  }
  r.stats.skyline_size = r.ids.size();
  return r;
}

/// Fold per-phase times and counters of a partial run into `into`,
/// leaving total_seconds / skyline_size to the caller (the executor
/// reports true end-to-end wall time, not the sum of parallel shards).
void AccumulateStats(RunStats& into, const RunStats& from) {
  into.init_seconds += from.init_seconds;
  into.prefilter_seconds += from.prefilter_seconds;
  into.pivot_seconds += from.pivot_seconds;
  into.phase1_seconds += from.phase1_seconds;
  into.phase2_seconds += from.phase2_seconds;
  into.compress_seconds += from.compress_seconds;
  into.other_seconds += from.other_seconds;
  into.dominance_tests += from.dominance_tests;
  into.mask_filter_hits += from.mask_filter_hits;
  into.prefiltered_points += from.prefiltered_points;
}

/// Per-shard execute-stage output, kept alive until the merge copies the
/// candidate rows out of the shard view. The trace fields are filled only
/// when a TraceBuilder is attached (spans are emitted post-hoc on the
/// coordinating thread, so worker threads just record timings here).
struct ShardPartial {
  std::shared_ptr<const QueryView> view;  // null when the spec is identity
  std::vector<PointId> cand_rows;         // target-local candidate rows
  RunStats stats;
  double trace_start = 0.0;    // seconds since the trace epoch
  double trace_seconds = 0.0;  // shard wall time
  bool view_built = false;     // view materialized (vs. cache hit)
  bool maintained = false;     // served from the maintained shard skyline
  bool direct = false;         // ran the zonemap direct path (no view)
  size_t matched = 0;          // rows in the box, when `direct`
};

/// Source of per-shard materialized views: the engine passes a lambda
/// backed by its view cache so a band_k / top-k sweep over one box pays
/// each shard's materialization once; the one-shot RunShardedQuery path
/// leaves it empty and the executor materializes locally. `built`
/// (nullable) reports whether the call materialized (true) or reused a
/// cached view — the trace's view=build|hit attribute.
using ShardViewProvider = std::function<std::shared_ptr<const QueryView>(
    uint32_t shard_index, bool* built)>;

/// Source of per-shard zonemap indexes for the direct path, backed by the
/// engine's epoch-guarded zonemap cache. Returns nullptr when the caller
/// should build privately (no cache, or a non-default Options::block_rows
/// that must not share the fixed cache keys).
using ZonemapProvider =
    std::function<std::shared_ptr<const ZoneMapIndex>(uint32_t shard_index)>;

std::shared_ptr<const QueryView> ViewOfShard(
    const ShardMap& map, uint32_t shard_index, const QuerySpec& canon,
    const ShardViewProvider& provider, bool* built) {
  if (provider) return provider(shard_index, built);
  if (built != nullptr) *built = true;
  return std::make_shared<const QueryView>(
      MaterializeView(map.shard(shard_index).rows(), canon));
}

/// Merge + finish: the interpreter for a planner-produced ExecutionPlan.
///
/// Correctness of the M(S) union-then-filter merge: every global skyline
/// point is non-dominated within its shard, so the union of partial
/// skylines contains SKY(data); and any non-member is dominated by a
/// minimal dominator that itself is a skyline point, hence in the union —
/// so SKY(union) == SKY(data). The depth-aware variant holds too: order a
/// point's dominator set D(p) by |D(.)| ascending; the i-th element has
/// at most i-1 dominators (its dominators are strictly earlier in the
/// order), so the first min(|D(p)|, k) of them are global k-skyband
/// members, each a per-shard band member of its own shard. Members
/// therefore keep their exact global count inside the union, and every
/// non-member still meets >= k dominators there.
QueryResult ExecuteShardedPlan(const ShardMap& map, const ExecutionPlan& plan,
                               const QuerySpec& canon, const Options& opts,
                               const ShardViewProvider& provider = {},
                               const ZonemapProvider& zonemap_provider = {},
                               obs::TraceBuilder* tb = nullptr,
                               int trace_parent = -1) {
  WallTimer timer;
  QueryResult r;
  r.shards_executed = static_cast<uint32_t>(plan.shards.size());
  r.shards_pruned = plan.pruned;
  if (plan.shards.empty()) {
    r.stats.total_seconds = timer.Seconds();
    return r;
  }
  const bool identity = canon.IsIdentityTransform();
  // Band-1 box-only specs let Algorithm::kZonemap run on the raw shard
  // rows (constraint box applied during the traversal), skipping view
  // materialization entirely.
  const bool zonemap_direct = canon.band_k == 1 && canon.IsBoxOnlyTransform();
  // Per-shard algorithm: the plan's cost-model picks when the request
  // was kAuto, the caller's explicit choice otherwise.
  const auto algo_of = [&](size_t s) {
    return plan.algorithms.empty() ? opts.algorithm : plan.algorithms[s];
  };
  /// Per-shard index for a direct run: the provider's cached entry, or a
  /// private build (one-shot paths and custom Options::block_rows). The
  /// private build's cost lands in `build_seconds`.
  const auto zonemap_of = [&](uint32_t shard_index, double* build_seconds)
      -> std::shared_ptr<const ZoneMapIndex> {
    if (zonemap_provider) {
      std::shared_ptr<const ZoneMapIndex> zm = zonemap_provider(shard_index);
      if (zm != nullptr) return zm;
    }
    WallTimer build_timer;
    const Shard& shard = map.shard(shard_index);
    auto zm = std::make_shared<const ZoneMapIndex>(
        ZoneMapIndex::Build(shard.rows(), opts.block_rows, &shard.sketch));
    *build_seconds += build_timer.Seconds();
    return zm;
  };

  // Single surviving shard: pruned shards hold no constraint-box row, so
  // the shard answer is the global answer — no merge stage at all. The
  // lone shard keeps the caller's full thread budget.
  if (plan.merge == MergeStrategy::kNone) {
    const Shard& shard = map.shard(plan.shards[0]);
    Options one_opts = opts;
    one_opts.algorithm = algo_of(0);
    const double span_start = tb != nullptr ? tb->Now() : 0.0;
    bool view_built = false;
    const bool direct =
        zonemap_direct && one_opts.algorithm == Algorithm::kZonemap;
    QueryResult one;
    if (direct) {
      double build_seconds = 0.0;
      const std::shared_ptr<const ZoneMapIndex> zm =
          zonemap_of(plan.shards[0], &build_seconds);
      one = RunZonemapDirect(shard.rows(), *zm, &shard.row_ids, canon,
                             one_opts);
      one.stats.other_seconds += build_seconds;
    } else if (identity) {
      one = RunOnTarget(shard.rows(), &shard.row_ids, canon, one_opts);
    } else {
      const std::shared_ptr<const QueryView> view =
          ViewOfShard(map, plan.shards[0], canon, provider, &view_built);
      std::vector<PointId> composed(view->row_ids.size());
      for (size_t i = 0; i < view->row_ids.size(); ++i) {
        composed[i] = shard.row_ids[view->row_ids[i]];
      }
      one = RunOnTarget(view->data, &composed, canon, one_opts);
      if (!provider) one.stats.other_seconds += view->materialize_seconds;
    }
    one.shards_executed = r.shards_executed;
    one.shards_pruned = r.shards_pruned;
    one.stats.total_seconds = timer.Seconds();
    if (tb != nullptr) {
      const int span =
          tb->AddSpan("shard[" + std::to_string(plan.shards[0]) + "]",
                      trace_parent, span_start, tb->Now() - span_start);
      tb->Attr(span, "algo",
               one.shard_algorithms.empty()
                   ? AlgorithmName(one_opts.algorithm)
                   : AlgorithmName(one.shard_algorithms[0]));
      tb->AttrCount(span, "rows", one.matched_rows);
      tb->AttrCount(span, "members", one.ids.size());
      if (opts.count_dts) {
        tb->AttrCount(span, "dom_tests", one.stats.dominance_tests);
      }
      if (direct) {
        tb->Attr(span, "view", "direct");
      } else if (!identity) {
        tb->Attr(span, "view", view_built ? "build" : "hit");
      }
    }
    return one;
  }

  // Execute stage. Two shapes, chosen by the planner's thread budget:
  // parallelism across shards with each shard sequential (the default),
  // or — when pruning left fewer shards than threads — shards in turn,
  // each running its algorithm with intra-shard parallelism. Per-shard
  // progressive callbacks are suppressed either way — a shard-local
  // skyline point is not a confirmed global member; the merge stage
  // streams the confirmed answer instead.
  Options shard_opts = opts;
  shard_opts.threads = plan.shard_threads;
  shard_opts.progressive = nullptr;
  const size_t n_shards = plan.shards.size();
  std::vector<ShardPartial> parts(n_shards);
  const auto run_shard = [&](size_t s) {
    // Cancellation/failure checkpoint per shard: a tripped token (or an
    // armed shard_execute failpoint) unwinds into the fan-out group,
    // which cancels the siblings and rethrows at the join.
    CheckCancel(opts.cancel);
    SKY_FAILPOINT("shard_execute");
    const Shard& shard = map.shard(plan.shards[s]);
    ShardPartial& p = parts[s];
    // tb->Now() only reads the immutable epoch and the steady clock, so
    // worker threads may stamp their own slots concurrently.
    if (tb != nullptr) p.trace_start = tb->Now();
    if (identity && canon.band_k == 1 && shard.skyline != nullptr) {
      // The mutation path maintains exactly this shard's skyline: hand
      // the merge the precomputed candidates and skip the per-shard
      // compute. Constrained or view-transformed specs cannot take this
      // shortcut (filtering changes the dominance set), but identity is
      // the common serving case and the one mutations repair for.
      p.cand_rows = *shard.skyline;
      p.maintained = true;
      if (tb != nullptr) p.trace_seconds = tb->Now() - p.trace_start;
      return;
    }
    if (zonemap_direct && algo_of(s) == Algorithm::kZonemap) {
      // Direct path: traverse the shard's (cached) zonemap index against
      // the constraint box on raw rows — no view. The per-shard
      // progressive suppression above applies unchanged.
      p.direct = true;
      if (shard.rows().count() > 0) {
        double build_seconds = 0.0;
        const std::shared_ptr<const ZoneMapIndex> zm =
            zonemap_of(plan.shards[s], &build_seconds);
        Options one = shard_opts;
        one.algorithm = Algorithm::kZonemap;
        ZonemapRunResult run =
            ZonemapSkylineRun(shard.rows(), *zm, canon.constraints, one);
        p.stats = run.stats;
        p.stats.other_seconds += build_seconds;
        p.cand_rows = std::move(run.skyline);
        p.matched = run.matched_rows;
      }
      if (tb != nullptr) p.trace_seconds = tb->Now() - p.trace_start;
      return;
    }
    if (!identity) {
      p.view =
          ViewOfShard(map, plan.shards[s], canon, provider, &p.view_built);
    }
    const Dataset& target = identity ? shard.rows() : p.view->data;
    if (target.count() == 0) {
      if (tb != nullptr) p.trace_seconds = tb->Now() - p.trace_start;
      return;
    }
    Options one = shard_opts;
    one.algorithm = algo_of(s);
    if (canon.band_k == 1) {
      Result run = ComputeSkyline(target, one);
      p.stats = run.stats;
      p.cand_rows = std::move(run.skyline);
    } else {
      SkybandResult run = ComputeSkyband(target, canon.band_k, one);
      p.stats = run.stats;
      p.cand_rows = std::move(run.skyband);
    }
    if (tb != nullptr) p.trace_seconds = tb->Now() - p.trace_start;
  };
  Executor::GroupStats exec_stats;
  bool used_group = false;
  const int workers = static_cast<int>(
      std::min(n_shards, static_cast<size_t>(opts.ResolvedThreads())));
  if (plan.shard_threads > 1) {
    // Shards in turn, each with intra-shard parallelism: the per-shard
    // algorithms borrow workers themselves (shard_opts carries
    // opts.executor), so no fan-out group is needed here.
    for (size_t s = 0; s < n_shards; ++s) run_shard(s);
  } else if (opts.executor != nullptr) {
    // Serving path: fan the shards out as one capped task group on the
    // engine's shared executor — zero pool constructions per request.
    Executor::TaskGroup group(*opts.executor, workers);
    group.set_cancel_token(opts.cancel);
    group.ParallelFor(n_shards, 1, [&](size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) run_shard(s);
    });
    exec_stats = group.stats();
    used_group = true;
  } else {
    // One-shot fallback (RunShardedQuery without an engine): a private
    // pool scoped to this call.
    ThreadPool pool(workers);
    pool.ParallelFor(n_shards, 1, [&](size_t begin, size_t end) {
      for (size_t s = begin; s < end; ++s) run_shard(s);
    });
  }
  r.shard_algorithms.resize(n_shards);
  for (size_t s = 0; s < n_shards; ++s) r.shard_algorithms[s] = algo_of(s);
  if (tb != nullptr) {
    // Spans are emitted post-hoc, in shard order, from the timings the
    // (possibly parallel) executors stamped into their slots.
    for (size_t s = 0; s < n_shards; ++s) {
      const ShardPartial& p = parts[s];
      const int span =
          tb->AddSpan("shard[" + std::to_string(plan.shards[s]) + "]",
                      trace_parent, p.trace_start, p.trace_seconds);
      tb->Attr(span, "algo", AlgorithmName(algo_of(s)));
      const Dataset& target = identity || p.direct
                                  ? map.shard(plan.shards[s]).rows()
                                  : p.view->data;
      tb->AttrCount(span, "rows", p.direct ? p.matched : target.count());
      tb->AttrCount(span, "candidates", p.cand_rows.size());
      if (opts.count_dts) {
        tb->AttrCount(span, "dom_tests", p.stats.dominance_tests);
      }
      if (p.maintained) tb->Attr(span, "maintained", "true");
      if (p.direct) {
        tb->Attr(span, "view", "direct");
      } else if (!identity) {
        tb->Attr(span, "view", p.view_built ? "build" : "hit");
      }
    }
    if (used_group) {
      // Scheduler accounting for the fan-out group: how many distinct
      // participants (workers + the caller) touched this query, how many
      // tasks it submitted or ran inline, and how many were stolen.
      tb->AttrCount(trace_parent, "executor.workers",
                    static_cast<size_t>(exec_stats.workers_used));
      tb->AttrCount(trace_parent, "executor.tasks",
                    static_cast<size_t>(exec_stats.tasks +
                                        exec_stats.inline_runs));
      tb->AttrCount(trace_parent, "executor.steals",
                    static_cast<size_t>(exec_stats.steals));
    }
  }

  int view_dims = 0;
  for (const Preference pref : canon.preferences) {
    if (pref != Preference::kIgnore) ++view_dims;
  }
  size_t total = 0;
  for (size_t s = 0; s < n_shards; ++s) {
    const ShardPartial& p = parts[s];
    if (p.direct) {
      r.matched_rows += p.matched;
    } else {
      const Dataset& target =
          identity ? map.shard(plan.shards[s]).rows() : p.view->data;
      r.matched_rows += target.count();
    }
    total += p.cand_rows.size();
    AccumulateStats(r.stats, p.stats);
    if (!identity && !p.direct && !provider) {
      r.stats.other_seconds += p.view->materialize_seconds;
    }
  }

  // Merge stage: M(S) — copy every candidate's view-space row into one
  // union set and dominance-filter it (depth-aware for k-skybands).
  // Checkpoint before committing to the union copy: the per-shard work
  // above may have consumed the whole deadline budget.
  CheckCancel(opts.cancel);
  SKY_FAILPOINT("merge_union");
  const double merge_start = tb != nullptr ? tb->Now() : 0.0;
  uint64_t merge_dts = 0;
  const char* merge_path = "empty";
  Dataset merged(view_dims, total);
  std::vector<PointId> merged_ids(total);
  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(view_dims);
  size_t w = 0;
  for (size_t s = 0; s < n_shards; ++s) {
    const Shard& shard = map.shard(plan.shards[s]);
    const ShardPartial& p = parts[s];
    // Direct partials are rows of the raw shard in shard-local numbering
    // (box-only specs keep every dimension, so raw rows are view rows).
    const bool raw = identity || p.direct;
    const Dataset& target = raw ? shard.rows() : p.view->data;
    for (const PointId row : p.cand_rows) {
      std::memcpy(merged.MutableRow(w), target.Row(row), row_bytes);
      merged_ids[w] =
          raw ? shard.row_ids[row] : shard.row_ids[p.view->row_ids[row]];
      ++w;
    }
  }

  std::vector<PointId> members;
  const DomCtx merge_dom(view_dims, merged.stride(), opts.use_simd,
                         opts.use_batch);
  if (total > 0 && canon.band_k == 1 && merge_dom.batch() &&
      total <= kBatchMergeMaxRows) {
    // Small unions skip the full algorithm run: tile the union once and
    // dominance-filter every candidate against it with the cache-blocked
    // batch kernel. A candidate never dominates itself (coincident
    // points do not dominate), so no self-exclusion is needed and the
    // surviving set is exactly SKY(union) with duplicates retained —
    // identical to what ComputeSkyline would return, minus its
    // WorkingSet copy, sort, and thread-pool setup.
    TileBlock tiles(view_dims, total);
    tiles.AppendRows(merged.Row(0), merged.stride(), total);
    std::vector<uint8_t> dominated(total, 0);
    uint64_t dts = 0;
    merge_dom.FilterTile(merged.Row(0), total, tiles, dominated.data(),
                         &dts);
    members.reserve(total);
    for (size_t i = 0; i < total; ++i) {
      if (dominated[i] == 0) members.push_back(static_cast<PointId>(i));
    }
    if (opts.count_dts) r.stats.dominance_tests += dts;
    merge_dts = dts;
    merge_path = "batch-filter";
    r.dominator_counts.assign(members.size(), 0u);
    if (opts.progressive && !members.empty()) {
      // The union contains the whole answer, so every survivor is a
      // confirmed global member: stream them as one block in caller row
      // space.
      std::vector<PointId> mapped(members.size());
      for (size_t i = 0; i < members.size(); ++i) {
        mapped[i] = merged_ids[members[i]];
      }
      opts.progressive(mapped);
    }
  } else if (total > 0 && canon.band_k > 1 && merge_dom.batch() &&
             total <= kBatchMergeMaxRows) {
    // Depth-aware twin of the batch filter above: tile the union once
    // and count each candidate's dominators with the capped tile kernel.
    // A count below band_k is exact (and, by the union-merge proof, the
    // candidate's exact global count); at or above the cap the candidate
    // is out regardless of the overshoot. Like ComputeSkyband, this path
    // never streams — partial counts confirm nothing early.
    TileBlock tiles(view_dims, total);
    tiles.AppendRows(merged.Row(0), merged.stride(), total);
    uint64_t dts = 0;
    members.reserve(total);
    r.dominator_counts.reserve(total);
    for (size_t i = 0; i < total; ++i) {
      const uint32_t c = merge_dom.CountDominators(
          merged.Row(i), tiles, total, canon.band_k,
          opts.count_dts ? &dts : nullptr);
      if (c < canon.band_k) {
        members.push_back(static_cast<PointId>(i));
        r.dominator_counts.push_back(c);
      }
    }
    if (opts.count_dts) r.stats.dominance_tests += dts;
    merge_dts = dts;
    merge_path = "batch-count";
  } else if (total > 0) {
    Options merge_opts = opts;
    if (merge_opts.algorithm == Algorithm::kAuto) {
      merge_opts.algorithm = plan.merge_algorithm;
    }
    // Progressive reporting streams from the merge stage: every member
    // the merge confirms is a global member (the union contains the whole
    // answer), remapped to caller row space. Per-shard runs stay silent —
    // their partial results are not confirmed until merged.
    merge_opts.progressive = nullptr;
    if (opts.progressive) {
      const ProgressiveCallback callback = opts.progressive;
      const std::vector<PointId>& union_ids = merged_ids;
      merge_opts.progressive = [callback,
                                &union_ids](std::span<const PointId> rows) {
        std::vector<PointId> mapped(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          mapped[i] = union_ids[rows[i]];
        }
        callback(mapped);
      };
    }
    if (canon.band_k == 1) {
      Result run = ComputeSkyline(merged, merge_opts);
      AccumulateStats(r.stats, run.stats);
      merge_dts = run.stats.dominance_tests;
      members = std::move(run.skyline);
      r.dominator_counts.assign(members.size(), 0u);
    } else {
      SkybandResult run = ComputeSkyband(merged, canon.band_k, merge_opts);
      AccumulateStats(r.stats, run.stats);
      merge_dts = run.stats.dominance_tests;
      members = std::move(run.skyband);
      r.dominator_counts = std::move(run.dominator_counts);
    }
    merge_path = AlgorithmName(merge_opts.algorithm);
  }
  if (tb != nullptr) {
    const int span = tb->AddSpan("merge", trace_parent, merge_start,
                                 tb->Now() - merge_start);
    tb->Attr(span, "strategy", MergeStrategyName(plan.merge));
    tb->Attr(span, "path", merge_path);
    tb->AttrCount(span, "union", total);
    tb->AttrCount(span, "members", members.size());
    if (opts.count_dts || merge_dts > 0) {
      tb->AttrCount(span, "dom_tests", merge_dts);
    }
  }
  r.ids.resize(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    r.ids[i] = merged_ids[members[i]];
  }
  if (canon.top_k > 0) {
    std::vector<Value> scores(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      scores[i] = RankScore(merged, members[i]);
    }
    RankAndTruncate(r, canon.top_k, scores);
  }
  r.stats.skyline_size = r.ids.size();
  r.stats.total_seconds = timer.Seconds();
  return r;
}

}  // namespace

QueryResult RunQuery(const Dataset& data, const QuerySpec& spec,
                     const Options& opts) {
  const QuerySpec canon = spec.Canonicalize(data.dims());
  if (!opts.trace) {
    // Fast path: the native question needs no view at all.
    if (canon.IsIdentityTransform()) {
      return RunOnTarget(data, nullptr, canon, opts);
    }
    const QueryView view = MaterializeView(data, canon);
    QueryResult r = RunOnTarget(view.data, &view.row_ids, canon, opts);
    r.stats.other_seconds += view.materialize_seconds;
    r.stats.total_seconds += view.materialize_seconds;
    return r;
  }
  obs::TraceBuilder tb;
  const int root = tb.Open("query");
  QueryResult r;
  if (canon.IsIdentityTransform()) {
    const int ex = tb.Open("execute", root);
    r = RunOnTarget(data, nullptr, canon, opts);
    tb.Close(ex);
    if (!r.shard_algorithms.empty()) {
      tb.Attr(ex, "algo", AlgorithmName(r.shard_algorithms[0]));
    }
    tb.AttrCount(ex, "rows", r.matched_rows);
  } else {
    const int vs = tb.Open("view.build", root);
    const QueryView view = MaterializeView(data, canon);
    tb.Close(vs);
    tb.AttrCount(vs, "rows", view.data.count());
    const int ex = tb.Open("execute", root);
    r = RunOnTarget(view.data, &view.row_ids, canon, opts);
    tb.Close(ex);
    if (!r.shard_algorithms.empty()) {
      tb.Attr(ex, "algo", AlgorithmName(r.shard_algorithms[0]));
    }
    tb.AttrCount(ex, "rows", r.matched_rows);
    r.stats.other_seconds += view.materialize_seconds;
    r.stats.total_seconds += view.materialize_seconds;
  }
  tb.AttrCount(root, "members", r.ids.size());
  tb.Close(root);
  r.trace = tb.Finish();
  return r;
}

QueryResult RunShardedQuery(const ShardMap& map, const QuerySpec& spec,
                            const Options& opts) {
  const QuerySpec canon = spec.Canonicalize(map.dims());
  if (!opts.trace) {
    return ExecuteShardedPlan(map, PlanQuery(map, canon, opts), canon, opts);
  }
  obs::TraceBuilder tb;
  const int root = tb.Open("query");
  const int ps = tb.Open("plan", root);
  const ExecutionPlan plan = PlanQuery(map, canon, opts);
  tb.Close(ps);
  tb.AttrCount(ps, "shards", plan.shards.size());
  tb.AttrCount(ps, "pruned", plan.pruned);
  tb.Attr(ps, "merge", MergeStrategyName(plan.merge));
  QueryResult r =
      ExecuteShardedPlan(map, plan, canon, opts, {}, {}, &tb, root);
  tb.AttrCount(root, "members", r.ids.size());
  tb.Close(root);
  r.trace = tb.Finish();
  return r;
}

size_t QueryResultBytes(const QueryResult& r) {
  return sizeof(QueryResult) + r.ids.size() * sizeof(PointId) +
         r.dominator_counts.size() * sizeof(uint32_t) +
         r.shard_algorithms.size() * sizeof(Algorithm) +
         r.constraints.size() * sizeof(DimConstraint);
}

bool VerifyQuery(const Dataset& data, const QuerySpec& spec,
                 const QueryResult& r) {
  // Brute-force reference: count dominators by definition with plain
  // nested loops on the materialized view — no ComputeSkyline /
  // ComputeSkyband code path is shared, so an algorithm bug cannot
  // reproduce itself in the reference (only the rewriter is common).
  const QuerySpec canon = spec.Canonicalize(data.dims());
  const QueryView view = MaterializeView(data, canon);
  const Dataset& v = view.data;
  const int d = v.dims();

  std::vector<PointId> rows;     // view-local qualifying rows
  std::vector<uint32_t> counts;  // their exact dominator counts
  for (size_t i = 0; i < v.count(); ++i) {
    const Value* q = v.Row(i);
    uint32_t c = 0;
    for (size_t j = 0; j < v.count() && c < canon.band_k; ++j) {
      if (j == i) continue;
      const Value* p = v.Row(j);
      bool all_le = true, some_lt = false;
      for (int k = 0; k < d; ++k) {
        all_le &= p[k] <= q[k];
        some_lt |= p[k] < q[k];
      }
      c += (all_le && some_lt);
    }
    if (c < canon.band_k) {
      rows.push_back(static_cast<PointId>(i));
      counts.push_back(c);
    }
  }

  std::vector<std::pair<PointId, uint32_t>> expect;
  if (canon.top_k > 0) {
    std::vector<size_t> order(rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (counts[a] != counts[b]) return counts[a] < counts[b];
      const Value sa = RankScore(v, rows[a]), sb = RankScore(v, rows[b]);
      if (sa != sb) return sa < sb;
      return view.row_ids[rows[a]] < view.row_ids[rows[b]];
    });
    const size_t keep = std::min(canon.top_k, order.size());
    for (size_t i = 0; i < keep; ++i) {
      expect.emplace_back(view.row_ids[rows[order[i]]], counts[order[i]]);
    }
    // Ranked results are fully deterministic: compare in order.
    std::vector<std::pair<PointId, uint32_t>> got;
    for (size_t i = 0; i < r.ids.size(); ++i) {
      got.emplace_back(r.ids[i], r.dominator_counts[i]);
    }
    return got == expect;
  }

  for (size_t i = 0; i < rows.size(); ++i) {
    expect.emplace_back(view.row_ids[rows[i]], counts[i]);
  }
  std::vector<std::pair<PointId, uint32_t>> got;
  for (size_t i = 0; i < r.ids.size(); ++i) {
    got.emplace_back(r.ids[i], r.dominator_counts[i]);
  }
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  return got == expect;
}

SkylineEngine::SkylineEngine() : SkylineEngine(Config{}) {}

SkylineEngine::SkylineEngine(Config config)
    : config_(config),
      executor_(config.executor_threads > 0 ? config.executor_threads
                                            : Executor::DefaultThreads()),
      cache_(config.result_cache_capacity, config.result_cache_bytes,
             &QueryResultBytes, config.result_cache_ttl),
      view_cache_(config.view_cache_capacity, config.view_cache_bytes,
                  &QueryViewBytes),
      selectivity_cache_(256),
      zonemap_cache_(64, 0, &ZoneMapIndexBytes) {
  WireInstruments();
}

EngineMetricsSnapshot SkylineEngine::MetricsSnapshot() const {
  EngineMetricsSnapshot s;
  s.result_cache = cache_.counters();
  s.view_cache = view_cache_.counters();
  s.selectivity_cache = selectivity_cache_.counters();
  s.zonemap_cache = zonemap_cache_.counters();
  std::shared_lock lock(registry_mu_);
  s.datasets = registry_.size();
  return s;
}

namespace {

/// Append one LRU cache's counters as registry-style metric values —
/// the caches keep their own counters under their own mutex (they work
/// even with Config::metrics off), so the registry reads them at
/// snapshot time through a collector instead of double-counting on the
/// hot path.
template <typename Counters>
void AppendCacheMetrics(const std::string& which, const Counters& c,
                        std::vector<obs::MetricValue>& out) {
  const auto push = [&out](std::string name, const char* help,
                           obs::MetricKind kind, double value) {
    obs::MetricValue m;
    m.name = std::move(name);
    m.help = help;
    m.kind = kind;
    m.value = value;
    out.push_back(std::move(m));
  };
  const std::string base = "sky_" + which + "_cache_";
  using obs::MetricKind;
  push(base + "hits_total", "Cache hits", MetricKind::kCounter,
       static_cast<double>(c.hits));
  push(base + "misses_total", "Cache misses", MetricKind::kCounter,
       static_cast<double>(c.misses));
  push(base + "evictions_total", "Evictions, any cause",
       MetricKind::kCounter, static_cast<double>(c.evictions));
  push(base + "byte_evictions_total", "Evictions forced by the byte budget",
       MetricKind::kCounter, static_cast<double>(c.byte_evictions));
  push(base + "ttl_evictions_total", "Entries lazily expired by the TTL",
       MetricKind::kCounter, static_cast<double>(c.ttl_evictions));
  push(base + "stale_hits_total",
       "TTL-expired entries returned for serve-stale fallback",
       MetricKind::kCounter, static_cast<double>(c.stale_hits));
  push(base + "entries", "Entries currently resident", MetricKind::kGauge,
       static_cast<double>(c.entries));
  push(base + "bytes", "Priced payload bytes currently resident",
       MetricKind::kGauge, static_cast<double>(c.bytes));
}

}  // namespace

void SkylineEngine::WireInstruments() {
  inst_.queries = metrics_.GetCounter("sky_engine_queries_total", {},
                                      "Queries served, hits included");
  inst_.latency = metrics_.GetHistogram("sky_query_latency_seconds", {},
                                        "End-to-end Execute latency");
  inst_.compute = metrics_.GetHistogram(
      "sky_query_compute_seconds", {},
      "Execute latency of result-cache misses (plan + execute + merge)");
  inst_.view_builds = metrics_.GetCounter(
      "sky_engine_view_builds_total", {},
      "Views materialized (view-cache misses and epoch rejections)");
  inst_.inserts = metrics_.GetCounter("sky_mutation_inserts_total", {},
                                      "InsertPoints batches applied");
  inst_.deletes = metrics_.GetCounter("sky_mutation_deletes_total", {},
                                      "DeletePoints batches applied");
  inst_.rows_inserted = metrics_.GetCounter("sky_mutation_rows_inserted_total",
                                            {}, "Rows appended by mutations");
  inst_.rows_deleted = metrics_.GetCounter("sky_mutation_rows_deleted_total",
                                           {}, "Rows removed by mutations");
  inst_.retries = metrics_.GetCounter(
      "sky_mutation_retries_total", {},
      "Mutation repairs discarded by a racing re-registration and retried");
  inst_.repair_dom_tests = metrics_.GetCounter(
      "sky_mutation_repair_dom_tests_total", {},
      "Dominance tests spent repairing shard skylines after mutations");
  inst_.sketch_rebuilds = metrics_.GetCounter(
      "sky_sketch_rebuilds_total", {},
      "Exact sketch rebuilds triggered by mutation staleness");
  inst_.mutation_latency = metrics_.GetHistogram(
      "sky_mutation_seconds", {},
      "End-to-end InsertPoints / DeletePoints latency");
  inst_.invalidated_results = metrics_.GetCounter(
      "sky_invalidated_results_total", {},
      "Cached results erased by mutation fixups");
  inst_.invalidated_views = metrics_.GetCounter(
      "sky_invalidated_views_total", {},
      "Cached views erased by mutation fixups");
  inst_.invalidated_selectivities = metrics_.GetCounter(
      "sky_invalidated_selectivities_total", {},
      "Cached selectivity estimates erased by mutation fixups");
  inst_.invalidated_zonemaps = metrics_.GetCounter(
      "sky_invalidated_zonemaps_total", {},
      "Cached zonemap indexes erased by mutation fixups");
  inst_.zonemap_repairs = metrics_.GetCounter(
      "sky_zonemap_repairs_total", {},
      "Cached zonemap indexes repaired block-locally across a mutation");
  inst_.deadline_exceeded = metrics_.GetCounter(
      "sky_query_deadline_exceeded_total", {},
      "Queries whose deadline tripped (truncated partials included)");
  inst_.shed = metrics_.GetCounter(
      "sky_query_shed_total", {},
      "Fresh computes rejected by admission control");
  inst_.degraded = metrics_.GetCounter(
      "sky_query_degraded_total", {},
      "Degraded answers served: stale cache entries and truncated "
      "progressive prefixes");
  for (size_t a = 0; a < inst_.algorithm.size(); ++a) {
    inst_.algorithm[a] = metrics_.GetCounter(
        "sky_engine_algorithm_total",
        {{"algo", AlgorithmName(static_cast<Algorithm>(a))}},
        "Executed shards by resolved algorithm");
  }
  metrics_.AddCollector([this](std::vector<obs::MetricValue>& out) {
    const EngineMetricsSnapshot s = MetricsSnapshot();
    AppendCacheMetrics("result", s.result_cache, out);
    AppendCacheMetrics("view", s.view_cache, out);
    AppendCacheMetrics("selectivity", s.selectivity_cache, out);
    AppendCacheMetrics("zonemap", s.zonemap_cache, out);
    obs::MetricValue datasets;
    datasets.name = "sky_datasets";
    datasets.help = "Registered datasets";
    datasets.kind = obs::MetricKind::kGauge;
    datasets.value = static_cast<double>(s.datasets);
    out.push_back(std::move(datasets));
    // Shared-scheduler counters, read from the executor's own atomics at
    // snapshot time (the scheduler keeps them regardless of
    // Config::metrics, like the cache counters above).
    const Executor::CountersSnapshot ex = executor_.Counters();
    const auto push = [&out](const char* name, const char* help,
                             obs::MetricKind kind, double value) {
      obs::MetricValue m;
      m.name = name;
      m.help = help;
      m.kind = kind;
      m.value = value;
      out.push_back(std::move(m));
    };
    push("sky_executor_tasks_total",
         "Tasks executed by the shared work-stealing executor",
         obs::MetricKind::kCounter, static_cast<double>(ex.tasks));
    push("sky_executor_steals_total",
         "Tasks acquired from another worker's deque",
         obs::MetricKind::kCounter, static_cast<double>(ex.steals));
    push("sky_executor_inline_runs_total",
         "Task-group submissions run inline on the submitter "
         "(caller-runs admission)",
         obs::MetricKind::kCounter, static_cast<double>(ex.inline_runs));
    push("sky_executor_parks_total", "Worker park (sleep) events",
         obs::MetricKind::kCounter, static_cast<double>(ex.parks));
    push("sky_executor_queue_depth",
         "Tasks currently queued and not yet running",
         obs::MetricKind::kGauge, static_cast<double>(ex.queue_depth));
    push("sky_executor_workers", "Executor width (including a caller slot)",
         obs::MetricKind::kGauge, static_cast<double>(executor_.threads()));
  });
}

namespace {

/// Every cache key of one dataset generation starts with this prefix.
/// Keyed by the numeric version alone: versions are globally unique and
/// never reused, and a digit string followed by '|' can never be a
/// proper prefix of another such prefix — so ErasePrefix / EditPrefix
/// can never reach another generation's entries. The dataset name stays
/// out of the key entirely; a name containing '@' or '|' could
/// otherwise forge a prefix of another dataset's keys and let one
/// dataset's mutation remap or erase the other's cached results.
std::string CacheKeyPrefix(uint64_t version) {
  return std::to_string(version) + "|";
}

}  // namespace

uint64_t SkylineEngine::RegisterDataset(const std::string& name,
                                        Dataset data) {
  return RegisterDataset(name, std::move(data), config_.shards,
                         config_.shard_policy);
}

uint64_t SkylineEngine::RegisterDataset(const std::string& name, Dataset data,
                                        size_t shards, ShardPolicy policy) {
  auto holder = std::make_shared<const Dataset>(std::move(data));
  // Plan stage inputs: the shard decomposition (with bounding boxes and
  // per-shard sketches) and the whole-dataset sketch are built once per
  // registration, never per query.
  std::shared_ptr<const ShardMap> map;
  if (shards > 1 && holder->count() > 1) {
    map = std::make_shared<const ShardMap>(
        ShardMap::Build(*holder, shards, policy, /*seed=*/42, &executor_));
  }
  auto sketch = std::make_shared<const StatsSketch>(ComputeSketch(*holder));
  const int dims = holder->dims();
  const size_t count = holder->count();
  uint64_t replaced_version = 0;
  uint64_t version = 0;
  {
    std::unique_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it != registry_.end()) replaced_version = it->second.version;
    version = next_version_++;
    registry_[name] = Registered{std::move(holder), std::move(map),
                                 std::move(sketch), version,
                                 /*minor=*/0, dims, count};
  }
  // The old generation can never be served again (versions are never
  // reused); free its results instead of letting them squat in the LRU.
  if (replaced_version != 0) {
    const std::string prefix = CacheKeyPrefix(replaced_version);
    cache_.ErasePrefix(prefix);
    view_cache_.ErasePrefix(prefix);
    selectivity_cache_.ErasePrefix(prefix);
    zonemap_cache_.ErasePrefix(prefix);
  }
  return version;
}

bool SkylineEngine::EvictDataset(const std::string& name) {
  uint64_t version = 0;
  {
    std::unique_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) return false;
    version = it->second.version;
    registry_.erase(it);
  }
  const std::string prefix = CacheKeyPrefix(version);
  cache_.ErasePrefix(prefix);
  view_cache_.ErasePrefix(prefix);
  selectivity_cache_.ErasePrefix(prefix);
  zonemap_cache_.ErasePrefix(prefix);
  return true;
}

namespace {

/// Whole-dataset rows of a mutated sharded generation: every shard row
/// is copied back to its current global id. O(n), done at most once per
/// minor version (Find caches the result back into the registry entry).
std::shared_ptr<const Dataset> ReconcatenateRows(const ShardMap& map,
                                                 int dims, size_t count) {
  auto rebuilt = std::make_shared<Dataset>(dims, count);
  for (size_t s = 0; s < map.shard_count(); ++s) {
    const Shard& shard = map.shard(s);
    const Dataset& rows = shard.rows();
    const size_t row_bytes =
        sizeof(Value) * static_cast<size_t>(rows.stride());
    for (size_t i = 0; i < rows.count(); ++i) {
      std::memcpy(rebuilt->MutableRow(shard.row_ids[i]), rows.Row(i),
                  row_bytes);
    }
  }
  return rebuilt;
}

}  // namespace

std::shared_ptr<const Dataset> SkylineEngine::Find(
    const std::string& name) const {
  std::shared_ptr<const ShardMap> shards;
  uint64_t version = 0;
  uint64_t minor = 0;
  int dims = 0;
  size_t count = 0;
  {
    std::shared_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) return nullptr;
    if (it->second.data != nullptr) return it->second.data;
    // A mutated sharded generation: the truth lives in the shards
    // (mutation kept the repair O(shard) by not rebuilding this).
    shards = it->second.shards;
    version = it->second.version;
    minor = it->second.minor;
    dims = it->second.dims;
    count = it->second.count;
  }
  std::shared_ptr<const Dataset> rebuilt =
      ReconcatenateRows(*shards, dims, count);
  // Cache the concatenation back so repeated Finds at the same minor pay
  // once, gated on the generation still being current. Find is logically
  // const — this only fills a memo slot derived from immutable shards.
  SkylineEngine* self = const_cast<SkylineEngine*>(this);
  std::unique_lock lock(self->registry_mu_);
  auto it = self->registry_.find(name);
  if (it == self->registry_.end()) return rebuilt;
  if (it->second.version == version && it->second.minor == minor) {
    if (it->second.data == nullptr) {
      it->second.data = rebuilt;
    }
    return it->second.data;
  }
  return rebuilt;
}

std::shared_ptr<const ShardMap> SkylineEngine::FindShards(
    const std::string& name) const {
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.shards;
}

std::shared_ptr<const StatsSketch> SkylineEngine::FindSketch(
    const std::string& name) const {
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.sketch;
}

void SkylineEngine::PutResultIfCurrent(
    const std::string& name, uint64_t version, uint64_t minor,
    const std::string& key, std::shared_ptr<const QueryResult> value) {
  // Lock order: registry (shared) -> cache mutex; no path takes them in
  // the other order, and RegisterDataset's purge runs after it released
  // the registry lock, so it must observe this insert. The minor check
  // closes the in-flight-mutation race the same way: a computation that
  // started before an InsertPoints/DeletePoints batch published cannot
  // cache its (pre-mutation) answer afterwards.
  SKY_FAILPOINT("result_cache_put");
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end() || it->second.version != version ||
      it->second.minor != minor) {
    return;
  }
  cache_.Put(key, std::move(value));
}

void SkylineEngine::PutViewIfCurrent(const std::string& name,
                                     uint64_t version, uint64_t minor,
                                     const std::string& key,
                                     std::shared_ptr<const QueryView> value) {
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end() || it->second.version != version ||
      it->second.minor != minor) {
    return;
  }
  view_cache_.Put(key, std::move(value));
}

void SkylineEngine::PutSelectivityIfCurrent(
    const std::string& name, uint64_t version, uint64_t minor,
    const std::string& key, std::shared_ptr<const SelectivityEntry> value) {
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end() || it->second.version != version ||
      it->second.minor != minor) {
    return;
  }
  selectivity_cache_.Put(key, std::move(value));
}

void SkylineEngine::PutZonemapIfCurrent(
    const std::string& name, uint64_t version, uint64_t minor,
    const std::string& key, std::shared_ptr<const ZoneMapIndex> value) {
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end() || it->second.version != version ||
      it->second.minor != minor) {
    return;
  }
  zonemap_cache_.Put(key, std::move(value));
}

std::vector<std::string> SkylineEngine::DatasetNames() const {
  std::shared_lock lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, entry] : registry_) names.push_back(name);
  return names;
}

QueryResult SkylineEngine::Execute(const std::string& name,
                                   const QuerySpec& spec,
                                   const Options& opts) {
  WallTimer timer;
  std::shared_ptr<const Dataset> data;
  std::shared_ptr<const ShardMap> shards;
  std::shared_ptr<const StatsSketch> sketch;
  uint64_t version = 0;
  uint64_t minor = 0;
  int dims = 0;
  {
    std::shared_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) {
      throw std::runtime_error("query engine: unknown dataset '" + name + "'");
    }
    // `data` may be null for a mutated sharded generation (the truth
    // lives in the shards); every path below that dereferences it is an
    // unsharded path, where it is always populated.
    data = it->second.data;
    shards = it->second.shards;
    sketch = it->second.sketch;
    version = it->second.version;
    minor = it->second.minor;
    dims = it->second.dims;
  }

  // Serving-wide auto-selection overrides the caller's algorithm; the
  // cost model then resolves per query (and per shard) below. Every
  // parallel stage of this request — shard fan-out, intra-shard phase
  // loops, the merge — runs as capped task groups on the engine's shared
  // executor; Options::threads is the request's concurrency limit there.
  Options eff = opts;
  eff.executor = config_.shared_executor ? &executor_ : nullptr;
  if (config_.auto_algorithm) eff.algorithm = Algorithm::kAuto;

  // Canonicalize before keying so equivalent spellings share an entry.
  // Sharding and algorithm choice are invisible to the key: results are
  // row-for-row identical for every K and every algorithm, so one entry
  // serves all decompositions and selections. Minor versions are
  // invisible too — a mutation edits the entries under these keys in
  // place (remap or erase) rather than abandoning them.
  const QuerySpec canon = spec.Canonicalize(dims);
  const std::string prefix = CacheKeyPrefix(version);
  const std::string key = prefix + canon.CanonicalKey();
  // Lookup. Under serve_stale the keep-expired variant is used so a
  // TTL-expired entry stays resident as the degraded fallback for a shed
  // or timed-out compute below — the plain Get would erase it.
  std::shared_ptr<const QueryResult> stale_fallback;
  std::shared_ptr<const QueryResult> hit;
  if (config_.serve_stale) {
    bool expired = false;
    std::shared_ptr<const QueryResult> entry =
        cache_.GetAllowStale(key, &expired);
    (expired ? stale_fallback : hit) = std::move(entry);
  } else {
    hit = cache_.Get(key);
  }
  if (hit != nullptr) {
    QueryResult out = *hit;
    out.cache_hit = true;
    if (config_.metrics) {
      inst_.queries->Add();
      inst_.latency->Observe(timer.Seconds());
    }
    if (eff.trace) {
      // Cached entries never carry the producing run's trace; a hit gets
      // a fresh two-span tree stamped post-hoc from the measured lookup.
      obs::TraceBuilder tb;
      const double elapsed = timer.Seconds();
      const int root = tb.AddSpan("query", -1, 0.0, elapsed);
      tb.Attr(root, "dataset", name);
      tb.Attr(root, "cache", "hit");
      tb.AttrCount(root, "members", out.ids.size());
      tb.AddSpan("cache.get", root, 0.0, elapsed);
      out.trace = tb.Finish();
    }
    return out;
  }

  // Admission control — after the cache lookup (hits are cheap and
  // always served), before any compute resource is committed. The
  // in-flight gauge and the executor backlog are advisory shed
  // thresholds, not synchronisation points, so relaxed ops suffice.
  const int prior_inflight = inflight_.fetch_add(1, std::memory_order_relaxed);
  struct InflightGuard {
    std::atomic<int>& gauge;
    ~InflightGuard() { gauge.fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard{inflight_};
  const bool over_inflight =
      config_.max_inflight > 0 && prior_inflight >= config_.max_inflight;
  const bool over_queue =
      !over_inflight && config_.max_queue_depth > 0 &&
      executor_.Counters().queue_depth > config_.max_queue_depth;
  if (over_inflight || over_queue) {
    QueryResult out;
    if (stale_fallback != nullptr) {
      out = *stale_fallback;
      out.cache_hit = true;
      out.stale = true;
      if (config_.metrics) inst_.degraded->Add();
    } else {
      out.status = Status::kOverloaded;
    }
    if (config_.metrics) {
      inst_.queries->Add();
      inst_.shed->Add();
      inst_.latency->Observe(timer.Seconds());
    }
    return out;
  }

  // Per-query deadline/cancel token, armed here rather than in
  // ComputeSkyline so every engine stage — view and zonemap builds, the
  // shard fan-out, the merge — shares one budget with the algorithm
  // block loops (eff.deadline_ms is cleared so dispatch does not re-arm).
  CancelToken query_token(eff.deadline_ms);
  if (eff.deadline_ms > 0 || eff.cancel != nullptr) {
    query_token.set_parent(eff.cancel);
    eff.cancel = &query_token;
    eff.deadline_ms = 0;
  }
  // Progressive requests additionally accumulate every confirmed batch
  // (already mapped to original-dataset ids by the paths that remap
  // before forwarding), so a deadline overrun can still answer with a
  // well-formed partial — each id a true member — flagged `truncated`.
  std::vector<PointId> confirmed_prefix;
  if (eff.progressive) {
    const ProgressiveCallback user_cb = eff.progressive;
    std::vector<PointId>* sink = &confirmed_prefix;
    eff.progressive = [user_cb, sink](std::span<const PointId> ids) {
      sink->insert(sink->end(), ids.begin(), ids.end());
      user_cb(ids);
    };
  }

  std::optional<obs::TraceBuilder> trace_builder;
  if (eff.trace) trace_builder.emplace();
  obs::TraceBuilder* tb =
      trace_builder.has_value() ? &*trace_builder : nullptr;
  int root = -1;
  if (tb != nullptr) {
    root = tb->Open("query");
    tb->Attr(root, "dataset", name);
    tb->Attr(root, "cache", "miss");
  }

  // Terminal handler for a compute that did not finish: map the cause to
  // a status, attach a degraded answer where policy allows (truncated
  // progressive prefix first — it is fresh — then a stale cache entry),
  // and keep the metrics/trace accounting aligned with the success path.
  // Nothing partial, stale, or failed is ever cached.
  const auto finish_aborted = [&](Status status) {
    QueryResult out;
    out.status = status;
    if (status == Status::kDeadlineExceeded) {
      if (config_.metrics) inst_.deadline_exceeded->Add();
      if (!confirmed_prefix.empty()) {
        // Confirmed members only: no top-k ranking, and zero dominator
        // counts keep the parallel-array invariant.
        out.ids = std::move(confirmed_prefix);
        out.dominator_counts.assign(out.ids.size(), 0u);
        out.truncated = true;
        if (config_.metrics) inst_.degraded->Add();
      } else if (stale_fallback != nullptr) {
        out = *stale_fallback;
        out.cache_hit = true;
        out.stale = true;
        if (config_.metrics) inst_.degraded->Add();
      }
    }
    if (config_.metrics) {
      inst_.queries->Add();
      inst_.latency->Observe(timer.Seconds());
    }
    if (tb != nullptr) {
      tb->Attr(root, "status", StatusName(out.status));
      if (out.truncated) tb->Attr(root, "truncated", "true");
      if (out.stale) tb->Attr(root, "stale", "true");
      tb->Close(root);
      out.trace = tb->Finish();
    }
    return out;
  };

  try {
    // Unsharded kAuto requests resolve here, from the registration-time
    // sketch and the (version-keyed, cached) constraint selectivity, so
    // RunOnTarget never has to sketch on the fly. Sharded plans resolve
    // per shard inside PlanQuery instead.
    if (eff.algorithm == Algorithm::kAuto &&
        (shards == nullptr || shards->shard_count() <= 1)) {
      SelectionContext ctx;
      ctx.band_k = canon.band_k;
      ctx.threads = eff.ResolvedThreads();
      ctx.progressive = eff.progressive != nullptr;
      ctx.zonemap_direct = canon.band_k == 1 && !canon.constraints.empty() &&
                           canon.IsBoxOnlyTransform();
      ctx.learner = config_.cost_learning ? &learner_ : nullptr;
      ctx.selectivity = 1.0;
      if (!canon.constraints.empty()) {
        const std::string sel_key = prefix + "sel|" + canon.ViewKey();
        if (std::shared_ptr<const SelectivityEntry> sel =
                selectivity_cache_.Get(sel_key)) {
          ctx.selectivity = sel->value;
        } else {
          ctx.selectivity =
              EstimateConstraintSelectivity(*sketch, canon.constraints);
          auto entry = std::make_shared<const SelectivityEntry>(
              SelectivityEntry{ctx.selectivity, canon.constraints});
          PutSelectivityIfCurrent(name, version, minor, sel_key,
                                  std::move(entry));
        }
      }
      eff.algorithm = canon.band_k == 1
                          ? ChooseAlgorithm(*sketch, ctx).algorithm
                          : Algorithm::kQFlow;
    }

    QueryResult fresh;
    if (shards != nullptr && shards->shard_count() > 1) {
      // Per-shard views are served from the view cache too, keyed by the
      // shard index on top of the ViewKey, so a band_k / top-k sweep pays
      // each shard's materialization once. Keys omit the minor version, so
      // a cached view may come from a different generation of the shard
      // than this query's snapshot (an in-flight reader races a mutation in
      // either direction); the Shard::epoch check rejects such a view —
      // composing its local row indices through the snapshot's row_ids
      // would read out of bounds or return wrong global ids — and the
      // reader rebuilds from its own snapshot instead (PutViewIfCurrent
      // keeps a stale rebuild out of the cache).
      const ShardViewProvider provider = [&](uint32_t shard_index,
                                             bool* built_out) {
        const std::string view_key = prefix + "v|s" +
                                     std::to_string(shard_index) + "|" +
                                     canon.ViewKey();
        const uint64_t epoch = shards->shard(shard_index).epoch;
        std::shared_ptr<const QueryView> view = view_cache_.Get(view_key);
        const bool rebuild = view == nullptr || view->source_epoch != epoch;
        if (rebuild) {
          QueryView built =
              MaterializeView(shards->shard(shard_index).rows(), canon);
          built.constraints = canon.constraints;
          built.source_shard = static_cast<int>(shard_index);
          built.source_epoch = epoch;
          auto holder = std::make_shared<const QueryView>(std::move(built));
          PutViewIfCurrent(name, version, minor, view_key, holder);
          view = std::move(holder);
          if (config_.metrics) inst_.view_builds->Add();
        }
        if (built_out != nullptr) *built_out = rebuild;
        return view;
      };
      // Per-shard zonemap indexes for the direct path, cached next to the
      // shard views under fixed keys (so mutations can repair them) and
      // epoch-guarded the same way. Custom Options::block_rows bypasses the
      // cache entirely — the executor builds privately.
      const ZonemapProvider zonemap_provider =
          [&](uint32_t shard_index) -> std::shared_ptr<const ZoneMapIndex> {
        if (eff.block_rows != 0 &&
            eff.block_rows != ZoneMapIndex::kDefaultBlockRows) {
          return nullptr;
        }
        const std::string zm_key =
            prefix + "zm|s" + std::to_string(shard_index);
        const Shard& shard = shards->shard(shard_index);
        std::shared_ptr<const ZoneMapIndex> zm = zonemap_cache_.Get(zm_key);
        if (zm == nullptr || zm->source_epoch != shard.epoch) {
          ZoneMapIndex built = ZoneMapIndex::Build(
              shard.rows(), /*block_rows=*/0, &shard.sketch);
          built.source_epoch = shard.epoch;
          built.source_shard = static_cast<int>(shard_index);
          auto holder = std::make_shared<const ZoneMapIndex>(std::move(built));
          PutZonemapIfCurrent(name, version, minor, zm_key, holder);
          zm = std::move(holder);
        }
        return zm;
      };
      int plan_span = -1;
      if (tb != nullptr) plan_span = tb->Open("plan", root);
      const ExecutionPlan plan =
          PlanQuery(*shards, canon, eff, config_.metrics ? &metrics_ : nullptr,
                    config_.cost_learning ? &learner_ : nullptr);
      if (tb != nullptr) {
        tb->Close(plan_span);
        tb->AttrCount(plan_span, "shards", plan.shards.size());
        tb->AttrCount(plan_span, "pruned", plan.pruned);
        tb->Attr(plan_span, "merge", MergeStrategyName(plan.merge));
        tb->AttrCount(plan_span, "shard_threads",
                      static_cast<uint64_t>(plan.shard_threads));
      }
      fresh = ExecuteShardedPlan(*shards, plan, canon, eff, provider,
                                 zonemap_provider, tb, root);
    } else if (eff.algorithm == Algorithm::kZonemap && canon.band_k == 1 &&
               canon.IsBoxOnlyTransform()) {
      // Unsharded direct path: traverse the whole-dataset zonemap index
      // against the constraint box on raw rows — first-ever sub-dataset
      // pruning with no view materialization. The cached index is guarded
      // by the minor version the way shard entries are guarded by epochs.
      const bool cacheable = eff.block_rows == 0 ||
                             eff.block_rows == ZoneMapIndex::kDefaultBlockRows;
      const std::string zm_key = prefix + "zm|d";
      std::shared_ptr<const ZoneMapIndex> zm;
      if (cacheable) {
        zm = zonemap_cache_.Get(zm_key);
        if (zm != nullptr && zm->source_epoch != minor) zm = nullptr;
      }
      double build_seconds = 0.0;
      const bool zm_built = zm == nullptr;
      const int is = tb != nullptr ? tb->Open("zonemap", root) : -1;
      if (zm_built) {
        WallTimer build_timer;
        ZoneMapIndex built =
            ZoneMapIndex::Build(*data, eff.block_rows, sketch.get());
        built.source_epoch = minor;
        built.source_shard = -1;
        build_seconds = build_timer.Seconds();
        auto holder = std::make_shared<const ZoneMapIndex>(std::move(built));
        if (cacheable) {
          PutZonemapIfCurrent(name, version, minor, zm_key, holder);
        }
        zm = std::move(holder);
      }
      if (tb != nullptr) {
        tb->Close(is);
        tb->Attr(is, "source", zm_built ? "build" : "hit");
        tb->AttrCount(is, "blocks", zm->block_count());
      }
      const int ex = tb != nullptr ? tb->Open("execute", root) : -1;
      fresh = RunZonemapDirect(*data, *zm, nullptr, canon, eff);
      if (tb != nullptr) {
        tb->Close(ex);
        tb->Attr(ex, "algo", AlgorithmName(Algorithm::kZonemap));
        tb->AttrCount(ex, "rows", fresh.matched_rows);
      }
      fresh.stats.other_seconds += build_seconds;
      fresh.stats.total_seconds += build_seconds;
    } else if (canon.IsIdentityTransform()) {
      const int ex = tb != nullptr ? tb->Open("execute", root) : -1;
      fresh = RunOnTarget(*data, nullptr, canon, eff);
      if (tb != nullptr) {
        tb->Close(ex);
        if (!fresh.shard_algorithms.empty()) {
          tb->Attr(ex, "algo", AlgorithmName(fresh.shard_algorithms[0]));
        }
        tb->AttrCount(ex, "rows", fresh.matched_rows);
      }
    } else {
      // View reuse: specs sharing preferences/projection/constraints (same
      // ViewKey) share one materialized view, so e.g. a band_k / top-k
      // sweep over one box pays materialization once.
      const std::string view_key = prefix + "v|" + canon.ViewKey();
      const int vs = tb != nullptr ? tb->Open("view", root) : -1;
      std::shared_ptr<const QueryView> view = view_cache_.Get(view_key);
      double build_seconds = 0.0;
      const bool view_built = view == nullptr;
      if (view_built) {
        QueryView built = MaterializeView(*data, canon);
        built.constraints = canon.constraints;
        built.source_shard = -1;
        auto holder = std::make_shared<const QueryView>(std::move(built));
        build_seconds = holder->materialize_seconds;
        PutViewIfCurrent(name, version, minor, view_key, holder);
        view = std::move(holder);
        if (config_.metrics) inst_.view_builds->Add();
      }
      if (tb != nullptr) {
        tb->Close(vs);
        tb->Attr(vs, "source", view_built ? "build" : "hit");
        tb->AttrCount(vs, "rows", view->data.count());
      }
      const int ex = tb != nullptr ? tb->Open("execute", root) : -1;
      fresh = RunOnTarget(view->data, &view->row_ids, canon, eff);
      if (tb != nullptr) {
        tb->Close(ex);
        if (!fresh.shard_algorithms.empty()) {
          tb->Attr(ex, "algo", AlgorithmName(fresh.shard_algorithms[0]));
        }
        tb->AttrCount(ex, "rows", fresh.matched_rows);
      }
      fresh.stats.other_seconds += build_seconds;
      fresh.stats.total_seconds += build_seconds;
    }
    fresh.constraints = canon.constraints;
    if (config_.cost_learning && fresh.shard_algorithms.size() == 1 &&
        (shards == nullptr || shards->shard_count() <= 1)) {
      // One observation per unsharded fresh compute (sharded runs overlap
      // several algorithms in one wall time, so they stay unattributed):
      // measured wall time against the model's prediction at the query's
      // *measured* selectivity, so the learner corrects coefficient error
      // rather than selectivity-estimate error.
      SelectionContext rctx;
      rctx.band_k = canon.band_k;
      rctx.threads = eff.ResolvedThreads();
      rctx.progressive = eff.progressive != nullptr;
      rctx.selectivity = sketch->n > 0
                             ? std::min(1.0, static_cast<double>(
                                                 fresh.matched_rows) /
                                                 static_cast<double>(sketch->n))
                             : 1.0;
      learner_.Record(
          fresh.shard_algorithms[0],
          EstimateAlgorithmCost(fresh.shard_algorithms[0], *sketch, rctx),
          fresh.stats.total_seconds);
    }
    if (config_.metrics) {
      inst_.queries->Add();
      // Planner decision tally: one bump per executed shard under the
      // algorithm it actually ran (covers explicit, auto, sharded and
      // unsharded paths uniformly).
      for (const Algorithm a : fresh.shard_algorithms) {
        inst_.algorithm[static_cast<size_t>(a)]->Add();
      }
    }
    const int put = tb != nullptr ? tb->Open("cache.put", root) : -1;
    try {
      PutResultIfCurrent(name, version, minor, key,
                         std::make_shared<const QueryResult>(fresh));
    } catch (...) {
      // A failed cache insert (result_cache_put failpoint) never fails
      // the query: the computed result is simply served uncached.
    }
    if (tb != nullptr) {
      tb->Close(put);
      tb->AttrCount(root, "members", fresh.ids.size());
      tb->Close(root);
      fresh.trace = tb->Finish();
    }
    if (config_.metrics) {
      const double elapsed = timer.Seconds();
      inst_.latency->Observe(elapsed);
      inst_.compute->Observe(elapsed);
    }
    return fresh;
  } catch (const CancelledError& err) {
    // Cooperative unwind: a checkpoint observed the tripped token and
    // threw; every TaskGroup on the way captured the exception,
    // cancelled its siblings, and rethrew at the join — the engine,
    // registry, and caches are exactly as before the query.
    return finish_aborted(err.reason());
  } catch (const std::bad_alloc&) {
    return finish_aborted(Status::kInternalError);
  } catch (const std::exception&) {
    // Contained worker failure (failpoints included). Unknown datasets
    // and invalid specs threw before this block and still propagate.
    return finish_aborted(Status::kInternalError);
  }
}

namespace {

/// Grow [lo, hi] to cover `row`, per-dim, NaN coordinates excluded (the
/// same convention as the shard boxes: a NaN coordinate can never satisfy
/// a closed-interval constraint, and any row that does satisfy one has a
/// non-NaN, box-covered coordinate there — so box-miss still proves no
/// mutated row is inside the constraint region).
void GrowBox(std::vector<Value>& lo, std::vector<Value>& hi,
             const Value* row, int dims) {
  for (int j = 0; j < dims; ++j) {
    if (row[j] < lo[static_cast<size_t>(j)]) {
      lo[static_cast<size_t>(j)] = row[j];
    }
    if (row[j] > hi[static_cast<size_t>(j)]) {
      hi[static_cast<size_t>(j)] = row[j];
    }
  }
}

std::vector<Value> EmptyBoxLo(int dims) {
  return std::vector<Value>(static_cast<size_t>(dims),
                            std::numeric_limits<Value>::infinity());
}

std::vector<Value> EmptyBoxHi(int dims) {
  return std::vector<Value>(static_cast<size_t>(dims),
                            -std::numeric_limits<Value>::infinity());
}

}  // namespace

uint64_t SkylineEngine::MinorVersion(const std::string& name) const {
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  return it == registry_.end() ? 0 : it->second.minor;
}

uint64_t SkylineEngine::InsertPoints(const std::string& name,
                                     const Dataset& rows) {
  WallTimer timer;
  std::lock_guard<std::mutex> mutation_lock(mutation_mu_);
  // The repair runs without the registry lock (every input is an
  // immutable COW snapshot); publish revalidates under the exclusive
  // lock. mutation_mu_ keeps other mutation batches out, but a
  // concurrent RegisterDataset can still replace the generation
  // mid-repair — the repair is then discarded and retried against the
  // new generation.
  for (;;) {
    std::shared_ptr<const Dataset> data;
    std::shared_ptr<const ShardMap> map;
    std::shared_ptr<const StatsSketch> sketch;
    uint64_t version = 0;
    uint64_t minor = 0;
    int dims = 0;
    size_t count = 0;
    {
      std::shared_lock lock(registry_mu_);
      auto it = registry_.find(name);
      if (it == registry_.end()) {
        throw std::runtime_error("query engine: unknown dataset '" + name +
                                 "'");
      }
      data = it->second.data;
      map = it->second.shards;
      sketch = it->second.sketch;
      version = it->second.version;
      minor = it->second.minor;
      dims = it->second.dims;
      count = it->second.count;
    }
    if (rows.dims() != dims) {
      throw std::runtime_error(
          "query engine: InsertPoints dimensionality mismatch");
    }
    const size_t add = rows.count();
    if (add == 0) return minor;  // nothing mutated: no bump, no fixup

    std::vector<Value> mut_lo = EmptyBoxLo(dims);
    std::vector<Value> mut_hi = EmptyBoxHi(dims);
    for (size_t b = 0; b < add; ++b) GrowBox(mut_lo, mut_hi, rows.Row(b), dims);

    std::shared_ptr<const Dataset> new_data;
    std::shared_ptr<const ShardMap> new_map = map;
    std::vector<uint8_t> touched;
    auto new_sketch = std::make_shared<StatsSketch>(*sketch);
    if (map != nullptr) {
      // Route each batch row to its shard, rebuild only the shards that
      // received rows (delta.h repairs their skyline / box / sketch
      // incrementally), and share every other shard by pointer. The
      // whole-dataset `data` mirror is dropped — Find() reconcatenates
      // lazily — so the batch costs O(touched shards), not O(n).
      const size_t n_shards = map->shard_count();
      std::vector<std::vector<size_t>> routed(n_shards);
      for (size_t b = 0; b < add; ++b) {
        routed[map->RouteInsert(rows.Row(b))].push_back(b);
      }
      ShardMap next = *map;
      touched.assign(n_shards, 0);
      std::vector<size_t> touched_idx;
      for (size_t s = 0; s < n_shards; ++s) {
        if (routed[s].empty()) continue;
        touched[s] = 1;
        touched_idx.push_back(s);
      }
      // Each touched shard's repair is an independent pure function of
      // immutable inputs, so the repairs fan out as a capped task group
      // on the engine's shared executor (a cap of 1 runs inline with no
      // synchronisation) — no per-mutation pool construction. Each slot
      // gets its own RepairStats; summed after the join.
      std::vector<std::shared_ptr<const Shard>> repaired(touched_idx.size());
      std::vector<RepairStats> repair_stats(touched_idx.size());
      ThreadPool repair_pool(&executor_,
                             std::min<int>(
                                 Executor::DefaultThreads(),
                                 static_cast<int>(touched_idx.size())));
      repair_pool.ParallelFor(
          touched_idx.size(), 1, [&](size_t lo, size_t hi) {
            for (size_t t = lo; t < hi; ++t) {
              // A repair failure (failpoint or real) unwinds out of the
              // join below and aborts the whole batch pre-publish: the
              // registry still holds the untouched generation.
              SKY_FAILPOINT("shard_repair");
              const size_t s = touched_idx[t];
              repaired[t] = ShardWithInserts(map->shard(s), rows, routed[s],
                                             static_cast<PointId>(count),
                                             /*sketch_seed=*/version + s,
                                             &repair_stats[t]);
            }
          });
      for (size_t t = 0; t < touched_idx.size(); ++t) {
        next.ReplaceShard(touched_idx[t], std::move(repaired[t]));
      }
      if (config_.metrics) {
        RepairStats sum;
        for (const RepairStats& rs : repair_stats) {
          sum.dom_tests += rs.dom_tests;
          sum.sketch_rebuilds += rs.sketch_rebuilds;
        }
        inst_.repair_dom_tests->Add(sum.dom_tests);
        inst_.sketch_rebuilds->Add(sum.sketch_rebuilds);
      }
      new_map = std::make_shared<const ShardMap>(std::move(next));
      UpdateSketchOnInsert(*new_sketch, rows.Row(0), rows.stride(), add);
      if (SketchNeedsRebuild(*new_sketch)) {
        *new_sketch =
            ComputeSketch(*ReconcatenateRows(*new_map, dims, count + add));
        if (config_.metrics) inst_.sketch_rebuilds->Add();
      }
    } else {
      new_data = std::make_shared<const Dataset>(
          DatasetWithAppendedRows(*data, rows));
      UpdateSketchOnInsert(*new_sketch, rows.Row(0), rows.stride(), add);
      if (SketchNeedsRebuild(*new_sketch)) {
        *new_sketch = ComputeSketch(*new_data);
        if (config_.metrics) inst_.sketch_rebuilds->Add();
      }
    }

    // Block-local zonemap repair, pre-publish and outside the registry
    // lock: a still-valid cached index of a mutated target absorbs the
    // appended rows (tail-block extension) and is re-stamped with its
    // post-mutation epoch; FixupCachesLocked installs the repairs after
    // erasing the stale entries.
    std::vector<RepairedZonemap> repaired_zm;
    const std::string prefix = CacheKeyPrefix(version);
    if (map != nullptr) {
      for (size_t s = 0; s < map->shard_count(); ++s) {
        if (touched[s] == 0) continue;
        const std::string zm_key = prefix + "zm|s" + std::to_string(s);
        std::shared_ptr<const ZoneMapIndex> zm = zonemap_cache_.Get(zm_key);
        if (zm == nullptr || zm->source_epoch != map->shard(s).epoch) {
          continue;
        }
        ZoneMapIndex rep = zm->WithAppendedRows(
            new_map->shard(s).rows(), map->shard(s).rows().count());
        rep.source_epoch = new_map->shard(s).epoch;
        rep.source_shard = static_cast<int>(s);
        repaired_zm.emplace_back(
            zm_key, std::make_shared<const ZoneMapIndex>(std::move(rep)));
      }
    } else {
      const std::string zm_key = prefix + "zm|d";
      std::shared_ptr<const ZoneMapIndex> zm = zonemap_cache_.Get(zm_key);
      if (zm != nullptr && zm->source_epoch == minor) {
        ZoneMapIndex rep = zm->WithAppendedRows(*new_data, count);
        rep.source_epoch = minor + 1;  // the bump published below
        rep.source_shard = -1;
        repaired_zm.emplace_back(
            zm_key, std::make_shared<const ZoneMapIndex>(std::move(rep)));
      }
    }

    std::unique_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) {
      throw std::runtime_error("query engine: dataset '" + name +
                               "' evicted during InsertPoints");
    }
    if (it->second.version != version) {
      if (config_.metrics) inst_.retries->Add();
      continue;  // replaced: retry
    }
    it->second.data = std::move(new_data);  // null for sharded datasets
    it->second.shards = std::move(new_map);
    it->second.sketch = std::move(new_sketch);
    it->second.count = count + add;
    const uint64_t bumped = ++it->second.minor;
    FixupCachesLocked(prefix, mut_lo, mut_hi, touched,
                      /*id_shift=*/{}, repaired_zm);
    if (config_.metrics) {
      inst_.inserts->Add();
      inst_.rows_inserted->Add(add);
      inst_.mutation_latency->Observe(timer.Seconds());
    }
    return bumped;
  }
}

uint64_t SkylineEngine::DeletePoints(const std::string& name,
                                     std::span<const PointId> ids) {
  WallTimer timer;
  std::lock_guard<std::mutex> mutation_lock(mutation_mu_);
  for (;;) {
    std::shared_ptr<const Dataset> data;
    std::shared_ptr<const ShardMap> map;
    std::shared_ptr<const StatsSketch> sketch;
    uint64_t version = 0;
    uint64_t minor = 0;
    int dims = 0;
    size_t count = 0;
    {
      std::shared_lock lock(registry_mu_);
      auto it = registry_.find(name);
      if (it == registry_.end()) {
        throw std::runtime_error("query engine: unknown dataset '" + name +
                                 "'");
      }
      data = it->second.data;
      map = it->second.shards;
      sketch = it->second.sketch;
      version = it->second.version;
      minor = it->second.minor;
      dims = it->second.dims;
      count = it->second.count;
    }
    std::vector<PointId> drop(ids.begin(), ids.end());
    std::sort(drop.begin(), drop.end());
    drop.erase(std::unique(drop.begin(), drop.end()), drop.end());
    if (!drop.empty() && drop.back() >= count) {
      throw std::runtime_error("query engine: DeletePoints id out of range");
    }
    if (drop.empty()) return minor;

    // Compaction map: a surviving global id shifts down by the number of
    // deleted ids below it.
    std::vector<uint8_t> deleted(count, 0);
    for (const PointId id : drop) deleted[id] = 1;
    std::vector<uint32_t> shift(count, 0);
    uint32_t cum = 0;
    for (size_t i = 0; i < count; ++i) {
      shift[i] = cum;
      cum += deleted[i];
    }

    std::vector<Value> mut_lo = EmptyBoxLo(dims);
    std::vector<Value> mut_hi = EmptyBoxHi(dims);
    std::shared_ptr<const Dataset> new_data;
    std::shared_ptr<const ShardMap> new_map = map;
    std::vector<uint8_t> touched;
    auto new_sketch = std::make_shared<StatsSketch>(*sketch);
    if (map != nullptr) {
      // Shards that lost rows get a delta repair (re-promotion scan +
      // compaction); every other shard only has its global row ids
      // compacted through `shift`, sharing rows / skyline / sketch with
      // the old shard.
      const size_t n_shards = map->shard_count();
      ShardMap next = *map;
      touched.assign(n_shards, 0);
      std::vector<std::vector<PointId>> drop_locals(n_shards);
      for (size_t s = 0; s < n_shards; ++s) {
        const Shard& shard = map->shard(s);
        for (size_t i = 0; i < shard.row_ids.size(); ++i) {
          if (!deleted[shard.row_ids[i]]) continue;
          drop_locals[s].push_back(static_cast<PointId>(i));
          GrowBox(mut_lo, mut_hi, shard.rows().Row(i), dims);
        }
        touched[s] = !drop_locals[s].empty();
      }
      // Touched-shard repairs (re-promotion scan + compaction) are
      // independent pure functions of immutable inputs; run them in
      // parallel. The cheap id remaps stay sequential.
      std::vector<std::shared_ptr<const Shard>> repaired(n_shards);
      std::vector<size_t> touched_idx;
      for (size_t s = 0; s < n_shards; ++s) {
        if (touched[s]) touched_idx.push_back(s);
      }
      if (!touched_idx.empty()) {
        std::vector<RepairStats> repair_stats(touched_idx.size());
        // Shared-executor task group, not a per-mutation pool (see the
        // insert path).
        ThreadPool repair_pool(&executor_,
                               std::min<int>(
                                   Executor::DefaultThreads(),
                                   static_cast<int>(touched_idx.size())));
        repair_pool.ParallelFor(
            touched_idx.size(), 1, [&](size_t lo, size_t hi) {
              for (size_t t = lo; t < hi; ++t) {
                // Pre-publish abort on failure, exactly like the insert
                // path's repair fan-out.
                SKY_FAILPOINT("shard_repair");
                const size_t s = touched_idx[t];
                repaired[s] =
                    ShardWithDeletes(map->shard(s), drop_locals[s], shift,
                                     /*sketch_seed=*/version + s,
                                     &repair_stats[t]);
              }
            });
        if (config_.metrics) {
          RepairStats sum;
          for (const RepairStats& rs : repair_stats) {
            sum.dom_tests += rs.dom_tests;
            sum.sketch_rebuilds += rs.sketch_rebuilds;
          }
          inst_.repair_dom_tests->Add(sum.dom_tests);
          inst_.sketch_rebuilds->Add(sum.sketch_rebuilds);
        }
      }
      for (size_t s = 0; s < n_shards; ++s) {
        next.ReplaceShard(s, touched[s]
                                 ? std::move(repaired[s])
                                 : ShardWithRemappedIds(map->shard(s), shift));
      }
      new_map = std::make_shared<const ShardMap>(std::move(next));
      UpdateSketchOnDelete(*new_sketch, drop.size());
      if (SketchNeedsRebuild(*new_sketch)) {
        *new_sketch = ComputeSketch(
            *ReconcatenateRows(*new_map, dims, count - drop.size()));
        if (config_.metrics) inst_.sketch_rebuilds->Add();
      }
    } else {
      for (const PointId id : drop)
        GrowBox(mut_lo, mut_hi, data->Row(id), dims);
      new_data = std::make_shared<const Dataset>(
          DatasetWithoutRows(*data, deleted));
      UpdateSketchOnDelete(*new_sketch, drop.size());
      if (SketchNeedsRebuild(*new_sketch)) {
        *new_sketch = ComputeSketch(*new_data);
        if (config_.metrics) inst_.sketch_rebuilds->Add();
      }
    }

    // Block-local zonemap repair, pre-publish (see InsertPoints): drop
    // the deleted local rows from their blocks and recompute only the
    // touched AABBs. Untouched shards keep their indexes through
    // FixupCachesLocked (shard-local numbering is unchanged by a pure
    // global-id remap, and the shard epoch proves it).
    std::vector<RepairedZonemap> repaired_zm;
    const std::string prefix = CacheKeyPrefix(version);
    if (map != nullptr) {
      for (size_t s = 0; s < map->shard_count(); ++s) {
        if (touched[s] == 0) continue;
        const std::string zm_key = prefix + "zm|s" + std::to_string(s);
        std::shared_ptr<const ZoneMapIndex> zm = zonemap_cache_.Get(zm_key);
        if (zm == nullptr || zm->source_epoch != map->shard(s).epoch) {
          continue;
        }
        const Shard& old_shard = map->shard(s);
        std::vector<PointId> drop_local;  // ascending pre-delete numbering
        for (size_t i = 0; i < old_shard.row_ids.size(); ++i) {
          if (deleted[old_shard.row_ids[i]]) {
            drop_local.push_back(static_cast<PointId>(i));
          }
        }
        ZoneMapIndex rep =
            zm->WithDeletedRows(new_map->shard(s).rows(), drop_local);
        rep.source_epoch = new_map->shard(s).epoch;
        rep.source_shard = static_cast<int>(s);
        repaired_zm.emplace_back(
            zm_key, std::make_shared<const ZoneMapIndex>(std::move(rep)));
      }
    } else {
      const std::string zm_key = prefix + "zm|d";
      std::shared_ptr<const ZoneMapIndex> zm = zonemap_cache_.Get(zm_key);
      if (zm != nullptr && zm->source_epoch == minor) {
        ZoneMapIndex rep = zm->WithDeletedRows(*new_data, drop);
        rep.source_epoch = minor + 1;  // the bump published below
        rep.source_shard = -1;
        repaired_zm.emplace_back(
            zm_key, std::make_shared<const ZoneMapIndex>(std::move(rep)));
      }
    }

    std::unique_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) {
      throw std::runtime_error("query engine: dataset '" + name +
                               "' evicted during DeletePoints");
    }
    if (it->second.version != version) {
      if (config_.metrics) inst_.retries->Add();
      continue;  // replaced: retry
    }
    it->second.data = std::move(new_data);  // null for sharded datasets
    it->second.shards = std::move(new_map);
    it->second.sketch = std::move(new_sketch);
    it->second.count = count - drop.size();
    const uint64_t bumped = ++it->second.minor;
    FixupCachesLocked(prefix, mut_lo, mut_hi, touched, shift, repaired_zm);
    if (config_.metrics) {
      inst_.deletes->Add();
      inst_.rows_deleted->Add(drop.size());
      inst_.mutation_latency->Observe(timer.Seconds());
    }
    return bumped;
  }
}

void SkylineEngine::FixupCachesLocked(
    const std::string& prefix, const std::vector<Value>& mut_lo,
    const std::vector<Value>& mut_hi,
    const std::vector<uint8_t>& touched_shards,
    const std::vector<uint32_t>& id_shift,
    const std::vector<RepairedZonemap>& repaired_zonemaps) {
  const bool is_delete = !id_shift.empty();
  // Result cache: an entry survives iff its constraint box provably
  // excludes every mutated row — then no inserted or deleted row is in
  // the constraint region, so its member set, dominator counts, and
  // matched_rows are all unchanged. Deletes still compact the surviving
  // ids through `id_shift` (no surviving entry can reference a deleted
  // row: deleted rows are outside its box).
  const size_t results_erased = cache_.EditPrefix(
      prefix,
      [&](const std::string&, const std::shared_ptr<const QueryResult>& v)
          -> std::shared_ptr<const QueryResult> {
        if (v->constraints.empty() ||
            BoxIntersectsConstraints(mut_lo, mut_hi, v->constraints)) {
          return nullptr;
        }
        if (!is_delete) return v;
        auto remapped = std::make_shared<QueryResult>(*v);
        for (PointId& id : remapped->ids) id -= id_shift[id];
        return remapped;
      });
  // View cache: a shard-cut view is the shard's rows filtered by the
  // box, in shard-local numbering — it survives iff its shard was
  // untouched (deletes included: shard-local indices only move when the
  // shard itself loses rows, and the executor composes global ids from
  // the *new* shard's row_ids). A whole-dataset view survives an insert
  // iff its box excludes every inserted row; any delete erases it — its
  // row_ids are global, and remapping them would deep-copy the
  // dataset-sized view for little gain.
  const size_t views_erased = view_cache_.EditPrefix(
      prefix,
      [&](const std::string&, const std::shared_ptr<const QueryView>& v)
          -> std::shared_ptr<const QueryView> {
        if (v->source_shard >= 0) {
          const size_t s = static_cast<size_t>(v->source_shard);
          const bool untouched =
              s < touched_shards.size() && touched_shards[s] == 0;
          return untouched ? v : nullptr;
        }
        if (is_delete || v->constraints.empty() ||
            BoxIntersectsConstraints(mut_lo, mut_hi, v->constraints)) {
          return nullptr;
        }
        return v;
      });
  // Selectivity cache: estimates are advisory (they steer algorithm
  // selection, never correctness), so box-excluded entries survive even
  // though the total row count drifted; intersecting ones are
  // re-estimated on the next miss from the staleness-damped sketch.
  const size_t selectivities_erased = selectivity_cache_.EditPrefix(
      prefix,
      [&](const std::string&, const std::shared_ptr<const SelectivityEntry>& v)
          -> std::shared_ptr<const SelectivityEntry> {
        if (v->constraints.empty() ||
            BoxIntersectsConstraints(mut_lo, mut_hi, v->constraints)) {
          return nullptr;
        }
        return v;
      });
  // Zonemap cache: indexes live in shard-local row space, exactly like
  // shard-cut views — a shard entry survives iff its shard kept its rows
  // (deletes of *other* shards only remap global ids, which the index
  // never stores). The whole-dataset entry is always erased: any
  // unsharded mutation changed its rows, and any sharded mutation means
  // the key is unused anyway. The pre-built block-local repairs are then
  // installed in place of what was erased.
  const size_t zonemaps_erased = zonemap_cache_.EditPrefix(
      prefix,
      [&](const std::string&, const std::shared_ptr<const ZoneMapIndex>& v)
          -> std::shared_ptr<const ZoneMapIndex> {
        if (v->source_shard >= 0) {
          const size_t s = static_cast<size_t>(v->source_shard);
          const bool untouched =
              s < touched_shards.size() && touched_shards[s] == 0;
          return untouched ? v : nullptr;
        }
        return nullptr;
      });
  for (const RepairedZonemap& rz : repaired_zonemaps) {
    zonemap_cache_.Put(rz.first, rz.second);
  }
  if (config_.metrics) {
    inst_.invalidated_results->Add(results_erased);
    inst_.invalidated_views->Add(views_erased);
    inst_.invalidated_selectivities->Add(selectivities_erased);
    inst_.invalidated_zonemaps->Add(zonemaps_erased);
    inst_.zonemap_repairs->Add(repaired_zonemaps.size());
  }
}

}  // namespace sky
