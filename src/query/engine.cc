// Copyright (c) SkyBench-NG contributors.
#include "query/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/skyband.h"
#include "core/skyline.h"
#include "query/view.h"

namespace sky {
namespace {

/// Top-k rank score. NaN (possible in loaded CSV data) sorts last —
/// mapping it to +inf keeps std::sort's strict weak ordering intact.
Value RankScore(const Dataset& view, size_t row) {
  const Value s = ViewRowScore(view, row);
  return std::isnan(s) ? std::numeric_limits<Value>::infinity() : s;
}

}  // namespace

QueryResult RunQuery(const Dataset& data, const QuerySpec& spec,
                     const Options& opts) {
  const QuerySpec canon = spec.Canonicalize(data.dims());
  QueryResult r;

  // Fast path: the native question needs no view at all.
  const bool identity = canon.IsIdentityTransform();
  QueryView view;
  const Dataset* target = &data;
  if (!identity) {
    view = MaterializeView(data, canon);
    target = &view.data;
  }
  r.matched_rows = target->count();
  if (target->count() == 0) return r;

  std::vector<PointId> view_rows;  // result ids in view-local row space
  if (canon.band_k == 1) {
    Result run = ComputeSkyline(*target, opts);
    r.stats = run.stats;
    view_rows = std::move(run.skyline);
    r.dominator_counts.assign(view_rows.size(), 0u);
  } else {
    SkybandResult run = ComputeSkyband(*target, canon.band_k, opts);
    r.stats = run.stats;
    view_rows = std::move(run.skyband);
    r.dominator_counts = std::move(run.dominator_counts);
  }

  // Map view-local rows back to original dataset row ids.
  r.ids.resize(view_rows.size());
  if (identity) {
    std::copy(view_rows.begin(), view_rows.end(), r.ids.begin());
  } else {
    for (size_t i = 0; i < view_rows.size(); ++i) {
      r.ids[i] = view.row_ids[view_rows[i]];
    }
  }

  if (canon.top_k > 0) {
    // Rank by (dominator count asc, view score asc, original id asc).
    std::vector<size_t> order(view_rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::vector<Value> scores(view_rows.size());
    for (size_t i = 0; i < view_rows.size(); ++i) {
      scores[i] = RankScore(*target, view_rows[i]);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (r.dominator_counts[a] != r.dominator_counts[b]) {
        return r.dominator_counts[a] < r.dominator_counts[b];
      }
      if (scores[a] != scores[b]) return scores[a] < scores[b];
      return r.ids[a] < r.ids[b];
    });
    const size_t keep = std::min(canon.top_k, order.size());
    std::vector<PointId> ids(keep);
    std::vector<uint32_t> counts(keep);
    for (size_t i = 0; i < keep; ++i) {
      ids[i] = r.ids[order[i]];
      counts[i] = r.dominator_counts[order[i]];
    }
    r.ids = std::move(ids);
    r.dominator_counts = std::move(counts);
  }

  r.stats.other_seconds += view.materialize_seconds;
  r.stats.total_seconds += view.materialize_seconds;
  r.stats.skyline_size = r.ids.size();
  return r;
}

bool VerifyQuery(const Dataset& data, const QuerySpec& spec,
                 const QueryResult& r) {
  // Brute-force reference: count dominators by definition with plain
  // nested loops on the materialized view — no ComputeSkyline /
  // ComputeSkyband code path is shared, so an algorithm bug cannot
  // reproduce itself in the reference (only the rewriter is common).
  const QuerySpec canon = spec.Canonicalize(data.dims());
  const QueryView view = MaterializeView(data, canon);
  const Dataset& v = view.data;
  const int d = v.dims();

  std::vector<PointId> rows;     // view-local qualifying rows
  std::vector<uint32_t> counts;  // their exact dominator counts
  for (size_t i = 0; i < v.count(); ++i) {
    const Value* q = v.Row(i);
    uint32_t c = 0;
    for (size_t j = 0; j < v.count() && c < canon.band_k; ++j) {
      if (j == i) continue;
      const Value* p = v.Row(j);
      bool all_le = true, some_lt = false;
      for (int k = 0; k < d; ++k) {
        all_le &= p[k] <= q[k];
        some_lt |= p[k] < q[k];
      }
      c += (all_le && some_lt);
    }
    if (c < canon.band_k) {
      rows.push_back(static_cast<PointId>(i));
      counts.push_back(c);
    }
  }

  std::vector<std::pair<PointId, uint32_t>> expect;
  if (canon.top_k > 0) {
    std::vector<size_t> order(rows.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (counts[a] != counts[b]) return counts[a] < counts[b];
      const Value sa = RankScore(v, rows[a]), sb = RankScore(v, rows[b]);
      if (sa != sb) return sa < sb;
      return view.row_ids[rows[a]] < view.row_ids[rows[b]];
    });
    const size_t keep = std::min(canon.top_k, order.size());
    for (size_t i = 0; i < keep; ++i) {
      expect.emplace_back(view.row_ids[rows[order[i]]], counts[order[i]]);
    }
    // Ranked results are fully deterministic: compare in order.
    std::vector<std::pair<PointId, uint32_t>> got;
    for (size_t i = 0; i < r.ids.size(); ++i) {
      got.emplace_back(r.ids[i], r.dominator_counts[i]);
    }
    return got == expect;
  }

  for (size_t i = 0; i < rows.size(); ++i) {
    expect.emplace_back(view.row_ids[rows[i]], counts[i]);
  }
  std::vector<std::pair<PointId, uint32_t>> got;
  for (size_t i = 0; i < r.ids.size(); ++i) {
    got.emplace_back(r.ids[i], r.dominator_counts[i]);
  }
  std::sort(got.begin(), got.end());
  std::sort(expect.begin(), expect.end());
  return got == expect;
}

SkylineEngine::SkylineEngine() : SkylineEngine(Config{}) {}

SkylineEngine::SkylineEngine(Config config)
    : cache_(config.result_cache_capacity) {}

namespace {

/// Every cache key of (name, version) starts with this prefix; versions
/// are globally unique so the prefix cannot collide across datasets.
std::string CacheKeyPrefix(const std::string& name, uint64_t version) {
  return name + "@" + std::to_string(version) + "|";
}

}  // namespace

uint64_t SkylineEngine::RegisterDataset(const std::string& name,
                                        Dataset data) {
  auto holder = std::make_shared<const Dataset>(std::move(data));
  uint64_t replaced_version = 0;
  uint64_t version = 0;
  {
    std::unique_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it != registry_.end()) replaced_version = it->second.version;
    version = next_version_++;
    registry_[name] = Registered{std::move(holder), version};
  }
  // The old generation can never be served again (versions are never
  // reused); free its results instead of letting them squat in the LRU.
  if (replaced_version != 0) {
    cache_.ErasePrefix(CacheKeyPrefix(name, replaced_version));
  }
  return version;
}

bool SkylineEngine::EvictDataset(const std::string& name) {
  uint64_t version = 0;
  {
    std::unique_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) return false;
    version = it->second.version;
    registry_.erase(it);
  }
  cache_.ErasePrefix(CacheKeyPrefix(name, version));
  return true;
}

std::shared_ptr<const Dataset> SkylineEngine::Find(
    const std::string& name) const {
  std::shared_lock lock(registry_mu_);
  auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.data;
}

std::vector<std::string> SkylineEngine::DatasetNames() const {
  std::shared_lock lock(registry_mu_);
  std::vector<std::string> names;
  names.reserve(registry_.size());
  for (const auto& [name, entry] : registry_) names.push_back(name);
  return names;
}

QueryResult SkylineEngine::Execute(const std::string& name,
                                   const QuerySpec& spec,
                                   const Options& opts) {
  std::shared_ptr<const Dataset> data;
  uint64_t version = 0;
  {
    std::shared_lock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) {
      throw std::runtime_error("query engine: unknown dataset '" + name + "'");
    }
    data = it->second.data;
    version = it->second.version;
  }

  // Canonicalize before keying so equivalent spellings share an entry.
  const QuerySpec canon = spec.Canonicalize(data->dims());
  const std::string key = CacheKeyPrefix(name, version) + canon.CanonicalKey();
  if (std::shared_ptr<const QueryResult> hit = cache_.Get(key)) {
    QueryResult out = *hit;
    out.cache_hit = true;
    return out;
  }
  QueryResult fresh = RunQuery(*data, canon, opts);
  cache_.Put(key, std::make_shared<const QueryResult>(fresh));
  return fresh;
}

}  // namespace sky
