// Copyright (c) SkyBench-NG contributors.
#include "query/planner.h"

namespace sky {

const char* MergeStrategyName(MergeStrategy strategy) {
  switch (strategy) {
    case MergeStrategy::kNone:
      return "none";
    case MergeStrategy::kSkylineUnion:
      return "skyline-union";
    case MergeStrategy::kSkybandUnion:
      return "skyband-union";
  }
  return "?";
}

bool BoxIntersectsConstraints(const std::vector<Value>& lo,
                              const std::vector<Value>& hi,
                              const std::vector<DimConstraint>& constraints) {
  for (const DimConstraint& c : constraints) {
    const size_t d = static_cast<size_t>(c.dim);
    // Closed-interval overlap; written so an empty box (lo > hi) or an
    // all-NaN column fails rather than passes.
    if (!(hi[d] >= c.lo && lo[d] <= c.hi)) return false;
  }
  return true;
}

ExecutionPlan PlanQuery(const ShardMap& map, const QuerySpec& canon) {
  ExecutionPlan plan;
  for (size_t s = 0; s < map.shard_count(); ++s) {
    const Shard& shard = map.shard(s);
    if (BoxIntersectsConstraints(shard.box_lo, shard.box_hi,
                                 canon.constraints)) {
      plan.shards.push_back(static_cast<uint32_t>(s));
    } else {
      ++plan.pruned;
    }
  }
  if (plan.shards.size() <= 1) {
    plan.merge = MergeStrategy::kNone;
  } else {
    plan.merge = canon.band_k == 1 ? MergeStrategy::kSkylineUnion
                                   : MergeStrategy::kSkybandUnion;
  }
  return plan;
}

}  // namespace sky
