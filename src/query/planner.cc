// Copyright (c) SkyBench-NG contributors.
#include "query/planner.h"

#include <algorithm>

#include "query/cost_model.h"

namespace sky {

const char* MergeStrategyName(MergeStrategy strategy) {
  switch (strategy) {
    case MergeStrategy::kNone:
      return "none";
    case MergeStrategy::kSkylineUnion:
      return "skyline-union";
    case MergeStrategy::kSkybandUnion:
      return "skyband-union";
  }
  return "?";
}

bool BoxIntersectsConstraints(const std::vector<Value>& lo,
                              const std::vector<Value>& hi,
                              const std::vector<DimConstraint>& constraints) {
  for (const DimConstraint& c : constraints) {
    const size_t d = static_cast<size_t>(c.dim);
    // Closed-interval overlap; written so an empty box (lo > hi) or an
    // all-NaN column fails rather than passes.
    if (!(hi[d] >= c.lo && lo[d] <= c.hi)) return false;
  }
  return true;
}

ExecutionPlan PlanQuery(const ShardMap& map, const QuerySpec& canon) {
  // Mutation staleness: shard boxes stay exact across InsertPoints /
  // DeletePoints (inserts grow them exactly, deletes recompute them
  // during compaction), so box pruning never drops a shard that holds a
  // matching row. Shard sketches, by contrast, drift between periodic
  // rebuilds — selection below tolerates that because
  // EstimateConstraintSelectivity damps toward 1 by the sketch's
  // StaleFraction (over-budgeting instead of under-planning).
  ExecutionPlan plan;
  for (size_t s = 0; s < map.shard_count(); ++s) {
    const Shard& shard = map.shard(s);
    if (BoxIntersectsConstraints(shard.box_lo, shard.box_hi,
                                 canon.constraints)) {
      plan.shards.push_back(static_cast<uint32_t>(s));
    } else {
      ++plan.pruned;
    }
  }
  if (plan.shards.size() <= 1) {
    plan.merge = MergeStrategy::kNone;
  } else {
    plan.merge = canon.band_k == 1 ? MergeStrategy::kSkylineUnion
                                   : MergeStrategy::kSkybandUnion;
  }
  return plan;
}

ExecutionPlan PlanQuery(const ShardMap& map, const QuerySpec& canon,
                        const Options& opts, obs::MetricsRegistry* metrics,
                        const CostLearner* learner) {
  ExecutionPlan plan = PlanQuery(map, canon);
  if (metrics != nullptr) {
    // Interning is a mutex + map lookup — fine at plan frequency, and it
    // keeps the planner free of any stored instrument state.
    metrics->GetCounter("sky_planner_plans_total", {},
                        "Execution plans built")->Add();
    metrics
        ->GetCounter("sky_planner_shards_executed_total", {},
                     "Shards surviving box pruning, summed over plans")
        ->Add(plan.shards.size());
    metrics
        ->GetCounter("sky_planner_shards_pruned_total", {},
                     "Shards skipped by constraint-box pruning")
        ->Add(plan.pruned);
    metrics
        ->GetCounter("sky_planner_merge_total",
                     {{"strategy", MergeStrategyName(plan.merge)}},
                     "Plans by merge strategy")
        ->Add();
  }
  if (opts.algorithm != Algorithm::kAuto || plan.shards.empty()) return plan;

  // Thread budget. Across-shard mode (budget 1 each, S shards in
  // flight) finishes in ~w wall for S <= T. In-turn mode with the FULL
  // budget per shard finishes in ~S * w / T — better exactly when
  // S^2 <= T. Handing in-turn shards only a T/S slice would be the
  // worst of both (S * S * w / T), so the budget is all-or-nothing.
  // Under the engine's shared executor this budget is a concurrency
  // *limit* (the TaskGroup cap admission control clamps a query to), not
  // a thread count to spawn: with N queries in flight each one still
  // plans as if it owned T, and the executor's fixed worker set is what
  // actually bounds the machine.
  const size_t survivors = plan.shards.size();
  const int total_threads = opts.ResolvedThreads();
  plan.shard_threads =
      survivors * survivors <= static_cast<size_t>(total_threads)
          ? total_threads
          : 1;

  // Per-shard selection: each shard's own sketch and its own constraint
  // selectivity, so a dense 3k-row shard and a sparse 2M-row shard in
  // the same plan can get different algorithms.
  plan.algorithms.reserve(survivors);
  double est_union = 0.0;
  SelectionContext ctx;
  ctx.band_k = canon.band_k;
  ctx.threads = plan.shard_threads;
  // Single-surviving-shard plans run with the caller's callback (and
  // the merge stage streams for multi-shard plans), so a progressive
  // caller needs streaming-capable picks throughout.
  ctx.progressive = opts.progressive != nullptr;
  // Zonemap runs directly on raw shard rows only for band-1 box-only
  // specs with a real constraint box (engine.cc's direct path); elsewhere
  // it is not a candidate.
  ctx.zonemap_direct = canon.band_k == 1 && !canon.constraints.empty() &&
                       canon.IsBoxOnlyTransform();
  ctx.learner = learner;
  for (const uint32_t s : plan.shards) {
    const StatsSketch& sketch = map.shard(s).sketch;
    ctx.selectivity =
        EstimateConstraintSelectivity(sketch, canon.constraints);
    const AlgorithmChoice choice = ChooseAlgorithm(sketch, ctx);
    plan.algorithms.push_back(choice.algorithm);
    est_union += choice.est_skyline;
  }

  // The merge input is the union of the per-shard partial results:
  // size it with a synthetic sketch (the union is nearly all-skyline,
  // so its own skyline estimate is the union itself).
  if (plan.merge != MergeStrategy::kNone) {
    StatsSketch union_sketch;
    union_sketch.n = static_cast<size_t>(std::max(1.0, est_union));
    union_sketch.d = map.dims();
    union_sketch.est_skyline = est_union;
    union_sketch.growth_exponent = 1.0;
    SelectionContext merge_ctx;
    merge_ctx.band_k = canon.band_k;
    merge_ctx.threads = total_threads;
    merge_ctx.progressive = ctx.progressive;
    merge_ctx.learner = learner;
    plan.merge_algorithm = ChooseAlgorithm(union_sketch, merge_ctx).algorithm;
  }
  return plan;
}

}  // namespace sky
