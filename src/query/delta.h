// Copyright (c) SkyBench-NG contributors.
// Shard-local delta repair: the builders behind SkylineEngine's
// InsertPoints / DeletePoints. A mutation never re-registers the
// dataset — each touched shard gets a copy-on-write replacement whose
// skyline is repaired incrementally with the streaming window
// (core/streaming.h) and the batched tile kernels, and whose sketch is
// updated in place (data/sketch.h) with a periodic exact rebuild.
// Untouched shards are shared by pointer; M(S) makes the global answer
// invariant to which shard each row lives in, so repairing only the
// touched shards is sufficient for global correctness.
#ifndef SKY_QUERY_DELTA_H_
#define SKY_QUERY_DELTA_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "query/shard_map.h"

namespace sky {

/// Ascending skyline row indices of `rows` — the lazy first build of a
/// shard's maintained skyline (later mutations repair it incrementally).
std::vector<PointId> ComputeShardSkyline(const Dataset& rows);

/// Work accounting of one shard repair, reported through the optional
/// out-param of ShardWithInserts / ShardWithDeletes so the engine can
/// feed its metrics registry. Repairs used to measure these and drop
/// them on the floor; mutation work was invisible at runtime.
struct RepairStats {
  uint64_t dom_tests = 0;        ///< dominance tests the repair executed
  uint64_t sketch_rebuilds = 0;  ///< exact sketch rebuilds triggered
};

/// COW replacement for `shard` with the selected batch rows appended:
/// `batch_rows` are row indices into `batch` (the engine-level insert
/// batch) routed to this shard, and the appended row with batch index b
/// gets global id `base_global_id + b`. The shard skyline is repaired by
/// window-scanning each new row against the maintained skyline (seeded
/// without any dominance work); the box grows exactly; the sketch is
/// updated incrementally and rebuilt exactly once stale enough.
std::shared_ptr<const Shard> ShardWithInserts(
    const Shard& shard, const Dataset& batch,
    const std::vector<size_t>& batch_rows, PointId base_global_id,
    uint64_t sketch_seed, RepairStats* repair_stats = nullptr);

/// COW replacement for `shard` with the ascending shard-local rows
/// `drop_local` removed. Deleted skyline members trigger re-promotion:
/// the shard is scanned for rows dominated by a removed member
/// (exclusive-dominator candidates) and the survivors-seeded window
/// re-inserts them — transitivity guarantees no other row can enter the
/// skyline. Surviving global row ids are compacted through
/// `global_shift` (new id = old id - global_shift[old id], the count of
/// deleted global ids below it). Box and sketch are refreshed; the box
/// is recomputed exactly during the compaction rewrite.
std::shared_ptr<const Shard> ShardWithDeletes(
    const Shard& shard, const std::vector<PointId>& drop_local,
    const std::vector<uint32_t>& global_shift, uint64_t sketch_seed,
    RepairStats* repair_stats = nullptr);

/// COW replacement for a shard no row was deleted from, with row_ids
/// compacted through `global_shift`. Shares the row storage, box,
/// sketch, and skyline of the original.
std::shared_ptr<const Shard> ShardWithRemappedIds(
    const Shard& shard, const std::vector<uint32_t>& global_shift);

/// `data` plus every row of `batch` appended in batch order.
Dataset DatasetWithAppendedRows(const Dataset& data, const Dataset& batch);

/// `data` minus the rows whose `deleted` flag is set (size data.count()),
/// surviving rows compacted in order.
Dataset DatasetWithoutRows(const Dataset& data,
                           const std::vector<uint8_t>& deleted);

}  // namespace sky

#endif  // SKY_QUERY_DELTA_H_
