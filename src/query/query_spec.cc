// Copyright (c) SkyBench-NG contributors.
#include "query/query_spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sky {
namespace {

[[noreturn]] void Fail(const std::string& msg) {
  throw std::runtime_error("query spec: " + msg);
}

/// Split on a delimiter, keeping empty fields (they are errors upstream).
std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (true) {
    const size_t end = text.find(delim, begin);
    parts.push_back(text.substr(begin, end - begin));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return parts;
}

Value ParseBound(const std::string& text, bool is_lo) {
  if (text.empty() || text == "*") {
    return is_lo ? -std::numeric_limits<Value>::infinity()
                 : std::numeric_limits<Value>::infinity();
  }
  char* end = nullptr;
  const float v = std::strtof(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    Fail("bad constraint bound '" + text + "'");
  }
  return v;
}

int ParseDim(const std::string& text) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || v < 0 ||
      v >= kMaxDims) {
    Fail("bad dimension index '" + text + "'");
  }
  return static_cast<int>(v);
}

}  // namespace

const char* PreferenceName(Preference p) {
  switch (p) {
    case Preference::kMin:
      return "min";
    case Preference::kMax:
      return "max";
    case Preference::kIgnore:
      return "ignore";
  }
  return "?";
}

Preference ParsePreference(const std::string& name) {
  if (name == "min" || name == "-") return Preference::kMin;
  if (name == "max" || name == "+") return Preference::kMax;
  if (name == "ignore" || name == "_") return Preference::kIgnore;
  Fail("unknown preference '" + name + "' (want min|max|ignore)");
}

std::vector<Preference> ParsePreferenceList(const std::string& text) {
  std::vector<Preference> prefs;
  for (const std::string& tok : Split(text, ',')) {
    prefs.push_back(ParsePreference(tok));
  }
  return prefs;
}

std::vector<int> ParseIndexList(const std::string& text) {
  std::vector<int> dims;
  for (const std::string& tok : Split(text, ',')) {
    dims.push_back(ParseDim(tok));
  }
  return dims;
}

std::vector<DimConstraint> ParseConstraintList(const std::string& text) {
  std::vector<DimConstraint> out;
  for (const std::string& tok : Split(text, ',')) {
    const std::vector<std::string> parts = Split(tok, ':');
    if (parts.size() != 3) {
      Fail("bad constraint '" + tok + "' (want DIM:LO:HI)");
    }
    DimConstraint c;
    c.dim = ParseDim(parts[0]);
    c.lo = ParseBound(parts[1], /*is_lo=*/true);
    c.hi = ParseBound(parts[2], /*is_lo=*/false);
    out.push_back(c);
  }
  return out;
}

QuerySpec QuerySpec::Canonicalize(int dims) const {
  if (dims < 1 || dims > kMaxDims) Fail("dataset dimensionality out of range");
  QuerySpec canon;
  canon.band_k = band_k;
  canon.top_k = top_k;
  if (band_k == 0) Fail("band_k must be >= 1");

  if (preferences.size() > static_cast<size_t>(dims)) {
    Fail("preference list has " + std::to_string(preferences.size()) +
         " entries for a " + std::to_string(dims) + "-dimensional dataset");
  }
  canon.preferences = preferences;
  canon.preferences.resize(static_cast<size_t>(dims), Preference::kMin);
  if (std::all_of(canon.preferences.begin(), canon.preferences.end(),
                  [](Preference p) { return p == Preference::kIgnore; })) {
    Fail("every dimension is ignored; keep at least one");
  }

  // Intersect constraints per dimension, drop unbounded no-ops.
  std::vector<DimConstraint> merged;
  for (const DimConstraint& c : constraints) {
    if (c.dim < 0 || c.dim >= dims) {
      Fail("constraint dimension " + std::to_string(c.dim) +
           " out of range for d=" + std::to_string(dims));
    }
    if (std::isnan(c.lo) || std::isnan(c.hi)) Fail("NaN constraint bound");
    auto it = std::find_if(
        merged.begin(), merged.end(),
        [&](const DimConstraint& m) { return m.dim == c.dim; });
    if (it == merged.end()) {
      merged.push_back(c);
    } else {
      it->lo = std::max(it->lo, c.lo);
      it->hi = std::min(it->hi, c.hi);
    }
  }
  for (const DimConstraint& c : merged) {
    if (c.lo > c.hi) {
      Fail("empty constraint interval on dimension " + std::to_string(c.dim));
    }
    const bool lo_open = std::isinf(c.lo) && c.lo < 0;
    const bool hi_open = std::isinf(c.hi) && c.hi > 0;
    if (!(lo_open && hi_open)) canon.constraints.push_back(c);
  }
  std::sort(canon.constraints.begin(), canon.constraints.end(),
            [](const DimConstraint& a, const DimConstraint& b) {
              return a.dim < b.dim;
            });
  return canon;
}

std::string QuerySpec::ViewKey() const {
  std::string key = "p=";
  for (const Preference p : preferences) {
    key += (p == Preference::kMin ? '-' : p == Preference::kMax ? '+' : '_');
  }
  char buf[96];
  for (const DimConstraint& c : constraints) {
    std::snprintf(buf, sizeof(buf), ";c%d=[%a,%a]", c.dim,
                  static_cast<double>(c.lo), static_cast<double>(c.hi));
    key += buf;
  }
  return key;
}

std::string QuerySpec::CanonicalKey() const {
  std::string key = ViewKey();
  char buf[64];
  std::snprintf(buf, sizeof(buf), ";k=%u;t=%zu", band_k, top_k);
  key += buf;
  return key;
}

bool QuerySpec::IsIdentityTransform() const {
  return constraints.empty() &&
         std::all_of(preferences.begin(), preferences.end(),
                     [](Preference p) { return p == Preference::kMin; });
}

bool QuerySpec::IsBoxOnlyTransform() const {
  return std::all_of(preferences.begin(), preferences.end(),
                     [](Preference p) { return p == Preference::kMin; });
}

QuerySpec& QuerySpec::SetPreference(int dim, Preference p) {
  if (dim < 0 || dim >= kMaxDims) Fail("preference dimension out of range");
  if (preferences.size() <= static_cast<size_t>(dim)) {
    preferences.resize(static_cast<size_t>(dim) + 1, Preference::kMin);
  }
  preferences[static_cast<size_t>(dim)] = p;
  return *this;
}

QuerySpec& QuerySpec::Project(const std::vector<int>& dims_to_keep, int dims) {
  if (dims_to_keep.empty()) Fail("projection keeps no dimensions");
  if (preferences.size() < static_cast<size_t>(dims)) {
    preferences.resize(static_cast<size_t>(dims), Preference::kMin);
  }
  std::vector<bool> keep(preferences.size(), false);
  for (const int d : dims_to_keep) {
    if (d < 0 || d >= dims) Fail("projected dimension out of range");
    keep[static_cast<size_t>(d)] = true;
  }
  for (size_t j = 0; j < preferences.size(); ++j) {
    if (!keep[j]) preferences[j] = Preference::kIgnore;
  }
  return *this;
}

QuerySpec& QuerySpec::Constrain(int dim, Value lo, Value hi) {
  constraints.push_back(DimConstraint{dim, lo, hi});
  return *this;
}

}  // namespace sky
