// Copyright (c) SkyBench-NG contributors.
// Sharded dataset representation for the serving layer: a registered
// dataset is split once, at registration time, into K shards, each a
// self-contained Dataset plus the row-id mapping back to the original and
// an axis-aligned bounding box over the original dimensions. The planner
// (query/planner.h) prunes shards whose boxes miss the constraint box and
// the engine executes the survivors independently, merging partial
// skylines with the paper's M(S) union-then-filter operator.
#ifndef SKY_QUERY_SHARD_MAP_H_
#define SKY_QUERY_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/sketch.h"

namespace sky {

/// How rows are assigned to shards at build time.
enum class ShardPolicy : uint8_t {
  kRoundRobin,   ///< row i -> shard i mod K (balanced, box-agnostic)
  kMedianPivot,  ///< group by median-pivot partition mask (paper §VI-A2),
                 ///< then cut the mask order into K equal runs — spatially
                 ///< coherent shards with tight boxes, so constraint
                 ///< pruning actually fires
};

const char* ShardPolicyName(ShardPolicy policy);
/// Parse "rr" / "roundrobin" / "median". Throws std::runtime_error.
ShardPolicy ParseShardPolicy(const std::string& name);

/// One shard: a contiguous private Dataset (rows re-padded), the original
/// row id of each shard row, and the shard's bounding box per original
/// dimension. NaN coordinates are excluded from the box — they can never
/// satisfy a closed-interval constraint, so pruning on the NaN-free box
/// stays exact.
struct Shard {
  Dataset data;
  std::vector<PointId> row_ids;  ///< shard row -> original dataset row
  std::vector<Value> box_lo;     ///< per-dim minimum (+inf if all-NaN)
  std::vector<Value> box_hi;     ///< per-dim maximum (-inf if all-NaN)
  /// Registration-time statistics of this shard's rows — the planner's
  /// per-shard cost-model input (query/cost_model.h).
  StatsSketch sketch;
};

/// Immutable shard decomposition of one dataset. Built once per
/// registration; safe to share across concurrent queries.
class ShardMap {
 public:
  /// Split `data` into min(shards, max(count, 1)) shards under `policy`.
  /// `seed` feeds pivot selection. Every original row lands in exactly one
  /// shard; shard sizes differ by at most one.
  static ShardMap Build(const Dataset& data, size_t shards,
                        ShardPolicy policy, uint64_t seed = 42);

  size_t shard_count() const { return shards_.size(); }
  const Shard& shard(size_t i) const { return shards_[i]; }
  ShardPolicy policy() const { return policy_; }
  int dims() const { return dims_; }
  /// Sum of shard row counts (== the source dataset's count).
  size_t total_count() const { return total_count_; }

 private:
  std::vector<Shard> shards_;
  ShardPolicy policy_ = ShardPolicy::kRoundRobin;
  int dims_ = 0;
  size_t total_count_ = 0;
};

}  // namespace sky

#endif  // SKY_QUERY_SHARD_MAP_H_
