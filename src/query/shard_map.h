// Copyright (c) SkyBench-NG contributors.
// Sharded dataset representation for the serving layer: a registered
// dataset is split once, at registration time, into K shards, each a
// self-contained Dataset plus the row-id mapping back to the original and
// an axis-aligned bounding box over the original dimensions. The planner
// (query/planner.h) prunes shards whose boxes miss the constraint box and
// the engine executes the survivors independently, merging partial
// skylines with the paper's M(S) union-then-filter operator.
#ifndef SKY_QUERY_SHARD_MAP_H_
#define SKY_QUERY_SHARD_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/sketch.h"

namespace sky {

class Executor;

/// How rows are assigned to shards at build time.
enum class ShardPolicy : uint8_t {
  kRoundRobin,   ///< row i -> shard i mod K (balanced, box-agnostic)
  kMedianPivot,  ///< group by median-pivot partition mask (paper §VI-A2),
                 ///< then cut the mask order into K equal runs — spatially
                 ///< coherent shards with tight boxes, so constraint
                 ///< pruning actually fires
};

const char* ShardPolicyName(ShardPolicy policy);
/// Parse "rr" / "roundrobin" / "median". Throws std::runtime_error.
ShardPolicy ParseShardPolicy(const std::string& name);

/// One shard: a contiguous private Dataset (rows re-padded), the original
/// row id of each shard row, and the shard's bounding box per original
/// dimension. NaN coordinates are excluded from the box — they can never
/// satisfy a closed-interval constraint, so pruning on the NaN-free box
/// stays exact.
struct Shard {
  /// Shared so a copy-on-write ShardMap clone can alias the untouched
  /// shards' row storage instead of deep-copying it; never null once
  /// built.
  std::shared_ptr<const Dataset> data;
  std::vector<PointId> row_ids;  ///< shard row -> original dataset row
  std::vector<Value> box_lo;     ///< per-dim minimum (+inf if all-NaN)
  std::vector<Value> box_hi;     ///< per-dim maximum (-inf if all-NaN)
  /// Registration-time statistics of this shard's rows — the planner's
  /// per-shard cost-model input (query/cost_model.h). Incrementally
  /// updated (with staleness tracking) under mutation.
  StatsSketch sketch;
  /// Maintained shard-local skyline: ascending shard row indices of this
  /// shard's skyline, or nullptr when never computed. Built lazily by the
  /// first mutation (delta repair needs it) and consumed by the executor
  /// as a precomputed candidate set for identity band-1 queries.
  std::shared_ptr<const std::vector<PointId>> skyline;
  /// Identity of this shard's local row content/numbering, unique across
  /// every shard the process ever builds. Delta repairs that change the
  /// shard's rows (inserts, deletes) stamp a fresh epoch; a pure global-id
  /// remap keeps it — shard-local indices are untouched. Cached per-shard
  /// views record the epoch they were cut from, so a reader holding an
  /// older (or newer) ShardMap snapshot can detect that a cached view's
  /// local row numbering does not match its snapshot and rebuild instead
  /// of composing ids across generations.
  uint64_t epoch = 0;

  const Dataset& rows() const { return *data; }
};

/// Next value of the process-wide shard epoch counter (never 0).
uint64_t NextShardEpoch();

/// Immutable shard decomposition of one dataset, with shards held by
/// shared_ptr so mutation produces a cheap copy-on-write clone: the new
/// map shares every untouched shard's storage and swaps in freshly built
/// replacements for the touched ones.
class ShardMap {
 public:
  /// Split `data` into min(shards, max(count, 1)) shards under `policy`.
  /// `seed` feeds pivot selection. Every original row lands in exactly one
  /// shard; shard sizes differ by at most one. The median-pivot mask pass
  /// runs on `executor` when given (the engine passes its shared
  /// scheduler), otherwise on a one-shot standalone pool.
  static ShardMap Build(const Dataset& data, size_t shards,
                        ShardPolicy policy, uint64_t seed = 42,
                        Executor* executor = nullptr);

  size_t shard_count() const { return shards_.size(); }
  const Shard& shard(size_t i) const { return *shards_[i]; }
  std::shared_ptr<const Shard> shard_ptr(size_t i) const {
    return shards_[i];
  }
  /// Swap shard i for a repaired replacement and refresh total_count()
  /// from the new shard sizes (copy-on-write publish step).
  void ReplaceShard(size_t i, std::shared_ptr<const Shard> shard);
  /// Pick the shard a new row should join: round-robin routes to the
  /// least-loaded shard; median-pivot routes to the shard whose bounding
  /// box needs the least (range-normalized) expansion to admit the row,
  /// ties broken least-loaded then lowest index. Deterministic; the
  /// assignment need not match what a fresh Build would produce — M(S)
  /// makes query results invariant to the shard decomposition.
  size_t RouteInsert(const Value* row) const;
  ShardPolicy policy() const { return policy_; }
  int dims() const { return dims_; }
  /// Sum of shard row counts (== the source dataset's count).
  size_t total_count() const { return total_count_; }

 private:
  std::vector<std::shared_ptr<const Shard>> shards_;
  ShardPolicy policy_ = ShardPolicy::kRoundRobin;
  int dims_ = 0;
  size_t total_count_ = 0;
};

}  // namespace sky

#endif  // SKY_QUERY_SHARD_MAP_H_
