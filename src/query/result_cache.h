// Copyright (c) SkyBench-NG contributors.
// Thread-safe LRU cache of finished query results, keyed by the engine's
// canonical (dataset @ version | spec) strings. Entries are shared_ptrs so
// a hit never copies the (possibly large) id vectors under the lock and an
// eviction never invalidates a result a reader still holds.
#ifndef SKY_QUERY_RESULT_CACHE_H_
#define SKY_QUERY_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace sky {

template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Fetch and promote to most-recently-used; nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return it->second->second;
  }

  /// Insert (or refresh) a value, evicting the least-recently-used entry
  /// past capacity. A capacity of 0 disables caching entirely.
  void Put(const std::string& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    order_.clear();
  }

  /// Drop every entry whose key starts with `prefix`. O(entries); used
  /// when a dataset generation dies (eviction / re-registration) so its
  /// unreachable results stop pinning memory and LRU slots.
  size_t ErasePrefix(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        index_.erase(it->first);
        it = order_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Counters{hits_, misses_, evictions_, order_.size()};
  }

  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const V>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sky

#endif  // SKY_QUERY_RESULT_CACHE_H_
