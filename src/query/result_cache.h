// Copyright (c) SkyBench-NG contributors.
// Thread-safe LRU cache of finished query results, keyed by the engine's
// canonical (dataset version | spec) strings. Entries are shared_ptrs so
// a hit never copies the (possibly large) id vectors under the lock and an
// eviction never invalidates a result a reader still holds. Eviction is
// entry-capped and, optionally, byte-capped: a SizeFn prices each value
// and the cache evicts LRU-first until the byte budget holds again — a
// value larger than the whole budget is simply not retained. An optional
// TTL expires entries lazily on Get, for refresh-heavy workloads where a
// stale-but-cached answer is worse than a recompute.
#ifndef SKY_QUERY_RESULT_CACHE_H_
#define SKY_QUERY_RESULT_CACHE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace sky {

template <typename V>
class LruCache {
 public:
  /// Byte price of one cached value (payload estimate, not allocator
  /// truth). nullptr prices everything at zero.
  using SizeFn = size_t (*)(const V&);

  explicit LruCache(size_t capacity) : LruCache(capacity, 0, nullptr) {}

  /// `byte_capacity` == 0 disables the byte budget; `capacity` == 0
  /// disables caching entirely; `ttl_seconds` <= 0 disables expiry.
  LruCache(size_t capacity, size_t byte_capacity, SizeFn size_fn,
           double ttl_seconds = 0.0)
      : capacity_(capacity),
        byte_capacity_(byte_capacity),
        size_fn_(size_fn),
        ttl_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(std::max(0.0, ttl_seconds)))) {}

  /// Fetch and promote to most-recently-used; nullptr on miss. An entry
  /// older than the TTL counts as a miss: it is erased here (lazy
  /// expiry — no reaper thread) and ttl_evictions is incremented.
  std::shared_ptr<const V> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    if (ttl_ != Clock::duration::zero() &&
        Clock::now() - it->second->inserted > ttl_) {
      bytes_ -= it->second->bytes;
      order_.erase(it->second);
      index_.erase(it);
      ++ttl_evictions_;
      ++evictions_;
      ++misses_;
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return it->second->value;
  }

  /// Like Get, but a TTL-expired entry is returned anyway — with
  /// `*expired` set — instead of being erased: the engine's serve-stale
  /// fallback answers a shed or timed-out query from the expired value,
  /// and a later successful recompute's Put refreshes the entry in
  /// place. An expired return still counts as a miss (a recompute is
  /// expected) plus a stale_hits tick; only a fresh return promotes.
  std::shared_ptr<const V> GetAllowStale(const std::string& key,
                                         bool* expired) {
    std::lock_guard<std::mutex> lock(mu_);
    *expired = false;
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    if (ttl_ != Clock::duration::zero() &&
        Clock::now() - it->second->inserted > ttl_) {
      *expired = true;
      ++stale_hits_;
      ++misses_;
      return it->second->value;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return it->second->value;
  }

  /// Insert (or refresh) a value, evicting least-recently-used entries
  /// past either cap. A capacity of 0 disables caching entirely.
  void Put(const std::string& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    const size_t entry_bytes = (size_fn_ != nullptr && value != nullptr)
                                   ? size_fn_(*value)
                                   : 0;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = entry_bytes;
      it->second->inserted = Clock::now();  // a refresh restarts the TTL
      bytes_ += entry_bytes;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(
          Entry{key, std::move(value), entry_bytes, Clock::now()});
      index_[key] = order_.begin();
      bytes_ += entry_bytes;
    }
    // The fresh entry sits at the front, so it is only dropped when it
    // alone exceeds the byte budget.
    while (!order_.empty() &&
           (order_.size() > capacity_ ||
            (byte_capacity_ != 0 && bytes_ > byte_capacity_))) {
      if (order_.size() <= capacity_) ++byte_evictions_;
      bytes_ -= order_.back().bytes;
      index_.erase(order_.back().key);
      order_.pop_back();
      ++evictions_;
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    order_.clear();
    bytes_ = 0;
  }

  /// Drop every entry whose key starts with `prefix`. O(entries); used
  /// when a dataset generation dies (eviction / re-registration) so its
  /// unreachable results stop pinning memory and LRU slots.
  size_t ErasePrefix(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (it->key.compare(0, prefix.size(), prefix) == 0) {
        bytes_ -= it->bytes;
        index_.erase(it->key);
        it = order_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  /// Selective invalidation: visit every entry whose key starts with
  /// `prefix` and let `fn(key, value)` decide its fate — return the
  /// value unchanged to keep it, nullptr to erase it, or a different
  /// shared_ptr to replace it in place (bytes re-priced, LRU position
  /// kept). O(entries); the mutation path uses this to keep provably
  /// unaffected results alive across a minor-version bump instead of
  /// purging the whole generation. Returns the number erased.
  template <typename Fn>
  size_t EditPrefix(const std::string& prefix, Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (it->key.compare(0, prefix.size(), prefix) != 0) {
        ++it;
        continue;
      }
      std::shared_ptr<const V> next = fn(it->key, it->value);
      if (next == nullptr) {
        bytes_ -= it->bytes;
        index_.erase(it->key);
        it = order_.erase(it);
        ++erased;
        continue;
      }
      if (next.get() != it->value.get()) {
        bytes_ -= it->bytes;
        it->bytes = size_fn_ != nullptr ? size_fn_(*next) : 0;
        bytes_ += it->bytes;
        it->value = std::move(next);
      }
      ++it;
    }
    return erased;
  }

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;       ///< total evictions (any cause)
    uint64_t byte_evictions = 0;  ///< evictions forced by the byte budget
    uint64_t ttl_evictions = 0;   ///< entries lazily expired by the TTL
    uint64_t stale_hits = 0;      ///< expired entries GetAllowStale returned
    size_t entries = 0;
    size_t bytes = 0;             ///< priced bytes currently resident
  };

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    Counters c;
    c.hits = hits_;
    c.misses = misses_;
    c.evictions = evictions_;
    c.byte_evictions = byte_evictions_;
    c.ttl_evictions = ttl_evictions_;
    c.stale_hits = stale_hits_;
    c.entries = order_.size();
    c.bytes = bytes_;
    return c;
  }

  size_t capacity() const { return capacity_; }
  size_t byte_capacity() const { return byte_capacity_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
    size_t bytes = 0;
    Clock::time_point inserted;
  };

  const size_t capacity_;
  const size_t byte_capacity_;
  const SizeFn size_fn_;
  const Clock::duration ttl_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t byte_evictions_ = 0;
  uint64_t ttl_evictions_ = 0;
  uint64_t stale_hits_ = 0;
  size_t bytes_ = 0;
};

}  // namespace sky

#endif  // SKY_QUERY_RESULT_CACHE_H_
