// Copyright (c) SkyBench-NG contributors.
#include "query/view.h"

#include "common/failpoint.h"
#include "common/timer.h"

namespace sky {

QueryView MaterializeView(const Dataset& data, const QuerySpec& spec) {
  SKY_FAILPOINT("view_build");
  WallTimer timer;
  QueryView view;
  const int dims = data.dims();
  for (int j = 0; j < dims; ++j) {
    if (spec.preferences[static_cast<size_t>(j)] != Preference::kIgnore) {
      view.kept_dims.push_back(j);
    }
  }

  // Pass 1: evaluate the constraint box on original values.
  std::vector<PointId> survivors;
  if (spec.constraints.empty()) {
    survivors.resize(data.count());
    for (size_t i = 0; i < data.count(); ++i) {
      survivors[i] = static_cast<PointId>(i);
    }
  } else {
    for (size_t i = 0; i < data.count(); ++i) {
      const Value* row = data.Row(i);
      bool inside = true;
      for (const DimConstraint& c : spec.constraints) {
        // Inclusion form so a NaN coordinate fails the box (matches the
        // closed-interval contract instead of silently passing).
        const Value v = row[c.dim];
        if (!(v >= c.lo && v <= c.hi)) {
          inside = false;
          break;
        }
      }
      if (inside) survivors.push_back(static_cast<PointId>(i));
    }
  }

  // Pass 2: copy surviving rows, keeping only non-ignored dimensions and
  // flipping MAX columns so min-dominance on the view is exactly the
  // query's preference dominance on the original.
  const int view_dims = static_cast<int>(view.kept_dims.size());
  view.data = Dataset(view_dims, survivors.size());
  for (size_t w = 0; w < survivors.size(); ++w) {
    const Value* src = data.Row(survivors[w]);
    Value* dst = view.data.MutableRow(w);
    for (int j = 0; j < view_dims; ++j) {
      const int orig = view.kept_dims[static_cast<size_t>(j)];
      const Value v = src[orig];
      dst[j] =
          spec.preferences[static_cast<size_t>(orig)] == Preference::kMax ? -v
                                                                          : v;
    }
  }
  view.row_ids = std::move(survivors);
  view.materialize_seconds = timer.Seconds();
  return view;
}

Value ViewRowScore(const Dataset& view, size_t row) {
  const Value* r = view.Row(row);
  Value sum = 0;
  for (int j = 0; j < view.dims(); ++j) sum += r[j];
  return sum;
}

size_t QueryViewBytes(const QueryView& view) {
  return sizeof(QueryView) +
         view.data.count() * static_cast<size_t>(view.data.stride()) *
             sizeof(Value) +
         view.row_ids.size() * sizeof(PointId) +
         view.kept_dims.size() * sizeof(int);
}

}  // namespace sky
