// Copyright (c) SkyBench-NG contributors.
#include "query/delta.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <span>

#include "core/skyline.h"
#include "core/streaming.h"
#include "dominance/batch.h"
#include "dominance/dominance.h"

namespace sky {
namespace {

/// Exact bounding box of `data` (NaN coordinates excluded, matching
/// ShardMap::Build).
void ComputeBox(const Dataset& data, std::vector<Value>& lo,
                std::vector<Value>& hi) {
  const int dims = data.dims();
  lo.assign(static_cast<size_t>(dims),
            std::numeric_limits<Value>::infinity());
  hi.assign(static_cast<size_t>(dims),
            -std::numeric_limits<Value>::infinity());
  for (size_t i = 0; i < data.count(); ++i) {
    const Value* row = data.Row(i);
    for (int j = 0; j < dims; ++j) {
      if (row[j] < lo[static_cast<size_t>(j)]) {
        lo[static_cast<size_t>(j)] = row[j];
      }
      if (row[j] > hi[static_cast<size_t>(j)]) {
        hi[static_cast<size_t>(j)] = row[j];
      }
    }
  }
}

std::vector<PointId> BaseSkyline(const Shard& shard) {
  if (shard.skyline != nullptr) return *shard.skyline;
  return ComputeShardSkyline(shard.rows());
}

}  // namespace

std::vector<PointId> ComputeShardSkyline(const Dataset& rows) {
  if (rows.count() == 0) return {};
  Result run = ComputeSkyline(rows, Options{});
  std::sort(run.skyline.begin(), run.skyline.end());
  return std::move(run.skyline);
}

Dataset DatasetWithAppendedRows(const Dataset& data, const Dataset& batch) {
  SKY_CHECK(batch.dims() == data.dims());
  Dataset out(data.dims(), data.count() + batch.count());
  const size_t stride = static_cast<size_t>(data.stride());
  if (data.count() > 0) {
    std::memcpy(out.MutableRow(0), data.Row(0),
                sizeof(Value) * stride * data.count());
  }
  if (batch.count() > 0) {
    std::memcpy(out.MutableRow(data.count()), batch.Row(0),
                sizeof(Value) * stride * batch.count());
  }
  return out;
}

Dataset DatasetWithoutRows(const Dataset& data,
                           const std::vector<uint8_t>& deleted) {
  SKY_CHECK(deleted.size() == data.count());
  size_t survivors = 0;
  for (const uint8_t d : deleted) survivors += (d == 0);
  Dataset out(data.dims(), survivors);
  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(data.stride());
  size_t w = 0;
  for (size_t i = 0; i < data.count(); ++i) {
    if (deleted[i]) continue;
    std::memcpy(out.MutableRow(w), data.Row(i), row_bytes);
    ++w;
  }
  return out;
}

std::shared_ptr<const Shard> ShardWithInserts(
    const Shard& shard, const Dataset& batch,
    const std::vector<size_t>& batch_rows, PointId base_global_id,
    uint64_t sketch_seed, RepairStats* repair_stats) {
  const Dataset& old_rows = shard.rows();
  const int dims = old_rows.dims();
  const size_t old_count = old_rows.count();
  const size_t add = batch_rows.size();
  const size_t stride = static_cast<size_t>(old_rows.stride());
  const size_t row_bytes = sizeof(Value) * stride;

  auto out = std::make_shared<Shard>();
  auto rows = std::make_shared<Dataset>(dims, old_count + add);
  if (old_count > 0) {
    std::memcpy(rows->MutableRow(0), old_rows.Row(0),
                row_bytes * old_count);
  }
  out->row_ids = shard.row_ids;
  out->row_ids.reserve(old_count + add);
  out->box_lo = shard.box_lo;
  out->box_hi = shard.box_hi;
  for (size_t k = 0; k < add; ++k) {
    const Value* src = batch.Row(batch_rows[k]);
    std::memcpy(rows->MutableRow(old_count + k), src, row_bytes);
    out->row_ids.push_back(base_global_id +
                           static_cast<PointId>(batch_rows[k]));
    for (int j = 0; j < dims; ++j) {
      if (src[j] < out->box_lo[static_cast<size_t>(j)]) {
        out->box_lo[static_cast<size_t>(j)] = src[j];
      }
      if (src[j] > out->box_hi[static_cast<size_t>(j)]) {
        out->box_hi[static_cast<size_t>(j)] = src[j];
      }
    }
  }

  // Skyline repair, fully batched — streaming the rows one at a time
  // through a seeded window would pay a whole-window sweep per row. One
  // FilterTile pass rejects the new rows some maintained member
  // dominates (any old dominator implies a member dominator by
  // transitivity), a second tiled pass resolves dominance among the new
  // rows themselves, and one reverse pass tombstones the members an
  // accepted row dominates. Coincident rows never dominate, so
  // duplicates are retained throughout.
  const std::vector<PointId> base = BaseSkyline(shard);
  const DomCtx dom(dims, rows->stride(), /*use_simd=*/true);
  uint64_t dts = 0;
  std::vector<uint8_t> rejected(add, 0);
  if (!base.empty() && add > 0) {
    TileBlock base_tiles(dims, base.size());
    for (const PointId i : base) base_tiles.PushRow(rows->Row(i));
    dom.FilterTile(rows->Row(old_count), add, base_tiles, rejected.data(),
                   &dts);
  }
  if (add > 1) {
    // Intra-batch resolution through the same tile kernel, self-exclusion
    // free: a row never dominates its own (coincident) tile lane, and
    // tiling the base-rejected rows too changes nothing — any row such a
    // reject dominates is already flagged (the reject's own base
    // dominator dominates it transitively), and FilterTile skips flagged
    // rows. "Dominated by some batch row" is order-independent, so one
    // sweep matches the pairwise answer exactly.
    TileBlock batch_tiles(dims, add);
    batch_tiles.AppendRows(rows->Row(old_count), rows->stride(), add);
    dom.FilterTile(rows->Row(old_count), add, batch_tiles, rejected.data(),
                   &dts);
  }
  size_t accepted = 0;
  for (const uint8_t r : rejected) accepted += (r == 0);
  std::vector<PointId> sky;
  sky.reserve(base.size() + accepted);
  if (accepted > 0 && !base.empty()) {
    TileBlock new_tiles(dims, accepted);
    for (size_t k = 0; k < add; ++k) {
      if (!rejected[k]) new_tiles.PushRow(rows->Row(old_count + k));
    }
    // Evict members an accepted row dominates: scan the old rows with
    // every non-member pre-flagged (FilterTile skips flagged rows), so
    // a base position i flips to 1 iff the member was evicted.
    std::vector<uint8_t> flags(old_count, 1);
    for (const PointId i : base) flags[i] = 0;
    dom.FilterTile(rows->Row(0), old_count, new_tiles, flags.data(), &dts);
    for (const PointId i : base) {
      if (!flags[i]) sky.push_back(i);
    }
  } else {
    sky = base;
  }
  for (size_t k = 0; k < add; ++k) {
    if (!rejected[k]) sky.push_back(static_cast<PointId>(old_count + k));
  }
  // base is ascending and the appended locals are ascending above it, so
  // `sky` is sorted by construction.
  out->skyline =
      std::make_shared<const std::vector<PointId>>(std::move(sky));

  out->sketch = shard.sketch;
  if (add > 0) {
    UpdateSketchOnInsert(out->sketch, rows->Row(old_count),
                         rows->stride(), add);
  }
  if (SketchNeedsRebuild(out->sketch)) {
    out->sketch = ComputeSketch(*rows, sketch_seed);
    if (repair_stats != nullptr) repair_stats->sketch_rebuilds += 1;
  }
  if (repair_stats != nullptr) repair_stats->dom_tests += dts;
  out->epoch = NextShardEpoch();  // local row content changed
  out->data = std::move(rows);
  return out;
}

std::shared_ptr<const Shard> ShardWithDeletes(
    const Shard& shard, const std::vector<PointId>& drop_local,
    const std::vector<uint32_t>& global_shift, uint64_t sketch_seed,
    RepairStats* repair_stats) {
  const Dataset& old_rows = shard.rows();
  const int dims = old_rows.dims();
  const size_t old_count = old_rows.count();
  std::vector<uint8_t> deleted(old_count, 0);
  for (const PointId i : drop_local) deleted[i] = 1;

  // Repair in the old row space first (the old rows back both the
  // dominance scans and the window), remap to compacted indices after.
  const std::vector<PointId> base = BaseSkyline(shard);
  std::vector<PointId> removed_sky, survivors;
  std::set_intersection(base.begin(), base.end(), drop_local.begin(),
                        drop_local.end(), std::back_inserter(removed_sky));
  std::set_difference(base.begin(), base.end(), drop_local.begin(),
                      drop_local.end(), std::back_inserter(survivors));

  StreamingSkyline window(dims);
  window.Seed(old_rows, survivors);
  if (!removed_sky.empty()) {
    // Re-promotion: only rows a removed member was dominating can enter
    // the skyline (any other non-member is dominated by a surviving
    // skyline point — its minimal dominator chain ends in the skyline).
    // One batched FilterTile sweep finds them; pre-flagging the deleted
    // rows keeps them out. No survivor can be flagged (the skyline is an
    // antichain), so every newly flagged row is a re-promotion
    // candidate, and the window's insert logic resolves dominance among
    // the candidates themselves.
    TileBlock removed_tiles(dims, removed_sky.size());
    for (const PointId i : removed_sky) {
      removed_tiles.PushRow(old_rows.Row(i));
    }
    std::vector<uint8_t> flags = deleted;
    const DomCtx dom(dims, old_rows.stride(), /*use_simd=*/true);
    uint64_t dts = 0;
    dom.FilterTile(old_rows.Row(0), old_count, removed_tiles, flags.data(),
                   &dts);
    if (repair_stats != nullptr) repair_stats->dom_tests += dts;
    for (size_t i = 0; i < old_count; ++i) {
      if (flags[i] && !deleted[i]) {
        window.Insert(std::span<const Value>(old_rows.Row(i),
                                             static_cast<size_t>(dims)),
                      static_cast<PointId>(i));
      }
    }
  }

  // Compact: old local index -> new local index, rows, ids, exact box.
  auto out = std::make_shared<Shard>();
  auto rows = std::make_shared<Dataset>(
      dims, old_count - drop_local.size());
  std::vector<PointId> local_map(old_count, 0);
  const size_t row_bytes = sizeof(Value) * static_cast<size_t>(
                                               old_rows.stride());
  out->row_ids.reserve(rows->count());
  size_t w = 0;
  for (size_t i = 0; i < old_count; ++i) {
    if (deleted[i]) continue;
    local_map[i] = static_cast<PointId>(w);
    std::memcpy(rows->MutableRow(w), old_rows.Row(i), row_bytes);
    const PointId old_gid = shard.row_ids[i];
    out->row_ids.push_back(old_gid - global_shift[old_gid]);
    ++w;
  }
  ComputeBox(*rows, out->box_lo, out->box_hi);

  std::vector<PointId> sky = window.Ids();
  for (PointId& id : sky) id = local_map[id];
  std::sort(sky.begin(), sky.end());
  out->skyline =
      std::make_shared<const std::vector<PointId>>(std::move(sky));

  out->sketch = shard.sketch;
  UpdateSketchOnDelete(out->sketch, drop_local.size());
  if (SketchNeedsRebuild(out->sketch)) {
    out->sketch = ComputeSketch(*rows, sketch_seed);
    if (repair_stats != nullptr) repair_stats->sketch_rebuilds += 1;
  }
  if (repair_stats != nullptr) {
    // The re-promotion window counts its own insert scans.
    repair_stats->dom_tests += window.dominance_tests();
  }
  out->epoch = NextShardEpoch();  // local row content changed
  out->data = std::move(rows);
  return out;
}

std::shared_ptr<const Shard> ShardWithRemappedIds(
    const Shard& shard, const std::vector<uint32_t>& global_shift) {
  // The copy keeps shard.epoch: only global ids move, and the executor
  // composes those from its own snapshot's row_ids — a cached view (keyed
  // to the epoch) stays valid because the shard-local numbering it
  // indexes is unchanged.
  auto out = std::make_shared<Shard>(shard);  // shares data/skyline/sketch
  for (PointId& gid : out->row_ids) gid -= global_shift[gid];
  return out;
}

}  // namespace sky
