// Copyright (c) SkyBench-NG contributors.
// Query rewriter: materializes a QuerySpec against a Dataset as a plain
// Dataset *view* the unmodified algorithm suite can consume. The rewrite
// is purely in data space — MAX dimensions are negated (dominance under
// "larger is better" equals min-dominance of the negated column), IGNORE
// dimensions are dropped, and rows outside the constraint box are removed
// — so every algorithm keeps answering its one native question while the
// engine answers many.
#ifndef SKY_QUERY_VIEW_H_
#define SKY_QUERY_VIEW_H_

#include <vector>

#include "data/dataset.h"
#include "query/query_spec.h"

namespace sky {

/// A materialized query view plus the bookkeeping to translate results
/// back into the original dataset's row ids.
struct QueryView {
  /// Transformed dataset: one row per constraint-surviving original row,
  /// one column per non-ignored dimension, MAX columns negated.
  Dataset data;
  /// View row -> original row id (size == data.count()).
  std::vector<PointId> row_ids;
  /// View column -> original dimension (ascending; size == data.dims()).
  std::vector<int> kept_dims;
  /// Wall time spent building the view.
  double materialize_seconds = 0.0;
  /// Invalidation metadata, filled by the engine when it caches a view:
  /// the constraint box the view was filtered by (empty = unconstrained)
  /// and the shard the view was cut from (-1 = whole dataset). A
  /// mutation keeps a cached view alive iff no mutated row could have
  /// entered or left it — see SkylineEngine::InsertPoints/DeletePoints.
  std::vector<DimConstraint> constraints;
  int source_shard = -1;
  /// Shard::epoch of the shard this view was cut from (0 for whole-
  /// dataset views). A reader only composes a cached shard view with its
  /// own ShardMap snapshot when the epochs match — the view's local row
  /// indices are meaningless against any other generation of the shard.
  uint64_t source_epoch = 0;
};

/// Build the view of `data` under `spec`. `spec` must already be in
/// canonical form for `data.dims()` (see QuerySpec::Canonicalize).
QueryView MaterializeView(const Dataset& data, const QuerySpec& spec);

/// Rank score of a view row under the top-k cap: the sum of its (already
/// preference-oriented) view coordinates — "best combined trade-off
/// first". Exposed so engine and tests share one float-exact definition.
Value ViewRowScore(const Dataset& view, size_t row);

/// Payload bytes of a materialized view (padded rows + id map) — the
/// price the engine's byte-budgeted view cache charges per entry.
size_t QueryViewBytes(const QueryView& view);

}  // namespace sky

#endif  // SKY_QUERY_VIEW_H_
