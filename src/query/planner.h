// Copyright (c) SkyBench-NG contributors.
// Query planner: turns a canonicalized QuerySpec plus a ShardMap into an
// ExecutionPlan — which shards must run (the rest are pruned because
// their bounding boxes miss the constraint box), which algorithm and
// thread budget each surviving shard gets (cost-model selection when the
// request is Algorithm::kAuto), and how the per-shard partial results
// are merged back into one answer. The executor (query/engine.h) is a
// dumb interpreter of the plan; all pruning and selection decisions live
// here so tests can inspect them without running anything.
#ifndef SKY_QUERY_PLANNER_H_
#define SKY_QUERY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "obs/metrics.h"
#include "query/query_spec.h"
#include "query/shard_map.h"

namespace sky {

class CostLearner;  // query/cost_model.h

/// How per-shard partial results combine into the final answer.
enum class MergeStrategy : uint8_t {
  kNone,          ///< 0 or 1 executed shards: the partial result is final
  kSkylineUnion,  ///< M(S): union the partial skylines, dominance-filter
  kSkybandUnion,  ///< depth-aware M(S): union the partial k-skybands and
                  ///< recount dominators inside the union (exact for every
                  ///< true member; see the proof in engine.cc)
};

const char* MergeStrategyName(MergeStrategy strategy);

struct ExecutionPlan {
  /// Indices of the shards to execute, ascending. Shards absent from this
  /// list are pruned: their bounding box does not intersect the spec's
  /// constraint box, so no row of theirs can satisfy the constraints.
  std::vector<uint32_t> shards;

  /// Per-shard algorithm, parallel to `shards`. Empty means "run every
  /// shard with the caller's Options.algorithm" — the explicit-algorithm
  /// path, byte-for-byte the pre-selection behavior. Filled (all
  /// concrete, never kAuto) when the request was kAuto: each shard gets
  /// the cost model's pick for its own sketch and selectivity.
  std::vector<Algorithm> algorithms;

  /// Concurrency budget per executed shard. 1 = the engine parallelizes
  /// across shards (each shard sequential). > 1 — chosen by the adaptive
  /// planner when few shards survive a prune — makes the engine run
  /// shards one after another, each with intra-shard parallelism, so a
  /// lone surviving 2M-row shard still uses the whole budget. On the
  /// engine's shared work-stealing executor this is a concurrency
  /// *limit* (a TaskGroup cap over borrowed workers), not a thread count
  /// to spawn: concurrent queries each plan against the full budget and
  /// the executor's fixed worker set bounds the machine.
  int shard_threads = 1;

  /// Algorithm of the M(S) merge stage when the request was kAuto
  /// (explicit requests merge with their own algorithm). Sized from the
  /// estimated candidate union.
  Algorithm merge_algorithm = Algorithm::kBSkyTree;

  uint32_t pruned = 0;  ///< number of shards skipped by box intersection
  MergeStrategy merge = MergeStrategy::kNone;
};

/// True iff the axis-aligned box [lo, hi] intersects every constraint
/// interval (closed on both sides). An empty per-dim box (lo > hi, e.g.
/// all-NaN column) intersects nothing.
bool BoxIntersectsConstraints(const std::vector<Value>& lo,
                              const std::vector<Value>& hi,
                              const std::vector<DimConstraint>& constraints);

/// Build the pruning plan for `canon` (must already be canonicalized for
/// the map's dimensionality) over `map`. No algorithm selection: the
/// executor runs every shard with the caller's Options.
ExecutionPlan PlanQuery(const ShardMap& map, const QuerySpec& canon);

/// Adaptive variant: additionally resolves per-shard algorithms, the
/// shard thread budget and the merge algorithm when opts.algorithm is
/// kAuto (identical to the two-argument form otherwise). A non-null
/// `metrics` registry receives the planner's decision tallies —
/// sky_planner_plans_total, sky_planner_shards_{executed,pruned}_total
/// and the per-strategy sky_planner_merge_total — at plan time, where
/// the decisions are made. A non-null `learner` scales each candidate's
/// model cost by its measured/predicted EMA (Config::cost_learning).
ExecutionPlan PlanQuery(const ShardMap& map, const QuerySpec& canon,
                        const Options& opts,
                        obs::MetricsRegistry* metrics = nullptr,
                        const CostLearner* learner = nullptr);

}  // namespace sky

#endif  // SKY_QUERY_PLANNER_H_
