// Copyright (c) SkyBench-NG contributors.
// Query planner: turns a canonicalized QuerySpec plus a ShardMap into an
// ExecutionPlan — which shards must run (the rest are pruned because
// their bounding boxes miss the constraint box), and how the per-shard
// partial results are merged back into one answer. The executor
// (query/engine.h) is a dumb interpreter of the plan; all pruning
// decisions live here so tests can inspect them without running anything.
#ifndef SKY_QUERY_PLANNER_H_
#define SKY_QUERY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "query/query_spec.h"
#include "query/shard_map.h"

namespace sky {

/// How per-shard partial results combine into the final answer.
enum class MergeStrategy : uint8_t {
  kNone,          ///< 0 or 1 executed shards: the partial result is final
  kSkylineUnion,  ///< M(S): union the partial skylines, dominance-filter
  kSkybandUnion,  ///< depth-aware M(S): union the partial k-skybands and
                  ///< recount dominators inside the union (exact for every
                  ///< true member; see the proof in engine.cc)
};

const char* MergeStrategyName(MergeStrategy strategy);

struct ExecutionPlan {
  /// Indices of the shards to execute, ascending. Shards absent from this
  /// list are pruned: their bounding box does not intersect the spec's
  /// constraint box, so no row of theirs can satisfy the constraints.
  std::vector<uint32_t> shards;
  uint32_t pruned = 0;  ///< number of shards skipped by box intersection
  MergeStrategy merge = MergeStrategy::kNone;
};

/// True iff the axis-aligned box [lo, hi] intersects every constraint
/// interval (closed on both sides). An empty per-dim box (lo > hi, e.g.
/// all-NaN column) intersects nothing.
bool BoxIntersectsConstraints(const std::vector<Value>& lo,
                              const std::vector<Value>& hi,
                              const std::vector<DimConstraint>& constraints);

/// Build the plan for `canon` (must already be canonicalized for the
/// map's dimensionality) over `map`.
ExecutionPlan PlanQuery(const ShardMap& map, const QuerySpec& canon);

}  // namespace sky

#endif  // SKY_QUERY_PLANNER_H_
