// Copyright (c) SkyBench-NG contributors.
// Declarative description of a skyline query: per-dimension preference
// direction, subspace projection, box constraints, band depth and an
// optional result cap. A QuerySpec is pure semantics — the rewriter
// (query/view.h) turns it into a materialized view the unmodified
// algorithm suite can run on, and the engine (query/engine.h) uses its
// canonical key to cache results.
#ifndef SKY_QUERY_QUERY_SPEC_H_
#define SKY_QUERY_QUERY_SPEC_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"

namespace sky {

/// Direction of preference on one dimension.
enum class Preference : uint8_t {
  kMin,     ///< smaller is better (library default)
  kMax,     ///< larger is better (rewriter negates the column)
  kIgnore,  ///< dimension excluded from dominance (subspace projection)
};

const char* PreferenceName(Preference p);

/// Parse "min" / "max" / "ignore" (or the shorthands "-", "+", "_").
/// Throws std::runtime_error on junk.
Preference ParsePreference(const std::string& name);

/// Closed interval restriction on one original dimension. Constraints
/// filter candidate rows before dominance is evaluated; they apply even to
/// kIgnore dimensions (filter on an attribute without ranking by it).
struct DimConstraint {
  int dim = 0;
  Value lo = -std::numeric_limits<Value>::infinity();
  Value hi = std::numeric_limits<Value>::infinity();
};

struct QuerySpec {
  /// Per-dimension preference. Dimensions past the end of the list
  /// default to kMin (so an empty list is the native all-min question);
  /// longer than the dataset dimensionality is an error.
  std::vector<Preference> preferences;

  /// Box constraints (intersected per dimension during canonicalization).
  std::vector<DimConstraint> constraints;

  /// Band depth: keep points with fewer than band_k dominators under the
  /// query's dominance relation. 1 = plain skyline.
  uint32_t band_k = 1;

  /// Result cap: when > 0, results are ranked by (dominator count asc,
  /// coordinate-sum score asc, original id asc) and truncated to top_k.
  /// 0 = return every qualifying point, order unspecified.
  size_t top_k = 0;

  /// Validate against a dataset dimensionality and return the normal form:
  /// preferences expanded to `dims` entries, constraints sorted by
  /// dimension, intersected per dimension and stripped of no-op bounds.
  /// Throws std::runtime_error on malformed specs (wrong preference arity,
  /// constraint dimension out of range, empty interval, every dimension
  /// ignored, band_k == 0).
  QuerySpec Canonicalize(int dims) const;

  /// Stable string form of a *canonicalized* spec; equal semantics produce
  /// equal keys (the engine's cache key). Floats are rendered in hex so
  /// the mapping is exact.
  std::string CanonicalKey() const;

  /// The view-determining prefix of CanonicalKey(): preferences,
  /// projection and constraints only. Specs that differ solely in band_k
  /// / top_k share a ViewKey — and therefore a materialized view — which
  /// is what the engine's view cache is keyed by.
  std::string ViewKey() const;

  /// True when the canonicalized spec is the library's native question:
  /// minimize everything, no projection, no constraints.
  bool IsIdentityTransform() const;

  /// True when the spec differs from the native question at most by box
  /// constraints: minimize everything, no projection. Such specs can run
  /// on raw rows with the box applied during the scan — the zonemap
  /// direct path exploits this (candidate rows keep original values, so
  /// dominance and scoring match the materialized view bit-for-bit).
  bool IsBoxOnlyTransform() const;

  // -- Builder-style helpers (return *this for chaining) --------------

  /// Set the preference of one dimension, growing the vector as needed.
  QuerySpec& SetPreference(int dim, Preference p);
  /// Keep only `dims_to_keep` (all others become kIgnore). Preferences of
  /// kept dimensions are preserved (kMin if previously unset).
  QuerySpec& Project(const std::vector<int>& dims_to_keep, int dims);
  /// Add a box constraint on one dimension.
  QuerySpec& Constrain(int dim, Value lo, Value hi);
};

/// Parse a comma-separated preference list: "min,max,ignore" or "-,+,_".
std::vector<Preference> ParsePreferenceList(const std::string& text);

/// Parse a comma-separated list of dimension indices: "0,2,5".
std::vector<int> ParseIndexList(const std::string& text);

/// Parse "DIM:LO:HI[,DIM:LO:HI...]"; "*" for an unbounded endpoint.
std::vector<DimConstraint> ParseConstraintList(const std::string& text);

}  // namespace sky

#endif  // SKY_QUERY_QUERY_SPEC_H_
